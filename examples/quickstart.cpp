// Quickstart: release a private statistic of a correlated time series with
// the Markov Quilt Mechanism in ~40 lines.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Scenario: a length-1000 binary time series (e.g. device on/off per
// minute) whose dynamics are one of two plausible Markov chains. We release
// the fraction of time spent "on" with 1-Pufferfish privacy.
#include <cstdio>

#include "graphical/markov_chain.h"
#include "pufferfish/mqm_exact.h"
#include "pufferfish/query.h"

int main() {
  // 1. The distribution class Theta: two plausible models of the data.
  const pf::MarkovChain theta1 =
      pf::MarkovChain::Make({0.8, 0.2}, pf::Matrix{{0.9, 0.1}, {0.4, 0.6}})
          .ValueOrDie();
  const pf::MarkovChain theta2 =
      pf::MarkovChain::Make({0.6, 0.4}, pf::Matrix{{0.8, 0.2}, {0.3, 0.7}})
          .ValueOrDie();

  // 2. The data: a trajectory drawn from one of the models.
  pf::Rng rng(42);
  const std::size_t kLength = 1000;
  const pf::StateSequence data = theta1.Sample(kLength, &rng);

  // 3. The query: fraction of time in state 1 (1/T-Lipschitz).
  const pf::ScalarQuery query = pf::StateFrequencyQuery(1, kLength);
  const double truth = query.fn(data);

  // 4. Calibrate the Markov Quilt Mechanism at epsilon = 1.
  pf::ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 64;
  const pf::Result<pf::ChainMqmResult> analysis =
      pf::MqmExactAnalyze({theta1, theta2}, kLength, options);
  if (!analysis.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 analysis.status().ToString().c_str());
    return 1;
  }

  // 5. Release.
  const double noisy = pf::MqmReleaseScalar(
      truth, query.lipschitz, analysis.value().sigma_max, &rng);

  std::printf("true frequency of state 1 : %.4f\n", truth);
  std::printf("private release (eps = 1) : %.4f\n", noisy);
  std::printf("noise scale               : %.5f  (sigma_max = %.2f, worst "
              "node X%d, active %s)\n",
              query.lipschitz * analysis.value().sigma_max,
              analysis.value().sigma_max, analysis.value().worst_node,
              analysis.value().active_quilt.ToString().c_str());
  std::printf("group-DP would need scale : %.5f (the whole chain is one "
              "group)\n",
              1.0 / options.epsilon);
  return 0;
}
