// Quickstart: release private statistics of a correlated time series
// through the serving API in ~40 lines.
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/example_quickstart
//
// Scenario: a length-1000 binary time series (e.g. device on/off per
// minute) whose dynamics are one of two plausible Markov chains. We open a
// PrivacyEngine over that model class (it picks MQMExact and analyzes
// once, cached), then serve queries from a Session holding an epsilon
// budget — every release is charged, and the session refuses to overspend.
#include <algorithm>
#include <cstdio>

#include "engine/engine.h"
#include "graphical/markov_chain.h"

int main() {
  // 1. The distribution class Theta: two plausible models of the data.
  const pf::MarkovChain theta1 =
      pf::MarkovChain::Make({0.8, 0.2}, pf::Matrix{{0.9, 0.1}, {0.4, 0.6}})
          .ValueOrDie();
  const pf::MarkovChain theta2 =
      pf::MarkovChain::Make({0.6, 0.4}, pf::Matrix{{0.8, 0.2}, {0.3, 0.7}})
          .ValueOrDie();

  // 2. The data: a trajectory drawn from one of the models.
  pf::Rng rng(42);
  const std::size_t kLength = 1000;
  const pf::StateSequence data = theta1.Sample(kLength, &rng);

  // 3. The engine: picks the mechanism (MQMExact for a chain class of this
  // length), owns the plan cache and the serving thread pool.
  auto engine = pf::PrivacyEngine::Create(
                    pf::ModelSpec::ChainClass({theta1, theta2}, kLength))
                    .ValueOrDie();

  // 4. A session with a total budget of 8: Theorem 4.4 prices K releases
  // at K * max epsilon, and the session enforces it.
  pf::SessionOptions session_options;
  session_options.epsilon_budget = 8.0;
  session_options.seed = 42;
  auto session = engine->CreateSession(session_options);

  // 5. Declarative queries. One point release, then a batch of 7 "daily"
  // queries served concurrently on the engine's pool.
  const pf::QuerySpec query = pf::QuerySpec::StateFrequency(1, /*epsilon=*/1.0);
  const pf::ReleaseResult noisy = session->Release(query, data).ValueOrDie();
  auto week = session->SubmitBatch(query, std::vector<pf::StateSequence>(7, data));

  const double truth = static_cast<double>(
                           std::count(data.begin(), data.end(), 1)) /
                       static_cast<double>(kLength);
  std::printf("true frequency of state 1 : %.4f\n", truth);
  std::printf("private release (eps = 1) : %.4f   [%s, sigma = %.2f]\n",
              noisy.value[0], pf::MechanismKindName(noisy.mechanism),
              noisy.sigma);
  std::printf("batch of 7 releases       :");
  for (auto& f : week) std::printf(" %.3f", f.get().ValueOrDie().value[0]);
  std::printf("\nbudget after 8 releases   : spent %.1f of %.1f\n",
              session->EpsilonSpent(), session->epsilon_budget());

  // 6. The 9th release would overspend: the session says so.
  const auto refused = session->Release(query, data);
  std::printf("9th release               : %s\n",
              refused.status().ToString().c_str());
  return 0;
}
