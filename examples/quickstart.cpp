// Quickstart: release private statistics of a correlated time series with
// the unified mechanism engine in ~40 lines.
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/example_quickstart
//
// Scenario: a length-1000 binary time series (e.g. device on/off per
// minute) whose dynamics are one of two plausible Markov chains. We release
// the fraction of time spent "on" with 1-Pufferfish privacy — analyzing
// once (the expensive, data-independent phase) and then releasing a batch
// of daily queries against the one plan.
#include <cstdio>

#include "graphical/markov_chain.h"
#include "pufferfish/mechanism.h"
#include "pufferfish/query.h"

int main() {
  // 1. The distribution class Theta: two plausible models of the data.
  const pf::MarkovChain theta1 =
      pf::MarkovChain::Make({0.8, 0.2}, pf::Matrix{{0.9, 0.1}, {0.4, 0.6}})
          .ValueOrDie();
  const pf::MarkovChain theta2 =
      pf::MarkovChain::Make({0.6, 0.4}, pf::Matrix{{0.8, 0.2}, {0.3, 0.7}})
          .ValueOrDie();

  // 2. The data: a trajectory drawn from one of the models.
  pf::Rng rng(42);
  const std::size_t kLength = 1000;
  const pf::StateSequence data = theta1.Sample(kLength, &rng);

  // 3. The query: fraction of time in state 1 (1/T-Lipschitz).
  const pf::ScalarQuery query = pf::StateFrequencyQuery(1, kLength);
  const double truth = query.fn(data);

  // 4. Analyze: the expensive, data-independent phase, once.
  const pf::MqmExactUnified mechanism({theta1, theta2}, kLength);
  const pf::Result<pf::MechanismPlan> plan = mechanism.Analyze(/*epsilon=*/1.0);
  if (!plan.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 plan.status().ToString().c_str());
    return 1;
  }

  // 5. Release: cheap, per query. A batch of 7 "daily" values costs seven
  // Laplace draws against the same plan (compose epsilons accordingly).
  const double noisy =
      pf::Release(plan.value(), truth, query.lipschitz, &rng).ValueOrDie();
  const pf::Vector week = pf::ReleaseBatch(plan.value(),
                                           std::vector<double>(7, truth),
                                           query.lipschitz, &rng)
                              .ValueOrDie();

  std::printf("true frequency of state 1 : %.4f\n", truth);
  std::printf("private release (eps = 1) : %.4f\n", noisy);
  std::printf("batch of 7 releases       :");
  for (double v : week) std::printf(" %.3f", v);
  std::printf("\nnoise scale               : %.5f  (sigma_max = %.2f, worst "
              "node X%d, active %s)\n",
              query.lipschitz * plan.value().sigma, plan.value().sigma,
              plan.value().chain.worst_node,
              plan.value().chain.active_quilt.ToString().c_str());
  std::printf("group-DP would need scale : %.5f (the whole chain is one "
              "group)\n",
              1.0 / plan.value().epsilon);
  return 0;
}
