// Theorem 2.4 in action: what happens when the adversary's belief lies
// *outside* the distribution class Theta used to calibrate the mechanism?
// The privacy guarantee degrades gracefully from epsilon to
// epsilon + 2*Delta, where Delta is the conditional max-divergence distance
// from the belief to the class.
//
// Scenario: a two-person household where the modeler believes the residents'
// "home/away" states are positively correlated with strength in a range; the
// adversary believes in a slightly stronger correlation than any model in
// Theta.
#include <cstdio>

#include "pufferfish/robustness.h"

namespace {

// Joint distribution over (X1, X2) in {0,1}^2 with P(X1=1) = P(X2=1) = 1/2
// and correlation parameter c in [0, 1): P(equal) = (1+c)/2.
// Configurations enumerated as 00, 01, 10, 11.
pf::Vector CorrelatedPair(double c) {
  const double eq = (1.0 + c) / 4.0;
  const double ne = (1.0 - c) / 4.0;
  return {eq, ne, ne, eq};
}

}  // namespace

int main() {
  // Theta: correlation strength 0.2..0.5. Secrets: each person's value.
  std::vector<pf::Vector> theta_class;
  for (double c = 0.2; c <= 0.501; c += 0.05) {
    theta_class.push_back(CorrelatedPair(c));
  }
  // Secrets: X1 = 0 -> configs {00, 01}; X1 = 1 -> {10, 11}; same for X2.
  const std::vector<std::vector<int>> secrets = {
      {0, 1}, {2, 3}, {0, 2}, {1, 3}};

  std::printf("mechanism calibrated at epsilon = 1 for Theta = "
              "{correlation 0.20..0.50}\n\n");
  std::printf("%-28s %12s %18s\n", "adversary belief", "Delta",
              "effective epsilon");
  for (double c : {0.3, 0.55, 0.6, 0.7, 0.8, 0.9}) {
    const pf::Result<double> delta =
        pf::CloseAdversaryDelta(theta_class, CorrelatedPair(c), secrets);
    if (!delta.ok()) {
      std::printf("correlation %.2f: %s\n", c, delta.status().ToString().c_str());
      continue;
    }
    std::printf("correlation %.2f %22.4f %18.4f%s\n", c, delta.value(),
                pf::EffectiveEpsilon(1.0, delta.value()),
                c <= 0.5 ? "   (inside Theta)" : "");
  }
  std::printf("\nBeliefs inside Theta cost nothing (Delta = 0); privacy decays "
              "smoothly with the\nadversary's distance from the class "
              "(Theorem 2.4).\n");
  return 0;
}
