// A tree-structured sensor deployment served through the PrivacyEngine —
// the general-network (Algorithm 2) path at a size the enumeration-based
// seed could never analyze.
//
//   cmake -B build -S . && cmake --build build -j
//   ./build/example_sensor_tree
//
// Scenario: 127 binary sensors relay readings down a binary distribution
// tree (a gateway at the root, repeaters inside, leaves at the edge); each
// sensor's state is a noisy copy of its parent's, so readings are
// correlated and entry DP under-protects them. The NetworkClass engine
// routes to the general Markov Quilt Mechanism: max-influence inference by
// variable elimination (cost exponential only in the tree's width, 1) and
// one sigma_i search per canonical node class rather than per node.
#include <algorithm>
#include <cstdio>

#include "data/topologies.h"
#include "engine/engine.h"

int main() {
  // 1. The adversary's model class: two plausible relay-noise levels.
  const pf::Vector root = pf::BinaryRoot(0.3);
  const std::size_t kSensors = 127;
  std::vector<pf::BayesianNetwork> thetas;
  for (const double flip : {0.35, 0.4}) {
    thetas.push_back(
        pf::TreeNetwork(kSensors, 2, root, pf::BinaryNoisyCopyCpt(flip))
            .ValueOrDie());
  }

  // 2. The engine. The policy screens the model's min-fill width (1 for a
  // tree — any node count passes) and selects MQM-general; a 127-node
  // binary network has 2^127 joint assignments, so the old enumeration
  // guard would have refused outright.
  auto engine =
      pf::PrivacyEngine::Create(pf::ModelSpec::NetworkClass(thetas))
          .ValueOrDie();

  // 3. The data: one reading per sensor, drawn from the first model.
  pf::Rng rng(7);
  const pf::Assignment assignment = thetas.front().Sample(&rng);
  const pf::StateSequence data(assignment.begin(), assignment.end());

  // 4. Release the fraction of triggered sensors under a budget.
  pf::SessionOptions session_options;
  session_options.epsilon_budget = 6.0;
  session_options.seed = 11;
  auto session = engine->CreateSession(session_options);
  const pf::QuerySpec query = pf::QuerySpec::StateFrequency(1, /*epsilon=*/2.0);
  const pf::ReleaseResult noisy = session->Release(query, data).ValueOrDie();

  const double truth = static_cast<double>(
                           std::count(data.begin(), data.end(), 1)) /
                       static_cast<double>(kSensors);
  std::printf("sensors                    : %zu (binary tree, width 1)\n",
              kSensors);
  std::printf("true triggered fraction    : %.4f\n", truth);
  std::printf("private release (eps = 2)  : %.4f   [%s, sigma = %.3f]\n",
              noisy.value[0], pf::MechanismKindName(noisy.mechanism),
              noisy.sigma);

  // 5. What the analysis cost: canonical node classes instead of nodes,
  // and elimination tables instead of a 2^127 joint walk.
  const auto stats = engine->AnalyzeStats(2.0).ValueOrDie();
  std::printf("sigma_i searches           : %zu classes for %zu nodes "
              "(%.1fx dedup)\n",
              stats.scored_nodes, stats.total_nodes, stats.dedup_ratio);
  std::printf("treewidth bound / observed : %zu / %zu, peak factor tables "
              "%.1f KiB\n",
              stats.treewidth_bound, stats.induced_width,
              static_cast<double>(stats.memory.peak_bytes) / 1024.0);
  return 0;
}
