// Example 2 of the paper end to end: flu status over a social network of
// cliques (workplaces/schools). Within each clique, infection counts follow
// a known contagion model; participation is decided at the group level, so
// hiding one person's *status* — not just their participation — is the
// privacy goal. The engine built over the conditional output pairs selects
// the Wasserstein Mechanism (Algorithm 1), which calibrates noise to the
// infinity-Wasserstein distance between the conditionals of the released
// count given "Alice is healthy" vs "Alice has flu"; a GroupSensitivity
// engine serves the group-DP baseline for comparison.
#include <cstdio>

#include "data/flu.h"
#include "engine/engine.h"

int main() {
  // A network of 12 cliques of varying sizes and contagiousness.
  std::vector<pf::FluCliqueModel> cliques;
  for (std::size_t size = 4; size <= 15; ++size) {
    const double contagion = 0.1 + 0.05 * static_cast<double>(size % 5);
    cliques.push_back(
        pf::FluCliqueModel::Contagion(size, contagion).ValueOrDie());
  }
  const pf::FluNetwork network(std::move(cliques));
  std::printf("population %zu in %zu cliques; largest clique %g\n",
              network.population(), network.cliques().size(),
              network.GroupSensitivity());

  // Sensitivity of the total-infected-count query under each notion.
  const double w = network.CountQuerySensitivity().ValueOrDie();
  std::printf("Wasserstein sensitivity W   : %.3f\n", w);
  std::printf("group-DP sensitivity        : %.3f (largest clique)\n",
              network.GroupSensitivity());
  std::printf("entry-DP sensitivity        : 1 (hides participation only, "
              "NOT flu status under contagion)\n");

  const double epsilon = 1.0;
  pf::Rng rng(99);
  const pf::StateSequence status = network.Sample(&rng);

  // One engine per privacy notion; the policy picks the mechanism from the
  // model declaration (output pairs -> Algorithm 1).
  std::vector<pf::ConditionalOutputPair> pairs;
  for (const pf::FluCliqueModel& clique : network.cliques()) {
    pairs.push_back(clique.CountQueryOutputPair().ValueOrDie());
  }
  auto wasserstein_engine =
      pf::PrivacyEngine::Create(pf::ModelSpec::OutputPairs(std::move(pairs)))
          .ValueOrDie();
  auto group_engine =
      pf::PrivacyEngine::Create(
          pf::ModelSpec::GroupSensitivity(network.GroupSensitivity()))
          .ValueOrDie();

  // The released query: total infected count. On an output-pair model the
  // engine serves Sum at L = 1 — the count sensitivity lives in the plan.
  // Distinct seeds: the two sessions release the *same* true count, and
  // identical noise streams would let an observer cancel the noise across
  // the two releases and recover it exactly.
  const pf::QuerySpec count_query = pf::QuerySpec::Sum(epsilon);
  pf::SessionOptions wasserstein_options;
  wasserstein_options.seed = 99;
  pf::SessionOptions group_options;
  group_options.seed = 100;
  auto wasserstein_session =
      wasserstein_engine->CreateSession(wasserstein_options);
  auto group_session = group_engine->CreateSession(group_options);
  const pf::ReleaseResult wasserstein =
      wasserstein_session->Release(count_query, status).ValueOrDie();
  const pf::ReleaseResult group =
      group_session->Release(count_query, status).ValueOrDie();

  double count = 0.0;
  for (int s : status) count += s;
  std::printf("\ntrue infected count         : %.0f\n", count);
  std::printf("Wasserstein Mechanism       : %.2f  (scale %.2f)\n",
              wasserstein.value[0], wasserstein.sigma);
  std::printf("GroupDP Laplace             : %.2f  (scale %.2f)\n",
              group.value[0], group.sigma);
  std::printf("\nThe Wasserstein Mechanism hides each person's flu status "
              "against the contagion\nmodel with %.1fx less noise than "
              "group-DP (Theorem 3.3 guarantees it is never worse).\n",
              group.sigma / wasserstein.sigma);

  // -- The same scenario at contact-network scale (Algorithm 2). --------
  // Cliques capture closed households; a CITY is a contact network:
  // commuters chained through the community, household members hanging off
  // each commuter. 150 binary nodes — hopeless for the old enumeration
  // path (2^150 joint assignments), routine for the structured backend:
  // the moral graph is a tree, so the engine's treewidth screen admits it
  // and variable elimination serves the max-influence conditionals.
  const pf::BayesianNetwork city =
      pf::FluContactNetwork(/*households=*/30, /*household_size=*/4,
                            /*community_rate=*/0.05, /*transmission=*/0.3)
          .ValueOrDie();
  auto city_engine =
      pf::PrivacyEngine::Create(pf::ModelSpec::NetworkClass({city}))
          .ValueOrDie();
  const pf::Assignment city_status = city.Sample(&rng);
  const pf::StateSequence city_data(city_status.begin(), city_status.end());
  pf::SessionOptions city_options;
  city_options.seed = 101;
  auto city_session = city_engine->CreateSession(city_options);
  const pf::ReleaseResult city_count =
      city_session->Release(pf::QuerySpec::Sum(epsilon), city_data)
          .ValueOrDie();
  double city_truth = 0.0;
  for (int s : city_data) city_truth += s;
  const auto stats = city_engine->AnalyzeStats(epsilon).ValueOrDie();
  std::printf("\ncontact network (150 people): true infected %.0f, "
              "released %.2f\n", city_truth, city_count.value[0]);
  std::printf("  [%s over the moral tree: sigma %.2f, %zu sigma_i searches "
              "for %zu nodes]\n",
              pf::MechanismKindName(city_count.mechanism), city_count.sigma,
              stats.scored_nodes, stats.total_nodes);
  return 0;
}
