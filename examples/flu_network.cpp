// Example 2 of the paper end to end: flu status over a social network of
// cliques (workplaces/schools). Within each clique, infection counts follow
// a known contagion model; participation is decided at the group level, so
// hiding one person's *status* — not just their participation — is the
// privacy goal. The Wasserstein Mechanism (Algorithm 1) calibrates noise to
// the infinity-Wasserstein distance between the conditional distributions of
// the released count given "Alice is healthy" vs "Alice has flu".
#include <cstdio>

#include "baselines/group_dp.h"
#include "baselines/laplace_dp.h"
#include "data/flu.h"
#include "pufferfish/wasserstein_mechanism.h"

int main() {
  // A network of 12 cliques of varying sizes and contagiousness.
  std::vector<pf::FluCliqueModel> cliques;
  for (std::size_t size = 4; size <= 15; ++size) {
    const double contagion = 0.1 + 0.05 * static_cast<double>(size % 5);
    cliques.push_back(
        pf::FluCliqueModel::Contagion(size, contagion).ValueOrDie());
  }
  const pf::FluNetwork network(std::move(cliques));
  std::printf("population %zu in %zu cliques; largest clique %g\n",
              network.population(), network.cliques().size(),
              network.GroupSensitivity());

  // Sensitivity of the total-infected-count query under each notion.
  const double w = network.CountQuerySensitivity().ValueOrDie();
  std::printf("Wasserstein sensitivity W   : %.3f\n", w);
  std::printf("group-DP sensitivity        : %.3f (largest clique)\n",
              network.GroupSensitivity());
  std::printf("entry-DP sensitivity        : 1 (hides participation only, "
              "NOT flu status under contagion)\n");

  const double epsilon = 1.0;
  pf::Rng rng(99);
  const std::vector<int> status = network.Sample(&rng);
  double count = 0.0;
  for (int s : status) count += s;

  // Release with each mechanism.
  std::vector<pf::ConditionalOutputPair> pairs;
  for (const pf::FluCliqueModel& clique : network.cliques()) {
    pairs.push_back(clique.CountQueryOutputPair().ValueOrDie());
  }
  const auto wasserstein =
      pf::WassersteinMechanism::Make(pairs, epsilon).ValueOrDie();
  const auto group =
      pf::GroupDpMechanism::Make(network.GroupSensitivity(), epsilon)
          .ValueOrDie();

  std::printf("\ntrue infected count         : %.0f\n", count);
  std::printf("Wasserstein Mechanism       : %.2f  (scale %.2f)\n",
              wasserstein.Release(count, &rng), wasserstein.noise_scale());
  std::printf("GroupDP Laplace             : %.2f  (scale %.2f)\n",
              group.ReleaseScalar(count, &rng), group.noise_scale());
  std::printf("\nThe Wasserstein Mechanism hides each person's flu status "
              "against the contagion\nmodel with %.1fx less noise than "
              "group-DP (Theorem 3.3 guarantees it is never worse).\n",
              group.noise_scale() / wasserstein.noise_scale());
  return 0;
}
