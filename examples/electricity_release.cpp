// Section 5.3.2 end to end: private release of a household's power
// consumption histogram, on the serving API. One ~10^6-step, 51-state
// chain (200 W bins of per-minute power). At this length the engine's
// policy picks MQMApprox on its own (Lemma 4.9 makes that analysis
// independent of the chain length); a second engine overrides to MQMExact
// with the search capped just above MQMApprox's optimal quilt width (the
// paper's protocol).
//
// Every epsilon is a separate Session (Theorem 4.4 releases must share
// active quilts, and each epsilon has its own); the engine's caches make
// the second query shape at each epsilon a pure plan-cache hit — exactly
// how a serving system amortizes the quilt search across queries.
#include <cstdio>

#include "common/histogram.h"
#include "data/electricity.h"
#include "engine/engine.h"

int main() {
  pf::ElectricitySimOptions sim;
  sim.length = 1000000;
  pf::Rng rng(2718);
  std::printf("simulating %zu minutes of household power...\n", sim.length);
  const pf::StateSequence seq = pf::SimulateElectricity(sim, &rng).ValueOrDie();
  const pf::MarkovChain chain =
      pf::MarkovChain::Estimate({seq}, pf::kNumPowerLevels).ValueOrDie();
  const pf::ModelSpec model = pf::ModelSpec::ChainClass({chain}, sim.length);

  // Policy, not hand-wiring: a 10^6-length chain class auto-selects
  // MQMApprox.
  auto approx_engine = pf::PrivacyEngine::Create(model).ValueOrDie();
  std::printf("engine policy picked: %s (T = %zu)\n",
              pf::MechanismKindName(approx_engine->mechanism_kind()),
              approx_engine->record_length());

  const double lipschitz = 2.0 / static_cast<double>(sim.length);
  const pf::Vector truth =
      pf::RelativeFrequencyHistogram(seq, pf::kNumPowerLevels).ValueOrDie();

  for (double epsilon : {0.2, 1.0, 5.0}) {
    const auto approx =
        approx_engine->Compile(pf::QuerySpec::FrequencyHistogram(epsilon))
            .ValueOrDie()
            .plan;

    pf::EngineOptions exact_options;
    exact_options.mechanism = pf::MechanismKind::kMqmExact;
    exact_options.exact_max_nearby =
        approx->chain.active_quilt.NearbyCount() + 2;
    auto exact_engine =
        pf::PrivacyEngine::Create(model, exact_options).ValueOrDie();

    pf::SessionOptions session_options;
    session_options.epsilon_budget = epsilon;  // One release, fully spent.
    // Distinct per-epsilon seeds: the sessions release the same histogram
    // at different scales, and shared noise streams would be cancellable.
    session_options.seed = 2718 + static_cast<std::uint64_t>(10.0 * epsilon);
    auto session = exact_engine->CreateSession(session_options);
    const pf::ReleaseResult release =
        session->Release(pf::QuerySpec::FrequencyHistogram(epsilon), seq)
            .ValueOrDie();
    const double err =
        pf::DistanceL1(pf::ClampToUnit(release.value), truth);
    std::printf(
        "eps = %-4g  sigma(approx) = %8.1f  sigma(exact) = %8.1f  "
        "L1 error = %.4f   (GroupDP would give ~%.0f)\n",
        epsilon, approx->sigma, release.sigma, err, 51.0 * 2.0 / epsilon);

    // A second query shape at the same epsilon reuses the cached plan: the
    // analysis ran once per (model, epsilon).
    (void)approx_engine->Compile(pf::QuerySpec::Mean(epsilon)).ValueOrDie();
  }

  const pf::AnalysisCache::Stats stats = approx_engine->cache_stats();
  std::printf(
      "\napprox engine plan cache: %llu misses (one analysis per epsilon), "
      "%llu hits (second query shape reused the plan)\n",
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.hits));

  std::printf("top power bins (exact relative frequency): ");
  for (std::size_t j = 0; j < 5; ++j) std::printf("%.3f ", truth[j]);
  std::printf("...\n");
  return 0;
}
