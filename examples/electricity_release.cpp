// Section 5.3.2 end to end: private release of a household's power
// consumption histogram, on the unified engine. One ~10^6-step, 51-state
// chain (200 W bins of per-minute power). The Lemma 4.9 fast path makes
// MQMApprox's analysis independent of the chain length; MQMExact reuses
// MQMApprox's optimal quilt width as its search cap (the paper's protocol).
//
// An AnalysisCache fronts every Analyze; the second pass over the same
// epsilons is pure cache hits, which is exactly how a serving system
// amortizes the quilt search across queries.
#include <cstdio>

#include "common/histogram.h"
#include "data/electricity.h"
#include "pufferfish/analysis_cache.h"
#include "pufferfish/mechanism.h"

int main() {
  pf::ElectricitySimOptions sim;
  sim.length = 1000000;
  pf::Rng rng(2718);
  std::printf("simulating %zu minutes of household power...\n", sim.length);
  const pf::StateSequence seq = pf::SimulateElectricity(sim, &rng).ValueOrDie();
  const pf::MarkovChain chain =
      pf::MarkovChain::Estimate({seq}, pf::kNumPowerLevels).ValueOrDie();
  const pf::ChainClassSummary summary =
      pf::SummarizeChainClass({chain}).ValueOrDie();
  std::printf("empirical chain: pi_min = %.2e, eigengap = %.4f\n",
              summary.pi_min, summary.eigengap);

  const pf::Vector truth =
      pf::RelativeFrequencyHistogram(seq, pf::kNumPowerLevels).ValueOrDie();
  const double lipschitz = 2.0 / static_cast<double>(sim.length);

  pf::AnalysisCache cache;
  for (int pass = 0; pass < 2; ++pass) {
    for (double epsilon : {0.2, 1.0, 5.0}) {
      pf::ChainUnifiedOptions approx_options;
      approx_options.max_nearby = 0;  // Lemma 4.9 automatic width.
      const pf::MqmApproxUnified approx_mech(summary, sim.length,
                                             approx_options);
      const auto approx = cache.GetOrAnalyze(approx_mech, epsilon).ValueOrDie();

      pf::ChainUnifiedOptions exact_options;
      exact_options.max_nearby =
          approx->chain.active_quilt.NearbyCount() + 2;
      const pf::MqmExactUnified exact_mech({chain}, sim.length, exact_options);
      const auto exact = cache.GetOrAnalyze(exact_mech, epsilon).ValueOrDie();
      if (pass > 0) continue;  // Second pass only demonstrates cache hits.

      const pf::Vector release = pf::ClampToUnit(
          pf::ReleaseVector(*exact, truth, lipschitz, &rng).ValueOrDie());
      const double err = pf::DistanceL1(release, truth);
      std::printf(
          "eps = %-4g  sigma(approx) = %8.1f  sigma(exact) = %8.1f  "
          "L1 error = %.4f   (GroupDP would give ~%.0f)\n",
          epsilon, approx->sigma, exact->sigma, err, 51.0 * 2.0 / epsilon);
    }
  }
  const pf::AnalysisCache::Stats stats = cache.stats();
  std::printf(
      "\nanalysis cache: %llu misses (first pass), %llu hits (second pass "
      "skipped re-analysis)\n",
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.hits));

  std::printf("top power bins (exact relative frequency): ");
  for (std::size_t j = 0; j < 5; ++j) std::printf("%.3f ", truth[j]);
  std::printf("...\n");
  return 0;
}
