// Section 5.3.2 end to end: private release of a household's power
// consumption histogram. One ~10^6-step, 51-state chain (200 W bins of
// per-minute power). The Lemma 4.9 fast path makes MQMApprox's analysis
// independent of the chain length; MQMExact reuses MQMApprox's optimal quilt
// width as its search cap (the paper's protocol).
#include <cstdio>

#include "baselines/group_dp.h"
#include "common/histogram.h"
#include "data/electricity.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

int main() {
  pf::ElectricitySimOptions sim;
  sim.length = 1000000;
  pf::Rng rng(2718);
  std::printf("simulating %zu minutes of household power...\n", sim.length);
  const pf::StateSequence seq = pf::SimulateElectricity(sim, &rng).ValueOrDie();
  const pf::MarkovChain chain =
      pf::MarkovChain::Estimate({seq}, pf::kNumPowerLevels).ValueOrDie();
  const pf::ChainClassSummary summary =
      pf::SummarizeChainClass({chain}).ValueOrDie();
  std::printf("empirical chain: pi_min = %.2e, eigengap = %.4f\n",
              summary.pi_min, summary.eigengap);

  const pf::Vector truth =
      pf::RelativeFrequencyHistogram(seq, pf::kNumPowerLevels).ValueOrDie();
  const double lipschitz = 2.0 / static_cast<double>(sim.length);

  for (double epsilon : {0.2, 1.0, 5.0}) {
    pf::ChainMqmOptions approx_options;
    approx_options.epsilon = epsilon;
    approx_options.max_nearby = 0;
    const pf::ChainMqmResult approx =
        pf::MqmApproxAnalyze(summary, sim.length, approx_options).ValueOrDie();
    pf::ChainMqmOptions exact_options;
    exact_options.epsilon = epsilon;
    exact_options.max_nearby = approx.active_quilt.NearbyCount() + 2;
    const pf::ChainMqmResult exact =
        pf::MqmExactAnalyze({chain}, sim.length, exact_options).ValueOrDie();

    const pf::Vector release = pf::ClampToUnit(
        pf::MqmReleaseVector(truth, lipschitz, exact.sigma_max, &rng));
    const double err = pf::DistanceL1(release, truth);
    std::printf(
        "eps = %-4g  sigma(approx) = %8.1f  sigma(exact) = %8.1f  "
        "L1 error = %.4f   (GroupDP would give ~%.0f)\n",
        epsilon, approx.sigma_max, exact.sigma_max, err,
        51.0 * 2.0 / epsilon);
  }
  std::printf("\ntop power bins (exact relative frequency): ");
  for (std::size_t j = 0; j < 5; ++j) std::printf("%.3f ", truth[j]);
  std::printf("...\n");
  return 0;
}
