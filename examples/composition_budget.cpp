// Theorem 4.4 in practice: a weekly reporting pipeline that publishes the
// same subject's activity statistics every day. Pufferfish does not compose
// in general, but the Markov Quilt Mechanism with fixed quilt sets does:
// K releases at epsilon each cost exactly K * epsilon. The accountant
// tracks the budget and verifies the active-quilt condition.
#include <cstdio>

#include "common/histogram.h"
#include "graphical/markov_chain.h"
#include "pufferfish/composition.h"
#include "pufferfish/mqm_exact.h"
#include "pufferfish/query.h"

int main() {
  // Subject model: a 3-state chain (rest, light, active) per minute, in
  // steady state (stationary initial distribution), so the Section 4.4.1
  // stationary shortcut applies and the analysis is length-independent.
  const pf::Matrix transition{
      {0.82, 0.12, 0.06}, {0.15, 0.70, 0.15}, {0.05, 0.20, 0.75}};
  const pf::Vector stationary =
      pf::MarkovChain::Make({1.0 / 3, 1.0 / 3, 1.0 / 3}, transition)
          .ValueOrDie()
          .StationaryDistribution()
          .ValueOrDie();
  const pf::MarkovChain theta =
      pf::MarkovChain::Make(stationary, transition).ValueOrDie();
  const std::size_t kWindow = 10080;  // One week of minutes per release.
  pf::Rng rng(12);

  const double per_release_epsilon = 0.5;
  pf::ChainMqmOptions options;
  options.epsilon = per_release_epsilon;
  options.max_nearby = 128;

  // The model, query, epsilon and quilt sets are identical across releases,
  // so the analysis (and hence the active quilt, Definition 4.5) is computed
  // once — exactly the setting in which Theorem 4.4 composes linearly.
  const pf::ChainMqmResult analysis =
      pf::MqmExactAnalyze({theta}, kWindow, options).ValueOrDie();
  const pf::VectorQuery query = pf::RelativeFrequencyQuery(3, kWindow);

  pf::CompositionAccountant accountant;
  std::printf("weekly releases at epsilon = %.2f each (same quilt sets):\n\n",
              per_release_epsilon);
  for (int day = 1; day <= 7; ++day) {
    const pf::StateSequence data = theta.Sample(kWindow, &rng);
    const pf::Vector noisy = pf::ClampToUnit(pf::MqmReleaseVector(
        query.fn(data), query.lipschitz, analysis.sigma_max, &rng));
    if (!accountant.RecordRelease(per_release_epsilon, analysis.active_quilt)
             .ok()) {
      std::fprintf(stderr, "accounting failed\n");
      return 1;
    }
    std::printf(
        "week %d: released (%.3f, %.3f, %.3f); cumulative budget %.2f "
        "(quilts consistent: %s)\n",
        day, noisy[0], noisy[1], noisy[2], accountant.TotalEpsilon(),
        accountant.ActiveQuiltsConsistent() ? "yes" : "NO");
  }
  std::printf(
      "\nafter %zu releases: total guarantee %.2f-Pufferfish "
      "(Theorem 4.4: K * max_k epsilon_k).\n",
      accountant.num_releases(), accountant.TotalEpsilon());
  return 0;
}
