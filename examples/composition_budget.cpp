// Theorem 4.4 in practice: a weekly reporting pipeline that publishes the
// same subject's activity statistics every day. Pufferfish does not compose
// in general, but the Markov Quilt Mechanism with fixed quilt sets does:
// K releases at epsilon each cost exactly K * epsilon. A Session holds the
// budget; it charges every release, verifies the active-quilt condition,
// and refuses the release that would overspend with ResourceExhausted.
#include <cstdio>

#include "engine/engine.h"
#include "graphical/markov_chain.h"

int main() {
  // Subject model: a 3-state chain (rest, light, active) per minute, in
  // steady state (stationary initial distribution), so the Section 4.4.1
  // stationary shortcut applies and the analysis is length-independent.
  const pf::Matrix transition{
      {0.82, 0.12, 0.06}, {0.15, 0.70, 0.15}, {0.05, 0.20, 0.75}};
  const pf::Vector stationary =
      pf::MarkovChain::Make({1.0 / 3, 1.0 / 3, 1.0 / 3}, transition)
          .ValueOrDie()
          .StationaryDistribution()
          .ValueOrDie();
  const pf::MarkovChain theta =
      pf::MarkovChain::Make(stationary, transition).ValueOrDie();
  const std::size_t kWindow = 10080;  // One week of minutes per release.
  pf::Rng rng(12);

  // The engine analyzes once (the model, query and epsilon are identical
  // across releases, so the active quilt of Definition 4.5 is fixed —
  // exactly the setting in which Theorem 4.4 composes linearly).
  pf::EngineOptions options;
  options.exact_max_nearby = 128;
  auto engine =
      pf::PrivacyEngine::Create(pf::ModelSpec::ChainClass({theta}, kWindow),
                                options)
          .ValueOrDie();

  // Budget for exactly seven releases at epsilon 0.5 each.
  const double per_release_epsilon = 0.5;
  pf::SessionOptions session_options;
  session_options.epsilon_budget = 3.5;
  session_options.seed = 12;
  auto session = engine->CreateSession(session_options);

  const pf::QuerySpec query =
      pf::QuerySpec::FrequencyHistogram(per_release_epsilon);
  std::printf("weekly releases at epsilon = %.2f each, budget %.2f:\n\n",
              per_release_epsilon, session->epsilon_budget());
  for (int day = 1; day <= 7; ++day) {
    const pf::StateSequence data = theta.Sample(kWindow, &rng);
    const pf::ReleaseResult release =
        session->Release(query, data).ValueOrDie();
    std::printf(
        "week %d: released (%.3f, %.3f, %.3f); spent %.2f, remaining %.2f\n",
        day, release.value[0], release.value[1], release.value[2],
        session->EpsilonSpent(), session->EpsilonRemaining());
  }
  std::printf(
      "\nafter %zu releases: total guarantee %.2f-Pufferfish "
      "(Theorem 4.4: K * max_k epsilon_k).\n",
      session->num_releases(), session->EpsilonSpent());

  // Day 8 would overspend the budget; the session refuses.
  const auto refused = session->Release(query, theta.Sample(kWindow, &rng));
  std::printf("day 8: %s\n", refused.status().ToString().c_str());
  return 0;
}
