// Example 1 of the paper end to end, on the serving API: physical activity
// monitoring of single subjects. Simulates a cyclist cohort (4 activities
// sampled every ~12 s, gaps > 10 min split chains), estimates the group
// Markov chain, opens one engine per mechanism, and then:
//  - releases the group aggregate histogram (MQMExact vs GroupDP);
//  - batch-releases every subject's count histogram through one session —
//    K releases at epsilon compose to K * epsilon (Theorem 4.4: they all
//    share the one plan's active quilts), and the session ledger shows it.
#include <cstdio>

#include "baselines/group_dp.h"
#include "common/histogram.h"
#include "data/activity.h"
#include "engine/engine.h"

int main() {
  pf::Rng rng(7);
  pf::ActivitySimOptions sim;
  sim.mean_observations_per_person = 9500;  // ~7 days of waking 12 s epochs.
  const pf::ActivityGroupData data =
      pf::SimulateActivityGroup(pf::ActivityGroup::kCyclist, sim, &rng)
          .ValueOrDie();
  std::printf("simulated %zu cyclists, %zu observations, longest chain %zu\n",
              data.people.size(), data.TotalObservations(), data.LongestChain());

  // Model: the empirical transition matrix with stationary initial
  // distribution (the paper's singleton Theta).
  const pf::MarkovChain chain =
      pf::MarkovChain::Estimate(data.AllChains(), pf::kNumActivityStates)
          .ValueOrDie();
  const pf::ModelSpec model =
      pf::ModelSpec::ChainClass({chain}, data.LongestChain());

  const double epsilon = 1.0;
  // MQMApprox engine (Lemma 4.9 automatic width) to size the search, then
  // the MQMExact engine capped just above the approx width — the paper's
  // protocol, expressed as two engine configurations.
  pf::EngineOptions approx_options;
  approx_options.mechanism = pf::MechanismKind::kMqmApprox;
  auto approx_engine =
      pf::PrivacyEngine::Create(model, approx_options).ValueOrDie();
  const auto approx =
      approx_engine->Compile(pf::QuerySpec::CountHistogram(epsilon))
          .ValueOrDie()
          .plan;

  pf::EngineOptions exact_options;
  exact_options.mechanism = pf::MechanismKind::kMqmExact;
  exact_options.exact_max_nearby = approx->chain.active_quilt.NearbyCount() + 2;
  auto engine = pf::PrivacyEngine::Create(model, exact_options).ValueOrDie();
  const auto exact = engine->Compile(pf::QuerySpec::CountHistogram(epsilon))
                         .ValueOrDie()
                         .plan;
  std::printf("sigma: MQMApprox %.1f (active %s), MQMExact %.1f (active %s)\n",
              approx->sigma, approx->chain.active_quilt.ToString().c_str(),
              exact->sigma, exact->chain.active_quilt.ToString().c_str());

  // Aggregate task: the cohort's relative-frequency histogram, as a custom
  // vector query over the pooled observations (2/N-Lipschitz).
  pf::StateSequence pooled;
  pooled.reserve(data.TotalObservations());
  for (const pf::StateSequence& s : data.AllChains()) {
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  // One query body, two specs: MQM releases it at its 2/N Lipschitz
  // constant, GroupDP at L = 1 (the group sensitivity lives in its plan).
  const auto relfreq_fn = [](const pf::StateSequence& seq) {
    return pf::RelativeFrequencyHistogram(seq, pf::kNumActivityStates)
        .ValueOrDie();
  };
  const double lipschitz = 2.0 / static_cast<double>(data.TotalObservations());
  const pf::QuerySpec aggregate = pf::QuerySpec::CustomVector(
      "aggregate-relfreq", relfreq_fn, lipschitz, pf::kNumActivityStates,
      epsilon);

  // Explicit (distinct) seeds keep the example reproducible; leaving them
  // unset gives every session a fresh engine-assigned noise stream.
  pf::SessionOptions aggregate_options;
  aggregate_options.seed = 71;
  auto aggregate_session = engine->CreateSession(aggregate_options);
  const pf::Vector mqm_release = pf::ClampToUnit(
      aggregate_session->Release(aggregate, pooled).ValueOrDie().value);

  const double group_sens =
      pf::RelativeFrequencyGroupSensitivity(data.AllChains()).ValueOrDie();
  auto group_engine =
      pf::PrivacyEngine::Create(pf::ModelSpec::GroupSensitivity(group_sens))
          .ValueOrDie();
  pf::SessionOptions group_options;
  group_options.seed = 72;
  auto group_session = group_engine->CreateSession(group_options);
  const pf::QuerySpec group_aggregate = pf::QuerySpec::CustomVector(
      "aggregate-relfreq", relfreq_fn, /*lipschitz=*/1.0,
      pf::kNumActivityStates, epsilon);
  const pf::Vector group_release = pf::ClampToUnit(
      group_session->Release(group_aggregate, pooled).ValueOrDie().value);

  const pf::Vector truth = pf::AggregateRelativeFrequencyHistogram(
                               data.AllChains(), pf::kNumActivityStates)
                               .ValueOrDie();
  std::printf("\n%-14s %10s %10s %10s\n", "activity", "exact", "MQMExact",
              "GroupDP");
  for (std::size_t j = 0; j < pf::kNumActivityStates; ++j) {
    std::printf("%-14s %10.4f %10.4f %10.4f\n",
                pf::ActivityStateName(static_cast<int>(j)), truth[j],
                mqm_release[j], group_release[j]);
  }

  // Individual task: every subject's count histogram (2-Lipschitz for
  // everyone) batched through one session — the futures run on the
  // engine's pool, and the ledger prices the K releases at K * epsilon.
  std::vector<pf::StateSequence> subjects;
  subjects.reserve(data.people.size());
  for (const pf::ActivityPerson& person : data.people) {
    pf::StateSequence merged;
    for (const pf::StateSequence& s : person.chains) {
      merged.insert(merged.end(), s.begin(), s.end());
    }
    subjects.push_back(std::move(merged));
  }
  pf::SessionOptions cohort_options;
  cohort_options.seed = 73;
  auto cohort_session = engine->CreateSession(cohort_options);
  auto futures = cohort_session->SubmitBatch(
      pf::QuerySpec::CountHistogram(epsilon), subjects);
  std::printf("\nper-subject '%s' observation count (true vs released, "
              "first 5 subjects):\n",
              pf::ActivityStateName(0));
  for (std::size_t p = 0; p < futures.size(); ++p) {
    const pf::ReleaseResult r = futures[p].get().ValueOrDie();
    if (p < 5) {
      const double true_count =
          pf::CountHistogram(subjects[p], pf::kNumActivityStates)
              .ValueOrDie()[0];
      std::printf("  subject %zu: %8.0f vs %8.0f\n", p, true_count,
                  r.value[0]);
    }
  }
  std::printf("cohort session: %zu releases, composed guarantee %.1f "
              "(Theorem 4.4)\n",
              cohort_session->num_releases(), cohort_session->EpsilonSpent());
  return 0;
}
