// Example 1 of the paper end to end: physical activity monitoring of single
// subjects. Simulates a cyclist cohort (4 activities sampled every ~12 s,
// gaps > 10 min split chains), estimates the group Markov chain, and
// releases each person's activity histogram and the group aggregate with
// MQMApprox and MQMExact, comparing against GroupDP.
#include <cstdio>

#include "baselines/group_dp.h"
#include "common/histogram.h"
#include "data/activity.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

int main() {
  pf::Rng rng(7);
  pf::ActivitySimOptions sim;
  sim.mean_observations_per_person = 9500;  // ~7 days of waking 12 s epochs.
  const pf::ActivityGroupData data =
      pf::SimulateActivityGroup(pf::ActivityGroup::kCyclist, sim, &rng)
          .ValueOrDie();
  std::printf("simulated %zu cyclists, %zu observations, longest chain %zu\n",
              data.people.size(), data.TotalObservations(), data.LongestChain());

  // Model: the empirical transition matrix with stationary initial
  // distribution (the paper's singleton Theta).
  const pf::MarkovChain chain =
      pf::MarkovChain::Estimate(data.AllChains(), pf::kNumActivityStates)
          .ValueOrDie();

  const double epsilon = 1.0;
  pf::ChainMqmOptions approx_options;
  approx_options.epsilon = epsilon;
  approx_options.max_nearby = 0;  // Lemma 4.9 automatic width.
  const pf::ChainMqmResult approx =
      pf::MqmApproxAnalyze({chain}, data.LongestChain(), approx_options)
          .ValueOrDie();
  pf::ChainMqmOptions exact_options;
  exact_options.epsilon = epsilon;
  exact_options.max_nearby = approx.active_quilt.NearbyCount() + 2;
  const pf::ChainMqmResult exact =
      pf::MqmExactAnalyze({chain}, data.LongestChain(), exact_options)
          .ValueOrDie();
  std::printf("sigma: MQMApprox %.1f (active %s), MQMExact %.1f (active %s)\n",
              approx.sigma_max, approx.active_quilt.ToString().c_str(),
              exact.sigma_max, exact.active_quilt.ToString().c_str());

  // Aggregate task.
  const pf::Vector truth = pf::AggregateRelativeFrequencyHistogram(
                               data.AllChains(), pf::kNumActivityStates)
                               .ValueOrDie();
  const double lipschitz =
      2.0 / static_cast<double>(data.TotalObservations());
  const pf::Vector mqm_release = pf::ClampToUnit(
      pf::MqmReleaseVector(truth, lipschitz, exact.sigma_max, &rng));
  const double group_sens =
      pf::RelativeFrequencyGroupSensitivity(data.AllChains()).ValueOrDie();
  const auto group_mech =
      pf::GroupDpMechanism::Make(group_sens, epsilon).ValueOrDie();
  const pf::Vector group_release =
      pf::ClampToUnit(group_mech.ReleaseVector(truth, &rng));

  std::printf("\n%-14s %10s %10s %10s\n", "activity", "exact", "MQMExact",
              "GroupDP");
  for (std::size_t j = 0; j < pf::kNumActivityStates; ++j) {
    std::printf("%-14s %10.4f %10.4f %10.4f\n",
                pf::ActivityStateName(static_cast<int>(j)), truth[j],
                mqm_release[j], group_release[j]);
  }

  // Individual task for the first subject.
  const pf::ActivityPerson& subject = data.people.front();
  const pf::Vector person_truth = pf::AggregateRelativeFrequencyHistogram(
                                      subject.chains, pf::kNumActivityStates)
                                      .ValueOrDie();
  const double person_lipschitz =
      2.0 / static_cast<double>(subject.TotalObservations());
  const pf::Vector person_release = pf::ClampToUnit(pf::MqmReleaseVector(
      person_truth, person_lipschitz, exact.sigma_max, &rng));
  std::printf("\nsubject 0 histogram (exact vs MQMExact): ");
  for (std::size_t j = 0; j < pf::kNumActivityStates; ++j) {
    std::printf("%.3f/%.3f  ", person_truth[j], person_release[j]);
  }
  std::printf("\n");
  return 0;
}
