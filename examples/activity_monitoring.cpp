// Example 1 of the paper end to end, on the unified engine: physical
// activity monitoring of single subjects. Simulates a cyclist cohort (4
// activities sampled every ~12 s, gaps > 10 min split chains), estimates
// the group Markov chain, analyzes once per mechanism, and then:
//  - releases the group aggregate histogram (MQMExact vs GroupDP);
//  - batch-releases every subject's count histogram against the one
//    MQMExact plan (count histograms are 2-Lipschitz for everyone, so the
//    whole cohort is a single ReleaseBatch call).
#include <cstdio>

#include "baselines/group_dp.h"
#include "common/histogram.h"
#include "data/activity.h"
#include "pufferfish/mechanism.h"

int main() {
  pf::Rng rng(7);
  pf::ActivitySimOptions sim;
  sim.mean_observations_per_person = 9500;  // ~7 days of waking 12 s epochs.
  const pf::ActivityGroupData data =
      pf::SimulateActivityGroup(pf::ActivityGroup::kCyclist, sim, &rng)
          .ValueOrDie();
  std::printf("simulated %zu cyclists, %zu observations, longest chain %zu\n",
              data.people.size(), data.TotalObservations(), data.LongestChain());

  // Model: the empirical transition matrix with stationary initial
  // distribution (the paper's singleton Theta).
  const pf::MarkovChain chain =
      pf::MarkovChain::Estimate(data.AllChains(), pf::kNumActivityStates)
          .ValueOrDie();

  const double epsilon = 1.0;
  pf::ChainUnifiedOptions approx_options;
  approx_options.max_nearby = 0;  // Lemma 4.9 automatic width.
  const pf::MqmApproxUnified approx_mech({chain}, data.LongestChain(),
                                         approx_options);
  const pf::MechanismPlan approx = approx_mech.Analyze(epsilon).ValueOrDie();
  pf::ChainUnifiedOptions exact_options;
  exact_options.max_nearby = approx.chain.active_quilt.NearbyCount() + 2;
  const pf::MqmExactUnified exact_mech({chain}, data.LongestChain(),
                                       exact_options);
  const pf::MechanismPlan exact = exact_mech.Analyze(epsilon).ValueOrDie();
  std::printf("sigma: MQMApprox %.1f (active %s), MQMExact %.1f (active %s)\n",
              approx.sigma, approx.chain.active_quilt.ToString().c_str(),
              exact.sigma, exact.chain.active_quilt.ToString().c_str());

  // Aggregate task.
  const pf::Vector truth = pf::AggregateRelativeFrequencyHistogram(
                               data.AllChains(), pf::kNumActivityStates)
                               .ValueOrDie();
  const double lipschitz =
      2.0 / static_cast<double>(data.TotalObservations());
  const pf::Vector mqm_release = pf::ClampToUnit(
      pf::ReleaseVector(exact, truth, lipschitz, &rng).ValueOrDie());
  const double group_sens =
      pf::RelativeFrequencyGroupSensitivity(data.AllChains()).ValueOrDie();
  const pf::MechanismPlan group_plan =
      pf::GroupDpUnified(group_sens).Analyze(epsilon).ValueOrDie();
  const pf::Vector group_release = pf::ClampToUnit(
      pf::ReleaseVector(group_plan, truth, 1.0, &rng).ValueOrDie());

  std::printf("\n%-14s %10s %10s %10s\n", "activity", "exact", "MQMExact",
              "GroupDP");
  for (std::size_t j = 0; j < pf::kNumActivityStates; ++j) {
    std::printf("%-14s %10.4f %10.4f %10.4f\n",
                pf::ActivityStateName(static_cast<int>(j)), truth[j],
                mqm_release[j], group_release[j]);
  }

  // Individual task: one batch release of every subject's count histogram
  // (2-Lipschitz regardless of per-person chain lengths) under the single
  // MQMExact plan. K releases at epsilon compose to K * epsilon
  // (Theorem 4.4: all releases share the active quilts).
  std::vector<pf::Vector> person_truths;
  person_truths.reserve(data.people.size());
  for (const pf::ActivityPerson& person : data.people) {
    pf::Vector counts(pf::kNumActivityStates, 0.0);
    for (const pf::StateSequence& s : person.chains) {
      const pf::Vector c =
          pf::CountHistogram(s, pf::kNumActivityStates).ValueOrDie();
      for (std::size_t j = 0; j < counts.size(); ++j) counts[j] += c[j];
    }
    person_truths.push_back(std::move(counts));
  }
  const std::vector<pf::Vector> person_releases =
      pf::ReleaseBatch(exact, person_truths, /*lipschitz=*/2.0, &rng)
          .ValueOrDie();
  std::printf("\nper-subject '%s' observation count (true vs released, "
              "first 5 subjects):\n",
              pf::ActivityStateName(0));
  for (std::size_t p = 0; p < person_releases.size() && p < 5; ++p) {
    std::printf("  subject %zu: %8.0f vs %8.0f\n", p, person_truths[p][0],
                person_releases[p][0]);
  }
  return 0;
}
