// FailpointRegistry unit tests: arming modes, counters, determinism of the
// probability stream, thread safety, and the compile-away contract of the
// PF_FAILPOINT macro. The registry itself exists in every build (it is
// ordinary code); only the *sites* compile to nothing without
// -DPF_FAILPOINTS=ON, so everything here except the macro test runs in
// both configurations.
#include "common/failpoint.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"

namespace pf {
namespace {

class FailpointTest : public testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisarmAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, UnarmedSiteNeverFires) {
  auto& reg = FailpointRegistry::Instance();
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(reg.Evaluate("fp_test.unarmed").ok());
  }
  EXPECT_EQ(reg.Hits("fp_test.unarmed"), 10u);
  EXPECT_EQ(reg.Fires("fp_test.unarmed"), 0u);
}

TEST_F(FailpointTest, ArmFiresEveryTimeUntilDisarmed) {
  auto& reg = FailpointRegistry::Instance();
  reg.Arm("fp_test.always");
  for (int i = 0; i < 5; ++i) {
    const Status st = reg.Evaluate("fp_test.always");
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    // The site name travels in the message so a sweep failure names its
    // injection point.
    EXPECT_NE(st.message().find("fp_test.always"), std::string::npos);
  }
  reg.Disarm("fp_test.always");
  EXPECT_TRUE(reg.Evaluate("fp_test.always").ok());
  EXPECT_EQ(reg.Hits("fp_test.always"), 6u);
  EXPECT_EQ(reg.Fires("fp_test.always"), 5u);
}

TEST_F(FailpointTest, ArmOnceFiresExactlyOnce) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmOnce("fp_test.once");
  EXPECT_FALSE(reg.Evaluate("fp_test.once").ok());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(reg.Evaluate("fp_test.once").ok());
  }
  EXPECT_EQ(reg.Fires("fp_test.once"), 1u);
}

TEST_F(FailpointTest, ArmAfterSkipsThenFires) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmAfter("fp_test.after", 3);
  EXPECT_TRUE(reg.Evaluate("fp_test.after").ok());
  EXPECT_TRUE(reg.Evaluate("fp_test.after").ok());
  EXPECT_TRUE(reg.Evaluate("fp_test.after").ok());
  EXPECT_FALSE(reg.Evaluate("fp_test.after").ok());
  EXPECT_FALSE(reg.Evaluate("fp_test.after").ok());
  EXPECT_EQ(reg.Fires("fp_test.after"), 2u);
}

TEST_F(FailpointTest, ProbabilityStreamIsDeterministicPerSeed) {
  auto& reg = FailpointRegistry::Instance();
  constexpr int kDraws = 256;
  auto run = [&](std::uint64_t seed) {
    reg.DisarmAll();
    reg.ArmProbability("fp_test.prob", 0.5, seed);
    std::vector<bool> fired;
    fired.reserve(kDraws);
    for (int i = 0; i < kDraws; ++i) {
      fired.push_back(!reg.Evaluate("fp_test.prob").ok());
    }
    return fired;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b) << "same seed must replay the same fire sequence";
  EXPECT_NE(a, c) << "different seeds should diverge";
  // p = 0.5 over 256 draws: both outcomes must occur (probability of a
  // constant sequence is 2^-255).
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, kDraws);
}

TEST_F(FailpointTest, ProbabilityZeroAndOneAreDegenerate) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmProbability("fp_test.p0", 0.0, 7);
  reg.ArmProbability("fp_test.p1", 1.0, 7);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(reg.Evaluate("fp_test.p0").ok());
    EXPECT_FALSE(reg.Evaluate("fp_test.p1").ok());
  }
}

TEST_F(FailpointTest, ArmBeforeFirstEvaluationRegistersTheSite) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmOnce("fp_test.preregistered");
  const std::vector<std::string> names = reg.Registered();
  bool found = false;
  for (const std::string& n : names) found |= (n == "fp_test.preregistered");
  EXPECT_TRUE(found);
  EXPECT_FALSE(reg.Evaluate("fp_test.preregistered").ok());
}

TEST_F(FailpointTest, RegisteredIsSorted) {
  auto& reg = FailpointRegistry::Instance();
  (void)reg.Evaluate("fp_test.zz").ok();
  (void)reg.Evaluate("fp_test.aa").ok();
  const std::vector<std::string> names = reg.Registered();
  for (std::size_t i = 1; i < names.size(); ++i) {
    EXPECT_LE(names[i - 1], names[i]);
  }
}

TEST_F(FailpointTest, DisarmAllResetsCounters) {
  auto& reg = FailpointRegistry::Instance();
  reg.Arm("fp_test.reset");
  EXPECT_FALSE(reg.Evaluate("fp_test.reset").ok());
  reg.DisarmAll();
  EXPECT_EQ(reg.Hits("fp_test.reset"), 0u);
  EXPECT_EQ(reg.Fires("fp_test.reset"), 0u);
  EXPECT_TRUE(reg.Evaluate("fp_test.reset").ok());
}

// Concurrent evaluation of one probability-armed site: the registry must
// stay consistent (hits == total evaluations, fires <= hits) with no data
// race — this test is part of the TSan CI leg's coverage.
TEST_F(FailpointTest, ConcurrentEvaluationKeepsCountersConsistent) {
  auto& reg = FailpointRegistry::Instance();
  reg.ArmProbability("fp_test.race", 0.5, 99);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  std::atomic<std::uint64_t> observed_fires{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!reg.Evaluate("fp_test.race").ok()) {
          observed_fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.Hits("fp_test.race"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(reg.Fires("fp_test.race"), observed_fires.load());
  EXPECT_GT(reg.Fires("fp_test.race"), 0u);
  EXPECT_LT(reg.Fires("fp_test.race"), reg.Hits("fp_test.race"));
}

// The macro contract: a PF_FAILPOINT site returns the injected error from
// its enclosing function in PF_FAILPOINTS builds and compiles to nothing
// otherwise.
Status FunctionWithSite() {
  PF_FAILPOINT("fp_test.macro_site");
  return Status::OK();
}

TEST_F(FailpointTest, MacroInjectsIffFailpointsBuild) {
  auto& reg = FailpointRegistry::Instance();
  reg.Arm("fp_test.macro_site");
  const Status st = FunctionWithSite();
  if (kFailpointsEnabled) {
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kInternal);
    EXPECT_EQ(reg.Fires("fp_test.macro_site"), 1u);
  } else {
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(reg.Hits("fp_test.macro_site"), 0u)
        << "site must compile away entirely in normal builds";
  }
}

}  // namespace
}  // namespace pf
