#include "pufferfish/query.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(QueryTest, SumQuery) {
  const ScalarQuery q = SumQuery(3);
  EXPECT_DOUBLE_EQ(q.fn({0, 1, 2, 2}), 5.0);
  EXPECT_DOUBLE_EQ(q.lipschitz, 2.0);
}

TEST(QueryTest, MeanStateQuery) {
  const ScalarQuery q = MeanStateQuery(2, 4);
  EXPECT_DOUBLE_EQ(q.fn({0, 1, 1, 0}), 0.5);
  EXPECT_DOUBLE_EQ(q.lipschitz, 0.25);  // (k-1)/T = 1/4.
}

TEST(QueryTest, StateFrequencyQuery) {
  const ScalarQuery q = StateFrequencyQuery(1, 5);
  EXPECT_DOUBLE_EQ(q.fn({1, 0, 1, 1, 0}), 0.6);
  EXPECT_DOUBLE_EQ(q.lipschitz, 0.2);
}

TEST(QueryTest, CountHistogramQuery) {
  const VectorQuery q = CountHistogramQuery(3);
  const Vector h = q.fn({0, 2, 2, 1});
  EXPECT_DOUBLE_EQ(h[2], 2.0);
  EXPECT_DOUBLE_EQ(q.lipschitz, 2.0);
  EXPECT_EQ(q.dim, 3u);
}

TEST(QueryTest, RelativeFrequencyQueryLipschitz) {
  const VectorQuery q = RelativeFrequencyQuery(4, 100);
  EXPECT_DOUBLE_EQ(q.lipschitz, 0.02);  // 2/T, as in Section 5.1.
  const Vector h = q.fn(StateSequence(100, 2));
  EXPECT_DOUBLE_EQ(h[2], 1.0);
  EXPECT_DOUBLE_EQ(h[0], 0.0);
}

// The Lipschitz property itself: changing one record moves the output by at
// most L in L1.
TEST(QueryTest, LipschitzPropertyHolds) {
  const VectorQuery q = RelativeFrequencyQuery(3, 10);
  StateSequence a(10, 0);
  StateSequence b = a;
  b[4] = 2;
  EXPECT_LE(DistanceL1(q.fn(a), q.fn(b)), q.lipschitz + 1e-12);
  const ScalarQuery mean = MeanStateQuery(3, 10);
  EXPECT_LE(std::abs(mean.fn(a) - mean.fn(b)), mean.lipschitz + 1e-12);
}

}  // namespace
}  // namespace pf
