// End-to-end *privacy* validation: for small instantiations we can compute
// the mechanism's output density under each secret exactly (Laplace noise
// convolved with the conditional distribution of F(X)) and check the
// Definition 2.1 likelihood-ratio bound e^{-eps} <= ratio <= e^{eps}
// pointwise, rather than by sampling.
#include <gtest/gtest.h>

#include <cmath>

#include "data/flu.h"
#include "graphical/bayesian_network.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"
#include "pufferfish/wasserstein_mechanism.h"

namespace pf {
namespace {

// Output density of "F(X) + Lap(scale)" at w when F(X) | secret has the
// given discrete distribution.
double OutputDensity(const DiscreteDistribution& conditional, double scale,
                     double w) {
  double density = 0.0;
  for (const auto& atom : conditional.atoms()) {
    density += atom.p * std::exp(-std::fabs(w - atom.x) / scale) / (2.0 * scale);
  }
  return density;
}

void ExpectRatioBounded(const DiscreteDistribution& mu_i,
                        const DiscreteDistribution& mu_j, double scale,
                        double epsilon) {
  // Sweep the output space well past both supports.
  const double lo = std::min(mu_i.Min(), mu_j.Min()) - 6.0 * scale;
  const double hi = std::max(mu_i.Max(), mu_j.Max()) + 6.0 * scale;
  for (double w = lo; w <= hi; w += (hi - lo) / 400.0) {
    const double pi = OutputDensity(mu_i, scale, w);
    const double pj = OutputDensity(mu_j, scale, w);
    ASSERT_GT(pj, 0.0);
    const double ratio = pi / pj;
    EXPECT_LE(ratio, std::exp(epsilon) * (1.0 + 1e-9)) << "w=" << w;
    EXPECT_GE(ratio, std::exp(-epsilon) * (1.0 - 1e-9)) << "w=" << w;
  }
}

class WassersteinPrivacySweep : public ::testing::TestWithParam<double> {};

// The Wasserstein Mechanism satisfies the Definition 2.1 bound on the flu
// worked example at every epsilon regime the paper uses.
TEST_P(WassersteinPrivacySweep, FluExampleSatisfiesPufferfish) {
  const double epsilon = GetParam();
  const FluCliqueModel clique = FluCliqueModel::PaperExample();
  const ConditionalOutputPair pair = clique.CountQueryOutputPair().ValueOrDie();
  const auto mech = WassersteinMechanism::Make({pair}, epsilon).ValueOrDie();
  ExpectRatioBounded(pair.mu_i, pair.mu_j, mech.noise_scale(), epsilon);
}

INSTANTIATE_TEST_SUITE_P(EpsilonRegimes, WassersteinPrivacySweep,
                         ::testing::Values(0.2, 1.0, 5.0));

// A smaller noise scale than W/epsilon must *violate* the bound somewhere —
// the mechanism's calibration is tight, not vacuous.
TEST(WassersteinPrivacyTest, UnderscaledNoiseViolatesBound) {
  const double epsilon = 1.0;
  const FluCliqueModel clique = FluCliqueModel::PaperExample();
  const ConditionalOutputPair pair = clique.CountQueryOutputPair().ValueOrDie();
  const double w = WassersteinMechanism::Make({pair}, epsilon)
                       .ValueOrDie()
                       .wasserstein_sensitivity();
  const double cheating_scale = 0.4 * w / epsilon;
  bool violated = false;
  for (double out = -4.0; out <= 8.0; out += 0.02) {
    const double pi = OutputDensity(pair.mu_i, cheating_scale, out);
    const double pj = OutputDensity(pair.mu_j, cheating_scale, out);
    const double ratio = pi / pj;
    if (ratio > std::exp(epsilon) || ratio < std::exp(-epsilon)) {
      violated = true;
      break;
    }
  }
  EXPECT_TRUE(violated);
}

// MQM privacy on a small chain, checked exhaustively: for every node i and
// value pair (a, b), the conditional output distributions of the sum query
// under the chain theta are computed by enumeration, and the Laplace noise
// L * sigma_max must keep the likelihood ratio within e^{+-eps}.
class MqmPrivacySweep : public ::testing::TestWithParam<double> {};

TEST_P(MqmPrivacySweep, SmallChainSatisfiesPufferfish) {
  const double epsilon = GetParam();
  const Vector q = {0.8, 0.2};
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const std::size_t n = 6;
  const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = epsilon;
  options.max_nearby = n;
  const ChainMqmResult r = MqmExactAnalyze({chain}, n, options).ValueOrDie();
  // Sum query: 1-Lipschitz.
  const BayesianNetwork bn = BayesianNetwork::FromMarkovChain(q, p, n).ValueOrDie();
  const auto query = [](const Assignment& a) {
    double s = 0.0;
    for (int v : a) s += v;
    return s;
  };
  const double scale = 1.0 * r.sigma_max;
  for (int i = 0; i < static_cast<int>(n); ++i) {
    const auto mu0 = ConditionalOutputDistribution(bn, query, i, 0).ValueOrDie();
    const auto mu1 = ConditionalOutputDistribution(bn, query, i, 1).ValueOrDie();
    ExpectRatioBounded(mu0, mu1, scale, epsilon);
  }
}

INSTANTIATE_TEST_SUITE_P(EpsilonRegimes, MqmPrivacySweep,
                         ::testing::Values(0.5, 1.0, 5.0));

// MQMApprox uses an upper bound on the max-influence, so its (larger) noise
// also satisfies the bound.
TEST(MqmApproxPrivacyTest, SmallChainSatisfiesPufferfish) {
  const double epsilon = 1.0;
  const Vector q = {0.8, 0.2};
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const std::size_t n = 40;
  const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = epsilon;
  options.max_nearby = 0;
  const ChainMqmResult approx =
      MqmApproxAnalyze({chain}, n, options).ValueOrDie();
  ChainMqmOptions exact_options;
  exact_options.epsilon = epsilon;
  exact_options.max_nearby = n;
  const ChainMqmResult exact =
      MqmExactAnalyze({chain}, n, exact_options).ValueOrDie();
  // Approx noise dominates exact noise, which is already sufficient.
  EXPECT_GE(approx.sigma_max + 1e-12, exact.sigma_max);
}

}  // namespace
}  // namespace pf
