#include "baselines/gk16.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pufferfish/framework.h"

namespace pf {
namespace {

TEST(Gk16Test, PairwiseInfluenceBinaryChain) {
  // nu = (1/4) |log(p0 p1 / ((1-p0)(1-p1)))| for a binary chain.
  const Matrix p = BinaryChainIntervalClass::TransitionFor(0.7, 0.6);
  const double expected = 0.25 * std::log(0.7 * 0.6 / (0.3 * 0.4));
  EXPECT_NEAR(Gk16PairwiseInfluence(p), expected, 1e-12);
}

TEST(Gk16Test, UniformChainZeroInfluence) {
  const Matrix p = BinaryChainIntervalClass::TransitionFor(0.5, 0.5);
  EXPECT_NEAR(Gk16PairwiseInfluence(p), 0.0, 1e-12);
}

TEST(Gk16Test, ZeroTransitionGivesInfiniteInfluence) {
  const Matrix p{{1.0, 0.0}, {0.5, 0.5}};
  EXPECT_TRUE(std::isinf(Gk16PairwiseInfluence(p)));
}

TEST(Gk16Test, SpectralNormFormula) {
  const Matrix p = BinaryChainIntervalClass::TransitionFor(0.6, 0.6);
  const Gk16Analysis a = Gk16Analyze({p}, 100, 1.0).ValueOrDie();
  const double nu = Gk16PairwiseInfluence(p);
  EXPECT_NEAR(a.spectral_norm, 2.0 * nu * std::cos(M_PI / 101.0), 1e-9);
}

TEST(Gk16Test, ApplicabilityThresholdIndependentOfEpsilon) {
  // Paper: "the position of this line does not change as a function of eps".
  const Matrix wide = BinaryChainIntervalClass::TransitionFor(0.9, 0.9);
  for (double eps : {0.2, 1.0, 5.0}) {
    const Gk16Analysis a = Gk16Analyze({wide}, 100, eps).ValueOrDie();
    EXPECT_FALSE(a.applicable) << eps;
  }
  const Matrix narrow = BinaryChainIntervalClass::TransitionFor(0.55, 0.55);
  for (double eps : {0.2, 1.0, 5.0}) {
    const Gk16Analysis a = Gk16Analyze({narrow}, 100, eps).ValueOrDie();
    EXPECT_TRUE(a.applicable) << eps;
  }
}

TEST(Gk16Test, SigmaApproachesLaplaceForNarrowClasses) {
  // As the class tightens to uniform chains, rho -> 0 and the noise scale
  // approaches the plain 1/epsilon Laplace level.
  const Matrix p = BinaryChainIntervalClass::TransitionFor(0.501, 0.501);
  const Gk16Analysis a = Gk16Analyze({p}, 100, 1.0).ValueOrDie();
  EXPECT_NEAR(a.sigma, 1.0, 0.02);
}

TEST(Gk16Test, ClassTakesWorstNu) {
  const Matrix tame = BinaryChainIntervalClass::TransitionFor(0.5, 0.5);
  const Matrix wild = BinaryChainIntervalClass::TransitionFor(0.8, 0.8);
  const Gk16Analysis a = Gk16Analyze({tame, wild}, 50, 1.0).ValueOrDie();
  EXPECT_NEAR(a.nu, Gk16PairwiseInfluence(wild), 1e-12);
}

TEST(Gk16Test, ReleaseFailsWhenInapplicable) {
  const Matrix p{{1.0, 0.0}, {0.5, 0.5}};
  const Gk16Analysis a = Gk16Analyze({p}, 100, 1.0).ValueOrDie();
  Rng rng(1);
  EXPECT_FALSE(Gk16ReleaseScalar(a, 0.0, 1.0, &rng).ok());
  EXPECT_FALSE(Gk16ReleaseVector(a, {0.0}, 1.0, &rng).ok());
}

TEST(Gk16Test, ReleaseNoiseCalibrated) {
  const Matrix p = BinaryChainIntervalClass::TransitionFor(0.55, 0.55);
  const Gk16Analysis a = Gk16Analyze({p}, 100, 1.0).ValueOrDie();
  Rng rng(2);
  double abs_err = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    abs_err += std::fabs(Gk16ReleaseScalar(a, 0.0, 1.0, &rng).ValueOrDie());
  }
  EXPECT_NEAR(abs_err / n, a.sigma, 0.05 * a.sigma + 0.01);
}

TEST(Gk16Test, ValidatesInputs) {
  EXPECT_FALSE(Gk16Analyze(std::vector<Matrix>{}, 100, 1.0).ok());
  EXPECT_FALSE(
      Gk16Analyze({BinaryChainIntervalClass::TransitionFor(0.5, 0.5)}, 1, 1.0)
          .ok());
  EXPECT_FALSE(Gk16Analyze({Matrix{{0.9, 0.2}, {0.4, 0.6}}}, 10, 1.0).ok());
}

}  // namespace
}  // namespace pf
