// Statistical checks of the released outputs: the noise actually follows the
// calibrated Laplace law (location, scale, per-coordinate independence), and
// repeated releases compose as Theorem 4.4 promises (density-ratio check at
// the composed budget).
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/group_dp.h"
#include "baselines/laplace_dp.h"
#include "graphical/bayesian_network.h"
#include "pufferfish/markov_quilt_mechanism.h"
#include "pufferfish/mqm_exact.h"
#include "pufferfish/wasserstein_mechanism.h"

namespace pf {
namespace {

TEST(ReleaseDistributionTest, VectorReleaseMomentsMatchLaplace) {
  Rng rng(1);
  const Vector truth = {0.25, 0.5, 0.25};
  const double lipschitz = 0.1;
  const double sigma = 4.0;
  const double scale = lipschitz * sigma;
  const int n = 60000;
  Vector mean(3, 0.0), meanabs(3, 0.0);
  double cross = 0.0;
  for (int t = 0; t < n; ++t) {
    const Vector noisy = MqmReleaseVector(truth, lipschitz, sigma, &rng);
    for (std::size_t j = 0; j < 3; ++j) {
      mean[j] += noisy[j] - truth[j];
      meanabs[j] += std::fabs(noisy[j] - truth[j]);
    }
    cross += (noisy[0] - truth[0]) * (noisy[1] - truth[1]);
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(mean[j] / n, 0.0, 0.02);           // Unbiased.
    EXPECT_NEAR(meanabs[j] / n, scale, 0.02);      // E|Lap(b)| = b.
  }
  // Coordinates are independent: covariance ~ 0 (var of Lap is 2 b^2).
  EXPECT_NEAR(cross / n, 0.0, 0.05 * 2.0 * scale * scale + 0.01);
}

TEST(ReleaseDistributionTest, MedianIsTruth) {
  Rng rng(2);
  const auto mech = LaplaceDpMechanism::Make(1.0, 1.0).ValueOrDie();
  int above = 0;
  const int n = 50000;
  for (int t = 0; t < n; ++t) {
    if (mech.ReleaseScalar(10.0, &rng) > 10.0) ++above;
  }
  EXPECT_NEAR(above / static_cast<double>(n), 0.5, 0.01);
}

TEST(ReleaseDistributionTest, TailDecayIsExponential) {
  // P(|noise| > t) = exp(-t / b) for Laplace(b).
  Rng rng(3);
  const auto mech = GroupDpMechanism::Make(2.0, 1.0).ValueOrDie();  // b = 2.
  const int n = 200000;
  int beyond2 = 0, beyond4 = 0;
  for (int t = 0; t < n; ++t) {
    const double err = std::fabs(mech.ReleaseScalar(0.0, &rng));
    if (err > 2.0) ++beyond2;
    if (err > 4.0) ++beyond4;
  }
  EXPECT_NEAR(beyond2 / static_cast<double>(n), std::exp(-1.0), 0.01);
  EXPECT_NEAR(beyond4 / static_cast<double>(n), std::exp(-2.0), 0.01);
}

// Output density of F(X) + Lap(scale) given a conditional distribution of F.
double OutputDensity(const DiscreteDistribution& conditional, double scale,
                     double w) {
  double density = 0.0;
  for (const auto& atom : conditional.atoms()) {
    density += atom.p * std::exp(-std::fabs(w - atom.x) / scale) / (2.0 * scale);
  }
  return density;
}

// Theorem 4.4 in density form: K independent releases at epsilon each keep
// the joint likelihood ratio within e^{+-K epsilon}. The joint density
// factorizes over releases, so the bound is the product of per-release
// bounds — checked here on a grid of output pairs for K = 2.
TEST(CompositionDistributionTest, TwoReleasesStayWithinComposedBudget) {
  const double epsilon = 0.8;
  const Vector q = {0.8, 0.2};
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const std::size_t n = 5;
  const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = epsilon;
  options.max_nearby = n;
  const ChainMqmResult r = MqmExactAnalyze({chain}, n, options).ValueOrDie();
  const BayesianNetwork bn = BayesianNetwork::FromMarkovChain(q, p, n).ValueOrDie();
  const auto sum_query = [](const Assignment& a) {
    double s = 0.0;
    for (int v : a) s += v;
    return s;
  };
  const double scale = r.sigma_max;  // Sum query is 1-Lipschitz.
  for (int i = 0; i < static_cast<int>(n); ++i) {
    const auto mu0 =
        ConditionalOutputDistribution(bn, sum_query, i, 0).ValueOrDie();
    const auto mu1 =
        ConditionalOutputDistribution(bn, sum_query, i, 1).ValueOrDie();
    for (double w1 = -2.0; w1 <= 7.0; w1 += 0.5) {
      for (double w2 = -2.0; w2 <= 7.0; w2 += 0.5) {
        const double joint0 =
            OutputDensity(mu0, scale, w1) * OutputDensity(mu0, scale, w2);
        const double joint1 =
            OutputDensity(mu1, scale, w1) * OutputDensity(mu1, scale, w2);
        const double ratio = joint0 / joint1;
        EXPECT_LE(ratio, std::exp(2.0 * epsilon) * (1 + 1e-9));
        EXPECT_GE(ratio, std::exp(-2.0 * epsilon) * (1 - 1e-9));
      }
    }
  }
}

TEST(ReleaseDistributionTest, WassersteinReleaseReproducible) {
  const auto mu0 = DiscreteDistribution::FromMasses({0.5, 0.5}).ValueOrDie();
  const auto mu1 = DiscreteDistribution::FromMasses({0.2, 0.8}).ValueOrDie();
  const auto mech =
      WassersteinMechanism::Make({{mu0, mu1}}, 1.0).ValueOrDie();
  Rng a(9), b(9);
  for (int t = 0; t < 20; ++t) {
    EXPECT_DOUBLE_EQ(mech.Release(1.0, &a), mech.Release(1.0, &b));
  }
}

}  // namespace
}  // namespace pf
