#include "data/activity.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(ActivityTest, GroupMetadata) {
  EXPECT_EQ(ActivityGroupSize(ActivityGroup::kCyclist), 40u);
  EXPECT_EQ(ActivityGroupSize(ActivityGroup::kOlderWoman), 16u);
  EXPECT_EQ(ActivityGroupSize(ActivityGroup::kOverweightWoman), 36u);
  EXPECT_STREQ(ActivityStateName(kActive), "Active");
  EXPECT_STREQ(ActivityStateName(kSedentary), "Sedentary");
  EXPECT_STREQ(ActivityGroupName(ActivityGroup::kCyclist), "cyclist");
}

TEST(ActivityTest, GroupTransitionsAreValidChains) {
  for (auto group : {ActivityGroup::kCyclist, ActivityGroup::kOlderWoman,
                     ActivityGroup::kOverweightWoman}) {
    const Matrix p = ActivityGroupTransition(group);
    EXPECT_TRUE(p.IsRowStochastic(1e-9)) << ActivityGroupName(group);
    const MarkovChain chain =
        MarkovChain::Make(Vector(kNumActivityStates, 0.25), p).ValueOrDie();
    EXPECT_TRUE(chain.IsIrreducible());
    EXPECT_TRUE(chain.IsAperiodic());
  }
}

TEST(ActivityTest, GroupStationaryShapesMatchStudy) {
  // Cyclists spend more time active than either women group; overweight
  // women are the most sedentary (the Figure 4(d-f) pattern).
  auto stationary = [](ActivityGroup g) {
    const MarkovChain chain =
        MarkovChain::Make(Vector(kNumActivityStates, 0.25),
                          ActivityGroupTransition(g))
            .ValueOrDie();
    return chain.StationaryDistribution().ValueOrDie();
  };
  const Vector cyc = stationary(ActivityGroup::kCyclist);
  const Vector older = stationary(ActivityGroup::kOlderWoman);
  const Vector over = stationary(ActivityGroup::kOverweightWoman);
  EXPECT_GT(cyc[kActive], older[kActive]);
  EXPECT_GT(cyc[kActive], over[kActive]);
  EXPECT_GT(over[kSedentary], cyc[kSedentary]);
  EXPECT_GT(over[kSedentary], older[kSedentary]);
}

TEST(ActivityTest, SimulationShape) {
  Rng rng(21);
  ActivitySimOptions options;
  options.mean_observations_per_person = 2000;  // Small for test speed.
  options.mean_segment_length = 400;
  const ActivityGroupData data =
      SimulateActivityGroup(ActivityGroup::kOlderWoman, options, &rng)
          .ValueOrDie();
  EXPECT_EQ(data.people.size(), 16u);
  for (const ActivityPerson& person : data.people) {
    EXPECT_GT(person.chains.size(), 1u);
    EXPECT_GT(person.TotalObservations(), 1000u);
    EXPECT_LT(person.TotalObservations(), 3000u);
    EXPECT_LE(person.LongestChain(), person.TotalObservations());
    for (const StateSequence& chain : person.chains) {
      EXPECT_GE(chain.size(), 50u);
      for (int s : chain) {
        EXPECT_GE(s, 0);
        EXPECT_LT(s, static_cast<int>(kNumActivityStates));
      }
    }
  }
  EXPECT_EQ(data.AllChains().size(),
            [&] {
              std::size_t n = 0;
              for (const auto& p : data.people) n += p.chains.size();
              return n;
            }());
}

TEST(ActivityTest, EstimatedChainIsWellBehaved) {
  // The empirical transition matrix from a simulated group must support the
  // MQM pipeline: irreducible, aperiodic, stationary initial.
  Rng rng(22);
  ActivitySimOptions options;
  options.mean_observations_per_person = 3000;
  const ActivityGroupData data =
      SimulateActivityGroup(ActivityGroup::kCyclist, options, &rng).ValueOrDie();
  const MarkovChain est =
      MarkovChain::Estimate(data.AllChains(), kNumActivityStates).ValueOrDie();
  EXPECT_TRUE(est.IsIrreducible());
  EXPECT_TRUE(est.IsAperiodic());
  EXPECT_GT(est.MinStationaryProbability().ValueOrDie(), 0.0);
}

TEST(ActivityTest, InvalidOptionsRejected) {
  Rng rng(1);
  ActivitySimOptions options;
  options.mean_observations_per_person = 0;
  EXPECT_FALSE(
      SimulateActivityGroup(ActivityGroup::kCyclist, options, &rng).ok());
}

}  // namespace
}  // namespace pf
