#include "data/flu.h"

#include <gtest/gtest.h>

#include "dist/wasserstein.h"

namespace pf {
namespace {

// Section 3.1 table: conditional count distributions of the worked example.
TEST(FluTest, PaperExampleConditionals) {
  const FluCliqueModel clique = FluCliqueModel::PaperExample();
  const DiscreteDistribution mu0 = clique.ConditionalCount(0).ValueOrDie();
  EXPECT_NEAR(mu0.MassAt(0.0), 0.2, 1e-12);
  EXPECT_NEAR(mu0.MassAt(1.0), 0.225, 1e-12);
  EXPECT_NEAR(mu0.MassAt(2.0), 0.5, 1e-12);
  EXPECT_NEAR(mu0.MassAt(3.0), 0.075, 1e-12);
  EXPECT_NEAR(mu0.MassAt(4.0), 0.0, 1e-12);
  const DiscreteDistribution mu1 = clique.ConditionalCount(1).ValueOrDie();
  EXPECT_NEAR(mu1.MassAt(0.0), 0.0, 1e-12);
  EXPECT_NEAR(mu1.MassAt(1.0), 0.075, 1e-12);
  EXPECT_NEAR(mu1.MassAt(2.0), 0.5, 1e-12);
  EXPECT_NEAR(mu1.MassAt(3.0), 0.225, 1e-12);
  EXPECT_NEAR(mu1.MassAt(4.0), 0.2, 1e-12);
}

TEST(FluTest, PaperExampleWassersteinIsTwo) {
  const FluCliqueModel clique = FluCliqueModel::PaperExample();
  const ConditionalOutputPair pair = clique.CountQueryOutputPair().ValueOrDie();
  EXPECT_NEAR(WassersteinInf(pair.mu_i, pair.mu_j).ValueOrDie(), 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(clique.GroupSensitivity(), 4.0);
}

TEST(FluTest, InfectionProbabilitySymmetricExample) {
  // Symmetric p_N around n/2 gives P(X_i = 1) = 1/2.
  EXPECT_NEAR(FluCliqueModel::PaperExample().InfectionProbability(), 0.5, 1e-12);
}

TEST(FluTest, ContagionModelShape) {
  // Example 2's p(N = j) proportional to exp(2j): heavily infected cliques.
  const FluCliqueModel clique = FluCliqueModel::Contagion(5, 2.0).ValueOrDie();
  const Vector& p = clique.count_distribution();
  for (std::size_t j = 0; j + 1 < p.size(); ++j) {
    EXPECT_LT(p[j], p[j + 1]);
  }
  EXPECT_TRUE(IsProbabilityVector(p, 1e-9));
}

TEST(FluTest, Validation) {
  EXPECT_FALSE(FluCliqueModel::Make(0, {1.0}).ok());
  EXPECT_FALSE(FluCliqueModel::Make(2, {0.5, 0.5}).ok());       // Wrong size.
  EXPECT_FALSE(FluCliqueModel::Make(2, {0.5, 0.2, 0.2}).ok());  // Bad sum.
  EXPECT_FALSE(FluCliqueModel::PaperExample().ConditionalCount(2).ok());
}

TEST(FluTest, DegenerateConditioningFails) {
  // Everyone always infected: X_i = 0 has probability zero.
  const FluCliqueModel all =
      FluCliqueModel::Make(2, {0.0, 0.0, 1.0}).ValueOrDie();
  EXPECT_FALSE(all.ConditionalCount(0).ok());
  EXPECT_TRUE(all.ConditionalCount(1).ok());
}

TEST(FluTest, SampleMatchesCountDistribution) {
  const FluCliqueModel clique = FluCliqueModel::PaperExample();
  Rng rng(55);
  Vector freq(5, 0.0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    const std::vector<int> status = clique.Sample(&rng);
    int count = 0;
    for (int s : status) count += s;
    freq[static_cast<std::size_t>(count)] += 1.0;
  }
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_NEAR(freq[j] / trials, clique.count_distribution()[j], 0.01) << j;
  }
}

TEST(FluTest, NetworkSensitivityIsMaxOverCliques) {
  const FluCliqueModel small = FluCliqueModel::PaperExample();
  const FluCliqueModel big = FluCliqueModel::Contagion(8, 0.5).ValueOrDie();
  const FluNetwork net({small, big});
  EXPECT_EQ(net.population(), 12u);
  EXPECT_DOUBLE_EQ(net.GroupSensitivity(), 8.0);
  const double w = net.CountQuerySensitivity().ValueOrDie();
  const double w_small = WassersteinInf(small.CountQueryOutputPair().ValueOrDie().mu_i,
                                        small.CountQueryOutputPair().ValueOrDie().mu_j)
                             .ValueOrDie();
  EXPECT_GE(w + 1e-12, w_small);
  // W never exceeds the group sensitivity (Theorem 3.3).
  EXPECT_LE(w, net.GroupSensitivity() + 1e-12);
}

TEST(FluTest, NetworkSample) {
  const FluNetwork net({FluCliqueModel::PaperExample(),
                        FluCliqueModel::Contagion(3, 1.0).ValueOrDie()});
  Rng rng(9);
  const std::vector<int> s = net.Sample(&rng);
  EXPECT_EQ(s.size(), 7u);
  for (int v : s) EXPECT_TRUE(v == 0 || v == 1);
}

}  // namespace
}  // namespace pf
