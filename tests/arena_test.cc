// Lifetime and accounting rules of the analysis arena (see the header
// comment in common/arena.h — this file pins them).
#include "common/arena.h"

#include <gtest/gtest.h>

#include <cstring>

namespace pf {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(1 << 10);
  double* a = arena.AllocDoubles(16);
  double* b = arena.AllocDoubles(16);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 16, 0u);
  // Writes through one pointer never land in the other's range.
  for (int i = 0; i < 16; ++i) a[i] = 1.0;
  for (int i = 0; i < 16; ++i) b[i] = 2.0;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a[i], 1.0);
}

TEST(ArenaTest, ResetRetainsBlocksAndStopsAllocating) {
  Arena arena(1 << 10);
  // Warm up: force a couple of block acquisitions.
  for (int round = 0; round < 4; ++round) {
    arena.AllocDoubles(300);
    arena.AllocDoubles(300);
    arena.Reset();
  }
  const std::size_t warm_blocks = arena.block_allocations();
  const std::size_t warm_retained = arena.retained_bytes();
  EXPECT_GT(warm_blocks, 0u);
  EXPECT_GT(warm_retained, 0u);
  // Steady state: the identical burst after Reset reuses retained blocks —
  // zero new heap blocks, retained bytes unchanged.
  for (int round = 0; round < 8; ++round) {
    arena.Reset();
    arena.AllocDoubles(300);
    arena.AllocDoubles(300);
  }
  EXPECT_EQ(arena.block_allocations(), warm_blocks);
  EXPECT_EQ(arena.retained_bytes(), warm_retained);
  EXPECT_EQ(arena.in_use_bytes(), 2 * 300 * sizeof(double));
}

TEST(ArenaTest, CheckpointRewindBoundsNestedScratch) {
  Arena arena(1 << 10);
  arena.AllocDoubles(10);
  const std::size_t outer = arena.in_use_bytes();
  const Arena::Checkpoint cp = arena.Save();
  for (int step = 0; step < 100; ++step) {
    arena.AllocDoubles(64);
    arena.Rewind(cp);
    // In-use bytes return to the checkpoint every step, so nested scratch
    // never accumulates across steps.
    EXPECT_EQ(arena.in_use_bytes(), outer);
  }
  // Peak reflects one step's scratch, not 100 steps' worth.
  EXPECT_LT(arena.peak_bytes(), outer + 2 * 64 * sizeof(double));
}

TEST(ArenaTest, RewoundStorageIsReusedNotReallocated) {
  Arena arena(1 << 12);
  const Arena::Checkpoint cp = arena.Save();
  double* first = arena.AllocDoubles(32);
  arena.Rewind(cp);
  const std::size_t blocks = arena.block_allocations();
  double* second = arena.AllocDoubles(32);
  EXPECT_EQ(first, second);  // Same bump cursor, same storage.
  EXPECT_EQ(arena.block_allocations(), blocks);
}

TEST(ArenaTest, OversizedRequestGetsOwnBlock) {
  Arena arena(1 << 8);  // 256-byte blocks.
  double* big = arena.AllocDoubles(1000);  // 8000 bytes >> block size.
  ASSERT_NE(big, nullptr);
  std::memset(big, 0, 1000 * sizeof(double));
  EXPECT_GE(arena.retained_bytes(), 1000 * sizeof(double));
}

TEST(ArenaTest, ReleaseDropsRetainedBytesToZero) {
  Arena arena(1 << 10);
  arena.AllocDoubles(100);
  EXPECT_GT(arena.retained_bytes(), 0u);
  arena.Release();
  EXPECT_EQ(arena.retained_bytes(), 0u);
  EXPECT_EQ(arena.in_use_bytes(), 0u);
  // The arena is still usable after Release (it just re-acquires blocks).
  double* p = arena.AllocDoubles(10);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0;
  EXPECT_EQ(p[0], 1.0);
}

TEST(ArenaTest, PeakIsHighWaterMarkAcrossResets) {
  Arena arena(1 << 10);
  arena.AllocDoubles(500);
  const std::size_t peak = arena.peak_bytes();
  EXPECT_GE(peak, 500 * sizeof(double));
  arena.Reset();
  arena.AllocDoubles(10);
  EXPECT_EQ(arena.peak_bytes(), peak);  // Reset does not lower the mark.
}

TEST(ArenaTest, ProcessWideCountersAggregateArenas) {
  const std::uint64_t blocks_before = Arena::TotalBlockAllocations();
  const std::uint64_t retained_before = Arena::TotalRetainedBytes();
  {
    Arena arena(1 << 10);
    arena.AllocDoubles(100);
    EXPECT_GT(Arena::TotalBlockAllocations(), blocks_before);
    EXPECT_GT(Arena::TotalRetainedBytes(), retained_before);
  }
  // Destruction returns the retained bytes to the process-wide total.
  EXPECT_EQ(Arena::TotalRetainedBytes(), retained_before);
}

}  // namespace
}  // namespace pf
