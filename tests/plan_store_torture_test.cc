// Crash-safe persistence torture: every failure injected into the plan
// snapshot save path (open, short write, flush, fsync, simulated kill
// before rename, rename, directory sync) must leave the PREVIOUS snapshot
// readable and intact — never a torn or half-written file — and surface as
// a typed Status the caller can retry. Load-side injections surface typed
// errors and the engine falls back to a cold start with full context
// chained into one message.
//
// The injection tests require -DPF_FAILPOINTS=ON and skip otherwise; the
// context-chaining test at the bottom corrupts a real file and runs in
// every build.
#include "pufferfish/plan_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "graphical/markov_chain.h"
#include "pufferfish/mechanism.h"

namespace pf {
namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

MarkovChain TortureChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

/// Snapshot contents distinguishable by entry count: the old snapshot has
/// one plan, the new one two — so "which snapshot survived?" is one size
/// check.
std::vector<CachedPlan> MakeEntries(std::size_t count) {
  AnalysisCache cache;
  const LaplaceDpUnified laplace(2.0);
  for (std::size_t i = 0; i < count; ++i) {
    const double epsilon = 0.5 + 0.25 * static_cast<double>(i);
    (void)cache.GetOrAnalyze(laplace, epsilon).ValueOrDie();
  }
  return cache.ExportPlans();
}

class PlanStoreTortureTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!kFailpointsEnabled) {
      GTEST_SKIP() << "build without PF_FAILPOINTS; nothing to inject";
    }
    FailpointRegistry::Instance().DisarmAll();
    path_ = testing::TempDir() + "/pf_torture.snapshot";
    tmp_ = path_ + ".tmp";
    std::remove(path_.c_str());
    std::remove(tmp_.c_str());
  }
  void TearDown() override {
    if (kFailpointsEnabled) FailpointRegistry::Instance().DisarmAll();
    std::remove(path_.c_str());
    std::remove(tmp_.c_str());
  }

  std::string path_;
  std::string tmp_;
};

// Every save-side failure mode: the published snapshot is untouched, the
// temp file is cleaned up, the error is typed, and a clean retry lands the
// new snapshot. (The fsync/sync_dir entries double as the durability
// regression test: if the fsync calls were ever dropped from the save
// path, their failpoints would stop firing and this test would fail.)
TEST_F(PlanStoreTortureTest, SaveFailuresLeaveOldSnapshotIntact) {
  auto& reg = FailpointRegistry::Instance();
  const std::vector<CachedPlan> old_entries = MakeEntries(1);
  const std::vector<CachedPlan> new_entries = MakeEntries(2);

  const char* const kSaveSites[] = {
      "plan_store.open", "plan_store.write",  "plan_store.flush",
      "plan_store.sync", "plan_store.rename", "plan_store.sync_dir",
  };
  for (const char* site : kSaveSites) {
    SCOPED_TRACE(site);
    ASSERT_TRUE(SavePlanSnapshot(path_, old_entries).ok());

    reg.DisarmAll();
    reg.ArmOnce(site);
    const Status st = SavePlanSnapshot(path_, new_entries);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(reg.Fires(site), 1u) << "site not on the save path";
    EXPECT_FALSE(st.message().empty());

    if (std::string(site) == "plan_store.sync_dir") {
      // The rename already landed when the directory sync failed: the NEW
      // snapshot is on disk (correct content, durability not yet
      // guaranteed) — what must never exist is a torn file.
      EXPECT_EQ(LoadPlanSnapshot(path_).ValueOrDie().size(),
                new_entries.size());
    } else {
      // Failure before the rename: the old snapshot is still published...
      EXPECT_EQ(LoadPlanSnapshot(path_).ValueOrDie().size(),
                old_entries.size());
    }
    // ...and no temp file is left behind.
    EXPECT_FALSE(FileExists(tmp_)) << "leaked temp file";

    // The failure was transient: the retry publishes the new snapshot.
    reg.DisarmAll();
    ASSERT_TRUE(SavePlanSnapshot(path_, new_entries).ok());
    EXPECT_EQ(LoadPlanSnapshot(path_).ValueOrDie().size(), new_entries.size());
  }
}

// Simulated kill between the durable temp write and the rename: the old
// snapshot is still published and readable; the temp file left behind (as
// a real crash would leave it) holds a complete, valid copy of the new
// snapshot — fsync'd before the crash point — so no partially-written
// bytes exist anywhere.
TEST_F(PlanStoreTortureTest, CrashBeforeRenameLeavesOldSnapshotPublished) {
  auto& reg = FailpointRegistry::Instance();
  const std::vector<CachedPlan> old_entries = MakeEntries(1);
  const std::vector<CachedPlan> new_entries = MakeEntries(2);
  ASSERT_TRUE(SavePlanSnapshot(path_, old_entries).ok());

  reg.ArmOnce("plan_store.crash_before_rename");
  ASSERT_FALSE(SavePlanSnapshot(path_, new_entries).ok());
  EXPECT_EQ(reg.Fires("plan_store.crash_before_rename"), 1u);

  EXPECT_EQ(LoadPlanSnapshot(path_).ValueOrDie().size(), old_entries.size());
  ASSERT_TRUE(FileExists(tmp_)) << "the simulated kill should leave the tmp";
  EXPECT_EQ(LoadPlanSnapshot(tmp_).ValueOrDie().size(), new_entries.size())
      << "tmp must be a complete valid snapshot (it was fsync'd)";
}

TEST_F(PlanStoreTortureTest, LoadFailuresAreTypedAndRecoverable) {
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(SavePlanSnapshot(path_, MakeEntries(2)).ok());
  for (const char* site : {"plan_store.load.open", "plan_store.load.read"}) {
    SCOPED_TRACE(site);
    reg.DisarmAll();
    reg.ArmOnce(site);
    const auto loaded = LoadPlanSnapshot(path_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(reg.Fires(site), 1u);
    reg.DisarmAll();
    EXPECT_EQ(LoadPlanSnapshot(path_).ValueOrDie().size(), 2u);
  }
}

// Engine-level: a failed warm-restart load surfaces one context-chained
// error and the engine then serves cold with the exact same answers.
TEST_F(PlanStoreTortureTest, EngineFallsBackColdAfterInjectedLoadFailure) {
  auto& reg = FailpointRegistry::Instance();
  const ModelSpec model = ModelSpec::ChainClass({TortureChain(0.8, 0.7)}, 40);
  auto saver = PrivacyEngine::Create(model).ValueOrDie();
  const double cold_sigma =
      saver->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
  ASSERT_TRUE(saver->SaveAnalyses(path_).ok());

  auto restored = PrivacyEngine::Create(model).ValueOrDie();
  reg.ArmOnce("plan_store.load.open");
  const auto loaded = restored->LoadAnalyses(path_);
  ASSERT_FALSE(loaded.ok());
  // Context chains from the engine layer down to the injection.
  EXPECT_NE(loaded.status().message().find("warm-restart load"),
            std::string::npos)
      << loaded.status().ToString();

  // Cold fallback: same sigma, one cache miss, no crash.
  EXPECT_EQ(restored->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma,
            cold_sigma);
}

// ------------------------------------------------ context chain (no FP) ----

// The error-context chain pinned end to end in every build: a corrupt
// snapshot travels plan_store -> LoadAnalyses as ONE message carrying both
// the engine-layer context and the root cause.
TEST(PlanStoreContextTest, WarmRestartLoadChainsContextToRootCause) {
  const std::string path = testing::TempDir() + "/pf_context.snapshot";
  const ModelSpec model = ModelSpec::ChainClass({TortureChain(0.8, 0.7)}, 40);
  auto saver = PrivacyEngine::Create(model).ValueOrDie();
  (void)saver->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  ASSERT_TRUE(saver->SaveAnalyses(path).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 24, SEEK_SET);
    const int original = std::fgetc(f);
    ASSERT_NE(original, EOF);
    std::fseek(f, 24, SEEK_SET);
    std::fputc(original ^ 0x7E, f);  // Flip bits so corruption is certain.
    std::fclose(f);
  }
  auto restored = PrivacyEngine::Create(model).ValueOrDie();
  const auto loaded = restored->LoadAnalyses(path);
  ASSERT_FALSE(loaded.ok());
  const std::string& message = loaded.status().message();
  EXPECT_NE(message.find("warm-restart load"), std::string::npos) << message;
  EXPECT_NE(message.find("plan snapshot"), std::string::npos) << message;
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf
