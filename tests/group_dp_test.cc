#include "baselines/group_dp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

TEST(GroupDpTest, ScaleIsGroupSensitivityOverEpsilon) {
  const auto m = GroupDpMechanism::Make(4.0, 2.0).ValueOrDie();
  EXPECT_DOUBLE_EQ(m.noise_scale(), 2.0);
}

TEST(GroupDpTest, Validation) {
  EXPECT_FALSE(GroupDpMechanism::Make(1.0, -1.0).ok());
  EXPECT_FALSE(GroupDpMechanism::Make(-1.0, 1.0).ok());
}

TEST(GroupDpTest, RelativeFrequencySensitivitySingleChain) {
  // One chain: changing everything moves the histogram by 2.
  const std::vector<StateSequence> seqs = {StateSequence(100, 0)};
  EXPECT_DOUBLE_EQ(RelativeFrequencyGroupSensitivity(seqs).ValueOrDie(), 2.0);
}

TEST(GroupDpTest, RelativeFrequencySensitivityManyChains) {
  // Longest chain 60 of 100 total: sensitivity 2 * 60/100.
  const std::vector<StateSequence> seqs = {StateSequence(60, 0),
                                           StateSequence(40, 1)};
  EXPECT_DOUBLE_EQ(RelativeFrequencyGroupSensitivity(seqs).ValueOrDie(), 1.2);
}

TEST(GroupDpTest, RelativeFrequencySensitivityEmptyFails) {
  EXPECT_FALSE(RelativeFrequencyGroupSensitivity({}).ok());
}

TEST(GroupDpTest, MeanStateGroupSensitivity) {
  EXPECT_DOUBLE_EQ(MeanStateGroupSensitivity(2), 1.0);
  EXPECT_DOUBLE_EQ(MeanStateGroupSensitivity(51), 50.0);
}

TEST(GroupDpTest, ExpectedErrorMatchesPaperScaling) {
  // Section 5.2: GroupDP on the mean-state query has error ~ 1/epsilon
  // (reported as ~5, ~1, ~0.2 for epsilon = 0.2, 1, 5).
  Rng rng(8);
  for (double eps : {0.2, 1.0, 5.0}) {
    const auto m = GroupDpMechanism::Make(MeanStateGroupSensitivity(2), eps)
                       .ValueOrDie();
    double abs_err = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      abs_err += std::fabs(m.ReleaseScalar(0.0, &rng));
    }
    EXPECT_NEAR(abs_err / n, 1.0 / eps, 0.12 / eps);
  }
}

}  // namespace
}  // namespace pf
