// Algorithm 2 at scale: the canonical node-class dedup, the inference
// backends, and the separator quilt search must all be exact refinements —
// bit-identical where bit-identity is promised (dedup on/off, any thread
// count), numerically identical across backends, and able to analyze
// networks far past the old enumeration cap.
#include <gtest/gtest.h>

#include <cmath>

#include "common/fingerprint.h"
#include "data/topologies.h"
#include "pufferfish/markov_quilt_mechanism.h"
#include "pufferfish/node_classes.h"

namespace pf {
namespace {

// Dyadic CPTs keep every conditional probability exactly representable, so
// even cross-backend comparisons are exact (sums and products of dyadic
// rationals of this scale round nowhere).
const Vector kRoot = {0.5, 0.5};
const Matrix kEdge = BinaryNoisyCopyCpt(0.25);
const Matrix kMerge = BinaryNoisyOrCpt(0.25);

std::vector<BayesianNetwork> TestTopologies() {
  std::vector<BayesianNetwork> nets;
  nets.push_back(TreeNetwork(13, 2, kRoot, kEdge).ValueOrDie());
  nets.push_back(TreeNetwork(8, 1, kRoot, kEdge).ValueOrDie());  // Chain.
  nets.push_back(GridNetwork(3, 3, kRoot, kEdge, kMerge).ValueOrDie());
  nets.push_back(HubSpokeNetwork(1, 9, kRoot, kEdge, kEdge).ValueOrDie());
  nets.push_back(HubSpokeNetwork(3, 3, kRoot, kEdge, kEdge).ValueOrDie());
  return nets;
}

void ExpectBitIdentical(const MqmAnalysis& a, const MqmAnalysis& b) {
  EXPECT_EQ(DoubleBits(a.sigma_max), DoubleBits(b.sigma_max));
  EXPECT_EQ(a.worst_node, b.worst_node);
  ASSERT_EQ(a.active.size(), b.active.size());
  for (std::size_t i = 0; i < a.active.size(); ++i) {
    EXPECT_EQ(DoubleBits(a.active[i].score), DoubleBits(b.active[i].score));
    EXPECT_EQ(DoubleBits(a.active[i].influence),
              DoubleBits(b.active[i].influence));
    EXPECT_EQ(a.active[i].quilt.quilt, b.active[i].quilt.quilt) << "node " << i;
    EXPECT_EQ(a.active[i].quilt.nearby_count, b.active[i].quilt.nearby_count);
    EXPECT_EQ(a.active[i].quilt.nearby, b.active[i].quilt.nearby);
    EXPECT_EQ(a.active[i].quilt.remote, b.active[i].quilt.remote);
  }
}

TEST(MqmGeneralDedupTest, OnOffBitIdentityAcrossTopologies) {
  for (const BayesianNetwork& bn : TestTopologies()) {
    for (const QuiltSearchMode search :
         {QuiltSearchMode::kExhaustive, QuiltSearchMode::kSeparator}) {
      MqmAnalyzeOptions options;
      options.quilt_search = search;
      options.dedup_nodes = true;
      const MqmAnalysis dedup =
          AnalyzeMarkovQuiltMechanism({bn}, 1.0, options).ValueOrDie();
      options.dedup_nodes = false;
      const MqmAnalysis exhaustive =
          AnalyzeMarkovQuiltMechanism({bn}, 1.0, options).ValueOrDie();
      ExpectBitIdentical(dedup, exhaustive);
      EXPECT_EQ(exhaustive.scored_nodes, exhaustive.total_nodes);
      EXPECT_LE(dedup.scored_nodes, dedup.total_nodes);
      EXPECT_EQ(dedup.total_nodes, bn.num_nodes());
    }
  }
}

TEST(MqmGeneralDedupTest, ThreadCountInvariance) {
  for (const BayesianNetwork& bn : TestTopologies()) {
    MqmAnalyzeOptions options;
    options.num_threads = 1;
    const MqmAnalysis serial =
        AnalyzeMarkovQuiltMechanism({bn}, 0.7, options).ValueOrDie();
    options.num_threads = 8;
    const MqmAnalysis parallel =
        AnalyzeMarkovQuiltMechanism({bn}, 0.7, options).ValueOrDie();
    ExpectBitIdentical(serial, parallel);
    EXPECT_EQ(serial.scored_nodes, parallel.scored_nodes);
  }
}

TEST(MqmGeneralDedupTest, SymmetricTopologiesCollapse) {
  // A star: the hub is one class, the 9 interchangeable spokes another.
  const BayesianNetwork star =
      HubSpokeNetwork(1, 9, kRoot, kEdge, kEdge).ValueOrDie();
  const MqmAnalysis star_analysis =
      AnalyzeMarkovQuiltMechanism({star}, 1.0, MqmAnalyzeOptions{}).ValueOrDie();
  EXPECT_EQ(star_analysis.total_nodes, 10u);
  EXPECT_EQ(star_analysis.scored_nodes, 2u);
  EXPECT_GT(star_analysis.dedup_ratio(), 4.0);
  // A perfect binary tree with uniform CPTs: one class per depth.
  const BayesianNetwork tree = TreeNetwork(31, 2, kRoot, kEdge).ValueOrDie();
  const MqmAnalysis tree_analysis =
      AnalyzeMarkovQuiltMechanism({tree}, 1.0, MqmAnalyzeOptions{}).ValueOrDie();
  EXPECT_EQ(tree_analysis.total_nodes, 31u);
  EXPECT_EQ(tree_analysis.scored_nodes, 5u);  // Depths 0..4.
}

TEST(MqmGeneralBackendTest, EliminationMatchesEnumerationBitwise) {
  // Dyadic CPTs: both backends do exact arithmetic, so sigma_max agrees to
  // the last bit on every network small enough for enumeration.
  for (const BayesianNetwork& bn : TestTopologies()) {
    MqmAnalyzeOptions options;
    options.backend = InferenceBackend::kVariableElimination;
    const MqmAnalysis elim =
        AnalyzeMarkovQuiltMechanism({bn}, 1.0, options).ValueOrDie();
    options.backend = InferenceBackend::kEnumeration;
    const MqmAnalysis enu =
        AnalyzeMarkovQuiltMechanism({bn}, 1.0, options).ValueOrDie();
    EXPECT_EQ(DoubleBits(elim.sigma_max), DoubleBits(enu.sigma_max));
    EXPECT_EQ(elim.worst_node, enu.worst_node);
  }
}

TEST(MqmGeneralScaleTest, HundredNodeTreeAnalyzesUnderTheOldGuard) {
  // 100 binary nodes: the enumeration reference refuses under the default
  // guard (2^100 joint assignments); the structured path analyzes it.
  const BayesianNetwork tree = TreeNetwork(100, 2, kRoot, kEdge).ValueOrDie();
  MqmAnalyzeOptions options;
  options.backend = InferenceBackend::kEnumeration;
  const Result<MqmAnalysis> refused =
      AnalyzeMarkovQuiltMechanism({tree}, 1.0, options);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);

  const MqmAnalysis analysis =
      AnalyzeMarkovQuiltMechanism({tree}, 1.0, MqmAnalyzeOptions{}).ValueOrDie();
  EXPECT_TRUE(std::isfinite(analysis.sigma_max));
  EXPECT_GT(analysis.sigma_max, 0.0);
  // Never worse than the trivial quilt's n / epsilon.
  EXPECT_LE(analysis.sigma_max, 100.0 + 1e-9);
  EXPECT_EQ(analysis.active.size(), 100u);
  EXPECT_EQ(analysis.treewidth_bound, 1u);
  EXPECT_LT(analysis.scored_nodes, 40u);  // Dedup collapses most of the tree.
  EXPECT_GT(analysis.memory.peak_bytes, 0u);
}

TEST(MqmGeneralTest, StatsAreFilledAndConsistent) {
  // Square grid: the transpose (r, c) <-> (c, r) maps the factor system
  // onto itself (the merge CPT is parent-symmetric), so off-diagonal cells
  // pair up into classes; diagonal cells stay singletons.
  const BayesianNetwork grid =
      GridNetwork(3, 3, kRoot, kEdge, kMerge).ValueOrDie();
  const MqmAnalysis analysis =
      AnalyzeMarkovQuiltMechanism({grid}, 1.0, MqmAnalyzeOptions{}).ValueOrDie();
  EXPECT_EQ(analysis.total_nodes, 9u);
  EXPECT_EQ(analysis.scored_nodes, 6u);  // 3 diagonal + 3 mirrored pairs.
  EXPECT_GE(analysis.dedup_ratio(), 1.0);
  EXPECT_GE(analysis.induced_width, 1u);
  EXPECT_GE(analysis.treewidth_bound, 2u);
  EXPECT_GT(analysis.memory.peak_bytes, 0u);
  // A non-square grid has no factor-graph symmetry at all: every node is
  // its own class, and the analysis says so rather than guessing.
  const BayesianNetwork skew =
      GridNetwork(3, 4, kRoot, kEdge, kMerge).ValueOrDie();
  const MqmAnalysis skew_analysis =
      AnalyzeMarkovQuiltMechanism({skew}, 1.0, MqmAnalyzeOptions{}).ValueOrDie();
  EXPECT_EQ(skew_analysis.scored_nodes, skew_analysis.total_nodes);
}

TEST(MqmGeneralTest, MultiThetaClassesUseTheUnionGraph) {
  // Two thetas over 4 nodes with different structures: a chain 0-1-2-3 and
  // a star centered at 0. A quilt must separate in BOTH; the union moral
  // graph enforces it.
  BayesianNetwork chain = TreeNetwork(4, 1, kRoot, kEdge).ValueOrDie();
  BayesianNetwork star = HubSpokeNetwork(1, 3, kRoot, kEdge, kEdge).ValueOrDie();
  const MqmAnalysis analysis =
      AnalyzeMarkovQuiltMechanism({chain, star}, 1.0, MqmAnalyzeOptions{})
          .ValueOrDie();
  EXPECT_TRUE(std::isfinite(analysis.sigma_max));
  // Node 3 is a leaf of both structures, but its union-graph neighborhood
  // is {0, 2}; any active non-trivial quilt for node 1 must block node 0
  // (its neighbor in both graphs).
  for (const QuiltScore& qs : analysis.active) {
    if (qs.quilt.quilt.empty()) continue;
    const MoralGraph g = UnionMoralGraph({chain, star});
    for (int r : qs.quilt.remote) {
      EXPECT_TRUE(g.Separates(qs.quilt.quilt, qs.quilt.target, r));
    }
  }
}

TEST(MqmGeneralTest, CanonicalFormsGroupExactlyNotByHashAlone) {
  // Two leaves of a uniform star share their canonical form; a leaf with a
  // different CPT must not join their class even though the topology
  // matches.
  BayesianNetwork star;
  ASSERT_TRUE(star.AddNode("hub", 2, {}, Matrix{{0.5, 0.5}}).ok());
  ASSERT_TRUE(star.AddNode("s0", 2, {0}, kEdge).ok());
  ASSERT_TRUE(star.AddNode("s1", 2, {0}, kEdge).ok());
  ASSERT_TRUE(star.AddNode("odd", 2, {0}, BinaryNoisyCopyCpt(0.125)).ok());
  const MoralGraph graph = UnionMoralGraph({star});
  const NodeCanonicalForm s0 = CanonicalizeNode({star}, graph, 1);
  const NodeCanonicalForm s1 = CanonicalizeNode({star}, graph, 2);
  const NodeCanonicalForm odd = CanonicalizeNode({star}, graph, 3);
  EXPECT_EQ(s0.key, s1.key);
  EXPECT_TRUE(s0.SameProblem(s1));
  EXPECT_FALSE(s0.SameProblem(odd));
  const MqmAnalysis analysis =
      AnalyzeMarkovQuiltMechanism({star}, 1.0, MqmAnalyzeOptions{}).ValueOrDie();
  EXPECT_EQ(analysis.scored_nodes, 3u);  // hub, {s0, s1}, odd.
}

}  // namespace
}  // namespace pf
