#include "pufferfish/framework.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

TEST(FrameworkTest, AllAttributeSecretPairs) {
  const auto pairs = AllAttributeSecretPairs(3, 2);
  // 3 variables, one unordered value pair each.
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].variable, 0);
  EXPECT_EQ(pairs[0].value_a, 0);
  EXPECT_EQ(pairs[0].value_b, 1);
  const auto pairs4 = AllAttributeSecretPairs(2, 4);
  EXPECT_EQ(pairs4.size(), 2u * 6u);  // C(4,2) = 6 per variable.
}

TEST(FrameworkTest, ValidatePrivacyParams) {
  EXPECT_TRUE(ValidatePrivacyParams({1.0}).ok());
  EXPECT_FALSE(ValidatePrivacyParams({0.0}).ok());
  EXPECT_FALSE(ValidatePrivacyParams({-2.0}).ok());
  EXPECT_FALSE(ValidatePrivacyParams({std::nan("")}).ok());
}

TEST(FrameworkTest, IntervalClassValidation) {
  EXPECT_TRUE(BinaryChainIntervalClass::Make(0.1, 0.9).ok());
  EXPECT_FALSE(BinaryChainIntervalClass::Make(0.0, 0.9).ok());
  EXPECT_FALSE(BinaryChainIntervalClass::Make(0.1, 1.0).ok());
  EXPECT_FALSE(BinaryChainIntervalClass::Make(0.6, 0.4).ok());
}

TEST(FrameworkTest, IntervalClassTransitionAndContains) {
  const auto cls = BinaryChainIntervalClass::Make(0.2, 0.8).ValueOrDie();
  const Matrix p = BinaryChainIntervalClass::TransitionFor(0.3, 0.7);
  EXPECT_DOUBLE_EQ(p(0, 0), 0.3);
  EXPECT_DOUBLE_EQ(p(0, 1), 0.7);
  EXPECT_DOUBLE_EQ(p(1, 1), 0.7);
  EXPECT_DOUBLE_EQ(p(1, 0), 0.3);
  EXPECT_TRUE(cls.Contains(0.2, 0.8));
  EXPECT_FALSE(cls.Contains(0.1, 0.5));
}

TEST(FrameworkTest, IntervalClassGridCoversSquare) {
  const auto cls = BinaryChainIntervalClass::Make(0.2, 0.4).ValueOrDie();
  const auto grid = cls.TransitionGrid(0.1);
  EXPECT_EQ(grid.size(), 9u);  // {0.2, 0.3, 0.4}^2.
  for (const Matrix& p : grid) {
    EXPECT_TRUE(p.IsRowStochastic());
    EXPECT_TRUE(cls.Contains(p(0, 0), p(1, 1)));
  }
}

TEST(FrameworkTest, IntervalClassClosedFormSummary) {
  // Theta = [0.3, 0.7]: pi_min = (1-0.7)/(2-0.3-0.7) = 0.3;
  // worst |2p-1| = 0.4 -> g = 2 * 0.6 = 1.2.
  const auto cls = BinaryChainIntervalClass::Make(0.3, 0.7).ValueOrDie();
  const ChainClassSummary s = cls.Summary();
  EXPECT_NEAR(s.pi_min, 0.3, 1e-12);
  EXPECT_NEAR(s.eigengap, 1.2, 1e-12);
  EXPECT_TRUE(s.all_reversible);
}

TEST(FrameworkTest, IntervalClassSummaryMatchesGridSummary) {
  // The closed form must lower-bound (match at corners) the per-chain
  // numerical summary over a grid of the class.
  const auto cls = BinaryChainIntervalClass::Make(0.25, 0.75).ValueOrDie();
  const ChainClassSummary closed = cls.Summary();
  std::vector<MarkovChain> chains;
  for (const Matrix& p : cls.TransitionGrid(0.25)) {
    chains.push_back(
        MarkovChain::Make({0.5, 0.5}, p).ValueOrDie());
  }
  const ChainClassSummary numeric = SummarizeChainClass(chains).ValueOrDie();
  EXPECT_LE(closed.pi_min, numeric.pi_min + 1e-9);
  EXPECT_LE(closed.eigengap, numeric.eigengap + 1e-7);
  // The corners are in the grid, so the values coincide.
  EXPECT_NEAR(closed.pi_min, numeric.pi_min, 1e-9);
  EXPECT_NEAR(closed.eigengap, numeric.eigengap, 1e-7);
}

TEST(FrameworkTest, SummarizeChainClassWorstCase) {
  const MarkovChain fast =
      MarkovChain::Make({0.5, 0.5}, Matrix{{0.5, 0.5}, {0.5, 0.5}}).ValueOrDie();
  const MarkovChain slow =
      MarkovChain::Make({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}).ValueOrDie();
  const ChainClassSummary s = SummarizeChainClass({fast, slow}).ValueOrDie();
  EXPECT_NEAR(s.pi_min, 0.2, 1e-9);    // From `slow`.
  EXPECT_NEAR(s.eigengap, 1.0, 1e-7);  // From `slow` (fast has gap 2).
}

TEST(FrameworkTest, SummarizeRejectsReducible) {
  const MarkovChain absorbing =
      MarkovChain::Make({0.5, 0.5}, Matrix{{1.0, 0.0}, {0.5, 0.5}}).ValueOrDie();
  EXPECT_FALSE(SummarizeChainClass({absorbing}).ok());
  EXPECT_FALSE(SummarizeChainClass({}).ok());
}

}  // namespace
}  // namespace pf
