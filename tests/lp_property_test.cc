// Property-based validation of the hand-written simplex solver against
// independent oracles: random transport polytopes checked against Dinic
// max-flow feasibility, and tiny random LPs checked against brute-force
// vertex enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"
#include "dist/maxflow.h"
#include "dist/simplex.h"

namespace pf {
namespace {

// Builds the transport-feasibility LP for supplies `mu`, demands `nu`, and
// allowed-cell mask `allowed` (row-major n x m).
struct TransportLp {
  Matrix a;
  Vector b;
  std::size_t num_vars;
};

TransportLp BuildTransportLp(const Vector& mu, const Vector& nu,
                             const std::vector<bool>& allowed) {
  const std::size_t n = mu.size(), m = nu.size();
  std::vector<std::pair<std::size_t, std::size_t>> vars;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (allowed[i * m + j]) vars.emplace_back(i, j);
    }
  }
  TransportLp lp;
  lp.num_vars = vars.size();
  lp.a = Matrix(n + m, std::max<std::size_t>(vars.size(), 1), 0.0);
  lp.b = Vector(n + m, 0.0);
  for (std::size_t v = 0; v < vars.size(); ++v) {
    lp.a(vars[v].first, v) = 1.0;
    lp.a(n + vars[v].second, v) = 1.0;
  }
  for (std::size_t i = 0; i < n; ++i) lp.b[i] = mu[i];
  for (std::size_t j = 0; j < m; ++j) lp.b[n + j] = nu[j];
  return lp;
}

// Max-flow oracle for the same instance.
bool FlowFeasible(const Vector& mu, const Vector& nu,
                  const std::vector<bool>& allowed) {
  const std::size_t n = mu.size(), m = nu.size();
  MaxFlow flow(n + m + 2);
  const std::size_t source = 0, sink = n + m + 1;
  for (std::size_t i = 0; i < n; ++i) flow.AddEdge(source, 1 + i, mu[i]);
  for (std::size_t j = 0; j < m; ++j) flow.AddEdge(n + 1 + j, sink, nu[j]);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (allowed[i * m + j]) flow.AddEdge(1 + i, n + 1 + j, 2.0);
    }
  }
  return flow.Compute(source, sink) >= 1.0 - 1e-7;
}

class TransportFeasibilityAgreement : public ::testing::TestWithParam<int> {};

TEST_P(TransportFeasibilityAgreement, SimplexMatchesMaxflow) {
  Rng rng(900 + GetParam());
  const std::size_t n = 2 + rng.UniformInt(4);
  const std::size_t m = 2 + rng.UniformInt(4);
  const Vector mu = rng.UniformSimplex(n);
  const Vector nu = rng.UniformSimplex(m);
  std::vector<bool> allowed(n * m);
  for (std::size_t c = 0; c < allowed.size(); ++c) {
    allowed[c] = rng.Uniform() < 0.5;
  }
  const TransportLp lp = BuildTransportLp(mu, nu, allowed);
  const Result<Vector> point =
      lp.num_vars == 0 ? Result<Vector>(Status::FailedPrecondition("no vars"))
                       : FindFeasiblePoint(lp.a, lp.b);
  const bool flow_says = FlowFeasible(mu, nu, allowed);
  EXPECT_EQ(point.ok(), flow_says) << "n=" << n << " m=" << m;
  if (point.ok()) {
    // Verify the certificate: nonnegative, satisfies all equalities.
    const Vector& x = point.value();
    for (double v : x) EXPECT_GE(v, -1e-8);
    const Vector residual = lp.a.Apply(x);
    for (std::size_t r = 0; r < lp.b.size(); ++r) {
      EXPECT_NEAR(residual[r], lp.b[r], 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Randomized, TransportFeasibilityAgreement,
                         ::testing::Range(0, 30));

// Brute-force LP oracle: enumerate all basic solutions (choices of m columns
// from n variables), keep feasible ones, take the best objective.
double BruteForceLpMin(const Matrix& a, const Vector& b, const Vector& c) {
  const std::size_t m = a.rows(), n = a.cols();
  double best = std::numeric_limits<double>::infinity();
  std::vector<std::size_t> cols(m);
  // Enumerate m-subsets of columns via bitmask (n small).
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    if (static_cast<std::size_t>(__builtin_popcount(mask)) != m) continue;
    std::size_t idx = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (mask & (1u << j)) cols[idx++] = j;
    }
    Matrix basis(m, m, 0.0);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t k = 0; k < m; ++k) basis(r, k) = a(r, cols[k]);
    }
    const Result<Vector> sol = basis.Solve(b);
    if (!sol.ok()) continue;
    bool feasible = true;
    double obj = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      if (sol.value()[k] < -1e-9) {
        feasible = false;
        break;
      }
      obj += c[cols[k]] * sol.value()[k];
    }
    if (feasible) best = std::min(best, obj);
  }
  return best;
}

class RandomLpAgreement : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpAgreement, SimplexMatchesVertexEnumeration) {
  Rng rng(1500 + GetParam());
  const std::size_t m = 2;
  const std::size_t n = 4 + rng.UniformInt(3);
  Matrix a(m, n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t j = 0; j < n; ++j) a(r, j) = rng.Uniform(0.1, 2.0);
  }
  Vector b(m);
  for (std::size_t r = 0; r < m; ++r) b[r] = rng.Uniform(0.5, 2.0);
  Vector c(n);
  for (std::size_t j = 0; j < n; ++j) c[j] = rng.Uniform(-1.0, 2.0);
  const double brute = BruteForceLpMin(a, b, c);
  const Result<LpSolution> sol = SolveStandardFormLp(a, b, c);
  if (std::isinf(brute)) {
    // All-positive A with positive b is always feasible here, so this
    // should not occur; guard anyway.
    EXPECT_FALSE(sol.ok());
    return;
  }
  // Our objective may be unbounded below when some c_j < 0 column can grow
  // without bound - not possible: all A entries positive bound every var.
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  EXPECT_NEAR(sol.value().objective, brute, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Randomized, RandomLpAgreement, ::testing::Range(0, 30));

TEST(SimplexDegenerateTest, ZeroRhsFeasibleAtOrigin) {
  Matrix a{{1.0, 1.0}};
  const Result<Vector> x = FindFeasiblePoint(a, {0.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0] + x.value()[1], 0.0, 1e-9);
}

TEST(SimplexDegenerateTest, UnboundedDetected) {
  // min -x0 s.t. x0 - x1 = 0: x0 = x1 -> -x0 unbounded below.
  Matrix a{{1.0, -1.0}};
  const Result<LpSolution> sol = SolveStandardFormLp(a, {0.0}, {-1.0, 0.0});
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kNumericalError);
}

}  // namespace
}  // namespace pf
