// Property-based tests of the infinity-Wasserstein implementation: metric
// axioms, behaviour under transformations, and consistency of the
// feasibility primitive across backends on randomized instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "dist/wasserstein.h"

namespace pf {
namespace {

DiscreteDistribution RandomOnGrid(std::size_t support, Rng* rng) {
  return DiscreteDistribution::FromMasses(rng->UniformSimplex(support))
      .ValueOrDie();
}

// Random distribution on non-uniformly spaced real locations.
DiscreteDistribution RandomOffGrid(std::size_t support, Rng* rng) {
  const Vector masses = rng->UniformSimplex(support);
  std::vector<DiscreteDistribution::Atom> atoms;
  double x = 0.0;
  for (std::size_t i = 0; i < support; ++i) {
    x += rng->Uniform(0.1, 3.0);
    atoms.push_back({x, masses[i]});
  }
  return DiscreteDistribution::Make(std::move(atoms)).ValueOrDie();
}

class WinfMetricAxioms : public ::testing::TestWithParam<int> {};

TEST_P(WinfMetricAxioms, IdentityOfIndiscernibles) {
  Rng rng(100 + GetParam());
  const auto mu = RandomOffGrid(2 + rng.UniformInt(8), &rng);
  EXPECT_NEAR(WassersteinInf(mu, mu).ValueOrDie(), 0.0, 1e-12);
}

TEST_P(WinfMetricAxioms, Symmetry) {
  Rng rng(200 + GetParam());
  const std::size_t n = 2 + rng.UniformInt(8);
  const auto mu = RandomOffGrid(n, &rng);
  const auto nu = RandomOffGrid(n, &rng);
  EXPECT_NEAR(WassersteinInf(mu, nu).ValueOrDie(),
              WassersteinInf(nu, mu).ValueOrDie(), 1e-12);
}

TEST_P(WinfMetricAxioms, TriangleInequality) {
  Rng rng(300 + GetParam());
  const std::size_t n = 2 + rng.UniformInt(6);
  const auto a = RandomOnGrid(n, &rng);
  const auto b = RandomOnGrid(n, &rng);
  const auto c = RandomOnGrid(n, &rng);
  const double ab = WassersteinInf(a, b).ValueOrDie();
  const double bc = WassersteinInf(b, c).ValueOrDie();
  const double ac = WassersteinInf(a, c).ValueOrDie();
  EXPECT_LE(ac, ab + bc + 1e-9);
}

TEST_P(WinfMetricAxioms, TranslationInvariance) {
  Rng rng(400 + GetParam());
  const std::size_t n = 2 + rng.UniformInt(6);
  const auto mu = RandomOffGrid(n, &rng);
  const auto nu = RandomOffGrid(n, &rng);
  const double shift = rng.Uniform(-5.0, 5.0);
  const double base = WassersteinInf(mu, nu).ValueOrDie();
  const double shifted =
      WassersteinInf(mu.Shift(shift), nu.Shift(shift)).ValueOrDie();
  EXPECT_NEAR(base, shifted, 1e-9);
}

TEST_P(WinfMetricAxioms, ShiftingOneDistributionByDelta) {
  // W_inf(mu, mu + delta) = |delta| for any mu.
  Rng rng(500 + GetParam());
  const auto mu = RandomOffGrid(2 + rng.UniformInt(6), &rng);
  const double delta = rng.Uniform(0.5, 4.0);
  EXPECT_NEAR(WassersteinInf(mu, mu.Shift(delta)).ValueOrDie(), delta, 1e-9);
}

TEST_P(WinfMetricAxioms, BoundedBySupportSpan) {
  Rng rng(600 + GetParam());
  const std::size_t n = 2 + rng.UniformInt(6);
  const auto mu = RandomOffGrid(n, &rng);
  const auto nu = RandomOffGrid(n, &rng);
  const double span = std::max(mu.Max(), nu.Max()) - std::min(mu.Min(), nu.Min());
  EXPECT_LE(WassersteinInf(mu, nu).ValueOrDie(), span + 1e-9);
}

TEST_P(WinfMetricAxioms, MixtureContraction) {
  // Lemma B.2: W_inf of shared-weight mixtures <= max component W_inf.
  Rng rng(700 + GetParam());
  const std::size_t n = 3 + rng.UniformInt(4);
  const auto mu1 = RandomOnGrid(n, &rng);
  const auto nu1 = RandomOnGrid(n, &rng);
  const auto mu2 = RandomOnGrid(n, &rng);
  const auto nu2 = RandomOnGrid(n, &rng);
  const double w = rng.Uniform(0.1, 0.9);
  const auto mu =
      DiscreteDistribution::Mixture({mu1, mu2}, {w, 1 - w}).ValueOrDie();
  const auto nu =
      DiscreteDistribution::Mixture({nu1, nu2}, {w, 1 - w}).ValueOrDie();
  const double mixed = WassersteinInf(mu, nu).ValueOrDie();
  const double worst = std::max(WassersteinInf(mu1, nu1).ValueOrDie(),
                                WassersteinInf(mu2, nu2).ValueOrDie());
  EXPECT_LE(mixed, worst + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Randomized, WinfMetricAxioms, ::testing::Range(0, 20));

class FeasibilityConsistency : public ::testing::TestWithParam<int> {};

TEST_P(FeasibilityConsistency, MonotoneInDistanceAndTightAtWinf) {
  Rng rng(800 + GetParam());
  const std::size_t n = 2 + rng.UniformInt(5);
  const auto mu = RandomOnGrid(n, &rng);
  const auto nu = RandomOnGrid(n, &rng);
  const double w = WassersteinInf(mu, nu).ValueOrDie();
  for (auto backend :
       {WassersteinBackend::kQuantile, WassersteinBackend::kMaxFlow,
        WassersteinBackend::kLp}) {
    EXPECT_TRUE(CouplingFeasibleWithin(mu, nu, w, backend).ValueOrDie());
    EXPECT_TRUE(CouplingFeasibleWithin(mu, nu, w + 0.5, backend).ValueOrDie());
    if (w > 0.5) {
      EXPECT_FALSE(
          CouplingFeasibleWithin(mu, nu, w - 0.5, backend).ValueOrDie());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Randomized, FeasibilityConsistency,
                         ::testing::Range(0, 15));

TEST(WassersteinStressTest, LargeSupportQuantileVsMaxflow) {
  Rng rng(4242);
  const auto mu = RandomOnGrid(80, &rng);
  const auto nu = RandomOnGrid(80, &rng);
  const double q = WassersteinInf(mu, nu, WassersteinBackend::kQuantile)
                       .ValueOrDie();
  const double f =
      WassersteinInf(mu, nu, WassersteinBackend::kMaxFlow).ValueOrDie();
  EXPECT_NEAR(q, f, 1e-7);
}

}  // namespace
}  // namespace pf
