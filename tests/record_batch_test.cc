// RecordBatch: the arena-backed struct-of-arrays buffer under the columnar
// serving path. Covers the Arrow-style list layout (offsets bracketing a
// flat value buffer), the per-row accounting columns, move semantics (the
// executor hands batches out through futures), and the single-arena
// allocation contract.
#include "common/record_batch.h"

#include <gtest/gtest.h>

#include <utility>

namespace pf {
namespace {

TEST(RecordBatchTest, EmptyBatchHasNoStorage) {
  RecordBatch batch;
  EXPECT_EQ(batch.num_rows(), 0u);
  EXPECT_EQ(batch.num_values(), 0u);
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.retained_bytes(), 0u);
}

TEST(RecordBatchTest, MakeBracketsTheValueBuffer) {
  RecordBatch batch = RecordBatch::Make(/*rows=*/3, /*total_values=*/6);
  EXPECT_EQ(batch.num_rows(), 3u);
  EXPECT_EQ(batch.num_values(), 6u);
  EXPECT_FALSE(batch.empty());
  // Make pins the bracketing offsets; the builder fills the interior.
  EXPECT_EQ(batch.offsets()[0], 0u);
  EXPECT_EQ(batch.offsets()[3], 6u);
}

TEST(RecordBatchTest, ListLayoutRowAccessors) {
  // Rows of mixed width sharing one flat buffer: a scalar, a 4-bin
  // histogram, another scalar.
  RecordBatch batch = RecordBatch::Make(3, 6);
  batch.offsets()[1] = 1;
  batch.offsets()[2] = 5;
  for (std::size_t i = 0; i < 6; ++i) {
    batch.values()[i] = static_cast<double>(i) * 10.0;
  }
  EXPECT_EQ(batch.row_size(0), 1u);
  EXPECT_EQ(batch.row_size(1), 4u);
  EXPECT_EQ(batch.row_size(2), 1u);
  EXPECT_EQ(batch.row(0)[0], 0.0);
  EXPECT_EQ(batch.row(1)[0], 10.0);
  EXPECT_EQ(batch.row(1)[3], 40.0);
  EXPECT_EQ(batch.row(2)[0], 50.0);
  const Vector middle = batch.RowVector(1);
  ASSERT_EQ(middle.size(), 4u);
  EXPECT_EQ(middle[0], 10.0);
  EXPECT_EQ(middle[3], 40.0);
}

TEST(RecordBatchTest, AccountingColumnsAreWritable) {
  RecordBatch batch = RecordBatch::Make(2, 2);
  batch.epsilons()[0] = 0.5;
  batch.epsilons()[1] = 1.5;
  batch.sigmas()[0] = 2.0;
  batch.sigmas()[1] = 3.0;
  batch.noise_scales()[0] = 4.0;
  batch.noise_scales()[1] = 6.0;
  batch.tickets()[0] = 7;
  batch.tickets()[1] = 8;
  const RecordBatch& view = batch;
  EXPECT_EQ(view.epsilons()[1], 1.5);
  EXPECT_EQ(view.sigmas()[0], 2.0);
  EXPECT_EQ(view.noise_scales()[1], 6.0);
  EXPECT_EQ(view.tickets()[0], 7u);
}

TEST(RecordBatchTest, MoveTransfersOwnership) {
  RecordBatch batch = RecordBatch::Make(2, 3);
  batch.offsets()[1] = 2;
  batch.values()[0] = 1.0;
  batch.values()[2] = 3.0;
  const double* values = batch.values();
  const std::size_t retained = batch.retained_bytes();
  ASSERT_GT(retained, 0u);

  RecordBatch moved = std::move(batch);
  // The arena (and thus every column pointer) moves, not the bytes.
  EXPECT_EQ(moved.values(), values);
  EXPECT_EQ(moved.num_rows(), 2u);
  EXPECT_EQ(moved.retained_bytes(), retained);
  EXPECT_EQ(moved.values()[2], 3.0);
  EXPECT_EQ(moved.row_size(0), 2u);
}

TEST(RecordBatchTest, OneArenaBlockForTypicalBatches) {
  // The columns are sized up front into one arena block: a 1k-row scalar
  // batch must not grow the arena while the executor fills it.
  RecordBatch batch = RecordBatch::Make(1024, 1024);
  const std::size_t before = batch.retained_bytes();
  for (std::size_t i = 0; i < 1024; ++i) {
    batch.offsets()[i] = i;
    batch.values()[i] = static_cast<double>(i);
    batch.epsilons()[i] = 1.0;
    batch.sigmas()[i] = 1.0;
    batch.noise_scales()[i] = 1.0;
    batch.tickets()[i] = i;
  }
  EXPECT_EQ(batch.retained_bytes(), before);
}

}  // namespace
}  // namespace pf
