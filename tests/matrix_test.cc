#include "common/matrix.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/parallel.h"
#include "common/random.h"

namespace pf {
namespace {

Matrix RandomMatrix(std::size_t rows, std::size_t cols, Rng* rng,
                    double zero_fraction = 0.0) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng->Uniform() < zero_fraction ? 0.0 : rng->Uniform(-2.0, 2.0);
    }
  }
  return m;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix id = Matrix::Identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
  const Matrix d = Matrix::Diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, Product) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  const Matrix sum = a + b;
  const Matrix diff = a - b;
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(diff(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(scaled(0, 1), 4.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.Transpose() == a);
}

TEST(MatrixTest, ApplyRightAndLeft) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector right = a.Apply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(right[0], 3.0);
  EXPECT_DOUBLE_EQ(right[1], 7.0);
  const Vector left = a.ApplyLeft({1.0, 1.0});
  EXPECT_DOUBLE_EQ(left[0], 4.0);
  EXPECT_DOUBLE_EQ(left[1], 6.0);
}

TEST(MatrixTest, PowerMatchesRepeatedMultiplication) {
  Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  Matrix expected = Matrix::Identity(2);
  for (int i = 0; i < 7; ++i) expected = expected * p;
  const Matrix got = p.Power(7);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(got(i, j), expected(i, j), 1e-12);
    }
  }
}

TEST(MatrixTest, PowerZeroIsIdentity) {
  Matrix p{{0.5, 0.5}, {0.25, 0.75}};
  EXPECT_TRUE(p.Power(0) == Matrix::Identity(2));
}

TEST(MatrixTest, SolveLinearSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Result<Vector> x = a.Solve({5.0, 10.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR(x.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.value()[1], 3.0, 1e-12);
}

TEST(MatrixTest, SolveSingularFails) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const Result<Vector> x = a.Solve({1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kNumericalError);
}

TEST(MatrixTest, InverseRoundTrip) {
  Matrix a{{4.0, 7.0}, {2.0, 6.0}};
  const Result<Matrix> inv = a.Inverse();
  ASSERT_TRUE(inv.ok());
  const Matrix prod = a * inv.value();
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(MatrixTest, RowStochasticCheck) {
  Matrix good{{0.9, 0.1}, {0.4, 0.6}};
  EXPECT_TRUE(good.IsRowStochastic());
  Matrix bad_sum{{0.9, 0.2}, {0.4, 0.6}};
  EXPECT_FALSE(bad_sum.IsRowStochastic());
  Matrix negative{{1.1, -0.1}, {0.4, 0.6}};
  EXPECT_FALSE(negative.IsRowStochastic());
}

TEST(MatrixTest, MaxAbsAndFinite) {
  Matrix a{{-3.0, 2.0}, {1.0, 0.5}};
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 3.0);
  EXPECT_TRUE(a.AllFinite());
  a(0, 0) = std::nan("");
  EXPECT_FALSE(a.AllFinite());
}

TEST(VectorOpsTest, NormsAndDistances) {
  const Vector a = {1.0, -2.0, 2.0};
  EXPECT_DOUBLE_EQ(NormL1(a), 5.0);
  EXPECT_DOUBLE_EQ(NormL2(a), 3.0);
  EXPECT_DOUBLE_EQ(NormInf(a), 2.0);
  const Vector b = {0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(DistanceL1(a, b), 5.0);
}

TEST(VectorOpsTest, DotAddSubtractScale) {
  const Vector a = {1.0, 2.0};
  const Vector b = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(Add(a, b)[1], 6.0);
  EXPECT_DOUBLE_EQ(Subtract(b, a)[0], 2.0);
  EXPECT_DOUBLE_EQ(Scale(a, 3.0)[1], 6.0);
}

TEST(VectorOpsTest, ProbabilityVectorCheck) {
  EXPECT_TRUE(IsProbabilityVector({0.25, 0.75}));
  EXPECT_FALSE(IsProbabilityVector({0.5, 0.4}));
  EXPECT_FALSE(IsProbabilityVector({1.2, -0.2}));
}

// ----------------------------------------------------- blocked multiply --

TEST(BlockedMultiplyTest, MatchesNaiveOnRandomSquare) {
  Rng rng(7);
  for (std::size_t n : {1u, 2u, 3u, 5u, 8u, 17u, 64u, 100u}) {
    const Matrix a = RandomMatrix(n, n, &rng);
    const Matrix b = RandomMatrix(n, n, &rng);
    EXPECT_EQ(MultiplyBlocked(a, b), MultiplyNaive(a, b)) << "n=" << n;
  }
}

TEST(BlockedMultiplyTest, MatchesNaiveOnNonSquare) {
  Rng rng(11);
  const std::size_t shapes[][3] = {
      {1, 7, 3}, {7, 1, 5}, {5, 13, 1}, {3, 9, 31}, {61, 4, 18}, {2, 600, 6}};
  for (const auto& s : shapes) {
    const Matrix a = RandomMatrix(s[0], s[1], &rng);
    const Matrix b = RandomMatrix(s[1], s[2], &rng);
    const Matrix blocked = MultiplyBlocked(a, b);
    EXPECT_EQ(blocked.rows(), s[0]);
    EXPECT_EQ(blocked.cols(), s[2]);
    EXPECT_EQ(blocked, MultiplyNaive(a, b));
  }
}

TEST(BlockedMultiplyTest, MatchesNaiveOnZeroHeavy) {
  Rng rng(13);
  for (double zero_fraction : {0.5, 0.9, 1.0}) {
    const Matrix a = RandomMatrix(23, 31, &rng, zero_fraction);
    const Matrix b = RandomMatrix(31, 19, &rng, zero_fraction);
    EXPECT_EQ(MultiplyBlocked(a, b), MultiplyNaive(a, b))
        << "zero_fraction=" << zero_fraction;
  }
}

TEST(BlockedMultiplyTest, OperatorStarUsesSameKernel) {
  Rng rng(17);
  const Matrix a = RandomMatrix(12, 20, &rng, 0.3);
  const Matrix b = RandomMatrix(20, 9, &rng, 0.3);
  EXPECT_EQ(a * b, MultiplyBlocked(a, b));
}

TEST(ParallelMultiplyTest, ThreadCountInvariant) {
  Rng rng(19);
  // Big enough to clear the pool fan-out threshold (rows * k^2 >= 2^15).
  const Matrix a = RandomMatrix(40, 40, &rng, 0.2);
  const Matrix b = RandomMatrix(40, 40, &rng, 0.2);
  const Matrix serial = ParallelMultiply(a, b, nullptr);
  EXPECT_EQ(serial, MultiplyNaive(a, b));
  for (std::size_t threads : {1u, 2u, 5u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(ParallelMultiply(a, b, &pool), serial) << "threads=" << threads;
  }
}

// -------------------------------------------------------- SIMD dispatch --

Matrix RandomStochastic(std::size_t k, Rng* rng) {
  Matrix m(k, k);
  for (std::size_t r = 0; r < k; ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      m(r, c) = 0.05 + rng->Uniform();
      row_sum += m(r, c);
    }
    for (std::size_t c = 0; c < k; ++c) m(r, c) /= row_sum;
  }
  return m;
}

/// RAII guard so a failing assertion can't leave the process-wide dispatch
/// level pinned for later tests.
struct SimdLevelGuard {
  SimdLevel saved = ActiveSimdLevel();
  ~SimdLevelGuard() { SetSimdLevel(saved); }
};

TEST(SimdDispatchTest, OverrideClampsToDetectedLevel) {
  SimdLevelGuard guard;
  SetSimdLevel(SimdLevel::kPortable);
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kPortable);
  // Requesting AVX2 activates it only where the CPU has it; elsewhere the
  // request clamps back to portable instead of crashing on dispatch.
  SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_EQ(ActiveSimdLevel(), DetectedSimdLevel());
}

TEST(SimdDispatchTest, AllLevelsBitIdenticalToNaiveOnStochastic) {
  // The summation-order contract: every dispatch level accumulates k-terms
  // in the same ascending order, so on stochastic matrices (no
  // negative-zero products) the kernels agree with the naive reference
  // BIT-for-bit — at widths covering the AVX2 kernel's 16-column main
  // loop, its 4-column tail, and scalar remainders.
  SimdLevelGuard guard;
  Rng rng(23);
  for (const std::size_t k : {4u, 16u, 32u, 33u, 64u}) {
    const Matrix a = RandomStochastic(k, &rng);
    const Matrix b = RandomStochastic(k, &rng);
    const Matrix naive = MultiplyNaive(a, b);
    SetSimdLevel(SimdLevel::kPortable);
    EXPECT_EQ(MultiplyBlocked(a, b), naive) << "portable, k=" << k;
    SetSimdLevel(SimdLevel::kAvx2);  // Clamped on non-AVX2 hosts.
    EXPECT_EQ(MultiplyBlocked(a, b), naive)
        << SimdLevelName(ActiveSimdLevel()) << ", k=" << k;
  }
}

TEST(SimdDispatchTest, PowersStayBitIdenticalAcrossLevels) {
  // Chains of products (the power-ladder workload) accumulate any kernel
  // divergence exponentially; pin that the two levels walk in lockstep.
  SimdLevelGuard guard;
  Rng rng(29);
  const Matrix p = RandomStochastic(32, &rng);
  SetSimdLevel(SimdLevel::kPortable);
  const Matrix portable = p.Power(12);
  SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_EQ(p.Power(12), portable);
}

}  // namespace
}  // namespace pf
