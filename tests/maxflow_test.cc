#include "dist/maxflow.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(MaxFlowTest, SingleEdge) {
  MaxFlow f(2);
  f.AddEdge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(f.Compute(0, 1), 3.5);
}

TEST(MaxFlowTest, SeriesBottleneck) {
  MaxFlow f(3);
  f.AddEdge(0, 1, 5.0);
  f.AddEdge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(f.Compute(0, 2), 2.0);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 1.0);
  f.AddEdge(1, 3, 1.0);
  f.AddEdge(0, 2, 2.0);
  f.AddEdge(2, 3, 2.0);
  EXPECT_DOUBLE_EQ(f.Compute(0, 3), 3.0);
}

TEST(MaxFlowTest, ClassicDiamondWithCrossEdge) {
  // Needs an augmenting path through the residual graph.
  MaxFlow f(4);
  f.AddEdge(0, 1, 1.0);
  f.AddEdge(0, 2, 1.0);
  f.AddEdge(1, 2, 1.0);
  f.AddEdge(1, 3, 1.0);
  f.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.Compute(0, 3), 2.0);
}

TEST(MaxFlowTest, DisconnectedIsZero) {
  MaxFlow f(4);
  f.AddEdge(0, 1, 1.0);
  f.AddEdge(2, 3, 1.0);
  EXPECT_DOUBLE_EQ(f.Compute(0, 3), 0.0);
}

TEST(MaxFlowTest, FractionalCapacities) {
  // Bipartite transport: sources 1,2 with 0.3/0.7; sinks 3,4 want 0.5/0.5;
  // edges 1->3, 2->3, 2->4.
  MaxFlow f(6);
  f.AddEdge(0, 1, 0.3);
  f.AddEdge(0, 2, 0.7);
  f.AddEdge(1, 3, 1.0);
  f.AddEdge(2, 3, 1.0);
  f.AddEdge(2, 4, 1.0);
  f.AddEdge(3, 5, 0.5);
  f.AddEdge(4, 5, 0.5);
  EXPECT_NEAR(f.Compute(0, 5), 1.0, 1e-9);
}

TEST(MaxFlowTest, InfeasibleTransportFallsShort) {
  // Sink 4 demands 0.5 but only source 1 (0.2) reaches it.
  MaxFlow f(6);
  f.AddEdge(0, 1, 0.2);
  f.AddEdge(0, 2, 0.8);
  f.AddEdge(1, 4, 1.0);
  f.AddEdge(2, 3, 1.0);
  f.AddEdge(3, 5, 0.5);
  f.AddEdge(4, 5, 0.5);
  EXPECT_NEAR(f.Compute(0, 5), 0.7, 1e-9);
}

}  // namespace
}  // namespace pf
