#include "graphical/bayesian_network.h"

#include "graphical/markov_chain.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

// The Figure 2 diamond network: X1 -> {X2, X3} -> X4 (0-indexed here).
BayesianNetwork Diamond() {
  BayesianNetwork bn;
  EXPECT_TRUE(bn.AddNode("X1", 2, {}, Matrix{{0.6, 0.4}}).ok());
  EXPECT_TRUE(bn.AddNode("X2", 2, {0}, Matrix{{0.7, 0.3}, {0.2, 0.8}}).ok());
  EXPECT_TRUE(bn.AddNode("X3", 2, {0}, Matrix{{0.9, 0.1}, {0.5, 0.5}}).ok());
  EXPECT_TRUE(bn.AddNode("X4", 2, {1, 2},
                         Matrix{{0.8, 0.2}, {0.6, 0.4}, {0.3, 0.7}, {0.1, 0.9}})
                  .ok());
  return bn;
}

TEST(BayesianNetworkTest, ValidationRejectsBadCpts) {
  BayesianNetwork bn;
  EXPECT_FALSE(bn.AddNode("bad", 2, {}, Matrix{{0.5, 0.6}}).ok());
  EXPECT_FALSE(bn.AddNode("bad", 0, {}, Matrix{{1.0}}).ok());
  EXPECT_FALSE(bn.AddNode("bad", 2, {5}, Matrix{{0.5, 0.5}}).ok());
  EXPECT_TRUE(bn.AddNode("ok", 2, {}, Matrix{{0.5, 0.5}}).ok());
  // CPT row count must match parent arity product.
  EXPECT_FALSE(bn.AddNode("bad", 2, {0}, Matrix{{0.5, 0.5}}).ok());
}

TEST(BayesianNetworkTest, JointFactorization) {
  const BayesianNetwork bn = Diamond();
  // P(0,0,0,0) = 0.6 * 0.7 * 0.9 * 0.8.
  EXPECT_NEAR(bn.JointProbability({0, 0, 0, 0}).ValueOrDie(),
              0.6 * 0.7 * 0.9 * 0.8, 1e-12);
  // P(1,1,1,1) = 0.4 * 0.8 * 0.5 * 0.9.
  EXPECT_NEAR(bn.JointProbability({1, 1, 1, 1}).ValueOrDie(),
              0.4 * 0.8 * 0.5 * 0.9, 1e-12);
}

TEST(BayesianNetworkTest, JointSumsToOne) {
  const BayesianNetwork bn = Diamond();
  double total = 0.0;
  EXPECT_TRUE(bn.ForEachAssignment([&](const Assignment&, double p) {
                  total += p;
                }).ok());
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(BayesianNetworkTest, MarginalMatchesHandComputation) {
  const BayesianNetwork bn = Diamond();
  const Vector m2 = bn.Marginal(1).ValueOrDie();
  // P(X2=1) = 0.6*0.3 + 0.4*0.8 = 0.5.
  EXPECT_NEAR(m2[1], 0.5, 1e-12);
}

TEST(BayesianNetworkTest, ConditionalJoint) {
  const BayesianNetwork bn = Diamond();
  const Vector cond = bn.ConditionalJoint({1}, {{0, 1}}).ValueOrDie();
  EXPECT_NEAR(cond[1], 0.8, 1e-12);  // P(X2=1 | X1=1).
  EXPECT_FALSE(bn.ConditionalJoint({1}, {{0, 5}}).ok());
}

TEST(BayesianNetworkTest, ConditionalJointMultiTarget) {
  const BayesianNetwork bn = Diamond();
  // P(X2, X3 | X1=0) factorizes: cell (1,1) = 0.3 * 0.1.
  const Vector cond = bn.ConditionalJoint({1, 2}, {{0, 0}}).ValueOrDie();
  ASSERT_EQ(cond.size(), 4u);
  EXPECT_NEAR(cond[3], 0.3 * 0.1, 1e-12);
}

TEST(BayesianNetworkTest, ZeroProbabilityEvidenceFails) {
  BayesianNetwork bn;
  ASSERT_TRUE(bn.AddNode("X", 2, {}, Matrix{{1.0, 0.0}}).ok());
  const auto r = bn.ConditionalJoint({0}, {{0, 1}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(BayesianNetworkTest, MarkovBlanketOfDiamond) {
  const BayesianNetwork bn = Diamond();
  // Blanket of X2 (index 1): parent X1, child X4, co-parent X3.
  const std::vector<int> blanket = bn.MarkovBlanket(1);
  EXPECT_EQ(blanket, (std::vector<int>{0, 2, 3}));
  // Blanket of X1 (index 0): children X2, X3 (their other parents: none).
  EXPECT_EQ(bn.MarkovBlanket(0), (std::vector<int>{1, 2}));
}

TEST(BayesianNetworkTest, ChildrenLookup) {
  const BayesianNetwork bn = Diamond();
  EXPECT_EQ(bn.Children(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(bn.Children(3), (std::vector<int>{}));
}

TEST(BayesianNetworkTest, SampleMatchesMarginals) {
  const BayesianNetwork bn = Diamond();
  Rng rng(42);
  int x1_ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const Assignment a = bn.Sample(&rng);
    x1_ones += a[0];
  }
  EXPECT_NEAR(x1_ones / static_cast<double>(n), 0.4, 0.01);
}

TEST(BayesianNetworkTest, FromMarkovChainMatchesChainMarginals) {
  const Vector q = {1.0, 0.0};
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const BayesianNetwork bn =
      BayesianNetwork::FromMarkovChain(q, p, 4).ValueOrDie();
  EXPECT_EQ(bn.num_nodes(), 4u);
  const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
  for (int t = 0; t < 4; ++t) {
    const Vector bn_marginal = bn.Marginal(t).ValueOrDie();
    const Vector chain_marginal = chain.MarginalAt(static_cast<std::size_t>(t));
    EXPECT_NEAR(DistanceL1(bn_marginal, chain_marginal), 0.0, 1e-10) << t;
  }
}

TEST(BayesianNetworkTest, EnumerationLimitGuard) {
  BayesianNetwork bn;
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        bn.AddNode("X" + std::to_string(i), 2, {}, Matrix{{0.5, 0.5}}).ok());
  }
  EXPECT_FALSE(bn.NumAssignments(1u << 20).ok());
}

}  // namespace
}  // namespace pf
