// End-to-end contract of Session::SubmitColumnar: released values (and the
// per-row accounting columns) are bit-identical to submitting the same
// specs through the scalar path in order — across every QueryKind,
// stationary / non-stationary / free-initial chain models, 1 vs 8 executor
// threads, and SIMD dispatch levels — and the ledger half: a batch that is
// shed, fails to compile, mixes quilts, or would overrun the budget is
// refused WHOLE and never debits epsilon.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "engine/engine.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool IsAllWindow(const DataWindow& w) {
  return !w.from_end && w.offset == 0 && w.length == 0;
}

MarkovChain Chain(std::vector<double> initial) {
  return MarkovChain::Make(std::move(initial),
                           Matrix{{0.8, 0.2}, {0.3, 0.7}})
      .ValueOrDie();
}

StateSequence ServeData(std::size_t length) {
  StateSequence data(length);
  for (std::size_t i = 0; i < length; ++i) {
    data[i] = static_cast<int>((i * i + i / 5) % 2);
  }
  return data;
}

/// Every QueryKind at one epsilon (one shared quilt), with duplicate
/// shapes and a mix of full-record and windowed rows.
BatchQuerySpec AllKindsBatch(double epsilon) {
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(epsilon))
      .Add(QuerySpec::Mean(epsilon))
      .Add(QuerySpec::StateFrequency(0, epsilon))
      .Add(QuerySpec::StateFrequency(1, epsilon))
      .Add(QuerySpec::CountHistogram(epsilon))
      .Add(QuerySpec::FrequencyHistogram(epsilon))
      .Add(QuerySpec::CustomScalar(
          "serving-first-obs",
          [](const StateSequence& d) { return static_cast<double>(d[0]); },
          1.0, epsilon))
      .Add(QuerySpec::CustomVector(
          "serving-ends",
          [](const StateSequence& d) {
            return Vector{static_cast<double>(d.front()),
                          static_cast<double>(d.back())};
          },
          1.0, /*dim=*/2, epsilon))
      .Add(QuerySpec::Sum(epsilon))  // Duplicate shape: one compile, 2 rows.
      .Add(QuerySpec::Mean(epsilon), DataWindow::Last(8))
      .Add(QuerySpec::CountHistogram(epsilon), DataWindow::Range(2, 12))
      .Add(QuerySpec::Mean(epsilon), DataWindow::Last(8));  // Dup windowed.
  return batch;
}

/// The same batch through the scalar async path, in row order, on a fresh
/// session with `seed`.
std::vector<ReleaseResult> ScalarResults(PrivacyEngine* engine,
                                         const BatchQuerySpec& batch,
                                         const StateSequence& data,
                                         std::uint64_t seed) {
  SessionOptions options;
  options.seed = seed;
  auto session = engine->CreateSession(options);
  std::vector<std::future<Result<ReleaseResult>>> futures;
  for (const BatchQueryItem& item : batch.items) {
    if (IsAllWindow(item.window)) {
      futures.push_back(session->Submit(item.spec, data));
    } else {
      futures.push_back(session->Submit(item.spec, data, item.window));
    }
  }
  std::vector<ReleaseResult> results;
  for (auto& f : futures) {
    Result<ReleaseResult> r = f.get();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    results.push_back(std::move(r).value());
  }
  return results;
}

/// The same batch through SubmitColumnar on a fresh session with `seed`.
BatchReleaseResult ColumnarResult(PrivacyEngine* engine,
                                  const BatchQuerySpec& batch,
                                  const StateSequence& data,
                                  std::uint64_t seed) {
  SessionOptions options;
  options.seed = seed;
  auto session = engine->CreateSession(options);
  Result<BatchReleaseResult> r = session->SubmitColumnar(batch, data).get();
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(session->num_releases(), batch.size());
  return std::move(r).value();
}

void ExpectBitIdentical(const std::vector<ReleaseResult>& scalar,
                        const BatchReleaseResult& columnar,
                        const std::string& label) {
  ASSERT_EQ(columnar.batch.num_rows(), scalar.size()) << label;
  for (std::size_t i = 0; i < scalar.size(); ++i) {
    ASSERT_EQ(columnar.batch.row_size(i), scalar[i].value.size())
        << label << " row " << i;
    for (std::size_t j = 0; j < scalar[i].value.size(); ++j) {
      EXPECT_TRUE(BitEqual(columnar.batch.row(i)[j], scalar[i].value[j]))
          << label << " row " << i << " coord " << j << ": "
          << columnar.batch.row(i)[j] << " vs " << scalar[i].value[j];
    }
    EXPECT_EQ(columnar.batch.tickets()[i], scalar[i].ticket) << label;
    EXPECT_TRUE(BitEqual(columnar.batch.epsilons()[i], scalar[i].epsilon));
    EXPECT_TRUE(BitEqual(columnar.batch.sigmas()[i], scalar[i].sigma));
  }
}

// ------------------------------------------------------------ bit identity --

// The headline contract, swept over model classes and executor widths: the
// columnar path must reproduce the scalar path bit for bit on stationary
// chains, non-stationary chains, and free-initial classes, whether the
// scalar futures resolve on 1 thread or race on 8.
TEST(BatchServingBitIdentityTest, MatchesScalarAcrossModelsAndThreads) {
  const std::size_t kLength = 24;
  const StateSequence data = ServeData(kLength);
  const BatchQuerySpec batch = AllKindsBatch(0.5);
  struct ModelCase {
    const char* name;
    int which;  // 0 stationary, 1 non-stationary, 2 free-initial.
  };
  for (const ModelCase& mc : {ModelCase{"stationary", 0},
                              ModelCase{"non-stationary", 1},
                              ModelCase{"free-initial", 2}}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      EngineOptions options;
      options.num_threads = threads;
      ModelSpec model =
          mc.which == 0
              ? ModelSpec::ChainClass({Chain({0.6, 0.4})}, kLength)
              : mc.which == 1
                    ? ModelSpec::ChainClass({Chain({0.9, 0.1})}, kLength)
                    : ModelSpec::ChainClassFreeInitial(
                          {Matrix{{0.8, 0.2}, {0.3, 0.7}}}, kLength);
      auto engine =
          PrivacyEngine::Create(std::move(model), options).ValueOrDie();
      const std::string label =
          std::string(mc.name) + " threads=" + std::to_string(threads);
      const std::vector<ReleaseResult> scalar =
          ScalarResults(engine.get(), batch, data, /*seed=*/977);
      const BatchReleaseResult columnar =
          ColumnarResult(engine.get(), batch, data, /*seed=*/977);
      ExpectBitIdentical(scalar, columnar, label);
    }
  }
}

// SIMD invariance end to end: the same batch served under forced-portable
// and hardware dispatch must release identical bits (the kernels aggregate
// in integers and clip with the same IEEE products, so there is nothing to
// round differently).
TEST(BatchServingBitIdentityTest, SimdLevelInvariant) {
  const std::size_t kLength = 37;  // Odd length: exercises kernel tails.
  auto engine = PrivacyEngine::Create(
                    ModelSpec::ChainClass({Chain({0.6, 0.4})}, kLength))
                    .ValueOrDie();
  const StateSequence data = ServeData(kLength);
  const BatchQuerySpec batch = AllKindsBatch(0.5);

  const SimdLevel restore = ActiveSimdLevel();
  SetSimdLevel(SimdLevel::kPortable);
  const BatchReleaseResult portable =
      ColumnarResult(engine.get(), batch, data, /*seed=*/31);
  SetSimdLevel(DetectedSimdLevel());
  const BatchReleaseResult native =
      ColumnarResult(engine.get(), batch, data, /*seed=*/31);
  SetSimdLevel(restore);

  ASSERT_EQ(portable.batch.num_rows(), native.batch.num_rows());
  ASSERT_EQ(portable.batch.num_values(), native.batch.num_values());
  for (std::size_t v = 0; v < portable.batch.num_values(); ++v) {
    EXPECT_TRUE(BitEqual(portable.batch.values()[v], native.batch.values()[v]))
        << "value " << v;
  }
  for (std::size_t r = 0; r < portable.batch.num_rows(); ++r) {
    EXPECT_TRUE(BitEqual(portable.batch.noise_scales()[r],
                         native.batch.noise_scales()[r]));
  }
}

// Out-of-range observations: the scalar CountHistogram/RelativeFrequency
// queries collapse to all-zero vectors via ValueOr; the columnar kernels'
// sticky out_of_range flag must reproduce that exactly (including the
// +0.0 bits of zeros * inv), while Sum still sums the raw values.
TEST(BatchServingBitIdentityTest, OutOfRangeStatesMatchScalarValueOr) {
  const std::size_t kLength = 16;
  auto engine = PrivacyEngine::Create(
                    ModelSpec::ChainClass({Chain({0.6, 0.4})}, kLength))
                    .ValueOrDie();
  StateSequence data = ServeData(kLength);
  data[5] = 3;   // Outside the model's k = 2 state space.
  data[11] = -2;
  BatchQuerySpec batch;
  batch.Add(QuerySpec::CountHistogram(0.5))
      .Add(QuerySpec::FrequencyHistogram(0.5))
      .Add(QuerySpec::Sum(0.5));
  const std::vector<ReleaseResult> scalar =
      ScalarResults(engine.get(), batch, data, /*seed=*/202);
  const BatchReleaseResult columnar =
      ColumnarResult(engine.get(), batch, data, /*seed=*/202);
  ExpectBitIdentical(scalar, columnar, "out-of-range");
}

// Interleaving with scalar traffic: a columnar batch claims the next
// `rows` contiguous tickets, so scalar-columnar-scalar on one session
// equals the pure-scalar session submitting the same rows in order.
TEST(BatchServingBitIdentityTest, InterleavesWithScalarTraffic) {
  const std::size_t kLength = 24;
  auto engine = PrivacyEngine::Create(
                    ModelSpec::ChainClass({Chain({0.6, 0.4})}, kLength))
                    .ValueOrDie();
  const StateSequence data = ServeData(kLength);
  BatchQuerySpec inner;
  inner.Add(QuerySpec::Mean(0.5)).Add(QuerySpec::Sum(0.5));

  SessionOptions options;
  options.seed = 555;
  auto mixed = engine->CreateSession(options);
  const ReleaseResult before =
      mixed->Release(QuerySpec::Sum(0.5), data).ValueOrDie();
  Result<BatchReleaseResult> rbatch = mixed->SubmitColumnar(inner, data).get();
  ASSERT_TRUE(rbatch.ok()) << rbatch.status().ToString();
  const BatchReleaseResult middle = std::move(rbatch).value();
  const ReleaseResult after =
      mixed->Release(QuerySpec::Mean(0.5), data).ValueOrDie();
  EXPECT_EQ(before.ticket, 0u);
  EXPECT_EQ(middle.batch.tickets()[0], 1u);
  EXPECT_EQ(middle.batch.tickets()[1], 2u);
  EXPECT_EQ(after.ticket, 3u);

  auto pure = engine->CreateSession(options);
  EXPECT_TRUE(BitEqual(
      pure->Release(QuerySpec::Sum(0.5), data).ValueOrDie().value[0],
      before.value[0]));
  EXPECT_TRUE(BitEqual(
      pure->Release(QuerySpec::Mean(0.5), data).ValueOrDie().value[0],
      middle.batch.row(0)[0]));
  EXPECT_TRUE(BitEqual(
      pure->Release(QuerySpec::Sum(0.5), data).ValueOrDie().value[0],
      middle.batch.row(1)[0]));
  EXPECT_TRUE(BitEqual(
      pure->Release(QuerySpec::Mean(0.5), data).ValueOrDie().value[0],
      after.value[0]));
}

// ------------------------------------------------------------- the ledger --

std::unique_ptr<PrivacyEngine> LedgerEngine(std::size_t length) {
  return PrivacyEngine::Create(
             ModelSpec::ChainClass({Chain({0.6, 0.4})}, length))
      .ValueOrDie();
}

TEST(BatchServingLedgerTest, ComposedChargePricesWholeBatchAtMaxEpsilon) {
  auto engine = LedgerEngine(24);
  auto session = engine->CreateSession();
  const StateSequence data = ServeData(24);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.5)).Add(QuerySpec::Sum(0.5)).Add(
      QuerySpec::Sum(0.5));
  ASSERT_TRUE(session->SubmitColumnar(batch, data).get().ok());
  EXPECT_EQ(session->num_releases(), 3u);
  // Theorem 4.4: 3 releases at epsilon 0.5 compose to 1.5.
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 1.5);
}

TEST(BatchServingLedgerTest, BudgetOverrunRefusesWholeBatchChargingNothing) {
  auto engine = LedgerEngine(24);
  SessionOptions options;
  options.epsilon_budget = 1.0;
  auto session = engine->CreateSession(options);
  const StateSequence data = ServeData(24);

  BatchQuerySpec four;
  for (int i = 0; i < 4; ++i) four.Add(QuerySpec::Sum(0.3));
  Result<BatchReleaseResult> refused =
      session->SubmitColumnar(four, data).get();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
      << refused.status().ToString();
  // All-or-nothing: not even the 3 affordable rows were charged.
  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);

  // The batch that fits is admitted whole afterwards — the refusal left no
  // residue in the ledger.
  BatchQuerySpec three;
  for (int i = 0; i < 3; ++i) three.Add(QuerySpec::Sum(0.3));
  ASSERT_TRUE(session->SubmitColumnar(three, data).get().ok());
  EXPECT_EQ(session->num_releases(), 3u);
}

TEST(BatchServingLedgerTest, FailedCompileChargesNothing) {
  auto engine = LedgerEngine(24);
  auto session = engine->CreateSession();
  QuerySpec broken;
  broken.kind = QueryKind::kCustomScalar;
  broken.name = "no-body";
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.5)).Add(broken);
  Result<BatchReleaseResult> r =
      session->SubmitColumnar(batch, ServeData(24)).get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("batch row 1"), std::string::npos)
      << r.status().ToString();
  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
}

TEST(BatchServingLedgerTest, QuiltMixRefusedWholeChargingNothing) {
  // Same premise as the scalar quilt-mismatch test: on a length-10 chain,
  // epsilon 4 picks a narrow active quilt and epsilon 0.001 the trivial
  // one; one batch containing both violates the Theorem 4.4 precondition.
  auto engine = LedgerEngine(10);
  const auto plan_hi = engine->Compile(QuerySpec::Mean(4.0)).ValueOrDie().plan;
  const auto plan_lo =
      engine->Compile(QuerySpec::Mean(0.001)).ValueOrDie().plan;
  ASSERT_NE(plan_hi->chain.active_quilt.ToString(),
            plan_lo->chain.active_quilt.ToString())
      << "test premise: the two epsilons must pick different active quilts";

  auto session = engine->CreateSession();
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Mean(4.0)).Add(QuerySpec::Mean(0.001));
  Result<BatchReleaseResult> r =
      session->SubmitColumnar(batch, ServeData(10)).get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition)
      << r.status().ToString();
  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
}

TEST(BatchServingLedgerTest, InFlightCapShedsBatchBeforeCharging) {
  EngineOptions engine_options;
  engine_options.num_threads = 1;
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({Chain({0.6, 0.4})}, 24),
                            engine_options)
          .ValueOrDie();
  SessionOptions options;
  options.max_in_flight = 1;
  auto session = engine->CreateSession(options);
  const StateSequence data = ServeData(24);

  // Occupy the single in-flight slot with a release that blocks until we
  // let it finish.
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  auto blocker = session->Submit(
      QuerySpec::CustomScalar(
          "serving-blocker",
          [opened](const StateSequence&) {
            opened.wait();
            return 1.0;
          },
          1.0, 0.5),
      data);
  ASSERT_EQ(session->in_flight(), 1u);

  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.5)).Add(QuerySpec::Mean(0.5));
  Result<BatchReleaseResult> shed = session->SubmitColumnar(batch, data).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable)
      << shed.status().ToString();

  gate.set_value();
  ASSERT_TRUE(blocker.get().ok());
  // Only the blocking scalar release ever charged; the shed batch did not.
  EXPECT_EQ(session->num_releases(), 1u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.5);

  // With the slot free the same batch is admitted whole.
  ASSERT_TRUE(session->SubmitColumnar(batch, data).get().ok());
  EXPECT_EQ(session->num_releases(), 3u);
}

TEST(BatchServingLedgerTest, ColdShedAndExpiredDeadlineChargeNothing) {
  auto engine = LedgerEngine(24);
  auto session = engine->CreateSession();
  const StateSequence data = ServeData(24);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.77));  // Never analyzed: cold.

  RequestOptions warm_only;
  warm_only.allow_cold_analysis = false;
  Result<BatchReleaseResult> cold =
      session->SubmitColumnar(batch, data, warm_only).get();
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.status().code(), StatusCode::kUnavailable)
      << cold.status().ToString();

  RequestOptions expired;
  expired.deadline = Deadline::Expired();
  Result<BatchReleaseResult> late =
      session->SubmitColumnar(batch, data, expired).get();
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kDeadlineExceeded);

  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
}

}  // namespace
}  // namespace pf
