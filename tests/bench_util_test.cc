// Guards for the benchmark helpers — in particular that DoNotOptimize
// binds by const reference (the mutable-lvalue variant clobbered a
// benchmark counter under GCC 12 once; see bench_parallel_analyze.cc).
#include "bench/bench_util.h"

#include <gtest/gtest.h>

#include <type_traits>
#include <utility>

namespace pf {
namespace bench {
namespace {

// The signature guard: DoNotOptimize must accept const lvalues (a
// mutable-reference parameter would fail to compile here) and rvalues,
// and return void.
static_assert(
    std::is_void_v<decltype(DoNotOptimize(std::declval<const double&>()))>,
    "DoNotOptimize must take const references");
static_assert(std::is_void_v<decltype(DoNotOptimize(std::declval<int>()))>,
              "DoNotOptimize must accept rvalues");

struct NonCopyable {
  explicit NonCopyable(int v) : value(v) {}
  NonCopyable(const NonCopyable&) = delete;
  NonCopyable& operator=(const NonCopyable&) = delete;
  int value;
};

TEST(BenchUtilTest, DoNotOptimizeBindsWithoutCopying) {
  // Only the address escapes, so non-copyable types pass straight through.
  const NonCopyable guarded(42);
  DoNotOptimize(guarded);
  EXPECT_EQ(guarded.value, 42);
}

TEST(BenchUtilTest, DoNotOptimizeDoesNotClobberCounters) {
  // The regression shape: a counter accumulated in a benchmark loop and
  // read after it. The const-ref escape must leave the value intact.
  double counter = 0.0;
  for (int i = 1; i <= 100; ++i) {
    counter += i;
    DoNotOptimize(counter);
  }
  EXPECT_DOUBLE_EQ(counter, 5050.0);
  DoNotOptimize(counter + 1.0);  // Rvalue temporaries bind too.
  EXPECT_DOUBLE_EQ(counter, 5050.0);
}

TEST(BenchUtilTest, MeanAbsErrorTracksLaplaceScale) {
  Rng rng(1234);
  // E|Laplace(scale)| = scale; a loose band is enough to catch a wiring
  // mistake (wrong scale, wrong trial count).
  const double mean = MeanAbsError(2.0, 20000, &rng);
  EXPECT_NEAR(mean, 2.0, 0.1);
}

}  // namespace
}  // namespace bench
}  // namespace pf
