#include "graphical/markov_chain.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

// The Section 4.4 running example chains.
MarkovChain Theta1() {
  return MarkovChain::Make({1.0, 0.0}, Matrix{{0.9, 0.1}, {0.4, 0.6}})
      .ValueOrDie();
}
MarkovChain Theta2() {
  return MarkovChain::Make({0.9, 0.1}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
      .ValueOrDie();
}

TEST(MarkovChainTest, ValidationRejectsBadInputs) {
  EXPECT_FALSE(MarkovChain::Make({0.5, 0.6}, Matrix::Identity(2)).ok());
  EXPECT_FALSE(MarkovChain::Make({1.0}, Matrix::Identity(2)).ok());
  EXPECT_FALSE(
      MarkovChain::Make({0.5, 0.5}, Matrix{{0.9, 0.2}, {0.5, 0.5}}).ok());
}

TEST(MarkovChainTest, MarginalEvolution) {
  const MarkovChain theta = Theta1();
  const Vector m0 = theta.MarginalAt(0);
  EXPECT_DOUBLE_EQ(m0[0], 1.0);
  const Vector m1 = theta.MarginalAt(1);
  EXPECT_NEAR(m1[0], 0.9, 1e-12);
  EXPECT_NEAR(m1[1], 0.1, 1e-12);
  const Vector m2 = theta.MarginalAt(2);
  EXPECT_NEAR(m2[0], 0.9 * 0.9 + 0.1 * 0.4, 1e-12);
}

TEST(MarkovChainTest, MarginalLongHorizonUsesPowers) {
  const MarkovChain theta = Theta1();
  const Vector m = theta.MarginalAt(200);
  // Far past mixing: stationary [0.8, 0.2].
  EXPECT_NEAR(m[0], 0.8, 1e-9);
  EXPECT_NEAR(m[1], 0.2, 1e-9);
}

// Running example: stationary distributions [0.8, 0.2] and [0.6, 0.4].
TEST(MarkovChainTest, PaperStationaryDistributions) {
  const Vector pi1 = Theta1().StationaryDistribution().ValueOrDie();
  EXPECT_NEAR(pi1[0], 0.8, 1e-10);
  EXPECT_NEAR(pi1[1], 0.2, 1e-10);
  const Vector pi2 = Theta2().StationaryDistribution().ValueOrDie();
  EXPECT_NEAR(pi2[0], 0.6, 1e-10);
  EXPECT_NEAR(pi2[1], 0.4, 1e-10);
}

// Running example: pi_min values 0.2 and 0.4.
TEST(MarkovChainTest, PaperPiMin) {
  EXPECT_NEAR(Theta1().MinStationaryProbability().ValueOrDie(), 0.2, 1e-10);
  EXPECT_NEAR(Theta2().MinStationaryProbability().ValueOrDie(), 0.4, 1e-10);
}

// Running example: both chains are reversible and their time reversal has
// the same transition matrix.
TEST(MarkovChainTest, PaperTimeReversalIsSelf) {
  for (const MarkovChain& theta : {Theta1(), Theta2()}) {
    EXPECT_TRUE(theta.IsReversible().ValueOrDie());
    const MarkovChain rev = theta.TimeReversal().ValueOrDie();
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 2; ++j) {
        EXPECT_NEAR(rev.transition()(i, j), theta.transition()(i, j), 1e-10);
      }
    }
  }
}

TEST(MarkovChainTest, NonReversibleThreeCycle) {
  // A biased 3-cycle is not reversible.
  Matrix p{{0.1, 0.8, 0.1}, {0.1, 0.1, 0.8}, {0.8, 0.1, 0.1}};
  const MarkovChain theta =
      MarkovChain::Make({1.0 / 3, 1.0 / 3, 1.0 / 3}, p).ValueOrDie();
  EXPECT_FALSE(theta.IsReversible().ValueOrDie());
  // Time reversal still has the same stationary distribution.
  const MarkovChain rev = theta.TimeReversal().ValueOrDie();
  const Vector pi = rev.StationaryDistribution().ValueOrDie();
  EXPECT_NEAR(pi[0], 1.0 / 3, 1e-9);
}

TEST(MarkovChainTest, IrreducibilityAndAperiodicity) {
  EXPECT_TRUE(Theta1().IsIrreducible());
  EXPECT_TRUE(Theta1().IsAperiodic());
  // Absorbing state: reducible.
  const MarkovChain absorbing =
      MarkovChain::Make({0.5, 0.5}, Matrix{{1.0, 0.0}, {0.5, 0.5}}).ValueOrDie();
  EXPECT_FALSE(absorbing.IsIrreducible());
  // Deterministic 2-cycle: irreducible but periodic.
  const MarkovChain cycle =
      MarkovChain::Make({0.5, 0.5}, Matrix{{0.0, 1.0}, {1.0, 0.0}}).ValueOrDie();
  EXPECT_TRUE(cycle.IsIrreducible());
  EXPECT_FALSE(cycle.IsAperiodic());
}

// Running example: the eigengap of P P* is 0.75 for both chains. Our
// Eigengap() uses the reversible convention of Eq. (14): since both chains
// are reversible, g = 2 (1 - |lambda_2(P)|) = 2 (1 - 0.5) = 1.0, and the
// PP* version is 1 - 0.25 = 0.75.
TEST(MarkovChainTest, PaperEigengap) {
  for (const MarkovChain& theta : {Theta1(), Theta2()}) {
    const double g = theta.Eigengap().ValueOrDie();
    EXPECT_NEAR(g, 1.0, 1e-8);  // Reversible convention (Eq. (14)).
    // Check the PP* eigengap of the running example directly: 0.75.
    const MarkovChain rev = theta.TimeReversal().ValueOrDie();
    const Matrix pp = theta.transition() * rev.transition();
    // lambda_2(PP*) = lambda_2(P)^2 = 0.25 for these chains.
    const MarkovChain pp_chain =
        MarkovChain::Make(theta.StationaryDistribution().ValueOrDie(), pp)
            .ValueOrDie();
    const double pp_gap = pp_chain.Eigengap().ValueOrDie();
    // PP* is itself reversible; halve the doubled convention back.
    EXPECT_NEAR(pp_gap / 2.0, 0.75, 1e-8);
  }
}

TEST(MarkovChainTest, TransitionPowerCaching) {
  const MarkovChain theta = Theta1();
  const Matrix& p3 = theta.TransitionPower(3);
  const Matrix expected = theta.transition().Power(3);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      EXPECT_NEAR(p3(i, j), expected(i, j), 1e-12);
  EXPECT_TRUE(theta.TransitionPower(0) == Matrix::Identity(2));
}

TEST(MarkovChainTest, SampleRespectsDeterministicChain) {
  const MarkovChain cycle =
      MarkovChain::Make({1.0, 0.0}, Matrix{{0.0, 1.0}, {1.0, 0.0}}).ValueOrDie();
  Rng rng(0);
  const StateSequence seq = cycle.Sample(6, &rng);
  const StateSequence expected = {0, 1, 0, 1, 0, 1};
  EXPECT_EQ(seq, expected);
}

TEST(MarkovChainTest, SampleEmpiricalFrequencies) {
  const MarkovChain theta = Theta1();
  Rng rng(123);
  const StateSequence seq = theta.Sample(200000, &rng);
  double frac0 = 0.0;
  for (int s : seq) frac0 += (s == 0) ? 1.0 : 0.0;
  frac0 /= static_cast<double>(seq.size());
  EXPECT_NEAR(frac0, 0.8, 0.01);  // Stationary share of state 0.
}

TEST(MarkovChainTest, EstimateRecoversTransitions) {
  const MarkovChain theta = Theta1();
  Rng rng(7);
  const StateSequence seq = theta.Sample(300000, &rng);
  const MarkovChain est = MarkovChain::Estimate({seq}, 2).ValueOrDie();
  EXPECT_NEAR(est.transition()(0, 0), 0.9, 0.01);
  EXPECT_NEAR(est.transition()(1, 1), 0.6, 0.01);
  // Initial distribution is the stationary distribution of the estimate.
  const Vector pi = est.StationaryDistribution().ValueOrDie();
  EXPECT_NEAR(DistanceL1(pi, est.initial()), 0.0, 1e-9);
}

TEST(MarkovChainTest, EstimateHandlesUnseenStates) {
  // State 2 never appears: its row becomes uniform.
  const StateSequence seq = {0, 1, 0, 1, 1, 0};
  const MarkovChain est = MarkovChain::Estimate({seq}, 3).ValueOrDie();
  EXPECT_NEAR(est.transition()(2, 0), 1.0 / 3.0, 1e-12);
  EXPECT_FALSE(MarkovChain::Estimate({{0, 5}}, 3).ok());
}

}  // namespace
}  // namespace pf
