#!/usr/bin/env python3
"""ctest driver for tools/pf_analyzer: proves every pass fires and stays
quiet, end to end through the real CLI.

  1. Fixture pairs: for each rule, the known-bad fixture MUST produce at
     least one finding of that rule (exit 1) and the clean twin MUST be
     clean (exit 0). This keeps the analyzer honest in both directions — a
     pass that stops firing or starts over-firing fails the suite.
  2. Tree-clean: the analyzer over the real tree (default targets, the
     checked-in baseline) must exit 0 — the repo holds its own invariants.
  3. Regex fallback: the lint_invariants.py shim (and --regex-only) must
     be clean too, so hosts without libclang keep a working linter.
  4. Lock-order doc freshness: docs/LOCK_ORDER.md must match what the
     lock-order pass generates from the current sources.
  5. Marker migration: no stale `lint:allow` markers remain under src/
     (the pf:allow spelling is the successor; legacy markers only live on
     in fixtures proving compatibility).
"""

import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
ANALYZER = os.path.join(REPO, "tools", "pf_analyzer")
FIXTURES = os.path.join(HERE, "fixtures")

failures = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"[{status}] {name}")
    if not ok:
        failures.append(name)
        if detail:
            print(detail)


def run(args):
    proc = subprocess.run(
        [sys.executable, ANALYZER] + args,
        cwd=REPO, capture_output=True, text=True)
    return proc.returncode, proc.stdout + proc.stderr


def fixture(name):
    return os.path.join(FIXTURES, name)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        no_baseline = os.path.join(tmp, "absent_baseline.json")

        # 1. Fixture pairs: (label, rules, extra flags, bad file, good file,
        #    rule tags that must all appear in the bad output).
        pairs = [
            ("budget-flow", "budget-flow", ["--all-files-in-scope"],
             "budget_flow_bad.cc", "budget_flow_good.cc", ["[budget-flow]"]),
            ("determinism", "determinism", ["--pin-files", "determinism_"],
             "determinism_bad.cc", "determinism_good.cc", ["[determinism]"]),
            ("lock-order", "lock-order", [],
             "lock_order_bad.cc", "lock_order_good.cc", ["[lock-order]"]),
            ("no-throw", "no-throw", ["--all-files-in-scope"],
             "no_throw_bad.cc", "no_throw_good.cc", ["[no-throw]"]),
            ("text-rules", ",".join([
                "unseeded-randomness", "fast-math-fma", "naked-new-delete",
                "value-or-die", "raw-mutex", "no-abort"]),
             ["--all-files-in-scope", "--regex-only"],
             "text_rules_bad.cc", "text_rules_good.cc",
             ["[unseeded-randomness]", "[fast-math-fma]",
              "[naked-new-delete]", "[value-or-die]", "[raw-mutex]",
              "[no-abort]"]),
        ]
        for label, rules, flags, bad, good, tags in pairs:
            base = ["--rules", rules, "--baseline", no_baseline] + flags
            code, out = run([fixture(bad)] + base)
            missing = [t for t in tags if t not in out]
            check(f"{label}: bad fixture trips",
                  code == 1 and not missing,
                  f"  exit={code} missing={missing}\n{out}")
            code, out = run([fixture(good)] + base)
            check(f"{label}: good twin stays clean", code == 0,
                  f"  exit={code}\n{out}")

        # Specific findings the bad fixtures must contain (sharper than
        # "some finding of the rule"): each models a real bug class.
        code, out = run([fixture("budget_flow_bad.cc"), "--rules",
                         "budget-flow", "--all-files-in-scope",
                         "--baseline", no_baseline])
        check("budget-flow: detects uncharged release",
              "ReleaseVector" in out and "not dominated" in out, out)
        check("budget-flow: detects charge-before-permit",
              "precedes admission" in out, out)
        code, out = run([fixture("lock_order_bad.cc"), "--rules",
                         "lock-order", "--baseline", no_baseline])
        check("lock-order: detects AB/BA cycle", "cycle" in out, out)
        check("lock-order: detects relock", "re-acquired" in out, out)
        code, out = run([fixture("no_throw_bad.cc"), "--rules", "no-throw",
                         "--all-files-in-scope", "--baseline", no_baseline])
        for marker in ("throw", "out_of_range", "ValueOrDie", "stoi",
                       "ParseHeader"):
            check(f"no-throw: detects {marker}", marker in out, out)

        # 2. The real tree holds its own invariants.
        code, out = run([])
        check("tree-clean: analyzer over src/ is clean", code == 0, out)

        # 3. Regex fallback paths.
        code, out = run(["--regex-only"])
        check("regex-only over src/ is clean", code == 0, out)
        shim = subprocess.run(
            [sys.executable, os.path.join(REPO, "tools", "lint_invariants.py")],
            cwd=REPO, capture_output=True, text=True)
        check("lint_invariants.py shim is clean", shim.returncode == 0,
              shim.stdout + shim.stderr)

        # 4. The checked-in lock-order doc matches the sources.
        doc = os.path.join(REPO, "docs", "LOCK_ORDER.md")
        regen = os.path.join(tmp, "LOCK_ORDER.md")
        code, out = run(["--rules", "lock-order", "--lock-order-doc", regen])
        ok = False
        detail = out
        if os.path.isfile(doc) and os.path.isfile(regen):
            with open(doc, encoding="utf-8") as f:
                want = f.read()
            with open(regen, encoding="utf-8") as f:
                got = f.read()
            ok = want == got
            if not ok:
                detail = ("docs/LOCK_ORDER.md is stale; regenerate with:\n"
                          "  python3 tools/pf_analyzer --rules lock-order "
                          "--lock-order-doc docs/LOCK_ORDER.md")
        check("lock-order doc is fresh", ok, detail)

        # 5. Marker migration: src/ uses the pf:allow spelling only.
        stale = []
        for dirpath, _, files in os.walk(os.path.join(REPO, "src")):
            for name in files:
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8", errors="replace") as f:
                    for i, line in enumerate(f, 1):
                        if re.search(r"lint:allow\(", line):
                            rel = os.path.relpath(path, REPO)
                            stale.append(f"{rel}:{i}")
        check("no stale lint:allow markers in src/", not stale,
              "  " + "\n  ".join(stale))

    if failures:
        print(f"\n{len(failures)} analyzer test(s) failed")
        return 1
    print("\nall analyzer tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
