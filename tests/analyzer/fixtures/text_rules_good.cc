// pf_analyzer fixture: clean twin of text_rules_bad.cc — MUST NOT trip
// any folded text rule, and proves that pf:allow markers suppress.

#include <cstdint>
#include <memory>
#include <random>

int NoiseGood(std::uint64_t seed) {
  std::mt19937_64 gen(seed);  // Seeded engine: fine.
  return static_cast<int>(gen());
}

double FmaGood(double x, double y, double z) {
  return x * y + z;  // Explicit mul then add: no contraction.
}

std::unique_ptr<int> OwnGood() {
  return std::make_unique<int>(7);  // Ownership via make_unique.
}

int MarkedNoise() {
  // A deliberate exception with an inline justification is suppressed:
  return rand();  // pf:allow(unseeded-randomness): fixture proves markers work
}

int MarkedLegacy() {
  // The legacy spelling must keep working too:
  return rand();  // lint:allow(unseeded-randomness): legacy marker honored
}
