// pf_analyzer fixture: MUST trip [determinism] (clean twin:
// determinism_good.cc). Run with `--pin-files determinism_` so this file
// counts as bit-exact-pinned code.

#include <ctime>
#include <random>
#include <unordered_map>

double SumUnordered(const std::unordered_map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& kv : weights) {  // Hash-order iteration feeds the sum.
    sum += kv.second;
  }
  return sum;
}

double SumLocalUnordered() {
  std::unordered_map<int, double> acc;
  acc[1] = 0.5;
  double sum = 0.0;
  for (const auto& kv : acc) {  // Local unordered container, same bug.
    sum += kv.second;
  }
  return sum;
}

int WallClockSeed() {
  return static_cast<int>(time(nullptr));  // Result depends on run time.
}

double UnseededDraw() {
  std::mt19937 gen;  // Default-constructed engine: unseeded.
  return 0.0;
}

double EntropyDraw() {
  std::random_device rd;  // Nondeterministic by design.
  return static_cast<double>(rd());
}

double Contracted(double x, double y, double z) {
  return __builtin_fma(x, y, z);  // Breaks the pinned mul-then-add order.
}
