// pf_analyzer fixture: clean twin of no_throw_bad.cc — MUST NOT trip
// [no-throw] even with `--all-files-in-scope`.

#include <map>
#include <string>

struct Status {};

struct Res {
  bool ok() const;
  int ValueOrDie() const;
};

struct Codec {
  Status ParseHeader(const std::string& s);  // Fallible verb -> Status.
};

int NoThrowGood(int x) {
  if (x < 0) {
    return -1;  // Errors are values, not exceptions.
  }
  return x;
}

int FindGood(const std::map<int, int>& m) {
  auto it = m.find(3);
  if (it == m.end()) {
    return 0;  // Handle the miss; nothing can throw.
  }
  return it->second;
}

int DieGood(const Res& r) {
  if (!r.ok()) {
    return -1;  // The ok() check dominates every ValueOrDie path.
  }
  return r.ValueOrDie();
}

int DieGoodBranchy(const Res& r, bool verbose) {
  if (!r.ok()) {
    return -1;
  }
  if (verbose) {
    return r.ValueOrDie() + 1;  // Still dominated through the branch.
  }
  return r.ValueOrDie();
}
