// pf_analyzer fixture: clean twin of budget_flow_bad.cc — MUST NOT trip
// [budget-flow]. Every release is dominated by a charge (including through
// the early-return join), and the permit precedes the charge.

struct Plan {};

struct Session {
  int ChargeLocked(const Plan& p);
  int ReleaseVector(const Plan& p);
  bool TryAcquire();

  int Good(const Plan& p) {
    if (!TryAcquire()) {
      return -1;  // Shed before the ledger is touched.
    }
    int ticket = ChargeLocked(p);
    if (ticket < 0) {
      return ticket;  // Refused: no release happens.
    }
    return ReleaseVector(p);  // Dominated by the charge above.
  }

  int GoodBranchy(const Plan& p, bool strict) {
    if (!TryAcquire()) {
      return -1;
    }
    int ticket = 0;
    if (strict) {
      ticket = ChargeLocked(p);
    } else {
      ticket = ChargeLocked(p);
    }
    return ReleaseVector(p);  // Charged on BOTH branches of the join.
  }
};
