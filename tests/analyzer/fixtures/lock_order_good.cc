// pf_analyzer fixture: clean twin of lock_order_bad.cc — MUST NOT trip
// [lock-order]. Both paths acquire ledger before audit, so the derived
// graph has one edge and no cycle.

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& m);
};

struct Accounts {
  Mutex ledger_mutex_;
  Mutex audit_mutex_;

  void Post() {
    MutexLock ledger(ledger_mutex_);
    MutexLock audit(audit_mutex_);  // ledger -> audit
  }

  void Reconcile() {
    MutexLock ledger(ledger_mutex_);
    MutexLock audit(audit_mutex_);  // Same order: acyclic.
  }

  void AuditOnly() {
    MutexLock audit(audit_mutex_);  // Single lock: no edge at all.
  }
};
