// pf_analyzer fixture: MUST trip [budget-flow] (see budget_flow_good.cc
// for the clean twin). Parsed by the analyzer, never compiled.
//
// Two violations:
//   1. Bad() reaches a release site with no dominating budget charge.
//   2. BadOrder() charges the ledger before acquiring an admission permit
//      (shed-before-charge says a shed request must never debit epsilon).

struct Plan {};

struct Session {
  int ChargeLocked(const Plan& p);
  int ReleaseVector(const Plan& p);
  bool TryAcquire();

  int Bad(const Plan& p) {
    return ReleaseVector(p);  // Release with no charge on any path.
  }

  int BadOrder(const Plan& p) {
    int ticket = ChargeLocked(p);  // Charge precedes admission.
    if (!TryAcquire()) {
      return -1;  // Shed AFTER the ledger was already debited.
    }
    return ticket;
  }
};
