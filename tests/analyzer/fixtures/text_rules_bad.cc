// pf_analyzer fixture: MUST trip every folded text rule (clean twin:
// text_rules_good.cc). Run with `--all-files-in-scope` since fixtures
// live outside src/. One line per rule:

#include <mutex>  // raw-mutex: locking must go through pf::Mutex wrappers.

struct Res {
  int ValueOrDie() const;
};

int NoiseBad() {
  return rand();  // unseeded-randomness
}

double FmaBad(double x, double y, double z) {
  return __builtin_fma(x, y, z);  // fast-math-fma
}

int* LeakBad() {
  return new int(7);  // naked-new-delete
}

int DieBad(const Res& r) {
  return r.ValueOrDie();  // value-or-die
}

void AbortBad() {
  abort();  // no-abort
}
