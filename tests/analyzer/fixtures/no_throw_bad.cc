// pf_analyzer fixture: MUST trip [no-throw] (clean twin:
// no_throw_good.cc). One violation per check: throw, try/catch, .at(),
// undominated ValueOrDie, stoi, and a fallible-verb API hiding its
// failure path (the last needs `--all-files-in-scope`).

#include <map>
#include <string>

struct Res {
  bool ok() const;
  int ValueOrDie() const;
};

struct Codec {
  int ParseHeader(const std::string& s);  // Fallible verb, returns int.
};

int ThrowBad(int x) {
  if (x < 0) {
    throw x;  // Exceptions are outside the error model.
  }
  return x;
}

int CatchBad(int x) {
  try {
    return ThrowBad(x);
  } catch (...) {
    return -1;
  }
}

int AtBad(const std::map<int, int>& m) {
  return m.at(3);  // Throws std::out_of_range on a miss.
}

int DieBad(const Res& r) {
  return r.ValueOrDie();  // No dominating r.ok() check.
}

int StoiBad(const std::string& s) {
  return std::stoi(s);  // Throws on malformed input.
}
