// pf_analyzer fixture: clean twin of determinism_bad.cc — MUST NOT trip
// [determinism] even when pinned via `--pin-files determinism_`.

#include <cstdint>
#include <map>
#include <random>
#include <vector>

double SumOrdered(const std::map<int, double>& weights) {
  double sum = 0.0;
  for (const auto& kv : weights) {  // std::map: deterministic key order.
    sum += kv.second;
  }
  return sum;
}

double SumVector(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) {  // Index order is the pinned order.
    sum += x;
  }
  return sum;
}

double SeededDraw(std::uint64_t seed) {
  std::mt19937_64 gen(seed);  // Explicitly seeded: reproducible.
  return static_cast<double>(gen());
}

double MulThenAdd(double x, double y, double z) {
  return x * y + z;  // Pinned order; -ffp-contract=off keeps it two ops.
}
