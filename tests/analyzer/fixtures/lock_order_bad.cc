// pf_analyzer fixture: MUST trip [lock-order] (clean twin:
// lock_order_good.cc). Two functions acquire the same two mutexes in
// opposite orders — the classic AB/BA deadlock — and one function
// re-acquires a non-recursive mutex it already holds.

struct Mutex {
  void Lock();
  void Unlock();
};

struct MutexLock {
  explicit MutexLock(Mutex& m);
};

struct Accounts {
  Mutex ledger_mutex_;
  Mutex audit_mutex_;

  void Post() {
    MutexLock ledger(ledger_mutex_);
    MutexLock audit(audit_mutex_);  // ledger -> audit
  }

  void Reconcile() {
    MutexLock audit(audit_mutex_);
    MutexLock ledger(ledger_mutex_);  // audit -> ledger: cycle with Post().
  }

  void DoublePost() {
    MutexLock first(ledger_mutex_);
    MutexLock again(ledger_mutex_);  // Relock of a non-recursive mutex.
  }
};
