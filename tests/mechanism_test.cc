// The unified Mechanism engine: every mechanism reachable through the
// analyze/release split, plans agreeing with the legacy per-mechanism
// entry points, and the shared release path behaving identically for all.
#include "pufferfish/mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "baselines/laplace_dp.h"
#include "data/flu.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

MarkovChain TestChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

std::vector<BayesianNetwork> TestNetworks(std::size_t length) {
  const MarkovChain chain = TestChain(0.8, 0.7);
  return {BayesianNetwork::FromMarkovChain(chain.initial(), chain.transition(),
                                           length)
              .ValueOrDie()};
}

// All seven mechanisms constructible and analyzable through the base class.
TEST(MechanismTest, AllSevenMechanismsReachable) {
  const MarkovChain chain = TestChain(0.8, 0.7);
  const auto pair = FluCliqueModel::PaperExample().CountQueryOutputPair()
                        .ValueOrDie();
  std::vector<std::unique_ptr<Mechanism>> mechanisms;
  mechanisms.push_back(std::make_unique<LaplaceDpUnified>(1.0));
  mechanisms.push_back(std::make_unique<GroupDpUnified>(8.0));
  // GK16 needs a near-uniform chain for its spectral condition rho < 1.
  mechanisms.push_back(std::make_unique<Gk16Unified>(
      std::vector<Matrix>{TestChain(0.6, 0.6).transition()}, 20));
  mechanisms.push_back(std::make_unique<WassersteinUnified>(
      std::vector<ConditionalOutputPair>{pair}));
  mechanisms.push_back(std::make_unique<MqmGeneralUnified>(TestNetworks(6)));
  mechanisms.push_back(std::make_unique<MqmExactUnified>(
      std::vector<MarkovChain>{chain}, 50));
  mechanisms.push_back(std::make_unique<MqmApproxUnified>(
      std::vector<MarkovChain>{chain}, 50));
  ASSERT_EQ(mechanisms.size(), 7u);

  Rng rng(7);
  for (const auto& mechanism : mechanisms) {
    SCOPED_TRACE(mechanism->name());
    const Result<MechanismPlan> plan = mechanism->Analyze(1.0);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    EXPECT_EQ(plan.value().kind, mechanism->kind());
    EXPECT_EQ(plan.value().epsilon, 1.0);
    EXPECT_TRUE(plan.value().applicable);
    EXPECT_GT(plan.value().sigma, 0.0);
    EXPECT_TRUE(std::isfinite(plan.value().sigma));
    EXPECT_EQ(plan.value().cache_hit_count(), 0u);
    const Result<double> released = Release(plan.value(), 5.0, 1.0, &rng);
    ASSERT_TRUE(released.ok());
    EXPECT_TRUE(std::isfinite(released.value()));
  }
}

TEST(MechanismTest, PlanMatchesLegacyLaplaceDp) {
  const auto legacy = LaplaceDpMechanism::Make(3.0, 0.5).ValueOrDie();
  const auto plan = LaplaceDpUnified(3.0).Analyze(0.5).ValueOrDie();
  EXPECT_DOUBLE_EQ(plan.sigma, legacy.noise_scale());
}

TEST(MechanismTest, PlanMatchesLegacyMqmExact) {
  const MarkovChain chain = TestChain(0.9, 0.6);
  ChainMqmOptions options;
  options.epsilon = 1.0;
  const auto legacy = MqmExactAnalyze({chain}, 100, options).ValueOrDie();
  const auto plan =
      MqmExactUnified(std::vector<MarkovChain>{chain}, 100).Analyze(1.0)
          .ValueOrDie();
  EXPECT_DOUBLE_EQ(plan.sigma, legacy.sigma_max);
  EXPECT_EQ(plan.chain.worst_node, legacy.worst_node);
}

// Releases through the engine are bit-identical to the legacy release path
// under the same seed: one shared Laplace primitive.
TEST(MechanismTest, SeededReleaseMatchesLegacyPath) {
  const auto plan = GroupDpUnified(4.0).Analyze(2.0).ValueOrDie();
  Rng rng_a(123), rng_b(123);
  const double via_engine = Release(plan, 1.5, 1.0, &rng_a).ValueOrDie();
  const double via_legacy = MqmReleaseScalar(1.5, 1.0, plan.sigma, &rng_b);
  EXPECT_DOUBLE_EQ(via_engine, via_legacy);
}

TEST(MechanismTest, ReleaseBatchMatchesScalarLoop) {
  const auto plan = LaplaceDpUnified(1.0).Analyze(1.0).ValueOrDie();
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  Rng rng_a(9), rng_b(9);
  const Vector batch = ReleaseBatch(plan, values, 1.0, &rng_a).ValueOrDie();
  ASSERT_EQ(batch.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], Release(plan, values[i], 1.0, &rng_b).ValueOrDie());
  }
}

TEST(MechanismTest, ReleaseBatchOfVectors) {
  const auto plan = LaplaceDpUnified(1.0).Analyze(1.0).ValueOrDie();
  Rng rng(11);
  const std::vector<Vector> truths = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const auto noisy = ReleaseBatch(plan, truths, 1.0, &rng).ValueOrDie();
  ASSERT_EQ(noisy.size(), truths.size());
  for (std::size_t i = 0; i < truths.size(); ++i) {
    ASSERT_EQ(noisy[i].size(), truths[i].size());
    for (double v : noisy[i]) EXPECT_TRUE(std::isfinite(v));
  }
}

TEST(MechanismTest, Gk16InapplicablePlanRefusesRelease) {
  // A near-deterministic chain: nu (hence rho) far above 1.
  const Matrix sticky{{0.999, 0.001}, {0.001, 0.999}};
  const auto plan =
      Gk16Unified(std::vector<Matrix>{sticky}, 100).Analyze(1.0).ValueOrDie();
  EXPECT_FALSE(plan.applicable);
  Rng rng(1);
  const Result<double> released = Release(plan, 0.0, 1.0, &rng);
  EXPECT_FALSE(released.ok());
  EXPECT_EQ(released.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MechanismTest, AnalyzeRejectsBadEpsilon) {
  EXPECT_FALSE(LaplaceDpUnified(1.0).Analyze(0.0).ok());
  EXPECT_FALSE(LaplaceDpUnified(1.0).Analyze(-2.0).ok());
}

TEST(MechanismTest, ApproxSigmaDominatesExact) {
  // The Lemma 4.8 bound can only add noise relative to exact influence.
  const MarkovChain chain = TestChain(0.7, 0.6);
  const auto exact =
      MqmExactUnified(std::vector<MarkovChain>{chain}, 200).Analyze(1.0)
          .ValueOrDie();
  const auto approx =
      MqmApproxUnified(std::vector<MarkovChain>{chain}, 200).Analyze(1.0)
          .ValueOrDie();
  EXPECT_GE(approx.sigma + 1e-9, exact.sigma);
}

TEST(MechanismTest, FingerprintsSeparateKindsAndModels) {
  EXPECT_NE(LaplaceDpUnified(1.0).Fingerprint(),
            GroupDpUnified(1.0).Fingerprint());
  EXPECT_NE(LaplaceDpUnified(1.0).Fingerprint(),
            LaplaceDpUnified(2.0).Fingerprint());
  const MarkovChain a = TestChain(0.8, 0.7);
  const MarkovChain b = TestChain(0.8, 0.6);
  EXPECT_NE(MqmExactUnified({a}, 50).Fingerprint(),
            MqmExactUnified({b}, 50).Fingerprint());
  EXPECT_NE(MqmExactUnified({a}, 50).Fingerprint(),
            MqmExactUnified({a}, 51).Fingerprint());
  // Quilt-width cap is part of the key.
  ChainUnifiedOptions narrow;
  narrow.max_nearby = 8;
  EXPECT_NE(MqmExactUnified({a}, 50).Fingerprint(),
            MqmExactUnified({a}, 50, narrow).Fingerprint());
  EXPECT_EQ(MqmExactUnified({a}, 50).Fingerprint(),
            MqmExactUnified({a}, 50).Fingerprint());
}

}  // namespace
}  // namespace pf
