#include "dist/divergences.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

// The Definition 2.3 worked example: p = (1/3, 1/2, 1/6), q = (1/2, 1/4,
// 1/4) gives D_inf(p || q) = log 2.
TEST(DivergencesTest, PaperMaxDivergenceExample) {
  const std::vector<double> p = {1.0 / 3.0, 0.5, 1.0 / 6.0};
  const std::vector<double> q = {0.5, 0.25, 0.25};
  const Result<double> d = MaxDivergence(p, q);
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(d.value(), std::log(2.0), 1e-12);
}

TEST(DivergencesTest, MaxDivergenceSelfIsZero) {
  const std::vector<double> p = {0.3, 0.7};
  EXPECT_NEAR(MaxDivergence(p, p).ValueOrDie(), 0.0, 1e-15);
}

TEST(DivergencesTest, MaxDivergenceInfiniteOnSupportMismatch) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {1.0, 0.0};
  EXPECT_FALSE(MaxDivergence(p, q).ok());
}

TEST(DivergencesTest, SymmetricTakesWorse) {
  const std::vector<double> p = {0.8, 0.2};
  const std::vector<double> q = {0.5, 0.5};
  // D(p||q): max(log 1.6, log 0.4) = log 1.6; D(q||p): max(log .625, log 2.5).
  const double sym = SymmetricMaxDivergence(p, q).ValueOrDie();
  EXPECT_NEAR(sym, std::log(2.5), 1e-12);
}

// The Section 2.3 example showing conditioning can *increase* divergence:
// theta = (0.9, 0.05, 0.05), theta~ = (0.01, 0.95, 0.04) have symmetric
// max-divergence log 90; conditioned on {D1, D2} it grows to log 91.0962.
TEST(DivergencesTest, PaperConditioningExample) {
  const std::vector<double> theta = {0.9, 0.05, 0.05};
  const std::vector<double> tilde = {0.01, 0.95, 0.04};
  EXPECT_NEAR(SymmetricMaxDivergence(theta, tilde).ValueOrDie(), std::log(90.0),
              1e-9);
  const std::vector<double> theta_cond = {0.9 / 0.95, 0.05 / 0.95};
  const std::vector<double> tilde_cond = {0.01 / 0.96, 0.95 / 0.96};
  const double cond = SymmetricMaxDivergence(theta_cond, tilde_cond).ValueOrDie();
  // Exactly (0.9/0.95)/(0.01/0.96) = 90.947...; the paper's 91.0962 comes
  // from its rounded intermediates (0.9474/0.0104).
  EXPECT_NEAR(cond, std::log(0.9 * 0.96 / (0.95 * 0.01)), 1e-9);
  EXPECT_NEAR(cond, std::log(91.0962), 2e-3);
  EXPECT_GT(cond, std::log(90.0));
}

TEST(DivergencesTest, KlBasics) {
  const std::vector<double> p = {0.5, 0.5};
  const std::vector<double> q = {0.25, 0.75};
  const double kl = KlDivergence(p, q).ValueOrDie();
  EXPECT_NEAR(kl, 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0), 1e-12);
  EXPECT_NEAR(KlDivergence(p, p).ValueOrDie(), 0.0, 1e-15);
  EXPECT_GE(kl, 0.0);
}

TEST(DivergencesTest, TotalVariation) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(TotalVariation(p, q).ValueOrDie(), 1.0);
  EXPECT_DOUBLE_EQ(TotalVariation(p, p).ValueOrDie(), 0.0);
}

TEST(DivergencesTest, SizeMismatchRejected) {
  EXPECT_FALSE(MaxDivergence({0.5, 0.5}, {1.0}).ok());
  EXPECT_FALSE(KlDivergence({1.0}, {0.5, 0.5}).ok());
  EXPECT_FALSE(TotalVariation({}, {}).ok());
}

TEST(DivergencesTest, DiscreteDistributionOverload) {
  const auto p = DiscreteDistribution::FromMasses({1.0 / 3.0, 0.5, 1.0 / 6.0})
                     .ValueOrDie();
  const auto q = DiscreteDistribution::FromMasses({0.5, 0.25, 0.25}).ValueOrDie();
  EXPECT_NEAR(MaxDivergence(p, q).ValueOrDie(), std::log(2.0), 1e-12);
}

TEST(DivergencesTest, DiscreteDistributionDisjointSupports) {
  const auto p = DiscreteDistribution::PointMass(0.0);
  const auto q = DiscreteDistribution::PointMass(1.0);
  EXPECT_FALSE(MaxDivergence(p, q).ok());
}

}  // namespace
}  // namespace pf
