#include "graphical/markov_quilt.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(MarkovQuiltTest, TrivialQuilt) {
  const MarkovQuilt q = TrivialQuilt(3, 10);
  EXPECT_TRUE(q.IsTrivial());
  EXPECT_EQ(q.NearbyCount(), 10u);
  EXPECT_EQ(q.target, 3);
}

TEST(MarkovQuiltTest, TwoSidedChainQuiltCounts) {
  // Paper running example: X8 (1-indexed) with quilt {X3, X13} has
  // card(X_N) = 9. 0-indexed: target 7, quilt {2, 12}.
  const MarkovQuilt q = ChainQuilt(100, 7, 5, 5).ValueOrDie();
  EXPECT_EQ(q.quilt, (std::vector<int>{2, 12}));
  EXPECT_EQ(q.NearbyCount(), 9u);
}

TEST(MarkovQuiltTest, RightOnlyQuiltCounts) {
  // Paper running example: X6 (1-indexed) with quilt {X10} has card = 9.
  // 0-indexed: target 5, b = 4 -> quilt {9}, nearby = {X0..X8} = 9 nodes.
  const MarkovQuilt q = ChainQuilt(100, 5, 0, 4).ValueOrDie();
  EXPECT_EQ(q.quilt, (std::vector<int>{9}));
  EXPECT_EQ(q.NearbyCount(), 9u);
}

TEST(MarkovQuiltTest, LeftOnlyQuiltCounts) {
  // Chain of 10, target 7, a = 2: quilt {5}, nearby {6..9} = 4 nodes.
  const MarkovQuilt q = ChainQuilt(10, 7, 2, 0).ValueOrDie();
  EXPECT_EQ(q.quilt, (std::vector<int>{5}));
  EXPECT_EQ(q.NearbyCount(), 4u);
}

TEST(MarkovQuiltTest, ChainQuiltValidation) {
  EXPECT_FALSE(ChainQuilt(10, -1, 1, 1).ok());
  EXPECT_FALSE(ChainQuilt(10, 3, 0, 0).ok());
  EXPECT_FALSE(ChainQuilt(10, 3, 4, 0).ok());   // Left endpoint < 0.
  EXPECT_FALSE(ChainQuilt(10, 3, 0, 7).ok());   // Right endpoint >= T.
}

TEST(MarkovQuiltTest, FamilyIncludesTrivialAndRespectsCap) {
  const std::vector<MarkovQuilt> family = ChainQuiltFamily(20, 10, 5);
  bool has_trivial = false;
  for (const MarkovQuilt& q : family) {
    if (q.IsTrivial()) {
      has_trivial = true;
      EXPECT_EQ(q.NearbyCount(), 20u);
    } else {
      EXPECT_LE(q.NearbyCount(), 5u);
    }
  }
  EXPECT_TRUE(has_trivial);
}

TEST(MarkovQuiltTest, FamilyForCompositionExample) {
  // Section 4.3 example: T = 3, middle node X2 (0-indexed 1) has quilt set
  // {emptyset, {X1}, {X3}, {X1,X3}} with nearby sizes 3, 2, 2, 1.
  const std::vector<MarkovQuilt> family = ChainQuiltFamily(3, 1, 3);
  ASSERT_EQ(family.size(), 4u);
  // Count quilts by size.
  int trivial = 0, one_sided = 0, two_sided = 0;
  for (const MarkovQuilt& q : family) {
    if (q.IsTrivial()) {
      ++trivial;
      EXPECT_EQ(q.NearbyCount(), 3u);
    } else if (q.quilt.size() == 1) {
      ++one_sided;
      EXPECT_EQ(q.NearbyCount(), 2u);
    } else {
      ++two_sided;
      EXPECT_EQ(q.NearbyCount(), 1u);
    }
  }
  EXPECT_EQ(trivial, 1);
  EXPECT_EQ(one_sided, 2);
  EXPECT_EQ(two_sided, 1);
}

TEST(MarkovQuiltTest, QuiltFromSeparatorChain) {
  const BayesianNetwork bn =
      BayesianNetwork::FromMarkovChain({0.5, 0.5},
                                       Matrix{{0.9, 0.1}, {0.4, 0.6}}, 7)
          .ValueOrDie();
  const MoralGraph g(bn);
  const MarkovQuilt q = QuiltFromSeparator(g, 3, {1, 5});
  EXPECT_EQ(q.nearby, (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(q.remote, (std::vector<int>{0, 6}));
  EXPECT_EQ(q.NearbyCount(), 3u);
}

TEST(MarkovQuiltTest, EnumerateQuiltsSmallChain) {
  const BayesianNetwork bn =
      BayesianNetwork::FromMarkovChain({0.5, 0.5},
                                       Matrix{{0.9, 0.1}, {0.4, 0.6}}, 4)
          .ValueOrDie();
  const MoralGraph g(bn);
  const std::vector<MarkovQuilt> quilts = EnumerateQuilts(g, 1, 1);
  // Separators of size 1 for node 1 in a path 0-1-2-3: {0} yields no remote
  // split... {2} separates {3}; {0} separates nothing on the left beyond 0;
  // plus trivial. At minimum the trivial quilt and {2} must appear.
  bool has_trivial = false, has_x2 = false;
  for (const MarkovQuilt& q : quilts) {
    if (q.IsTrivial()) has_trivial = true;
    if (q.quilt == std::vector<int>{2}) {
      has_x2 = true;
      EXPECT_EQ(q.remote, (std::vector<int>{3}));
    }
  }
  EXPECT_TRUE(has_trivial);
  EXPECT_TRUE(has_x2);
}

TEST(MarkovQuiltTest, ToStringRendering) {
  const MarkovQuilt q = ChainQuilt(100, 7, 5, 5).ValueOrDie();
  EXPECT_EQ(q.ToString(), "quilt{X2,X12} near=9");
}

}  // namespace
}  // namespace pf
