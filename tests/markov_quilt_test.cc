#include "graphical/markov_quilt.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(MarkovQuiltTest, TrivialQuilt) {
  const MarkovQuilt q = TrivialQuilt(3, 10);
  EXPECT_TRUE(q.IsTrivial());
  EXPECT_EQ(q.NearbyCount(), 10u);
  EXPECT_EQ(q.target, 3);
}

TEST(MarkovQuiltTest, TwoSidedChainQuiltCounts) {
  // Paper running example: X8 (1-indexed) with quilt {X3, X13} has
  // card(X_N) = 9. 0-indexed: target 7, quilt {2, 12}.
  const MarkovQuilt q = ChainQuilt(100, 7, 5, 5).ValueOrDie();
  EXPECT_EQ(q.quilt, (std::vector<int>{2, 12}));
  EXPECT_EQ(q.NearbyCount(), 9u);
}

TEST(MarkovQuiltTest, RightOnlyQuiltCounts) {
  // Paper running example: X6 (1-indexed) with quilt {X10} has card = 9.
  // 0-indexed: target 5, b = 4 -> quilt {9}, nearby = {X0..X8} = 9 nodes.
  const MarkovQuilt q = ChainQuilt(100, 5, 0, 4).ValueOrDie();
  EXPECT_EQ(q.quilt, (std::vector<int>{9}));
  EXPECT_EQ(q.NearbyCount(), 9u);
}

TEST(MarkovQuiltTest, LeftOnlyQuiltCounts) {
  // Chain of 10, target 7, a = 2: quilt {5}, nearby {6..9} = 4 nodes.
  const MarkovQuilt q = ChainQuilt(10, 7, 2, 0).ValueOrDie();
  EXPECT_EQ(q.quilt, (std::vector<int>{5}));
  EXPECT_EQ(q.NearbyCount(), 4u);
}

TEST(MarkovQuiltTest, ChainQuiltValidation) {
  EXPECT_FALSE(ChainQuilt(10, -1, 1, 1).ok());
  EXPECT_FALSE(ChainQuilt(10, 3, 0, 0).ok());
  EXPECT_FALSE(ChainQuilt(10, 3, 4, 0).ok());   // Left endpoint < 0.
  EXPECT_FALSE(ChainQuilt(10, 3, 0, 7).ok());   // Right endpoint >= T.
}

TEST(MarkovQuiltTest, FamilyIncludesTrivialAndRespectsCap) {
  const std::vector<MarkovQuilt> family = ChainQuiltFamily(20, 10, 5);
  bool has_trivial = false;
  for (const MarkovQuilt& q : family) {
    if (q.IsTrivial()) {
      has_trivial = true;
      EXPECT_EQ(q.NearbyCount(), 20u);
    } else {
      EXPECT_LE(q.NearbyCount(), 5u);
    }
  }
  EXPECT_TRUE(has_trivial);
}

TEST(MarkovQuiltTest, FamilyForCompositionExample) {
  // Section 4.3 example: T = 3, middle node X2 (0-indexed 1) has quilt set
  // {emptyset, {X1}, {X3}, {X1,X3}} with nearby sizes 3, 2, 2, 1.
  const std::vector<MarkovQuilt> family = ChainQuiltFamily(3, 1, 3);
  ASSERT_EQ(family.size(), 4u);
  // Count quilts by size.
  int trivial = 0, one_sided = 0, two_sided = 0;
  for (const MarkovQuilt& q : family) {
    if (q.IsTrivial()) {
      ++trivial;
      EXPECT_EQ(q.NearbyCount(), 3u);
    } else if (q.quilt.size() == 1) {
      ++one_sided;
      EXPECT_EQ(q.NearbyCount(), 2u);
    } else {
      ++two_sided;
      EXPECT_EQ(q.NearbyCount(), 1u);
    }
  }
  EXPECT_EQ(trivial, 1);
  EXPECT_EQ(one_sided, 2);
  EXPECT_EQ(two_sided, 1);
}

TEST(MarkovQuiltTest, QuiltFromSeparatorChain) {
  const BayesianNetwork bn =
      BayesianNetwork::FromMarkovChain({0.5, 0.5},
                                       Matrix{{0.9, 0.1}, {0.4, 0.6}}, 7)
          .ValueOrDie();
  const MoralGraph g(bn);
  const MarkovQuilt q = QuiltFromSeparator(g, 3, {1, 5});
  EXPECT_EQ(q.nearby, (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(q.remote, (std::vector<int>{0, 6}));
  EXPECT_EQ(q.NearbyCount(), 3u);
}

TEST(MarkovQuiltTest, EnumerateQuiltsSmallChain) {
  const BayesianNetwork bn =
      BayesianNetwork::FromMarkovChain({0.5, 0.5},
                                       Matrix{{0.9, 0.1}, {0.4, 0.6}}, 4)
          .ValueOrDie();
  const MoralGraph g(bn);
  const std::vector<MarkovQuilt> quilts = EnumerateQuilts(g, 1, 1);
  // Separators of size 1 for node 1 in a path 0-1-2-3: {0} yields no remote
  // split... {2} separates {3}; {0} separates nothing on the left beyond 0;
  // plus trivial. At minimum the trivial quilt and {2} must appear.
  bool has_trivial = false, has_x2 = false;
  for (const MarkovQuilt& q : quilts) {
    if (q.IsTrivial()) has_trivial = true;
    if (q.quilt == std::vector<int>{2}) {
      has_x2 = true;
      EXPECT_EQ(q.remote, (std::vector<int>{3}));
    }
  }
  EXPECT_TRUE(has_trivial);
  EXPECT_TRUE(has_x2);
}

TEST(MarkovQuiltTest, ToStringRendering) {
  const MarkovQuilt q = ChainQuilt(100, 7, 5, 5).ValueOrDie();
  EXPECT_EQ(q.ToString(), "quilt{X2,X12} near=9");
}

bool SameQuiltList(const std::vector<MarkovQuilt>& a,
                   const std::vector<MarkovQuilt>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].target != b[i].target || a[i].quilt != b[i].quilt ||
        a[i].nearby_count != b[i].nearby_count || a[i].nearby != b[i].nearby ||
        a[i].remote != b[i].remote) {
      return false;
    }
  }
  return true;
}

TEST(MarkovQuiltTest, EnumerateQuiltsDeduplicatedAndDeterministic) {
  // A 5-cycle described twice with permuted, partially one-directional
  // adjacency entries: structurally the same graph, so the canonicalized
  // quilt lists must be byte-identical — and identical across repeated
  // calls.
  const MoralGraph g1({{1, 4}, {2}, {3}, {4}, {}});
  const MoralGraph g2({{4, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 0}});
  const std::vector<MarkovQuilt> a = EnumerateQuilts(g1, 2, 2);
  const std::vector<MarkovQuilt> b = EnumerateQuilts(g2, 2, 2);
  const std::vector<MarkovQuilt> again = EnumerateQuilts(g1, 2, 2);
  EXPECT_TRUE(SameQuiltList(a, b));
  EXPECT_TRUE(SameQuiltList(a, again));
  // No duplicates survive canonicalization.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_FALSE(a[i - 1].quilt == a[i].quilt &&
                 a[i - 1].nearby == a[i].nearby &&
                 a[i - 1].remote == a[i].remote);
  }
  // ... and the order is the canonical (size, ids) one.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].quilt.size(), a[i].quilt.size());
  }
}

TEST(MarkovQuiltTest, EnumerateQuiltsOnDisconnectedGraphs) {
  // Path 0-1-2 plus a separate edge 3-4: the empty separator splits off
  // the other component, so an empty-quilt candidate with X_R = {3, 4}
  // must appear (strictly better than the trivial quilt).
  const MoralGraph g({{1}, {2}, {}, {4}, {}});
  const std::vector<MarkovQuilt> quilts = EnumerateQuilts(g, 0, 1);
  bool has_component_cut = false, has_trivial = false;
  for (const MarkovQuilt& q : quilts) {
    if (!q.quilt.empty()) continue;
    if (q.remote == std::vector<int>{3, 4}) {
      has_component_cut = true;
      // X_N contains the protected node itself (Definition 4.2).
      EXPECT_EQ(q.nearby, (std::vector<int>{0, 1, 2}));
      EXPECT_EQ(q.NearbyCount(), 3u);
    } else if (q.remote.empty() && q.NearbyCount() == g.num_nodes()) {
      has_trivial = true;
    }
  }
  EXPECT_TRUE(has_component_cut);
  EXPECT_TRUE(has_trivial);
}

TEST(MarkovQuiltTest, SeparatorQuiltsAreValidCuts) {
  // 3-ary tree of 13 nodes: node 0 root, children 1..3, grandchildren 4..12.
  std::vector<std::vector<int>> adj(13);
  for (int i = 1; i <= 3; ++i) adj[0].push_back(i);
  for (int i = 4; i <= 12; ++i) adj[static_cast<std::size_t>((i - 4) / 3 + 1)].push_back(i);
  const MoralGraph g(adj);
  const std::vector<MarkovQuilt> quilts = SeparatorQuilts(g, 4, {});
  ASSERT_GE(quilts.size(), 2u);
  bool has_trivial = false;
  for (const MarkovQuilt& q : quilts) {
    if (q.IsTrivial()) {
      has_trivial = true;
      continue;
    }
    EXPECT_FALSE(q.remote.empty());
    for (int r : q.remote) {
      EXPECT_TRUE(g.Separates(q.quilt, 4, r))
          << q.ToString() << " fails to block node " << r;
    }
    // X_Q, X_N (which contains the target), and X_R partition the nodes.
    EXPECT_EQ(q.NearbyCount() + q.quilt.size() + q.remote.size(),
              g.num_nodes());
  }
  EXPECT_TRUE(has_trivial);
  // Radius 1 around a leaf-adjacent node: its parent is a singleton cut.
  bool has_parent_cut = false;
  for (const MarkovQuilt& q : quilts) {
    if (q.quilt == std::vector<int>{1}) has_parent_cut = true;
  }
  EXPECT_TRUE(has_parent_cut);
}

TEST(MarkovQuiltTest, SeparatorQuiltsDeterministicAndCapped) {
  std::vector<std::vector<int>> adj(20);
  for (int i = 1; i < 20; ++i) adj[static_cast<std::size_t>((i - 1) / 2)].push_back(i);
  const MoralGraph g(adj);
  SeparatorSearchOptions options;
  options.max_quilt_size = 2;
  const std::vector<MarkovQuilt> a = SeparatorQuilts(g, 9, options);
  const std::vector<MarkovQuilt> b = SeparatorQuilts(g, 9, options);
  EXPECT_TRUE(SameQuiltList(a, b));
  for (const MarkovQuilt& q : a) EXPECT_LE(q.quilt.size(), 2u);
}

}  // namespace
}  // namespace pf
