// The columnar plan frontend: BatchQuerySpec parsing into the logical plan
// (window resolution, row-to-unique projection, per-call compile dedupe),
// lowering to physical kernel nodes (shared aggregation passes, match-state
// dedupe, the 1/T derive constants), Explain() output, and ExecuteBatchPlan's
// bit-exact contract against the scalar query + noise primitives.
#include "engine/batch_plan.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>

#include "common/random.h"
#include "engine/engine.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

MarkovChain PlanChain() {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
      .ValueOrDie();
}

std::unique_ptr<PrivacyEngine> PlanEngine(std::size_t length) {
  return PrivacyEngine::Create(ModelSpec::ChainClass({PlanChain()}, length))
      .ValueOrDie();
}

StateSequence PlanData(std::size_t length) {
  StateSequence data(length);
  for (std::size_t i = 0; i < length; ++i) {
    data[i] = static_cast<int>((i / 3) % 2);
  }
  return data;
}

// ------------------------------------------------------ window resolution --

TEST(ResolveDataWindowTest, ResolvesAllRangeAndSuffix) {
  auto all = ResolveDataWindow(DataWindow::All(), 20).ValueOrDie();
  EXPECT_EQ(all.first, 0u);
  EXPECT_EQ(all.second, 20u);
  auto range = ResolveDataWindow(DataWindow::Range(4, 8), 20).ValueOrDie();
  EXPECT_EQ(range.first, 4u);
  EXPECT_EQ(range.second, 8u);
  auto suffix = ResolveDataWindow(DataWindow::Last(6), 20).ValueOrDie();
  EXPECT_EQ(suffix.first, 14u);
  EXPECT_EQ(suffix.second, 6u);
}

TEST(ResolveDataWindowTest, RefusesOutOfRangeWindows) {
  EXPECT_FALSE(ResolveDataWindow(DataWindow::Last(21), 20).ok());
  EXPECT_FALSE(ResolveDataWindow(DataWindow::Range(20, 1), 20).ok());
  EXPECT_FALSE(ResolveDataWindow(DataWindow::Range(15, 6), 20).ok());
  EXPECT_FALSE(ResolveDataWindow(DataWindow::Last(0), 20).ok());
}

// ------------------------------------------------------------ compilation --

TEST(BatchPlanTest, ProjectsRowsOntoUniqueQueriesAndWindows) {
  auto engine = PlanEngine(24);
  BatchQuerySpec batch;
  // 6 rows, but only 3 unique (window, spec) pairs over 2 windows.
  batch.Add(QuerySpec::Sum(0.5))
      .Add(QuerySpec::Sum(0.5))
      .Add(QuerySpec::Mean(0.5))
      .Add(QuerySpec::Sum(0.5), DataWindow::Last(8))
      .Add(QuerySpec::Sum(0.5), DataWindow::Last(8))
      .Add(QuerySpec::Sum(0.5));
  const CompiledBatchPlan plan =
      CompileBatchPlan(engine.get(), batch, 24).ValueOrDie();
  EXPECT_EQ(plan.num_rows(), 6u);
  ASSERT_EQ(plan.logical.windows.size(), 2u);
  ASSERT_EQ(plan.logical.unique.size(), 3u);
  EXPECT_EQ(plan.compiled.size(), 3u);
  EXPECT_TRUE(plan.logical.windows[0].full_record);
  EXPECT_EQ(plan.logical.windows[1].offset, 16u);
  EXPECT_EQ(plan.logical.windows[1].length, 8u);
  // Row projection keeps submission order: rows 0,1,5 share unique 0.
  EXPECT_EQ(plan.logical.row_to_unique[0], 0u);
  EXPECT_EQ(plan.logical.row_to_unique[1], 0u);
  EXPECT_EQ(plan.logical.row_to_unique[2], 1u);
  EXPECT_EQ(plan.logical.row_to_unique[3], 2u);
  EXPECT_EQ(plan.logical.row_to_unique[5], 0u);
  EXPECT_EQ(plan.logical.unique[0].num_rows, 3u);
  // All rows are scalar kinds: one value each.
  EXPECT_EQ(plan.logical.total_values, 6u);
  // Full-record rows take the model's T; windowed rows the window's.
  EXPECT_EQ(plan.logical.unique[0].compile_length, 24u);
  EXPECT_EQ(plan.logical.unique[2].compile_length, 8u);
}

TEST(BatchPlanTest, LoweringSharesAggregatesAndDedupesMatchStates) {
  auto engine = PlanEngine(24);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.5))
      .Add(QuerySpec::Mean(0.5))
      .Add(QuerySpec::StateFrequency(1, 0.5))
      .Add(QuerySpec::StateFrequency(0, 0.5))
      .Add(QuerySpec::StateFrequency(1, 0.25))  // Same state, new epsilon.
      .Add(QuerySpec::CountHistogram(0.5));
  const CompiledBatchPlan plan =
      CompileBatchPlan(engine.get(), batch, 24).ValueOrDie();
  // One window -> one aggregation pass feeding every built-in derive.
  ASSERT_EQ(plan.physical.aggregates.size(), 1u);
  const AggregateSpec& agg = plan.physical.aggregates[0].spec;
  EXPECT_TRUE(agg.need_sum);
  EXPECT_EQ(agg.k, 2u);  // CountHistogram wants the per-state counts.
  // Two distinct match states despite three StateFrequency uniques.
  ASSERT_EQ(agg.match_states.size(), 2u);
  EXPECT_EQ(agg.match_states[0], 1);
  EXPECT_EQ(agg.match_states[1], 0);
  ASSERT_EQ(plan.physical.derives.size(), 6u);
  EXPECT_EQ(plan.physical.derives[0].op, PhysicalBatchPlan::DeriveOp::kSum);
  EXPECT_EQ(plan.physical.derives[1].op, PhysicalBatchPlan::DeriveOp::kMean);
  EXPECT_TRUE(BitEqual(plan.physical.derives[1].inv, 1.0 / 24.0));
  EXPECT_EQ(plan.physical.derives[2].match_index, 0u);
  EXPECT_EQ(plan.physical.derives[3].match_index, 1u);
  EXPECT_EQ(plan.physical.derives[4].match_index, 0u);
  EXPECT_EQ(plan.physical.derives[5].op,
            PhysicalBatchPlan::DeriveOp::kCountHistogram);
}

TEST(BatchPlanTest, CustomQueriesLowerToEvaluateNodes) {
  auto engine = PlanEngine(24);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::CustomScalar(
      "first-obs", [](const StateSequence& d) { return double(d[0]); }, 1.0,
      0.5));
  const CompiledBatchPlan plan =
      CompileBatchPlan(engine.get(), batch, 24).ValueOrDie();
  EXPECT_TRUE(plan.physical.aggregates.empty());
  ASSERT_EQ(plan.physical.derives.size(), 1u);
  EXPECT_EQ(plan.physical.derives[0].op,
            PhysicalBatchPlan::DeriveOp::kEvaluate);
  EXPECT_EQ(plan.physical.derives[0].aggregate_index, kNoNode);
}

TEST(BatchPlanTest, RefusesEmptyBatchAndChainsRowContext) {
  auto engine = PlanEngine(24);
  EXPECT_EQ(CompileBatchPlan(engine.get(), BatchQuerySpec{}, 24)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  BatchQuerySpec bad;
  bad.Add(QuerySpec::Sum(0.5))
      .Add(QuerySpec::Sum(0.5), DataWindow::Last(99));  // Does not fit.
  const auto refused = CompileBatchPlan(engine.get(), bad, 24);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(refused.status().message().find("batch row 1"), std::string::npos)
      << refused.status().ToString();
}

TEST(BatchPlanTest, ExplainShowsBothPlanLevels) {
  auto engine = PlanEngine(24);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.5))
      .Add(QuerySpec::Sum(0.5))
      .Add(QuerySpec::FrequencyHistogram(0.5), DataWindow::Last(8));
  const CompiledBatchPlan plan =
      CompileBatchPlan(engine.get(), batch, 24).ValueOrDie();
  const std::string text = plan.Explain();
  EXPECT_NE(text.find("3 rows -> 2 unique queries over 2 windows"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("project -> window -> clip -> noise"),
            std::string::npos);
  EXPECT_NE(text.find("(full record)"), std::string::npos);
  EXPECT_NE(text.find("(x2 rows)"), std::string::npos);
  EXPECT_NE(text.find("aggregate(w"), std::string::npos);
  EXPECT_NE(text.find("hist[k=2]"), std::string::npos);
  EXPECT_NE(text.find("clip: scales[r]"), std::string::npos);
  EXPECT_NE(text.find("noise: Laplace"), std::string::npos) << text;
}

// -------------------------------------------------------------- execution --

// ExecuteBatchPlan against the primitives it promises to reproduce: truth
// from the scalar compiled query, noise from the per-ticket streams. This
// pins the contract at the plan level; batch_serving_test pins the same
// thing end-to-end through Session.
TEST(BatchPlanTest, ExecuteMatchesScalarPrimitivesBitForBit) {
  const std::size_t kLength = 24;
  auto engine = PlanEngine(kLength);
  const StateSequence data = PlanData(kLength);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.5))
      .Add(QuerySpec::Mean(0.5))
      .Add(QuerySpec::FrequencyHistogram(0.5))
      .Add(QuerySpec::Mean(0.5), DataWindow::Last(8));
  const CompiledBatchPlan plan =
      CompileBatchPlan(engine.get(), batch, kLength).ValueOrDie();
  const std::uint64_t kSeed = 1234;
  const std::uint64_t kFirstTicket = 5;
  const BatchReleaseResult result =
      ExecuteBatchPlan(plan, data, kSeed, kFirstTicket).ValueOrDie();
  ASSERT_EQ(result.batch.num_rows(), 4u);

  for (std::size_t r = 0; r < 4; ++r) {
    const std::size_t u = plan.logical.row_to_unique[r];
    const VectorQuery& q = plan.compiled[u].query;
    const LogicalBatchPlan::Window& win =
        plan.logical.windows[plan.logical.unique[u].window_index];
    const StateSequence slice(
        data.begin() + static_cast<std::ptrdiff_t>(win.offset),
        data.begin() + static_cast<std::ptrdiff_t>(win.offset + win.length));
    Vector expected = q.fn(slice);
    Rng rng(TicketNoiseSeed(kSeed, kFirstTicket + r));
    AddLaplaceNoise(expected.data(), expected.size(),
                    q.lipschitz * plan.compiled[u].plan->sigma, &rng);
    ASSERT_EQ(result.batch.row_size(r), expected.size());
    for (std::size_t j = 0; j < expected.size(); ++j) {
      EXPECT_TRUE(BitEqual(result.batch.row(r)[j], expected[j]))
          << "row " << r << " coord " << j;
    }
    EXPECT_EQ(result.batch.tickets()[r], kFirstTicket + r);
    EXPECT_TRUE(BitEqual(result.batch.epsilons()[r],
                         plan.compiled[u].plan->epsilon));
    EXPECT_TRUE(BitEqual(result.batch.noise_scales()[r],
                         q.lipschitz * plan.compiled[u].plan->sigma));
  }
}

TEST(BatchPlanTest, ExecuteRefusesMismatchedRecordSize) {
  auto engine = PlanEngine(24);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::Sum(0.5));
  const CompiledBatchPlan plan =
      CompileBatchPlan(engine.get(), batch, 24).ValueOrDie();
  const auto refused = ExecuteBatchPlan(plan, PlanData(23), 1, 0);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
}

// A misdeclared custom query is only discoverable post-charge; it must
// surface as a typed error, mirroring the scalar execute path.
TEST(BatchPlanTest, ExecuteSurfacesDimensionContractViolation) {
  auto engine = PlanEngine(24);
  BatchQuerySpec batch;
  batch.Add(QuerySpec::CustomVector(
      "liar", [](const StateSequence&) { return Vector{1.0}; }, 1.0,
      /*dim=*/3, 0.5));
  const CompiledBatchPlan plan =
      CompileBatchPlan(engine.get(), batch, 24).ValueOrDie();
  const auto failed = ExecuteBatchPlan(plan, PlanData(24), 1, 0);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_NE(failed.status().message().find("liar"), std::string::npos);
}

// -------------------------------------------------------- kernel identity --

// The SimdLevel dispatch seam: both aggregation kernels must produce the
// same integers on awkward sizes (tails, out-of-range states, repeated
// match targets). Integer arithmetic has no rounding, so equality is exact
// by construction — this guards the kernels' indexing, not their algebra.
TEST(BatchKernelsTest, PortableAndActiveLevelsAgree) {
  const std::size_t kSizes[] = {0, 1, 7, 8, 9, 31, 64, 100};
  for (const std::size_t n : kSizes) {
    std::vector<int> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = static_cast<int>((i * 7 + 3) % 5) - (i % 11 == 0 ? 1 : 0);
    }
    AggregateSpec spec;
    spec.k = 4;  // Values reach 4 and -1: both out of range.
    spec.need_sum = true;
    spec.match_states = {0, 2, 4, -1, 2};

    const SimdLevel restore = ActiveSimdLevel();
    std::vector<std::int64_t> counts_a(spec.k), matches_a(5);
    AggregateStats a{};
    a.counts = counts_a.data();
    a.match_counts = matches_a.data();
    SetSimdLevel(SimdLevel::kPortable);
    AggregateStates(data.data(), n, spec, &a);

    std::vector<std::int64_t> counts_b(spec.k), matches_b(5);
    AggregateStats b{};
    b.counts = counts_b.data();
    b.match_counts = matches_b.data();
    SetSimdLevel(DetectedSimdLevel());
    AggregateStates(data.data(), n, spec, &b);
    SetSimdLevel(restore);

    EXPECT_EQ(a.sum, b.sum) << "n=" << n;
    EXPECT_EQ(a.out_of_range, b.out_of_range) << "n=" << n;
    EXPECT_EQ(counts_a, counts_b) << "n=" << n;
    EXPECT_EQ(matches_a, matches_b) << "n=" << n;
  }
}

TEST(BatchKernelsTest, ClipScalesMatchesScalarProductBitwise) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{4}, std::size_t{7},
                              std::size_t{33}}) {
    std::vector<double> lipschitz(n), sigmas(n), portable(n), active(n);
    for (std::size_t i = 0; i < n; ++i) {
      lipschitz[i] = 0.1 * static_cast<double>(i + 1) / 3.0;
      sigmas[i] = 7.0 / static_cast<double>(i + 2);
    }
    const SimdLevel restore = ActiveSimdLevel();
    SetSimdLevel(SimdLevel::kPortable);
    ClipScales(lipschitz.data(), sigmas.data(), n, portable.data());
    SetSimdLevel(DetectedSimdLevel());
    ClipScales(lipschitz.data(), sigmas.data(), n, active.data());
    SetSimdLevel(restore);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_TRUE(BitEqual(portable[i], lipschitz[i] * sigmas[i]));
      EXPECT_TRUE(BitEqual(portable[i], active[i])) << "n=" << n << " i=" << i;
    }
  }
}

TEST(BatchKernelsTest, BatchLaplaceNoiseMatchesPerRowRngBitForBit) {
  // The interleaved kernel against the scalar release loop it replicates:
  // mixed row widths (scalars, histograms, an empty row, and one 700-wide
  // row that forces the in-place retwist — more draws than the 312-word
  // mt19937_64 state holds), mixed scales including zero, and enough rows
  // to cover full lane groups plus a partial tail group.
  const std::vector<std::size_t> widths = {1, 8, 0, 700, 1, 3, 1, 1,
                                           2, 1, 5, 1,   1, 1, 1, 1, 1};
  const std::size_t rows = widths.size();
  std::vector<std::size_t> offsets(rows + 1, 0);
  for (std::size_t r = 0; r < rows; ++r) {
    offsets[r + 1] = offsets[r] + widths[r];
  }
  const std::size_t total = offsets[rows];
  std::vector<double> truth(total), scales(rows);
  std::vector<std::uint64_t> seeds(rows);
  for (std::size_t i = 0; i < total; ++i) {
    truth[i] = 0.25 * static_cast<double>(i) - 3.0;
  }
  for (std::size_t r = 0; r < rows; ++r) {
    scales[r] = (r == 5) ? 0.0 : 1.75 + 0.5 * static_cast<double>(r % 7);
    seeds[r] = TicketNoiseSeed(/*seed=*/0xFEEDu, /*ticket=*/r * 37 + 1);
  }

  std::vector<double> expected = truth;
  for (std::size_t r = 0; r < rows; ++r) {
    Rng rng(seeds[r]);
    AddLaplaceNoise(expected.data() + offsets[r], widths[r], scales[r], &rng);
  }

  std::vector<double> actual = truth;
  BatchLaplaceNoise(actual.data(), offsets.data(), scales.data(), seeds.data(),
                    rows);
  for (std::size_t i = 0; i < total; ++i) {
    ASSERT_TRUE(BitEqual(expected[i], actual[i])) << "value index " << i;
  }
}

}  // namespace
}  // namespace pf
