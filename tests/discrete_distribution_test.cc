#include "dist/discrete_distribution.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(DiscreteDistributionTest, MakeSortsAndMerges) {
  const auto d = DiscreteDistribution::Make({{2.0, 0.25}, {1.0, 0.5}, {2.0, 0.25}});
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(d.value().size(), 2u);
  EXPECT_DOUBLE_EQ(d.value().atoms()[0].x, 1.0);
  EXPECT_DOUBLE_EQ(d.value().atoms()[0].p, 0.5);
  EXPECT_DOUBLE_EQ(d.value().atoms()[1].p, 0.5);
}

TEST(DiscreteDistributionTest, RejectsBadMass) {
  EXPECT_FALSE(DiscreteDistribution::Make({{0.0, 0.5}, {1.0, 0.4}}).ok());
  EXPECT_FALSE(DiscreteDistribution::Make({{0.0, 1.5}, {1.0, -0.5}}).ok());
}

TEST(DiscreteDistributionTest, DropsZeroAtoms) {
  const auto d = DiscreteDistribution::Make({{0.0, 1.0}, {5.0, 0.0}});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().size(), 1u);
}

TEST(DiscreteDistributionTest, FromMasses) {
  const auto d = DiscreteDistribution::FromMasses({0.1, 0.15, 0.5, 0.15, 0.1});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d.value().size(), 5u);
  EXPECT_DOUBLE_EQ(d.value().MassAt(2.0), 0.5);
}

TEST(DiscreteDistributionTest, CdfAndQuantile) {
  const auto d = DiscreteDistribution::FromMasses({0.25, 0.25, 0.5}).ValueOrDie();
  EXPECT_DOUBLE_EQ(d.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(0.0), 0.25);
  EXPECT_DOUBLE_EQ(d.Cdf(1.5), 0.5);
  EXPECT_DOUBLE_EQ(d.Cdf(2.0), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.1), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.3), 1.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 2.0);
}

TEST(DiscreteDistributionTest, MeanMinMax) {
  const auto d = DiscreteDistribution::FromMasses({0.5, 0.0, 0.5}).ValueOrDie();
  EXPECT_DOUBLE_EQ(d.Mean(), 1.0);
  EXPECT_DOUBLE_EQ(d.Min(), 0.0);
  EXPECT_DOUBLE_EQ(d.Max(), 2.0);
}

TEST(DiscreteDistributionTest, PointMassAndShift) {
  const DiscreteDistribution p = DiscreteDistribution::PointMass(3.0);
  EXPECT_DOUBLE_EQ(p.Mean(), 3.0);
  const DiscreteDistribution shifted = p.Shift(-1.5);
  EXPECT_DOUBLE_EQ(shifted.Mean(), 1.5);
}

TEST(DiscreteDistributionTest, MixtureSharesWeights) {
  const auto a = DiscreteDistribution::FromMasses({1.0, 0.0}).ValueOrDie();
  const auto b = DiscreteDistribution::FromMasses({0.0, 1.0}).ValueOrDie();
  const auto mix = DiscreteDistribution::Mixture({a, b}, {0.25, 0.75});
  ASSERT_TRUE(mix.ok());
  EXPECT_DOUBLE_EQ(mix.value().MassAt(0.0), 0.25);
  EXPECT_DOUBLE_EQ(mix.value().MassAt(1.0), 0.75);
}

TEST(DiscreteDistributionTest, MixtureValidation) {
  const auto a = DiscreteDistribution::PointMass(0.0);
  EXPECT_FALSE(DiscreteDistribution::Mixture({a}, {0.5, 0.5}).ok());
  EXPECT_FALSE(DiscreteDistribution::Mixture({a, a}, {0.7, 0.7}).ok());
}

}  // namespace
}  // namespace pf
