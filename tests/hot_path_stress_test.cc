// Concurrency stress over the arena-backed hot paths, meant for the
// ASan/UBSan CI leg (-DPF_SANITIZE=ON): many threads driving Analyze /
// ExtendTo / Compile against ONE engine while the record grows. The
// engine's locks serialize what must be serial (resumable extensions, the
// model hot-swap); the per-thread arenas and scratch buffers must keep
// every thread's analysis bytes disjoint — exactly what the sanitizers
// check. The functional assertions are deliberately light; determinism is
// pinned elsewhere (mqm_streaming_test, parallel_test).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "graphical/bayesian_network.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

MarkovChain StressChain() {
  return MarkovChain::Make({0.6, 0.4}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
      .ValueOrDie();
}

TEST(HotPathStressTest, ConcurrentCompileAndAppendOnOneChainEngine) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({StressChain()}, 200))
          .ValueOrDie();
  constexpr int kReaders = 4;
  constexpr int kItersPerReader = 25;
  constexpr int kAppends = 20;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  threads.reserve(kReaders + 1);
  // Readers: compile and re-analyze at a per-thread epsilon while the
  // record grows underneath them. Every answer must be a valid plan for
  // SOME length the engine passed through — the locks guarantee that; the
  // sanitizers guarantee the scratch reuse behind it never aliases.
  for (int reader = 0; reader < kReaders; ++reader) {
    threads.emplace_back([&engine, &failed, reader] {
      const double epsilon = 0.5 + 0.25 * reader;
      for (int i = 0; i < kItersPerReader; ++i) {
        const auto compiled = engine->Compile(QuerySpec::Mean(epsilon));
        if (!compiled.ok() || compiled.ValueOrDie().plan->sigma <= 0.0) {
          failed.store(true);
          return;
        }
        const auto stats = engine->AnalyzeStats(epsilon);
        if (!stats.ok() || stats.ValueOrDie().total_nodes == 0) {
          failed.store(true);
          return;
        }
      }
    });
  }
  // Writer: grow the record one observation at a time — each append
  // invalidates compiled queries and extends the resumable analyses.
  threads.emplace_back([&engine, &failed] {
    for (int i = 0; i < kAppends; ++i) {
      if (!engine->AppendObservations(1).ok()) {
        failed.store(true);
        return;
      }
      std::this_thread::yield();
    }
  });
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());
  EXPECT_EQ(engine->record_length(), 200u + kAppends);

  // The final state still answers exactly like a cold engine at the grown
  // length (spot check, not the full bit-identity suite).
  auto cold = PrivacyEngine::Create(
                  ModelSpec::ChainClass({StressChain()}, 200 + kAppends))
                  .ValueOrDie();
  EXPECT_DOUBLE_EQ(
      engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma,
      cold->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma);
}

TEST(HotPathStressTest, ConcurrentNetworkAnalysesShareThreadLocalArenas) {
  const MarkovChain chain = StressChain();
  auto engine = PrivacyEngine::Create(
                    ModelSpec::NetworkClass(
                        {BayesianNetwork::FromMarkovChain(
                             chain.initial(), chain.transition(), 24)
                             .ValueOrDie()}))
                    .ValueOrDie();
  constexpr int kThreads = 4;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  // Distinct epsilons defeat the plan cache, so every iteration runs a
  // real elimination-backed analysis on whatever pool thread picks it up —
  // hammering the thread_local elimination workspaces from many threads.
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&engine, &failed, t] {
      for (int i = 0; i < 6; ++i) {
        const double epsilon = 1.0 + 0.1 * (t * 6 + i);
        const auto stats = engine->AnalyzeStats(epsilon);
        if (!stats.ok() || stats.ValueOrDie().total_nodes != 24u) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_FALSE(failed.load());
}

}  // namespace
}  // namespace pf
