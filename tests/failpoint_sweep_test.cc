// The failpoint sweep: enumerate every registered injection site in the
// serving stack, fire each one, and prove the failure surfaces as a typed
// non-OK Status — never a crash, never a torn artifact, never a budget
// debit from a pre-charge refusal. The CI `failpoints` leg runs this file
// under ASan and TSan, which upgrades "no crash" to "no leak, no race".
//
// Requires -DPF_FAILPOINTS=ON; in normal builds every test skips (the
// sites compile to nothing, so there is nothing to sweep).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "engine/engine.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

MarkovChain SweepChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

// Every injection site the serving stack declares. The warm-up workload
// must traverse each of these; the sweep asserts the list against
// Registered() so a renamed or dropped site fails loudly here instead of
// silently shrinking coverage.
const char* const kServingSites[] = {
    "analysis_cache.analyze",
    "analysis_cache.extend",
    "engine.compile",
    "engine.load_analyses",
    "plan_store.crash_before_rename",
    "plan_store.flush",
    "plan_store.load.open",
    "plan_store.load.read",
    "plan_store.open",
    "plan_store.rename",
    "plan_store.sync",
    "plan_store.sync_dir",
    "plan_store.write",
    "session.charge",
    "session.execute",
};

/// One full pass over the serving surface: cold compile + async release,
/// append + extension, snapshot save, warm-restart load. Returns every
/// Status the pass produced; with a site armed some of them are non-OK,
/// and the caller asserts that is ALL that happens (typed errors, no
/// crash). Paths are namespaced by `tag` so concurrent workloads never
/// collide on disk.
std::vector<Status> ServingWorkload(const std::string& tag) {
  std::vector<Status> statuses;
  const std::string path =
      testing::TempDir() + "/pf_sweep_" + tag + ".snapshot";
  const ModelSpec model = ModelSpec::ChainClass({SweepChain(0.8, 0.7)}, 40);

  auto engine_or = PrivacyEngine::Create(model);
  if (!engine_or.ok()) {
    statuses.push_back(engine_or.status());
    return statuses;
  }
  auto engine = std::move(engine_or).value();

  // Cold compile + async release through a session (covers engine.compile,
  // analysis_cache.analyze, session.charge, session.execute).
  SessionOptions session_options;
  session_options.seed = 7;
  auto session = engine->CreateSession(session_options);
  const StateSequence data(40, 1);
  auto future = session->Submit(QuerySpec::Mean(1.0), data);
  statuses.push_back(future.get().status());

  // Append + recompile (covers analysis_cache.extend).
  statuses.push_back(engine->AppendObservations(4));
  statuses.push_back(engine->Compile(QuerySpec::Mean(1.0)).status());

  // Snapshot save (covers the plan_store save-side sites).
  statuses.push_back(engine->SaveAnalyses(path));

  // Warm restart (covers engine.load_analyses + the load-side sites).
  auto restored_or = PrivacyEngine::Create(model);
  if (restored_or.ok()) {
    statuses.push_back(std::move(restored_or).value()
                           ->LoadAnalyses(path)
                           .status());
  } else {
    statuses.push_back(restored_or.status());
  }

  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return statuses;
}

class FailpointSweepTest : public testing::Test {
 protected:
  void SetUp() override {
    if (!kFailpointsEnabled) {
      GTEST_SKIP() << "build without PF_FAILPOINTS; no sites to sweep";
    }
    FailpointRegistry::Instance().DisarmAll();
  }
  void TearDown() override { FailpointRegistry::Instance().DisarmAll(); }
};

TEST_F(FailpointSweepTest, CleanWorkloadRegistersEveryServingSite) {
  for (const Status& st : ServingWorkload("warmup")) {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  const std::vector<std::string> registered =
      FailpointRegistry::Instance().Registered();
  const std::set<std::string> have(registered.begin(), registered.end());
  for (const char* site : kServingSites) {
    EXPECT_TRUE(have.count(site))
        << "site " << site << " was never evaluated by the sweep workload";
  }
}

// Fire every site exactly once: each armed site must (a) be reached by the
// workload, (b) surface at least one typed non-OK Status at an API
// boundary, and (c) leave the process healthy enough that a clean re-run
// succeeds end to end afterwards.
TEST_F(FailpointSweepTest, EveryRegisteredSiteFiresToTypedStatus) {
  auto& reg = FailpointRegistry::Instance();
  // Register the full site list first.
  for (const Status& st : ServingWorkload("register")) {
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  for (const std::string& site : reg.Registered()) {
    reg.DisarmAll();
    reg.ArmOnce(site);
    const std::vector<Status> statuses = ServingWorkload("once_" + site);
    EXPECT_EQ(reg.Fires(site), 1u) << "site " << site << " was not reached";
    int non_ok = 0;
    for (const Status& st : statuses) {
      if (!st.ok()) {
        ++non_ok;
        EXPECT_NE(st.code(), StatusCode::kOk);
        EXPECT_FALSE(st.message().empty());
      }
    }
    EXPECT_GE(non_ok, 1) << "site " << site
                         << " fired but no API surfaced an error";
    // The failure was transient injection: a clean pass must fully recover.
    reg.DisarmAll();
    for (const Status& st : ServingWorkload("recover_" + site)) {
      EXPECT_TRUE(st.ok()) << "after " << site << ": " << st.ToString();
    }
  }
}

// The acceptance sweep: every site armed at p = 0.5 simultaneously while 8
// threads run independent serving workloads. Every operation either
// succeeds or returns a typed error; under the CI sanitizers this also
// proves no leak (ASan: error paths free everything) and no race (TSan:
// concurrent Evaluate + serving).
TEST_F(FailpointSweepTest, ProbabilisticSweepUnderEightThreads) {
  auto& reg = FailpointRegistry::Instance();
  for (const Status& st : ServingWorkload("prob_register")) {
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  std::uint64_t seed = 1234;
  for (const std::string& site : reg.Registered()) {
    reg.ArmProbability(site, 0.5, seed++);
  }
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::vector<Status> statuses = ServingWorkload(
            "prob_t" + std::to_string(t) + "_r" + std::to_string(round));
        for (const Status& st : statuses) {
          if (!st.ok()) {
            EXPECT_NE(st.code(), StatusCode::kOk);
            EXPECT_FALSE(st.message().empty());
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  reg.DisarmAll();
  // Recovery: with injection off, serving is clean again.
  for (const Status& st : ServingWorkload("prob_recover")) {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
}

// A pre-charge injected refusal (session.charge) must never debit the
// session's epsilon ledger — the permit/charge ordering contract.
TEST_F(FailpointSweepTest, InjectedChargeRefusalNeverDebitsBudget) {
  auto& reg = FailpointRegistry::Instance();
  const ModelSpec model = ModelSpec::ChainClass({SweepChain(0.8, 0.7)}, 40);
  auto engine = PrivacyEngine::Create(model).ValueOrDie();
  SessionOptions options;
  options.epsilon_budget = 10.0;
  auto session = engine->CreateSession(options);
  const StateSequence data(40, 1);

  reg.ArmOnce("session.charge");
  auto refused = session->Submit(QuerySpec::Sum(1.0), data);
  EXPECT_FALSE(refused.get().ok());
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_EQ(session->in_flight(), 0u) << "refusal must return its slot";

  // And the very next submit, with the injection spent, serves normally.
  auto served = session->Submit(QuerySpec::Sum(1.0), data);
  EXPECT_TRUE(served.get().ok());
  EXPECT_GT(session->EpsilonSpent(), 0.0);
}

}  // namespace
}  // namespace pf
