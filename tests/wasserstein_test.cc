#include "dist/wasserstein.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"

namespace pf {
namespace {

DiscreteDistribution Masses(const std::vector<double>& m) {
  return DiscreteDistribution::FromMasses(m).ValueOrDie();
}

TEST(WassersteinTest, IdenticalDistributionsZero) {
  const auto d = Masses({0.3, 0.7});
  for (auto backend : {WassersteinBackend::kQuantile, WassersteinBackend::kMaxFlow,
                       WassersteinBackend::kLp}) {
    EXPECT_NEAR(WassersteinInf(d, d, backend).ValueOrDie(), 0.0, 1e-12);
  }
}

TEST(WassersteinTest, PointMassShift) {
  const auto a = DiscreteDistribution::PointMass(1.0);
  const auto b = DiscreteDistribution::PointMass(4.5);
  for (auto backend : {WassersteinBackend::kQuantile, WassersteinBackend::kMaxFlow,
                       WassersteinBackend::kLp}) {
    EXPECT_NEAR(WassersteinInf(a, b, backend).ValueOrDie(), 3.5, 1e-12);
  }
}

// The Section 3.1 flu worked example: the two conditional distributions of
// the infected count have W_inf = 2 (vs. group sensitivity 4).
TEST(WassersteinTest, PaperFluExampleIsTwo) {
  const auto mu0 = Masses({0.2, 0.225, 0.5, 0.075, 0.0});
  const auto mu1 = Masses({0.0, 0.075, 0.5, 0.225, 0.2});
  for (auto backend : {WassersteinBackend::kQuantile, WassersteinBackend::kMaxFlow,
                       WassersteinBackend::kLp}) {
    EXPECT_NEAR(WassersteinInf(mu0, mu1, backend).ValueOrDie(), 2.0, 1e-9)
        << "backend " << static_cast<int>(backend);
  }
}

TEST(WassersteinTest, AsymmetricMassMove) {
  // mu puts 0.9 at 0, 0.1 at 10; nu puts 0.1 at 0, 0.9 at 10. Monotone
  // coupling moves the middle 0.8 across distance 10.
  const auto mu = DiscreteDistribution::Make({{0.0, 0.9}, {10.0, 0.1}}).ValueOrDie();
  const auto nu = DiscreteDistribution::Make({{0.0, 0.1}, {10.0, 0.9}}).ValueOrDie();
  EXPECT_NEAR(WassersteinInf(mu, nu).ValueOrDie(), 10.0, 1e-12);
}

TEST(WassersteinTest, SmallShiftNeedsOnlyOneStep) {
  // Shifting mass one slot: W_inf = 1 even though W_1 is small.
  const auto mu = Masses({0.5, 0.5, 0.0});
  const auto nu = Masses({0.5, 0.4, 0.1});
  EXPECT_NEAR(WassersteinInf(mu, nu).ValueOrDie(), 1.0, 1e-12);
  EXPECT_NEAR(Wasserstein1(mu, nu).ValueOrDie(), 0.1, 1e-12);
}

TEST(WassersteinTest, SymmetryOfArguments) {
  const auto mu = Masses({0.2, 0.3, 0.5});
  const auto nu = Masses({0.6, 0.1, 0.3});
  const double fwd = WassersteinInf(mu, nu).ValueOrDie();
  const double bwd = WassersteinInf(nu, mu).ValueOrDie();
  EXPECT_NEAR(fwd, bwd, 1e-12);
}

TEST(WassersteinTest, EmptyRejected) {
  DiscreteDistribution empty;
  const auto d = Masses({1.0});
  EXPECT_FALSE(WassersteinInf(empty, d).ok());
  EXPECT_FALSE(WassersteinInf(d, empty).ok());
  EXPECT_FALSE(Wasserstein1(empty, d).ok());
}

TEST(WassersteinTest, CouplingFeasibilityThreshold) {
  const auto mu = Masses({1.0, 0.0});
  const auto nu = Masses({0.0, 1.0});
  for (auto backend : {WassersteinBackend::kQuantile, WassersteinBackend::kMaxFlow,
                       WassersteinBackend::kLp}) {
    EXPECT_FALSE(CouplingFeasibleWithin(mu, nu, 0.5, backend).ValueOrDie());
    EXPECT_TRUE(CouplingFeasibleWithin(mu, nu, 1.0, backend).ValueOrDie());
  }
}

TEST(WassersteinTest, Wasserstein1CdfArea) {
  const auto mu = Masses({1.0, 0.0});
  const auto nu = Masses({0.0, 1.0});
  EXPECT_NEAR(Wasserstein1(mu, nu).ValueOrDie(), 1.0, 1e-12);
}

TEST(WassersteinTest, WinfAtLeastW1) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const Vector a = rng.UniformSimplex(5);
    const Vector b = rng.UniformSimplex(5);
    const auto mu = Masses({a[0], a[1], a[2], a[3], a[4]});
    const auto nu = Masses({b[0], b[1], b[2], b[3], b[4]});
    EXPECT_GE(WassersteinInf(mu, nu).ValueOrDie() + 1e-12,
              Wasserstein1(mu, nu).ValueOrDie());
  }
}

// Property sweep: the three backends agree on random distribution pairs over
// integer supports (random sizes), validating the hand-written LP/flow
// solvers against the closed-form quantile coupling.
class WassersteinBackendAgreement : public ::testing::TestWithParam<int> {};

TEST_P(WassersteinBackendAgreement, BackendsAgreeOnRandomPairs) {
  Rng rng(1000 + GetParam());
  const std::size_t support = 2 + rng.UniformInt(6);
  Vector a = rng.UniformSimplex(support);
  Vector b = rng.UniformSimplex(support);
  const auto mu = DiscreteDistribution::FromMasses(a).ValueOrDie();
  const auto nu = DiscreteDistribution::FromMasses(b).ValueOrDie();
  const double quantile =
      WassersteinInf(mu, nu, WassersteinBackend::kQuantile).ValueOrDie();
  const double flow =
      WassersteinInf(mu, nu, WassersteinBackend::kMaxFlow).ValueOrDie();
  const double lp = WassersteinInf(mu, nu, WassersteinBackend::kLp).ValueOrDie();
  EXPECT_NEAR(quantile, flow, 1e-7);
  EXPECT_NEAR(quantile, lp, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(RandomPairs, WassersteinBackendAgreement,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace pf
