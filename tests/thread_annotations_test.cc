// The capability-annotated locking wrappers (common/thread_annotations.h):
// pf::Mutex / MutexLock mutual exclusion, TryLock semantics, and the
// CondVar wait/notify contract (atomic release-and-reacquire, spurious
// wakeup tolerance via explicit while loops). The ANNOTATIONS themselves
// are proven by the clang -Wthread-safety -Werror CI leg; these tests pin
// the runtime behavior the wrappers delegate to the std primitives.
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pf {
namespace {

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(mu);
        ++counter;  // Unsynchronized increments would lose updates.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIncrements);
}

TEST(MutexTest, TryLockFailsWhileHeldSucceedsAfterUnlock) {
  Mutex mu;
  mu.Lock();
  // TryLock from ANOTHER thread must fail while this thread holds the
  // mutex (same-thread try_lock on std::mutex is undefined).
  std::atomic<bool> acquired{true};
  std::thread prober([&] {
    const bool got = mu.TryLock();
    if (got) mu.Unlock();
    acquired.store(got);
  });
  prober.join();
  EXPECT_FALSE(acquired.load());
  mu.Unlock();
  std::thread prober2([&] {
    const bool got = mu.TryLock();
    if (got) mu.Unlock();
    acquired.store(got);
  });
  prober2.join();
  EXPECT_TRUE(acquired.load());
}

TEST(CondVarTest, WaitReleasesMutexAndWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;
  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      cv.Wait(mu);  // Must release mu here, or the setter deadlocks.
    }
    observed = true;
  });
  {
    // If Wait failed to release the mutex this Lock would deadlock and the
    // test would time out.
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woken{0};
  constexpr int kWaiters = 3;
  std::vector<std::thread> waiters;
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(mu);
      woken.fetch_add(1);
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woken.load(), kWaiters);
}

TEST(AnnotationMacroTest, MacrosCompileToNoOpsOffClang) {
  // The macros must be usable in every compiler; this test exists so a
  // GCC build exercises each one at least once (on clang the whole library
  // is the real test, under -Wthread-safety -Werror).
  class Guarded {
   public:
    void Set(int v) PF_EXCLUDES(mu_) {
      MutexLock lock(mu_);
      value_ = v;
    }
    int Get() PF_EXCLUDES(mu_) {
      MutexLock lock(mu_);
      return GetLocked();
    }

   private:
    int GetLocked() PF_REQUIRES(mu_) { return value_; }
    Mutex mu_;
    int value_ PF_GUARDED_BY(mu_) = 0;
  };
  Guarded g;
  g.Set(41);
  EXPECT_EQ(g.Get(), 41);
}

}  // namespace
}  // namespace pf
