#include "pufferfish/mqm_exact.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

// Section 4.4 running example: T = 100 binary chain, epsilon = 1.
MarkovChain Theta1() {
  return MarkovChain::Make({1.0, 0.0}, Matrix{{0.9, 0.1}, {0.4, 0.6}})
      .ValueOrDie();
}
MarkovChain Theta2() {
  return MarkovChain::Make({0.9, 0.1}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
      .ValueOrDie();
}

// Section 4.3 composition example: T = 3 chain with q = (0.8, 0.2),
// P = [[0.9, 0.1], [0.4, 0.6]], epsilon = 10. The quilts of the middle node
// have max-influence 0, log 6, log 6, log 36 and scores 0.3, 0.2437,
// 0.2437, 0.1558.
TEST(MqmExactTest, CompositionExampleInfluences) {
  const MarkovChain theta =
      MarkovChain::Make({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}).ValueOrDie();
  const double log6 = std::log(6.0);
  const double log36 = std::log(36.0);
  // Trivial quilt: influence 0.
  EXPECT_NEAR(
      ChainQuiltInfluenceExact(theta, 3, TrivialQuilt(1, 3)).ValueOrDie(), 0.0,
      1e-12);
  // {X1} (left, 0-indexed {0}): log 6.
  EXPECT_NEAR(ChainQuiltInfluenceExact(theta, 3,
                                       ChainQuilt(3, 1, 1, 0).ValueOrDie())
                  .ValueOrDie(),
              log6, 1e-9);
  // {X3} (right, 0-indexed {2}): log 6.
  EXPECT_NEAR(ChainQuiltInfluenceExact(theta, 3,
                                       ChainQuilt(3, 1, 0, 1).ValueOrDie())
                  .ValueOrDie(),
              log6, 1e-9);
  // {X1, X3}: log 36.
  EXPECT_NEAR(ChainQuiltInfluenceExact(theta, 3,
                                       ChainQuilt(3, 1, 1, 1).ValueOrDie())
                  .ValueOrDie(),
              log36, 1e-9);
}

TEST(MqmExactTest, CompositionExampleScoresAndActiveQuilt) {
  const MarkovChain theta =
      MarkovChain::Make({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 10.0;
  options.max_nearby = 3;
  // Scores for the middle node: 3/10 = 0.3, 2/(10 - log 6) = 0.2437,
  // 1/(10 - log 36) = 0.1558. The active quilt is {X1, X3}.
  const double score_two_sided = 1.0 / (10.0 - std::log(36.0));
  EXPECT_NEAR(score_two_sided, 0.1558, 5e-4);
  const double score_one_sided = 2.0 / (10.0 - std::log(6.0));
  EXPECT_NEAR(score_one_sided, 0.2437, 5e-4);
  // The full analysis takes the max over nodes of min over quilts; verify
  // the middle node's active quilt through a single-node family check.
  const ChainMqmResult r = MqmExactAnalyze({theta}, 3, options).ValueOrDie();
  EXPECT_LE(r.sigma_max, 3.0 / 10.0 + 1e-12);  // Never worse than trivial.
}

// Running example numbers (Section 4.4.1): with ell = T and epsilon = 1,
// theta1's worst node is X8 (0-indexed 7) with quilt {X3, X13} and score
// 13.0219; theta2's worst node is X6 (0-indexed 5) with quilt {X10} and
// score 10.6402.
TEST(MqmExactTest, RunningExampleTheta1) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 100;
  const ChainMqmResult r = MqmExactAnalyze({Theta1()}, 100, options).ValueOrDie();
  EXPECT_NEAR(r.sigma_max, 13.0219, 1e-3);
  EXPECT_EQ(r.worst_node, 7);
  EXPECT_EQ(r.active_quilt.quilt, (std::vector<int>{2, 12}));
}

TEST(MqmExactTest, RunningExampleTheta2) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 100;
  const ChainMqmResult r = MqmExactAnalyze({Theta2()}, 100, options).ValueOrDie();
  EXPECT_NEAR(r.sigma_max, 10.6402, 1e-3);
  EXPECT_EQ(r.worst_node, 5);
  EXPECT_EQ(r.active_quilt.quilt, (std::vector<int>{9}));
}

TEST(MqmExactTest, ClassTakesWorstTheta) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 100;
  const ChainMqmResult r =
      MqmExactAnalyze({Theta1(), Theta2()}, 100, options).ValueOrDie();
  EXPECT_NEAR(r.sigma_max, 13.0219, 1e-3);  // theta1 dominates.
}

TEST(MqmExactTest, SigmaNeverExceedsTrivialScore) {
  ChainMqmOptions options;
  options.epsilon = 0.5;
  options.max_nearby = 50;
  const ChainMqmResult r = MqmExactAnalyze({Theta1()}, 60, options).ValueOrDie();
  EXPECT_LE(r.sigma_max, 60.0 / 0.5 + 1e-9);
  EXPECT_GT(r.sigma_max, 0.0);
}

TEST(MqmExactTest, StationaryShortcutMatchesFullScan) {
  // Stationary initial distribution: shortcut must agree with full scan.
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const MarkovChain chain = MarkovChain::Make({0.8, 0.2}, p).ValueOrDie();
  ChainMqmOptions fast;
  fast.epsilon = 1.0;
  fast.max_nearby = 40;
  ChainMqmOptions slow = fast;
  slow.allow_stationary_shortcut = false;
  const ChainMqmResult rf = MqmExactAnalyze({chain}, 200, fast).ValueOrDie();
  const ChainMqmResult rs = MqmExactAnalyze({chain}, 200, slow).ValueOrDie();
  EXPECT_TRUE(rf.used_stationary_shortcut);
  EXPECT_FALSE(rs.used_stationary_shortcut);
  EXPECT_NEAR(rf.sigma_max, rs.sigma_max, 1e-9);
}

TEST(MqmExactTest, FreeInitialDominatesAnyFixedInitial) {
  // The C.4 class (all initial distributions) must require at least as much
  // noise as any particular initial distribution with the same transitions.
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 60;
  const double free_sigma =
      MqmExactAnalyzeFreeInitial({p}, 60, options).ValueOrDie().sigma_max;
  for (const Vector& q :
       {Vector{1.0, 0.0}, Vector{0.0, 1.0}, Vector{0.8, 0.2}, Vector{0.5, 0.5}}) {
    const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
    const double fixed_sigma =
        MqmExactAnalyze({chain}, 60, options).ValueOrDie().sigma_max;
    EXPECT_GE(free_sigma + 1e-9, fixed_sigma) << "q = (" << q[0] << "," << q[1] << ")";
  }
}

TEST(MqmExactTest, InfluenceMonotoneInQuiltDistance) {
  // Widening the quilt (larger a, b) cannot increase the exact influence.
  const MarkovChain theta = Theta1();
  double prev = 1e9;
  for (int a = 2; a <= 10; a += 2) {
    const MarkovQuilt q = ChainQuilt(100, 50, a, a).ValueOrDie();
    const double e = ChainQuiltInfluenceExact(theta, 100, q).ValueOrDie();
    EXPECT_LE(e, prev + 1e-9);
    prev = e;
  }
}

TEST(MqmExactTest, DeterministicChainHasInfiniteInfluenceQuilts) {
  // A near-deterministic chain: tiny epsilon forces large quilts or the
  // trivial quilt; sigma stays finite because the trivial quilt exists.
  const MarkovChain sticky =
      MarkovChain::Make({0.5, 0.5}, Matrix{{0.999, 0.001}, {0.001, 0.999}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 0.1;
  options.max_nearby = 10;
  const ChainMqmResult r = MqmExactAnalyze({sticky}, 50, options).ValueOrDie();
  EXPECT_TRUE(std::isfinite(r.sigma_max));
  EXPECT_LE(r.sigma_max, 50.0 / 0.1 + 1e-9);
}

// ------------------------------------------------- marginal-dedup scan --
//
// The dedup fast path must be BIT-identical to the exhaustive scan —
// sigma_max, worst node, active quilt, and influence — since the two are
// interchangeable under one plan fingerprint.

void ExpectBitIdentical(const ChainMqmResult& dedup,
                        const ChainMqmResult& exhaustive) {
  EXPECT_EQ(dedup.sigma_max, exhaustive.sigma_max);
  EXPECT_EQ(dedup.worst_node, exhaustive.worst_node);
  EXPECT_EQ(dedup.influence, exhaustive.influence);
  EXPECT_EQ(dedup.active_quilt.target, exhaustive.active_quilt.target);
  EXPECT_EQ(dedup.active_quilt.quilt, exhaustive.active_quilt.quilt);
  EXPECT_EQ(dedup.active_quilt.nearby_count,
            exhaustive.active_quilt.nearby_count);
  EXPECT_EQ(dedup.used_stationary_shortcut,
            exhaustive.used_stationary_shortcut);
}

TEST(MqmExactDedupTest, BitIdenticalAcrossInitialDistributions) {
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  // Stationary (the shortcut's home turf), a point mass, and a generic
  // non-stationary initial — with the shortcut both allowed and disabled.
  const Vector stationary =
      MarkovChain::Make({0.5, 0.5}, p).ValueOrDie().StationaryDistribution()
          .ValueOrDie();
  for (const Vector& q :
       {stationary, Vector{1.0, 0.0}, Vector{0.3, 0.7}}) {
    const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
    for (bool shortcut : {true, false}) {
      ChainMqmOptions options;
      options.epsilon = 1.0;
      options.max_nearby = 12;
      options.allow_stationary_shortcut = shortcut;
      options.num_threads = 1;
      ChainMqmOptions exhaustive = options;
      exhaustive.dedup_nodes = false;
      const ChainMqmResult rd =
          MqmExactAnalyze({chain}, 150, options).ValueOrDie();
      const ChainMqmResult re =
          MqmExactAnalyze({chain}, 150, exhaustive).ValueOrDie();
      ExpectBitIdentical(rd, re);
    }
  }
}

TEST(MqmExactDedupTest, BitIdenticalOnThreeStateChainAndThreads) {
  // Non-reversible 3-state chain, delta initial; also cross-check that the
  // dedup result is thread-count invariant.
  const Matrix p{{0.7, 0.2, 0.1}, {0.1, 0.6, 0.3}, {0.3, 0.1, 0.6}};
  const MarkovChain chain = MarkovChain::Make({0.0, 1.0, 0.0}, p).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 0.8;
  options.max_nearby = 9;
  options.num_threads = 1;
  ChainMqmOptions exhaustive = options;
  exhaustive.dedup_nodes = false;
  const ChainMqmResult rd = MqmExactAnalyze({chain}, 90, options).ValueOrDie();
  const ChainMqmResult re =
      MqmExactAnalyze({chain}, 90, exhaustive).ValueOrDie();
  ExpectBitIdentical(rd, re);
  options.num_threads = 8;
  ExpectBitIdentical(MqmExactAnalyze({chain}, 90, options).ValueOrDie(), re);
}

TEST(MqmExactDedupTest, FreeInitialBitIdentical) {
  const Matrix p{{0.85, 0.15}, {0.25, 0.75}};
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 10;
  options.num_threads = 1;
  ChainMqmOptions exhaustive = options;
  exhaustive.dedup_nodes = false;
  const ChainMqmResult rd =
      MqmExactAnalyzeFreeInitial({p}, 80, options).ValueOrDie();
  const ChainMqmResult re =
      MqmExactAnalyzeFreeInitial({p}, 80, exhaustive).ValueOrDie();
  ExpectBitIdentical(rd, re);
}

TEST(MqmExactDedupTest, BitIdenticalWhenClassStoreOverflows) {
  // A slow-mixing chain produces more bit-distinct transient marginals
  // than the class store holds (cap >= 256), forcing the blocked-overflow
  // scoring and the folded reduction — which must still be bit-identical
  // to the exhaustive scan.
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, Matrix{{0.99, 0.01}, {0.03, 0.97}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 4;
  options.allow_stationary_shortcut = false;
  options.num_threads = 1;
  ChainMqmOptions exhaustive = options;
  exhaustive.dedup_nodes = false;
  const ChainMqmResult rd =
      MqmExactAnalyze({chain}, 1500, options).ValueOrDie();
  const ChainMqmResult re =
      MqmExactAnalyze({chain}, 1500, exhaustive).ValueOrDie();
  // The transient really must exceed the class-store cap for this test to
  // exercise the overflow path.
  EXPECT_GT(rd.scored_nodes, 256u);
  ExpectBitIdentical(rd, re);
  options.num_threads = 4;
  ExpectBitIdentical(MqmExactAnalyze({chain}, 1500, options).ValueOrDie(), re);
}

TEST(MqmExactDedupTest, StatsReportCollapsedScan) {
  // On a long mixing chain almost all interior nodes share one class, so
  // the scan must score far fewer nodes than it covers.
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, Matrix{{0.9, 0.1}, {0.4, 0.6}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  options.allow_stationary_shortcut = false;
  const ChainMqmResult r = MqmExactAnalyze({chain}, 5000, options).ValueOrDie();
  EXPECT_EQ(r.total_nodes, 5000u);
  EXPECT_GT(r.scored_nodes, 0u);
  EXPECT_LT(r.scored_nodes, 500u);  // Mixing time + boundary classes only.
  EXPECT_GT(r.dedup_ratio(), 10.0);
  EXPECT_GT(r.memory.peak_bytes, 0u);
}

TEST(MqmExactDedupTest, FreeInitialLadderMemoryIsLengthIndependent) {
  // The streamed power ladder must hold O(k^2 * max_nearby) doubles no
  // matter how long the chain is: growing T by 50x may not grow memory.
  const Matrix p{{0.85, 0.15}, {0.25, 0.75}};
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  const std::size_t short_bytes =
      MqmExactAnalyzeFreeInitial({p}, 2000, options).ValueOrDie()
          .memory.peak_bytes;
  const std::size_t long_bytes =
      MqmExactAnalyzeFreeInitial({p}, 20000, options).ValueOrDie()
          .memory.peak_bytes;
  EXPECT_GT(short_bytes, 0u);
  EXPECT_EQ(short_bytes, long_bytes);
}

TEST(MqmExactTest, ValidatesInputs) {
  ChainMqmOptions options;
  options.epsilon = -1.0;
  EXPECT_FALSE(MqmExactAnalyze({Theta1()}, 10, options).ok());
  options.epsilon = 1.0;
  EXPECT_FALSE(MqmExactAnalyze({}, 10, options).ok());
  EXPECT_FALSE(MqmExactAnalyze({Theta1()}, 0, options).ok());
  EXPECT_FALSE(MqmExactAnalyzeFreeInitial({}, 10, options).ok());
  EXPECT_FALSE(
      MqmExactAnalyzeFreeInitial({Matrix{{0.9, 0.2}, {0.4, 0.6}}}, 10, options)
          .ok());
}

}  // namespace
}  // namespace pf
