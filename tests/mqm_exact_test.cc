#include "pufferfish/mqm_exact.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

// Section 4.4 running example: T = 100 binary chain, epsilon = 1.
MarkovChain Theta1() {
  return MarkovChain::Make({1.0, 0.0}, Matrix{{0.9, 0.1}, {0.4, 0.6}})
      .ValueOrDie();
}
MarkovChain Theta2() {
  return MarkovChain::Make({0.9, 0.1}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
      .ValueOrDie();
}

// Section 4.3 composition example: T = 3 chain with q = (0.8, 0.2),
// P = [[0.9, 0.1], [0.4, 0.6]], epsilon = 10. The quilts of the middle node
// have max-influence 0, log 6, log 6, log 36 and scores 0.3, 0.2437,
// 0.2437, 0.1558.
TEST(MqmExactTest, CompositionExampleInfluences) {
  const MarkovChain theta =
      MarkovChain::Make({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}).ValueOrDie();
  const double log6 = std::log(6.0);
  const double log36 = std::log(36.0);
  // Trivial quilt: influence 0.
  EXPECT_NEAR(
      ChainQuiltInfluenceExact(theta, 3, TrivialQuilt(1, 3)).ValueOrDie(), 0.0,
      1e-12);
  // {X1} (left, 0-indexed {0}): log 6.
  EXPECT_NEAR(ChainQuiltInfluenceExact(theta, 3,
                                       ChainQuilt(3, 1, 1, 0).ValueOrDie())
                  .ValueOrDie(),
              log6, 1e-9);
  // {X3} (right, 0-indexed {2}): log 6.
  EXPECT_NEAR(ChainQuiltInfluenceExact(theta, 3,
                                       ChainQuilt(3, 1, 0, 1).ValueOrDie())
                  .ValueOrDie(),
              log6, 1e-9);
  // {X1, X3}: log 36.
  EXPECT_NEAR(ChainQuiltInfluenceExact(theta, 3,
                                       ChainQuilt(3, 1, 1, 1).ValueOrDie())
                  .ValueOrDie(),
              log36, 1e-9);
}

TEST(MqmExactTest, CompositionExampleScoresAndActiveQuilt) {
  const MarkovChain theta =
      MarkovChain::Make({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 10.0;
  options.max_nearby = 3;
  // Scores for the middle node: 3/10 = 0.3, 2/(10 - log 6) = 0.2437,
  // 1/(10 - log 36) = 0.1558. The active quilt is {X1, X3}.
  const double score_two_sided = 1.0 / (10.0 - std::log(36.0));
  EXPECT_NEAR(score_two_sided, 0.1558, 5e-4);
  const double score_one_sided = 2.0 / (10.0 - std::log(6.0));
  EXPECT_NEAR(score_one_sided, 0.2437, 5e-4);
  // The full analysis takes the max over nodes of min over quilts; verify
  // the middle node's active quilt through a single-node family check.
  const ChainMqmResult r = MqmExactAnalyze({theta}, 3, options).ValueOrDie();
  EXPECT_LE(r.sigma_max, 3.0 / 10.0 + 1e-12);  // Never worse than trivial.
}

// Running example numbers (Section 4.4.1): with ell = T and epsilon = 1,
// theta1's worst node is X8 (0-indexed 7) with quilt {X3, X13} and score
// 13.0219; theta2's worst node is X6 (0-indexed 5) with quilt {X10} and
// score 10.6402.
TEST(MqmExactTest, RunningExampleTheta1) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 100;
  const ChainMqmResult r = MqmExactAnalyze({Theta1()}, 100, options).ValueOrDie();
  EXPECT_NEAR(r.sigma_max, 13.0219, 1e-3);
  EXPECT_EQ(r.worst_node, 7);
  EXPECT_EQ(r.active_quilt.quilt, (std::vector<int>{2, 12}));
}

TEST(MqmExactTest, RunningExampleTheta2) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 100;
  const ChainMqmResult r = MqmExactAnalyze({Theta2()}, 100, options).ValueOrDie();
  EXPECT_NEAR(r.sigma_max, 10.6402, 1e-3);
  EXPECT_EQ(r.worst_node, 5);
  EXPECT_EQ(r.active_quilt.quilt, (std::vector<int>{9}));
}

TEST(MqmExactTest, ClassTakesWorstTheta) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 100;
  const ChainMqmResult r =
      MqmExactAnalyze({Theta1(), Theta2()}, 100, options).ValueOrDie();
  EXPECT_NEAR(r.sigma_max, 13.0219, 1e-3);  // theta1 dominates.
}

TEST(MqmExactTest, SigmaNeverExceedsTrivialScore) {
  ChainMqmOptions options;
  options.epsilon = 0.5;
  options.max_nearby = 50;
  const ChainMqmResult r = MqmExactAnalyze({Theta1()}, 60, options).ValueOrDie();
  EXPECT_LE(r.sigma_max, 60.0 / 0.5 + 1e-9);
  EXPECT_GT(r.sigma_max, 0.0);
}

TEST(MqmExactTest, StationaryShortcutMatchesFullScan) {
  // Stationary initial distribution: shortcut must agree with full scan.
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const MarkovChain chain = MarkovChain::Make({0.8, 0.2}, p).ValueOrDie();
  ChainMqmOptions fast;
  fast.epsilon = 1.0;
  fast.max_nearby = 40;
  ChainMqmOptions slow = fast;
  slow.allow_stationary_shortcut = false;
  const ChainMqmResult rf = MqmExactAnalyze({chain}, 200, fast).ValueOrDie();
  const ChainMqmResult rs = MqmExactAnalyze({chain}, 200, slow).ValueOrDie();
  EXPECT_TRUE(rf.used_stationary_shortcut);
  EXPECT_FALSE(rs.used_stationary_shortcut);
  EXPECT_NEAR(rf.sigma_max, rs.sigma_max, 1e-9);
}

TEST(MqmExactTest, FreeInitialDominatesAnyFixedInitial) {
  // The C.4 class (all initial distributions) must require at least as much
  // noise as any particular initial distribution with the same transitions.
  const Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 60;
  const double free_sigma =
      MqmExactAnalyzeFreeInitial({p}, 60, options).ValueOrDie().sigma_max;
  for (const Vector& q :
       {Vector{1.0, 0.0}, Vector{0.0, 1.0}, Vector{0.8, 0.2}, Vector{0.5, 0.5}}) {
    const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
    const double fixed_sigma =
        MqmExactAnalyze({chain}, 60, options).ValueOrDie().sigma_max;
    EXPECT_GE(free_sigma + 1e-9, fixed_sigma) << "q = (" << q[0] << "," << q[1] << ")";
  }
}

TEST(MqmExactTest, InfluenceMonotoneInQuiltDistance) {
  // Widening the quilt (larger a, b) cannot increase the exact influence.
  const MarkovChain theta = Theta1();
  double prev = 1e9;
  for (int a = 2; a <= 10; a += 2) {
    const MarkovQuilt q = ChainQuilt(100, 50, a, a).ValueOrDie();
    const double e = ChainQuiltInfluenceExact(theta, 100, q).ValueOrDie();
    EXPECT_LE(e, prev + 1e-9);
    prev = e;
  }
}

TEST(MqmExactTest, DeterministicChainHasInfiniteInfluenceQuilts) {
  // A near-deterministic chain: tiny epsilon forces large quilts or the
  // trivial quilt; sigma stays finite because the trivial quilt exists.
  const MarkovChain sticky =
      MarkovChain::Make({0.5, 0.5}, Matrix{{0.999, 0.001}, {0.001, 0.999}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 0.1;
  options.max_nearby = 10;
  const ChainMqmResult r = MqmExactAnalyze({sticky}, 50, options).ValueOrDie();
  EXPECT_TRUE(std::isfinite(r.sigma_max));
  EXPECT_LE(r.sigma_max, 50.0 / 0.1 + 1e-9);
}

TEST(MqmExactTest, ValidatesInputs) {
  ChainMqmOptions options;
  options.epsilon = -1.0;
  EXPECT_FALSE(MqmExactAnalyze({Theta1()}, 10, options).ok());
  options.epsilon = 1.0;
  EXPECT_FALSE(MqmExactAnalyze({}, 10, options).ok());
  EXPECT_FALSE(MqmExactAnalyze({Theta1()}, 0, options).ok());
  EXPECT_FALSE(MqmExactAnalyzeFreeInitial({}, 10, options).ok());
  EXPECT_FALSE(
      MqmExactAnalyzeFreeInitial({Matrix{{0.9, 0.2}, {0.4, 0.6}}}, 10, options)
          .ok());
}

}  // namespace
}  // namespace pf
