#include "common/histogram.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(HistogramTest, Counts) {
  const StateSequence seq = {0, 1, 1, 2, 0, 0};
  const Result<Vector> h = CountHistogram(seq, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h.value()[0], 3.0);
  EXPECT_DOUBLE_EQ(h.value()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.value()[2], 1.0);
}

TEST(HistogramTest, OutOfRangeState) {
  EXPECT_FALSE(CountHistogram({0, 3}, 3).ok());
  EXPECT_FALSE(CountHistogram({-1}, 3).ok());
}

TEST(HistogramTest, RelativeFrequencySumsToOne) {
  const StateSequence seq = {0, 1, 1, 2};
  const Result<Vector> h = RelativeFrequencyHistogram(seq, 3);
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(IsProbabilityVector(h.value()));
  EXPECT_DOUBLE_EQ(h.value()[1], 0.5);
}

TEST(HistogramTest, RelativeFrequencyEmptyFails) {
  EXPECT_FALSE(RelativeFrequencyHistogram({}, 3).ok());
}

TEST(HistogramTest, AggregatePoolsObservations) {
  const std::vector<StateSequence> seqs = {{0, 0, 1}, {1}};
  const Result<Vector> h = AggregateRelativeFrequencyHistogram(seqs, 2);
  ASSERT_TRUE(h.ok());
  EXPECT_DOUBLE_EQ(h.value()[0], 0.5);
  EXPECT_DOUBLE_EQ(h.value()[1], 0.5);
}

TEST(HistogramTest, AggregateEmptyFails) {
  EXPECT_FALSE(AggregateRelativeFrequencyHistogram({}, 2).ok());
  EXPECT_FALSE(AggregateRelativeFrequencyHistogram({{}, {}}, 2).ok());
}

TEST(HistogramTest, ClampToUnit) {
  const Vector noisy = {-0.2, 0.5, 1.7};
  const Vector clamped = ClampToUnit(noisy);
  EXPECT_DOUBLE_EQ(clamped[0], 0.0);
  EXPECT_DOUBLE_EQ(clamped[1], 0.5);
  EXPECT_DOUBLE_EQ(clamped[2], 1.0);
}

}  // namespace
}  // namespace pf
