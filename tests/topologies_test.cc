#include "data/topologies.h"

#include <gtest/gtest.h>

#include "data/flu.h"
#include "graphical/moral_graph.h"

namespace pf {
namespace {

const Vector kRoot = {0.5, 0.5};
const Matrix kEdge = BinaryNoisyCopyCpt(0.25);
const Matrix kMerge = BinaryNoisyOrCpt(0.25);

TEST(TopologiesTest, CptHelpers) {
  EXPECT_EQ(BinaryRoot(0.25), (Vector{0.75, 0.25}));
  const Matrix copy = BinaryNoisyCopyCpt(0.1);
  EXPECT_DOUBLE_EQ(copy(0, 0), 0.9);
  EXPECT_DOUBLE_EQ(copy(1, 0), 0.1);
  const Matrix orr = BinaryNoisyOrCpt(0.1);
  EXPECT_DOUBLE_EQ(orr(0, 1), 0.1);   // OR(0,0) = 0, flipped w.p. 0.1.
  EXPECT_DOUBLE_EQ(orr(3, 1), 0.9);   // OR(1,1) = 1.
}

TEST(TopologiesTest, TreeShape) {
  const BayesianNetwork bn = TreeNetwork(7, 2, kRoot, kEdge).ValueOrDie();
  ASSERT_EQ(bn.num_nodes(), 7u);
  EXPECT_TRUE(bn.node(0).parents.empty());
  EXPECT_EQ(bn.node(1).parents, (std::vector<int>{0}));
  EXPECT_EQ(bn.node(2).parents, (std::vector<int>{0}));
  EXPECT_EQ(bn.node(5).parents, (std::vector<int>{2}));
  // branching = 1 is a chain.
  const BayesianNetwork chain = TreeNetwork(4, 1, kRoot, kEdge).ValueOrDie();
  EXPECT_EQ(chain.node(3).parents, (std::vector<int>{2}));
  EXPECT_FALSE(TreeNetwork(0, 2, kRoot, kEdge).ok());
  EXPECT_FALSE(TreeNetwork(4, 0, kRoot, kEdge).ok());
  // CPT shape mismatches surface as InvalidArgument from AddNode.
  EXPECT_FALSE(TreeNetwork(4, 2, kRoot, kMerge).ok());
}

TEST(TopologiesTest, GridShapeAndParents) {
  const BayesianNetwork bn =
      GridNetwork(2, 3, kRoot, kEdge, kMerge).ValueOrDie();
  ASSERT_EQ(bn.num_nodes(), 6u);
  EXPECT_TRUE(bn.node(0).parents.empty());
  EXPECT_EQ(bn.node(1).parents, (std::vector<int>{0}));      // (0,1): left.
  EXPECT_EQ(bn.node(3).parents, (std::vector<int>{0}));      // (1,0): up.
  EXPECT_EQ(bn.node(4).parents, (std::vector<int>{1, 3}));   // (1,1): both.
  EXPECT_FALSE(GridNetwork(0, 3, kRoot, kEdge, kMerge).ok());
}

TEST(TopologiesTest, HubSpokeShape) {
  const BayesianNetwork bn =
      HubSpokeNetwork(2, 3, kRoot, kEdge, kEdge).ValueOrDie();
  ASSERT_EQ(bn.num_nodes(), 8u);
  EXPECT_TRUE(bn.node(0).parents.empty());         // Hub 0.
  EXPECT_EQ(bn.node(1).parents, (std::vector<int>{0}));  // Its spokes.
  EXPECT_EQ(bn.node(4).parents, (std::vector<int>{0}));  // Hub 1 off hub 0.
  EXPECT_EQ(bn.node(5).parents, (std::vector<int>{4}));
  EXPECT_EQ(bn.node(0).name, "H0");
  EXPECT_EQ(bn.node(5).name, "H1S0");
}

TEST(TopologiesTest, FluContactNetworkIsATreeAtScale) {
  const BayesianNetwork bn = FluContactNetwork(30, 4, 0.05, 0.3).ValueOrDie();
  ASSERT_EQ(bn.num_nodes(), 150u);
  EXPECT_EQ(MinFillWidth(MoralGraph(bn).adjacency()), 1u);
  // An infected commuter raises a household member's risk.
  const BayesianNetwork::Node& member = bn.node(1);
  EXPECT_GT(member.cpt(1, 1), member.cpt(0, 1));
  EXPECT_FALSE(FluContactNetwork(3, 2, -0.1, 0.3).ok());
  EXPECT_FALSE(FluContactNetwork(3, 2, 0.1, 1.5).ok());
}

}  // namespace
}  // namespace pf
