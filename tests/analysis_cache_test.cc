// AnalysisCache: identical (model, epsilon, quilt-width) requests hit the
// cached plan and skip re-analysis; any change in the key re-analyzes.
#include "pufferfish/analysis_cache.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "graphical/markov_chain.h"

namespace pf {
namespace {

MarkovChain TestChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

TEST(AnalysisCacheTest, SecondAnalyzeWithIdenticalInputsIsCached) {
  AnalysisCache cache;
  const MqmExactUnified mechanism({TestChain(0.8, 0.7)}, 100);
  const auto first = cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  EXPECT_EQ(first->cache_hit_count(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 0u);

  const auto second = cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  // Same shared plan object, not a recomputation.
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(second->cache_hit_count(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnalysisCacheTest, EquivalentMechanismObjectHitsToo) {
  // A *different* object over a bit-identical model shares the fingerprint.
  AnalysisCache cache;
  const MqmExactUnified a({TestChain(0.8, 0.7)}, 100);
  const MqmExactUnified b({TestChain(0.8, 0.7)}, 100);
  const auto plan_a = cache.GetOrAnalyze(a, 1.0).ValueOrDie();
  const auto plan_b = cache.GetOrAnalyze(b, 1.0).ValueOrDie();
  EXPECT_EQ(plan_a.get(), plan_b.get());
  EXPECT_EQ(plan_b->cache_hit_count(), 1u);
}

TEST(AnalysisCacheTest, DifferentEpsilonMisses) {
  AnalysisCache cache;
  const MqmExactUnified mechanism({TestChain(0.8, 0.7)}, 100);
  const auto eps1 = cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  const auto eps2 = cache.GetOrAnalyze(mechanism, 2.0).ValueOrDie();
  EXPECT_NE(eps1.get(), eps2.get());
  EXPECT_GT(eps1->sigma, eps2->sigma);  // Less privacy, less noise.
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(AnalysisCacheTest, DifferentModelOrWidthMisses) {
  AnalysisCache cache;
  const MqmExactUnified base({TestChain(0.8, 0.7)}, 100);
  const MqmExactUnified other_model({TestChain(0.8, 0.6)}, 100);
  ChainUnifiedOptions narrow;
  narrow.max_nearby = 4;
  const MqmExactUnified other_width({TestChain(0.8, 0.7)}, 100, narrow);
  (void)cache.GetOrAnalyze(base, 1.0).ValueOrDie();
  (void)cache.GetOrAnalyze(other_model, 1.0).ValueOrDie();
  (void)cache.GetOrAnalyze(other_width, 1.0).ValueOrDie();
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 3u);
}

TEST(AnalysisCacheTest, FailedAnalysisIsNotCached) {
  AnalysisCache cache;
  const LaplaceDpUnified bad(-1.0);  // Invalid sensitivity: Analyze fails.
  EXPECT_FALSE(cache.GetOrAnalyze(bad, 1.0).ok());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(AnalysisCacheTest, ClearResetsEverything) {
  AnalysisCache cache;
  const LaplaceDpUnified mechanism(1.0);
  (void)cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  (void)cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(AnalysisCacheTest, BoundedCacheEvictsOldestFirst) {
  AnalysisCache cache(/*max_entries=*/2);
  const LaplaceDpUnified mechanism(1.0);
  (void)cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  (void)cache.GetOrAnalyze(mechanism, 2.0).ValueOrDie();
  (void)cache.GetOrAnalyze(mechanism, 3.0).ValueOrDie();  // Evicts eps=1.
  EXPECT_EQ(cache.size(), 2u);
  const auto again = cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  EXPECT_EQ(again->cache_hit_count(), 0u);  // Re-analyzed, not served warm.
  const auto newest = cache.GetOrAnalyze(mechanism, 3.0).ValueOrDie();
  EXPECT_EQ(newest->cache_hit_count(), 1u);  // eps=3 survived eviction.
}

TEST(AnalysisCacheTest, ConcurrentGetOrAnalyzeServesOnePlan) {
  AnalysisCache cache;
  const MqmExactUnified mechanism({TestChain(0.9, 0.8)}, 50);
  std::vector<std::shared_ptr<const MechanismPlan>> plans(8);
  {
    std::vector<std::thread> threads;
    threads.reserve(plans.size());
    for (std::size_t t = 0; t < plans.size(); ++t) {
      threads.emplace_back([&, t] {
        plans[t] = cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
      });
    }
    for (std::thread& th : threads) th.join();
  }
  EXPECT_EQ(cache.size(), 1u);
  for (const auto& plan : plans) {
    ASSERT_NE(plan, nullptr);
    EXPECT_DOUBLE_EQ(plan->sigma, plans[0]->sigma);
  }
}

// ------------------------------------------- prefix-fingerprint chaining --

void ExpectPlansBitIdentical(const MechanismPlan& got,
                             const MechanismPlan& want) {
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(got.epsilon, want.epsilon);
  EXPECT_EQ(got.sigma, want.sigma);
  EXPECT_EQ(got.applicable, want.applicable);
  EXPECT_EQ(got.chain.sigma_max, want.chain.sigma_max);
  EXPECT_EQ(got.chain.worst_node, want.chain.worst_node);
  EXPECT_EQ(got.chain.influence, want.chain.influence);
  EXPECT_EQ(got.chain.active_quilt.quilt, want.chain.active_quilt.quilt);
  EXPECT_EQ(got.chain.scored_nodes, want.chain.scored_nodes);
  EXPECT_EQ(got.chain.memory.peak_bytes, want.chain.memory.peak_bytes);
}

TEST(AnalysisCacheTest, GetOrExtendChainsPlansAcrossLengths) {
  AnalysisCache cache;
  const MqmExactUnified at100({TestChain(0.8, 0.7)}, 100);
  const MqmExactUnified at130({TestChain(0.8, 0.7)}, 130);
  EXPECT_NE(at100.Fingerprint(), at130.Fingerprint());
  EXPECT_EQ(at100.PrefixFingerprint(), at130.PrefixFingerprint());

  const auto short_plan = cache.GetOrExtend(at100, 1.0).ValueOrDie();
  EXPECT_EQ(cache.stats().extensions, 0u);  // Cold seed, nothing to extend.
  const auto long_plan = cache.GetOrExtend(at130, 1.0).ValueOrDie();
  EXPECT_EQ(cache.stats().extensions, 1u);  // Extended 100 -> 130.
  EXPECT_NE(short_plan.get(), long_plan.get());

  // The extended plan is bit-identical to a cold analysis at 130.
  const MechanismPlan cold = at130.Analyze(1.0).ValueOrDie();
  ExpectPlansBitIdentical(*long_plan, cold);

  // The exact key is now warm: repeating is a plain hit, no new extension.
  const auto again = cache.GetOrExtend(at130, 1.0).ValueOrDie();
  EXPECT_EQ(again.get(), long_plan.get());
  EXPECT_EQ(cache.stats().extensions, 1u);
}

TEST(AnalysisCacheTest, GetOrExtendChainedAppendsStayIdentical) {
  AnalysisCache cache;
  double prev_sigma = 0.0;
  for (std::size_t t : {std::size_t{50}, std::size_t{51}, std::size_t{60},
                        std::size_t{200}}) {
    const MqmExactUnified mech({TestChain(0.9, 0.6)}, t);
    const auto plan = cache.GetOrExtend(mech, 1.0).ValueOrDie();
    ExpectPlansBitIdentical(*plan, mech.Analyze(1.0).ValueOrDie());
    prev_sigma = plan->sigma;
  }
  EXPECT_GT(prev_sigma, 0.0);
  EXPECT_EQ(cache.stats().extensions, 3u);
}

TEST(AnalysisCacheTest, GetOrExtendFreeInitialAndFallbacks) {
  AnalysisCache cache;
  const Matrix p{{0.85, 0.15}, {0.25, 0.75}};
  const MqmExactFreeInitialUnified at80({p}, 80);
  const MqmExactFreeInitialUnified at95({p}, 95);
  (void)cache.GetOrExtend(at80, 1.0).ValueOrDie();
  const auto extended = cache.GetOrExtend(at95, 1.0).ValueOrDie();
  EXPECT_EQ(cache.stats().extensions, 1u);
  ExpectPlansBitIdentical(*extended, at95.Analyze(1.0).ValueOrDie());

  // Shrinking re-seeds cold (analyses only extend forward) but still
  // serves a correct plan.
  const MqmExactFreeInitialUnified at60({p}, 60);
  const auto shrunk = cache.GetOrExtend(at60, 1.0).ValueOrDie();
  ExpectPlansBitIdentical(*shrunk, at60.Analyze(1.0).ValueOrDie());
  EXPECT_EQ(cache.stats().extensions, 1u);

  // Mechanisms without resumable analyses degrade to GetOrAnalyze.
  const LaplaceDpUnified laplace(1.0);
  EXPECT_EQ(laplace.PrefixFingerprint(), 0u);
  const auto a = cache.GetOrExtend(laplace, 1.0).ValueOrDie();
  const auto b = cache.GetOrExtend(laplace, 1.0).ValueOrDie();
  EXPECT_EQ(a.get(), b.get());
}

TEST(AnalysisCacheTest, ConcurrentHitsCountExactly) {
  // The hit path bumps the per-plan counter and the stats outside the
  // cache mutex (relaxed atomics); nothing may be lost or double-counted.
  AnalysisCache cache;
  const LaplaceDpUnified mechanism(1.0);
  (void)cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();  // Warm: one miss.
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kHitsPerThread = 500;
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (std::size_t i = 0; i < kHitsPerThread; ++i) {
          (void)cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
        }
      });
    }
    for (std::thread& th : threads) th.join();
  }
  const auto plan = cache.GetOrAnalyze(mechanism, 1.0).ValueOrDie();
  EXPECT_EQ(plan->cache_hit_count(), kThreads * kHitsPerThread + 1);
  EXPECT_EQ(cache.stats().hits, kThreads * kHitsPerThread + 1);
  EXPECT_EQ(cache.stats().misses, 1u);
}

}  // namespace
}  // namespace pf
