#include "graphical/elimination.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/random.h"
#include "data/topologies.h"
#include "graphical/bayesian_network.h"
#include "graphical/moral_graph.h"

namespace pf {
namespace {

// ------------------------------------------------------ factor kernels ----

TEST(FactorTest, CptFactorLayout) {
  // P(child | parent): scope (parent, child), child least significant.
  const Factor f = CptFactor({0}, {2}, 1, 3,
                             Matrix{{0.5, 0.3, 0.2}, {0.1, 0.1, 0.8}});
  EXPECT_EQ(f.scope, (std::vector<int>{0, 1}));
  EXPECT_EQ(f.arity, (std::vector<int>{2, 3}));
  EXPECT_EQ(f.values, (Vector{0.5, 0.3, 0.2, 0.1, 0.1, 0.8}));
  EXPECT_TRUE(f.Contains(0));
  EXPECT_FALSE(f.Contains(2));
}

TEST(FactorTest, ReduceKeepsTheMatchingSlice) {
  const Factor f = CptFactor({0}, {2}, 1, 3,
                             Matrix{{0.5, 0.3, 0.2}, {0.1, 0.1, 0.8}});
  const Factor r0 = Reduce(f, 0, 1);  // Parent = 1: second CPT row.
  EXPECT_EQ(r0.scope, (std::vector<int>{1}));
  EXPECT_EQ(r0.values, (Vector{0.1, 0.1, 0.8}));
  const Factor r1 = Reduce(f, 1, 2);  // Child = 2: last column.
  EXPECT_EQ(r1.scope, (std::vector<int>{0}));
  EXPECT_EQ(r1.values, (Vector{0.2, 0.8}));
  // Absent variable: unchanged.
  EXPECT_EQ(Reduce(f, 7, 0).values, f.values);
}

TEST(FactorTest, MultiplyAllAndMarginalizeLast) {
  const Factor a = CptFactor({}, {}, 0, 2, Matrix{{0.25, 0.75}});
  const Factor b =
      CptFactor({0}, {2}, 1, 2, Matrix{{0.5, 0.5}, {0.125, 0.875}});
  const Factor joint = MultiplyAll({&a, &b}, {0, 1}, {2, 2});
  EXPECT_EQ(joint.values,
            (Vector{0.25 * 0.5, 0.25 * 0.5, 0.75 * 0.125, 0.75 * 0.875}));
  const Factor marg = MarginalizeLast(joint);  // Sum out variable 1.
  EXPECT_EQ(marg.scope, (std::vector<int>{0}));
  EXPECT_DOUBLE_EQ(marg.values[0], 0.25);
  EXPECT_DOUBLE_EQ(marg.values[1], 0.75);
}

// ----------------------------------------------------- min-fill ordering ----

TEST(MinFillTest, TreeTopologiesHaveWidthOne) {
  const Vector root = {0.5, 0.5};
  const Matrix edge = BinaryNoisyCopyCpt(0.25);
  for (const BayesianNetwork& bn :
       {TreeNetwork(15, 2, root, edge).ValueOrDie(),
        TreeNetwork(9, 1, root, edge).ValueOrDie(),  // Chain.
        HubSpokeNetwork(3, 4, root, edge, edge).ValueOrDie()}) {
    EXPECT_EQ(MinFillWidth(MoralGraph(bn).adjacency()), 1u);
  }
}

TEST(MinFillTest, GridWidthIsBounded) {
  const BayesianNetwork grid =
      GridNetwork(3, 4, {0.5, 0.5}, BinaryNoisyCopyCpt(0.25),
                  BinaryNoisyOrCpt(0.25))
          .ValueOrDie();
  const std::size_t width = MinFillWidth(MoralGraph(grid).adjacency());
  EXPECT_GE(width, 2u);  // A moralized grid is not a tree.
  EXPECT_LE(width, 4u);  // ... but stays near min(rows, cols).
}

TEST(MinFillTest, OrderIsDeterministicAndSkipsProtectedVertices) {
  const std::vector<std::vector<int>> triangle = {{1, 2}, {0, 2}, {0, 1}};
  std::size_t width = 0;
  const std::vector<int> all =
      MinFillOrder(triangle, {true, true, true}, &width);
  EXPECT_EQ(all, MinFillOrder(triangle, {true, true, true}, nullptr));
  EXPECT_EQ(all.size(), 3u);
  EXPECT_EQ(width, 2u);
  const std::vector<int> keep1 =
      MinFillOrder(triangle, {true, false, true}, nullptr);
  EXPECT_EQ(keep1.size(), 2u);
  for (int v : keep1) EXPECT_NE(v, 1);
}

// ------------------------------- elimination vs enumeration (property) ----

Matrix RandomCpt(std::size_t rows, int arity, Rng* rng) {
  Matrix cpt(rows, static_cast<std::size_t>(arity));
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (int c = 0; c < arity; ++c) {
      cpt(r, static_cast<std::size_t>(c)) = 0.05 + rng->Uniform();
      sum += cpt(r, static_cast<std::size_t>(c));
    }
    for (int c = 0; c < arity; ++c) cpt(r, static_cast<std::size_t>(c)) /= sum;
  }
  return cpt;
}

// Re-CPTs a topology with fresh random tables (keeping structure/arities).
BayesianNetwork Randomized(const BayesianNetwork& shape, Rng* rng) {
  BayesianNetwork bn;
  for (std::size_t i = 0; i < shape.num_nodes(); ++i) {
    const BayesianNetwork::Node& node = shape.node(i);
    std::size_t rows = 1;
    for (int p : node.parents) {
      rows *= static_cast<std::size_t>(
          shape.node(static_cast<std::size_t>(p)).arity);
    }
    EXPECT_TRUE(bn.AddNode(node.name, node.arity, node.parents,
                           RandomCpt(rows, node.arity, rng))
                    .ok());
  }
  return bn;
}

BayesianNetwork Collider(Rng* rng) {
  // V-structure plus tail: X0 -> X2 <- X1, X2 -> X3, X3 -> X4.
  BayesianNetwork bn;
  EXPECT_TRUE(bn.AddNode("A", 2, {}, RandomCpt(1, 2, rng)).ok());
  EXPECT_TRUE(bn.AddNode("B", 3, {}, RandomCpt(1, 3, rng)).ok());
  EXPECT_TRUE(bn.AddNode("C", 2, {0, 1}, RandomCpt(6, 2, rng)).ok());
  EXPECT_TRUE(bn.AddNode("D", 2, {2}, RandomCpt(2, 2, rng)).ok());
  EXPECT_TRUE(bn.AddNode("E", 3, {3}, RandomCpt(2, 3, rng)).ok());
  return bn;
}

void ExpectBackendsAgree(const BayesianNetwork& bn,
                         const std::vector<int>& targets,
                         const std::vector<std::pair<int, int>>& evidence) {
  const Result<Vector> elim = bn.ConditionalJoint(
      targets, evidence, 1u << 24, InferenceBackend::kVariableElimination);
  const Result<Vector> enu = bn.ConditionalJoint(
      targets, evidence, 1u << 24, InferenceBackend::kEnumeration);
  ASSERT_EQ(elim.ok(), enu.ok());
  if (!elim.ok()) {
    EXPECT_EQ(elim.status().code(), enu.status().code());
    return;
  }
  const Vector& a = elim.value();
  const Vector& b = enu.value();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-12) << "cell " << i;
  }
}

TEST(EliminationPropertyTest, MatchesEnumerationOnRandomNetworks) {
  Rng rng(20260727);
  const Vector root = {0.5, 0.5};
  const Matrix edge = BinaryNoisyCopyCpt(0.25);
  const Matrix merge = BinaryNoisyOrCpt(0.25);
  for (int trial = 0; trial < 5; ++trial) {
    const BayesianNetwork shapes[] = {
        Randomized(TreeNetwork(9, 1, root, edge).ValueOrDie(), &rng),  // Chain.
        Randomized(TreeNetwork(11, 2, root, edge).ValueOrDie(), &rng),
        Randomized(GridNetwork(3, 3, root, edge, merge).ValueOrDie(), &rng),
        Collider(&rng),
        Randomized(HubSpokeNetwork(2, 3, root, edge, edge).ValueOrDie(), &rng),
    };
    for (const BayesianNetwork& bn : shapes) {
      const int n = static_cast<int>(bn.num_nodes());
      const int t0 = static_cast<int>(rng.Uniform() * n) % n;
      const int t1 = (t0 + 1 + static_cast<int>(rng.Uniform() * (n - 1))) % n;
      const int ev = (t1 + 1) % n;
      const int ev_val =
          static_cast<int>(rng.Uniform() * bn.node(static_cast<std::size_t>(ev)).arity);
      ExpectBackendsAgree(bn, {t0}, {});
      ExpectBackendsAgree(bn, {t0, t1}, {{ev, ev_val}});
      // Duplicate target and target pinned by evidence: the expansion
      // conventions must match too.
      ExpectBackendsAgree(bn, {t0, t0}, {});
      ExpectBackendsAgree(bn, {ev, t0}, {{ev, ev_val}});
    }
  }
}

TEST(EliminationPropertyTest, ZeroProbabilityEvidenceFailsOnBothBackends) {
  // X1 deterministically copies X0; conditioning on a disagreement is a
  // zero-probability event.
  BayesianNetwork bn;
  ASSERT_TRUE(bn.AddNode("A", 2, {}, Matrix{{1.0, 0.0}}).ok());
  ASSERT_TRUE(bn.AddNode("B", 2, {0},
                         Matrix{{1.0, 0.0}, {0.0, 1.0}}).ok());
  for (const InferenceBackend backend :
       {InferenceBackend::kVariableElimination, InferenceBackend::kEnumeration}) {
    const Result<Vector> r = bn.ConditionalJoint({0}, {{1, 1}}, 1u << 24, backend);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(EliminationPropertyTest, DuplicateEvidenceConventionsMatch) {
  Rng rng(99);
  const BayesianNetwork bn =
      Randomized(TreeNetwork(7, 2, {0.5, 0.5}, BinaryNoisyCopyCpt(0.25))
                     .ValueOrDie(),
                 &rng);
  // Consistent duplicates behave like a single pair on both backends.
  const Vector once =
      bn.ConditionalJoint({3}, {{1, 1}}, 1u << 24).ValueOrDie();
  const Vector twice =
      bn.ConditionalJoint({3}, {{1, 1}, {1, 1}}, 1u << 24).ValueOrDie();
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-15);
  }
  // Conflicting duplicates pin one variable to two values: no assignment
  // matches, so BOTH backends must report zero-probability evidence (the
  // elimination path must not silently answer as if only the first pair
  // existed).
  for (const InferenceBackend backend :
       {InferenceBackend::kVariableElimination, InferenceBackend::kEnumeration}) {
    const Result<Vector> r =
        bn.ConditionalJoint({3}, {{1, 0}, {1, 1}}, 1u << 24, backend);
    ASSERT_FALSE(r.ok()) << InferenceBackendName(backend);
    EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(EliminationTest, LimitGuardsLargestCliqueTable) {
  // A 5-parent collider: eliminating any parent builds a table over the
  // other four plus the child (64 cells > 16).
  Rng rng(7);
  BayesianNetwork bn;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bn.AddNode("P" + std::to_string(i), 2, {},
                           RandomCpt(1, 2, &rng)).ok());
  }
  ASSERT_TRUE(bn.AddNode("C", 2, {0, 1, 2, 3, 4},
                         RandomCpt(32, 2, &rng)).ok());
  const Result<Vector> blocked = bn.ConditionalJoint(
      {5}, {}, /*limit=*/16, InferenceBackend::kVariableElimination);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(bn.ConditionalJoint({5}, {}, /*limit=*/64,
                                  InferenceBackend::kVariableElimination)
                  .ok());
}

TEST(EliminationTest, StatsReportWidthAndPeakBytes) {
  const BayesianNetwork bn =
      TreeNetwork(31, 2, {0.5, 0.5}, BinaryNoisyCopyCpt(0.25)).ValueOrDie();
  EliminationStats stats;
  const Result<Vector> r =
      FactorConditionalJoint(bn.Factors(), bn.Arities(), {30}, {{0, 1}},
                             1u << 24, InferenceBackend::kVariableElimination,
                             &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(stats.induced_width, 1u);
  EXPECT_LE(stats.induced_width, 2u);  // A tree stays near width 1.
  EXPECT_GT(stats.peak_factor_bytes, 0u);
  EliminationStats merged;
  merged.MergeMax(stats);
  EliminationStats bigger;
  bigger.induced_width = 99;
  merged.MergeMax(bigger);
  EXPECT_EQ(merged.induced_width, 99u);
  EXPECT_EQ(merged.peak_factor_bytes, stats.peak_factor_bytes);
}

TEST(EliminationTest, ScalesFarBeyondTheEnumerationGuard) {
  // 120 binary nodes: 2^120 joint assignments — enumeration refuses under
  // any sane limit, elimination answers in microseconds.
  const BayesianNetwork bn =
      TreeNetwork(120, 3, {0.5, 0.5}, BinaryNoisyCopyCpt(0.1)).ValueOrDie();
  const Result<Vector> refused =
      bn.ConditionalJoint({119}, {{0, 0}}, 1u << 24,
                          InferenceBackend::kEnumeration);
  ASSERT_FALSE(refused.ok());
  const Vector marginal =
      bn.ConditionalJoint({119}, {{0, 0}}, 1u << 24).ValueOrDie();
  EXPECT_NEAR(marginal[0] + marginal[1], 1.0, 1e-12);
  EXPECT_GT(marginal[0], 0.5);  // Noisy copies of state 0 stay biased to 0.
}

}  // namespace
}  // namespace pf
