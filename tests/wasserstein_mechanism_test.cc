#include "pufferfish/wasserstein_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/flu.h"

namespace pf {
namespace {

// Section 3.1 worked example: the flu clique of 4 with
// p_N = (0.1, 0.15, 0.5, 0.15, 0.1). W = 2, so the mechanism adds Lap(2/eps)
// noise — half the group-DP scale of 4/eps.
TEST(WassersteinMechanismTest, FluExampleSensitivityIsTwo) {
  const FluCliqueModel clique = FluCliqueModel::PaperExample();
  const ConditionalOutputPair pair = clique.CountQueryOutputPair().ValueOrDie();
  const auto mech = WassersteinMechanism::Make({pair}, 1.0);
  ASSERT_TRUE(mech.ok());
  EXPECT_NEAR(mech.value().wasserstein_sensitivity(), 2.0, 1e-9);
  EXPECT_NEAR(mech.value().noise_scale(), 2.0, 1e-9);
  EXPECT_LT(mech.value().wasserstein_sensitivity(), clique.GroupSensitivity());
}

TEST(WassersteinMechanismTest, NoiseScaleInverseInEpsilon) {
  const ConditionalOutputPair pair =
      FluCliqueModel::PaperExample().CountQueryOutputPair().ValueOrDie();
  const auto tight = WassersteinMechanism::Make({pair}, 5.0).ValueOrDie();
  const auto loose = WassersteinMechanism::Make({pair}, 0.2).ValueOrDie();
  EXPECT_NEAR(tight.noise_scale(), 0.4, 1e-9);
  EXPECT_NEAR(loose.noise_scale(), 10.0, 1e-9);
}

TEST(WassersteinMechanismTest, ValidatesInputs) {
  const ConditionalOutputPair pair =
      FluCliqueModel::PaperExample().CountQueryOutputPair().ValueOrDie();
  EXPECT_FALSE(WassersteinMechanism::Make({}, 1.0).ok());
  EXPECT_FALSE(WassersteinMechanism::Make({pair}, 0.0).ok());
}

TEST(WassersteinMechanismTest, ReleaseAddsCalibratedNoise) {
  const ConditionalOutputPair pair =
      FluCliqueModel::PaperExample().CountQueryOutputPair().ValueOrDie();
  const auto mech = WassersteinMechanism::Make({pair}, 1.0).ValueOrDie();
  Rng rng(99);
  double abs_err = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    abs_err += std::fabs(mech.Release(2.0, &rng) - 2.0);
  }
  EXPECT_NEAR(abs_err / n, mech.noise_scale(), 0.05);
}

// When Pufferfish reduces to differential privacy (independent records), the
// Wasserstein Mechanism reduces to the Laplace mechanism: W = sensitivity.
TEST(WassersteinMechanismTest, ReducesToLaplaceForIndependentRecords) {
  // Three independent binary records, query = sum. Changing one record
  // changes the sum by 1, so W should be exactly 1.
  BayesianNetwork bn;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        bn.AddNode("X" + std::to_string(i), 2, {}, Matrix{{0.7, 0.3}}).ok());
  }
  const auto query = [](const Assignment& a) {
    return static_cast<double>(std::accumulate(a.begin(), a.end(), 0));
  };
  const auto pairs = EnumerateBayesNetOutputPairs({bn}, query);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs.value().size(), 3u);
  const auto mech = WassersteinMechanism::Make(pairs.value(), 1.0).ValueOrDie();
  EXPECT_NEAR(mech.wasserstein_sensitivity(), 1.0, 1e-9);
}

// Theorem 3.3 check: W never exceeds the group-DP sensitivity. For a
// perfectly correlated pair (X1 = X2), the group sensitivity of the sum is
// 2 and W is exactly 2 (flipping X1 forces X2).
TEST(WassersteinMechanismTest, PerfectCorrelationMatchesGroupSensitivity) {
  BayesianNetwork bn;
  ASSERT_TRUE(bn.AddNode("X0", 2, {}, Matrix{{0.5, 0.5}}).ok());
  ASSERT_TRUE(bn.AddNode("X1", 2, {0}, Matrix{{1.0, 0.0}, {0.0, 1.0}}).ok());
  const auto query = [](const Assignment& a) {
    return static_cast<double>(a[0] + a[1]);
  };
  const auto pairs = EnumerateBayesNetOutputPairs({bn}, query).ValueOrDie();
  const auto mech = WassersteinMechanism::Make(pairs, 1.0).ValueOrDie();
  EXPECT_NEAR(mech.wasserstein_sensitivity(), 2.0, 1e-9);
}

// Partial correlation gives W strictly between the DP sensitivity (1) and
// the group sensitivity (2).
TEST(WassersteinMechanismTest, PartialCorrelationBetweenBounds) {
  BayesianNetwork bn;
  ASSERT_TRUE(bn.AddNode("X0", 2, {}, Matrix{{0.5, 0.5}}).ok());
  ASSERT_TRUE(bn.AddNode("X1", 2, {0}, Matrix{{0.7, 0.3}, {0.3, 0.7}}).ok());
  const auto query = [](const Assignment& a) {
    return static_cast<double>(a[0] + a[1]);
  };
  const auto pairs = EnumerateBayesNetOutputPairs({bn}, query).ValueOrDie();
  const auto mech = WassersteinMechanism::Make(pairs, 1.0).ValueOrDie();
  EXPECT_GE(mech.wasserstein_sensitivity(), 1.0 - 1e-9);
  EXPECT_LE(mech.wasserstein_sensitivity(), 2.0 + 1e-9);
}

TEST(WassersteinMechanismTest, ConditionalOutputDistribution) {
  BayesianNetwork bn;
  ASSERT_TRUE(bn.AddNode("X0", 2, {}, Matrix{{0.5, 0.5}}).ok());
  ASSERT_TRUE(bn.AddNode("X1", 2, {0}, Matrix{{0.9, 0.1}, {0.2, 0.8}}).ok());
  const auto query = [](const Assignment& a) {
    return static_cast<double>(a[0] + a[1]);
  };
  const auto d = ConditionalOutputDistribution(bn, query, 0, 1).ValueOrDie();
  // Given X0=1: sum is 1 w.p. 0.2 and 2 w.p. 0.8.
  EXPECT_NEAR(d.MassAt(1.0), 0.2, 1e-12);
  EXPECT_NEAR(d.MassAt(2.0), 0.8, 1e-12);
}

TEST(WassersteinMechanismTest, ZeroProbabilitySecretsSkipped) {
  BayesianNetwork bn;
  ASSERT_TRUE(bn.AddNode("X0", 3, {}, Matrix{{0.5, 0.5, 0.0}}).ok());
  const auto query = [](const Assignment& a) { return static_cast<double>(a[0]); };
  // Value 2 has probability zero; only the (0, 1) pair remains.
  const auto pairs = EnumerateBayesNetOutputPairs({bn}, query).ValueOrDie();
  EXPECT_EQ(pairs.size(), 1u);
}

TEST(WassersteinMechanismTest, MaxOverThetaClass) {
  // Two thetas for one independent bit with different query scalings via
  // correlated partner: W is the max over the class.
  BayesianNetwork weak;
  ASSERT_TRUE(weak.AddNode("X0", 2, {}, Matrix{{0.5, 0.5}}).ok());
  ASSERT_TRUE(weak.AddNode("X1", 2, {0}, Matrix{{0.5, 0.5}, {0.5, 0.5}}).ok());
  BayesianNetwork strong;
  ASSERT_TRUE(strong.AddNode("X0", 2, {}, Matrix{{0.5, 0.5}}).ok());
  ASSERT_TRUE(strong.AddNode("X1", 2, {0}, Matrix{{1.0, 0.0}, {0.0, 1.0}}).ok());
  const auto query = [](const Assignment& a) {
    return static_cast<double>(a[0] + a[1]);
  };
  const auto weak_only =
      WassersteinMechanism::Make(
          EnumerateBayesNetOutputPairs({weak}, query).ValueOrDie(), 1.0)
          .ValueOrDie();
  const auto both =
      WassersteinMechanism::Make(
          EnumerateBayesNetOutputPairs({weak, strong}, query).ValueOrDie(), 1.0)
          .ValueOrDie();
  EXPECT_NEAR(weak_only.wasserstein_sensitivity(), 1.0, 1e-9);
  EXPECT_NEAR(both.wasserstein_sensitivity(), 2.0, 1e-9);
}

}  // namespace
}  // namespace pf
