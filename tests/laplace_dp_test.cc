#include "baselines/laplace_dp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

TEST(LaplaceDpTest, ScaleIsSensitivityOverEpsilon) {
  const auto m = LaplaceDpMechanism::Make(2.0, 0.5).ValueOrDie();
  EXPECT_DOUBLE_EQ(m.noise_scale(), 4.0);
}

TEST(LaplaceDpTest, Validation) {
  EXPECT_FALSE(LaplaceDpMechanism::Make(1.0, 0.0).ok());
  EXPECT_FALSE(LaplaceDpMechanism::Make(-1.0, 1.0).ok());
  EXPECT_TRUE(LaplaceDpMechanism::Make(0.0, 1.0).ok());
}

TEST(LaplaceDpTest, ScalarNoiseMagnitude) {
  const auto m = LaplaceDpMechanism::Make(1.0, 1.0).ValueOrDie();
  Rng rng(3);
  double abs_err = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) abs_err += std::fabs(m.ReleaseScalar(5.0, &rng) - 5.0);
  EXPECT_NEAR(abs_err / n, 1.0, 0.02);
}

TEST(LaplaceDpTest, VectorReleasePerCoordinate) {
  const auto m = LaplaceDpMechanism::Make(0.0, 1.0).ValueOrDie();
  Rng rng(3);
  const Vector v = m.ReleaseVector({1.0, 2.0}, &rng);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

}  // namespace
}  // namespace pf
