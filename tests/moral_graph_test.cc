#include "graphical/moral_graph.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

BayesianNetwork ChainNetwork(std::size_t n) {
  return BayesianNetwork::FromMarkovChain({0.5, 0.5},
                                          Matrix{{0.9, 0.1}, {0.4, 0.6}}, n)
      .ValueOrDie();
}

BayesianNetwork Diamond() {
  BayesianNetwork bn;
  EXPECT_TRUE(bn.AddNode("X1", 2, {}, Matrix{{0.6, 0.4}}).ok());
  EXPECT_TRUE(bn.AddNode("X2", 2, {0}, Matrix{{0.7, 0.3}, {0.2, 0.8}}).ok());
  EXPECT_TRUE(bn.AddNode("X3", 2, {0}, Matrix{{0.9, 0.1}, {0.5, 0.5}}).ok());
  EXPECT_TRUE(bn.AddNode("X4", 2, {1, 2},
                         Matrix{{0.8, 0.2}, {0.6, 0.4}, {0.3, 0.7}, {0.1, 0.9}})
                  .ok());
  return bn;
}

TEST(MoralGraphTest, ChainAdjacency) {
  const MoralGraph g(ChainNetwork(5));
  EXPECT_EQ(g.neighbors(0), (std::vector<int>{1}));
  EXPECT_EQ(g.neighbors(2), (std::vector<int>{1, 3}));
  EXPECT_EQ(g.neighbors(4), (std::vector<int>{3}));
}

TEST(MoralGraphTest, DiamondMarriesCoParents) {
  const MoralGraph g(Diamond());
  // X2 (1) and X3 (2) are married because both parent X4.
  const auto& n1 = g.neighbors(1);
  EXPECT_NE(std::find(n1.begin(), n1.end(), 2), n1.end());
}

TEST(MoralGraphTest, ChainSeparation) {
  const MoralGraph g(ChainNetwork(7));
  EXPECT_TRUE(g.Separates({3}, 1, 5));
  EXPECT_FALSE(g.Separates({5}, 1, 4));
  EXPECT_TRUE(g.Separates({2, 4}, 3, 0));
  EXPECT_TRUE(g.Separates({2, 4}, 3, 6));
}

TEST(MoralGraphTest, SeparationWithEndpointInBlockedSet) {
  const MoralGraph g(ChainNetwork(4));
  EXPECT_TRUE(g.Separates({1}, 1, 3));
}

TEST(MoralGraphTest, ReachableAvoiding) {
  const MoralGraph g(ChainNetwork(6));
  const std::vector<int> reach = g.ReachableAvoiding(0, {2});
  EXPECT_EQ(reach, (std::vector<int>{0, 1}));
  const std::vector<int> all = g.ReachableAvoiding(0, {});
  EXPECT_EQ(all.size(), 6u);
}

TEST(MoralGraphTest, DiamondSeparation) {
  const MoralGraph g(Diamond());
  // Removing X2 and X3 disconnects X1 from X4.
  EXPECT_TRUE(g.Separates({1, 2}, 0, 3));
  // X2 alone does not (path through X3).
  EXPECT_FALSE(g.Separates({1}, 0, 3));
}

TEST(MoralGraphTest, AdjacencyConstructorSymmetrizesAndDedups) {
  // One-directional, duplicated, and self-loop entries all normalize.
  const MoralGraph g({{1, 1, 0}, {}, {1}});
  EXPECT_EQ(g.neighbors(0), (std::vector<int>{1}));
  EXPECT_EQ(g.neighbors(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(g.neighbors(2), (std::vector<int>{1}));
}

TEST(MoralGraphTest, DistancesAndNeighborsWithin) {
  const MoralGraph g(ChainNetwork(6));
  const std::vector<int> dist = g.Distances(2);
  EXPECT_EQ(dist, (std::vector<int>{2, 1, 0, 1, 2, 3}));
  EXPECT_TRUE(g.NeighborsWithin(2, 0).empty());
  EXPECT_EQ(g.NeighborsWithin(2, 1), (std::vector<int>{1, 3}));
  EXPECT_EQ(g.NeighborsWithin(2, 2), (std::vector<int>{0, 1, 3, 4}));
  // A radius past the diameter returns everything but the node itself.
  EXPECT_EQ(g.NeighborsWithin(2, 99).size(), 5u);
}

TEST(MoralGraphTest, ComponentsOnDisconnectedGraphs) {
  // Two components: a path 0-1-2 and an edge 3-4.
  const MoralGraph g({{1}, {2}, {}, {4}, {}});
  EXPECT_EQ(g.NumComponents(), 2u);
  EXPECT_EQ(g.ConnectedComponent(1), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(g.ConnectedComponent(4), (std::vector<int>{3, 4}));
  // Cross-component nodes are unreachable at every radius...
  const std::vector<int> dist = g.Distances(0);
  EXPECT_EQ(dist[3], -1);
  EXPECT_EQ(dist[4], -1);
  EXPECT_EQ(g.NeighborsWithin(0, 99), (std::vector<int>{1, 2}));
  // ... and the empty set already separates them.
  EXPECT_TRUE(g.Separates({}, 0, 3));
  EXPECT_FALSE(g.Separates({}, 0, 2));
}

}  // namespace
}  // namespace pf
