// Deadlines and cooperative cancellation: the Deadline value type, the
// thread-local DeadlineScope/CheckDeadline plumbing, propagation into
// ThreadPool workers, deterministic mid-analysis cancellation at the
// cache layer, and the engine/session boundary contracts — an expired
// deadline is refused before the budget ledger is touched, and a
// cancelled analysis leaves the AnalysisCache consistent (the retry is
// bit-identical to a never-cancelled cold analysis).
#include "common/deadline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <vector>

#include "common/parallel.h"
#include "engine/engine.h"
#include "graphical/markov_chain.h"
#include "pufferfish/analysis_cache.h"
#include "pufferfish/mechanism.h"

namespace pf {
namespace {

MarkovChain SmallChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

/// A k-state chain whose sigma analysis is deliberately expensive (the
/// power ladder alone is length x k^3 work): the engine-level timeout test
/// needs an analysis that reliably outlives a millisecond-scale deadline.
MarkovChain WideChain(std::size_t k) {
  Vector initial(k, 1.0 / static_cast<double>(k));
  Matrix transition(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      transition(i, j) = 1.0 + static_cast<double>((i * 7 + j * 13) % 5);
      row_sum += transition(i, j);
    }
    for (std::size_t j = 0; j < k; ++j) transition(i, j) /= row_sum;
  }
  return MarkovChain::Make(initial, transition).ValueOrDie();
}

// --------------------------------------------------------- value type ------

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), Deadline::kInfiniteMs);
}

TEST(DeadlineTest, ExpiredFactoryIsExpired) {
  EXPECT_TRUE(Deadline::Expired().expired());
  EXPECT_EQ(Deadline::Expired().remaining_ms(), 0);
  EXPECT_TRUE(Deadline::After(-5).expired()) << "negative ms clamps to now";
}

TEST(DeadlineTest, FarFutureIsNotExpired) {
  const Deadline d = Deadline::After(60'000);
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0);
  EXPECT_LE(d.remaining_ms(), 60'000);
}

TEST(DeadlineTest, AtWrapsAnAbsoluteTimePoint) {
  const Deadline past = Deadline::At(Deadline::Clock::now() -
                                     std::chrono::milliseconds(10));
  EXPECT_TRUE(past.expired());
}

// ------------------------------------------- thread-local scope + check ----

TEST(DeadlineTest, CheckDeadlineIsOkWithoutAScope) {
  EXPECT_TRUE(CheckDeadline("unit test").ok());
}

TEST(DeadlineTest, CheckDeadlineFailsInsideExpiredScope) {
  DeadlineScope scope(Deadline::Expired());
  const Status st = CheckDeadline("power ladder");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  // The checkpoint names itself so a timeout is attributable to the loop
  // that hit it.
  EXPECT_NE(st.message().find("power ladder"), std::string::npos);
}

TEST(DeadlineTest, ScopesNestAndRestore) {
  EXPECT_TRUE(CurrentDeadline().infinite());
  {
    DeadlineScope outer(Deadline::After(60'000));
    EXPECT_FALSE(CurrentDeadline().infinite());
    EXPECT_TRUE(CheckDeadline("outer").ok());
    {
      DeadlineScope inner(Deadline::Expired());
      EXPECT_FALSE(CheckDeadline("inner").ok());
    }
    EXPECT_TRUE(CheckDeadline("outer again").ok());
  }
  EXPECT_TRUE(CurrentDeadline().infinite());
}

// The submitting thread's deadline must be visible at checkpoints running
// inside pool workers (ParallelFor re-installs it around fn).
TEST(DeadlineTest, ParallelForPropagatesCallerDeadlineIntoWorkers) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  {
    std::vector<StatusCode> seen(kN, StatusCode::kOk);
    DeadlineScope scope(Deadline::Expired());
    pool.ParallelFor(kN, [&seen](std::size_t i) {
      seen[i] = CheckDeadline("worker checkpoint").code();
    });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(seen[i], StatusCode::kDeadlineExceeded) << "index " << i;
    }
  }
  // And a pool used OUTSIDE any scope runs deadline-free — a previous
  // job's deadline must not leak into the next one.
  std::atomic<int> failures{0};
  pool.ParallelFor(kN, [&failures](std::size_t) {
    if (!CheckDeadline("clean job").ok()) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

// --------------------------------- deterministic mid-analysis cancel -------

// An expired deadline installed around a cold analysis cancels it at the
// first cooperative checkpoint, and the cache entry it would have filled
// stays absent — the retry runs a full cold analysis whose plan is
// bit-identical to one that never saw a deadline.
TEST(DeadlineTest, CancelledAnalysisLeavesCacheConsistent) {
  const MqmExactUnified mechanism({SmallChain(0.8, 0.7)}, 60);

  AnalysisCache clean;
  const double reference_sigma =
      clean.GetOrAnalyze(mechanism, 1.0).ValueOrDie()->sigma;

  AnalysisCache cache;
  {
    DeadlineScope scope(Deadline::Expired());
    const auto cancelled = cache.GetOrAnalyze(mechanism, 1.0);
    ASSERT_FALSE(cancelled.ok());
    EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_FALSE(cache.Contains(mechanism, 1.0))
      << "a cancelled analysis must not leave a partial plan resident";
  const auto retried = cache.GetOrAnalyze(mechanism, 1.0);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(retried.value()->sigma, reference_sigma);
  EXPECT_TRUE(cache.Contains(mechanism, 1.0));
}

// Same contract on the resumable (GetOrExtend) path: a deadline hitting
// the EXTENSION leaves the chain entry reset, and the retry serves the
// extended length bit-identically to a cold analysis at that length.
TEST(DeadlineTest, CancelledExtensionLeavesCacheConsistent) {
  const std::vector<MarkovChain> thetas{SmallChain(0.8, 0.7)};
  AnalysisCache cache;
  const MqmExactUnified at60(thetas, 60);
  ASSERT_TRUE(cache.GetOrExtend(at60, 1.0).ok());

  const MqmExactUnified at70(thetas, 70);
  {
    DeadlineScope scope(Deadline::Expired());
    const auto cancelled = cache.GetOrExtend(at70, 1.0);
    ASSERT_FALSE(cancelled.ok());
    EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_FALSE(cache.Contains(at70, 1.0));
  const auto retried = cache.GetOrExtend(at70, 1.0);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  AnalysisCache clean;
  EXPECT_EQ(retried.value()->sigma,
            clean.GetOrAnalyze(at70, 1.0).ValueOrDie()->sigma);
}

// ------------------------------------------------ engine + session ---------

TEST(DeadlineTest, EngineRefusesAlreadyExpiredDeadlineUpFront) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({SmallChain(0.8, 0.7)}, 40))
          .ValueOrDie();
  RequestOptions request;
  request.deadline = Deadline::Expired();
  const auto compiled = engine->Compile(QuerySpec::Mean(1.0), 0, request);
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kDeadlineExceeded);
  // Refused before any analysis ran.
  EXPECT_EQ(engine->cache_stats().misses, 0u);
  EXPECT_EQ(engine->cache_stats().hits, 0u);
}

// A millisecond-scale deadline against a deliberately expensive analysis
// (25-state chain, 20k-step power ladder) expires mid-analysis at a
// cooperative checkpoint; the retry without a deadline then serves the
// exact cold-analysis answer.
TEST(DeadlineTest, DeadlineExpiringMidAnalysisCancelsAndRetrySucceeds) {
  EngineOptions options;
  options.allow_stationary_shortcut = false;  // Force the full analysis.
  const ModelSpec model = ModelSpec::ChainClass({WideChain(25)}, 20'000);
  auto engine = PrivacyEngine::Create(model, options).ValueOrDie();

  RequestOptions request;
  request.deadline = Deadline::After(1);
  const auto cancelled = engine->Compile(QuerySpec::Mean(1.0), 0, request);
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), StatusCode::kDeadlineExceeded);
  // Context chaining: the failure names the compile that timed out.
  EXPECT_NE(cancelled.status().message().find("compile"), std::string::npos)
      << cancelled.status().ToString();

  const auto retried = engine->Compile(QuerySpec::Mean(1.0));
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();

  auto reference = PrivacyEngine::Create(model, options).ValueOrDie();
  EXPECT_EQ(retried.value().plan->sigma,
            reference->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma);
}

// EngineOptions::analysis_timeout_ms bounds every analysis engine-wide,
// with no per-request deadline in sight.
TEST(DeadlineTest, EngineWideAnalysisTimeoutApplies) {
  EngineOptions options;
  options.allow_stationary_shortcut = false;
  options.analysis_timeout_ms = 1;
  const ModelSpec model = ModelSpec::ChainClass({WideChain(25)}, 20'000);
  auto engine = PrivacyEngine::Create(model, options).ValueOrDie();
  const auto compiled = engine->Compile(QuerySpec::Mean(1.0));
  ASSERT_FALSE(compiled.ok());
  EXPECT_EQ(compiled.status().code(), StatusCode::kDeadlineExceeded);
}

// The budget-safety contract at the session boundary: a timed-out ticket
// never debits epsilon, whether refused up front or cancelled mid-analysis.
TEST(DeadlineTest, ExpiredDeadlineNeverDebitsTheLedger) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({SmallChain(0.8, 0.7)}, 40))
          .ValueOrDie();
  SessionOptions session_options;
  session_options.epsilon_budget = 1.0;
  session_options.seed = 3;
  auto session = engine->CreateSession(session_options);
  const StateSequence data(40, 1);

  RequestOptions expired;
  expired.deadline = Deadline::Expired();
  auto future = session->Submit(
      QuerySpec::Sum(1.0), std::make_shared<const StateSequence>(data),
      expired);
  const auto result = future.get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
  EXPECT_EQ(session->num_releases(), 0u);
  // Refused before admission: the executor never saw the request.
  EXPECT_EQ(engine->executor().stats().submitted, 0u);

  // Synchronous Release honors the same contract.
  const auto released = session->Release(QuerySpec::Sum(1.0), data, expired);
  ASSERT_FALSE(released.ok());
  EXPECT_EQ(released.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);

  // The full budget is still spendable afterwards.
  EXPECT_TRUE(session->Release(QuerySpec::Sum(1.0), data).ok());
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 1.0);
}

}  // namespace
}  // namespace pf
