#include "pufferfish/markov_quilt_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

BayesianNetwork Chain(const Vector& q, const Matrix& p, std::size_t n) {
  return BayesianNetwork::FromMarkovChain(q, p, n).ValueOrDie();
}

// The general Algorithm 2 machinery must reproduce the Section 4.3 worked
// example when run on the chain expressed as a Bayesian network.
TEST(MarkovQuiltMechanismTest, CompositionExampleInfluences) {
  const BayesianNetwork bn =
      Chain({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 3);
  const MoralGraph g(bn);
  // Quilt {X1, X3} (0-indexed {0, 2}) for the middle node: influence log 36.
  const MarkovQuilt q = QuiltFromSeparator(g, 1, {0, 2});
  EXPECT_NEAR(QuiltMaxInfluence({bn}, q).ValueOrDie(), std::log(36.0), 1e-9);
  // One-sided {X3} (0-indexed {2}): influence log 6.
  const MarkovQuilt right = QuiltFromSeparator(g, 1, {2});
  EXPECT_NEAR(QuiltMaxInfluence({bn}, right).ValueOrDie(), std::log(6.0), 1e-9);
}

// Cross-validation: the general enumeration-based influence equals the
// Eq. (5) dynamic-programming influence on chains.
TEST(MarkovQuiltMechanismTest, GeneralMatchesChainSpecialization) {
  const Vector q = {0.6, 0.4};
  const Matrix p{{0.7, 0.3}, {0.2, 0.8}};
  const std::size_t n = 8;
  const BayesianNetwork bn = Chain(q, p, n);
  const MarkovChain chain = MarkovChain::Make(q, p).ValueOrDie();
  const MoralGraph g(bn);
  struct Case {
    int target, a, b;
  };
  for (const Case& c : {Case{4, 2, 2}, Case{4, 1, 3}, Case{3, 3, 0},
                        Case{2, 0, 2}, Case{5, 2, 1}}) {
    std::vector<int> separator;
    if (c.a > 0) separator.push_back(c.target - c.a);
    if (c.b > 0) separator.push_back(c.target + c.b);
    const MarkovQuilt general = QuiltFromSeparator(g, c.target, separator);
    const MarkovQuilt special =
        ChainQuilt(n, c.target, c.a, c.b).ValueOrDie();
    EXPECT_EQ(general.NearbyCount(), special.NearbyCount());
    const double e_general = QuiltMaxInfluence({bn}, general).ValueOrDie();
    const double e_special =
        ChainQuiltInfluenceExact(chain, n, special).ValueOrDie();
    EXPECT_NEAR(e_general, e_special, 1e-9)
        << "target=" << c.target << " a=" << c.a << " b=" << c.b;
  }
}

TEST(MarkovQuiltMechanismTest, TrivialQuiltInfluenceZero) {
  const BayesianNetwork bn =
      Chain({0.5, 0.5}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 4);
  EXPECT_DOUBLE_EQ(QuiltMaxInfluence({bn}, TrivialQuilt(2, 4)).ValueOrDie(), 0.0);
}

TEST(MarkovQuiltMechanismTest, AnalyzeProducesFiniteSigma) {
  const BayesianNetwork bn =
      Chain({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 6);
  const MqmAnalysis analysis =
      AnalyzeMarkovQuiltMechanism({bn}, 1.0, 2).ValueOrDie();
  EXPECT_TRUE(std::isfinite(analysis.sigma_max));
  EXPECT_GT(analysis.sigma_max, 0.0);
  // Never worse than the trivial quilt's n/epsilon.
  EXPECT_LE(analysis.sigma_max, 6.0 / 1.0 + 1e-9);
  EXPECT_EQ(analysis.active.size(), 6u);
}

TEST(MarkovQuiltMechanismTest, AnalyzeOnDiamondNetwork) {
  // Non-chain topology: the Figure 2 diamond.
  BayesianNetwork bn;
  ASSERT_TRUE(bn.AddNode("X1", 2, {}, Matrix{{0.6, 0.4}}).ok());
  ASSERT_TRUE(bn.AddNode("X2", 2, {0}, Matrix{{0.7, 0.3}, {0.2, 0.8}}).ok());
  ASSERT_TRUE(bn.AddNode("X3", 2, {0}, Matrix{{0.9, 0.1}, {0.5, 0.5}}).ok());
  ASSERT_TRUE(bn.AddNode("X4", 2, {1, 2},
                         Matrix{{0.8, 0.2}, {0.6, 0.4}, {0.3, 0.7}, {0.1, 0.9}})
                  .ok());
  const MqmAnalysis analysis =
      AnalyzeMarkovQuiltMechanism({bn}, 2.0, 2).ValueOrDie();
  EXPECT_TRUE(std::isfinite(analysis.sigma_max));
  EXPECT_LE(analysis.sigma_max, 4.0 / 2.0 + 1e-9);
}

TEST(MarkovQuiltMechanismTest, QuiltSetsMustContainTrivial) {
  const BayesianNetwork bn =
      Chain({0.5, 0.5}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 3);
  const MoralGraph g(bn);
  std::vector<std::vector<MarkovQuilt>> sets(3);
  for (int i = 0; i < 3; ++i) {
    sets[static_cast<std::size_t>(i)] = {TrivialQuilt(i, 3)};
  }
  EXPECT_TRUE(AnalyzeMarkovQuiltMechanismWithQuilts({bn}, 1.0, sets).ok());
  sets[1] = {QuiltFromSeparator(g, 1, {0})};  // Missing trivial quilt.
  EXPECT_FALSE(AnalyzeMarkovQuiltMechanismWithQuilts({bn}, 1.0, sets).ok());
}

TEST(MarkovQuiltMechanismTest, WorstNodeIsArgmax) {
  const BayesianNetwork bn =
      Chain({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 5);
  const MqmAnalysis analysis =
      AnalyzeMarkovQuiltMechanism({bn}, 1.0, 2).ValueOrDie();
  double max_score = 0.0;
  for (const QuiltScore& qs : analysis.active) {
    max_score = std::max(max_score, qs.score);
  }
  EXPECT_NEAR(analysis.sigma_max, max_score, 1e-12);
  EXPECT_NEAR(analysis.sigma_max,
              analysis.active[static_cast<std::size_t>(analysis.worst_node)].score,
              1e-12);
}

TEST(MarkovQuiltMechanismTest, ReleaseHelpers) {
  Rng rng(5);
  double abs_sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    abs_sum += std::fabs(MqmReleaseScalar(1.0, 0.5, 3.0, &rng) - 1.0);
  }
  EXPECT_NEAR(abs_sum / n, 1.5, 0.02);  // E|Lap(L * sigma)| = 1.5.
  const Vector noisy = MqmReleaseVector({1.0, 2.0, 3.0}, 1.0, 0.0, &rng);
  EXPECT_DOUBLE_EQ(noisy[0], 1.0);  // sigma = 0: no noise.
}

TEST(MarkovQuiltMechanismTest, EnumerationLimitEnforced) {
  // A 12-node binary chain has 4096 joint assignments: a limit below that
  // must fail the influence computation (and the full analysis) with
  // InvalidArgument instead of silently enumerating past the guard.
  const BayesianNetwork bn =
      Chain({0.5, 0.5}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 12);
  const MoralGraph g(bn);
  const MarkovQuilt quilt = QuiltFromSeparator(g, 5, {3, 7});
  const Result<double> blocked = QuiltMaxInfluence({bn}, quilt, 1000);
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().code(), StatusCode::kInvalidArgument);
  // A limit that admits the space computes normally.
  EXPECT_TRUE(QuiltMaxInfluence({bn}, quilt, 4096).ok());
  // The trivial quilt never enumerates, so it passes under any limit.
  EXPECT_DOUBLE_EQ(
      QuiltMaxInfluence({bn}, TrivialQuilt(5, 12), 1).ValueOrDie(), 0.0);
  MqmAnalyzeOptions options;
  options.enumeration_limit = 1000;
  options.backend = InferenceBackend::kEnumeration;
  const Result<MqmAnalysis> analysis =
      AnalyzeMarkovQuiltMechanism({bn}, 1.0, options);
  ASSERT_FALSE(analysis.ok());
  EXPECT_EQ(analysis.status().code(), StatusCode::kInvalidArgument);
  options.enumeration_limit = 1u << 14;
  EXPECT_TRUE(AnalyzeMarkovQuiltMechanism({bn}, 1.0, options).ok());
  // The variable-elimination default is guarded by clique-table size, not
  // the joint-assignment space: the same network passes under the same
  // tiny limit (chain cliques are 4 cells).
  options.enumeration_limit = 1000;
  options.backend = InferenceBackend::kAuto;
  EXPECT_TRUE(AnalyzeMarkovQuiltMechanism({bn}, 1.0, options).ok());
}

TEST(MarkovQuiltMechanismTest, RejectsMismatchedThetas) {
  const BayesianNetwork a = Chain({0.5, 0.5}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 3);
  const BayesianNetwork b = Chain({0.5, 0.5}, Matrix{{0.9, 0.1}, {0.4, 0.6}}, 4);
  EXPECT_FALSE(AnalyzeMarkovQuiltMechanism({a, b}, 1.0, 2).ok());
  EXPECT_FALSE(AnalyzeMarkovQuiltMechanism({}, 1.0, 2).ok());
}

}  // namespace
}  // namespace pf
