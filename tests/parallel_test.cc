// ThreadPool correctness and the determinism contract of the parallel
// analyses: sigma_max and seeded releases are bit-identical for 1, 2, and 8
// threads.
#include "common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "graphical/markov_chain.h"
#include "pufferfish/markov_quilt_mechanism.h"
#include "pufferfish/mechanism.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(counts.size(), [&](std::size_t i) { counts[i]++; });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossLoops) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::vector<int> slot(64, 0);
    pool.ParallelFor(slot.size(), [&](std::size_t i) {
      slot[i] = static_cast<int>(i) + round;
    });
    for (std::size_t i = 0; i < slot.size(); ++i) {
      ASSERT_EQ(slot[i], static_cast<int>(i) + round);
    }
  }
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrency) {
  // The library-wide num_threads convention: 0 resolves to the hardware
  // thread count (>= 1), never to a serial pool by accident.
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  EXPECT_EQ(pool.num_threads(), ResolveThreadCount(0));
  EXPECT_EQ(ResolveThreadCount(3), 3u);
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  int sum = 0;  // Not atomic: inline execution means no data race.
  pool.ParallelFor(100, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 4950);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](std::size_t) { FAIL() << "must not run"; });
}

MarkovChain TestChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

std::vector<BayesianNetwork> TestNetworks() {
  const MarkovChain a = TestChain(0.8, 0.7);
  const MarkovChain b = TestChain(0.75, 0.65);
  return {
      BayesianNetwork::FromMarkovChain(a.initial(), a.transition(), 7)
          .ValueOrDie(),
      BayesianNetwork::FromMarkovChain(b.initial(), b.transition(), 7)
          .ValueOrDie(),
  };
}

// The acceptance contract: AnalyzeMarkovQuiltMechanism returns identical
// sigma_max — and identical seeded releases — for 1, 2, and 8 threads.
TEST(DeterminismTest, GeneralMqmAcrossThreadCounts) {
  const std::vector<BayesianNetwork> thetas = TestNetworks();
  std::vector<MqmAnalysis> analyses;
  for (std::size_t threads : {1u, 2u, 8u}) {
    MqmAnalyzeOptions options;
    options.max_quilt_size = 2;
    options.num_threads = threads;
    const auto analysis =
        AnalyzeMarkovQuiltMechanism(thetas, 1.0, options).ValueOrDie();
    analyses.push_back(analysis);
  }
  for (std::size_t i = 1; i < analyses.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(analyses[i].sigma_max, analyses[0].sigma_max);
    EXPECT_EQ(analyses[i].worst_node, analyses[0].worst_node);
    ASSERT_EQ(analyses[i].active.size(), analyses[0].active.size());
    for (std::size_t node = 0; node < analyses[0].active.size(); ++node) {
      EXPECT_EQ(analyses[i].active[node].score, analyses[0].active[node].score);
      EXPECT_EQ(analyses[i].active[node].quilt.quilt,
                analyses[0].active[node].quilt.quilt);
    }
  }
  // Identical plans + identical seed => identical noisy releases.
  std::vector<double> releases;
  for (const MqmAnalysis& analysis : analyses) {
    Rng rng(2024);
    releases.push_back(MqmReleaseScalar(3.5, 1.0, analysis.sigma_max, &rng));
  }
  EXPECT_EQ(releases[0], releases[1]);
  EXPECT_EQ(releases[0], releases[2]);
}

TEST(DeterminismTest, MqmExactAcrossThreadCounts) {
  const std::vector<MarkovChain> thetas = {TestChain(0.8, 0.7),
                                           TestChain(0.9, 0.55)};
  std::vector<ChainMqmResult> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ChainMqmOptions options;
    options.epsilon = 1.0;
    options.num_threads = threads;
    options.allow_stationary_shortcut = false;  // Force the full node scan.
    results.push_back(MqmExactAnalyze(thetas, 200, options).ValueOrDie());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i].sigma_max, results[0].sigma_max);
    EXPECT_EQ(results[i].worst_node, results[0].worst_node);
    EXPECT_EQ(results[i].influence, results[0].influence);
    EXPECT_EQ(results[i].active_quilt.quilt, results[0].active_quilt.quilt);
  }
  std::vector<Vector> releases;
  for (const ChainMqmResult& r : results) {
    Rng rng(77);
    releases.push_back(
        MqmReleaseVector({1.0, 2.0, 3.0}, 0.02, r.sigma_max, &rng));
  }
  EXPECT_EQ(releases[0], releases[1]);
  EXPECT_EQ(releases[0], releases[2]);
}

TEST(DeterminismTest, FreeInitialExactAcrossThreadCounts) {
  const std::vector<Matrix> transitions = {
      TestChain(0.8, 0.7).transition(), TestChain(0.7, 0.6).transition()};
  std::vector<double> sigmas;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ChainMqmOptions options;
    options.epsilon = 1.0;
    options.num_threads = threads;
    sigmas.push_back(MqmExactAnalyzeFreeInitial(transitions, 120, options)
                         .ValueOrDie()
                         .sigma_max);
  }
  EXPECT_EQ(sigmas[0], sigmas[1]);
  EXPECT_EQ(sigmas[0], sigmas[2]);
}

TEST(DeterminismTest, UnifiedEngineAcrossThreadCounts) {
  std::vector<double> sigmas;
  for (std::size_t threads : {1u, 2u, 8u}) {
    ChainUnifiedOptions options;
    options.num_threads = threads;
    const MqmExactUnified mechanism({TestChain(0.85, 0.75)}, 150, options);
    sigmas.push_back(mechanism.Analyze(1.0).ValueOrDie().sigma);
  }
  EXPECT_EQ(sigmas[0], sigmas[1]);
  EXPECT_EQ(sigmas[0], sigmas[2]);
}

}  // namespace
}  // namespace pf
