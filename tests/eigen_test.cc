#include "common/eigen.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

TEST(EigenTest, DiagonalMatrixEigenvalues) {
  const Matrix m = Matrix::Diagonal({3.0, -1.0, 2.0});
  const Result<Vector> eig = SymmetricEigenvalues(m);
  ASSERT_TRUE(eig.ok());
  ASSERT_EQ(eig.value().size(), 3u);
  EXPECT_NEAR(eig.value()[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.value()[1], 2.0, 1e-10);
  EXPECT_NEAR(eig.value()[2], -1.0, 1e-10);
}

TEST(EigenTest, TwoByTwoSymmetric) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const Result<Vector> eig = SymmetricEigenvalues(m);
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig.value()[0], 3.0, 1e-10);
  EXPECT_NEAR(eig.value()[1], 1.0, 1e-10);
}

TEST(EigenTest, TraceAndDeterminantInvariants) {
  Matrix m{{4.0, 1.0, 0.5}, {1.0, 3.0, 0.25}, {0.5, 0.25, 2.0}};
  const Result<Vector> eig = SymmetricEigenvalues(m);
  ASSERT_TRUE(eig.ok());
  double trace = 0.0;
  for (double v : eig.value()) trace += v;
  EXPECT_NEAR(trace, 9.0, 1e-9);
}

TEST(EigenTest, RejectsNonSymmetric) {
  Matrix m{{1.0, 2.0}, {0.0, 1.0}};
  const Result<Vector> eig = SymmetricEigenvalues(m);
  EXPECT_FALSE(eig.ok());
  EXPECT_EQ(eig.status().code(), StatusCode::kInvalidArgument);
}

TEST(EigenTest, RejectsNonSquare) {
  Matrix m(2, 3, 0.0);
  EXPECT_FALSE(SymmetricEigenvalues(m).ok());
}

TEST(EigenTest, SpectralRadiusOfStochasticMatrixIsOne) {
  Matrix p{{0.9, 0.1}, {0.4, 0.6}};
  const Result<double> radius = SpectralRadius(p);
  ASSERT_TRUE(radius.ok());
  EXPECT_NEAR(radius.value(), 1.0, 1e-8);
}

TEST(EigenTest, SpectralNormOfDiagonal) {
  const Matrix m = Matrix::Diagonal({-5.0, 2.0});
  const Result<double> norm = SpectralNorm(m);
  ASSERT_TRUE(norm.ok());
  EXPECT_NEAR(norm.value(), 5.0, 1e-8);
}

TEST(EigenTest, SpectralNormTridiagonalToeplitz) {
  // Zero diagonal, nu = 0.3 off-diagonals, size 10:
  // norm = 2 * 0.3 * cos(pi / 11).
  const std::size_t n = 10;
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    m(i, i + 1) = 0.3;
    m(i + 1, i) = 0.3;
  }
  const Result<double> norm = SpectralNorm(m);
  ASSERT_TRUE(norm.ok());
  EXPECT_NEAR(norm.value(), 2.0 * 0.3 * std::cos(M_PI / 11.0), 1e-6);
}

}  // namespace
}  // namespace pf
