// Concurrency stress tests for the mutex-bearing components, sized to run
// under ThreadSanitizer's ~10x slowdown (each test finishes in well under a
// second natively). These are the dynamic half of the PR-7 correctness
// layer: the clang -Wthread-safety leg proves the locking discipline
// statically, the TSan CI job re-proves the absence of data races on every
// commit by running this file (and the full suite) with PF_TSAN=ON.
//
// The scenarios deliberately cross the engine's mutation paths the way a
// serving daemon would: Submit racing AppendObservations racing
// SaveAnalyses/LoadAnalyses racing GetOrExtend, plus the primitive pools
// and the relaxed-atomic counters (AnalysisCache hits, Arena process-wide
// totals) that TSan would flag instantly if they were plain fields.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/parallel.h"
#include "engine/engine.h"
#include "engine/executor.h"
#include "graphical/markov_chain.h"
#include "pufferfish/analysis_cache.h"

namespace pf {
namespace {

constexpr std::size_t kThreads = 4;

MarkovChain StressChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

std::unique_ptr<PrivacyEngine> StressEngine(std::size_t length) {
  EngineOptions options;
  options.num_threads = 2;
  options.exact_max_nearby = 8;
  ModelSpec model =
      ModelSpec::ChainClass({StressChain(0.8, 0.7), StressChain(0.6, 0.9)},
                            length);
  return PrivacyEngine::Create(std::move(model), options).ValueOrDie();
}

StateSequence StressData(std::size_t length) {
  StateSequence data(length);
  for (std::size_t i = 0; i < length; ++i) data[i] = static_cast<int>(i % 2);
  return data;
}

// The headline scenario from the issue: concurrent Submit (per-tenant
// sessions) x AppendObservations (stream growth) x SaveAnalyses /
// LoadAnalyses (warm-restart snapshots) x AnalyzeStats (GetOrExtend), all
// against one engine. Outcomes may legitimately be errors (a submit racing
// an append can see a quilt mismatch; a save can race a load) — the test
// asserts the invariants that must survive the race: no crash, no TSan
// report, statuses always well-formed, released values always finite.
TEST(TsanStressTest, SubmitVsAppendVsSnapshotVsExtend) {
  auto engine = StressEngine(/*length=*/48);
  const std::string snapshot =
      testing::TempDir() + "/tsan_stress_snapshot.pfplan";
  std::atomic<int> ok_releases{0};
  std::atomic<int> appends_done{0};
  constexpr int kAppends = 6;

  std::vector<std::thread> threads;
  // Stream growth: the record length ratchets up under model_mutex_.
  threads.emplace_back([&] {
    for (int i = 0; i < kAppends; ++i) {
      ASSERT_TRUE(engine->AppendObservations(2).ok());
      appends_done.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Two serving tenants: windowed submits keep compiling at fresh lengths
  // while the record grows underneath them.
  for (int tenant = 0; tenant < 2; ++tenant) {
    threads.emplace_back([&, tenant] {
      SessionOptions options;
      options.seed = 7 + static_cast<std::uint64_t>(tenant);
      auto session = engine->CreateSession(options);
      for (int i = 0; i < 12; ++i) {
        // Size the data to the CURRENT record length; a racing append can
        // still invalidate it before Submit resolves, which must surface
        // as a clean Status, never a race.
        StateSequence data = StressData(engine->record_length());
        auto future =
            session->Submit(QuerySpec::Sum(0.5), data, DataWindow::Last(8));
        Result<ReleaseResult> r = future.get();
        if (r.ok()) {
          ASSERT_TRUE(std::isfinite(r.value().value[0]));
          ok_releases.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_FALSE(r.status().message().empty());
        }
      }
    });
  }
  // Warm-restart churn: exports race inserts; loads race everything.
  threads.emplace_back([&] {
    for (int i = 0; i < 8; ++i) {
      Status saved = engine->SaveAnalyses(snapshot);
      ASSERT_TRUE(saved.ok()) << saved.ToString();
      Result<std::size_t> loaded = engine->LoadAnalyses(snapshot);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    }
  });
  // Analysis-stats sweep: epsilon variety drives GetOrExtend cold paths,
  // extensions, and cache hits concurrently with the appends.
  threads.emplace_back([&] {
    const double epsilons[] = {0.25, 0.5, 1.0};
    for (int i = 0; i < 9; ++i) {
      Result<PrivacyEngine::AnalysisStats> stats =
          engine->AnalyzeStats(epsilons[i % 3]);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      ASSERT_GE(stats.value().total_nodes, 1u);
    }
  });
  for (std::thread& t : threads) t.join();
  std::remove(snapshot.c_str());

  EXPECT_EQ(appends_done.load(), kAppends);
  // The windowed submits must succeed at least when no append was mid
  // flight; a fully refused run would mean the quilt ledger is broken, not
  // just racy.
  EXPECT_GT(ok_releases.load(), 0);
  EXPECT_EQ(engine->record_length(), 48u + 2u * kAppends);
}

// Columnar batches racing stream growth and scalar traffic: SubmitColumnar
// compiles against a record-length snapshot, charges the whole batch in
// one critical section, and executes on the pool — all while
// AppendObservations ratchets the model and scalar submits interleave.
// Races must resolve to clean statuses (a torn compile surfaces as
// Unavailable, never mixed-epoch constants), admitted batches must carry
// finite values under contiguous tickets, and the shared ledger must end
// balanced: every admitted row recorded, every refused batch absent.
TEST(TsanStressTest, ColumnarSubmitVsAppendVsScalar) {
  auto engine = StressEngine(/*length=*/48);
  std::atomic<int> ok_batches{0};
  constexpr int kAppends = 6;

  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    for (int i = 0; i < kAppends; ++i) {
      ASSERT_TRUE(engine->AppendObservations(2).ok());
    }
  });
  for (int tenant = 0; tenant < 2; ++tenant) {
    threads.emplace_back([&, tenant] {
      SessionOptions options;
      options.seed = 11 + static_cast<std::uint64_t>(tenant);
      auto session = engine->CreateSession(options);
      std::size_t admitted_rows = 0;
      for (int i = 0; i < 10; ++i) {
        BatchQuerySpec batch;
        batch.Add(QuerySpec::Sum(0.5))
            .Add(QuerySpec::Mean(0.5), DataWindow::Last(8))
            .Add(QuerySpec::Sum(0.5));
        StateSequence data = StressData(engine->record_length());
        Result<BatchReleaseResult> r =
            session->SubmitColumnar(batch, data).get();
        if (r.ok()) {
          const RecordBatch& rb = r.value().batch;
          ASSERT_EQ(rb.num_rows(), 3u);
          for (std::size_t v = 0; v < rb.num_values(); ++v) {
            ASSERT_TRUE(std::isfinite(rb.values()[v]));
          }
          ASSERT_EQ(rb.tickets()[2], rb.tickets()[0] + 2);
          admitted_rows += rb.num_rows();
          ok_batches.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_FALSE(r.status().message().empty());
        }
      }
      // All-or-nothing accounting survived the races: the ledger holds
      // exactly the rows of the admitted batches, nothing from refused
      // ones.
      ASSERT_EQ(session->num_releases(), admitted_rows);
    });
  }
  // Scalar traffic on its own session keeps the executor contended.
  threads.emplace_back([&] {
    auto session = engine->CreateSession();
    for (int i = 0; i < 12; ++i) {
      StateSequence data = StressData(engine->record_length());
      auto r = session->Submit(QuerySpec::Sum(0.5), data,
                               DataWindow::Last(8)).get();
      if (!r.ok()) ASSERT_FALSE(r.status().message().empty());
    }
  });
  for (std::thread& t : threads) t.join();
  EXPECT_GT(ok_batches.load(), 0)
      << "every columnar batch was refused; the batch path is broken, not "
         "just racy";
  EXPECT_EQ(engine->record_length(), 48u + 2u * kAppends);
}

// One session hammered from many threads: the budget ledger must admit
// exactly floor(B / eps) releases in total, no matter how the threads
// interleave (the Theorem 4.4 admission check and the ticket counter share
// one critical section).
TEST(TsanStressTest, SharedSessionLedgerAdmitsExactlyFloorBudget) {
  auto engine = StressEngine(/*length=*/40);
  SessionOptions options;
  options.epsilon_budget = 1.2;
  options.seed = 42;
  auto session = engine->CreateSession(options);
  const StateSequence data = StressData(40);

  // Warm the compiled-query cache first so the racing releases exercise
  // the ledger, not the analysis.
  ASSERT_TRUE(engine->Compile(QuerySpec::Sum(0.4)).ok());

  std::atomic<int> admitted{0};
  std::atomic<int> exhausted{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 4; ++i) {
        Result<ReleaseResult> r = session->Release(QuerySpec::Sum(0.4), data);
        if (r.ok()) {
          admitted.fetch_add(1, std::memory_order_relaxed);
        } else {
          ASSERT_EQ(r.status().code(), StatusCode::kResourceExhausted);
          exhausted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // B = 1.2, eps = 0.4: exactly 3 admissions, every other attempt refused.
  EXPECT_EQ(admitted.load(), 3);
  EXPECT_EQ(exhausted.load(), static_cast<int>(kThreads * 4) - 3);
  EXPECT_EQ(session->num_releases(), 3u);
}

// GetOrExtend from many threads on one cache: per-entry chain mutexes
// serialize extensions of one model class while exact-key hits bump the
// relaxed-atomic counters (the audit target: plain counters would be a
// TSan report here).
TEST(TsanStressTest, AnalysisCacheConcurrentHitsAndExtensions) {
  AnalysisCache cache(/*max_entries=*/64);
  ChainUnifiedOptions options;
  options.max_nearby = 8;
  options.num_threads = 1;
  const std::vector<MarkovChain> thetas = {StressChain(0.8, 0.7)};

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 6; ++i) {
        // Two threads extend through growing lengths; two hammer one hot
        // key. Same epsilon: the chain entry is shared state.
        const std::size_t length =
            (t < 2) ? 32 + 4 * static_cast<std::size_t>(i) : 32;
        MqmExactUnified mechanism(thetas, length, options);
        Result<std::shared_ptr<const MechanismPlan>> plan =
            cache.GetOrExtend(mechanism, 1.0);
        ASSERT_TRUE(plan.ok()) << plan.status().ToString();
        ASSERT_GT(plan.value()->sigma, 0.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const AnalysisCache::Stats stats = cache.stats();
  // Every call resolved to a hit, a miss, or a miss-via-extension; the
  // relaxed counters must still account for all of them.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * 6);
  EXPECT_GT(stats.hits, 0u);
  // The growing-length threads extend rather than re-analyze (the second
  // thread's extension may hit the first's stored plan, so >= 1, and
  // bounded by the distinct new lengths).
  EXPECT_GE(stats.extensions, 1u);
}

// ParallelFor under churn: two pools alternating loops from their owner
// threads, with per-index slots as the only shared state — the
// thread-count-invariance contract's memory-model core.
TEST(TsanStressTest, ThreadPoolParallelForChurn) {
  ThreadPool pool(kThreads);
  std::vector<std::thread> drivers;
  std::atomic<std::uint64_t> grand_total{0};
  for (int d = 0; d < 2; ++d) {
    drivers.emplace_back([&] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::uint64_t> slots(257, 0);
        pool.ParallelFor(slots.size(), [&slots](std::size_t i) {
          slots[i] = i * i + 1;
        });
        std::uint64_t total = 0;
        for (std::uint64_t s : slots) total += s;  // Sequential reduce.
        grand_total.fetch_add(total, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  std::uint64_t expected_one = 0;
  for (std::uint64_t i = 0; i < 257; ++i) expected_one += i * i + 1;
  EXPECT_EQ(grand_total.load(), expected_one * 2 * 20);
}

// Executor: lazy worker spawn racing a flood of submits from several
// threads, then a drain-on-destruct while futures are still outstanding.
// The queue bound is wider than the flood, so nothing sheds here.
TEST(TsanStressTest, ExecutorSubmitFloodAndDrain) {
  std::vector<std::future<int>> futures;
  Mutex futures_mutex;
  {
    Executor executor(kThreads);
    std::vector<std::thread> submitters;
    for (int s = 0; s < 3; ++s) {
      submitters.emplace_back([&, s] {
        for (int i = 0; i < 50; ++i) {
          auto future = executor.Submit([s, i] { return s * 1000 + i; });
          ASSERT_TRUE(future.ok()) << future.status().ToString();
          MutexLock lock(futures_mutex);
          futures.push_back(std::move(future).value());
        }
      });
    }
    for (std::thread& t : submitters) t.join();
    const Executor::Stats stats = executor.stats();
    EXPECT_EQ(stats.submitted, 150u);
    EXPECT_EQ(stats.admitted, 150u);
    EXPECT_EQ(stats.shed, 0u);
    // ~Executor drains the queue: every future below must be ready.
  }
  ASSERT_EQ(futures.size(), 150u);
  std::uint64_t sum = 0;
  for (auto& f : futures) sum += static_cast<std::uint64_t>(f.get());
  std::uint64_t expected = 0;
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 50; ++i) expected += static_cast<std::uint64_t>(s * 1000 + i);
  }
  EXPECT_EQ(sum, expected);
}

// Admission control under contention: a deliberately tiny queue bound with
// slow tasks forces real shedding while several threads hammer TryAcquire.
// The accounting invariant submitted == admitted + shed must hold exactly —
// every TryAcquire resolves to exactly one of the two outcomes, with no
// double-count and no lost update — and every admitted task's future must
// resolve (the drain-on-destruct guarantee is not weakened by shedding).
TEST(TsanStressTest, ExecutorBoundedQueueAdmissionInvariant) {
  std::atomic<std::uint64_t> ran{0};
  std::uint64_t admitted_count = 0;
  std::uint64_t shed_count = 0;
  Executor::Stats stats;
  {
    ExecutorOptions options;
    options.num_threads = 2;
    options.max_queue_depth = 4;
    Executor executor(options);
    std::vector<std::future<int>> futures;
    Mutex futures_mutex;
    std::atomic<std::uint64_t> shed_seen{0};
    std::vector<std::thread> submitters;
    for (std::size_t s = 0; s < kThreads; ++s) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 40; ++i) {
          Result<Executor::Permit> permit = executor.TryAcquire();
          if (!permit.ok()) {
            ASSERT_EQ(permit.status().code(), StatusCode::kUnavailable);
            shed_seen.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::yield();  // Back off; let workers drain.
            continue;
          }
          auto future = executor.Submit(std::move(permit).value(), [&ran] {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
            return static_cast<int>(ran.fetch_add(1) & 0x7fffffff);
          });
          MutexLock lock(futures_mutex);
          futures.push_back(std::move(future));
        }
      });
    }
    for (std::thread& t : submitters) t.join();
    stats = executor.stats();
    admitted_count = futures.size();
    shed_count = shed_seen.load();
    for (auto& f : futures) f.wait();
  }
  EXPECT_EQ(stats.admitted, admitted_count);
  EXPECT_EQ(stats.shed, shed_count);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed);
  EXPECT_GT(stats.shed, 0u) << "queue bound of 4 never shed; the stress is "
                               "not exercising admission control";
  EXPECT_EQ(ran.load(), admitted_count);
}

// Arena process-wide counters: arenas created, grown, and released on
// several threads at once fold into the relaxed-atomic totals; the totals
// must balance once every arena is gone (a plain counter would both race
// and drift).
TEST(TsanStressTest, ArenaProcessWideCountersBalance) {
  const std::uint64_t retained_before = Arena::TotalRetainedBytes();
  std::atomic<std::uint64_t> local_retained_peak{0};
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        Arena arena(1u << 10);
        for (int i = 0; i < 16; ++i) {
          void* p = arena.Allocate(512);
          ASSERT_NE(p, nullptr);
        }
        local_retained_peak.fetch_add(arena.retained_bytes(),
                                      std::memory_order_relaxed);
        arena.Release();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every Release returned its retained bytes: the process-wide gauge is
  // back to where it started (other tests' thread_local arenas are stable
  // across this test body).
  EXPECT_EQ(Arena::TotalRetainedBytes(), retained_before);
  EXPECT_GT(local_retained_peak.load(), 0u);
}

}  // namespace
}  // namespace pf
