// Parameterized sweeps over the Markov Quilt Mechanism's knobs, checking the
// monotonicity and consistency properties the theory promises:
//  - sigma decreases in epsilon and in quilt-width budget;
//  - sigma never exceeds the trivial-quilt fallback T/epsilon;
//  - MQMApprox dominates MQMExact for every (epsilon, class) combination;
//  - the class sigma is the max over its members;
//  - the Lemma 4.9 / C.4 shortcuts agree with brute force across regimes.
#include <gtest/gtest.h>

#include <cmath>

#include "pufferfish/framework.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

struct SweepCase {
  double epsilon;
  double p0, p1;
  std::size_t length;
};

class MqmSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(MqmSweep, TrivialFallbackBound) {
  const SweepCase c = GetParam();
  const MarkovChain chain =
      MarkovChain::Make({0.5, 0.5},
                        BinaryChainIntervalClass::TransitionFor(c.p0, c.p1))
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = c.epsilon;
  options.max_nearby = 40;
  const ChainMqmResult r =
      MqmExactAnalyze({chain}, c.length, options).ValueOrDie();
  EXPECT_GT(r.sigma_max, 0.0);
  EXPECT_LE(r.sigma_max,
            static_cast<double>(c.length) / c.epsilon + 1e-9);
}

TEST_P(MqmSweep, ApproxDominatesExact) {
  const SweepCase c = GetParam();
  const MarkovChain chain =
      MarkovChain::Make({0.5, 0.5},
                        BinaryChainIntervalClass::TransitionFor(c.p0, c.p1))
          .ValueOrDie();
  ChainMqmOptions exact_options;
  exact_options.epsilon = c.epsilon;
  exact_options.max_nearby = 60;
  ChainMqmOptions approx_options;
  approx_options.epsilon = c.epsilon;
  approx_options.max_nearby = 0;
  const double exact =
      MqmExactAnalyze({chain}, c.length, exact_options).ValueOrDie().sigma_max;
  const double approx =
      MqmApproxAnalyze({chain}, c.length, approx_options).ValueOrDie().sigma_max;
  EXPECT_LE(exact, approx + 1e-9);
}

TEST_P(MqmSweep, SigmaMonotoneInEpsilon) {
  const SweepCase c = GetParam();
  const MarkovChain chain =
      MarkovChain::Make({0.5, 0.5},
                        BinaryChainIntervalClass::TransitionFor(c.p0, c.p1))
          .ValueOrDie();
  ChainMqmOptions lo, hi;
  lo.epsilon = c.epsilon;
  hi.epsilon = c.epsilon * 2.0;
  lo.max_nearby = hi.max_nearby = 40;
  const double sigma_lo =
      MqmExactAnalyze({chain}, c.length, lo).ValueOrDie().sigma_max;
  const double sigma_hi =
      MqmExactAnalyze({chain}, c.length, hi).ValueOrDie().sigma_max;
  EXPECT_GE(sigma_lo, sigma_hi - 1e-9);
}

TEST_P(MqmSweep, SigmaMonotoneInWidthBudget) {
  const SweepCase c = GetParam();
  const MarkovChain chain =
      MarkovChain::Make({0.5, 0.5},
                        BinaryChainIntervalClass::TransitionFor(c.p0, c.p1))
          .ValueOrDie();
  double prev = std::numeric_limits<double>::infinity();
  for (std::size_t ell : {4u, 16u, 64u}) {
    ChainMqmOptions options;
    options.epsilon = c.epsilon;
    options.max_nearby = ell;
    const double sigma =
        MqmExactAnalyze({chain}, c.length, options).ValueOrDie().sigma_max;
    EXPECT_LE(sigma, prev + 1e-9) << "ell=" << ell;
    prev = sigma;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MqmSweep,
    ::testing::Values(SweepCase{0.5, 0.9, 0.6, 60}, SweepCase{1.0, 0.9, 0.6, 60},
                      SweepCase{5.0, 0.9, 0.6, 60}, SweepCase{1.0, 0.5, 0.5, 60},
                      SweepCase{1.0, 0.8, 0.8, 120},
                      SweepCase{1.0, 0.95, 0.3, 120},
                      SweepCase{0.2, 0.7, 0.7, 40}));

TEST(MqmClassTest, ClassSigmaIsMaxOverMembers) {
  const std::size_t length = 80;
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 50;
  std::vector<MarkovChain> chains;
  double worst = 0.0;
  for (double p : {0.6, 0.75, 0.9}) {
    chains.push_back(
        MarkovChain::Make({0.5, 0.5},
                          BinaryChainIntervalClass::TransitionFor(p, p))
            .ValueOrDie());
    worst = std::max(
        worst,
        MqmExactAnalyze({chains.back()}, length, options).ValueOrDie().sigma_max);
  }
  const double class_sigma =
      MqmExactAnalyze(chains, length, options).ValueOrDie().sigma_max;
  EXPECT_NEAR(class_sigma, worst, 1e-9);
}

class ApproxShortcutAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ApproxShortcutAgreement, MidNodeShortcutEqualsFullScan) {
  Rng rng(2200 + GetParam());
  const double p0 = rng.Uniform(0.3, 0.95);
  const double p1 = rng.Uniform(0.3, 0.95);
  const std::size_t length = 50 + rng.UniformInt(400);
  const MarkovChain chain =
      MarkovChain::Make({0.5, 0.5},
                        BinaryChainIntervalClass::TransitionFor(p0, p1))
          .ValueOrDie();
  ChainMqmOptions fast;
  fast.epsilon = 1.0;
  fast.max_nearby = 0;
  ChainMqmOptions slow = fast;
  slow.allow_stationary_shortcut = false;
  const double sigma_fast =
      MqmApproxAnalyze({chain}, length, fast).ValueOrDie().sigma_max;
  const double sigma_slow =
      MqmApproxAnalyze({chain}, length, slow).ValueOrDie().sigma_max;
  EXPECT_NEAR(sigma_fast, sigma_slow, 1e-9)
      << "p0=" << p0 << " p1=" << p1 << " T=" << length;
}

INSTANTIATE_TEST_SUITE_P(Randomized, ApproxShortcutAgreement,
                         ::testing::Range(0, 12));

class ExactShortcutAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ExactShortcutAgreement, StationaryShortcutEqualsFullScan) {
  Rng rng(2600 + GetParam());
  const double p0 = rng.Uniform(0.4, 0.95);
  const double p1 = rng.Uniform(0.4, 0.95);
  const Matrix p = BinaryChainIntervalClass::TransitionFor(p0, p1);
  const MarkovChain probe = MarkovChain::Make({0.5, 0.5}, p).ValueOrDie();
  const Vector pi = probe.StationaryDistribution().ValueOrDie();
  const MarkovChain chain = MarkovChain::Make(pi, p).ValueOrDie();
  const std::size_t length = 60 + rng.UniformInt(200);
  ChainMqmOptions fast;
  fast.epsilon = 1.0;
  fast.max_nearby = 30;
  ChainMqmOptions slow = fast;
  slow.allow_stationary_shortcut = false;
  const ChainMqmResult rf = MqmExactAnalyze({chain}, length, fast).ValueOrDie();
  const ChainMqmResult rs = MqmExactAnalyze({chain}, length, slow).ValueOrDie();
  EXPECT_NEAR(rf.sigma_max, rs.sigma_max, 1e-9)
      << "p0=" << p0 << " p1=" << p1 << " T=" << length;
}

INSTANTIATE_TEST_SUITE_P(Randomized, ExactShortcutAgreement,
                         ::testing::Range(0, 12));

// Multi-state chains (k = 3, 4): the Eq. (5) machinery is not binary-only.
class MultiStateSweep : public ::testing::TestWithParam<int> {};

TEST_P(MultiStateSweep, KStateChainsAnalyzable) {
  const int k = 3 + GetParam() % 2;
  Rng rng(3000 + GetParam());
  Matrix p(k, k, 0.0);
  for (int i = 0; i < k; ++i) {
    Vector row = rng.UniformSimplex(static_cast<std::size_t>(k));
    // Make diagonally dominant for realistic persistence.
    for (int j = 0; j < k; ++j) p(i, j) = 0.2 * row[static_cast<std::size_t>(j)];
    p(i, i) += 0.8;
  }
  const MarkovChain chain =
      MarkovChain::Make(Vector(static_cast<std::size_t>(k), 1.0 / k), p)
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 50;
  const ChainMqmResult exact =
      MqmExactAnalyze({chain}, 100, options).ValueOrDie();
  EXPECT_TRUE(std::isfinite(exact.sigma_max));
  EXPECT_LE(exact.sigma_max, 100.0 + 1e-9);
  ChainMqmOptions approx_options;
  approx_options.epsilon = 1.0;
  approx_options.max_nearby = 0;
  const ChainMqmResult approx =
      MqmApproxAnalyze({chain}, 100, approx_options).ValueOrDie();
  EXPECT_LE(exact.sigma_max, approx.sigma_max + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Randomized, MultiStateSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace pf
