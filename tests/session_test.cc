// Session: the privacy-budget ledger and the async serving path. Covers
// budget exhaustion (floor(B/epsilon) equal-epsilon releases), the
// Theorem 4.4 K * max rule for mixed epsilons, active-quilt mismatch
// refusal, and thread-count-invariant determinism of batch Submit().
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "graphical/markov_chain.h"

namespace pf {
namespace {

MarkovChain TestChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

std::unique_ptr<PrivacyEngine> LaplaceEngine() {
  return PrivacyEngine::Create(ModelSpec::Sensitivity(1.0)).ValueOrDie();
}

const StateSequence kData{1, 0, 1, 1, 0, 1, 0, 0, 1, 1};

// ------------------------------------------------------------- the budget --

TEST(SessionBudgetTest, ExactlyFloorBudgetOverEpsilonReleases) {
  auto engine = LaplaceEngine();
  struct Case {
    double budget;
    double epsilon;
    int allowed;  // floor(budget / epsilon).
  };
  for (const Case& c : {Case{2.0, 0.5, 4}, Case{3.0, 1.0, 3},
                        Case{1.0, 0.3, 3}, Case{0.25, 0.5, 0}}) {
    SessionOptions options;
    options.epsilon_budget = c.budget;
    auto session = engine->CreateSession(options);
    for (int k = 0; k < c.allowed; ++k) {
      ASSERT_TRUE(session->Release(QuerySpec::Sum(c.epsilon), kData).ok())
          << "budget " << c.budget << " eps " << c.epsilon << " release " << k;
    }
    const auto refused = session->Release(QuerySpec::Sum(c.epsilon), kData);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted)
        << refused.status().ToString();
    EXPECT_EQ(session->num_releases(), static_cast<std::size_t>(c.allowed));
  }
}

// Regression: the "exactly floor(B / eps) equal-epsilon releases"
// guarantee at floating-point tie boundaries. 3 * 0.1 > 0.3 and
// 7 * 0.1 > 0.7 in doubles by one ulp, so a naive <= comparison refuses
// the final legitimate release; the deterministic tie rule
// (ComposedBudgetAdmits) must forgive the dust — and still refuse a
// genuine overrun, which is off by a whole epsilon.
TEST(SessionBudgetTest, FloorGuaranteeHoldsAtFpTieBoundaries) {
  auto engine = LaplaceEngine();
  struct Case {
    double budget;
    double epsilon;
    int allowed;
  };
  for (const Case& c :
       {Case{0.3, 0.1, 3}, Case{0.7, 0.1, 7}, Case{0.6, 0.2, 3},
        Case{0.3 + 0.00001, 0.1, 3}, Case{1.2, 0.4, 3}, Case{4.9, 0.7, 7}}) {
    SessionOptions options;
    options.epsilon_budget = c.budget;
    auto session = engine->CreateSession(options);
    for (int k = 0; k < c.allowed; ++k) {
      ASSERT_TRUE(session->Release(QuerySpec::Sum(c.epsilon), kData).ok())
          << "budget " << c.budget << " eps " << c.epsilon << " release " << k;
    }
    const auto refused = session->Release(QuerySpec::Sum(c.epsilon), kData);
    ASSERT_FALSE(refused.ok()) << "budget " << c.budget << " eps " << c.epsilon;
    EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
    EXPECT_EQ(session->num_releases(), static_cast<std::size_t>(c.allowed));
  }
  // A genuinely over-budget epsilon is refused at the true floor: eps just
  // above 0.1 fits only twice in 0.3.
  SessionOptions options;
  options.epsilon_budget = 0.3;
  auto session = engine->CreateSession(options);
  const double eps_over = 0.100000001;
  ASSERT_TRUE(session->Release(QuerySpec::Sum(eps_over), kData).ok());
  ASSERT_TRUE(session->Release(QuerySpec::Sum(eps_over), kData).ok());
  EXPECT_EQ(session->Release(QuerySpec::Sum(eps_over), kData).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(SessionBudgetTest, RefusedReleaseChargesNothing) {
  auto engine = LaplaceEngine();
  SessionOptions options;
  options.epsilon_budget = 1.0;
  auto session = engine->CreateSession(options);
  ASSERT_TRUE(session->Release(QuerySpec::Sum(1.0), kData).ok());
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(session->Release(QuerySpec::Sum(1.0), kData).status().code(),
              StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(session->num_releases(), 1u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 1.0);
  EXPECT_DOUBLE_EQ(session->EpsilonRemaining(), 0.0);
}

TEST(SessionBudgetTest, MixedEpsilonsPricedByKTimesMax) {
  auto engine = LaplaceEngine();
  SessionOptions options;
  options.epsilon_budget = 2.5;
  auto session = engine->CreateSession(options);
  ASSERT_TRUE(session->Release(QuerySpec::Sum(1.0), kData).ok());
  ASSERT_TRUE(session->Release(QuerySpec::Sum(0.5), kData).ok());
  // Theorem 4.4 prices K releases at K * max epsilon, so the ledger reads
  // 2 * 1.0, not 1.5.
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 2.0);
  // A third release at 0.5 would compose to 3 * 1.0 = 3.0 > 2.5 even
  // though the naive sum (2.0) fits: refused.
  const auto refused = session->Release(QuerySpec::Sum(0.5), kData);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session->num_releases(), 2u);
}

TEST(SessionBudgetTest, UnmeteredByDefault) {
  auto engine = LaplaceEngine();
  auto session = engine->CreateSession();
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(session->Release(QuerySpec::Sum(1.0), kData).ok());
  }
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 50.0);
}

TEST(SessionBudgetTest, BudgetExhaustionThroughAsyncSubmit) {
  auto engine = LaplaceEngine();
  SessionOptions options;
  options.epsilon_budget = 3.0;
  auto session = engine->CreateSession(options);
  std::vector<std::future<Result<ReleaseResult>>> futures;
  for (int k = 0; k < 5; ++k) {
    futures.push_back(session->Submit(QuerySpec::Sum(1.0), kData));
  }
  int ok = 0, exhausted = 0;
  for (auto& f : futures) {
    const Result<ReleaseResult> r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      ++exhausted;
    }
  }
  EXPECT_EQ(ok, 3);
  EXPECT_EQ(exhausted, 2);
}

// --------------------------------------------------- Theorem 4.4 refusals --

TEST(SessionQuiltTest, SameQuiltComposesAcrossReleases) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({TestChain(0.8, 0.7)}, 50))
          .ValueOrDie();
  Rng rng(3);
  const StateSequence data = TestChain(0.8, 0.7).Sample(50, &rng);
  auto session = engine->CreateSession();
  for (int k = 0; k < 4; ++k) {
    ASSERT_TRUE(session->Release(QuerySpec::Mean(1.0), data).ok());
  }
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 4.0);
}

TEST(SessionQuiltTest, RefusesActiveQuiltMismatch) {
  // At epsilon = 4 a narrow chain quilt is active; at epsilon = 0.001 every
  // nontrivial quilt's influence exceeds epsilon, so the trivial quilt is
  // active. Composing the two would violate the Theorem 4.4 precondition.
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({TestChain(0.8, 0.7)}, 10))
          .ValueOrDie();
  const auto plan_hi = engine->Compile(QuerySpec::Mean(4.0)).ValueOrDie().plan;
  const auto plan_lo =
      engine->Compile(QuerySpec::Mean(0.001)).ValueOrDie().plan;
  ASSERT_NE(plan_hi->chain.active_quilt.ToString(),
            plan_lo->chain.active_quilt.ToString())
      << "test premise: the two epsilons must pick different active quilts";

  Rng rng(4);
  const StateSequence data = TestChain(0.8, 0.7).Sample(10, &rng);
  auto session = engine->CreateSession();
  ASSERT_TRUE(session->Release(QuerySpec::Mean(4.0), data).ok());
  const auto refused = session->Release(QuerySpec::Mean(0.001), data);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition)
      << refused.status().ToString();
  EXPECT_EQ(session->num_releases(), 1u);

  // A fresh session serves the other epsilon fine.
  auto other = engine->CreateSession();
  EXPECT_TRUE(other->Release(QuerySpec::Mean(0.001), data).ok());
}

// ------------------------------------------------------------ determinism --

std::vector<Vector> RunBatch(std::size_t num_threads, std::uint64_t seed) {
  EngineOptions options;
  options.num_threads = num_threads;
  auto engine =
      PrivacyEngine::Create(ModelSpec::ChainClass({TestChain(0.8, 0.7)}, 200),
                            options)
          .ValueOrDie();
  Rng rng(11);
  std::vector<StateSequence> databases;
  for (int d = 0; d < 6; ++d) {
    databases.push_back(TestChain(0.8, 0.7).Sample(200, &rng));
  }
  SessionOptions session_options;
  session_options.seed = seed;
  auto session = engine->CreateSession(session_options);

  // 120 declarative queries at one epsilon (one shared plan and quilt),
  // cycling shapes and databases.
  std::vector<QuerySpec> specs;
  for (int q = 0; q < 120; ++q) {
    switch (q % 5) {
      case 0: specs.push_back(QuerySpec::Mean(1.0)); break;
      case 1: specs.push_back(QuerySpec::Sum(1.0)); break;
      case 2: specs.push_back(QuerySpec::StateFrequency(q % 2, 1.0)); break;
      case 3: specs.push_back(QuerySpec::FrequencyHistogram(1.0)); break;
      default: specs.push_back(QuerySpec::CountHistogram(1.0)); break;
    }
  }
  std::vector<std::future<Result<ReleaseResult>>> futures;
  for (std::size_t q = 0; q < specs.size(); ++q) {
    futures.push_back(
        session->Submit(specs[q], databases[q % databases.size()]));
  }
  std::vector<Vector> values;
  for (auto& f : futures) {
    Result<ReleaseResult> r = f.get();
    values.push_back(std::move(r).ValueOrDie().value);
  }
  return values;
}

TEST(SessionDeterminismTest, BatchSubmitBitIdenticalAcrossThreadCounts) {
  const std::vector<Vector> serial = RunBatch(/*num_threads=*/1, /*seed=*/42);
  const std::vector<Vector> parallel = RunBatch(/*num_threads=*/8, /*seed=*/42);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].size(), parallel[i].size()) << "query " << i;
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      EXPECT_EQ(serial[i][j], parallel[i][j])  // Bit-identical, not approx.
          << "query " << i << " coordinate " << j;
    }
  }
  // A different seed gives a different noise stream.
  const std::vector<Vector> reseeded = RunBatch(/*num_threads=*/1, /*seed=*/43);
  bool any_difference = false;
  for (std::size_t i = 0; i < serial.size() && !any_difference; ++i) {
    for (std::size_t j = 0; j < serial[i].size(); ++j) {
      if (serial[i][j] != reseeded[i][j]) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

// ---------------------------------------------------------- async plumbing --

TEST(SessionTest, DefaultSessionsGetDistinctNoiseStreams) {
  // Two sessions releasing the same value from the same stream would let
  // an observer cancel the noise; unset seeds must never collide.
  auto engine = LaplaceEngine();
  const ReleaseResult a =
      engine->CreateSession()->Release(QuerySpec::Sum(1.0), kData).ValueOrDie();
  const ReleaseResult b =
      engine->CreateSession()->Release(QuerySpec::Sum(1.0), kData).ValueOrDie();
  EXPECT_NE(a.value[0], b.value[0]);
  // Pinning the seed restores reproducibility.
  SessionOptions pinned;
  pinned.seed = 5;
  const ReleaseResult c =
      engine->CreateSession(pinned)->Release(QuerySpec::Sum(1.0), kData)
          .ValueOrDie();
  const ReleaseResult d =
      engine->CreateSession(pinned)->Release(QuerySpec::Sum(1.0), kData)
          .ValueOrDie();
  EXPECT_EQ(c.value[0], d.value[0]);
}

TEST(SessionTest, InapplicablePlanRefusedWithoutCharging) {
  // GK16 on a wide class analyzes fine but the plan is inapplicable; the
  // session must refuse at charge time, not burn budget on a release that
  // can never produce output.
  const auto cls = BinaryChainIntervalClass::Make(0.1, 0.9).ValueOrDie();
  EngineOptions options;
  options.mechanism = MechanismKind::kGk16;
  auto engine =
      PrivacyEngine::Create(
          ModelSpec::ChainClassFreeInitial(cls.TransitionGrid(0.1), 50),
          options)
          .ValueOrDie();
  SessionOptions session_options;
  session_options.epsilon_budget = 5.0;
  auto session = engine->CreateSession(session_options);
  const StateSequence data(50, 0);
  for (int k = 0; k < 3; ++k) {
    const auto refused = session->Release(QuerySpec::Mean(1.0), data);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  }
  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
}

TEST(SessionTest, InvalidSpecFailsTheFutureWithoutCharging) {
  auto engine = LaplaceEngine();
  auto session = engine->CreateSession();
  QuerySpec broken;
  broken.kind = QueryKind::kCustomScalar;
  broken.name = "no-body";
  auto future = session->Submit(broken, kData);
  const Result<ReleaseResult> r = future.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(session->num_releases(), 0u);
}

TEST(SessionTest, ReleaseResultCarriesAccountingFacts) {
  auto engine = LaplaceEngine();
  auto session = engine->CreateSession();
  const ReleaseResult first =
      session->Release(QuerySpec::Sum(2.0), kData).ValueOrDie();
  EXPECT_EQ(first.mechanism, MechanismKind::kLaplaceDp);
  EXPECT_DOUBLE_EQ(first.epsilon, 2.0);
  EXPECT_DOUBLE_EQ(first.sigma, 0.5);  // sensitivity 1 / epsilon 2.
  EXPECT_EQ(first.ticket, 0u);
  const ReleaseResult second =
      session->Release(QuerySpec::Sum(2.0), kData).ValueOrDie();
  EXPECT_EQ(second.ticket, 1u);
}

// ----------------------------------------------------- sliding windows --

std::unique_ptr<PrivacyEngine> ChainEngine(std::size_t length) {
  return PrivacyEngine::Create(
             ModelSpec::ChainClass({TestChain(0.8, 0.7)}, length))
      .ValueOrDie();
}

TEST(SessionWindowTest, SuffixWindowQueriesTheLastObservations) {
  auto engine = ChainEngine(12);
  SessionOptions options;
  options.seed = 7;
  auto session = engine->CreateSession(options);
  // 12 observations with 7 ones; the last 4 are all ones, so at a huge
  // epsilon (tiny noise) the windowed mean must be ~1 while the full mean
  // is ~7/12.
  const StateSequence data{0, 1, 0, 0, 1, 0, 1, 0, 1, 1, 1, 1};
  const double eps = 1e9;
  const ReleaseResult full =
      session->Release(QuerySpec::Mean(eps), data).ValueOrDie();
  const ReleaseResult window =
      session->Release(QuerySpec::Mean(eps), data, DataWindow::Last(4))
          .ValueOrDie();
  EXPECT_NEAR(full.value[0], 7.0 / 12.0, 1e-6);
  EXPECT_NEAR(window.value[0], 1.0, 1e-6);
  // Range windows address any contiguous slice.
  const ReleaseResult range =
      session->Release(QuerySpec::Mean(eps), data, DataWindow::Range(0, 4))
          .ValueOrDie();
  EXPECT_NEAR(range.value[0], 1.0 / 4.0, 1e-6);
  // All three releases ledger together (same plan, same active quilt).
  EXPECT_EQ(session->num_releases(), 3u);
}

TEST(SessionWindowTest, WindowCompilesAtWindowSensitivity) {
  auto engine = ChainEngine(100);
  // The mean over a 10-wide window is (k-1)/10-Lipschitz in each in-window
  // record — 10x the full-record constant; the engine must derive it from
  // the window, or window releases would be under-noised.
  const auto full = engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  const auto windowed = engine->Compile(QuerySpec::Mean(1.0), 10).ValueOrDie();
  EXPECT_DOUBLE_EQ(full.query.lipschitz, 1.0 / 100.0);
  EXPECT_DOUBLE_EQ(windowed.query.lipschitz, 1.0 / 10.0);
  // Same plan serves both (the window changes the query, not the model).
  EXPECT_EQ(full.plan.get(), windowed.plan.get());
}

TEST(SessionWindowTest, WindowKeyCannotCollideWithCustomQueryNames) {
  // Regression: the compiled-query key for (custom query "f", window 5)
  // must differ from the full-record key of a custom query NAMED "f@w5" —
  // a suffix-style key made them equal, serving the wrong query body.
  auto engine = ChainEngine(10);
  const auto suffix_named = engine->Compile(
      QuerySpec::CustomScalar("f@w5", [](const StateSequence&) { return 1.0; },
                              /*lipschitz=*/1.0, /*epsilon=*/1.0));
  ASSERT_TRUE(suffix_named.ok());
  const auto windowed = engine->Compile(
      QuerySpec::CustomScalar("f", [](const StateSequence&) { return 2.0; },
                              /*lipschitz=*/1.0, /*epsilon=*/1.0),
      /*window_length=*/5);
  ASSERT_TRUE(windowed.ok());
  const StateSequence data(5, 0);
  EXPECT_DOUBLE_EQ(suffix_named.ValueOrDie().query.fn(data)[0], 1.0);
  EXPECT_DOUBLE_EQ(windowed.ValueOrDie().query.fn(data)[0], 2.0);
}

TEST(SessionWindowTest, InvalidWindowsRefusedWithoutCharging) {
  auto engine = ChainEngine(10);
  SessionOptions options;
  options.epsilon_budget = 5.0;
  auto session = engine->CreateSession(options);
  const StateSequence data(10, 1);
  for (const DataWindow& bad :
       {DataWindow::Last(11), DataWindow::Last(0), DataWindow::Range(10, 1),
        DataWindow::Range(4, 7)}) {
    const auto refused = session->Release(QuerySpec::Mean(1.0), data, bad);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
    auto future = session->Submit(QuerySpec::Mean(1.0), data, bad);
    EXPECT_FALSE(future.get().ok());
  }
  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
}

TEST(SessionWindowTest, AsyncWindowSubmitMatchesSyncRelease) {
  auto engine = ChainEngine(20);
  SessionOptions options;
  options.seed = 42;
  const StateSequence data{0, 0, 1, 1, 0, 1, 0, 1, 1, 0,
                           1, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  const ReleaseResult sync =
      engine->CreateSession(options)
          ->Release(QuerySpec::Mean(1.0), data, DataWindow::Last(8))
          .ValueOrDie();
  const ReleaseResult async =
      engine->CreateSession(options)
          ->Submit(QuerySpec::Mean(1.0), data, DataWindow::Last(8))
          .get()
          .ValueOrDie();
  // Same seed, same ticket, same window: bit-identical releases.
  EXPECT_EQ(sync.value[0], async.value[0]);
  EXPECT_EQ(sync.epsilon, async.epsilon);
}

TEST(SessionTest, SubmitBatchManyQueriesOneDatabase) {
  auto engine = LaplaceEngine();
  auto session = engine->CreateSession();
  std::vector<QuerySpec> specs(10, QuerySpec::Sum(1.0));
  auto futures = session->SubmitBatch(specs, kData);
  ASSERT_EQ(futures.size(), 10u);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(session->num_releases(), 10u);
}

TEST(SessionTest, SubmitBatchOneQueryManyDatabases) {
  auto engine = LaplaceEngine();
  auto session = engine->CreateSession();
  std::vector<StateSequence> batch(7, kData);
  auto futures = session->SubmitBatch(QuerySpec::Sum(1.0), batch);
  ASSERT_EQ(futures.size(), 7u);
  for (auto& f : futures) EXPECT_TRUE(f.get().ok());
  EXPECT_EQ(session->num_releases(), 7u);
}

}  // namespace
}  // namespace pf
