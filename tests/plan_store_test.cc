// Warm-restart plan snapshots: wire-format round-trips are bit-identical,
// corrupt snapshots are rejected whole, and a restored engine serves cache
// hits / extends appends exactly like the engine that saved them.
#include "pufferfish/plan_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/fingerprint.h"
#include "engine/engine.h"
#include "graphical/bayesian_network.h"
#include "graphical/markov_chain.h"
#include "pufferfish/mechanism.h"

namespace pf {
namespace {

MarkovChain TestChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

// A cache holding one chain plan (exercises active_quilt + MemoryStats),
// one network plan (exercises the per-node QuiltScore vector), and one
// trivial Laplace plan.
AnalysisCache& PopulatedCache() {
  static auto* cache = [] {
    auto* c = new AnalysisCache();
    const MqmExactUnified exact({TestChain(0.8, 0.7)}, 50);
    c->GetOrAnalyze(exact, 1.0).ValueOrDie();
    const MarkovChain chain = TestChain(0.8, 0.7);
    const MqmGeneralUnified general(
        {BayesianNetwork::FromMarkovChain(chain.initial(), chain.transition(),
                                          8)
             .ValueOrDie()});
    c->GetOrAnalyze(general, 1.0).ValueOrDie();
    const LaplaceDpUnified laplace(2.0);
    c->GetOrAnalyze(laplace, 0.5).ValueOrDie();
    return c;
  }();
  return *cache;
}

void ExpectQuiltEq(const MarkovQuilt& got, const MarkovQuilt& want) {
  EXPECT_EQ(got.target, want.target);
  EXPECT_EQ(got.quilt, want.quilt);
  EXPECT_EQ(got.nearby_count, want.nearby_count);
  EXPECT_EQ(got.nearby, want.nearby);
  EXPECT_EQ(got.remote, want.remote);
}

void ExpectPlanBitIdentical(const MechanismPlan& got,
                            const MechanismPlan& want) {
  EXPECT_EQ(got.kind, want.kind);
  EXPECT_EQ(DoubleBits(got.epsilon), DoubleBits(want.epsilon));
  EXPECT_EQ(DoubleBits(got.sigma), DoubleBits(want.sigma));
  EXPECT_EQ(got.applicable, want.applicable);
  EXPECT_EQ(DoubleBits(got.chain.sigma_max), DoubleBits(want.chain.sigma_max));
  EXPECT_EQ(got.chain.worst_node, want.chain.worst_node);
  ExpectQuiltEq(got.chain.active_quilt, want.chain.active_quilt);
  EXPECT_EQ(DoubleBits(got.chain.influence), DoubleBits(want.chain.influence));
  EXPECT_EQ(got.chain.used_stationary_shortcut,
            want.chain.used_stationary_shortcut);
  EXPECT_EQ(got.chain.total_nodes, want.chain.total_nodes);
  EXPECT_EQ(got.chain.scored_nodes, want.chain.scored_nodes);
  EXPECT_EQ(got.chain.memory.peak_bytes, want.chain.memory.peak_bytes);
  EXPECT_EQ(got.chain.memory.arena_retained_bytes,
            want.chain.memory.arena_retained_bytes);
  EXPECT_EQ(got.chain.memory.mallocs, want.chain.memory.mallocs);
  EXPECT_EQ(DoubleBits(got.mqm.sigma_max), DoubleBits(want.mqm.sigma_max));
  EXPECT_EQ(got.mqm.worst_node, want.mqm.worst_node);
  ASSERT_EQ(got.mqm.active.size(), want.mqm.active.size());
  for (std::size_t i = 0; i < got.mqm.active.size(); ++i) {
    ExpectQuiltEq(got.mqm.active[i].quilt, want.mqm.active[i].quilt);
    EXPECT_EQ(DoubleBits(got.mqm.active[i].influence),
              DoubleBits(want.mqm.active[i].influence));
    EXPECT_EQ(DoubleBits(got.mqm.active[i].score),
              DoubleBits(want.mqm.active[i].score));
  }
  EXPECT_EQ(got.mqm.total_nodes, want.mqm.total_nodes);
  EXPECT_EQ(got.mqm.scored_nodes, want.mqm.scored_nodes);
  EXPECT_EQ(got.mqm.induced_width, want.mqm.induced_width);
  EXPECT_EQ(got.mqm.treewidth_bound, want.mqm.treewidth_bound);
  EXPECT_EQ(DoubleBits(got.gk16.nu), DoubleBits(want.gk16.nu));
  EXPECT_EQ(DoubleBits(got.gk16.spectral_norm),
            DoubleBits(want.gk16.spectral_norm));
  EXPECT_EQ(got.gk16.applicable, want.gk16.applicable);
  EXPECT_EQ(DoubleBits(got.gk16.sigma), DoubleBits(want.gk16.sigma));
  EXPECT_EQ(DoubleBits(got.wasserstein_w), DoubleBits(want.wasserstein_w));
}

TEST(PlanStoreTest, RoundTripIsBitIdentical) {
  const std::vector<CachedPlan> entries = PopulatedCache().ExportPlans();
  ASSERT_EQ(entries.size(), 3u);
  const std::string bytes = EncodePlanSnapshot(entries);
  const std::vector<CachedPlan> decoded =
      DecodePlanSnapshot(bytes).ValueOrDie();
  ASSERT_EQ(decoded.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(decoded[i].fingerprint, entries[i].fingerprint);
    EXPECT_EQ(decoded[i].epsilon_bits, entries[i].epsilon_bits);
    EXPECT_EQ(decoded[i].kind, entries[i].kind);
    ExpectPlanBitIdentical(*decoded[i].plan, *entries[i].plan);
  }
}

TEST(PlanStoreTest, RestoredPlansStartWithFreshHitCounters) {
  const std::vector<CachedPlan> entries = PopulatedCache().ExportPlans();
  const std::vector<CachedPlan> decoded =
      DecodePlanSnapshot(EncodePlanSnapshot(entries)).ValueOrDie();
  for (const CachedPlan& entry : decoded) {
    EXPECT_EQ(entry.plan->cache_hit_count(), 0u);
  }
}

TEST(PlanStoreTest, EmptySnapshotRoundTrips) {
  const std::string bytes = EncodePlanSnapshot({});
  EXPECT_TRUE(DecodePlanSnapshot(bytes).ValueOrDie().empty());
}

TEST(PlanStoreTest, TruncationIsRejected) {
  const std::string bytes = EncodePlanSnapshot(PopulatedCache().ExportPlans());
  // Every proper prefix must fail — never parse to a partial plan set.
  for (const std::size_t len :
       {bytes.size() - 1, bytes.size() - 8, bytes.size() / 2,
        std::size_t{12}, std::size_t{0}}) {
    const auto r = DecodePlanSnapshot(bytes.substr(0, len));
    ASSERT_FALSE(r.ok()) << "prefix of " << len << " bytes parsed";
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PlanStoreTest, EveryFlippedBitIsRejected) {
  const std::string bytes = EncodePlanSnapshot(PopulatedCache().ExportPlans());
  // Flip one bit at a sample of positions across the whole file (header,
  // payload, checksum); the checksum must catch each one.
  for (std::size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x10);
    EXPECT_FALSE(DecodePlanSnapshot(corrupt).ok())
        << "bit flip at byte " << pos << " parsed";
  }
}

TEST(PlanStoreTest, VersionTagMismatchIsRejected) {
  std::string bytes = EncodePlanSnapshot(PopulatedCache().ExportPlans());
  bytes[7] = '9';  // "PFPLAN09": a future format version.
  const auto r = DecodePlanSnapshot(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(PlanStoreTest, TrailingGarbageIsRejected) {
  std::string bytes = EncodePlanSnapshot(PopulatedCache().ExportPlans());
  bytes.append(8, '\0');
  EXPECT_FALSE(DecodePlanSnapshot(bytes).ok());
}

TEST(PlanStoreTest, SaveLoadFileRoundTripAndOverwrite) {
  const std::string path = testing::TempDir() + "/pf_plan_store_test.snapshot";
  const std::vector<CachedPlan> entries = PopulatedCache().ExportPlans();
  ASSERT_TRUE(SavePlanSnapshot(path, entries).ok());
  EXPECT_EQ(LoadPlanSnapshot(path).ValueOrDie().size(), entries.size());
  // Atomic overwrite: saving a smaller snapshot over the larger one leaves
  // exactly the new contents (no stale tail from the previous file).
  ASSERT_TRUE(SavePlanSnapshot(path, {entries[0]}).ok());
  EXPECT_EQ(LoadPlanSnapshot(path).ValueOrDie().size(), 1u);
  std::remove(path.c_str());
}

TEST(PlanStoreTest, LoadMissingFileIsNotFound) {
  const auto r =
      LoadPlanSnapshot(testing::TempDir() + "/pf_no_such_snapshot.bin");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(PlanStoreTest, ImportSkipsResidentKeysAndNullPlans) {
  const std::vector<CachedPlan> entries = PopulatedCache().ExportPlans();
  AnalysisCache cache;
  EXPECT_EQ(cache.ImportPlans(entries), entries.size());
  // Re-importing the same keys inserts nothing.
  EXPECT_EQ(cache.ImportPlans(entries), 0u);
  CachedPlan null_entry;
  null_entry.fingerprint = 12345;
  EXPECT_EQ(cache.ImportPlans({null_entry}), 0u);
  EXPECT_EQ(cache.size(), entries.size());
}

// ---------------------------------------------------- engine warm restart --

TEST(PlanStoreTest, EngineWarmRestartServesLoadedPlans) {
  const std::string path = testing::TempDir() + "/pf_engine_restart.snapshot";
  const ModelSpec model = ModelSpec::ChainClass({TestChain(0.8, 0.7)}, 60);
  auto saver = PrivacyEngine::Create(model).ValueOrDie();
  const double cold_sigma =
      saver->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
  ASSERT_TRUE(saver->SaveAnalyses(path).ok());

  auto restored = PrivacyEngine::Create(model).ValueOrDie();
  EXPECT_GE(restored->LoadAnalyses(path).ValueOrDie(), 1u);
  const double warm_sigma =
      restored->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
  EXPECT_EQ(DoubleBits(warm_sigma), DoubleBits(cold_sigma));
  // The compile was a cache hit — the loaded plan served it, no analysis.
  EXPECT_EQ(restored->cache_stats().hits, 1u);
  EXPECT_EQ(restored->cache_stats().misses, 0u);
  std::remove(path.c_str());
}

TEST(PlanStoreTest, CorruptSnapshotLeavesEngineColdButCorrect) {
  const std::string path = testing::TempDir() + "/pf_corrupt.snapshot";
  const ModelSpec model = ModelSpec::ChainClass({TestChain(0.8, 0.7)}, 60);
  auto saver = PrivacyEngine::Create(model).ValueOrDie();
  (void)saver->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  ASSERT_TRUE(saver->SaveAnalyses(path).ok());
  // Corrupt the file on disk.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 40, SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  auto restored = PrivacyEngine::Create(model).ValueOrDie();
  EXPECT_FALSE(restored->LoadAnalyses(path).ok());  // Rejected whole...
  const auto compiled = restored->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  // ...and the engine falls back to a cold analysis with the same answer.
  EXPECT_EQ(DoubleBits(compiled.plan->sigma),
            DoubleBits(saver->Compile(QuerySpec::Mean(1.0))
                           .ValueOrDie()
                           .plan->sigma));
  EXPECT_EQ(restored->cache_stats().misses, 1u);
  std::remove(path.c_str());
}

TEST(PlanStoreTest, LoadThenAppendContinuesBitIdenticallyToCold) {
  const std::string path = testing::TempDir() + "/pf_append.snapshot";
  const std::vector<MarkovChain> thetas{TestChain(0.8, 0.7)};
  auto saver =
      PrivacyEngine::Create(ModelSpec::ChainClass(thetas, 60)).ValueOrDie();
  (void)saver->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  ASSERT_TRUE(saver->SaveAnalyses(path).ok());

  // Restart, restore, and keep appending: the first append re-seeds the
  // resumable analysis cold (scan state is not persisted), later appends
  // extend it incrementally.
  auto restored =
      PrivacyEngine::Create(ModelSpec::ChainClass(thetas, 60)).ValueOrDie();
  ASSERT_GE(restored->LoadAnalyses(path).ValueOrDie(), 1u);
  ASSERT_TRUE(restored->AppendObservations(5).ok());
  const double at65 =
      restored->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
  ASSERT_TRUE(restored->AppendObservations(5).ok());
  const double at70 =
      restored->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
  EXPECT_GE(restored->cache_stats().extensions, 1u);

  // Cold references at the appended lengths.
  auto cold65 =
      PrivacyEngine::Create(ModelSpec::ChainClass(thetas, 65)).ValueOrDie();
  auto cold70 =
      PrivacyEngine::Create(ModelSpec::ChainClass(thetas, 70)).ValueOrDie();
  EXPECT_EQ(DoubleBits(at65),
            DoubleBits(
                cold65->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma));
  EXPECT_EQ(DoubleBits(at70),
            DoubleBits(
                cold70->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pf
