#include "common/status.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad epsilon");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad epsilon");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad epsilon");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ResourceExhausted("x").ToString(),
            "ResourceExhausted: x");
  EXPECT_EQ(Status::NumericalError("x").code(), StatusCode::kNumericalError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::DeadlineExceeded("x").ToString(), "DeadlineExceeded: x");
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::Unavailable("x").ToString(), "Unavailable: x");
}

TEST(StatusTest, WithContextChainsMessagesAndKeepsTheCode) {
  const Status root = Status::InvalidArgument("checksum mismatch");
  const Status chained = root.WithContext("plan snapshot");
  EXPECT_EQ(chained.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(chained.message(), "plan snapshot: checksum mismatch");
  // Chains compose outward: each layer prepends its own context.
  const Status twice = chained.WithContext("warm-restart load");
  EXPECT_EQ(twice.message(),
            "warm-restart load: plan snapshot: checksum mismatch");
  EXPECT_EQ(twice.code(), StatusCode::kInvalidArgument);
}

TEST(StatusTest, WithContextOnOkIsANoOp) {
  const Status ok = Status::OK().WithContext("ignored");
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.ValueOr(0), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  PF_ASSIGN_OR_RETURN(int h, Half(x));
  PF_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(2).ok());
  EXPECT_FALSE(Quarter(3).ok());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::OutOfRange("negative");
  return Status::OK();
}

Status Chain(int x) {
  PF_RETURN_NOT_OK(FailIfNegative(x));
  PF_RETURN_NOT_OK(FailIfNegative(x - 10));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Chain(15).ok());
  EXPECT_FALSE(Chain(5).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

}  // namespace
}  // namespace pf
