#include "dist/simplex.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(SimplexTest, SimpleEqualityLp) {
  // min x0 + 2 x1  s.t.  x0 + x1 = 1, x >= 0  ->  x = (1, 0), obj 1.
  Matrix a(1, 2, 1.0);
  const Result<LpSolution> sol = SolveStandardFormLp(a, {1.0}, {1.0, 2.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.value().x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.value().x[1], 0.0, 1e-9);
}

TEST(SimplexTest, MaximizationViaNegation) {
  // max x0 s.t. x0 + x1 = 2 -> min -x0 -> x0 = 2.
  Matrix a(1, 2, 1.0);
  const Result<LpSolution> sol = SolveStandardFormLp(a, {2.0}, {-1.0, 0.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.value().objective, -2.0, 1e-9);
}

TEST(SimplexTest, TwoConstraints) {
  // min x0 + x1 + x2 s.t. x0 + x1 = 1, x1 + x2 = 1 -> x1 = 1 optimal, obj 1.
  Matrix a{{1.0, 1.0, 0.0}, {0.0, 1.0, 1.0}};
  const Result<LpSolution> sol =
      SolveStandardFormLp(a, {1.0, 1.0}, {1.0, 1.0, 1.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.value().x[1], 1.0, 1e-9);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x0 = 1 and x0 = 2 cannot both hold.
  Matrix a{{1.0}, {1.0}};
  const Result<LpSolution> sol = SolveStandardFormLp(a, {1.0, 2.0}, {1.0});
  EXPECT_FALSE(sol.ok());
  EXPECT_EQ(sol.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // -x0 = -3 -> x0 = 3.
  Matrix a(1, 1, -1.0);
  const Result<LpSolution> sol = SolveStandardFormLp(a, {-3.0}, {1.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().x[0], 3.0, 1e-9);
}

TEST(SimplexTest, RedundantConstraintHandled) {
  // Duplicate rows: x0 + x1 = 1 twice.
  Matrix a{{1.0, 1.0}, {1.0, 1.0}};
  const Result<LpSolution> sol =
      SolveStandardFormLp(a, {1.0, 1.0}, {2.0, 1.0});
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol.value().objective, 1.0, 1e-9);
}

TEST(SimplexTest, FeasiblePointTransportPolytope) {
  // Coupling of (0.5, 0.5) and (0.25, 0.75) with all four cells allowed:
  // row sums and column sums must match.
  Matrix a(4, 4, 0.0);
  // Variables: g00 g01 g10 g11. Rows: row0, row1, col0, col1.
  a(0, 0) = a(0, 1) = 1.0;
  a(1, 2) = a(1, 3) = 1.0;
  a(2, 0) = a(2, 2) = 1.0;
  a(3, 1) = a(3, 3) = 1.0;
  const Result<Vector> x = FindFeasiblePoint(a, {0.5, 0.5, 0.25, 0.75});
  ASSERT_TRUE(x.ok());
  const Vector& g = x.value();
  EXPECT_NEAR(g[0] + g[1], 0.5, 1e-9);
  EXPECT_NEAR(g[2] + g[3], 0.5, 1e-9);
  EXPECT_NEAR(g[0] + g[2], 0.25, 1e-9);
  EXPECT_NEAR(g[1] + g[3], 0.75, 1e-9);
  for (double v : g) EXPECT_GE(v, -1e-9);
}

TEST(SimplexTest, FeasiblePointInfeasible) {
  // x0 = 1, x0 = 0.
  Matrix a{{1.0}, {1.0}};
  const Result<Vector> x = FindFeasiblePoint(a, {1.0, 0.0});
  EXPECT_FALSE(x.ok());
}

TEST(SimplexTest, DimensionMismatchRejected) {
  Matrix a(1, 2, 1.0);
  EXPECT_FALSE(SolveStandardFormLp(a, {1.0, 2.0}, {1.0, 1.0}).ok());
  EXPECT_FALSE(SolveStandardFormLp(a, {1.0}, {1.0}).ok());
}

}  // namespace
}  // namespace pf
