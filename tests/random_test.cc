#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pf {
namespace {

TEST(RandomTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RandomTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RandomTest, LaplaceMeanAndScale) {
  Rng rng(7);
  const double scale = 2.5;
  double sum = 0.0, abs_sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(scale);
    sum += x;
    abs_sum += std::fabs(x);
  }
  // E[X] = 0, E[|X|] = scale.
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(abs_sum / n, scale, 0.05);
}

TEST(RandomTest, LaplaceZeroScaleIsZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.Laplace(0.0), 0.0);
}

// Regression: Uniform() can return exactly 0.0, and the inverse CDF maps
// the boundary draw to log(0) = -infinity — an infinite released noise
// value. Laplace() must redraw past the boundary; the inverse-CDF map must
// be finite everywhere on its open-interval domain.
TEST(RandomTest, LaplaceInverseCdfFiniteOnOpenInterval) {
  const double scale = 1.5;
  // Every draw — including the boundary that used to map to log(0) =
  // -infinity and its representable neighbors — yields finite noise.
  for (const double u :
       {0.0, std::nextafter(0.0, 1.0), std::numeric_limits<double>::min(),
        std::numeric_limits<double>::denorm_min(), 1e-300, 1e-17,
        std::exp2(-53.0), 0.25, 0.5, 0.75, 1.0 - 1e-16,
        std::nextafter(1.0, 0.0)}) {
    const double x = LaplaceInverseCdf(u, scale);
    EXPECT_TRUE(std::isfinite(x)) << "u = " << u << " -> " << x;
  }
  // Median and symmetry about it.
  EXPECT_DOUBLE_EQ(LaplaceInverseCdf(0.5, scale), 0.0);
  EXPECT_DOUBLE_EQ(LaplaceInverseCdf(0.25, scale),
                   -LaplaceInverseCdf(0.75, scale));
}

TEST(RandomTest, LaplaceDrawsAreAlwaysFinite) {
  Rng rng(123);
  for (int i = 0; i < 200000; ++i) {
    EXPECT_TRUE(std::isfinite(rng.Laplace(3.0)));
  }
}

TEST(RandomTest, CategoricalFrequencies) {
  Rng rng(11);
  const Vector probs = {0.2, 0.5, 0.3};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(probs)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(RandomTest, CategoricalDegenerate) {
  Rng rng(5);
  const Vector probs = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(probs), 1u);
}

// Regression: an all-zero weight vector used to return index 0 silently
// (r = Uniform() * 0 satisfied r <= 0 immediately) and a NaN-poisoned one
// returned the last index; both must now be rejected explicitly.
TEST(RandomTest, CategoricalRejectsDegenerateWeights) {
  Rng rng(5);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const Vector& bad :
       {Vector{}, Vector{0.0, 0.0, 0.0}, Vector{0.2, nan, 0.3},
        Vector{0.2, -0.1, 0.9}, Vector{1.0, inf},
        Vector{1e308, 1e308, 1e308}}) {  // Finite weights, overflowing sum.
    const auto draw = rng.TryCategorical(bad);
    ASSERT_FALSE(draw.ok()) << "weights of size " << bad.size();
    EXPECT_EQ(draw.status().code(), StatusCode::kInvalidArgument);
  }
  // Valid weights still draw, and rejected calls consumed no randomness:
  // the next accepted draw matches a fresh generator with the same seed.
  Rng fresh(5);
  EXPECT_EQ(rng.TryCategorical({0.5, 0.5}).ValueOrDie(),
            fresh.TryCategorical({0.5, 0.5}).ValueOrDie());
}

TEST(RandomTest, UniformSimplexIsDistribution) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const Vector v = rng.UniformSimplex(4);
    EXPECT_TRUE(IsProbabilityVector(v, 1e-9));
  }
}

TEST(RandomTest, UniformSimplexMeanIsCentroid) {
  Rng rng(17);
  Vector mean(3, 0.0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Vector v = rng.UniformSimplex(3);
    for (std::size_t j = 0; j < 3; ++j) mean[j] += v[j];
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(mean[j] / n, 1.0 / 3.0, 0.01);
  }
}

TEST(RandomTest, UniformIntBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

}  // namespace
}  // namespace pf
