#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

TEST(RandomTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RandomTest, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RandomTest, LaplaceMeanAndScale) {
  Rng rng(7);
  const double scale = 2.5;
  double sum = 0.0, abs_sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Laplace(scale);
    sum += x;
    abs_sum += std::fabs(x);
  }
  // E[X] = 0, E[|X|] = scale.
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(abs_sum / n, scale, 0.05);
}

TEST(RandomTest, LaplaceZeroScaleIsZero) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(rng.Laplace(0.0), 0.0);
}

TEST(RandomTest, CategoricalFrequencies) {
  Rng rng(11);
  const Vector probs = {0.2, 0.5, 0.3};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.Categorical(probs)]++;
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.01);
}

TEST(RandomTest, CategoricalDegenerate) {
  Rng rng(5);
  const Vector probs = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Categorical(probs), 1u);
}

TEST(RandomTest, UniformSimplexIsDistribution) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const Vector v = rng.UniformSimplex(4);
    EXPECT_TRUE(IsProbabilityVector(v, 1e-9));
  }
}

TEST(RandomTest, UniformSimplexMeanIsCentroid) {
  Rng rng(17);
  Vector mean(3, 0.0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const Vector v = rng.UniformSimplex(3);
    for (std::size_t j = 0; j < 3; ++j) mean[j] += v[j];
  }
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(mean[j] / n, 1.0 / 3.0, 0.01);
  }
}

TEST(RandomTest, UniformIntBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(7), 7u);
  }
}

}  // namespace
}  // namespace pf
