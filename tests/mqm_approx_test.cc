#include "pufferfish/mqm_approx.h"

#include <gtest/gtest.h>

#include <cmath>

#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

MarkovChain Theta1() {
  return MarkovChain::Make({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}})
      .ValueOrDie();
}

ChainClassSummary Theta1Summary() {
  // pi = (0.8, 0.2), reversible, second eigenvalue 0.5 -> g = 2 * 0.5 = 1.
  ChainClassSummary s;
  s.pi_min = 0.2;
  s.eigengap = 1.0;
  s.all_reversible = true;
  return s;
}

TEST(MqmApproxTest, SummaryFromChainsMatchesHandValues) {
  const ChainClassSummary s = SummarizeChainClass({Theta1()}).ValueOrDie();
  EXPECT_NEAR(s.pi_min, 0.2, 1e-9);
  EXPECT_NEAR(s.eigengap, 1.0, 1e-7);
  EXPECT_TRUE(s.all_reversible);
}

TEST(MqmApproxTest, InfluenceBoundFormula) {
  const ChainClassSummary s = Theta1Summary();
  // Two-sided quilt with a = b = 6: Delta = exp(-3)/0.2 = 0.2489.
  const MarkovQuilt q = ChainQuilt(100, 50, 6, 6).ValueOrDie();
  const double delta = std::exp(-3.0) / 0.2;
  const double expected = std::log((1 + delta) / (1 - delta)) * 3.0;
  EXPECT_NEAR(ChainQuiltInfluenceBound(s, q).ValueOrDie(), expected, 1e-9);
}

TEST(MqmApproxTest, InfluenceBoundSidesWeightedCorrectly) {
  const ChainClassSummary s = Theta1Summary();
  const double left =
      ChainQuiltInfluenceBound(s, ChainQuilt(100, 50, 8, 0).ValueOrDie())
          .ValueOrDie();
  const double right =
      ChainQuiltInfluenceBound(s, ChainQuilt(100, 50, 0, 8).ValueOrDie())
          .ValueOrDie();
  // The past side carries the doubled factor (Lemma C.1): left = 2 * right.
  EXPECT_NEAR(left, 2.0 * right, 1e-9);
  const double both =
      ChainQuiltInfluenceBound(s, ChainQuilt(100, 50, 8, 8).ValueOrDie())
          .ValueOrDie();
  EXPECT_NEAR(both, left + right, 1e-9);
}

TEST(MqmApproxTest, InfluenceBoundInfiniteTooClose) {
  // Delta >= 1 when t <= 2 log(1/pi_min)/g = 2 log 5 ~ 3.2.
  const ChainClassSummary s = Theta1Summary();
  const double e =
      ChainQuiltInfluenceBound(s, ChainQuilt(100, 50, 1, 1).ValueOrDie())
          .ValueOrDie();
  EXPECT_TRUE(std::isinf(e));
}

TEST(MqmApproxTest, TrivialQuiltZeroInfluence) {
  EXPECT_DOUBLE_EQ(
      ChainQuiltInfluenceBound(Theta1Summary(), TrivialQuilt(0, 10)).ValueOrDie(),
      0.0);
}

TEST(MqmApproxTest, BoundDominatesExactInfluence) {
  // The Lemma 4.8 bound must upper-bound the exact Eq. (5) influence.
  const MarkovChain theta = Theta1();
  const ChainClassSummary s = SummarizeChainClass({theta}).ValueOrDie();
  for (int a = 4; a <= 20; a += 4) {
    for (int b = 4; b <= 20; b += 4) {
      const MarkovQuilt q = ChainQuilt(100, 50, a, b).ValueOrDie();
      const double exact = ChainQuiltInfluenceExact(theta, 100, q).ValueOrDie();
      const double bound = ChainQuiltInfluenceBound(s, q).ValueOrDie();
      EXPECT_GE(bound + 1e-12, exact) << "a=" << a << " b=" << b;
    }
  }
}

TEST(MqmApproxTest, AStarFormula) {
  const ChainClassSummary s = Theta1Summary();
  const double eps = 1.0;
  const double ratio = (std::exp(eps / 6.0) + 1.0) / (std::exp(eps / 6.0) - 1.0);
  const double expected = 2.0 * std::ceil(std::log(ratio / 0.2) / 1.0);
  EXPECT_EQ(LemmaFourNineAStar(s, eps).ValueOrDie(),
            static_cast<std::size_t>(expected));
}

TEST(MqmApproxTest, LongChainUsesMiddleNodeShortcut) {
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 0;  // Auto (Lemma 4.9).
  const ChainMqmResult r =
      MqmApproxAnalyze(Theta1Summary(), 5000, options).ValueOrDie();
  EXPECT_TRUE(r.used_stationary_shortcut);
  EXPECT_EQ(r.worst_node, 2500);
  EXPECT_TRUE(std::isfinite(r.sigma_max));
  EXPECT_GT(r.sigma_max, 0.0);
}

TEST(MqmApproxTest, ShortcutAgreesWithFullScan) {
  ChainMqmOptions fast;
  fast.epsilon = 1.0;
  fast.max_nearby = 0;
  ChainMqmOptions slow = fast;
  slow.allow_stationary_shortcut = false;
  const std::size_t length = 600;
  const double sigma_fast =
      MqmApproxAnalyze(Theta1Summary(), length, fast).ValueOrDie().sigma_max;
  const double sigma_slow =
      MqmApproxAnalyze(Theta1Summary(), length, slow).ValueOrDie().sigma_max;
  EXPECT_NEAR(sigma_fast, sigma_slow, 1e-9);
}

TEST(MqmApproxTest, ApproxNeverBeatsExact) {
  // MQMExact computes exact influences, so its sigma is <= MQMApprox's.
  const MarkovChain theta = Theta1();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 60;
  const double exact_sigma =
      MqmExactAnalyze({theta}, 300, options).ValueOrDie().sigma_max;
  ChainMqmOptions approx_options = options;
  approx_options.max_nearby = 0;
  const double approx_sigma =
      MqmApproxAnalyze({theta}, 300, approx_options).ValueOrDie().sigma_max;
  EXPECT_LE(exact_sigma, approx_sigma + 1e-9);
}

TEST(MqmApproxTest, SigmaDecreasesWithEpsilon) {
  ChainMqmOptions lo, hi;
  lo.epsilon = 0.2;
  hi.epsilon = 5.0;
  lo.max_nearby = hi.max_nearby = 0;
  const double sigma_lo =
      MqmApproxAnalyze(Theta1Summary(), 2000, lo).ValueOrDie().sigma_max;
  const double sigma_hi =
      MqmApproxAnalyze(Theta1Summary(), 2000, hi).ValueOrDie().sigma_max;
  EXPECT_GT(sigma_lo, sigma_hi);
}

TEST(MqmApproxTest, NoiseIndependentOfLengthForLongChains) {
  // Theorem 4.10: for long chains the scale does not grow with T.
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 0;
  const double sigma_1k =
      MqmApproxAnalyze(Theta1Summary(), 1000, options).ValueOrDie().sigma_max;
  const double sigma_100k =
      MqmApproxAnalyze(Theta1Summary(), 100000, options).ValueOrDie().sigma_max;
  EXPECT_NEAR(sigma_1k, sigma_100k, 1e-9);
}

TEST(MqmApproxTest, RejectsBadSummaries) {
  ChainClassSummary bad;
  bad.pi_min = 0.0;
  bad.eigengap = 1.0;
  ChainMqmOptions options;
  options.epsilon = 1.0;
  EXPECT_FALSE(MqmApproxAnalyze(bad, 100, options).ok());
  bad.pi_min = 0.2;
  bad.eigengap = 0.0;
  EXPECT_FALSE(MqmApproxAnalyze(bad, 100, options).ok());
}

TEST(MqmApproxTest, SummaryRejectsPeriodicChains) {
  const MarkovChain cycle =
      MarkovChain::Make({0.5, 0.5}, Matrix{{0.0, 1.0}, {1.0, 0.0}}).ValueOrDie();
  EXPECT_FALSE(SummarizeChainClass({cycle}).ok());
}

}  // namespace
}  // namespace pf
