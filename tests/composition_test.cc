#include "pufferfish/composition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

MarkovQuilt SomeQuilt() { return ChainQuilt(10, 5, 2, 2).ValueOrDie(); }

TEST(CompositionTest, EmptyAccountant) {
  CompositionAccountant acc;
  EXPECT_EQ(acc.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 0.0);
  EXPECT_TRUE(acc.ActiveQuiltsConsistent());
}

TEST(CompositionTest, LinearCompositionSameEpsilon) {
  CompositionAccountant acc;
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(acc.RecordRelease(1.0, SomeQuilt()).ok());
  }
  EXPECT_EQ(acc.num_releases(), 5u);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 5.0);  // K * epsilon (Theorem 4.4).
  EXPECT_TRUE(acc.ActiveQuiltsConsistent());
}

TEST(CompositionTest, MixedEpsilonsUseMax) {
  CompositionAccountant acc;
  ASSERT_TRUE(acc.RecordRelease(0.5, SomeQuilt()).ok());
  ASSERT_TRUE(acc.RecordRelease(2.0, SomeQuilt()).ok());
  ASSERT_TRUE(acc.RecordRelease(1.0, SomeQuilt()).ok());
  // K * max_k epsilon_k = 3 * 2.
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 6.0);
}

TEST(CompositionTest, DetectsActiveQuiltChange) {
  CompositionAccountant acc;
  ASSERT_TRUE(acc.RecordRelease(1.0, SomeQuilt()).ok());
  ASSERT_TRUE(acc.RecordRelease(1.0, ChainQuilt(10, 5, 1, 1).ValueOrDie()).ok());
  EXPECT_FALSE(acc.ActiveQuiltsConsistent());
}

TEST(CompositionTest, RejectsBadEpsilon) {
  CompositionAccountant acc;
  for (double bad : {0.0, -1.0, std::nan(""),
                     std::numeric_limits<double>::infinity()}) {
    const Status s = acc.RecordRelease(bad, SomeQuilt());
    ASSERT_FALSE(s.ok()) << "epsilon " << bad;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
  // Nothing was silently accounted: the ledger is untouched.
  EXPECT_EQ(acc.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 0.0);
  EXPECT_DOUBLE_EQ(acc.MaxEpsilon(), 0.0);
  // And a valid release afterwards accounts normally.
  ASSERT_TRUE(acc.RecordRelease(1.0, SomeQuilt()).ok());
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 1.0);
}

TEST(CompositionTest, MatchesActiveQuiltPreCheck) {
  CompositionAccountant acc;
  // Vacuously true on an empty ledger.
  EXPECT_TRUE(acc.MatchesActiveQuilt(SomeQuilt()));
  ASSERT_TRUE(acc.RecordRelease(1.0, SomeQuilt()).ok());
  EXPECT_TRUE(acc.MatchesActiveQuilt(SomeQuilt()));
  EXPECT_FALSE(acc.MatchesActiveQuilt(ChainQuilt(10, 5, 1, 1).ValueOrDie()));
  // The pre-check does not mutate the ledger.
  EXPECT_TRUE(acc.ActiveQuiltsConsistent());
  EXPECT_EQ(acc.num_releases(), 1u);
}

TEST(CompositionTest, StrictRecordRefusesMismatchWithoutAccounting) {
  CompositionAccountant acc;
  ASSERT_TRUE(acc.RecordReleaseStrict(1.0, SomeQuilt()).ok());
  ASSERT_TRUE(acc.RecordReleaseStrict(2.0, SomeQuilt()).ok());
  const Status refused =
      acc.RecordReleaseStrict(1.0, ChainQuilt(10, 5, 1, 1).ValueOrDie());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  // The refusal left the ledger untouched and consistent.
  EXPECT_EQ(acc.num_releases(), 2u);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 4.0);
  EXPECT_TRUE(acc.ActiveQuiltsConsistent());
}

TEST(CompositionTest, ResetForgetsEverything) {
  CompositionAccountant acc;
  ASSERT_TRUE(acc.RecordRelease(2.0, SomeQuilt()).ok());
  ASSERT_TRUE(
      acc.RecordRelease(1.0, ChainQuilt(10, 5, 1, 1).ValueOrDie()).ok());
  EXPECT_FALSE(acc.ActiveQuiltsConsistent());
  acc.Reset();
  EXPECT_EQ(acc.num_releases(), 0u);
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 0.0);
  EXPECT_TRUE(acc.ActiveQuiltsConsistent());
  EXPECT_TRUE(acc.MatchesActiveQuilt(ChainQuilt(10, 5, 1, 1).ValueOrDie()));
}

// The deterministic budget-admission tie rule: floating-point dust at
// exact-fit boundaries is forgiven, genuine overruns never are.
TEST(CompositionTest, ComposedBudgetAdmitsTieRule) {
  // Exact-fit ties (K * eps == B in the reals, off by ulps in doubles).
  EXPECT_TRUE(ComposedBudgetAdmits(3, 0.1, 0.3));
  EXPECT_TRUE(ComposedBudgetAdmits(7, 0.1, 0.7));
  EXPECT_TRUE(ComposedBudgetAdmits(3, 0.2, 0.6));
  EXPECT_TRUE(ComposedBudgetAdmits(7, 0.7, 4.9));
  EXPECT_TRUE(ComposedBudgetAdmits(1000000, 0.1, 100000.0));
  // One release past the tie is a genuine overrun.
  EXPECT_FALSE(ComposedBudgetAdmits(4, 0.1, 0.3));
  EXPECT_FALSE(ComposedBudgetAdmits(8, 0.1, 0.7));
  EXPECT_FALSE(ComposedBudgetAdmits(1000001, 0.1, 100000.0));
  // Tiny-but-real overruns beyond rounding dust are refused too.
  EXPECT_FALSE(ComposedBudgetAdmits(3, 0.100000001, 0.3));
  // Strictly-under fits always admit; unmetered budgets admit anything
  // finite; an infinite composed level never fits a finite budget.
  EXPECT_TRUE(ComposedBudgetAdmits(2, 0.1, 0.3));
  EXPECT_TRUE(ComposedBudgetAdmits(1u << 20, 1e6,
                                   std::numeric_limits<double>::infinity()));
  EXPECT_FALSE(
      ComposedBudgetAdmits(1, std::numeric_limits<double>::infinity(), 1.0));
}

// End-to-end: the same analysis re-run with identical inputs picks the same
// active quilt, so repeated releases compose (the Theorem 4.4 setting).
TEST(CompositionTest, RepeatedAnalysesShareActiveQuilt) {
  const MarkovChain theta =
      MarkovChain::Make({0.8, 0.2}, Matrix{{0.9, 0.1}, {0.4, 0.6}}).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 30;
  CompositionAccountant acc;
  for (int k = 0; k < 3; ++k) {
    const ChainMqmResult r = MqmExactAnalyze({theta}, 50, options).ValueOrDie();
    ASSERT_TRUE(acc.RecordRelease(options.epsilon, r.active_quilt).ok());
  }
  EXPECT_TRUE(acc.ActiveQuiltsConsistent());
  EXPECT_DOUBLE_EQ(acc.TotalEpsilon(), 3.0);
}

}  // namespace
}  // namespace pf
