#include "pufferfish/robustness.h"

#include <gtest/gtest.h>

#include <cmath>

namespace pf {
namespace {

TEST(RobustnessTest, ConditionOnSecretRenormalizes) {
  const Vector joint = {0.9, 0.05, 0.05};
  const Vector cond = ConditionOnSecret(joint, {0, 1}).ValueOrDie();
  EXPECT_NEAR(cond[0], 0.9 / 0.95, 1e-12);
  EXPECT_NEAR(cond[1], 0.05 / 0.95, 1e-12);
}

TEST(RobustnessTest, ConditionOnZeroMassFails) {
  const Vector joint = {1.0, 0.0, 0.0};
  EXPECT_FALSE(ConditionOnSecret(joint, {1, 2}).ok());
  EXPECT_FALSE(ConditionOnSecret(joint, {}).ok());
  EXPECT_FALSE(ConditionOnSecret(joint, {7}).ok());
}

// The Section 2.3 example: theta = (0.9, 0.05, 0.05),
// theta~ = (0.01, 0.95, 0.04); conditioning on the secret {D1, D2} yields
// symmetric max-divergence log 91.0962 (> the unconditioned log 90).
TEST(RobustnessTest, PaperExampleDelta) {
  const Vector theta = {0.9, 0.05, 0.05};
  const Vector tilde = {0.01, 0.95, 0.04};
  const double delta =
      CloseAdversaryDelta({theta}, tilde, {{0, 1}}).ValueOrDie();
  // Exact value log(90.947...); the paper's 91.0962 reflects its rounded
  // intermediates (0.9474/0.0104).
  EXPECT_NEAR(delta, std::log(0.9 * 0.96 / (0.95 * 0.01)), 1e-9);
  EXPECT_NEAR(delta, std::log(91.0962), 2e-3);
}

TEST(RobustnessTest, DeltaZeroWhenBeliefInClass) {
  const Vector theta = {0.5, 0.3, 0.2};
  const double delta =
      CloseAdversaryDelta({theta}, theta, {{0, 1}, {1, 2}}).ValueOrDie();
  EXPECT_NEAR(delta, 0.0, 1e-12);
}

TEST(RobustnessTest, InfTakenOverClass) {
  const Vector far = {0.98, 0.01, 0.01};
  const Vector close = {0.45, 0.3, 0.25};
  const Vector tilde = {0.5, 0.3, 0.2};
  const double delta_far =
      CloseAdversaryDelta({far}, tilde, {{0, 1}}).ValueOrDie();
  const double delta_both =
      CloseAdversaryDelta({far, close}, tilde, {{0, 1}}).ValueOrDie();
  EXPECT_LT(delta_both, delta_far);  // The closer theta wins the inf.
}

TEST(RobustnessTest, MaxTakenOverSecrets) {
  const Vector theta = {0.25, 0.25, 0.25, 0.25};
  const Vector tilde = {0.4, 0.1, 0.25, 0.25};
  const double one_secret =
      CloseAdversaryDelta({theta}, tilde, {{2, 3}}).ValueOrDie();
  const double both_secrets =
      CloseAdversaryDelta({theta}, tilde, {{2, 3}, {0, 1}}).ValueOrDie();
  EXPECT_NEAR(one_secret, 0.0, 1e-12);  // Identical on {2, 3}.
  EXPECT_GT(both_secrets, one_secret);
}

TEST(RobustnessTest, InfiniteWhenSupportsDisagree) {
  const Vector theta = {1.0, 0.0};
  const Vector tilde = {0.5, 0.5};
  const double delta = CloseAdversaryDelta({theta}, tilde, {{0, 1}}).ValueOrDie();
  EXPECT_TRUE(std::isinf(delta));
}

TEST(RobustnessTest, EffectiveEpsilon) {
  EXPECT_DOUBLE_EQ(EffectiveEpsilon(1.0, 0.25), 1.5);
  EXPECT_DOUBLE_EQ(EffectiveEpsilon(2.0, 0.0), 2.0);
}

TEST(RobustnessTest, ValidatesInputs) {
  const Vector theta = {0.5, 0.5};
  EXPECT_FALSE(CloseAdversaryDelta({}, theta, {{0, 1}}).ok());
  EXPECT_FALSE(CloseAdversaryDelta({theta}, theta, {}).ok());
  EXPECT_FALSE(CloseAdversaryDelta({theta}, {0.5, 0.6}, {{0, 1}}).ok());
  EXPECT_FALSE(CloseAdversaryDelta({{0.5, 0.25, 0.25}}, theta, {{0, 1}}).ok());
}

}  // namespace
}  // namespace pf
