#include "data/synthetic.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(SyntheticTest, SampleRespectsClassBounds) {
  const auto cls = BinaryChainIntervalClass::Make(0.3, 0.7).ValueOrDie();
  Rng rng(4);
  for (int i = 0; i < 50; ++i) {
    const auto s = SampleBinaryChainDataset(cls, 100, &rng).ValueOrDie();
    EXPECT_GE(s.p0, 0.3);
    EXPECT_LE(s.p0, 0.7);
    EXPECT_GE(s.p1, 0.3);
    EXPECT_LE(s.p1, 0.7);
    EXPECT_TRUE(IsProbabilityVector(s.initial, 1e-9));
    EXPECT_EQ(s.sequence.size(), 100u);
    for (int v : s.sequence) {
      EXPECT_TRUE(v == 0 || v == 1);
    }
  }
}

TEST(SyntheticTest, ZeroLengthRejected) {
  const auto cls = BinaryChainIntervalClass::Make(0.3, 0.7).ValueOrDie();
  Rng rng(4);
  EXPECT_FALSE(SampleBinaryChainDataset(cls, 0, &rng).ok());
}

TEST(SyntheticTest, EmpiricalFrequenciesTrackParameters) {
  // A very sticky chain should mostly stay in its start state.
  const auto cls = BinaryChainIntervalClass::Make(0.95, 0.95).ValueOrDie();
  Rng rng(10);
  const auto s = SampleBinaryChainDataset(cls, 5000, &rng).ValueOrDie();
  int switches = 0;
  for (std::size_t t = 0; t + 1 < s.sequence.size(); ++t) {
    if (s.sequence[t] != s.sequence[t + 1]) ++switches;
  }
  // Switch probability is 1 - p ~ 0.05.
  EXPECT_NEAR(switches / 5000.0, 0.05, 0.02);
}

TEST(SyntheticTest, Reproducibility) {
  const auto cls = BinaryChainIntervalClass::Make(0.2, 0.8).ValueOrDie();
  Rng a(77), b(77);
  const auto sa = SampleBinaryChainDataset(cls, 50, &a).ValueOrDie();
  const auto sb = SampleBinaryChainDataset(cls, 50, &b).ValueOrDie();
  EXPECT_EQ(sa.sequence, sb.sequence);
  EXPECT_DOUBLE_EQ(sa.p0, sb.p0);
}

}  // namespace
}  // namespace pf
