// Admission control and load shedding: the bounded executor queue
// (TryAcquire permits, Unavailable on overflow, shed -> retry -> recover),
// the session in-flight cap, the permit-before-charge ordering that keeps
// shed tickets off the epsilon ledger, and the cold-analysis shed policy
// that keeps warm traffic serving under overload.
#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <vector>

#include "engine/engine.h"
#include "engine/executor.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

MarkovChain TestChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

std::unique_ptr<PrivacyEngine> MakeEngine(EngineOptions options = {}) {
  return PrivacyEngine::Create(ModelSpec::ChainClass({TestChain(0.8, 0.7)}, 40),
                               options)
      .ValueOrDie();
}

// ------------------------------------------------------- raw executor ------

// Deterministic shed -> retry -> recover on the executor itself: permits
// held by the test stand in for queued work, so no timing is involved.
TEST(AdmissionTest, ExecutorShedsAtTheBoundAndRecovers) {
  ExecutorOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 2;
  Executor executor(options);

  auto p1 = executor.TryAcquire();
  auto p2 = executor.TryAcquire();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(executor.queue_depth(), 2u);

  // Queue full: the third acquire sheds with a typed, retryable refusal.
  auto shed = executor.TryAcquire();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("retry"), std::string::npos);

  const Executor::Stats mid = executor.stats();
  EXPECT_EQ(mid.submitted, 3u);
  EXPECT_EQ(mid.admitted, 2u);
  EXPECT_EQ(mid.shed, 1u);

  // Dropping an unused permit returns its slot; the retry then succeeds.
  { auto drop = std::move(p1).value(); }
  EXPECT_EQ(executor.queue_depth(), 1u);
  auto retried = executor.TryAcquire();
  ASSERT_TRUE(retried.ok());

  // Permits actually carry tasks: submit under the held permits and the
  // results come back.
  auto f1 = executor.Submit(std::move(p2).value(), [] { return 7; });
  auto f2 = executor.Submit(std::move(retried).value(), [] { return 35; });
  EXPECT_EQ(f1.get() + f2.get(), 42);

  const Executor::Stats end = executor.stats();
  EXPECT_EQ(end.submitted, end.admitted + end.shed);
}

TEST(AdmissionTest, UnboundedQueueNeverSheds) {
  ExecutorOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 0;  // Explicitly unbounded.
  Executor executor(options);
  std::vector<Executor::Permit> permits;
  for (int i = 0; i < 64; ++i) {
    auto permit = executor.TryAcquire();
    ASSERT_TRUE(permit.ok());
    permits.push_back(std::move(permit).value());
  }
  EXPECT_EQ(executor.stats().shed, 0u);
}

// ------------------------------------- shed never debits the ledger --------

// With the engine's queue artificially full, a session Submit is refused
// with Unavailable strictly BEFORE ChargeLocked: the epsilon ledger stays
// untouched, and the very same request succeeds once load drops.
TEST(AdmissionTest, ShedSubmitNeverDebitsBudgetAndRecovers) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 1;
  auto engine = MakeEngine(options);
  SessionOptions session_options;
  session_options.epsilon_budget = 2.0;
  session_options.seed = 11;
  auto session = engine->CreateSession(session_options);
  const auto data = std::make_shared<const StateSequence>(StateSequence(40, 1));

  // Pre-warm the plan so the shed below is purely an admission refusal.
  ASSERT_TRUE(engine->Compile(QuerySpec::Sum(1.0)).ok());

  // Occupy the only queue slot.
  auto blocker = engine->executor().TryAcquire();
  ASSERT_TRUE(blocker.ok());

  auto shed = session->Submit(QuerySpec::Sum(1.0), data);
  const auto shed_result = shed.get();
  ASSERT_FALSE(shed_result.ok());
  EXPECT_EQ(shed_result.status().code(), StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 0.0);
  EXPECT_EQ(session->num_releases(), 0u);
  EXPECT_EQ(session->in_flight(), 0u);

  // Load drops; the retry is served and only now is the budget charged.
  { auto drop = std::move(blocker).value(); }
  auto retried = session->Submit(QuerySpec::Sum(1.0), data);
  EXPECT_TRUE(retried.get().ok());
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 1.0);
  EXPECT_EQ(session->num_releases(), 1u);
}

// --------------------------------------------- session in-flight cap -------

// A blocking custom query holds a release in flight; the cap then refuses
// the next Submit pre-charge, and completions reopen admission.
TEST(AdmissionTest, InFlightCapShedsPreChargeAndReopens) {
  EngineOptions engine_options;
  engine_options.num_threads = 2;
  auto engine = MakeEngine(engine_options);
  SessionOptions session_options;
  session_options.max_in_flight = 1;
  session_options.epsilon_budget = 10.0;
  session_options.seed = 5;
  auto session = engine->CreateSession(session_options);
  const auto data = std::make_shared<const StateSequence>(StateSequence(40, 1));

  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  const QuerySpec blocking = QuerySpec::CustomScalar(
      "blocking_sum",
      [opened](const StateSequence& s) {
        opened.wait();
        double total = 0.0;
        for (int v : s) total += v;
        return total;
      },
      /*lipschitz=*/1.0, /*epsilon=*/1.0);

  auto held = session->Submit(blocking, data, RequestOptions{});
  EXPECT_EQ(session->in_flight(), 1u);

  // At the cap: refused with Unavailable, nothing charged for the refusal.
  auto refused = session->Submit(QuerySpec::Sum(1.0), data);
  const auto refused_result = refused.get();
  ASSERT_FALSE(refused_result.ok());
  EXPECT_EQ(refused_result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(refused_result.status().message().find("in-flight"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), 1.0) << "only the held release";

  gate.set_value();
  ASSERT_TRUE(held.get().ok());
  EXPECT_EQ(session->in_flight(), 0u);

  // The cap reopened: the next submit serves normally.
  auto after = session->Submit(QuerySpec::Sum(1.0), data);
  EXPECT_TRUE(after.get().ok());
  EXPECT_EQ(session->num_releases(), 2u);
}

// ------------------------------------------------ cold-analysis shed -------

// Under queue pressure, requests needing a cold sigma analysis are shed
// while warm (cached) traffic keeps serving; cold requests recover as soon
// as the queue drains.
TEST(AdmissionTest, ColdAnalysisShedsUnderLoadWhileWarmServes) {
  EngineOptions options;
  options.num_threads = 1;
  options.max_queue_depth = 8;
  options.shed_cold_queue_depth = 1;
  auto engine = MakeEngine(options);

  // Warm epsilon 1.0 while the queue is idle.
  ASSERT_TRUE(engine->Compile(QuerySpec::Sum(1.0)).ok());

  // Apply load: one occupied slot reaches the shed threshold.
  auto load = engine->executor().TryAcquire();
  ASSERT_TRUE(load.ok());

  // Warm request: served from cache, never shed.
  EXPECT_TRUE(engine->Compile(QuerySpec::Sum(1.0)).ok());

  // Cold request (new epsilon): shed with a retryable refusal.
  const auto cold = engine->Compile(QuerySpec::Sum(0.5));
  ASSERT_FALSE(cold.ok());
  EXPECT_EQ(cold.status().code(), StatusCode::kUnavailable);

  // Load drops; the same cold request now runs its analysis and serves.
  { auto drop = std::move(load).value(); }
  EXPECT_TRUE(engine->Compile(QuerySpec::Sum(0.5)).ok());
}

// RequestOptions::allow_cold_analysis = false is the caller-side fast-fail:
// only cached plans are acceptable, independent of queue depth.
TEST(AdmissionTest, AllowColdAnalysisFalseServesOnlyCachedPlans) {
  auto engine = MakeEngine();
  RequestOptions warm_only;
  warm_only.allow_cold_analysis = false;

  const auto refused = engine->Compile(QuerySpec::Sum(1.0), 0, warm_only);
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

  // Warm the plan through the normal path; the warm-only request then hits.
  ASSERT_TRUE(engine->Compile(QuerySpec::Sum(1.0)).ok());
  EXPECT_TRUE(engine->Compile(QuerySpec::Sum(1.0), 0, warm_only).ok());
}

}  // namespace
}  // namespace pf
