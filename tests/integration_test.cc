// Cross-module integration tests: the full pipelines the benchmarks run,
// shrunk to test size — simulate data, estimate the chain, compute noise
// scales with every mechanism, release, and compare utility orderings.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/gk16.h"
#include "baselines/group_dp.h"
#include "baselines/laplace_dp.h"
#include "common/histogram.h"
#include "data/activity.h"
#include "data/electricity.h"
#include "data/synthetic.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"
#include "pufferfish/query.h"

namespace pf {
namespace {

// The Section 5.2 synthetic pipeline at reduced trial count: MQMExact's
// noise is at most MQMApprox's, and both beat GroupDP for a moderate class.
TEST(IntegrationTest, SyntheticPipelineOrdering) {
  const double alpha = 0.3;
  const double epsilon = 1.0;
  const std::size_t length = 100;
  const auto cls = BinaryChainIntervalClass::Make(alpha, 1.0 - alpha).ValueOrDie();

  ChainMqmOptions exact_options;
  exact_options.epsilon = epsilon;
  exact_options.max_nearby = 60;
  const ChainMqmResult exact =
      MqmExactAnalyzeFreeInitial(cls.TransitionGrid(0.1), length, exact_options)
          .ValueOrDie();

  ChainMqmOptions approx_options;
  approx_options.epsilon = epsilon;
  approx_options.max_nearby = 0;
  const ChainMqmResult approx =
      MqmApproxAnalyze(cls.Summary(), length, approx_options).ValueOrDie();

  EXPECT_LE(exact.sigma_max, approx.sigma_max + 1e-9);

  // Expected L1 error of the mean-state query: scale * L with L = 1/T.
  const double exact_err = exact.sigma_max / static_cast<double>(length);
  const double approx_err = approx.sigma_max / static_cast<double>(length);
  const double group_err = 1.0 / epsilon;  // GroupDP: Lap(1/eps).
  EXPECT_LT(exact_err, group_err);
  EXPECT_LT(approx_err, group_err);
}

TEST(IntegrationTest, SyntheticGk16ComparisonAtWideAndNarrowClasses) {
  const double epsilon = 1.0;
  const std::size_t length = 100;
  // Wide class (alpha = 0.1): GK16 inapplicable.
  {
    const auto cls = BinaryChainIntervalClass::Make(0.1, 0.9).ValueOrDie();
    const Gk16Analysis a =
        Gk16Analyze(cls.TransitionGrid(0.1), length, epsilon).ValueOrDie();
    EXPECT_FALSE(a.applicable);
  }
  // Narrow class (alpha = 0.4): GK16 applicable.
  {
    const auto cls = BinaryChainIntervalClass::Make(0.4, 0.6).ValueOrDie();
    const Gk16Analysis a =
        Gk16Analyze(cls.TransitionGrid(0.05), length, epsilon).ValueOrDie();
    EXPECT_TRUE(a.applicable);
    EXPECT_TRUE(std::isfinite(a.sigma));
  }
}

// Shrunk Section 5.3.1 pipeline: per-group, the private aggregated histogram
// from MQM is much closer to the truth than GroupDP's.
TEST(IntegrationTest, ActivityPipelineMqmBeatsGroupDp) {
  Rng rng(2024);
  ActivitySimOptions sim;
  sim.mean_observations_per_person = 3000;
  sim.mean_segment_length = 600;
  const ActivityGroupData data =
      SimulateActivityGroup(ActivityGroup::kCyclist, sim, &rng).ValueOrDie();
  const std::vector<StateSequence> chains = data.AllChains();
  const Vector truth =
      AggregateRelativeFrequencyHistogram(chains, kNumActivityStates)
          .ValueOrDie();
  const double epsilon = 1.0;
  const MarkovChain est =
      MarkovChain::Estimate(chains, kNumActivityStates).ValueOrDie();

  // MQMApprox noise scale for the aggregate histogram (2/total-Lipschitz).
  ChainMqmOptions options;
  options.epsilon = epsilon;
  options.max_nearby = 0;
  const ChainMqmResult approx =
      MqmApproxAnalyze({est}, data.LongestChain(), options).ValueOrDie();
  const double lipschitz = 2.0 / static_cast<double>(data.TotalObservations());
  const double mqm_expected_l1 =
      static_cast<double>(kNumActivityStates) * lipschitz * approx.sigma_max;

  const double group_sens =
      RelativeFrequencyGroupSensitivity(chains).ValueOrDie();
  const double group_expected_l1 =
      static_cast<double>(kNumActivityStates) * group_sens / epsilon;

  EXPECT_LT(mqm_expected_l1, group_expected_l1);

  // And a realized release tracks the truth reasonably.
  Rng noise_rng(7);
  double err = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const Vector noisy =
        MqmReleaseVector(truth, lipschitz, approx.sigma_max, &noise_rng);
    err += DistanceL1(noisy, truth);
  }
  EXPECT_LT(err / trials, 0.2);
}

// Shrunk Section 5.3.2 pipeline: estimate the 51-state chain, run both MQM
// variants with the stationary shortcut, release the histogram.
TEST(IntegrationTest, ElectricityPipeline) {
  ElectricitySimOptions sim;
  sim.length = 120000;
  Rng rng(5);
  const StateSequence seq = SimulateElectricity(sim, &rng).ValueOrDie();
  const MarkovChain est =
      MarkovChain::Estimate({seq}, kNumPowerLevels).ValueOrDie();
  const double epsilon = 1.0;

  ChainMqmOptions approx_options;
  approx_options.epsilon = epsilon;
  approx_options.max_nearby = 0;
  const ChainMqmResult approx =
      MqmApproxAnalyze({est}, sim.length, approx_options).ValueOrDie();
  EXPECT_TRUE(approx.used_stationary_shortcut);

  ChainMqmOptions exact_options;
  exact_options.epsilon = epsilon;
  exact_options.max_nearby = approx.active_quilt.NearbyCount() + 2;
  const ChainMqmResult exact =
      MqmExactAnalyze({est}, sim.length, exact_options).ValueOrDie();
  EXPECT_TRUE(exact.used_stationary_shortcut);
  EXPECT_LE(exact.sigma_max, approx.sigma_max + 1e-9);

  const double lipschitz = 2.0 / static_cast<double>(sim.length);
  const double expected_l1 =
      static_cast<double>(kNumPowerLevels) * lipschitz * exact.sigma_max;
  // GroupDP would be 51 * 2/eps = 102; MQM must be orders better.
  EXPECT_LT(expected_l1, 5.0);
}

// The DP baseline is biased down for aggregate tasks with few individuals —
// this mirrors Table 1's "DP" row being worse than MQM.
TEST(IntegrationTest, EntryDpWorseThanMqmOnAggregates) {
  // Entry DP adds Lap(2/(T eps)) per bin of each *person's* histogram and
  // averages across n people; the aggregate-task noise is 2/(n T_person eps)
  // per pooled bin only if everyone contributes equally — the paper instead
  // reports DP noise on the group-level aggregate, scale 2 * k / (N eps)
  // with N total observations but calibrated to hide one observation only;
  // for small groups the variance is visible while MQM's per-chain quilts
  // keep the same epsilon with comparable noise. Here we simply check the
  // scales are finite and ordered for our setup.
  const double epsilon = 1.0;
  const std::size_t total = 10000;
  const auto dp = LaplaceDpMechanism::Make(2.0 / total, epsilon).ValueOrDie();
  const auto group = GroupDpMechanism::Make(2.0, epsilon).ValueOrDie();
  EXPECT_LT(dp.noise_scale(), group.noise_scale());
}

}  // namespace
}  // namespace pf
