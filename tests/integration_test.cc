// Cross-module integration tests through the serving API: the full
// pipelines the benchmarks run, shrunk to test size — simulate data,
// estimate the chain, declare the model to a PrivacyEngine, compile
// declarative queries, release through sessions, and compare utility
// orderings across mechanisms.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/group_dp.h"
#include "common/histogram.h"
#include "data/activity.h"
#include "data/electricity.h"
#include "data/synthetic.h"
#include "engine/engine.h"

namespace pf {
namespace {

// The Section 5.2 synthetic pipeline at reduced trial count: MQMExact's
// noise is at most MQMApprox's, and both beat GroupDP for a moderate class.
TEST(IntegrationTest, SyntheticPipelineOrdering) {
  const double alpha = 0.3;
  const double epsilon = 1.0;
  const std::size_t length = 100;
  const auto cls = BinaryChainIntervalClass::Make(alpha, 1.0 - alpha).ValueOrDie();

  // The free-initial chain class (Appendix C.4) auto-selects MQMExact.
  EngineOptions exact_options;
  exact_options.exact_max_nearby = 60;
  auto exact_engine =
      PrivacyEngine::Create(
          ModelSpec::ChainClassFreeInitial(cls.TransitionGrid(0.1), length),
          exact_options)
          .ValueOrDie();
  ASSERT_EQ(exact_engine->mechanism_kind(), MechanismKind::kMqmExact);
  const auto exact =
      exact_engine->Compile(QuerySpec::Mean(epsilon)).ValueOrDie().plan;

  // The mixing-summary model can only be served by MQMApprox.
  auto approx_engine =
      PrivacyEngine::Create(ModelSpec::ChainSummary(cls.Summary(), 2, length))
          .ValueOrDie();
  ASSERT_EQ(approx_engine->mechanism_kind(), MechanismKind::kMqmApprox);
  const auto approx =
      approx_engine->Compile(QuerySpec::Mean(epsilon)).ValueOrDie().plan;

  EXPECT_LE(exact->sigma, approx->sigma + 1e-9);

  // Expected L1 error of the mean-state query: sigma * L with L = 1/T for
  // binary chains.
  const double exact_err = exact->sigma / static_cast<double>(length);
  const double approx_err = approx->sigma / static_cast<double>(length);
  const double group_err = 1.0 / epsilon;  // GroupDP: Lap(1/eps).
  EXPECT_LT(exact_err, group_err);
  EXPECT_LT(approx_err, group_err);
}

TEST(IntegrationTest, SyntheticGk16ComparisonAtWideAndNarrowClasses) {
  const double epsilon = 1.0;
  const std::size_t length = 100;
  EngineOptions options;
  options.mechanism = MechanismKind::kGk16;  // Explicit override.
  // Wide class (alpha = 0.1): GK16 inapplicable — the plan says so, and a
  // release through a session is refused.
  {
    const auto cls = BinaryChainIntervalClass::Make(0.1, 0.9).ValueOrDie();
    auto engine =
        PrivacyEngine::Create(
            ModelSpec::ChainClassFreeInitial(cls.TransitionGrid(0.1), length),
            options)
            .ValueOrDie();
    const auto plan = engine->Compile(QuerySpec::Mean(epsilon)).ValueOrDie().plan;
    EXPECT_FALSE(plan->applicable);
    auto session = engine->CreateSession();
    StateSequence data(length, 0);
    const auto refused = session->Release(QuerySpec::Mean(epsilon), data);
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  }
  // Narrow class (alpha = 0.4): GK16 applicable.
  {
    const auto cls = BinaryChainIntervalClass::Make(0.4, 0.6).ValueOrDie();
    auto engine =
        PrivacyEngine::Create(
            ModelSpec::ChainClassFreeInitial(cls.TransitionGrid(0.05), length),
            options)
            .ValueOrDie();
    const auto plan = engine->Compile(QuerySpec::Mean(epsilon)).ValueOrDie().plan;
    EXPECT_TRUE(plan->applicable);
    EXPECT_TRUE(std::isfinite(plan->sigma));
  }
}

// Shrunk Section 5.3.1 pipeline: per-group, the private aggregated histogram
// from MQM is much closer to the truth than GroupDP's.
TEST(IntegrationTest, ActivityPipelineMqmBeatsGroupDp) {
  Rng rng(2024);
  ActivitySimOptions sim;
  sim.mean_observations_per_person = 3000;
  sim.mean_segment_length = 600;
  const ActivityGroupData data =
      SimulateActivityGroup(ActivityGroup::kCyclist, sim, &rng).ValueOrDie();
  const std::vector<StateSequence> chains = data.AllChains();
  const Vector truth =
      AggregateRelativeFrequencyHistogram(chains, kNumActivityStates)
          .ValueOrDie();
  const double epsilon = 1.0;
  const MarkovChain est =
      MarkovChain::Estimate(chains, kNumActivityStates).ValueOrDie();

  EngineOptions options;
  options.mechanism = MechanismKind::kMqmApprox;
  auto engine = PrivacyEngine::Create(
                    ModelSpec::ChainClass({est}, data.LongestChain()), options)
                    .ValueOrDie();
  const auto approx =
      engine->Compile(QuerySpec::FrequencyHistogram(epsilon)).ValueOrDie().plan;

  // MQMApprox noise scale for the aggregate histogram (2/total-Lipschitz).
  const double lipschitz = 2.0 / static_cast<double>(data.TotalObservations());
  const double mqm_expected_l1 =
      static_cast<double>(kNumActivityStates) * lipschitz * approx->sigma;

  const double group_sens =
      RelativeFrequencyGroupSensitivity(chains).ValueOrDie();
  const double group_expected_l1 =
      static_cast<double>(kNumActivityStates) * group_sens / epsilon;

  EXPECT_LT(mqm_expected_l1, group_expected_l1);

  // And realized releases through a session track the truth reasonably:
  // release the pooled relative-frequency histogram 20 times and average.
  StateSequence pooled;
  pooled.reserve(data.TotalObservations());
  for (const StateSequence& s : chains) {
    pooled.insert(pooled.end(), s.begin(), s.end());
  }
  const QuerySpec aggregate = QuerySpec::CustomVector(
      "aggregate-relfreq",
      [](const StateSequence& seq) {
        return RelativeFrequencyHistogram(seq, kNumActivityStates).ValueOrDie();
      },
      lipschitz, kNumActivityStates, epsilon);
  SessionOptions session_options;
  session_options.seed = 7;
  auto session = engine->CreateSession(session_options);
  double err = 0.0;
  const int trials = 20;
  auto futures = session->SubmitBatch(
      aggregate, std::vector<StateSequence>(trials, pooled));
  for (auto& f : futures) {
    err += DistanceL1(f.get().ValueOrDie().value, truth);
  }
  EXPECT_LT(err / trials, 0.2);
  EXPECT_DOUBLE_EQ(session->EpsilonSpent(), trials * epsilon);
}

// Shrunk Section 5.3.2 pipeline: estimate the 51-state chain; the engine
// policy picks MQMApprox at this length on its own, the exact engine is
// capped just above the approx width (the paper's protocol).
TEST(IntegrationTest, ElectricityPipeline) {
  ElectricitySimOptions sim;
  sim.length = 120000;
  Rng rng(5);
  const StateSequence seq = SimulateElectricity(sim, &rng).ValueOrDie();
  const MarkovChain est =
      MarkovChain::Estimate({seq}, kNumPowerLevels).ValueOrDie();
  const double epsilon = 1.0;
  const ModelSpec model = ModelSpec::ChainClass({est}, sim.length);

  // 120000 > the default approx_length_cutoff: policy says MQMApprox.
  auto approx_engine = PrivacyEngine::Create(model).ValueOrDie();
  ASSERT_EQ(approx_engine->mechanism_kind(), MechanismKind::kMqmApprox);
  const auto approx =
      approx_engine->Compile(QuerySpec::FrequencyHistogram(epsilon))
          .ValueOrDie()
          .plan;
  EXPECT_TRUE(approx->chain.used_stationary_shortcut);

  EngineOptions exact_options;
  exact_options.mechanism = MechanismKind::kMqmExact;
  exact_options.exact_max_nearby =
      approx->chain.active_quilt.NearbyCount() + 2;
  auto exact_engine = PrivacyEngine::Create(model, exact_options).ValueOrDie();
  const auto exact =
      exact_engine->Compile(QuerySpec::FrequencyHistogram(epsilon))
          .ValueOrDie()
          .plan;
  EXPECT_TRUE(exact->chain.used_stationary_shortcut);
  EXPECT_LE(exact->sigma, approx->sigma + 1e-9);

  const double lipschitz = 2.0 / static_cast<double>(sim.length);
  const double expected_l1 =
      static_cast<double>(kNumPowerLevels) * lipschitz * exact->sigma;
  // GroupDP would be 51 * 2/eps = 102; MQM must be orders better.
  EXPECT_LT(expected_l1, 5.0);
}

// The DP baseline is biased down for aggregate tasks with few individuals —
// this mirrors Table 1's "DP" row being worse than MQM. Scales come from
// the sensitivity-model engines now.
TEST(IntegrationTest, EntryDpWorseThanMqmOnAggregates) {
  const double epsilon = 1.0;
  const std::size_t total = 10000;
  auto dp_engine =
      PrivacyEngine::Create(ModelSpec::Sensitivity(2.0 / total)).ValueOrDie();
  auto group_engine =
      PrivacyEngine::Create(ModelSpec::GroupSensitivity(2.0)).ValueOrDie();
  const double dp_sigma =
      dp_engine->Compile(QuerySpec::Sum(epsilon)).ValueOrDie().plan->sigma;
  const double group_sigma =
      group_engine->Compile(QuerySpec::Sum(epsilon)).ValueOrDie().plan->sigma;
  EXPECT_LT(dp_sigma, group_sigma);
}

}  // namespace
}  // namespace pf
