// PrivacyEngine: mechanism-selection policy, declarative query compilation,
// and the compiled-query / plan caches.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/topologies.h"
#include "graphical/markov_chain.h"

namespace pf {
namespace {

MarkovChain TestChain(double p0, double p1) {
  return MarkovChain::Make({0.5, 0.5}, Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}})
      .ValueOrDie();
}

ModelSpec ShortChainModel(std::size_t length = 100) {
  return ModelSpec::ChainClass({TestChain(0.8, 0.7)}, length);
}

// ------------------------------------------------------- selection policy --

TEST(SelectMechanismTest, ShortChainsUseExactLongChainsUseApprox) {
  EngineOptions options;
  options.approx_length_cutoff = 1000;
  EXPECT_EQ(SelectMechanism(ShortChainModel(1000), options).ValueOrDie(),
            MechanismKind::kMqmExact);
  EXPECT_EQ(SelectMechanism(ShortChainModel(1001), options).ValueOrDie(),
            MechanismKind::kMqmApprox);
}

TEST(SelectMechanismTest, PolicyByModelKind) {
  const EngineOptions options;
  EXPECT_EQ(SelectMechanism(
                ModelSpec::ChainClassFreeInitial(
                    {Matrix{{0.8, 0.2}, {0.3, 0.7}}}, 50),
                options)
                .ValueOrDie(),
            MechanismKind::kMqmExact);
  ChainClassSummary summary;
  summary.pi_min = 0.3;
  summary.eigengap = 0.5;
  EXPECT_EQ(SelectMechanism(ModelSpec::ChainSummary(summary, 2, 50), options)
                .ValueOrDie(),
            MechanismKind::kMqmApprox);
  EXPECT_EQ(SelectMechanism(ModelSpec::Sensitivity(1.0), options).ValueOrDie(),
            MechanismKind::kLaplaceDp);
  EXPECT_EQ(
      SelectMechanism(ModelSpec::GroupSensitivity(2.0), options).ValueOrDie(),
      MechanismKind::kGroupDp);
}

TEST(SelectMechanismTest, OverrideHonoredWhenCompatible) {
  EngineOptions options;
  options.mechanism = MechanismKind::kMqmApprox;
  EXPECT_EQ(SelectMechanism(ShortChainModel(), options).ValueOrDie(),
            MechanismKind::kMqmApprox);
  options.mechanism = MechanismKind::kGk16;
  EXPECT_EQ(SelectMechanism(ShortChainModel(), options).ValueOrDie(),
            MechanismKind::kGk16);
}

TEST(SelectMechanismTest, IncompatibleOverrideIsInvalidArgument) {
  EngineOptions options;
  options.mechanism = MechanismKind::kWasserstein;
  const Result<MechanismKind> r = SelectMechanism(ShortChainModel(), options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SelectMechanismTest, EmptyModelRejected) {
  EXPECT_FALSE(
      SelectMechanism(ModelSpec::ChainClass({}, 100), EngineOptions{}).ok());
  EXPECT_FALSE(
      SelectMechanism(ModelSpec::OutputPairs({}), EngineOptions{}).ok());
}

// ---------------------------------------------------------- query compile --

TEST(QuerySpecTest, BuiltinLipschitzConstantsFollowTheModel) {
  const std::size_t k = 3;
  const std::size_t length = 50;
  EXPECT_DOUBLE_EQ(
      CompileQuerySpec(QuerySpec::Sum(), k, length).ValueOrDie().lipschitz,
      2.0);  // k - 1.
  EXPECT_DOUBLE_EQ(
      CompileQuerySpec(QuerySpec::Mean(), k, length).ValueOrDie().lipschitz,
      2.0 / 50.0);
  EXPECT_DOUBLE_EQ(CompileQuerySpec(QuerySpec::StateFrequency(1), k, length)
                       .ValueOrDie()
                       .lipschitz,
                   1.0 / 50.0);
  const VectorQuery count =
      CompileQuerySpec(QuerySpec::CountHistogram(), k, length).ValueOrDie();
  EXPECT_DOUBLE_EQ(count.lipschitz, 2.0);
  EXPECT_EQ(count.dim, k);
  const VectorQuery freq =
      CompileQuerySpec(QuerySpec::FrequencyHistogram(), k, length).ValueOrDie();
  EXPECT_DOUBLE_EQ(freq.lipschitz, 2.0 / 50.0);
  EXPECT_EQ(freq.dim, k);
}

TEST(QuerySpecTest, CompiledQueriesEvaluate) {
  const StateSequence data{0, 1, 2, 1};
  const VectorQuery mean =
      CompileQuerySpec(QuerySpec::Mean(), 3, 4).ValueOrDie();
  EXPECT_DOUBLE_EQ(mean.fn(data)[0], 1.0);
  const VectorQuery freq =
      CompileQuerySpec(QuerySpec::StateFrequency(1), 3, 4).ValueOrDie();
  EXPECT_DOUBLE_EQ(freq.fn(data)[0], 0.5);
}

TEST(QuerySpecTest, CustomQueriesValidated) {
  // No body.
  QuerySpec broken;
  broken.kind = QueryKind::kCustomScalar;
  broken.name = "broken";
  EXPECT_EQ(CompileQuerySpec(broken, 2, 10).status().code(),
            StatusCode::kInvalidArgument);
  // No name (would collide in the compiled-query cache).
  const QuerySpec anonymous = QuerySpec::CustomScalar(
      "", [](const StateSequence&) { return 0.0; }, 1.0);
  EXPECT_EQ(CompileQuerySpec(anonymous, 2, 10).status().code(),
            StatusCode::kInvalidArgument);
  // Well-formed.
  const QuerySpec ok = QuerySpec::CustomScalar(
      "first", [](const StateSequence& s) { return double(s[0]); }, 1.0);
  EXPECT_TRUE(CompileQuerySpec(ok, 2, 10).ok());
}

TEST(QuerySpecTest, NonPositiveEpsilonRejected) {
  EXPECT_FALSE(QuerySpec::Sum(0.0).Validate().ok());
  EXPECT_FALSE(QuerySpec::Sum(-1.0).Validate().ok());
  EXPECT_FALSE(QuerySpec::Sum(std::nan("")).Validate().ok());
}

TEST(QuerySpecTest, StatefulKindsNeedAModelWithStatesAndLength) {
  // num_states == 0: output-pair / sensitivity models.
  EXPECT_EQ(CompileQuerySpec(QuerySpec::FrequencyHistogram(), 0, 0)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(CompileQuerySpec(QuerySpec::Mean(), 0, 0).status().code(),
            StatusCode::kFailedPrecondition);
  // Sum degrades to the raw L = 1 sum (sensitivity lives in the plan).
  const VectorQuery sum = CompileQuerySpec(QuerySpec::Sum(), 0, 0).ValueOrDie();
  EXPECT_DOUBLE_EQ(sum.lipschitz, 1.0);
  EXPECT_DOUBLE_EQ(sum.fn({1, 0, 1, 1})[0], 3.0);
}

// ------------------------------------------------------------- the engine --

TEST(PrivacyEngineTest, CompileCachesPlansAndCompiledQueries) {
  auto engine = PrivacyEngine::Create(ShortChainModel()).ValueOrDie();
  const auto first = engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  const auto again = engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  EXPECT_EQ(first.plan.get(), again.plan.get());
  // The compiled-query cache absorbed the repeat: no second cache lookup.
  EXPECT_EQ(engine->cache_stats().misses, 1u);

  // A different query at the same epsilon shares the plan via the
  // AnalysisCache (one analysis per (model, epsilon)).
  const auto other = engine->Compile(QuerySpec::Sum(1.0)).ValueOrDie();
  EXPECT_EQ(other.plan.get(), first.plan.get());
  EXPECT_EQ(engine->cache_stats().misses, 1u);
  EXPECT_EQ(engine->cache_stats().hits, 1u);

  // A new epsilon analyzes once more.
  const auto eps2 = engine->Compile(QuerySpec::Mean(2.0)).ValueOrDie();
  EXPECT_NE(eps2.plan.get(), first.plan.get());
  EXPECT_EQ(engine->cache_stats().misses, 2u);
}

TEST(PrivacyEngineTest, EngineReportsModelAndMechanism) {
  auto engine = PrivacyEngine::Create(ShortChainModel(100)).ValueOrDie();
  EXPECT_EQ(engine->mechanism_kind(), MechanismKind::kMqmExact);
  EXPECT_EQ(engine->num_states(), 2u);
  EXPECT_EQ(engine->record_length(), 100u);
  EXPECT_GE(engine->num_threads(), 1u);
}

TEST(PrivacyEngineTest, OverrideSelectsTheMechanism) {
  EngineOptions options;
  options.mechanism = MechanismKind::kMqmApprox;
  auto engine =
      PrivacyEngine::Create(ShortChainModel(100), options).ValueOrDie();
  EXPECT_EQ(engine->mechanism_kind(), MechanismKind::kMqmApprox);
  // MQMApprox is never less noisy than MQMExact on the same class.
  auto exact_engine = PrivacyEngine::Create(ShortChainModel(100)).ValueOrDie();
  const double approx_sigma =
      engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
  const double exact_sigma =
      exact_engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie().plan->sigma;
  EXPECT_LE(exact_sigma, approx_sigma + 1e-9);
}

TEST(PrivacyEngineTest, CompiledQueryCacheIsBoundedWithThePlanCache) {
  EngineOptions options;
  options.cache_capacity = 2;
  auto engine =
      PrivacyEngine::Create(ModelSpec::Sensitivity(1.0), options).ValueOrDie();
  (void)engine->Compile(QuerySpec::Sum(1.0)).ValueOrDie();
  (void)engine->Compile(QuerySpec::Sum(2.0)).ValueOrDie();
  (void)engine->Compile(QuerySpec::Sum(3.0)).ValueOrDie();  // Evicts eps=1.
  EXPECT_EQ(engine->cache_stats().misses, 3u);
  // eps=1 was evicted from both caches: recompiling re-analyzes instead of
  // serving a pinned plan from an unbounded compiled-query map.
  (void)engine->Compile(QuerySpec::Sum(1.0)).ValueOrDie();
  EXPECT_EQ(engine->cache_stats().misses, 4u);
  // eps=3 is still resident in the compiled-query cache (no new analysis).
  (void)engine->Compile(QuerySpec::Sum(3.0)).ValueOrDie();
  EXPECT_EQ(engine->cache_stats().misses, 4u);
}

TEST(PrivacyEngineTest, SensitivityModelServesSumOnly) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::Sensitivity(1.0)).ValueOrDie();
  EXPECT_TRUE(engine->Compile(QuerySpec::Sum(1.0)).ok());
  EXPECT_EQ(engine->Compile(QuerySpec::FrequencyHistogram(1.0)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(PrivacyEngineTest, AnalyzeStatsSurfaceDedupAndLadder) {
  EngineOptions options;
  options.exact_max_nearby = 8;
  options.allow_stationary_shortcut = false;
  auto engine =
      PrivacyEngine::Create(ShortChainModel(2000), options).ValueOrDie();
  ASSERT_EQ(engine->mechanism_kind(), MechanismKind::kMqmExact);
  const PrivacyEngine::AnalysisStats stats =
      engine->AnalyzeStats(1.0).ValueOrDie();
  EXPECT_EQ(stats.total_nodes, 2000u);
  EXPECT_GT(stats.scored_nodes, 0u);
  EXPECT_LT(stats.scored_nodes, stats.total_nodes);
  EXPECT_GT(stats.dedup_ratio, 1.0);
  EXPECT_GT(stats.memory.peak_bytes, 0u);
  // Served from the plan cache: a second call must not re-analyze.
  const auto before = engine->cache_stats();
  EXPECT_TRUE(engine->AnalyzeStats(1.0).ok());
  EXPECT_EQ(engine->cache_stats().misses, before.misses);
}

// ------------------------------------------------- streaming / appends --

TEST(PrivacyEngineTest, AppendObservationsExtendsCachedAnalyses) {
  EngineOptions options;
  options.exact_max_nearby = 10;
  auto engine =
      PrivacyEngine::Create(ShortChainModel(100), options).ValueOrDie();
  const auto at100 = engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  EXPECT_EQ(engine->cache_stats().extensions, 0u);

  ASSERT_TRUE(engine->AppendObservations(25).ok());
  EXPECT_EQ(engine->record_length(), 125u);
  const auto at125 = engine->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  // The plan was EXTENDED from the cached T=100 analysis, not re-analyzed.
  EXPECT_EQ(engine->cache_stats().extensions, 1u);
  // The compiled query was invalidated: its Lipschitz constant follows the
  // new length ((k-1)/T for the mean).
  EXPECT_DOUBLE_EQ(at100.query.lipschitz, 1.0 / 100.0);
  EXPECT_DOUBLE_EQ(at125.query.lipschitz, 1.0 / 125.0);

  // And the extended plan is bit-identical to a cold engine built at 125.
  auto cold = PrivacyEngine::Create(ShortChainModel(125), options).ValueOrDie();
  const auto cold_plan = cold->Compile(QuerySpec::Mean(1.0)).ValueOrDie();
  EXPECT_EQ(at125.plan->sigma, cold_plan.plan->sigma);
  EXPECT_EQ(at125.plan->chain.worst_node, cold_plan.plan->chain.worst_node);
  EXPECT_EQ(at125.plan->chain.active_quilt.quilt,
            cold_plan.plan->chain.active_quilt.quilt);
  EXPECT_EQ(at125.plan->chain.scored_nodes,
            cold_plan.plan->chain.scored_nodes);
}

TEST(PrivacyEngineTest, NumStatesIsStableAcrossModelMutations) {
  // Regression: Compile used to read model_.num_states outside model_mutex_
  // — formally a data race against AppendObservations/SetRecordLength even
  // though those never change the state count. The fix snapshots the
  // (immutable-after-Create) count into the const num_states_ member; this
  // pins the accessor's value across every model mutation path so the
  // snapshot can never drift from the model.
  auto engine = PrivacyEngine::Create(ShortChainModel(100)).ValueOrDie();
  const std::size_t states = engine->num_states();
  EXPECT_GT(states, 0u);

  ASSERT_TRUE(engine->AppendObservations(25).ok());
  EXPECT_EQ(engine->num_states(), states);

  ASSERT_TRUE(engine->SetRecordLength(40).ok());
  EXPECT_EQ(engine->num_states(), states);

  // Histogram validation (which consumes the snapshot) still enforces the
  // true state count after the mutations.
  EXPECT_TRUE(engine->Compile(QuerySpec::Mean(1.0)).ok());
}

TEST(PrivacyEngineTest, AppendCanCrossThePolicyCutoff) {
  EngineOptions options;
  options.approx_length_cutoff = 150;
  auto engine =
      PrivacyEngine::Create(ShortChainModel(100), options).ValueOrDie();
  EXPECT_EQ(engine->mechanism_kind(), MechanismKind::kMqmExact);
  ASSERT_TRUE(engine->AppendObservations(100).ok());
  // Past the cutoff the policy re-selects MQMApprox (length-independent
  // analysis); serving keeps working.
  EXPECT_EQ(engine->mechanism_kind(), MechanismKind::kMqmApprox);
  EXPECT_TRUE(engine->Compile(QuerySpec::Mean(1.0)).ok());
}

TEST(PrivacyEngineTest, SetRecordLengthValidation) {
  auto engine = PrivacyEngine::Create(ShortChainModel(100)).ValueOrDie();
  EXPECT_EQ(engine->SetRecordLength(0).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(engine->SetRecordLength(100).ok());  // No-op.
  EXPECT_TRUE(engine->SetRecordLength(40).ok());   // Shrink re-analyzes cold.
  EXPECT_EQ(engine->record_length(), 40u);
  EXPECT_TRUE(engine->Compile(QuerySpec::Mean(1.0)).ok());

  // Models without a record-length dimension refuse the hot-swap.
  auto laplace = PrivacyEngine::Create(ModelSpec::Sensitivity(1.0)).ValueOrDie();
  EXPECT_EQ(laplace->AppendObservations(5).code(), StatusCode::kNotSupported);
}

TEST(PrivacyEngineTest, NonChainMechanismsReportZeroStats) {
  auto engine =
      PrivacyEngine::Create(ModelSpec::Sensitivity(1.0)).ValueOrDie();
  const PrivacyEngine::AnalysisStats stats =
      engine->AnalyzeStats(1.0).ValueOrDie();
  EXPECT_EQ(stats.total_nodes, 0u);
  EXPECT_EQ(stats.scored_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.dedup_ratio, 1.0);
}

TEST(PrivacyEngineTest, LargeStructuredNetworksRouteToMqmGeneral) {
  // 100 binary nodes: far past any enumeration guard, but treewidth 1 —
  // the policy admits it and the structured analysis serves it.
  auto model = ModelSpec::NetworkClass(
      {TreeNetwork(100, 2, BinaryRoot(0.5), BinaryNoisyCopyCpt(0.25))
           .ValueOrDie()});
  EXPECT_EQ(SelectMechanism(model, EngineOptions{}).ValueOrDie(),
            MechanismKind::kMqmGeneral);
  auto engine = PrivacyEngine::Create(std::move(model)).ValueOrDie();
  EXPECT_EQ(engine->mechanism_kind(), MechanismKind::kMqmGeneral);
  EXPECT_EQ(engine->record_length(), 100u);

  const PrivacyEngine::AnalysisStats stats =
      engine->AnalyzeStats(1.0).ValueOrDie();
  EXPECT_EQ(stats.total_nodes, 100u);
  EXPECT_LT(stats.scored_nodes, stats.total_nodes);
  EXPECT_GT(stats.dedup_ratio, 1.0);
  EXPECT_EQ(stats.treewidth_bound, 1u);
  EXPECT_GE(stats.induced_width, 1u);
  EXPECT_GT(stats.memory.peak_bytes, 0u);

  // The analysis is cached: serving a release re-uses the plan.
  SessionOptions session_options;
  session_options.seed = 7;
  auto session = engine->CreateSession(session_options);
  StateSequence data(100, 1);
  const ReleaseResult release =
      session->Release(QuerySpec::Sum(1.0), data).ValueOrDie();
  EXPECT_TRUE(std::isfinite(release.value[0]));
  EXPECT_GT(engine->cache_stats().hits, 0u);
}

TEST(PrivacyEngineTest, NetworkWidthCutoffRefusesDenseModels) {
  // An 18-node collider: the child's 17 parents all marry, a 17-clique —
  // min-fill width 17 > the default cutoff of 16.
  BayesianNetwork dense;
  Rng rng(3);
  ASSERT_TRUE(dense.AddNode("p0", 2, {}, Matrix{{0.5, 0.5}}).ok());
  std::vector<int> parents = {0};
  for (int i = 1; i < 17; ++i) {
    ASSERT_TRUE(dense.AddNode("p" + std::to_string(i), 2, {},
                              Matrix{{0.4, 0.6}}).ok());
    parents.push_back(i);
  }
  Matrix cpt(1u << 17, 2);
  for (std::size_t r = 0; r < cpt.rows(); ++r) {
    cpt(r, 0) = 0.25;
    cpt(r, 1) = 0.75;
  }
  ASSERT_TRUE(dense.AddNode("child", 2, parents, cpt).ok());

  const auto model = ModelSpec::NetworkClass({dense});
  const Result<MechanismKind> refused = SelectMechanism(model, EngineOptions{});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kInvalidArgument);
  // Raising the cutoff admits it again...
  EngineOptions relaxed;
  relaxed.network_width_cutoff = 20;
  EXPECT_EQ(SelectMechanism(model, relaxed).ValueOrDie(),
            MechanismKind::kMqmGeneral);
  // ... and an explicit override bypasses the screen entirely.
  EngineOptions forced;
  forced.mechanism = MechanismKind::kMqmGeneral;
  EXPECT_EQ(SelectMechanism(model, forced).ValueOrDie(),
            MechanismKind::kMqmGeneral);
}

}  // namespace
}  // namespace pf
