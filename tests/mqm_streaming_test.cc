// Streaming bit-identity suite: ChainMqmAnalysis::ExtendTo(T') must equal
// a cold analysis at T' — sigma_max, worst node, active quilt, influence,
// shortcut flag, AND the dedup diagnostics (scored_nodes /
// memory.peak_bytes, which certify that the retained class store ends up
// in exactly the state a cold scan builds) — across stationary /
// non-stationary / free-initial chains, shortcut on/off, and thread
// counts; plus chained extensions equal the one-shot analysis.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "graphical/markov_chain.h"
#include "pufferfish/mqm_exact.h"

namespace pf {
namespace {

void ExpectBitIdentical(const ChainMqmResult& got,
                        const ChainMqmResult& want) {
  EXPECT_EQ(got.sigma_max, want.sigma_max);
  EXPECT_EQ(got.worst_node, want.worst_node);
  EXPECT_EQ(got.influence, want.influence);
  EXPECT_EQ(got.active_quilt.target, want.active_quilt.target);
  EXPECT_EQ(got.active_quilt.quilt, want.active_quilt.quilt);
  EXPECT_EQ(got.active_quilt.nearby_count, want.active_quilt.nearby_count);
  EXPECT_EQ(got.used_stationary_shortcut, want.used_stationary_shortcut);
  EXPECT_EQ(got.total_nodes, want.total_nodes);
  EXPECT_EQ(got.scored_nodes, want.scored_nodes);
  EXPECT_EQ(got.memory.peak_bytes, want.memory.peak_bytes);
}

const Matrix kBinary{{0.9, 0.1}, {0.4, 0.6}};

Vector StationaryOf(const Matrix& p) {
  return MarkovChain::Make(Vector(p.rows(), 1.0 / p.rows()), p)
      .ValueOrDie()
      .StationaryDistribution()
      .ValueOrDie();
}

TEST(MqmStreamingTest, ExtendMatchesColdAcrossVariantsAndThreads) {
  const std::vector<Vector> initials = {StationaryOf(kBinary),
                                        Vector{1.0, 0.0}, Vector{0.3, 0.7}};
  for (const Vector& q : initials) {
    const MarkovChain chain = MarkovChain::Make(q, kBinary).ValueOrDie();
    for (bool shortcut : {true, false}) {
      for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ChainMqmOptions options;
        options.epsilon = 1.0;
        options.max_nearby = 12;
        options.allow_stationary_shortcut = shortcut;
        options.num_threads = threads;
        for (std::size_t delta : {std::size_t{1}, std::size_t{13},
                                  std::size_t{100}}) {
          ChainMqmAnalysis analysis =
              ChainMqmAnalysis::Analyze({chain}, 120, options).ValueOrDie();
          ASSERT_TRUE(analysis.ExtendTo(120 + delta).ok());
          EXPECT_EQ(analysis.length(), 120 + delta);
          const ChainMqmResult cold =
              MqmExactAnalyze({chain}, 120 + delta, options).ValueOrDie();
          ExpectBitIdentical(analysis.result(), cold);
        }
      }
    }
  }
}

TEST(MqmStreamingTest, FreeInitialExtendMatchesCold) {
  const Matrix p{{0.85, 0.15}, {0.25, 0.75}};
  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ChainMqmOptions options;
    options.epsilon = 1.0;
    options.max_nearby = 10;
    options.num_threads = threads;
    for (std::size_t delta :
         {std::size_t{1}, std::size_t{10}, std::size_t{80}}) {
      ChainMqmAnalysis analysis =
          ChainMqmAnalysis::AnalyzeFreeInitial({p}, 80, options).ValueOrDie();
      ASSERT_TRUE(analysis.ExtendTo(80 + delta).ok());
      const ChainMqmResult cold =
          MqmExactAnalyzeFreeInitial({p}, 80 + delta, options).ValueOrDie();
      ExpectBitIdentical(analysis.result(), cold);
    }
  }
}

TEST(MqmStreamingTest, FreeInitialThreeStateExtend) {
  const Matrix p{{0.7, 0.2, 0.1}, {0.1, 0.6, 0.3}, {0.3, 0.1, 0.6}};
  ChainMqmOptions options;
  options.epsilon = 0.8;
  options.max_nearby = 9;
  options.num_threads = 1;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::AnalyzeFreeInitial({p}, 60, options).ValueOrDie();
  ASSERT_TRUE(analysis.ExtendTo(150).ok());
  ExpectBitIdentical(
      analysis.result(),
      MqmExactAnalyzeFreeInitial({p}, 150, options).ValueOrDie());
}

TEST(MqmStreamingTest, ChainedExtensionsEqualOneShot) {
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, kBinary).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  options.allow_stationary_shortcut = false;
  options.num_threads = 1;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 100, options).ValueOrDie();
  // T -> T+1 -> ... -> T+10 -> T+47: every step must stay bit-identical.
  for (std::size_t t = 101; t <= 110; ++t) {
    ASSERT_TRUE(analysis.ExtendTo(t).ok());
    ExpectBitIdentical(analysis.result(),
                       MqmExactAnalyze({chain}, t, options).ValueOrDie());
  }
  ASSERT_TRUE(analysis.ExtendTo(157).ok());
  ExpectBitIdentical(analysis.result(),
                     MqmExactAnalyze({chain}, 157, options).ValueOrDie());
}

TEST(MqmStreamingTest, ExtendThroughMixingTransient) {
  // Start inside the mixing transient (T smaller than the mixing time), so
  // extensions re-key nodes whose marginals are still bit-distinct.
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, Matrix{{0.97, 0.03}, {0.02, 0.98}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 6;
  options.allow_stationary_shortcut = false;
  options.num_threads = 1;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 20, options).ValueOrDie();
  for (std::size_t t : {std::size_t{21}, std::size_t{35}, std::size_t{90},
                        std::size_t{400}}) {
    ASSERT_TRUE(analysis.ExtendTo(t).ok());
    ExpectBitIdentical(analysis.result(),
                       MqmExactAnalyze({chain}, t, options).ValueOrDie());
  }
}

TEST(MqmStreamingTest, MultiThetaClassExtend) {
  const MarkovChain theta1 =
      MarkovChain::Make({1.0, 0.0}, kBinary).ValueOrDie();
  const MarkovChain theta2 =
      MarkovChain::Make({0.9, 0.1}, Matrix{{0.8, 0.2}, {0.3, 0.7}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 15;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({theta1, theta2}, 100, options).ValueOrDie();
  ASSERT_TRUE(analysis.ExtendTo(130).ok());
  ExpectBitIdentical(
      analysis.result(),
      MqmExactAnalyze({theta1, theta2}, 130, options).ValueOrDie());
}

TEST(MqmStreamingTest, ShortcutModeSwitchOnExtend) {
  // T = 2 is below the shortcut's length floor; the extension crosses it,
  // and must make the same mode decision (and produce the same bits) as a
  // cold analysis at the new length.
  const Vector pi = StationaryOf(kBinary);
  const MarkovChain chain = MarkovChain::Make(pi, kBinary).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 10;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 2, options).ValueOrDie();
  ASSERT_TRUE(analysis.ExtendTo(50).ok());
  const ChainMqmResult cold =
      MqmExactAnalyze({chain}, 50, options).ValueOrDie();
  EXPECT_TRUE(cold.used_stationary_shortcut);
  ExpectBitIdentical(analysis.result(), cold);
}

TEST(MqmStreamingTest, ExhaustiveModeExtendMatchesCold) {
  // dedup_nodes = false keeps no per-node state; ExtendTo transparently
  // re-scans and must still match cold exactly.
  const MarkovChain chain =
      MarkovChain::Make({0.3, 0.7}, kBinary).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  options.dedup_nodes = false;
  options.num_threads = 1;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 70, options).ValueOrDie();
  ASSERT_TRUE(analysis.ExtendTo(95).ok());
  ExpectBitIdentical(analysis.result(),
                     MqmExactAnalyze({chain}, 95, options).ValueOrDie());
}

TEST(MqmStreamingTest, OverflowedScanFallsBackToColdOnExtend) {
  // A slow-mixing chain overflows the class store (non-resumable state);
  // ExtendTo must detect that and still return cold-identical results.
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, Matrix{{0.99, 0.01}, {0.03, 0.97}})
          .ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 4;
  options.allow_stationary_shortcut = false;
  options.num_threads = 1;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 1500, options).ValueOrDie();
  EXPECT_GT(analysis.result().scored_nodes, 256u);  // Overflow engaged.
  ASSERT_TRUE(analysis.ExtendTo(1600).ok());
  ExpectBitIdentical(analysis.result(),
                     MqmExactAnalyze({chain}, 1600, options).ValueOrDie());
}

TEST(MqmStreamingTest, ExtendValidation) {
  const MarkovChain chain =
      MarkovChain::Make({0.3, 0.7}, kBinary).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 50, options).ValueOrDie();
  EXPECT_FALSE(analysis.ExtendTo(49).ok());  // Shrink refused.
  EXPECT_TRUE(analysis.ExtendTo(50).ok());   // Same length is a no-op.
  EXPECT_EQ(analysis.length(), 50u);
}

TEST(MqmStreamingTest, ExtendIsIncrementallyCheap) {
  // The work counter must show the append reused the interior: after a
  // +1 extension, scored_nodes grows by at most O(max_nearby), not O(T).
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, kBinary).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  options.allow_stationary_shortcut = false;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 5000, options).ValueOrDie();
  const std::size_t before = analysis.result().scored_nodes;
  ASSERT_TRUE(analysis.ExtendTo(5001).ok());
  const std::size_t after = analysis.result().scored_nodes;
  EXPECT_LE(after, before + options.max_nearby + 2);
}

TEST(MqmStreamingTest, SteadyStateAppendAllocatesNothing) {
  // The zero-allocation hot path: once the chain is far past its mixing
  // transient (the marginal stream has gone period-1) and the class store
  // holds every boundary class, a +1 append only swaps retained buffers
  // and re-joins existing classes — memory.mallocs must be EXACTLY zero.
  const MarkovChain chain =
      MarkovChain::Make({1.0, 0.0}, kBinary).ValueOrDie();
  ChainMqmOptions options;
  options.epsilon = 1.0;
  options.max_nearby = 8;
  options.allow_stationary_shortcut = false;
  ChainMqmAnalysis analysis =
      ChainMqmAnalysis::Analyze({chain}, 5000, options).ValueOrDie();
  // Two warm-up appends absorb any one-time growth (scratch buffers,
  // class-store headroom) left over from the cold analysis.
  ASSERT_TRUE(analysis.ExtendTo(5001).ok());
  ASSERT_TRUE(analysis.ExtendTo(5002).ok());
  for (std::size_t target = 5003; target <= 5010; ++target) {
    ASSERT_TRUE(analysis.ExtendTo(target).ok());
    EXPECT_EQ(analysis.result().memory.mallocs, 0u)
        << "append to T=" << target << " allocated";
    EXPECT_GT(analysis.result().memory.arena_retained_bytes, 0u);
  }
}

}  // namespace
}  // namespace pf
