#include "data/electricity.h"

#include <gtest/gtest.h>

namespace pf {
namespace {

TEST(ElectricityTest, TransitionIsValidChain) {
  ElectricitySimOptions options;
  const Matrix p = ElectricityTransition(options);
  EXPECT_EQ(p.rows(), kNumPowerLevels);
  EXPECT_TRUE(p.IsRowStochastic(1e-9));
  const MarkovChain chain =
      MarkovChain::Make(Vector(kNumPowerLevels, 1.0 / kNumPowerLevels), p)
          .ValueOrDie();
  EXPECT_TRUE(chain.IsIrreducible());
  EXPECT_TRUE(chain.IsAperiodic());
}

TEST(ElectricityTest, StationaryConcentratesOnLowPower) {
  ElectricitySimOptions options;
  const Matrix p = ElectricityTransition(options);
  const MarkovChain chain =
      MarkovChain::Make(Vector(kNumPowerLevels, 1.0 / kNumPowerLevels), p)
          .ValueOrDie();
  const Vector pi = chain.StationaryDistribution().ValueOrDie();
  // Base load dominates: the lowest 10 levels carry most of the mass and
  // every level is still reachable.
  double low = 0.0;
  for (std::size_t j = 0; j < 10; ++j) low += pi[j];
  EXPECT_GT(low, 0.5);
  for (double v : pi) EXPECT_GT(v, 0.0);
  EXPECT_GT(pi[0], pi[kNumPowerLevels - 1]);
}

TEST(ElectricityTest, MixingParametersUsable) {
  // MQMApprox needs pi_min > 0 and eigengap > 0 on the generating chain.
  ElectricitySimOptions options;
  const Matrix p = ElectricityTransition(options);
  const MarkovChain chain =
      MarkovChain::Make(Vector(kNumPowerLevels, 1.0 / kNumPowerLevels), p)
          .ValueOrDie();
  EXPECT_GT(chain.MinStationaryProbability().ValueOrDie(), 0.0);
  // The reset component yields a gap comfortably above the reset rate.
  EXPECT_GT(chain.Eigengap().ValueOrDie(), options.reset_probability / 2.0);
}

TEST(ElectricityTest, SimulationProducesValidStates) {
  ElectricitySimOptions options;
  options.length = 20000;
  Rng rng(31);
  const StateSequence seq = SimulateElectricity(options, &rng).ValueOrDie();
  EXPECT_EQ(seq.size(), 20000u);
  for (int s : seq) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, static_cast<int>(kNumPowerLevels));
  }
}

TEST(ElectricityTest, ZeroLengthRejected) {
  ElectricitySimOptions options;
  options.length = 0;
  Rng rng(1);
  EXPECT_FALSE(SimulateElectricity(options, &rng).ok());
}

TEST(ElectricityTest, EmpiricalEstimateSupportsMqm) {
  ElectricitySimOptions options;
  options.length = 150000;
  Rng rng(32);
  const StateSequence seq = SimulateElectricity(options, &rng).ValueOrDie();
  const MarkovChain est =
      MarkovChain::Estimate({seq}, kNumPowerLevels).ValueOrDie();
  EXPECT_TRUE(est.IsIrreducible());
  EXPECT_TRUE(est.IsAperiodic());
  EXPECT_GT(est.MinStationaryProbability().ValueOrDie(), 0.0);
  EXPECT_GT(est.Eigengap().ValueOrDie(), 0.0);
}

}  // namespace
}  // namespace pf
