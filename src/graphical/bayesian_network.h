// Discrete Bayesian networks: the dependence model of the Markov Quilt
// Mechanism (Section 4). A network is a DAG over finite-valued variables
// with conditional probability tables; the joint factorizes as
// P(X_1..X_n) = prod_i P(X_i | parents(X_i)).
//
// Inference defaults to variable elimination (graphical/elimination.h),
// whose cost is exponential only in the induced treewidth — trees, stars,
// and grids of hundreds of nodes are fine. The original full-joint
// enumeration survives as InferenceBackend::kEnumeration, the reference
// ground truth (exponential in node count, so ~20 binary nodes).
#ifndef PUFFERFISH_GRAPHICAL_BAYESIAN_NETWORK_H_
#define PUFFERFISH_GRAPHICAL_BAYESIAN_NETWORK_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "graphical/elimination.h"

namespace pf {

/// A complete assignment of values to all network variables;
/// assignment[i] in [0, arity(i)).
using Assignment = std::vector<int>;

/// \brief A discrete Bayesian network.
class BayesianNetwork {
 public:
  /// One variable: name, number of values, parent indices (must be < own
  /// index in the construction order, guaranteeing acyclicity), and CPT.
  /// The CPT has one row per joint parent assignment (mixed-radix order,
  /// first parent most significant) and one column per own value.
  struct Node {
    std::string name;
    int arity;
    std::vector<int> parents;
    Matrix cpt;
  };

  BayesianNetwork() = default;

  /// Appends a node. Parents must already exist (index < current size).
  /// Validates CPT dimensions and row-stochasticity.
  Status AddNode(std::string name, int arity, std::vector<int> parents,
                 Matrix cpt);

  std::size_t num_nodes() const { return nodes_.size(); }
  const Node& node(std::size_t i) const { return nodes_[i]; }

  /// Joint probability of a complete assignment.
  Result<double> JointProbability(const Assignment& a) const;

  /// Total number of joint assignments (product of arities). Fails if it
  /// exceeds `limit` (guard against accidental exponential blowups).
  Result<std::size_t> NumAssignments(std::size_t limit = 1u << 24) const;

  /// Calls `fn(assignment, probability)` for every assignment with nonzero
  /// probability mass.
  Status ForEachAssignment(
      const std::function<void(const Assignment&, double)>& fn,
      std::size_t limit = 1u << 24) const;

  /// \brief Conditional distribution of variable set `targets` given
  /// `evidence` (pairs of variable index and value). Returned as a flat mass
  /// vector over the mixed-radix product of target arities (first target
  /// most significant). Fails if the evidence has probability 0, or with
  /// an error if the backend's guarded cost measure exceeds `limit`: the
  /// joint-assignment space for kEnumeration (OutOfRange, the historical
  /// behavior), the largest elimination clique table for the
  /// variable-elimination default (InvalidArgument).
  Result<Vector> ConditionalJoint(
      const std::vector<int>& targets,
      const std::vector<std::pair<int, int>>& evidence,
      std::size_t limit = 1u << 24,
      InferenceBackend backend = InferenceBackend::kAuto) const;

  /// Marginal distribution of one variable.
  Result<Vector> Marginal(int variable) const;

  /// \brief The network as a factor list (one CPT factor per node, in node
  /// order) plus the per-variable arity table — the inputs of
  /// FactorConditionalJoint. Exposed so callers can run many inference
  /// queries without rebuilding the factors each time.
  std::vector<Factor> Factors() const;
  std::vector<int> Arities() const;

  /// \brief Markov blanket of node i: parents, children, and co-parents
  /// (Section 4.2's baseline notion that the Markov quilt generalizes).
  std::vector<int> MarkovBlanket(int i) const;

  /// Children of node i.
  std::vector<int> Children(int i) const;

  /// Ancestral sampling of a complete assignment.
  Assignment Sample(Rng* rng) const;

  /// \brief Builds the length-T chain network X_0 -> X_1 -> ... -> X_{T-1}
  /// with the given per-step transition CPTs; node 0 uses `initial`.
  /// This embeds the Section 4.4 case study into the general framework.
  static Result<BayesianNetwork> FromMarkovChain(const Vector& initial,
                                                 const Matrix& transition,
                                                 std::size_t length);

 private:
  // Index into a CPT row for node i given a full assignment.
  std::size_t ParentIndex(const Node& n, const Assignment& a) const;

  std::vector<Node> nodes_;
};

}  // namespace pf

#endif  // PUFFERFISH_GRAPHICAL_BAYESIAN_NETWORK_H_
