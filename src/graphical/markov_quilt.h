// Markov quilts (Definition 4.2): a set X_Q whose removal splits the network
// into "nearby" nodes X_N (containing the protected X_i) and "remote" nodes
// X_R, with X_R independent of X_i given X_Q. Includes the chain quilt
// family of Lemma 4.6 and a separator-based generator for general networks.
#ifndef PUFFERFISH_GRAPHICAL_MARKOV_QUILT_H_
#define PUFFERFISH_GRAPHICAL_MARKOV_QUILT_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graphical/bayesian_network.h"
#include "graphical/moral_graph.h"

namespace pf {

/// \brief One Markov quilt for a protected node.
///
/// Only the quilt node set and card(X_N) are always populated; the explicit
/// nearby/remote node lists are filled by the general-network constructors
/// but deliberately left empty by the chain constructors, where X_N is the
/// contiguous block between the quilt endpoints and chains can have millions
/// of nodes.
struct MarkovQuilt {
  /// The protected node X_i.
  int target = 0;
  /// Quilt nodes X_Q, sorted ascending (empty: the trivial quilt).
  std::vector<int> quilt;
  /// card(X_N) — the factor multiplying the Laplace scale in the score.
  std::size_t nearby_count = 0;
  /// Explicit nearby nodes X_N (general-network path only).
  std::vector<int> nearby;
  /// Explicit remote nodes X_R (general-network path only).
  std::vector<int> remote;

  std::size_t NearbyCount() const { return nearby_count; }
  bool IsTrivial() const { return quilt.empty(); }

  /// Debug rendering like "quilt{X3,X13} near=9" for logs and tests.
  std::string ToString() const;
};

/// \brief Endpoint distances (a, b) of a chain quilt relative to its
/// target: a for the past-side node X_{i-a}, b for the future-side node
/// X_{i+b}; 0 for an absent side (and (0, 0) for the trivial quilt).
/// Shared by the exact and approximate chain influence computations.
std::pair<int, int> ChainQuiltOffsets(const MarkovQuilt& quilt);

/// \brief The trivial quilt (X_Q empty, X_N = everything, X_R empty), which
/// Algorithm 2 requires every candidate set to contain: it always has
/// max-influence 0 and yields the group-DP fallback noise.
MarkovQuilt TrivialQuilt(int target, std::size_t num_nodes);

/// \brief Chain quilt per Lemma 4.6 for a chain of `length` nodes indexed
/// 0..length-1: {X_{i-a}, X_{i+b}} when a, b >= 1 (card(X_N) = a + b - 1),
/// {X_{i-a}} when b == 0 (X_N extends to the right boundary,
/// card = length-1-(i-a)), or {X_{i+b}} when a == 0 (card = i + b).
/// Fails if indices leave the chain.
Result<MarkovQuilt> ChainQuilt(std::size_t length, int target, int a, int b);

/// \brief Lemma 4.6 / Algorithm 3 search family S_{Q,i}: all quilts
/// {X_{i-a}, X_{i+b}}, {X_{i-a}}, {X_{i+b}} whose nearby set has at most
/// `max_nearby` nodes, plus the trivial quilt (always included regardless
/// of its size, as Theorem 4.3 requires).
std::vector<MarkovQuilt> ChainQuiltFamily(std::size_t length, int target,
                                          std::size_t max_nearby);

/// \brief Builds the quilt induced by candidate separator `quilt` in a
/// general Bayesian network: X_R = nodes separated from `target` by `quilt`
/// in the moral graph, X_N = the rest. Moral-graph separation certifies the
/// Definition 4.2 independence requirement. Fills the explicit node lists.
MarkovQuilt QuiltFromSeparator(const MoralGraph& graph, int target,
                               std::vector<int> quilt);

/// \brief Enumerates all quilts induced by separators of size at most
/// `max_quilt_size` (brute force over subsets; exponential — intended for
/// the small networks where Algorithm 2 runs), plus the trivial quilt.
/// Separators yielding an empty remote set are skipped (dominated by the
/// trivial quilt, whose max-influence is 0). On disconnected graphs the
/// empty separator already splits off the other components, so the
/// empty-quilt candidate with X_R = those components is included too.
///
/// The result is deduplicated and deterministically ordered — sorted by
/// (quilt size, quilt node ids, nearby count) — so repeated calls and
/// structurally identical graphs built in any insertion order produce
/// byte-identical lists.
std::vector<MarkovQuilt> EnumerateQuilts(const MoralGraph& graph, int target,
                                         std::size_t max_quilt_size);

/// Knobs for the separator-driven quilt search on large networks.
struct SeparatorSearchOptions {
  /// Largest BFS radius around the target whose sphere is tried as a cut.
  std::size_t max_radius = 6;
  /// Spheres with more nodes than this are skipped (they would make the
  /// max-influence inference exponential in the sphere size).
  std::size_t max_quilt_size = 8;
};

/// \brief Scalable quilt candidates for general networks: for each radius
/// r <= max_radius, the BFS sphere S_r around the target (every node at
/// distance exactly r) is a vertex cut separating the ball B_{r-1} from
/// the rest, and its pruned variant (sphere nodes that actually border a
/// strictly farther node) trades a smaller separator for a larger nearby
/// set. Both are emitted, plus the other-components cut on disconnected
/// graphs and always the trivial quilt (Theorem 4.3). Candidate count is
/// O(max_radius) instead of the exhaustive search's O(n^max_quilt_size);
/// ordering and dedup follow the EnumerateQuilts convention.
std::vector<MarkovQuilt> SeparatorQuilts(
    const MoralGraph& graph, int target,
    const SeparatorSearchOptions& options = {});

}  // namespace pf

#endif  // PUFFERFISH_GRAPHICAL_MARKOV_QUILT_H_
