// Moral graph of a Bayesian network and vertex-separation queries. Used to
// certify Markov quilts (Definition 4.2): if X_Q separates X_i from X_R in
// the moral graph, then X_R is conditionally independent of X_i given X_Q.
// (Moral-graph separation is a sound — if conservative — certificate of the
// conditional independence the quilt definition requires.)
#ifndef PUFFERFISH_GRAPHICAL_MORAL_GRAPH_H_
#define PUFFERFISH_GRAPHICAL_MORAL_GRAPH_H_

#include <vector>

#include "graphical/bayesian_network.h"

namespace pf {

/// \brief Undirected moralization of a Bayesian network: every node is linked
/// to its parents, and co-parents of each node are linked ("married").
class MoralGraph {
 public:
  explicit MoralGraph(const BayesianNetwork& bn);

  std::size_t num_nodes() const { return adjacency_.size(); }
  const std::vector<int>& neighbors(int v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }

  /// Nodes reachable from `start` without entering any node of `blocked`.
  /// `start` must not be in `blocked`; the result includes `start`.
  std::vector<int> ReachableAvoiding(int start,
                                     const std::vector<int>& blocked) const;

  /// True iff `blocked` separates `a` from `b` (no path avoiding `blocked`).
  bool Separates(const std::vector<int>& blocked, int a, int b) const;

 private:
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace pf

#endif  // PUFFERFISH_GRAPHICAL_MORAL_GRAPH_H_
