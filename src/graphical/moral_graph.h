// Moral graph of a Bayesian network and vertex-separation queries. Used to
// certify Markov quilts (Definition 4.2): if X_Q separates X_i from X_R in
// the moral graph, then X_R is conditionally independent of X_i given X_Q.
// (Moral-graph separation is a sound — if conservative — certificate of the
// conditional independence the quilt definition requires.)
#ifndef PUFFERFISH_GRAPHICAL_MORAL_GRAPH_H_
#define PUFFERFISH_GRAPHICAL_MORAL_GRAPH_H_

#include <vector>

#include "graphical/bayesian_network.h"

namespace pf {

/// \brief Undirected moralization of a Bayesian network: every node is linked
/// to its parents, and co-parents of each node are linked ("married").
class MoralGraph {
 public:
  explicit MoralGraph(const BayesianNetwork& bn);

  /// \brief Wraps an explicit undirected adjacency list (used for
  /// canonically relabeled networks, where no BayesianNetwork object
  /// exists). The input is symmetrized, deduplicated, and sorted.
  explicit MoralGraph(const std::vector<std::vector<int>>& adjacency);

  std::size_t num_nodes() const { return adjacency_.size(); }
  const std::vector<int>& neighbors(int v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  /// The raw adjacency lists (sorted), e.g. for MinFillWidth.
  const std::vector<std::vector<int>>& adjacency() const { return adjacency_; }

  /// Nodes reachable from `start` without entering any node of `blocked`.
  /// `start` must not be in `blocked`; the result includes `start`.
  std::vector<int> ReachableAvoiding(int start,
                                     const std::vector<int>& blocked) const;

  /// True iff `blocked` separates `a` from `b` (no path avoiding `blocked`).
  bool Separates(const std::vector<int>& blocked, int a, int b) const;

  /// \brief BFS distance from `start` to every node; -1 for nodes in other
  /// connected components.
  std::vector<int> Distances(int start) const;

  /// \brief Nodes at BFS distance 1..radius from `node` (excluding `node`
  /// itself), sorted ascending. radius 0 returns an empty set.
  std::vector<int> NeighborsWithin(int node, std::size_t radius) const;

  /// Connected component containing `node`, sorted ascending (includes it).
  std::vector<int> ConnectedComponent(int node) const;

  /// Number of connected components.
  std::size_t NumComponents() const;

 private:
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace pf

#endif  // PUFFERFISH_GRAPHICAL_MORAL_GRAPH_H_
