#include "graphical/bayesian_network.h"

#include <algorithm>
#include <set>

namespace pf {

Status BayesianNetwork::AddNode(std::string name, int arity,
                                std::vector<int> parents, Matrix cpt) {
  if (arity <= 0) return Status::InvalidArgument("arity must be positive");
  std::size_t parent_rows = 1;
  for (int p : parents) {
    if (p < 0 || static_cast<std::size_t>(p) >= nodes_.size()) {
      return Status::InvalidArgument(
          "parent index out of range (parents must precede children)");
    }
    parent_rows *= static_cast<std::size_t>(nodes_[p].arity);
  }
  if (cpt.rows() != parent_rows || cpt.cols() != static_cast<std::size_t>(arity)) {
    return Status::InvalidArgument("CPT dimensions do not match parents/arity");
  }
  if (!cpt.IsRowStochastic(1e-8)) {
    return Status::InvalidArgument("CPT rows must be probability distributions");
  }
  nodes_.push_back({std::move(name), arity, std::move(parents), std::move(cpt)});
  return Status::OK();
}

std::size_t BayesianNetwork::ParentIndex(const Node& n, const Assignment& a) const {
  std::size_t idx = 0;
  for (int p : n.parents) {
    idx = idx * static_cast<std::size_t>(nodes_[p].arity) +
          static_cast<std::size_t>(a[p]);
  }
  return idx;
}

Result<double> BayesianNetwork::JointProbability(const Assignment& a) const {
  if (a.size() != nodes_.size()) {
    return Status::InvalidArgument("assignment size mismatch");
  }
  double p = 1.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (a[i] < 0 || a[i] >= n.arity) {
      return Status::OutOfRange("assignment value out of range");
    }
    p *= n.cpt(ParentIndex(n, a), static_cast<std::size_t>(a[i]));
    if (p == 0.0) return 0.0;
  }
  return p;
}

Result<std::size_t> BayesianNetwork::NumAssignments(std::size_t limit) const {
  std::size_t total = 1;
  for (const Node& n : nodes_) {
    if (total > limit / static_cast<std::size_t>(n.arity)) {
      return Status::OutOfRange("assignment space exceeds enumeration limit");
    }
    total *= static_cast<std::size_t>(n.arity);
  }
  return total;
}

Status BayesianNetwork::ForEachAssignment(
    const std::function<void(const Assignment&, double)>& fn,
    std::size_t limit) const {
  PF_ASSIGN_OR_RETURN(std::size_t total, NumAssignments(limit));
  Assignment a(nodes_.size(), 0);
  for (std::size_t count = 0; count < total; ++count) {
    double p = 1.0;
    for (std::size_t i = 0; i < nodes_.size() && p > 0.0; ++i) {
      const Node& n = nodes_[i];
      p *= n.cpt(ParentIndex(n, a), static_cast<std::size_t>(a[i]));
    }
    if (p > 0.0) fn(a, p);
    // Increment mixed-radix counter (last node fastest).
    for (std::size_t i = nodes_.size(); i-- > 0;) {
      if (++a[i] < nodes_[i].arity) break;
      a[i] = 0;
    }
  }
  return Status::OK();
}

std::vector<Factor> BayesianNetwork::Factors() const {
  std::vector<Factor> factors;
  factors.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    std::vector<int> parent_arities;
    parent_arities.reserve(n.parents.size());
    for (int p : n.parents) {
      parent_arities.push_back(nodes_[static_cast<std::size_t>(p)].arity);
    }
    factors.push_back(CptFactor(n.parents, parent_arities,
                                static_cast<int>(i), n.arity, n.cpt));
  }
  return factors;
}

std::vector<int> BayesianNetwork::Arities() const {
  std::vector<int> arities;
  arities.reserve(nodes_.size());
  for (const Node& n : nodes_) arities.push_back(n.arity);
  return arities;
}

Result<Vector> BayesianNetwork::ConditionalJoint(
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    InferenceBackend backend) const {
  std::size_t cells = 1;
  for (int t : targets) {
    if (t < 0 || static_cast<std::size_t>(t) >= nodes_.size()) {
      return Status::InvalidArgument("target index out of range");
    }
    cells *= static_cast<std::size_t>(nodes_[t].arity);
  }
  for (const auto& [var, val] : evidence) {
    if (var < 0 || static_cast<std::size_t>(var) >= nodes_.size() || val < 0 ||
        val >= nodes_[static_cast<std::size_t>(var)].arity) {
      return Status::InvalidArgument("evidence out of range");
    }
  }
  if (backend != InferenceBackend::kEnumeration) {
    return FactorConditionalJoint(Factors(), Arities(), targets, evidence,
                                  limit, InferenceBackend::kVariableElimination);
  }
  // Reference path: the original full-joint enumeration, byte-for-byte.
  Vector mass(cells, 0.0);
  double evidence_mass = 0.0;
  PF_RETURN_NOT_OK(ForEachAssignment(
      [&](const Assignment& a, double p) {
        for (const auto& [var, val] : evidence) {
          if (a[static_cast<std::size_t>(var)] != val) return;
        }
        evidence_mass += p;
        std::size_t idx = 0;
        for (int t : targets) {
          idx = idx * static_cast<std::size_t>(
                          nodes_[static_cast<std::size_t>(t)].arity) +
                static_cast<std::size_t>(a[static_cast<std::size_t>(t)]);
        }
        mass[idx] += p;
      },
      limit));
  if (evidence_mass <= 0.0) {
    return Status::FailedPrecondition("evidence has probability zero");
  }
  for (double& v : mass) v /= evidence_mass;
  return mass;
}

Result<Vector> BayesianNetwork::Marginal(int variable) const {
  return ConditionalJoint({variable}, {});
}

std::vector<int> BayesianNetwork::Children(int i) const {
  std::vector<int> kids;
  for (std::size_t j = 0; j < nodes_.size(); ++j) {
    const auto& parents = nodes_[j].parents;
    if (std::find(parents.begin(), parents.end(), i) != parents.end()) {
      kids.push_back(static_cast<int>(j));
    }
  }
  return kids;
}

std::vector<int> BayesianNetwork::MarkovBlanket(int i) const {
  std::set<int> blanket;
  for (int p : nodes_[static_cast<std::size_t>(i)].parents) blanket.insert(p);
  for (int c : Children(i)) {
    blanket.insert(c);
    for (int cp : nodes_[static_cast<std::size_t>(c)].parents) {
      if (cp != i) blanket.insert(cp);
    }
  }
  return {blanket.begin(), blanket.end()};
}

Assignment BayesianNetwork::Sample(Rng* rng) const {
  Assignment a(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    a[i] = static_cast<int>(rng->Categorical(n.cpt.Row(ParentIndex(n, a))));
  }
  return a;
}

Result<BayesianNetwork> BayesianNetwork::FromMarkovChain(const Vector& initial,
                                                         const Matrix& transition,
                                                         std::size_t length) {
  if (length == 0) return Status::InvalidArgument("chain length must be positive");
  const int k = static_cast<int>(initial.size());
  BayesianNetwork bn;
  Matrix init_cpt(1, initial.size());
  for (std::size_t j = 0; j < initial.size(); ++j) init_cpt(0, j) = initial[j];
  PF_RETURN_NOT_OK(bn.AddNode("X0", k, {}, init_cpt));
  for (std::size_t t = 1; t < length; ++t) {
    PF_RETURN_NOT_OK(bn.AddNode("X" + std::to_string(t), k,
                                {static_cast<int>(t - 1)}, transition));
  }
  return bn;
}

}  // namespace pf
