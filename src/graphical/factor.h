// Discrete factors (nonnegative multi-dimensional tables) — the working
// representation of structured inference. A factor holds a value for every
// joint assignment of its scope variables in mixed-radix order (first scope
// variable most significant, matching the CPT and ConditionalJoint
// conventions throughout the library). Variable-elimination inference
// (graphical/elimination.h) is built from the three kernels here: product,
// marginalization, and evidence reduction.
//
// Layout notes: values are a flat contiguous buffer, and the elimination
// driver always places the variable about to be summed out LAST in the
// scope, so marginalization reduces contiguous blocks (the same
// cache-conscious discipline as common/matrix's blocked kernels; pairwise
// eliminations of two 2-variable factors route through MultiplyBlocked
// directly).
#ifndef PUFFERFISH_GRAPHICAL_FACTOR_H_
#define PUFFERFISH_GRAPHICAL_FACTOR_H_

#include <cstddef>
#include <vector>

#include "common/arena.h"
#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// \brief A nonnegative table over a set of discrete variables.
///
/// `scope` lists distinct variable ids; `arity[i]` is the domain size of
/// `scope[i]`; `values` has one entry per joint assignment of the scope in
/// mixed-radix order with `scope[0]` most significant. A factor with an
/// empty scope is a scalar (one value).
struct Factor {
  std::vector<int> scope;
  std::vector<int> arity;
  Vector values;

  std::size_t size() const { return values.size(); }
  /// Bytes held by the value table (the unit of EliminationStats).
  std::size_t bytes() const { return values.size() * sizeof(double); }
  bool Contains(int var) const;
};

/// \brief The factor of one CPT row-block: scope = parents (in their stored
/// order, most significant first) followed by the child, values = the CPT
/// flattened row-major. This is exactly P(child | parents) laid out so the
/// factor product of all CPT factors is the joint.
Factor CptFactor(const std::vector<int>& parents,
                 const std::vector<int>& parent_arities, int child,
                 int child_arity, const Matrix& cpt);

/// \brief Conditions a factor on `var = value`: the variable is dropped
/// from the scope and only the matching slice of the table is kept. Factors
/// not containing `var` are returned unchanged.
Factor Reduce(const Factor& f, int var, int value);

/// \brief Product of `factors` laid out over an explicit result scope
/// (which must cover every input scope; `result_arity` parallel to it).
/// Each output cell is the product of the matching input cells; inputs are
/// multiplied in list order, so the result is deterministic for a given
/// factor list. Output cells are walked in row-major order with
/// incrementally maintained input indices (no per-cell index recompute).
Factor MultiplyAll(const std::vector<const Factor*>& factors,
                   std::vector<int> result_scope,
                   std::vector<int> result_arity);

/// \brief Sums out the LAST scope variable: values are contiguous
/// arity-sized blocks, so this is a row-sum over the table viewed as a
/// (size/arity) x arity matrix. Ascending-index summation (the same order
/// the naive matrix kernel uses).
Factor MarginalizeLast(const Factor& f);

// ----------------------------------------------------------------------
// Raw-buffer kernels: the same three operations over borrowed storage, so
// the elimination hot path can run them over arena-backed tables with zero
// heap allocations. Results are cell-for-cell identical to the Factor
// versions above (which are now wrappers).
// ----------------------------------------------------------------------

/// \brief The vectorized pairwise factor-product kernel: elementwise
/// out[i] = a[i] * b[i], dispatched over SimdLevel (AVX2 when available).
/// Bit-exact at every level — each output cell is a single multiplication,
/// so there is no summation order to preserve. out must not overlap a/b.
void PairwiseProductKernel(const double* a, const double* b, double* out,
                           std::size_t n);

/// A borrowed view of one factor table (scope/arity/values live elsewhere,
/// e.g. in an arena).
struct FactorView {
  const int* scope = nullptr;
  const int* arity = nullptr;
  std::size_t dims = 0;
  const double* values = nullptr;
};

/// \brief Raw core of MultiplyAll: writes the product of `views` laid out
/// over (result_scope, result_arity, result_dims) into `out`, which the
/// caller sizes to the product of the result arities. Stride/digit scratch
/// comes from `scratch` and is rewound before returning, so warm calls
/// allocate nothing. The innermost result digit runs through the pairwise
/// kernel when both inputs walk it contiguously (two-view products — the
/// dominant elimination shape); cell values are identical to MultiplyAll
/// either way.
void MultiplyViewsInto(const FactorView* views, std::size_t num_views,
                       const int* result_scope, const int* result_arity,
                       std::size_t result_dims, double* out, Arena* scratch);

/// \brief Raw core of MarginalizeLast: row-sums `values`, viewed as a
/// rows x k matrix, into out[0..rows) (ascending-index summation).
void MarginalizeLastInto(const double* values, std::size_t rows,
                         std::size_t k, double* out);

}  // namespace pf

#endif  // PUFFERFISH_GRAPHICAL_FACTOR_H_
