#include "graphical/markov_quilt.h"

#include <algorithm>

namespace pf {

std::string MarkovQuilt::ToString() const {
  std::string s = "quilt{";
  for (std::size_t i = 0; i < quilt.size(); ++i) {
    if (i > 0) s += ",";
    s += "X" + std::to_string(quilt[i]);
  }
  s += "} near=" + std::to_string(nearby_count);
  return s;
}

std::pair<int, int> ChainQuiltOffsets(const MarkovQuilt& quilt) {
  int a = 0, b = 0;
  for (int q : quilt.quilt) {
    if (q < quilt.target) a = quilt.target - q;
    if (q > quilt.target) b = q - quilt.target;
  }
  return {a, b};
}

MarkovQuilt TrivialQuilt(int target, std::size_t num_nodes) {
  MarkovQuilt q;
  q.target = target;
  q.nearby_count = num_nodes;
  return q;
}

Result<MarkovQuilt> ChainQuilt(std::size_t length, int target, int a, int b) {
  const int n = static_cast<int>(length);
  if (target < 0 || target >= n) {
    return Status::InvalidArgument("target outside chain");
  }
  if (a < 0 || b < 0 || (a == 0 && b == 0)) {
    return Status::InvalidArgument("need a >= 1 or b >= 1 (use TrivialQuilt)");
  }
  const int left = target - a;   // Index of X_{i-a} if a > 0.
  const int right = target + b;  // Index of X_{i+b} if b > 0.
  if (a > 0 && left < 0) return Status::OutOfRange("left quilt endpoint < 0");
  if (b > 0 && right >= n) return Status::OutOfRange("right quilt endpoint >= T");
  MarkovQuilt q;
  q.target = target;
  if (a > 0) q.quilt.push_back(left);
  if (b > 0) q.quilt.push_back(right);
  const int near_lo = (a > 0) ? left + 1 : 0;
  const int near_hi = (b > 0) ? right - 1 : n - 1;
  q.nearby_count = static_cast<std::size_t>(near_hi - near_lo + 1);
  return q;
}

std::vector<MarkovQuilt> ChainQuiltFamily(std::size_t length, int target,
                                          std::size_t max_nearby) {
  std::vector<MarkovQuilt> out;
  const int n = static_cast<int>(length);
  const int i = target;
  // Two-sided quilts {X_{i-a}, X_{i+b}}: nearby count a + b - 1.
  for (int a = 1; a <= i; ++a) {
    if (static_cast<std::size_t>(a) > max_nearby) break;
    for (int b = 1; i + b < n; ++b) {
      if (static_cast<std::size_t>(a + b - 1) > max_nearby) break;
      Result<MarkovQuilt> q = ChainQuilt(length, target, a, b);
      if (q.ok()) out.push_back(std::move(q).value());
    }
  }
  // Left-only quilts {X_{i-a}}: nearby count (n-1) - (i-a).
  for (int a = 1; a <= i; ++a) {
    const std::size_t near_count = static_cast<std::size_t>(n - 1 - (i - a));
    if (near_count > max_nearby) continue;
    Result<MarkovQuilt> q = ChainQuilt(length, target, a, 0);
    if (q.ok()) out.push_back(std::move(q).value());
  }
  // Right-only quilts {X_{i+b}}: nearby count i + b.
  for (int b = 1; i + b < n; ++b) {
    const std::size_t near_count = static_cast<std::size_t>(i + b);
    if (near_count > max_nearby) break;
    Result<MarkovQuilt> q = ChainQuilt(length, target, 0, b);
    if (q.ok()) out.push_back(std::move(q).value());
  }
  out.push_back(TrivialQuilt(target, length));
  return out;
}

MarkovQuilt QuiltFromSeparator(const MoralGraph& graph, int target,
                               std::vector<int> quilt) {
  MarkovQuilt q;
  q.target = target;
  std::sort(quilt.begin(), quilt.end());
  q.quilt = quilt;
  const std::vector<int> reach = graph.ReachableAvoiding(target, quilt);
  std::vector<bool> in_quilt(graph.num_nodes(), false);
  for (int v : quilt) in_quilt[static_cast<std::size_t>(v)] = true;
  std::vector<bool> near(graph.num_nodes(), false);
  for (int v : reach) near[static_cast<std::size_t>(v)] = true;
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    if (in_quilt[v]) continue;
    if (near[v]) {
      q.nearby.push_back(static_cast<int>(v));
    } else {
      q.remote.push_back(static_cast<int>(v));
    }
  }
  q.nearby_count = q.nearby.size();
  return q;
}

namespace {
// Recursively extends `current` with indices from `candidates[start...]`.
void EnumerateSubsets(const MoralGraph& graph, int target,
                      const std::vector<int>& candidates, std::size_t start,
                      std::vector<int>* current, std::size_t max_size,
                      std::vector<MarkovQuilt>* out) {
  if (!current->empty()) {
    MarkovQuilt q = QuiltFromSeparator(graph, target, *current);
    if (!q.remote.empty()) out->push_back(std::move(q));
  }
  if (current->size() == max_size) return;
  for (std::size_t i = start; i < candidates.size(); ++i) {
    current->push_back(candidates[i]);
    EnumerateSubsets(graph, target, candidates, i + 1, current, max_size, out);
    current->pop_back();
  }
}

// The canonical ordering every quilt generator pins: (size, node ids,
// nearby count). Full-field comparison so dedup with std::unique is exact.
bool QuiltLess(const MarkovQuilt& a, const MarkovQuilt& b) {
  if (a.quilt.size() != b.quilt.size()) return a.quilt.size() < b.quilt.size();
  if (a.quilt != b.quilt) return a.quilt < b.quilt;
  if (a.nearby_count != b.nearby_count) return a.nearby_count < b.nearby_count;
  if (a.nearby != b.nearby) return a.nearby < b.nearby;
  return a.remote < b.remote;
}

bool QuiltEqual(const MarkovQuilt& a, const MarkovQuilt& b) {
  return a.target == b.target && a.quilt == b.quilt &&
         a.nearby_count == b.nearby_count && a.nearby == b.nearby &&
         a.remote == b.remote;
}

// Sorts by the canonical order and drops exact duplicates.
void CanonicalizeQuiltList(std::vector<MarkovQuilt>* quilts) {
  std::sort(quilts->begin(), quilts->end(), QuiltLess);
  quilts->erase(std::unique(quilts->begin(), quilts->end(), QuiltEqual),
                quilts->end());
}

// On disconnected graphs the empty separator already splits off every
// other component: X_Q = {} has max-influence 0 by definition and
// card(X_N) = |component(target)| < n, strictly better than the trivial
// quilt. Returns true (and appends) when the graph is disconnected.
bool AppendComponentQuilt(const MoralGraph& graph, int target,
                          std::vector<MarkovQuilt>* out) {
  MarkovQuilt q = QuiltFromSeparator(graph, target, {});
  if (q.remote.empty()) return false;
  out->push_back(std::move(q));
  return true;
}
}  // namespace

std::vector<MarkovQuilt> EnumerateQuilts(const MoralGraph& graph, int target,
                                         std::size_t max_quilt_size) {
  std::vector<int> candidates;
  for (std::size_t v = 0; v < graph.num_nodes(); ++v) {
    if (static_cast<int>(v) != target) candidates.push_back(static_cast<int>(v));
  }
  std::vector<MarkovQuilt> out;
  std::vector<int> current;
  EnumerateSubsets(graph, target, candidates, 0, &current, max_quilt_size, &out);
  AppendComponentQuilt(graph, target, &out);
  out.push_back(TrivialQuilt(target, graph.num_nodes()));
  CanonicalizeQuiltList(&out);
  return out;
}

std::vector<MarkovQuilt> SeparatorQuilts(const MoralGraph& graph, int target,
                                         const SeparatorSearchOptions& options) {
  std::vector<MarkovQuilt> out;
  AppendComponentQuilt(graph, target, &out);
  const std::vector<int> dist = graph.Distances(target);
  for (std::size_t r = 1; r <= options.max_radius; ++r) {
    std::vector<int> sphere, pruned;
    for (std::size_t v = 0; v < dist.size(); ++v) {
      if (dist[v] != static_cast<int>(r)) continue;
      sphere.push_back(static_cast<int>(v));
      for (int w : graph.neighbors(static_cast<int>(v))) {
        if (dist[static_cast<std::size_t>(w)] > static_cast<int>(r)) {
          pruned.push_back(static_cast<int>(v));
          break;
        }
      }
    }
    // No sphere node borders anything farther: the component ends here and
    // larger radii cannot produce new cuts.
    if (pruned.empty()) break;
    for (const std::vector<int>* cut : {&sphere, &pruned}) {
      if (cut->size() > options.max_quilt_size) continue;
      MarkovQuilt q = QuiltFromSeparator(graph, target, *cut);
      if (!q.remote.empty()) out.push_back(std::move(q));
    }
  }
  out.push_back(TrivialQuilt(target, graph.num_nodes()));
  CanonicalizeQuiltList(&out);
  return out;
}

}  // namespace pf
