#include "graphical/elimination.h"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

namespace pf {

const char* InferenceBackendName(InferenceBackend backend) {
  switch (backend) {
    case InferenceBackend::kAuto: return "auto";
    case InferenceBackend::kVariableElimination: return "elimination";
    case InferenceBackend::kEnumeration: return "enumeration";
  }
  return "unknown";
}

void EliminationStats::MergeMax(const EliminationStats& other) {
  induced_width = std::max(induced_width, other.induced_width);
  peak_factor_bytes = std::max(peak_factor_bytes, other.peak_factor_bytes);
}

std::vector<int> MinFillOrder(const std::vector<std::vector<int>>& adjacency,
                              const std::vector<bool>& eliminable,
                              std::size_t* induced_width) {
  const std::size_t n = adjacency.size();
  std::vector<std::set<int>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int w : adjacency[v]) {
      if (w != static_cast<int>(v)) adj[v].insert(w);
    }
  }
  std::vector<bool> removed(n, false);
  std::vector<int> order;
  std::size_t width = 0;
  std::size_t to_remove = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (eliminable[v]) ++to_remove;
  }
  order.reserve(to_remove);
  for (std::size_t step = 0; step < to_remove; ++step) {
    int best = -1;
    std::size_t best_fill = std::numeric_limits<std::size_t>::max();
    for (std::size_t v = 0; v < n; ++v) {
      if (!eliminable[v] || removed[v]) continue;
      std::size_t fill = 0;
      for (auto a = adj[v].begin(); a != adj[v].end(); ++a) {
        auto b = a;
        for (++b; b != adj[v].end(); ++b) {
          if (adj[static_cast<std::size_t>(*a)].count(*b) == 0) ++fill;
        }
      }
      if (fill < best_fill) {  // Ties resolve to the smallest id (scan order).
        best_fill = fill;
        best = static_cast<int>(v);
      }
    }
    const std::size_t bv = static_cast<std::size_t>(best);
    width = std::max(width, adj[bv].size());
    for (auto a = adj[bv].begin(); a != adj[bv].end(); ++a) {
      auto b = a;
      for (++b; b != adj[bv].end(); ++b) {
        adj[static_cast<std::size_t>(*a)].insert(*b);
        adj[static_cast<std::size_t>(*b)].insert(*a);
      }
    }
    for (int a : adj[bv]) adj[static_cast<std::size_t>(a)].erase(best);
    adj[bv].clear();
    removed[bv] = true;
    order.push_back(best);
  }
  if (induced_width != nullptr) *induced_width = width;
  return order;
}

std::size_t MinFillWidth(const std::vector<std::vector<int>>& adjacency) {
  std::size_t width = 0;
  MinFillOrder(adjacency, std::vector<bool>(adjacency.size(), true), &width);
  return width;
}

namespace {

Status ValidateQuery(const std::vector<int>& arities,
                     const std::vector<int>& targets,
                     const std::vector<std::pair<int, int>>& evidence) {
  const int n = static_cast<int>(arities.size());
  for (int t : targets) {
    if (t < 0 || t >= n) return Status::InvalidArgument("target index out of range");
  }
  for (const auto& [var, val] : evidence) {
    if (var < 0 || var >= n || val < 0 ||
        val >= arities[static_cast<std::size_t>(var)]) {
      return Status::InvalidArgument("evidence out of range");
    }
  }
  return Status::OK();
}

Result<std::size_t> CheckedCells(const std::vector<int>& arities,
                                 std::size_t limit, const char* what) {
  std::size_t cells = 1;
  for (int a : arities) {
    if (cells > limit / static_cast<std::size_t>(a)) {
      return Status::InvalidArgument(
          std::string(what) + " exceeds the inference limit (" +
          std::to_string(limit) + ")");
    }
    cells *= static_cast<std::size_t>(a);
  }
  return cells;
}

// Reference backend: walks the full joint-assignment space with
// incrementally maintained per-factor indices. Exponential in the variable
// count; `limit` guards the assignment-space size.
Result<Vector> EnumerationConditionalJoint(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit) {
  PF_ASSIGN_OR_RETURN(const std::size_t cells,
                      CheckedCells(arities, limit, "joint-assignment space"));
  const std::size_t n = arities.size();
  // Per-factor stride of each variable digit (0 when absent from scope).
  std::vector<std::vector<std::size_t>> stride(
      factors.size(), std::vector<std::size_t>(n, 0));
  for (std::size_t fi = 0; fi < factors.size(); ++fi) {
    const Factor& f = factors[fi];
    for (std::size_t p = 0; p < f.scope.size(); ++p) {
      std::size_t s = 1;
      for (std::size_t i = p + 1; i < f.scope.size(); ++i) {
        s *= static_cast<std::size_t>(f.arity[i]);
      }
      stride[fi][static_cast<std::size_t>(f.scope[p])] = s;
    }
  }
  std::size_t target_cells = 1;
  for (int t : targets) {
    target_cells *= static_cast<std::size_t>(arities[static_cast<std::size_t>(t)]);
  }
  Vector mass(target_cells, 0.0);
  double evidence_mass = 0.0;
  std::vector<int> digits(n, 0);
  std::vector<std::size_t> idx(factors.size(), 0);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    bool matches = true;
    for (const auto& [var, val] : evidence) {
      if (digits[static_cast<std::size_t>(var)] != val) {
        matches = false;
        break;
      }
    }
    if (matches) {
      double p = 1.0;
      for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        p *= factors[fi].values[idx[fi]];
      }
      if (p > 0.0) {
        evidence_mass += p;
        std::size_t ti = 0;
        for (int t : targets) {
          ti = ti * static_cast<std::size_t>(arities[static_cast<std::size_t>(t)]) +
               static_cast<std::size_t>(digits[static_cast<std::size_t>(t)]);
        }
        mass[ti] += p;
      }
    }
    for (std::size_t d = n; d-- > 0;) {
      ++digits[d];
      for (std::size_t fi = 0; fi < factors.size(); ++fi) idx[fi] += stride[fi][d];
      if (digits[d] < arities[d]) break;
      digits[d] = 0;
      for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        idx[fi] -= stride[fi][d] * static_cast<std::size_t>(arities[d]);
      }
    }
  }
  if (!(evidence_mass > 0.0)) {
    return Status::FailedPrecondition("evidence has probability zero");
  }
  for (double& v : mass) v /= evidence_mass;
  return mass;
}

// One elimination step: multiplies every factor containing `var` and sums
// `var` out. Pairs of 2-variable factors (the dominant shape on chains and
// trees) route through the cache-blocked matrix kernel.
Result<Factor> EliminateVar(std::vector<Factor>* working, int var,
                            std::size_t limit, std::size_t live_bytes,
                            EliminationStats* stats) {
  std::vector<const Factor*> involved;
  std::vector<int> combined_scope, combined_arity;
  for (const Factor& f : *working) {
    if (!f.Contains(var)) continue;
    involved.push_back(&f);
    for (std::size_t p = 0; p < f.scope.size(); ++p) {
      if (f.scope[p] == var) continue;
      if (std::find(combined_scope.begin(), combined_scope.end(), f.scope[p]) ==
          combined_scope.end()) {
        combined_scope.push_back(f.scope[p]);
        combined_arity.push_back(f.arity[p]);
      }
    }
  }
  int var_arity = 0;
  for (const Factor* f : involved) {
    for (std::size_t p = 0; p < f->scope.size(); ++p) {
      if (f->scope[p] == var) var_arity = f->arity[p];
    }
  }
  std::vector<int> table_arity = combined_arity;
  table_arity.push_back(var_arity);
  PF_ASSIGN_OR_RETURN(
      const std::size_t cells,
      CheckedCells(table_arity, limit,
                   "elimination clique table (induced width too large)"));
  if (stats != nullptr) {
    stats->induced_width = std::max(stats->induced_width, combined_scope.size());
    stats->peak_factor_bytes = std::max(stats->peak_factor_bytes,
                                        live_bytes + cells * sizeof(double));
  }
  // Fast path: exactly two pairwise factors sharing only `var` — the
  // product-then-marginalize is literally a matrix product A(x, var) *
  // B(var, y), served by the blocked kernel.
  if (involved.size() == 2 && combined_scope.size() == 2 &&
      involved[0]->scope.size() == 2 && involved[1]->scope.size() == 2) {
    auto as_matrix = [var](const Factor& f, bool var_as_cols) {
      const bool var_last = f.scope[1] == var;
      const std::size_t rows = static_cast<std::size_t>(f.arity[0]);
      const std::size_t cols = static_cast<std::size_t>(f.arity[1]);
      Matrix m(rows, cols);
      for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c) m(r, c) = f.values[r * cols + c];
      }
      // Orient so `var` sits on the requested side.
      if (var_last != var_as_cols) {
        return m.Transpose();
      }
      return m;
    };
    const Factor& fa =
        involved[0]->scope[0] == combined_scope[0] ||
                involved[0]->scope[1] == combined_scope[0]
            ? *involved[0]
            : *involved[1];
    const Factor& fb = &fa == involved[0] ? *involved[1] : *involved[0];
    const Matrix a = as_matrix(fa, /*var_as_cols=*/true);
    const Matrix b = as_matrix(fb, /*var_as_cols=*/false);
    const Matrix prod = MultiplyBlocked(a, b);
    Factor out;
    out.scope = combined_scope;
    out.arity = combined_arity;
    out.values.reserve(prod.rows() * prod.cols());
    for (std::size_t r = 0; r < prod.rows(); ++r) {
      const double* row = prod.RowPtr(r);
      out.values.insert(out.values.end(), row, row + prod.cols());
    }
    return out;
  }
  std::vector<int> table_scope = combined_scope;
  table_scope.push_back(var);
  const Factor combined = MultiplyAll(involved, table_scope, table_arity);
  return MarginalizeLast(combined);
}

Result<Vector> EliminationConditionalJoint(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    EliminationStats* stats) {
  const std::size_t n = arities.size();
  // Pin evidence: reduce it out of every factor up front. Conflicting
  // duplicate pairs pin the same variable to two values — no assignment
  // matches, which is exactly the zero-probability-evidence condition the
  // enumeration reference reports (first-wins reduction would silently
  // answer as if only the first pair existed).
  std::vector<int> pinned(n, -1);
  for (const auto& [var, val] : evidence) {
    int& pin = pinned[static_cast<std::size_t>(var)];
    if (pin >= 0 && pin != val) {
      return Status::FailedPrecondition("evidence has probability zero");
    }
    pin = val;
  }
  std::vector<Factor> working;
  working.reserve(factors.size());
  for (const Factor& f : factors) {
    Factor g = f;
    for (const auto& [var, val] : evidence) {
      if (g.Contains(var)) g = Reduce(g, var, val);
    }
    working.push_back(std::move(g));
  }
  // Free targets: distinct target variables that the evidence did not pin,
  // in first-occurrence order (the output expansion restores duplicates
  // and pinned coordinates).
  std::vector<int> free_targets, free_arity;
  std::vector<bool> is_free(n, false);
  for (int t : targets) {
    const std::size_t tv = static_cast<std::size_t>(t);
    if (pinned[tv] >= 0 || is_free[tv]) continue;
    is_free[tv] = true;
    free_targets.push_back(t);
    free_arity.push_back(arities[tv]);
  }
  // Interaction graph of the reduced factor scopes.
  std::vector<std::set<int>> adj_sets(n);
  for (const Factor& f : working) {
    for (std::size_t a = 0; a < f.scope.size(); ++a) {
      for (std::size_t b = a + 1; b < f.scope.size(); ++b) {
        adj_sets[static_cast<std::size_t>(f.scope[a])].insert(f.scope[b]);
        adj_sets[static_cast<std::size_t>(f.scope[b])].insert(f.scope[a]);
      }
    }
  }
  std::vector<std::vector<int>> adjacency(n);
  std::vector<bool> eliminable(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    adjacency[v].assign(adj_sets[v].begin(), adj_sets[v].end());
    eliminable[v] = pinned[v] < 0 && !is_free[v];
  }
  const std::vector<int> order = MinFillOrder(adjacency, eliminable, nullptr);
  std::size_t live_bytes = 0;
  for (const Factor& f : working) live_bytes += f.bytes();
  if (stats != nullptr) {
    stats->peak_factor_bytes = std::max(stats->peak_factor_bytes, live_bytes);
  }
  for (int var : order) {
    bool present = false;
    for (const Factor& f : working) present = present || f.Contains(var);
    if (!present) continue;  // Reduced away or never in a scope.
    PF_ASSIGN_OR_RETURN(Factor merged,
                        EliminateVar(&working, var, limit, live_bytes, stats));
    std::vector<Factor> next;
    next.reserve(working.size());
    for (Factor& f : working) {
      if (!f.Contains(var)) next.push_back(std::move(f));
    }
    next.push_back(std::move(merged));
    working = std::move(next);
    live_bytes = 0;
    for (const Factor& f : working) live_bytes += f.bytes();
    if (stats != nullptr) {
      stats->peak_factor_bytes =
          std::max(stats->peak_factor_bytes, live_bytes);
    }
  }
  // Every remaining scope variable is a free target; their product is the
  // unnormalized conditional joint.
  for (const Factor& f : working) {
    for (int v : f.scope) {
      if (!is_free[static_cast<std::size_t>(v)]) {
        return Status::Internal("variable survived elimination unexpectedly");
      }
    }
  }
  PF_RETURN_NOT_OK(
      CheckedCells(free_arity, limit, "target joint table").status());
  std::vector<const Factor*> remaining;
  remaining.reserve(working.size());
  for (const Factor& f : working) remaining.push_back(&f);
  const Factor joint = MultiplyAll(remaining, free_targets, free_arity);
  double total = 0.0;
  for (double v : joint.values) total += v;
  if (!(total > 0.0)) {
    return Status::FailedPrecondition("evidence has probability zero");
  }
  // Expand to the caller's full target tuple: duplicates must agree,
  // pinned targets must match their evidence value, everything else reads
  // from the free-target joint.
  std::size_t out_cells = 1;
  for (int t : targets) {
    out_cells *= static_cast<std::size_t>(arities[static_cast<std::size_t>(t)]);
  }
  Vector out(out_cells, 0.0);
  std::vector<int> digits(targets.size(), 0);
  std::vector<int> assigned(n, -1);
  for (std::size_t cell = 0; cell < out_cells; ++cell) {
    bool consistent = true;
    for (std::size_t d = 0; d < targets.size() && consistent; ++d) {
      const std::size_t tv = static_cast<std::size_t>(targets[d]);
      if (assigned[tv] >= 0 && assigned[tv] != digits[d]) consistent = false;
      if (pinned[tv] >= 0 && pinned[tv] != digits[d]) consistent = false;
      assigned[tv] = digits[d];
    }
    if (consistent) {
      std::size_t ji = 0;
      for (std::size_t p = 0; p < free_targets.size(); ++p) {
        ji = ji * static_cast<std::size_t>(free_arity[p]) +
             static_cast<std::size_t>(
                 assigned[static_cast<std::size_t>(free_targets[p])]);
      }
      out[cell] = joint.values[ji] / total;
    }
    for (std::size_t d = 0; d < targets.size(); ++d) {
      assigned[static_cast<std::size_t>(targets[d])] = -1;
    }
    for (std::size_t d = targets.size(); d-- > 0;) {
      if (++digits[d] < arities[static_cast<std::size_t>(targets[d])]) break;
      digits[d] = 0;
    }
  }
  return out;
}

}  // namespace

Result<Vector> FactorConditionalJoint(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    InferenceBackend backend, EliminationStats* stats) {
  PF_RETURN_NOT_OK(ValidateQuery(arities, targets, evidence));
  if (backend == InferenceBackend::kEnumeration) {
    return EnumerationConditionalJoint(factors, arities, targets, evidence,
                                       limit);
  }
  return EliminationConditionalJoint(factors, arities, targets, evidence,
                                     limit, stats);
}

}  // namespace pf
