#include "graphical/elimination.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <set>
#include <string>

#include "common/arena.h"
#include "common/deadline.h"

namespace pf {

const char* InferenceBackendName(InferenceBackend backend) {
  switch (backend) {
    case InferenceBackend::kAuto: return "auto";
    case InferenceBackend::kVariableElimination: return "elimination";
    case InferenceBackend::kEnumeration: return "enumeration";
  }
  return "unknown";
}

void EliminationStats::MergeMax(const EliminationStats& other) {
  induced_width = std::max(induced_width, other.induced_width);
  peak_factor_bytes = std::max(peak_factor_bytes, other.peak_factor_bytes);
}

std::vector<int> MinFillOrder(const std::vector<std::vector<int>>& adjacency,
                              const std::vector<bool>& eliminable,
                              std::size_t* induced_width) {
  const std::size_t n = adjacency.size();
  std::vector<std::set<int>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int w : adjacency[v]) {
      if (w != static_cast<int>(v)) adj[v].insert(w);
    }
  }
  std::vector<bool> removed(n, false);
  std::vector<int> order;
  std::size_t width = 0;
  std::size_t to_remove = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (eliminable[v]) ++to_remove;
  }
  order.reserve(to_remove);
  for (std::size_t step = 0; step < to_remove; ++step) {
    int best = -1;
    std::size_t best_fill = std::numeric_limits<std::size_t>::max();
    for (std::size_t v = 0; v < n; ++v) {
      if (!eliminable[v] || removed[v]) continue;
      std::size_t fill = 0;
      for (auto a = adj[v].begin(); a != adj[v].end(); ++a) {
        auto b = a;
        for (++b; b != adj[v].end(); ++b) {
          if (adj[static_cast<std::size_t>(*a)].count(*b) == 0) ++fill;
        }
      }
      if (fill < best_fill) {  // Ties resolve to the smallest id (scan order).
        best_fill = fill;
        best = static_cast<int>(v);
      }
    }
    const std::size_t bv = static_cast<std::size_t>(best);
    width = std::max(width, adj[bv].size());
    for (auto a = adj[bv].begin(); a != adj[bv].end(); ++a) {
      auto b = a;
      for (++b; b != adj[bv].end(); ++b) {
        adj[static_cast<std::size_t>(*a)].insert(*b);
        adj[static_cast<std::size_t>(*b)].insert(*a);
      }
    }
    for (int a : adj[bv]) adj[static_cast<std::size_t>(a)].erase(best);
    adj[bv].clear();
    removed[bv] = true;
    order.push_back(best);
  }
  if (induced_width != nullptr) *induced_width = width;
  return order;
}

std::size_t MinFillWidth(const std::vector<std::vector<int>>& adjacency) {
  std::size_t width = 0;
  MinFillOrder(adjacency, std::vector<bool>(adjacency.size(), true), &width);
  return width;
}

namespace {

Status ValidateQuery(const std::vector<int>& arities,
                     const std::vector<int>& targets,
                     const std::vector<std::pair<int, int>>& evidence) {
  const int n = static_cast<int>(arities.size());
  for (int t : targets) {
    if (t < 0 || t >= n) return Status::InvalidArgument("target index out of range");
  }
  for (const auto& [var, val] : evidence) {
    if (var < 0 || var >= n || val < 0 ||
        val >= arities[static_cast<std::size_t>(var)]) {
      return Status::InvalidArgument("evidence out of range");
    }
  }
  return Status::OK();
}

Result<std::size_t> CheckedCells(const std::vector<int>& arities,
                                 std::size_t limit, const char* what) {
  std::size_t cells = 1;
  for (int a : arities) {
    if (cells > limit / static_cast<std::size_t>(a)) {
      return Status::InvalidArgument(
          std::string(what) + " exceeds the inference limit (" +
          std::to_string(limit) + ")");
    }
    cells *= static_cast<std::size_t>(a);
  }
  return cells;
}

// Reference backend: walks the full joint-assignment space with
// incrementally maintained per-factor indices. Exponential in the variable
// count; `limit` guards the assignment-space size.
Result<Vector> EnumerationConditionalJoint(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit) {
  PF_ASSIGN_OR_RETURN(const std::size_t cells,
                      CheckedCells(arities, limit, "joint-assignment space"));
  const std::size_t n = arities.size();
  // Per-factor stride of each variable digit (0 when absent from scope).
  std::vector<std::vector<std::size_t>> stride(
      factors.size(), std::vector<std::size_t>(n, 0));
  for (std::size_t fi = 0; fi < factors.size(); ++fi) {
    const Factor& f = factors[fi];
    for (std::size_t p = 0; p < f.scope.size(); ++p) {
      std::size_t s = 1;
      for (std::size_t i = p + 1; i < f.scope.size(); ++i) {
        s *= static_cast<std::size_t>(f.arity[i]);
      }
      stride[fi][static_cast<std::size_t>(f.scope[p])] = s;
    }
  }
  std::size_t target_cells = 1;
  for (int t : targets) {
    target_cells *= static_cast<std::size_t>(arities[static_cast<std::size_t>(t)]);
  }
  Vector mass(target_cells, 0.0);
  double evidence_mass = 0.0;
  std::vector<int> digits(n, 0);
  std::vector<std::size_t> idx(factors.size(), 0);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    bool matches = true;
    for (const auto& [var, val] : evidence) {
      if (digits[static_cast<std::size_t>(var)] != val) {
        matches = false;
        break;
      }
    }
    if (matches) {
      double p = 1.0;
      for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        p *= factors[fi].values[idx[fi]];
      }
      if (p > 0.0) {
        evidence_mass += p;
        std::size_t ti = 0;
        for (int t : targets) {
          ti = ti * static_cast<std::size_t>(arities[static_cast<std::size_t>(t)]) +
               static_cast<std::size_t>(digits[static_cast<std::size_t>(t)]);
        }
        mass[ti] += p;
      }
    }
    for (std::size_t d = n; d-- > 0;) {
      ++digits[d];
      for (std::size_t fi = 0; fi < factors.size(); ++fi) idx[fi] += stride[fi][d];
      if (digits[d] < arities[d]) break;
      digits[d] = 0;
      for (std::size_t fi = 0; fi < factors.size(); ++fi) {
        idx[fi] -= stride[fi][d] * static_cast<std::size_t>(arities[d]);
      }
    }
  }
  if (!(evidence_mass > 0.0)) {
    return Status::FailedPrecondition("evidence has probability zero");
  }
  for (double& v : mass) v /= evidence_mass;
  return mass;
}

// ----------------------------------------------------------------------
// The elimination hot path runs entirely out of a per-thread retained
// workspace: factor tables live in a bump arena (reset per query, blocks
// retained), scope/arity/adjacency scratch lives in pooled vectors that
// keep their capacity, so a warm thread's query performs zero heap
// allocations beyond the caller's output vector (and not even that via
// FactorConditionalJointInto). Results are cell-for-cell identical to the
// historical per-call-allocating implementation: same factor order, same
// min-fill tie rules, same kernels.
// ----------------------------------------------------------------------

// A working factor whose table borrows storage (the caller's input factor
// or the workspace arena); ids/arities live in pooled vectors.
struct WorkFactor {
  std::vector<int> scope;
  std::vector<int> arity;
  const double* values = nullptr;
  std::size_t size = 0;

  bool Contains(int var) const {
    return std::find(scope.begin(), scope.end(), var) != scope.end();
  }
  std::size_t bytes() const { return size * sizeof(double); }
};

struct EliminationWorkspace {
  Arena arena{1u << 16};
  // Index-stable factor pool; [0, used) are live this query.
  std::vector<WorkFactor> pool;
  std::size_t used = 0;
  std::vector<std::size_t> working;  // Pool indices of the working set.
  // Min-fill scratch: sorted neighbor lists (the pooled equivalent of the
  // std::set-based public MinFillOrder, identical tie rules and order).
  std::vector<std::vector<int>> adj;
  std::vector<char> removed;
  std::vector<char> eliminable;
  std::vector<int> order;
  // Query scratch.
  std::vector<int> pinned;
  std::vector<int> free_targets, free_arity;
  std::vector<char> is_free;
  std::vector<FactorView> views;
  std::vector<int> combined_scope, combined_arity, table_arity;
  std::vector<int> digits, assigned;
  // Pairwise matrix fast-path scratch.
  Matrix mat_a, mat_b, mat_prod;
};

EliminationWorkspace& TlsWorkspace() {
  static thread_local EliminationWorkspace ws;
  return ws;
}

std::size_t AcquireWorkFactor(EliminationWorkspace& ws) {
  if (ws.used == ws.pool.size()) ws.pool.emplace_back();
  WorkFactor& f = ws.pool[ws.used];
  f.scope.clear();
  f.arity.clear();
  f.values = nullptr;
  f.size = 0;
  return ws.used++;
}

// Min-fill order over ws.adj (sorted vectors), writing into ws.order.
// Replicates the public std::set-based MinFillOrder step for step — same
// fill counts, same smallest-id tie rule, same marrying — so the
// elimination order (and therefore every table) is unchanged.
void MinFillOrderPooled(EliminationWorkspace& ws, std::size_t n) {
  ws.removed.assign(n, 0);
  ws.order.clear();
  auto contains = [](const std::vector<int>& v, int x) {
    return std::binary_search(v.begin(), v.end(), x);
  };
  auto add_edge = [](std::vector<int>& v, int x) {
    const auto it = std::lower_bound(v.begin(), v.end(), x);
    if (it == v.end() || *it != x) v.insert(it, x);
  };
  std::size_t to_remove = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (ws.eliminable[v]) ++to_remove;
  }
  for (std::size_t step = 0; step < to_remove; ++step) {
    int best = -1;
    std::size_t best_fill = std::numeric_limits<std::size_t>::max();
    for (std::size_t v = 0; v < n; ++v) {
      if (!ws.eliminable[v] || ws.removed[v]) continue;
      const std::vector<int>& nv = ws.adj[v];
      std::size_t fill = 0;
      for (std::size_t a = 0; a < nv.size(); ++a) {
        for (std::size_t b = a + 1; b < nv.size(); ++b) {
          if (!contains(ws.adj[static_cast<std::size_t>(nv[a])], nv[b])) ++fill;
        }
      }
      if (fill < best_fill) {  // Ties resolve to the smallest id (scan order).
        best_fill = fill;
        best = static_cast<int>(v);
      }
    }
    const std::size_t bv = static_cast<std::size_t>(best);
    std::vector<int>& nb = ws.adj[bv];
    for (std::size_t a = 0; a < nb.size(); ++a) {
      for (std::size_t b = a + 1; b < nb.size(); ++b) {
        add_edge(ws.adj[static_cast<std::size_t>(nb[a])], nb[b]);
        add_edge(ws.adj[static_cast<std::size_t>(nb[b])], nb[a]);
      }
    }
    for (int a : nb) {
      std::vector<int>& va = ws.adj[static_cast<std::size_t>(a)];
      const auto it = std::lower_bound(va.begin(), va.end(), best);
      if (it != va.end() && *it == best) va.erase(it);
    }
    nb.clear();
    ws.removed[bv] = 1;
    ws.order.push_back(best);
  }
}

// One elimination step: multiplies every working factor containing `var`
// and sums `var` out into a fresh pool factor (table in the arena),
// returning its pool index. Pairs of 2-variable factors (the dominant
// shape on chains and trees) route through the blocked matrix kernel.
Result<std::size_t> EliminateVarPooled(EliminationWorkspace& ws, int var,
                                       std::size_t limit,
                                       std::size_t live_bytes,
                                       EliminationStats* stats) {
  ws.views.clear();
  ws.combined_scope.clear();
  ws.combined_arity.clear();
  int var_arity = 0;
  for (const std::size_t wi : ws.working) {
    const WorkFactor& f = ws.pool[wi];
    if (!f.Contains(var)) continue;
    FactorView view;
    view.scope = f.scope.data();
    view.arity = f.arity.data();
    view.dims = f.scope.size();
    view.values = f.values;
    ws.views.push_back(view);
    for (std::size_t p = 0; p < f.scope.size(); ++p) {
      if (f.scope[p] == var) {
        var_arity = f.arity[p];
        continue;
      }
      if (std::find(ws.combined_scope.begin(), ws.combined_scope.end(),
                    f.scope[p]) == ws.combined_scope.end()) {
        ws.combined_scope.push_back(f.scope[p]);
        ws.combined_arity.push_back(f.arity[p]);
      }
    }
  }
  ws.table_arity = ws.combined_arity;
  ws.table_arity.push_back(var_arity);
  PF_ASSIGN_OR_RETURN(
      const std::size_t cells,
      CheckedCells(ws.table_arity, limit,
                   "elimination clique table (induced width too large)"));
  if (stats != nullptr) {
    stats->induced_width =
        std::max(stats->induced_width, ws.combined_scope.size());
    stats->peak_factor_bytes = std::max(stats->peak_factor_bytes,
                                        live_bytes + cells * sizeof(double));
  }
  // Fast path: exactly two pairwise factors sharing only `var` — the
  // product-then-marginalize is literally a matrix product A(x, var) *
  // B(var, y), served by the blocked kernel.
  if (ws.views.size() == 2 && ws.combined_scope.size() == 2 &&
      ws.views[0].dims == 2 && ws.views[1].dims == 2) {
    const auto fill_matrix = [var](const FactorView& f, bool var_as_cols,
                                   Matrix* m) {
      const bool var_last = f.scope[1] == var;
      const std::size_t rows = static_cast<std::size_t>(f.arity[0]);
      const std::size_t cols = static_cast<std::size_t>(f.arity[1]);
      // Orient so `var` sits on the requested side.
      if (var_last == var_as_cols) {
        m->ResizeUninitialized(rows, cols);
        std::memcpy(m->RowPtr(0), f.values, rows * cols * sizeof(double));
      } else {
        m->ResizeUninitialized(cols, rows);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t c = 0; c < cols; ++c) {
            (*m)(c, r) = f.values[r * cols + c];
          }
        }
      }
    };
    const bool first_holds_row_var =
        ws.views[0].scope[0] == ws.combined_scope[0] ||
        ws.views[0].scope[1] == ws.combined_scope[0];
    const FactorView& fa = first_holds_row_var ? ws.views[0] : ws.views[1];
    const FactorView& fb = first_holds_row_var ? ws.views[1] : ws.views[0];
    fill_matrix(fa, /*var_as_cols=*/true, &ws.mat_a);
    fill_matrix(fb, /*var_as_cols=*/false, &ws.mat_b);
    MultiplyBlockedInto(ws.mat_a, ws.mat_b, &ws.mat_prod);
    const std::size_t gi = AcquireWorkFactor(ws);
    WorkFactor& out = ws.pool[gi];
    out.scope = ws.combined_scope;
    out.arity = ws.combined_arity;
    out.size = ws.mat_prod.rows() * ws.mat_prod.cols();
    double* dst = ws.arena.AllocDoubles(out.size);
    std::memcpy(dst, ws.mat_prod.RowPtr(0), out.size * sizeof(double));
    out.values = dst;
    return gi;
  }
  const std::size_t gi = AcquireWorkFactor(ws);
  WorkFactor& out = ws.pool[gi];
  out.scope = ws.combined_scope;
  out.arity = ws.combined_arity;
  out.size = cells / static_cast<std::size_t>(var_arity);
  double* dst = ws.arena.AllocDoubles(out.size);
  out.values = dst;
  // The full clique table is scratch: product into it, marginalize out of
  // it, rewind it.
  const Arena::Checkpoint cp = ws.arena.Save();
  double* table = ws.arena.AllocDoubles(cells);
  ws.combined_scope.push_back(var);  // table scope = combined + var
  MultiplyViewsInto(ws.views.data(), ws.views.size(), ws.combined_scope.data(),
                    ws.table_arity.data(), ws.combined_scope.size(), table,
                    &ws.arena);
  ws.combined_scope.pop_back();
  MarginalizeLastInto(table, out.size, static_cast<std::size_t>(var_arity),
                      dst);
  ws.arena.Rewind(cp);
  return gi;
}

Status EliminationConditionalJointInto(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    EliminationStats* stats, Vector* result) {
  const std::size_t n = arities.size();
  EliminationWorkspace& ws = TlsWorkspace();
  ws.arena.Reset();
  ws.used = 0;
  ws.working.clear();
  // Pin evidence: reduce it out of every factor up front. Conflicting
  // duplicate pairs pin the same variable to two values — no assignment
  // matches, which is exactly the zero-probability-evidence condition the
  // enumeration reference reports (first-wins reduction would silently
  // answer as if only the first pair existed).
  ws.pinned.assign(n, -1);
  for (const auto& [var, val] : evidence) {
    int& pin = ws.pinned[static_cast<std::size_t>(var)];
    if (pin >= 0 && pin != val) {
      return Status::FailedPrecondition("evidence has probability zero");
    }
    pin = val;
  }
  for (const Factor& f : factors) {
    const std::size_t gi = AcquireWorkFactor(ws);
    WorkFactor& g = ws.pool[gi];
    g.scope = f.scope;
    g.arity = f.arity;
    g.values = f.values.data();  // Borrow until a reduction copies.
    g.size = f.values.size();
    for (const auto& [var, val] : evidence) {
      const auto it = std::find(g.scope.begin(), g.scope.end(), var);
      if (it == g.scope.end()) continue;
      const std::size_t pos = static_cast<std::size_t>(it - g.scope.begin());
      std::size_t block = 1;
      for (std::size_t i = pos + 1; i < g.scope.size(); ++i) {
        block *= static_cast<std::size_t>(g.arity[i]);
      }
      const std::size_t va = static_cast<std::size_t>(g.arity[pos]);
      const std::size_t outer = g.size / (block * va);
      double* dst = ws.arena.AllocDoubles(outer * block);
      for (std::size_t o = 0; o < outer; ++o) {
        const double* src =
            g.values + (o * va + static_cast<std::size_t>(val)) * block;
        std::memcpy(dst + o * block, src, block * sizeof(double));
      }
      g.values = dst;
      g.size = outer * block;
      g.scope.erase(g.scope.begin() + static_cast<std::ptrdiff_t>(pos));
      g.arity.erase(g.arity.begin() + static_cast<std::ptrdiff_t>(pos));
    }
    ws.working.push_back(gi);
  }
  // Free targets: distinct target variables that the evidence did not pin,
  // in first-occurrence order (the output expansion restores duplicates
  // and pinned coordinates).
  ws.free_targets.clear();
  ws.free_arity.clear();
  ws.is_free.assign(n, 0);
  for (int t : targets) {
    const std::size_t tv = static_cast<std::size_t>(t);
    if (ws.pinned[tv] >= 0 || ws.is_free[tv]) continue;
    ws.is_free[tv] = 1;
    ws.free_targets.push_back(t);
    ws.free_arity.push_back(arities[tv]);
  }
  // Interaction graph of the reduced factor scopes (sorted neighbor
  // lists — the same ascending order the historical std::set build gave).
  if (ws.adj.size() < n) ws.adj.resize(n);
  for (std::size_t v = 0; v < n; ++v) ws.adj[v].clear();
  ws.eliminable.assign(n, 0);
  const auto add_edge = [&ws](int a, int b) {
    std::vector<int>& v = ws.adj[static_cast<std::size_t>(a)];
    const auto it = std::lower_bound(v.begin(), v.end(), b);
    if (it == v.end() || *it != b) v.insert(it, b);
  };
  for (const std::size_t wi : ws.working) {
    const WorkFactor& f = ws.pool[wi];
    for (std::size_t a = 0; a < f.scope.size(); ++a) {
      for (std::size_t b = a + 1; b < f.scope.size(); ++b) {
        add_edge(f.scope[a], f.scope[b]);
        add_edge(f.scope[b], f.scope[a]);
      }
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    ws.eliminable[v] = ws.pinned[v] < 0 && !ws.is_free[v];
  }
  MinFillOrderPooled(ws, n);
  std::size_t live_bytes = 0;
  for (const std::size_t wi : ws.working) live_bytes += ws.pool[wi].bytes();
  if (stats != nullptr) {
    stats->peak_factor_bytes = std::max(stats->peak_factor_bytes, live_bytes);
  }
  for (const int var : ws.order) {
    // Each EliminateVarPooled is up to O(k^width) — the dominant cost on
    // high-width networks — so the cancellation checkpoint sits per
    // variable, bounding a deadline overrun to one elimination step.
    PF_RETURN_NOT_OK(CheckDeadline("variable elimination"));
    bool present = false;
    for (const std::size_t wi : ws.working) {
      present = present || ws.pool[wi].Contains(var);
    }
    if (!present) continue;  // Reduced away or never in a scope.
    PF_ASSIGN_OR_RETURN(const std::size_t merged,
                        EliminateVarPooled(ws, var, limit, live_bytes, stats));
    // Keep the non-absorbed factors in order, append the merged one — the
    // same working-set order as the historical rebuild.
    ws.working.erase(
        std::remove_if(ws.working.begin(), ws.working.end(),
                       [&ws, var](std::size_t wi) {
                         return ws.pool[wi].Contains(var);
                       }),
        ws.working.end());
    ws.working.push_back(merged);
    live_bytes = 0;
    for (const std::size_t wi : ws.working) live_bytes += ws.pool[wi].bytes();
    if (stats != nullptr) {
      stats->peak_factor_bytes =
          std::max(stats->peak_factor_bytes, live_bytes);
    }
  }
  // Every remaining scope variable is a free target; their product is the
  // unnormalized conditional joint.
  for (const std::size_t wi : ws.working) {
    for (int v : ws.pool[wi].scope) {
      if (!ws.is_free[static_cast<std::size_t>(v)]) {
        return Status::Internal("variable survived elimination unexpectedly");
      }
    }
  }
  PF_RETURN_NOT_OK(
      CheckedCells(ws.free_arity, limit, "target joint table").status());
  std::size_t joint_cells = 1;
  for (int a : ws.free_arity) joint_cells *= static_cast<std::size_t>(a);
  double* joint = ws.arena.AllocDoubles(joint_cells);
  ws.views.clear();
  for (const std::size_t wi : ws.working) {
    const WorkFactor& f = ws.pool[wi];
    FactorView view;
    view.scope = f.scope.data();
    view.arity = f.arity.data();
    view.dims = f.scope.size();
    view.values = f.values;
    ws.views.push_back(view);
  }
  MultiplyViewsInto(ws.views.data(), ws.views.size(), ws.free_targets.data(),
                    ws.free_arity.data(), ws.free_targets.size(), joint,
                    &ws.arena);
  double total = 0.0;
  for (std::size_t i = 0; i < joint_cells; ++i) total += joint[i];
  if (!(total > 0.0)) {
    return Status::FailedPrecondition("evidence has probability zero");
  }
  // Expand to the caller's full target tuple: duplicates must agree,
  // pinned targets must match their evidence value, everything else reads
  // from the free-target joint.
  std::size_t out_cells = 1;
  for (int t : targets) {
    out_cells *= static_cast<std::size_t>(arities[static_cast<std::size_t>(t)]);
  }
  result->assign(out_cells, 0.0);
  Vector& out = *result;
  ws.digits.assign(targets.size(), 0);
  ws.assigned.assign(n, -1);
  for (std::size_t cell = 0; cell < out_cells; ++cell) {
    bool consistent = true;
    for (std::size_t d = 0; d < targets.size() && consistent; ++d) {
      const std::size_t tv = static_cast<std::size_t>(targets[d]);
      if (ws.assigned[tv] >= 0 && ws.assigned[tv] != ws.digits[d]) {
        consistent = false;
      }
      if (ws.pinned[tv] >= 0 && ws.pinned[tv] != ws.digits[d]) {
        consistent = false;
      }
      ws.assigned[tv] = ws.digits[d];
    }
    if (consistent) {
      std::size_t ji = 0;
      for (std::size_t p = 0; p < ws.free_targets.size(); ++p) {
        ji = ji * static_cast<std::size_t>(ws.free_arity[p]) +
             static_cast<std::size_t>(
                 ws.assigned[static_cast<std::size_t>(ws.free_targets[p])]);
      }
      out[cell] = joint[ji] / total;
    }
    for (std::size_t d = 0; d < targets.size(); ++d) {
      ws.assigned[static_cast<std::size_t>(targets[d])] = -1;
    }
    for (std::size_t d = targets.size(); d-- > 0;) {
      if (++ws.digits[d] < arities[static_cast<std::size_t>(targets[d])]) break;
      ws.digits[d] = 0;
    }
  }
  return Status::OK();
}

}  // namespace

Result<Vector> FactorConditionalJoint(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    InferenceBackend backend, EliminationStats* stats) {
  Vector out;
  PF_RETURN_NOT_OK(FactorConditionalJointInto(factors, arities, targets,
                                              evidence, limit, backend, stats,
                                              &out));
  return out;
}

Status FactorConditionalJointInto(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    InferenceBackend backend, EliminationStats* stats, Vector* out) {
  PF_RETURN_NOT_OK(ValidateQuery(arities, targets, evidence));
  if (backend == InferenceBackend::kEnumeration) {
    PF_ASSIGN_OR_RETURN(Vector mass,
                        EnumerationConditionalJoint(factors, arities, targets,
                                                    evidence, limit));
    *out = std::move(mass);
    return Status::OK();
  }
  return EliminationConditionalJointInto(factors, arities, targets, evidence,
                                         limit, stats, out);
}

std::size_t EliminationScratchRetainedBytes() {
  return TlsWorkspace().arena.retained_bytes();
}

}  // namespace pf
