// Discrete-time homogeneous Markov chains over a finite state space: the
// correlation model of the paper's case study (Section 4.4). Provides the
// chain-theoretic quantities the mechanisms need: marginals, matrix powers,
// stationary distribution, time reversal (Definition 4.7), multiplicative
// reversibilization P P*, eigengap g (Eq. (7) and Eq. (14)), and pi_min.
#ifndef PUFFERFISH_GRAPHICAL_MARKOV_CHAIN_H_
#define PUFFERFISH_GRAPHICAL_MARKOV_CHAIN_H_

#include <cstddef>
#include <vector>

#include "common/histogram.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"

namespace pf {

/// \brief A finite-state Markov chain theta = (q, P): initial distribution q
/// and row-stochastic transition matrix P.
class MarkovChain {
 public:
  /// Validates and constructs. Fails with InvalidArgument if q is not a
  /// probability vector, P is not row-stochastic, or dimensions mismatch.
  static Result<MarkovChain> Make(Vector initial, Matrix transition,
                                  double tol = 1e-8);

  /// Number of states k.
  std::size_t num_states() const { return initial_.size(); }
  const Vector& initial() const { return initial_; }
  const Matrix& transition() const { return transition_; }

  /// Marginal distribution of X_t (t is 0-based: X_0 ~ q).
  Vector MarginalAt(std::size_t t) const;

  /// Transition matrix raised to the n-th power (cached incrementally so
  /// repeated calls with increasing n cost one multiply each).
  const Matrix& TransitionPower(std::size_t n) const;

  /// \brief Stationary distribution pi with pi P = pi, by solving the linear
  /// system (P^T - I) pi = 0, sum pi = 1. Fails if the chain has no unique
  /// stationary distribution (reducible chains).
  Result<Vector> StationaryDistribution() const;

  /// Minimum stationary probability pi_min = min_x pi(x) (Eq. (6) for a
  /// singleton class).
  Result<double> MinStationaryProbability() const;

  /// \brief Time-reversal chain (Definition 4.7):
  /// P*(x, y) = P(y, x) pi(y) / pi(x), with the same stationary distribution.
  Result<MarkovChain> TimeReversal() const;

  /// True iff the chain satisfies detailed balance pi(x)P(x,y) = pi(y)P(y,x).
  Result<bool> IsReversible(double tol = 1e-8) const;

  /// True iff the transition graph is strongly connected.
  bool IsIrreducible() const;

  /// True iff the chain is aperiodic (gcd of cycle lengths is 1). Only
  /// meaningful for irreducible chains; checked via primitivity of the
  /// boolean transition matrix.
  bool IsAperiodic() const;

  /// \brief Eigengap g of the chain per the paper's Eq. (14):
  ///  - reversible:      2 * min{1 - |lambda| : P x = lambda x, |lambda| < 1}
  ///  - non-reversible:  min{1 - |lambda| : P P* x = lambda x, |lambda| < 1}.
  ///
  /// Both P (when reversible) and P P* are self-adjoint w.r.t. pi, so the
  /// spectrum is computed by symmetrizing with D^{1/2} (.) D^{-1/2},
  /// D = diag(pi), and running the Jacobi eigensolver.
  Result<double> Eigengap() const;

  /// Samples a trajectory X_0, ..., X_{T-1}.
  StateSequence Sample(std::size_t length, Rng* rng) const;

  /// \brief Maximum-likelihood estimate of a chain from observed sequences:
  /// empirical transition counts (with optional add-`smoothing` Laplace
  /// smoothing) and, as the initial distribution, the stationary distribution
  /// of the estimated matrix (the paper's Section 5.3 setup). States with no
  /// outgoing observations get uniform rows.
  static Result<MarkovChain> Estimate(const std::vector<StateSequence>& data,
                                      std::size_t k, double smoothing = 0.0);

 private:
  MarkovChain(Vector initial, Matrix transition)
      : initial_(std::move(initial)), transition_(std::move(transition)) {}

  Vector initial_;
  Matrix transition_;
  // Cache of transition powers: powers_[n] = P^n, grown on demand.
  mutable std::vector<Matrix> powers_;
};

}  // namespace pf

#endif  // PUFFERFISH_GRAPHICAL_MARKOV_CHAIN_H_
