// Structured exact inference by variable elimination. Where the
// enumeration reference path walks the full joint-assignment space
// (exponential in NODE COUNT), elimination sums variables out one at a
// time along a min-fill ordering, so its cost is exponential only in the
// INDUCED WIDTH of that ordering (an upper bound on treewidth) — constant
// for chains, trees, and stars, min(rows, cols) for grids. This is what
// lets Algorithm 2 run on networks of hundreds of nodes instead of ~20.
//
// The tree-decomposition view (WCOJ / junction-tree literature): each
// elimination step materializes one bag of the decomposition; the `limit`
// guard bounds the largest bag's table, not the joint space.
#ifndef PUFFERFISH_GRAPHICAL_ELIMINATION_H_
#define PUFFERFISH_GRAPHICAL_ELIMINATION_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graphical/factor.h"

namespace pf {

/// How conditional distributions are computed from a factor system.
enum class InferenceBackend {
  /// Pick automatically: variable elimination (the scalable default).
  kAuto,
  /// Sum variables out along a min-fill order; cost exponential in the
  /// induced width, `limit` guards the largest intermediate table.
  kVariableElimination,
  /// Walk the full joint-assignment space; cost exponential in node
  /// count, `limit` guards the assignment-space size. Kept as the
  /// reference ground truth for the elimination path.
  kEnumeration,
};

/// Human-readable backend name ("elimination", "enumeration").
const char* InferenceBackendName(InferenceBackend backend);

/// Cost diagnostics of one (or the max over several) elimination runs.
struct EliminationStats {
  /// Largest clique minus one over the run: max over eliminated variables
  /// of the number of other variables in the combined factor. An induced
  /// width of w means the biggest table had <= arity^(w+1) cells.
  std::size_t induced_width = 0;
  /// Peak bytes of simultaneously live factor tables.
  std::size_t peak_factor_bytes = 0;

  /// Folds another run into this one (both fields max — the quantities
  /// bound worst-case cost, so the max over runs is the honest summary).
  void MergeMax(const EliminationStats& other);
};

/// \brief Min-fill elimination order over an undirected interaction graph:
/// repeatedly removes the eliminable vertex whose neighborhood needs the
/// fewest fill-in edges (ties to the smallest vertex id — fully
/// deterministic), marrying its remaining neighbors. Vertices with
/// `eliminable[v] == false` (query targets) are never removed but keep
/// participating as neighbors. Returns the order; `induced_width` (if
/// non-null) receives the max remaining-neighbor count at removal time.
std::vector<int> MinFillOrder(const std::vector<std::vector<int>>& adjacency,
                              const std::vector<bool>& eliminable,
                              std::size_t* induced_width);

/// \brief Min-fill induced width of eliminating the WHOLE graph — the
/// treewidth upper bound the engine's mechanism-selection policy compares
/// against its cutoff before routing a network model to Algorithm 2.
std::size_t MinFillWidth(const std::vector<std::vector<int>>& adjacency);

/// \brief Conditional joint of `targets` given `evidence` under the
/// (normalized or unnormalized) distribution prod_f factors[f], as a flat
/// mass vector over the mixed-radix product of target arities (first
/// target most significant — the BayesianNetwork::ConditionalJoint
/// convention; targets may repeat and may appear in the evidence).
///
/// `arities[v]` is the domain size of variable id v; every factor scope
/// must index into it. Fails FailedPrecondition when the evidence has
/// probability zero and InvalidArgument when the guarded cost measure of
/// the chosen backend exceeds `limit`.
Result<Vector> FactorConditionalJoint(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    InferenceBackend backend = InferenceBackend::kAuto,
    EliminationStats* stats = nullptr);

/// \brief FactorConditionalJoint writing into a caller-retained vector
/// (capacity reused). With the elimination backend, every intermediate —
/// reduced tables, clique products, min-fill scratch — lives in a
/// per-thread retained arena/pool, so a warm thread answers repeated
/// queries with ZERO heap allocations. Results are identical to
/// FactorConditionalJoint.
Status FactorConditionalJointInto(
    const std::vector<Factor>& factors, const std::vector<int>& arities,
    const std::vector<int>& targets,
    const std::vector<std::pair<int, int>>& evidence, std::size_t limit,
    InferenceBackend backend, EliminationStats* stats, Vector* out);

/// Bytes retained by the CALLING thread's elimination workspace arena (the
/// reuse pool behind the zero-allocation steady state). Diagnostic.
std::size_t EliminationScratchRetainedBytes();

}  // namespace pf

#endif  // PUFFERFISH_GRAPHICAL_ELIMINATION_H_
