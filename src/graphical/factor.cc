#include "graphical/factor.h"

#include <algorithm>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PF_SIMD_X86 1
#include <immintrin.h>
#endif

namespace pf {

namespace {

#ifdef PF_SIMD_X86
__attribute__((target("avx2"))) void PairwiseProductAvx2(const double* a,
                                                         const double* b,
                                                         double* out,
                                                         std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}
#endif

// Scratch arena for the MultiplyAll wrapper's views and strides; reset per
// call, blocks retained across calls (zero mallocs once warm).
Arena& TlsFactorScratch() {
  static thread_local Arena arena(1u << 12);
  return arena;
}

}  // namespace

void PairwiseProductKernel(const double* a, const double* b, double* out,
                           std::size_t n) {
#ifdef PF_SIMD_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    PairwiseProductAvx2(a, b, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

bool Factor::Contains(int var) const {
  return std::find(scope.begin(), scope.end(), var) != scope.end();
}

Factor CptFactor(const std::vector<int>& parents,
                 const std::vector<int>& parent_arities, int child,
                 int child_arity, const Matrix& cpt) {
  Factor f;
  f.scope = parents;
  f.scope.push_back(child);
  f.arity = parent_arities;
  f.arity.push_back(child_arity);
  // The CPT is row-major over (parent assignment, child value) — exactly
  // the factor's mixed-radix order with the child least significant.
  f.values.reserve(cpt.rows() * cpt.cols());
  for (std::size_t r = 0; r < cpt.rows(); ++r) {
    const double* row = cpt.RowPtr(r);
    f.values.insert(f.values.end(), row, row + cpt.cols());
  }
  return f;
}

Factor Reduce(const Factor& f, int var, int value) {
  const auto it = std::find(f.scope.begin(), f.scope.end(), var);
  if (it == f.scope.end()) return f;
  const std::size_t pos = static_cast<std::size_t>(it - f.scope.begin());
  // Strides: block = cells below `var`, outer = cells above it.
  std::size_t block = 1;
  for (std::size_t i = pos + 1; i < f.scope.size(); ++i) {
    block *= static_cast<std::size_t>(f.arity[i]);
  }
  const std::size_t var_arity = static_cast<std::size_t>(f.arity[pos]);
  const std::size_t outer = f.size() / (block * var_arity);
  Factor out;
  out.scope = f.scope;
  out.scope.erase(out.scope.begin() + static_cast<std::ptrdiff_t>(pos));
  out.arity = f.arity;
  out.arity.erase(out.arity.begin() + static_cast<std::ptrdiff_t>(pos));
  out.values.reserve(outer * block);
  for (std::size_t o = 0; o < outer; ++o) {
    const double* src =
        f.values.data() + (o * var_arity + static_cast<std::size_t>(value)) * block;
    out.values.insert(out.values.end(), src, src + block);
  }
  return out;
}

void MultiplyViewsInto(const FactorView* views, std::size_t num_views,
                       const int* result_scope, const int* result_arity,
                       std::size_t result_dims, double* out, Arena* scratch) {
  if (result_dims == 0) {
    double p = 1.0;
    for (std::size_t fi = 0; fi < num_views; ++fi) p *= views[fi].values[0];
    out[0] = p;
    return;
  }
  std::size_t cells = 1;
  for (std::size_t d = 0; d < result_dims; ++d) {
    cells *= static_cast<std::size_t>(result_arity[d]);
  }
  const Arena::Checkpoint cp = scratch->Save();
  // Per-view stride of each result digit (0 when the digit's variable is
  // not in that view's scope), so input indices advance incrementally with
  // the row-major walk instead of being recomputed per cell.
  auto* stride = static_cast<std::size_t*>(
      scratch->Allocate(num_views * result_dims * sizeof(std::size_t)));
  for (std::size_t fi = 0; fi < num_views; ++fi) {
    const FactorView& f = views[fi];
    for (std::size_t d = 0; d < result_dims; ++d) {
      std::size_t s = 0;
      for (std::size_t p = 0; p < f.dims; ++p) {
        if (f.scope[p] != result_scope[d]) continue;
        s = 1;
        for (std::size_t i = p + 1; i < f.dims; ++i) {
          s *= static_cast<std::size_t>(f.arity[i]);
        }
        break;
      }
      stride[fi * result_dims + d] = s;
    }
  }
  auto* digits =
      static_cast<int*>(scratch->Allocate(result_dims * sizeof(int)));
  auto* idx = static_cast<std::size_t*>(
      scratch->Allocate(num_views * sizeof(std::size_t)));
  for (std::size_t d = 0; d < result_dims; ++d) digits[d] = 0;
  for (std::size_t fi = 0; fi < num_views; ++fi) idx[fi] = 0;
  // The innermost (last) digit is peeled into a contiguous run of length
  // k: two-view products whose inputs both walk it with stride 1 go
  // through the vectorized pairwise kernel; everything else uses the
  // per-cell loop over the run. Either way each output cell is the same
  // product, in the same view order, as the historical per-cell walk.
  const std::size_t last = result_dims - 1;
  const std::size_t k = static_cast<std::size_t>(result_arity[last]);
  const bool pairwise_run =
      num_views == 2 && stride[0 * result_dims + last] == 1 &&
      stride[1 * result_dims + last] == 1;
  for (std::size_t cell = 0; cell < cells; cell += k) {
    if (pairwise_run) {
      PairwiseProductKernel(views[0].values + idx[0], views[1].values + idx[1],
                            out + cell, k);
    } else {
      for (std::size_t c = 0; c < k; ++c) {
        double p = 1.0;
        for (std::size_t fi = 0; fi < num_views; ++fi) {
          p *= views[fi].values[idx[fi] + c * stride[fi * result_dims + last]];
        }
        out[cell + c] = p;
      }
    }
    // Mixed-radix increment over the outer digits (idx never accumulates
    // the peeled last digit): bumping digit d adds stride[d]; rolling it
    // over subtracts the full span it just walked.
    for (std::size_t d = last; d-- > 0;) {
      ++digits[d];
      for (std::size_t fi = 0; fi < num_views; ++fi) {
        idx[fi] += stride[fi * result_dims + d];
      }
      if (digits[d] < result_arity[d]) break;
      digits[d] = 0;
      for (std::size_t fi = 0; fi < num_views; ++fi) {
        idx[fi] -=
            stride[fi * result_dims + d] * static_cast<std::size_t>(result_arity[d]);
      }
    }
  }
  scratch->Rewind(cp);
}

Factor MultiplyAll(const std::vector<const Factor*>& factors,
                   std::vector<int> result_scope,
                   std::vector<int> result_arity) {
  Factor out;
  std::size_t cells = 1;
  for (int a : result_arity) cells *= static_cast<std::size_t>(a);
  out.scope = std::move(result_scope);
  out.arity = std::move(result_arity);
  out.values.resize(cells);
  Arena& scratch = TlsFactorScratch();
  const Arena::Checkpoint cp = scratch.Save();
  auto* views = static_cast<FactorView*>(
      scratch.Allocate(factors.size() * sizeof(FactorView)));
  for (std::size_t fi = 0; fi < factors.size(); ++fi) {
    views[fi].scope = factors[fi]->scope.data();
    views[fi].arity = factors[fi]->arity.data();
    views[fi].dims = factors[fi]->scope.size();
    views[fi].values = factors[fi]->values.data();
  }
  MultiplyViewsInto(views, factors.size(), out.scope.data(), out.arity.data(),
                    out.scope.size(), out.values.data(), &scratch);
  scratch.Rewind(cp);
  return out;
}

void MarginalizeLastInto(const double* values, std::size_t rows,
                         std::size_t k, double* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* src = values + r * k;
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) sum += src[j];
    out[r] = sum;
  }
}

Factor MarginalizeLast(const Factor& f) {
  Factor out;
  out.scope.assign(f.scope.begin(), f.scope.end() - 1);
  out.arity.assign(f.arity.begin(), f.arity.end() - 1);
  const std::size_t k = static_cast<std::size_t>(f.arity.back());
  const std::size_t rows = f.size() / k;
  out.values.resize(rows);
  MarginalizeLastInto(f.values.data(), rows, k, out.values.data());
  return out;
}

}  // namespace pf
