#include "graphical/factor.h"

#include <algorithm>

namespace pf {

bool Factor::Contains(int var) const {
  return std::find(scope.begin(), scope.end(), var) != scope.end();
}

Factor CptFactor(const std::vector<int>& parents,
                 const std::vector<int>& parent_arities, int child,
                 int child_arity, const Matrix& cpt) {
  Factor f;
  f.scope = parents;
  f.scope.push_back(child);
  f.arity = parent_arities;
  f.arity.push_back(child_arity);
  // The CPT is row-major over (parent assignment, child value) — exactly
  // the factor's mixed-radix order with the child least significant.
  f.values.reserve(cpt.rows() * cpt.cols());
  for (std::size_t r = 0; r < cpt.rows(); ++r) {
    const double* row = cpt.RowPtr(r);
    f.values.insert(f.values.end(), row, row + cpt.cols());
  }
  return f;
}

Factor Reduce(const Factor& f, int var, int value) {
  const auto it = std::find(f.scope.begin(), f.scope.end(), var);
  if (it == f.scope.end()) return f;
  const std::size_t pos = static_cast<std::size_t>(it - f.scope.begin());
  // Strides: block = cells below `var`, outer = cells above it.
  std::size_t block = 1;
  for (std::size_t i = pos + 1; i < f.scope.size(); ++i) {
    block *= static_cast<std::size_t>(f.arity[i]);
  }
  const std::size_t var_arity = static_cast<std::size_t>(f.arity[pos]);
  const std::size_t outer = f.size() / (block * var_arity);
  Factor out;
  out.scope = f.scope;
  out.scope.erase(out.scope.begin() + static_cast<std::ptrdiff_t>(pos));
  out.arity = f.arity;
  out.arity.erase(out.arity.begin() + static_cast<std::ptrdiff_t>(pos));
  out.values.reserve(outer * block);
  for (std::size_t o = 0; o < outer; ++o) {
    const double* src =
        f.values.data() + (o * var_arity + static_cast<std::size_t>(value)) * block;
    out.values.insert(out.values.end(), src, src + block);
  }
  return out;
}

Factor MultiplyAll(const std::vector<const Factor*>& factors,
                   std::vector<int> result_scope,
                   std::vector<int> result_arity) {
  Factor out;
  std::size_t cells = 1;
  for (int a : result_arity) cells *= static_cast<std::size_t>(a);
  out.scope = std::move(result_scope);
  out.arity = std::move(result_arity);
  out.values.assign(cells, 1.0);
  const std::size_t dims = out.scope.size();
  // Per-factor stride of each result digit (0 when the digit's variable is
  // not in that factor's scope), so input indices advance incrementally
  // with the row-major walk instead of being recomputed per cell.
  const std::size_t num_factors = factors.size();
  std::vector<std::vector<std::size_t>> stride(num_factors,
                                               std::vector<std::size_t>(dims, 0));
  for (std::size_t fi = 0; fi < num_factors; ++fi) {
    const Factor& f = *factors[fi];
    for (std::size_t d = 0; d < dims; ++d) {
      const auto it = std::find(f.scope.begin(), f.scope.end(), out.scope[d]);
      if (it == f.scope.end()) continue;
      std::size_t s = 1;
      for (std::size_t i = static_cast<std::size_t>(it - f.scope.begin()) + 1;
           i < f.scope.size(); ++i) {
        s *= static_cast<std::size_t>(f.arity[i]);
      }
      stride[fi][d] = s;
    }
  }
  std::vector<int> digits(dims, 0);
  std::vector<std::size_t> idx(num_factors, 0);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    double p = 1.0;
    for (std::size_t fi = 0; fi < num_factors; ++fi) {
      p *= factors[fi]->values[idx[fi]];
    }
    out.values[cell] = p;
    // Mixed-radix increment (last digit fastest), keeping input indices in
    // lockstep: bumping digit d adds stride[d]; rolling it over subtracts
    // the full span it just walked.
    for (std::size_t d = dims; d-- > 0;) {
      ++digits[d];
      for (std::size_t fi = 0; fi < num_factors; ++fi) idx[fi] += stride[fi][d];
      if (digits[d] < out.arity[d]) break;
      digits[d] = 0;
      for (std::size_t fi = 0; fi < num_factors; ++fi) {
        idx[fi] -= stride[fi][d] * static_cast<std::size_t>(out.arity[d]);
      }
    }
  }
  return out;
}

Factor MarginalizeLast(const Factor& f) {
  Factor out;
  out.scope.assign(f.scope.begin(), f.scope.end() - 1);
  out.arity.assign(f.arity.begin(), f.arity.end() - 1);
  const std::size_t k = static_cast<std::size_t>(f.arity.back());
  const std::size_t rows = f.size() / k;
  out.values.assign(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* src = f.values.data() + r * k;
    double sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) sum += src[j];
    out.values[r] = sum;
  }
  return out;
}

}  // namespace pf
