#include "graphical/moral_graph.h"

#include <algorithm>
#include <queue>
#include <set>

namespace pf {

MoralGraph::MoralGraph(const BayesianNetwork& bn) {
  const std::size_t n = bn.num_nodes();
  std::vector<std::set<int>> adj(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& parents = bn.node(i).parents;
    for (int p : parents) {
      adj[i].insert(p);
      adj[static_cast<std::size_t>(p)].insert(static_cast<int>(i));
    }
    // Marry co-parents.
    for (std::size_t a = 0; a < parents.size(); ++a) {
      for (std::size_t b = a + 1; b < parents.size(); ++b) {
        adj[static_cast<std::size_t>(parents[a])].insert(parents[b]);
        adj[static_cast<std::size_t>(parents[b])].insert(parents[a]);
      }
    }
  }
  adjacency_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    adjacency_[i].assign(adj[i].begin(), adj[i].end());
  }
}

MoralGraph::MoralGraph(const std::vector<std::vector<int>>& adjacency) {
  const std::size_t n = adjacency.size();
  std::vector<std::set<int>> adj(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (int w : adjacency[v]) {
      if (w == static_cast<int>(v)) continue;
      adj[v].insert(w);
      adj[static_cast<std::size_t>(w)].insert(static_cast<int>(v));
    }
  }
  adjacency_.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    adjacency_[v].assign(adj[v].begin(), adj[v].end());
  }
}

std::vector<int> MoralGraph::Distances(int start) const {
  std::vector<int> dist(num_nodes(), -1);
  std::queue<int> q;
  dist[static_cast<std::size_t>(start)] = 0;
  q.push(start);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    for (int w : neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

std::vector<int> MoralGraph::NeighborsWithin(int node,
                                             std::size_t radius) const {
  const std::vector<int> dist = Distances(node);
  std::vector<int> out;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (dist[v] > 0 && dist[v] <= static_cast<int>(radius)) {
      out.push_back(static_cast<int>(v));
    }
  }
  return out;
}

std::vector<int> MoralGraph::ConnectedComponent(int node) const {
  return ReachableAvoiding(node, {});
}

std::size_t MoralGraph::NumComponents() const {
  std::vector<bool> seen(num_nodes(), false);
  std::size_t components = 0;
  for (std::size_t v = 0; v < num_nodes(); ++v) {
    if (seen[v]) continue;
    ++components;
    for (int w : ConnectedComponent(static_cast<int>(v))) {
      seen[static_cast<std::size_t>(w)] = true;
    }
  }
  return components;
}

std::vector<int> MoralGraph::ReachableAvoiding(
    int start, const std::vector<int>& blocked) const {
  std::vector<bool> is_blocked(num_nodes(), false);
  for (int b : blocked) is_blocked[static_cast<std::size_t>(b)] = true;
  std::vector<bool> seen(num_nodes(), false);
  std::vector<int> out;
  std::queue<int> q;
  seen[static_cast<std::size_t>(start)] = true;
  q.push(start);
  while (!q.empty()) {
    const int v = q.front();
    q.pop();
    out.push_back(v);
    for (int w : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(w)] && !is_blocked[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        q.push(w);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool MoralGraph::Separates(const std::vector<int>& blocked, int a, int b) const {
  if (std::find(blocked.begin(), blocked.end(), a) != blocked.end() ||
      std::find(blocked.begin(), blocked.end(), b) != blocked.end()) {
    return true;  // Conditioning on an endpoint trivially blocks it.
  }
  const std::vector<int> reach = ReachableAvoiding(a, blocked);
  return !std::binary_search(reach.begin(), reach.end(), b);
}

}  // namespace pf
