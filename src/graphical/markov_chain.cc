#include "graphical/markov_chain.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/eigen.h"

namespace pf {

Result<MarkovChain> MarkovChain::Make(Vector initial, Matrix transition,
                                      double tol) {
  if (initial.empty()) return Status::InvalidArgument("empty initial distribution");
  if (transition.rows() != transition.cols() ||
      transition.rows() != initial.size()) {
    return Status::InvalidArgument("transition matrix / initial size mismatch");
  }
  if (!IsProbabilityVector(initial, tol)) {
    return Status::InvalidArgument("initial distribution is not a probability vector");
  }
  if (!transition.IsRowStochastic(tol)) {
    return Status::InvalidArgument("transition matrix is not row-stochastic");
  }
  return MarkovChain(std::move(initial), std::move(transition));
}

Vector MarkovChain::MarginalAt(std::size_t t) const {
  Vector m = initial_;
  // For long horizons use cached powers; otherwise iterate.
  if (t > 64) {
    return TransitionPower(t).ApplyLeft(initial_);
  }
  for (std::size_t s = 0; s < t; ++s) m = transition_.ApplyLeft(m);
  return m;
}

const Matrix& MarkovChain::TransitionPower(std::size_t n) const {
  if (powers_.empty()) {
    powers_.push_back(Matrix::Identity(num_states()));  // P^0.
  }
  while (powers_.size() <= n) {
    powers_.push_back(powers_.back() * transition_);
  }
  return powers_[n];
}

Result<Vector> MarkovChain::StationaryDistribution() const {
  const std::size_t k = num_states();
  // Solve pi (P - I) = 0 with normalization: build A = (P - I)^T and replace
  // the last row with the all-ones constraint.
  Matrix a = (transition_ - Matrix::Identity(k)).Transpose();
  Vector b(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) a(k - 1, c) = 1.0;
  b[k - 1] = 1.0;
  Result<Vector> pi = a.Solve(b);
  if (!pi.ok()) {
    return Status::NumericalError(
        "no unique stationary distribution (chain may be reducible)");
  }
  for (double& v : pi.value()) {
    if (v < 0.0 && v > -1e-10) v = 0.0;
    if (v < 0.0) {
      return Status::NumericalError("negative stationary probability");
    }
  }
  return pi;
}

Result<double> MarkovChain::MinStationaryProbability() const {
  PF_ASSIGN_OR_RETURN(Vector pi, StationaryDistribution());
  return *std::min_element(pi.begin(), pi.end());
}

Result<MarkovChain> MarkovChain::TimeReversal() const {
  PF_ASSIGN_OR_RETURN(Vector pi, StationaryDistribution());
  const std::size_t k = num_states();
  Matrix rev(k, k, 0.0);
  for (std::size_t x = 0; x < k; ++x) {
    if (pi[x] <= 0.0) {
      return Status::FailedPrecondition(
          "time reversal undefined: stationary mass zero at some state");
    }
    for (std::size_t y = 0; y < k; ++y) {
      rev(x, y) = transition_(y, x) * pi[y] / pi[x];
    }
  }
  return MarkovChain::Make(pi, std::move(rev));
}

Result<bool> MarkovChain::IsReversible(double tol) const {
  PF_ASSIGN_OR_RETURN(Vector pi, StationaryDistribution());
  const std::size_t k = num_states();
  for (std::size_t x = 0; x < k; ++x) {
    for (std::size_t y = x + 1; y < k; ++y) {
      if (std::fabs(pi[x] * transition_(x, y) - pi[y] * transition_(y, x)) > tol) {
        return false;
      }
    }
  }
  return true;
}

bool MarkovChain::IsIrreducible() const {
  const std::size_t k = num_states();
  // Strong connectivity: BFS forward and BFS on the reversed graph from 0.
  auto reachable = [&](bool reverse) {
    std::vector<bool> seen(k, false);
    std::queue<std::size_t> q;
    seen[0] = true;
    q.push(0);
    while (!q.empty()) {
      const std::size_t v = q.front();
      q.pop();
      for (std::size_t w = 0; w < k; ++w) {
        const double p = reverse ? transition_(w, v) : transition_(v, w);
        if (p > 0.0 && !seen[w]) {
          seen[w] = true;
          q.push(w);
        }
      }
    }
    return std::all_of(seen.begin(), seen.end(), [](bool b) { return b; });
  };
  return reachable(false) && reachable(true);
}

bool MarkovChain::IsAperiodic() const {
  // An irreducible chain is aperiodic iff its boolean transition matrix is
  // primitive: some power has all entries positive. The Wielandt bound says
  // checking power (k-1)^2 + 1 suffices.
  const std::size_t k = num_states();
  std::vector<std::vector<bool>> reach(k, std::vector<bool>(k));
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < k; ++j) reach[i][j] = transition_(i, j) > 0.0;
  const std::size_t limit = (k - 1) * (k - 1) + 1;
  std::vector<std::vector<bool>> cur = reach;
  for (std::size_t step = 1; step <= limit; ++step) {
    bool all = true;
    for (std::size_t i = 0; i < k && all; ++i)
      for (std::size_t j = 0; j < k && all; ++j) all = cur[i][j];
    if (all) return true;
    // cur = cur * reach (boolean product).
    std::vector<std::vector<bool>> next(k, std::vector<bool>(k, false));
    for (std::size_t i = 0; i < k; ++i)
      for (std::size_t l = 0; l < k; ++l)
        if (cur[i][l])
          for (std::size_t j = 0; j < k; ++j)
            if (reach[l][j]) next[i][j] = true;
    cur = std::move(next);
  }
  return false;
}

Result<double> MarkovChain::Eigengap() const {
  PF_ASSIGN_OR_RETURN(Vector pi, StationaryDistribution());
  for (double v : pi) {
    if (v <= 0.0) {
      return Status::FailedPrecondition("eigengap requires pi > 0 everywhere");
    }
  }
  PF_ASSIGN_OR_RETURN(bool reversible, IsReversible());
  const std::size_t k = num_states();
  Matrix target(k, k, 0.0);
  double multiplier;
  if (reversible) {
    target = transition_;
    multiplier = 2.0;
  } else {
    PF_ASSIGN_OR_RETURN(MarkovChain rev, TimeReversal());
    target = transition_ * rev.transition();
    multiplier = 1.0;
  }
  // `target` is self-adjoint in L2(pi): symmetrize S = D^{1/2} T D^{-1/2}.
  Matrix s(k, k, 0.0);
  for (std::size_t x = 0; x < k; ++x) {
    for (std::size_t y = 0; y < k; ++y) {
      s(x, y) = std::sqrt(pi[x]) * target(x, y) / std::sqrt(pi[y]);
    }
  }
  PF_ASSIGN_OR_RETURN(Vector eig, SymmetricEigenvalues(s, 1e-6));
  double gap = 1.0;
  bool found = false;
  for (double lambda : eig) {
    const double abs_l = std::fabs(lambda);
    if (abs_l < 1.0 - 1e-9) {
      gap = std::min(gap, 1.0 - abs_l);
      found = true;
    }
  }
  if (!found) {
    // All eigenvalues are 1 (e.g. k == 1); treat the gap as 1.
    return multiplier * 1.0;
  }
  // `gap` currently holds min over sub-unit eigenvalues of (1 - |lambda|);
  // Eq. (14) takes the minimum, i.e. the slowest-mixing component.
  return multiplier * gap;
}

StateSequence MarkovChain::Sample(std::size_t length, Rng* rng) const {
  StateSequence seq;
  seq.reserve(length);
  if (length == 0) return seq;
  std::size_t state = rng->Categorical(initial_);
  seq.push_back(static_cast<int>(state));
  for (std::size_t t = 1; t < length; ++t) {
    state = rng->Categorical(transition_.Row(state));
    seq.push_back(static_cast<int>(state));
  }
  return seq;
}

Result<MarkovChain> MarkovChain::Estimate(const std::vector<StateSequence>& data,
                                          std::size_t k, double smoothing) {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  Matrix counts(k, k, smoothing);
  for (const auto& seq : data) {
    for (std::size_t t = 0; t + 1 < seq.size(); ++t) {
      const int from = seq[t], to = seq[t + 1];
      if (from < 0 || to < 0 || static_cast<std::size_t>(from) >= k ||
          static_cast<std::size_t>(to) >= k) {
        return Status::OutOfRange("state outside [0, k) in Estimate");
      }
      counts(static_cast<std::size_t>(from), static_cast<std::size_t>(to)) += 1.0;
    }
  }
  Matrix p(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) row_sum += counts(i, j);
    if (row_sum <= 0.0) {
      for (std::size_t j = 0; j < k; ++j) p(i, j) = 1.0 / static_cast<double>(k);
    } else {
      for (std::size_t j = 0; j < k; ++j) p(i, j) = counts(i, j) / row_sum;
    }
  }
  // Initial distribution: stationary distribution of the estimated matrix
  // (Section 5.3's choice); fall back to the empirical start distribution.
  Vector start(k, 0.0);
  double starts = 0.0;
  for (const auto& seq : data) {
    if (!seq.empty()) {
      start[static_cast<std::size_t>(seq[0])] += 1.0;
      starts += 1.0;
    }
  }
  if (starts > 0.0) {
    for (double& v : start) v /= starts;
  } else {
    start.assign(k, 1.0 / static_cast<double>(k));
  }
  PF_ASSIGN_OR_RETURN(MarkovChain tmp, MarkovChain::Make(start, p));
  Result<Vector> pi = tmp.StationaryDistribution();
  if (pi.ok() && IsProbabilityVector(pi.value(), 1e-6)) {
    return MarkovChain::Make(pi.value(), tmp.transition());
  }
  return tmp;
}

}  // namespace pf
