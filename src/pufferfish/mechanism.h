// The unified mechanism engine: every privacy mechanism in the library —
// the paper's Algorithms 1-4 plus the three baselines — behind one
// plan-then-execute lifecycle:
//
//     Mechanism (model + config)
//        |  Analyze(epsilon)          expensive, data-independent
//        v
//     MechanismPlan (sigma, diagnostics)
//        |  Release / ReleaseBatch    cheap, per query, explicit Rng
//        v
//     noisy value(s)
//
// The split mirrors the paper's structure: the privacy analysis (quilt
// search, Wasserstein sup, spectral condition) never looks at the data, so
// a plan computed once serves any number of queries against any database —
// and can be cached (AnalysisCache) or shipped to serving replicas.
//
// Release is a free function of the plan, not a virtual on the mechanism:
// all seven mechanisms release identically (value + L * sigma * Lap(1)),
// which is the deduplication this layer exists to enforce.
#ifndef PUFFERFISH_PUFFERFISH_MECHANISM_H_
#define PUFFERFISH_PUFFERFISH_MECHANISM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/gk16.h"
#include "common/random.h"
#include "common/record_batch.h"
#include "common/status.h"
#include "graphical/bayesian_network.h"
#include "graphical/markov_chain.h"
#include "pufferfish/framework.h"
#include "pufferfish/markov_quilt_mechanism.h"
#include "pufferfish/mqm_approx.h"
#include "pufferfish/mqm_exact.h"
#include "pufferfish/wasserstein_mechanism.h"

namespace pf {

/// The seven mechanisms of the paper and its evaluation.
enum class MechanismKind {
  kLaplaceDp,    ///< Laplace mechanism, entry DP (Table 1 "DP" baseline).
  kGroupDp,      ///< Laplace with group sensitivity (Definition B.1).
  kGk16,         ///< Ghosh-Kleinberg inferential-privacy baseline.
  kWasserstein,  ///< Algorithm 1 over explicit conditional output pairs.
  kMqmGeneral,   ///< Algorithm 2 on general Bayesian networks.
  kMqmExact,     ///< Algorithm 3, exact chain max-influence (Eq. (5)).
  kMqmApprox,    ///< Algorithm 4, Lemma 4.8 / C.1 influence bounds.
};

/// Human-readable mechanism name ("MQMExact", ...).
const char* MechanismKindName(MechanismKind kind);

/// \brief The output of Mechanism::Analyze: everything a release needs.
///
/// `sigma` is the Laplace scale per unit Lipschitz constant; a release adds
/// lipschitz * sigma * Lap(1) noise per coordinate. Kind-specific
/// diagnostics (active quilts, spectral norms, W) ride along for
/// inspection, benchmarks, and composition accounting.
struct MechanismPlan {
  MechanismKind kind = MechanismKind::kLaplaceDp;
  /// Privacy level the plan was calibrated for.
  double epsilon = 0.0;
  /// Laplace scale multiplier per unit Lipschitz constant.
  double sigma = 0.0;
  /// False when the construction does not apply (GK16's spectral condition
  /// rho >= 1); Release then fails with FailedPrecondition.
  bool applicable = true;

  /// Diagnostics for kMqmGeneral.
  MqmAnalysis mqm;
  /// Diagnostics for kMqmExact / kMqmApprox.
  ChainMqmResult chain;
  /// Diagnostics for kGk16.
  Gk16Analysis gk16;
  /// Diagnostics for kWasserstein: the sensitivity W of Algorithm 1.
  double wasserstein_w = 0.0;

  /// Times this exact plan was served from an AnalysisCache instead of
  /// being recomputed (0 for a freshly analyzed plan). Shared across copies
  /// of the plan.
  ///
  /// Concurrency (audited under TSan, tests/tsan_stress_test.cc): the
  /// counter is a plain atomic with the default seq_cst ordering; it is a
  /// pure statistic, never used to publish other data, so no load/store
  /// ordering relationship with the plan contents is required or implied —
  /// readers racing a hit simply see a count that is at most one behind.
  std::uint64_t cache_hit_count() const {
    return cache_hits == nullptr ? 0 : cache_hits->load();
  }

  /// Incremented by AnalysisCache on every hit; allocated by Analyze.
  std::shared_ptr<std::atomic<std::uint64_t>> cache_hits;
};

/// \brief A resumable (append-aware) analysis handle: the streaming
/// counterpart of Mechanism::Analyze for mechanisms whose model has a
/// record-length dimension that can grow (chains serving appended
/// observations). Produced by Mechanism::AnalyzeResumable; the
/// AnalysisCache chains these across lengths (see PrefixFingerprint), so a
/// plan for length T' is computed by extending the retained analysis at T
/// instead of re-analyzing from scratch.
///
/// Not thread-safe: ExtendTo mutates the retained state, so callers
/// serialize per handle (the AnalysisCache holds a per-entry mutex).
class ResumableAnalysis {
 public:
  virtual ~ResumableAnalysis() = default;

  /// Record length the analysis currently covers.
  virtual std::size_t length() const = 0;

  /// \brief Extends to new_length >= length() and returns the plan at the
  /// new length — bit-identical to a cold Analyze at new_length (same
  /// sigma, active quilt, and diagnostics). new_length == length() returns
  /// the current plan; new_length < length() is InvalidArgument.
  virtual Result<MechanismPlan> ExtendTo(std::size_t new_length) = 0;
};

/// \brief A mechanism = model + configuration, ready to be analyzed at any
/// privacy level. Implementations are immutable after construction, so one
/// mechanism can be analyzed concurrently at several epsilons.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  virtual MechanismKind kind() const = 0;
  /// Human-readable name for tables and logs.
  virtual std::string name() const = 0;

  /// \brief The expensive, data-independent phase: validates the model and
  /// computes the noise calibration (sigma) for this epsilon.
  virtual Result<MechanismPlan> Analyze(double epsilon) const = 0;

  /// \brief Stable 64-bit fingerprint of the model and configuration
  /// (including quilt-width caps); combined with epsilon it keys the
  /// AnalysisCache. Mechanisms with equal fingerprints must produce equal
  /// plans.
  virtual std::uint64_t Fingerprint() const = 0;

  /// \brief Fingerprint of the model and configuration with the record
  /// length REMOVED: two mechanisms that differ only in chain length share
  /// it, which is what lets the AnalysisCache seed the analysis for
  /// (model, epsilon, T') from the cached one for (model, epsilon, T)
  /// instead of a cold Analyze. Returns 0 (never a valid chain key) for
  /// mechanisms with no extendable length dimension — the default.
  virtual std::uint64_t PrefixFingerprint() const { return 0; }

  /// Record length the model covers, for mechanisms whose
  /// PrefixFingerprint() is nonzero; 0 otherwise.
  virtual std::size_t ExtendableLength() const { return 0; }

  /// \brief Starts a resumable analysis at `epsilon` covering
  /// ExtendableLength(). Default: NotSupported (only the MQMExact chain
  /// mechanisms retain per-length state worth resuming).
  virtual Result<std::unique_ptr<ResumableAnalysis>> AnalyzeResumable(
      double epsilon) const;

 protected:
  /// Helper for Analyze implementations: a plan skeleton with the counter
  /// allocated.
  MechanismPlan NewPlan(double epsilon, double sigma) const;
};

// ----------------------------------------------------------------------
// The release half of the lifecycle: free functions of the plan. These are
// the only places in the library that add mechanism noise.
// ----------------------------------------------------------------------

/// Releases one scalar L-Lipschitz query value: value + L * sigma * Lap(1).
Result<double> Release(const MechanismPlan& plan, double value,
                       double lipschitz, Rng* rng);

/// Releases one vector query that is L-Lipschitz in L1 over the whole
/// vector: independent L * sigma * Lap(1) noise per coordinate.
Result<Vector> ReleaseVector(const MechanismPlan& plan, const Vector& value,
                             double lipschitz, Rng* rng);

/// \brief Batch release of many scalar query values under one plan — the
/// serving-path fast route: one analysis, N cheap draws. Composition is the
/// caller's ledger (see CompositionAccountant).
Result<Vector> ReleaseBatch(const MechanismPlan& plan,
                            const std::vector<double>& values,
                            double lipschitz, Rng* rng);

/// Batch release of many vector query values under one plan.
Result<std::vector<Vector>> ReleaseBatch(const MechanismPlan& plan,
                                         const std::vector<Vector>& values,
                                         double lipschitz, Rng* rng);

/// \brief Columnar batch release — the noise half of the columnar serving
/// path. `batch` arrives with truth values, per-row noise scales
/// (lipschitz * sigma, the clip kernel's output), and tickets populated;
/// row r gains independent Laplace(noise_scales()[r]) noise per coordinate
/// drawn from Rng(TicketNoiseSeed(seed, tickets()[r])) — the same
/// per-ticket stream the scalar serving path uses, so a row released here
/// is bit-identical to the scalar release of the same query under the same
/// ticket, at any thread count. `plans` holds the distinct plans the rows
/// release under, validated exactly like Release (an inapplicable plan or
/// non-finite scale refuses the whole batch before ANY noise lands — a
/// half-noised batch is not a release state this layer permits).
Status ReleaseBatchColumnar(
    const std::vector<std::shared_ptr<const MechanismPlan>>& plans,
    std::uint64_t seed, RecordBatch* batch);

// ----------------------------------------------------------------------
// The seven mechanisms, ported onto the engine.
// ----------------------------------------------------------------------

/// Laplace mechanism with explicit L1 sensitivity (entry DP).
class LaplaceDpUnified : public Mechanism {
 public:
  explicit LaplaceDpUnified(double sensitivity) : sensitivity_(sensitivity) {}
  MechanismKind kind() const override { return MechanismKind::kLaplaceDp; }
  std::string name() const override { return "LaplaceDP"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;

 private:
  double sensitivity_;
};

/// Laplace mechanism with group sensitivity (Definition B.1).
class GroupDpUnified : public Mechanism {
 public:
  explicit GroupDpUnified(double group_sensitivity)
      : group_sensitivity_(group_sensitivity) {}
  MechanismKind kind() const override { return MechanismKind::kGroupDp; }
  std::string name() const override { return "GroupDP"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;

 private:
  double group_sensitivity_;
};

/// GK16 over a class of chain transition matrices of given length. Plans
/// are marked inapplicable when the spectral condition fails.
class Gk16Unified : public Mechanism {
 public:
  Gk16Unified(std::vector<Matrix> transitions, std::size_t length)
      : transitions_(std::move(transitions)), length_(length) {}
  MechanismKind kind() const override { return MechanismKind::kGk16; }
  std::string name() const override { return "GK16"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;

 private:
  std::vector<Matrix> transitions_;
  std::size_t length_;
};

/// Algorithm 1 over explicitly enumerated conditional output pairs.
class WassersteinUnified : public Mechanism {
 public:
  explicit WassersteinUnified(
      std::vector<ConditionalOutputPair> pairs,
      WassersteinBackend backend = WassersteinBackend::kQuantile)
      : pairs_(std::move(pairs)), backend_(backend) {}
  MechanismKind kind() const override { return MechanismKind::kWasserstein; }
  std::string name() const override { return "Wasserstein"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;

 private:
  std::vector<ConditionalOutputPair> pairs_;
  WassersteinBackend backend_;
};

/// Algorithm 2 on a class of general Bayesian networks.
class MqmGeneralUnified : public Mechanism {
 public:
  MqmGeneralUnified(std::vector<BayesianNetwork> thetas,
                    MqmAnalyzeOptions options = {})
      : thetas_(std::move(thetas)), options_(options) {}
  MechanismKind kind() const override { return MechanismKind::kMqmGeneral; }
  std::string name() const override { return "MQM"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;

 private:
  std::vector<BayesianNetwork> thetas_;
  MqmAnalyzeOptions options_;
};

/// Per-Analyze knobs shared by the chain mechanisms; epsilon lives in
/// Analyze, everything else here. Mirrors ChainMqmOptions minus epsilon.
///
/// Streaming note: the MQMExact mechanisms also support
/// AnalyzeResumable/ExtendTo (see ResumableAnalysis) — an analysis at
/// length T extends to T' > T bit-identically to a cold Analyze at T',
/// re-scoring only the O(max_nearby) boundary classes. These options are
/// part of the prefix fingerprint, so changing any of them (not the
/// length) starts a fresh analysis chain.
struct ChainUnifiedOptions {
  std::size_t max_nearby = 64;
  bool allow_stationary_shortcut = true;
  /// Marginal-dedup node scan (see ChainMqmOptions::dedup_nodes);
  /// bit-identical either way, so excluded from the plan fingerprint.
  bool dedup_nodes = true;
  /// Analysis worker threads; 0 = hardware concurrency (the library-wide
  /// convention, see common/parallel.h). Plans are bit-identical for every
  /// value, so this too is excluded from the plan fingerprint.
  std::size_t num_threads = 0;
};

/// Algorithm 3 (exact chain max-influence) over an explicit chain class.
class MqmExactUnified : public Mechanism {
 public:
  MqmExactUnified(std::vector<MarkovChain> thetas, std::size_t length,
                  ChainUnifiedOptions options = {})
      : thetas_(std::move(thetas)), length_(length), options_(options) {}
  MechanismKind kind() const override { return MechanismKind::kMqmExact; }
  std::string name() const override { return "MQMExact"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;
  /// Chain-length-free fingerprint + resumable analysis: plans for longer
  /// chains of the same class extend instead of re-analyzing.
  std::uint64_t PrefixFingerprint() const override;
  std::size_t ExtendableLength() const override { return length_; }
  Result<std::unique_ptr<ResumableAnalysis>> AnalyzeResumable(
      double epsilon) const override;

 private:
  std::vector<MarkovChain> thetas_;
  std::size_t length_;
  ChainUnifiedOptions options_;
};

/// Algorithm 3 with the Appendix C.4 class Theta = Delta_k x P: every
/// transition matrix paired with every initial distribution (the Figure 4
/// synthetic setting).
class MqmExactFreeInitialUnified : public Mechanism {
 public:
  MqmExactFreeInitialUnified(std::vector<Matrix> transitions,
                             std::size_t length,
                             ChainUnifiedOptions options = {})
      : transitions_(std::move(transitions)), length_(length),
        options_(options) {}
  MechanismKind kind() const override { return MechanismKind::kMqmExact; }
  std::string name() const override { return "MQMExact(free-initial)"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;
  /// Chain-length-free fingerprint + resumable analysis: plans for longer
  /// chains of the same class extend instead of re-analyzing.
  std::uint64_t PrefixFingerprint() const override;
  std::size_t ExtendableLength() const override { return length_; }
  Result<std::unique_ptr<ResumableAnalysis>> AnalyzeResumable(
      double epsilon) const override;

 private:
  std::vector<Matrix> transitions_;
  std::size_t length_;
  ChainUnifiedOptions options_;
};

/// Algorithm 4 (influence bounds) from a chain-class mixing summary.
class MqmApproxUnified : public Mechanism {
 public:
  MqmApproxUnified(ChainClassSummary summary, std::size_t length,
                   ChainUnifiedOptions options = {})
      : summary_(summary), length_(length), options_(options) {}
  /// Convenience: summarizes an explicit chain class first (may fail, so
  /// the failure is deferred to Analyze).
  MqmApproxUnified(const std::vector<MarkovChain>& thetas, std::size_t length,
                   ChainUnifiedOptions options = {});
  MechanismKind kind() const override { return MechanismKind::kMqmApprox; }
  std::string name() const override { return "MQMApprox"; }
  Result<MechanismPlan> Analyze(double epsilon) const override;
  std::uint64_t Fingerprint() const override;

 private:
  ChainClassSummary summary_;
  Status summary_status_ = Status::OK();
  std::size_t length_;
  ChainUnifiedOptions options_;
};

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_MECHANISM_H_
