#include "pufferfish/wasserstein_mechanism.h"

#include <algorithm>
#include <map>

namespace pf {

Result<WassersteinMechanism> WassersteinMechanism::Make(
    const std::vector<ConditionalOutputPair>& pairs, double epsilon,
    WassersteinBackend backend) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  if (pairs.empty()) {
    return Status::InvalidArgument("no secret pairs supplied");
  }
  double w = 0.0;
  for (const ConditionalOutputPair& pair : pairs) {
    PF_ASSIGN_OR_RETURN(double wij, WassersteinInf(pair.mu_i, pair.mu_j, backend));
    w = std::max(w, wij);
  }
  return WassersteinMechanism(w, epsilon);
}

double WassersteinMechanism::Release(double true_value, Rng* rng) const {
  return AddLaplaceNoise(true_value, noise_scale(), rng);
}

Result<DiscreteDistribution> ConditionalOutputDistribution(
    const BayesianNetwork& bn,
    const std::function<double(const Assignment&)>& query, int variable,
    int value, std::size_t enumeration_limit) {
  std::map<double, double> mass;  // F value -> conditional mass.
  double total = 0.0;
  PF_RETURN_NOT_OK(bn.ForEachAssignment(
      [&](const Assignment& a, double p) {
        if (a[static_cast<std::size_t>(variable)] != value) return;
        mass[query(a)] += p;
        total += p;
      },
      enumeration_limit));
  if (total <= 0.0) {
    return Status::FailedPrecondition("secret has probability zero");
  }
  std::vector<DiscreteDistribution::Atom> atoms;
  atoms.reserve(mass.size());
  for (const auto& [x, p] : mass) atoms.push_back({x, p / total});
  return DiscreteDistribution::Make(std::move(atoms), 1e-6);
}

Result<std::vector<ConditionalOutputPair>> EnumerateBayesNetOutputPairs(
    const std::vector<BayesianNetwork>& thetas,
    const std::function<double(const Assignment&)>& query,
    std::size_t enumeration_limit) {
  if (thetas.empty()) return Status::InvalidArgument("empty distribution class");
  std::vector<ConditionalOutputPair> pairs;
  for (const BayesianNetwork& bn : thetas) {
    for (std::size_t i = 0; i < bn.num_nodes(); ++i) {
      const int arity = bn.node(i).arity;
      // Cache per-value conditionals; skip zero-probability secrets
      // (Definition 2.1 only constrains pairs with positive probability).
      std::vector<Result<DiscreteDistribution>> per_value;
      per_value.reserve(static_cast<std::size_t>(arity));
      for (int a = 0; a < arity; ++a) {
        per_value.push_back(ConditionalOutputDistribution(
            bn, query, static_cast<int>(i), a, enumeration_limit));
      }
      for (int a = 0; a < arity; ++a) {
        if (!per_value[static_cast<std::size_t>(a)].ok()) {
          if (per_value[static_cast<std::size_t>(a)].status().code() ==
              StatusCode::kFailedPrecondition) {
            continue;  // Zero-probability secret.
          }
          return per_value[static_cast<std::size_t>(a)].status();
        }
        for (int b = a + 1; b < arity; ++b) {
          if (!per_value[static_cast<std::size_t>(b)].ok()) {
            if (per_value[static_cast<std::size_t>(b)].status().code() ==
                StatusCode::kFailedPrecondition) {
              continue;
            }
            return per_value[static_cast<std::size_t>(b)].status();
          }
          pairs.push_back({per_value[static_cast<std::size_t>(a)].value(),
                           per_value[static_cast<std::size_t>(b)].value()});
        }
      }
    }
  }
  if (pairs.empty()) {
    return Status::FailedPrecondition(
        "all secret pairs have zero probability under every theta");
  }
  return pairs;
}

}  // namespace pf
