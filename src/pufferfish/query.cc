#include "pufferfish/query.h"

namespace pf {

ScalarQuery SumQuery(std::size_t k) {
  ScalarQuery q;
  q.name = "sum";
  q.fn = [](const StateSequence& seq) {
    double s = 0.0;
    for (int v : seq) s += static_cast<double>(v);
    return s;
  };
  q.lipschitz = static_cast<double>(k - 1);
  return q;
}

ScalarQuery MeanStateQuery(std::size_t k, std::size_t length) {
  ScalarQuery q;
  q.name = "mean_state";
  const double inv = 1.0 / static_cast<double>(length);
  q.fn = [inv](const StateSequence& seq) {
    double s = 0.0;
    for (int v : seq) s += static_cast<double>(v);
    return s * inv;
  };
  q.lipschitz = static_cast<double>(k - 1) * inv;
  return q;
}

ScalarQuery StateFrequencyQuery(int state, std::size_t length) {
  ScalarQuery q;
  q.name = "state_frequency";
  const double inv = 1.0 / static_cast<double>(length);
  q.fn = [state, inv](const StateSequence& seq) {
    double s = 0.0;
    for (int v : seq) {
      if (v == state) s += 1.0;
    }
    return s * inv;
  };
  q.lipschitz = inv;
  return q;
}

VectorQuery CountHistogramQuery(std::size_t k) {
  VectorQuery q;
  q.name = "count_histogram";
  q.fn = [k](const StateSequence& seq) {
    return CountHistogram(seq, k).ValueOr(Vector(k, 0.0));
  };
  q.lipschitz = 2.0;
  q.dim = k;
  return q;
}

VectorQuery RelativeFrequencyQuery(std::size_t k, std::size_t length) {
  VectorQuery q;
  q.name = "relative_frequency";
  const double inv = 1.0 / static_cast<double>(length);
  q.fn = [k, inv](const StateSequence& seq) {
    Vector h = CountHistogram(seq, k).ValueOr(Vector(k, 0.0));
    for (double& v : h) v *= inv;
    return h;
  };
  q.lipschitz = 2.0 * inv;
  q.dim = k;
  return q;
}

}  // namespace pf
