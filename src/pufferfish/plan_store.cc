#include "pufferfish/plan_store.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <utility>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

#include "common/failpoint.h"

namespace pf {
namespace {

constexpr char kMagic[8] = {'P', 'F', 'P', 'L', 'A', 'N', '0', '1'};

std::uint64_t Fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3u;
  }
  return h;
}

// ---- Writer: fixed-width little-endian append onto a std::string. ----

void PutU64(std::string* out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFFu);
  out->append(buf, 8);
}

void PutDouble(std::string* out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutBool(std::string* out, bool v) { PutU64(out, v ? 1 : 0); }

void PutInt(std::string* out, int v) {
  PutU64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}

void PutIntVector(std::string* out, const std::vector<int>& v) {
  PutU64(out, v.size());
  for (int x : v) PutInt(out, x);
}

void PutQuilt(std::string* out, const MarkovQuilt& q) {
  PutInt(out, q.target);
  PutIntVector(out, q.quilt);
  PutU64(out, q.nearby_count);
  PutIntVector(out, q.nearby);
  PutIntVector(out, q.remote);
}

void PutMemoryStats(std::string* out, const MemoryStats& m) {
  PutU64(out, m.peak_bytes);
  PutU64(out, m.arena_retained_bytes);
  PutU64(out, m.mallocs);
}

void PutMqmAnalysis(std::string* out, const MqmAnalysis& a) {
  PutDouble(out, a.sigma_max);
  PutU64(out, a.active.size());
  for (const QuiltScore& qs : a.active) {
    PutQuilt(out, qs.quilt);
    PutDouble(out, qs.influence);
    PutDouble(out, qs.score);
  }
  PutInt(out, a.worst_node);
  PutU64(out, a.total_nodes);
  PutU64(out, a.scored_nodes);
  PutU64(out, a.induced_width);
  PutU64(out, a.treewidth_bound);
  PutMemoryStats(out, a.memory);
}

void PutChainResult(std::string* out, const ChainMqmResult& r) {
  PutDouble(out, r.sigma_max);
  PutInt(out, r.worst_node);
  PutQuilt(out, r.active_quilt);
  PutDouble(out, r.influence);
  PutBool(out, r.used_stationary_shortcut);
  PutU64(out, r.total_nodes);
  PutU64(out, r.scored_nodes);
  PutMemoryStats(out, r.memory);
}

void PutPlan(std::string* out, const MechanismPlan& plan) {
  PutU64(out, static_cast<std::uint64_t>(plan.kind));
  PutDouble(out, plan.epsilon);
  PutDouble(out, plan.sigma);
  PutBool(out, plan.applicable);
  PutMqmAnalysis(out, plan.mqm);
  PutChainResult(out, plan.chain);
  PutDouble(out, plan.gk16.nu);
  PutDouble(out, plan.gk16.spectral_norm);
  PutBool(out, plan.gk16.applicable);
  PutDouble(out, plan.gk16.sigma);
  PutDouble(out, plan.wasserstein_w);
  // plan.cache_hits deliberately omitted: process-lifetime diagnostic.
}

// ---- Reader: bounds-checked cursor. Any out-of-bounds read trips
// `failed` and every subsequent read returns zero; callers check once at
// the end, so parse code stays linear. ----

struct Reader {
  const char* data;
  std::size_t size;
  std::size_t pos = 0;
  bool failed = false;

  std::uint64_t U64() {
    if (failed || size - pos < 8) {
      failed = true;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[pos + i]))
           << (8 * i);
    }
    pos += 8;
    return v;
  }

  double Double() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  bool Bool() { return U64() != 0; }

  int Int() { return static_cast<int>(static_cast<std::int64_t>(U64())); }

  /// A length prefix, validated against the bytes that could possibly back
  /// it (each element is at least 8 bytes) so corrupt lengths fail cleanly
  /// instead of attempting a huge resize.
  std::size_t Count() {
    const std::uint64_t n = U64();
    if (!failed && n > (size - pos) / 8) failed = true;
    return failed ? 0 : static_cast<std::size_t>(n);
  }

  std::vector<int> IntVector() {
    std::vector<int> v(Count());
    for (int& x : v) x = Int();
    return v;
  }
};

MarkovQuilt ReadQuilt(Reader* r) {
  MarkovQuilt q;
  q.target = r->Int();
  q.quilt = r->IntVector();
  q.nearby_count = static_cast<std::size_t>(r->U64());
  q.nearby = r->IntVector();
  q.remote = r->IntVector();
  return q;
}

MemoryStats ReadMemoryStats(Reader* r) {
  MemoryStats m;
  m.peak_bytes = static_cast<std::size_t>(r->U64());
  m.arena_retained_bytes = static_cast<std::size_t>(r->U64());
  m.mallocs = static_cast<std::size_t>(r->U64());
  return m;
}

MqmAnalysis ReadMqmAnalysis(Reader* r) {
  MqmAnalysis a;
  a.sigma_max = r->Double();
  a.active.resize(r->Count());
  for (QuiltScore& qs : a.active) {
    qs.quilt = ReadQuilt(r);
    qs.influence = r->Double();
    qs.score = r->Double();
  }
  a.worst_node = r->Int();
  a.total_nodes = static_cast<std::size_t>(r->U64());
  a.scored_nodes = static_cast<std::size_t>(r->U64());
  a.induced_width = static_cast<std::size_t>(r->U64());
  a.treewidth_bound = static_cast<std::size_t>(r->U64());
  a.memory = ReadMemoryStats(r);
  return a;
}

ChainMqmResult ReadChainResult(Reader* r) {
  ChainMqmResult c;
  c.sigma_max = r->Double();
  c.worst_node = r->Int();
  c.active_quilt = ReadQuilt(r);
  c.influence = r->Double();
  c.used_stationary_shortcut = r->Bool();
  c.total_nodes = static_cast<std::size_t>(r->U64());
  c.scored_nodes = static_cast<std::size_t>(r->U64());
  c.memory = ReadMemoryStats(r);
  return c;
}

bool ReadPlan(Reader* r, MechanismPlan* plan) {
  const std::uint64_t kind = r->U64();
  if (kind > static_cast<std::uint64_t>(MechanismKind::kMqmApprox)) {
    r->failed = true;
    return false;
  }
  plan->kind = static_cast<MechanismKind>(kind);
  plan->epsilon = r->Double();
  plan->sigma = r->Double();
  plan->applicable = r->Bool();
  plan->mqm = ReadMqmAnalysis(r);
  plan->chain = ReadChainResult(r);
  plan->gk16.nu = r->Double();
  plan->gk16.spectral_norm = r->Double();
  plan->gk16.applicable = r->Bool();
  plan->gk16.sigma = r->Double();
  plan->wasserstein_w = r->Double();
  // Restored plans start with a fresh hit counter: the count is a
  // process-lifetime diagnostic, and AnalysisCache bumps it through this
  // pointer on every hit.
  plan->cache_hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  return !r->failed;
}

}  // namespace

std::string EncodePlanSnapshot(const std::vector<CachedPlan>& entries) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  std::size_t count = 0;
  for (const CachedPlan& entry : entries) {
    if (entry.plan != nullptr) ++count;
  }
  PutU64(&out, count);
  for (const CachedPlan& entry : entries) {
    if (entry.plan == nullptr) continue;
    PutU64(&out, entry.fingerprint);
    PutU64(&out, entry.epsilon_bits);
    PutU64(&out, static_cast<std::uint64_t>(entry.kind));
    PutPlan(&out, *entry.plan);
  }
  PutU64(&out, Fnv1a(out.data(), out.size()));
  return out;
}

Result<std::vector<CachedPlan>> DecodePlanSnapshot(const std::string& bytes) {
  if (bytes.size() < sizeof(kMagic) + 16) {
    return Status::InvalidArgument("plan snapshot: truncated header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(
        "plan snapshot: bad magic or unsupported version tag");
  }
  // Validate the checksum over the whole payload before parsing anything:
  // a single flipped bit anywhere rejects the file, so the parser below
  // only ever sees bytes the writer produced.
  const std::size_t body_size = bytes.size() - 8;
  std::uint64_t stored = 0;
  for (int i = 0; i < 8; ++i) {
    stored |= static_cast<std::uint64_t>(
                  static_cast<unsigned char>(bytes[body_size + i]))
              << (8 * i);
  }
  if (Fnv1a(bytes.data(), body_size) != stored) {
    return Status::InvalidArgument("plan snapshot: checksum mismatch");
  }
  Reader r{bytes.data(), body_size, sizeof(kMagic), false};
  const std::size_t count = r.Count();
  std::vector<CachedPlan> entries;
  entries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    CachedPlan entry;
    entry.fingerprint = r.U64();
    entry.epsilon_bits = r.U64();
    const std::uint64_t kind = r.U64();
    if (kind > static_cast<std::uint64_t>(MechanismKind::kMqmApprox)) {
      return Status::InvalidArgument("plan snapshot: invalid mechanism kind");
    }
    entry.kind = static_cast<MechanismKind>(kind);
    auto plan = std::make_shared<MechanismPlan>();
    if (!ReadPlan(&r, plan.get())) {
      return Status::InvalidArgument("plan snapshot: truncated entry");
    }
    entry.plan = std::move(plan);
    entries.push_back(std::move(entry));
  }
  if (r.failed || r.pos != body_size) {
    return Status::InvalidArgument(
        "plan snapshot: payload size does not match entry count");
  }
  return entries;
}

namespace {

// Failpoint evaluation usable mid-function (where the PF_FAILPOINT macro's
// direct return would skip cleanup like fclose/remove).
Status EvalFailpoint(const char* name) {
#ifdef PF_FAILPOINTS
  return FailpointRegistry::Instance().Evaluate(name);
#else
  (void)name;
  return Status::OK();
#endif
}

// fsyncs the directory containing `path` so the rename that just landed in
// it survives a power cut (POSIX: rename durability requires syncing the
// parent directory's entry, not just the file). No-op on Windows.
Status SyncParentDir(const std::string& path) {
  PF_FAILPOINT("plan_store.sync_dir");
#ifndef _WIN32
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int fd = ::open(dir.empty() ? "/" : dir.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::Internal("plan snapshot: cannot open directory " + dir);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    return Status::Internal("plan snapshot: directory sync of " + dir +
                            " failed");
  }
#else
  (void)path;
#endif
  return Status::OK();
}

}  // namespace

Status SavePlanSnapshot(const std::string& path,
                        const std::vector<CachedPlan>& entries) {
  const std::string bytes = EncodePlanSnapshot(entries);
  // Temp-file + fsync(file) + rename + fsync(dir): readers never observe a
  // partially written snapshot, a crash mid-save leaves the previous one
  // intact, and a power cut after return cannot surface a zero-length or
  // torn file (both the data and the directory entry are durable).
  const std::string tmp = path + ".tmp";
  PF_FAILPOINT("plan_store.open");
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("plan snapshot: cannot open " + tmp);
  }
  // From here every failure path must fclose and remove the tmp file —
  // injected or real, a failed save leaves no debris (the torture test
  // asserts this).
  Status st = EvalFailpoint("plan_store.write");
  if (st.ok() && std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    st = Status::Internal("plan snapshot: short write to " + tmp);
  }
  if (st.ok()) st = EvalFailpoint("plan_store.flush");
  if (st.ok() && std::fflush(f) != 0) {
    st = Status::Internal("plan snapshot: flush of " + tmp + " failed");
  }
  if (st.ok()) st = EvalFailpoint("plan_store.sync");
#ifndef _WIN32
  if (st.ok() && ::fsync(::fileno(f)) != 0) {
    st = Status::Internal("plan snapshot: fsync of " + tmp + " failed");
  }
#endif
  const bool closed = std::fclose(f) == 0;
  if (st.ok() && !closed) {
    st = Status::Internal("plan snapshot: close of " + tmp + " failed");
  }
  if (!st.ok()) {
    std::remove(tmp.c_str());
    return st;
  }
  // Simulated kill between the durable tmp write and the rename: the tmp
  // file is deliberately left behind (exactly what a crash leaves), and
  // the published snapshot at `path` is untouched.
  PF_FAILPOINT("plan_store.crash_before_rename");
  Status rn = EvalFailpoint("plan_store.rename");
  if (rn.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    rn = Status::Internal("plan snapshot: rename to " + path + " failed");
  }
  if (!rn.ok()) {
    std::remove(tmp.c_str());
    return rn;
  }
  return SyncParentDir(path);
}

Result<std::vector<CachedPlan>> LoadPlanSnapshot(const std::string& path) {
  PF_FAILPOINT("plan_store.load.open");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("plan snapshot: cannot open " + path);
  }
  std::string bytes;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  const Status injected = EvalFailpoint("plan_store.load.read");
  if (!injected.ok()) read_error = true;
  if (read_error) {
    return Status::Internal("plan snapshot: read error on " + path);
  }
  return DecodePlanSnapshot(bytes);
}

}  // namespace pf
