#include "pufferfish/mqm_approx.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

Status CheckSummary(const ChainClassSummary& summary) {
  if (!(summary.pi_min > 0.0) || summary.pi_min > 1.0) {
    return Status::InvalidArgument("pi_min must lie in (0, 1]");
  }
  if (!(summary.eigengap > 0.0)) {
    return Status::FailedPrecondition(
        "eigengap must be positive (irreducible aperiodic chains)");
  }
  return Status::OK();
}

// log((1 + Delta_t)/(1 - Delta_t)) with Delta_t = exp(-g t / 2) / pi_min;
// +infinity when Delta_t >= 1 (bound inapplicable at this distance).
double SideBound(const ChainClassSummary& summary, int t) {
  const double delta = std::exp(-summary.eigengap * static_cast<double>(t) / 2.0) /
                       summary.pi_min;
  if (delta >= 1.0) return kInf;
  return std::log((1.0 + delta) / (1.0 - delta));
}
}  // namespace

Result<double> ChainQuiltInfluenceBound(const ChainClassSummary& summary,
                                        const MarkovQuilt& quilt) {
  PF_RETURN_NOT_OK(CheckSummary(summary));
  if (quilt.IsTrivial()) return 0.0;
  const auto [a, b] = ChainQuiltOffsets(quilt);
  double bound = 0.0;
  // Per Lemmas 4.8 / C.1: the "past" side X_{i-a} contributes the squared
  // (doubled-log) factor, the "future" side X_{i+b} the single factor.
  if (a > 0) bound += 2.0 * SideBound(summary, a);
  if (b > 0) bound += SideBound(summary, b);
  return bound;
}

Result<std::size_t> LemmaFourNineAStar(const ChainClassSummary& summary,
                                       double epsilon) {
  PF_RETURN_NOT_OK(CheckSummary(summary));
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  const double ratio =
      (std::exp(epsilon / 6.0) + 1.0) / (std::exp(epsilon / 6.0) - 1.0);
  const double inner = std::log(ratio / summary.pi_min) / summary.eigengap;
  return static_cast<std::size_t>(2.0 * std::ceil(inner));
}

namespace {
// sigma_i for node `node`: min score over the capped Lemma 4.6 family.
// The bound depends only on the endpoint distances (a, b), so the family is
// scanned arithmetically with the per-distance side bounds precomputed —
// no quilt structs are materialized until the winner is known.
Result<QuiltScore> ScoreNodeApprox(const ChainClassSummary& summary,
                                   std::size_t length, int node, double epsilon,
                                   std::size_t max_nearby) {
  const int n = static_cast<int>(length);
  const int i = node;
  const int max_card = static_cast<int>(max_nearby);
  // side[t] = log((1 + Delta_t)/(1 - Delta_t)); the past side contributes
  // twice this value, the future side once (Lemmas 4.8 / C.1).
  std::vector<double> side(static_cast<std::size_t>(max_card) + 2, kInf);
  for (int t = 1; t <= max_card + 1; ++t) {
    side[static_cast<std::size_t>(t)] = SideBound(summary, t);
  }
  double best_score = static_cast<double>(length) / epsilon;  // Trivial quilt.
  double best_influence = 0.0;
  int best_a = 0, best_b = 0;  // 0/0 encodes the trivial quilt.
  // Two-sided quilts {X_{i-a}, X_{i+b}}: card = a + b - 1.
  for (int a = 1; a <= i && a <= max_card; ++a) {
    const double left = 2.0 * side[static_cast<std::size_t>(a)];
    if (std::isinf(left)) continue;
    for (int b = 1; i + b < n && a + b - 1 <= max_card; ++b) {
      const double card = static_cast<double>(a + b - 1);
      if (card / epsilon >= best_score) break;  // Score only grows with b.
      const double e = left + side[static_cast<std::size_t>(b)];
      if (e >= epsilon) continue;
      const double score =
          QuiltScoreFromInfluence(static_cast<std::size_t>(card), epsilon, e);
      if (score < best_score) {
        best_score = score;
        best_influence = e;
        best_a = a;
        best_b = b;
      }
    }
  }
  // Left-only quilts {X_{i-a}}: card = (n-1) - (i-a).
  for (int a = 1; a <= i; ++a) {
    const int card = n - 1 - (i - a);
    if (card > max_card || a > max_card) continue;
    const double e = 2.0 * side[static_cast<std::size_t>(a)];
    if (e >= epsilon) continue;
    const double score =
        QuiltScoreFromInfluence(static_cast<std::size_t>(card), epsilon, e);
    if (score < best_score) {
      best_score = score;
      best_influence = e;
      best_a = a;
      best_b = 0;
    }
  }
  // Right-only quilts {X_{i+b}}: card = i + b.
  for (int b = 1; i + b < n; ++b) {
    const int card = i + b;
    if (card > max_card || b > max_card) break;
    const double e = side[static_cast<std::size_t>(b)];
    if (e >= epsilon) continue;
    const double score =
        QuiltScoreFromInfluence(static_cast<std::size_t>(card), epsilon, e);
    if (score < best_score) {
      best_score = score;
      best_influence = e;
      best_a = 0;
      best_b = b;
    }
  }
  QuiltScore best;
  best.score = best_score;
  best.influence = best_influence;
  if (best_a == 0 && best_b == 0) {
    best.quilt = TrivialQuilt(node, length);
  } else {
    PF_ASSIGN_OR_RETURN(best.quilt, ChainQuilt(length, node, best_a, best_b));
  }
  return best;
}
}  // namespace

Result<ChainMqmResult> MqmApproxAnalyze(const ChainClassSummary& summary,
                                        std::size_t length,
                                        const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(CheckSummary(summary));
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (length == 0) return Status::InvalidArgument("length must be positive");
  PF_ASSIGN_OR_RETURN(std::size_t a_star,
                      LemmaFourNineAStar(summary, options.epsilon));
  std::size_t max_nearby = options.max_nearby;
  if (max_nearby == 0) max_nearby = 4 * a_star;  // Lemma 4.9 auto width.

  ChainMqmResult result;
  if (options.allow_stationary_shortcut && length >= 3) {
    // Lemma 4.9 / Lemma C.4: the influence bound is independent of the node
    // index, so whenever the middle node's optimum is an interior two-sided
    // quilt (or the trivial quilt, whose score is node-independent), every
    // other node admits a quilt with no larger score and the middle node
    // attains sigma_max. Only a one-sided optimum at the middle forces the
    // full per-node scan (only possible for very short chains).
    const int mid = static_cast<int>(length / 2);
    PF_ASSIGN_OR_RETURN(
        QuiltScore mid_best,
        ScoreNodeApprox(summary, length, mid, options.epsilon, max_nearby));
    const bool interior_two_sided =
        mid_best.quilt.quilt.size() == 2 &&
        mid_best.quilt.quilt.front() >= 0 &&
        mid_best.quilt.quilt.back() < static_cast<int>(length);
    if (interior_two_sided || mid_best.quilt.IsTrivial()) {
      result.sigma_max = mid_best.score;
      result.worst_node = mid;
      result.active_quilt = mid_best.quilt;
      result.influence = mid_best.influence;
      result.used_stationary_shortcut = true;
      return result;
    }
  }
  result.sigma_max = -kInf;
  for (std::size_t i = 0; i < length; ++i) {
    PF_ASSIGN_OR_RETURN(QuiltScore ns,
                        ScoreNodeApprox(summary, length, static_cast<int>(i),
                                        options.epsilon, max_nearby));
    if (ns.score > result.sigma_max) {
      result.sigma_max = ns.score;
      result.worst_node = static_cast<int>(i);
      result.active_quilt = ns.quilt;
      result.influence = ns.influence;
    }
  }
  return result;
}

Result<ChainMqmResult> MqmApproxAnalyze(const std::vector<MarkovChain>& thetas,
                                        std::size_t length,
                                        const ChainMqmOptions& options) {
  PF_ASSIGN_OR_RETURN(ChainClassSummary summary, SummarizeChainClass(thetas));
  return MqmApproxAnalyze(summary, length, options);
}

}  // namespace pf
