// MQMExact (Algorithm 3): the Markov Quilt Mechanism specialized to
// discrete-time homogeneous Markov chains, computing *exact* max-influence
// via the decomposition of Eq. (5):
//
//   e_theta({X_{i-a}, X_{i+b}} | X_i) = max_{x,x'} (
//       log P(X_i=x')/P(X_i=x)
//     + max_y log P^b(x, y) / P^b(x', y)
//     + max_z log P^a(z, x) / P^a(z, x') )
//
// with the quilt family of Lemma 4.6 (only {X_{i-a}, X_{i+b}}, {X_{i-a}},
// {X_{i+b}} and the trivial quilt need be searched). Includes:
//  - the Appendix C.4 optimization for classes Theta = Delta_k x P (all
//    initial distributions): max over q reduces to a max over matrix rows;
//  - the stationary-initial shortcut of Section 4.4.1: when q is the
//    stationary distribution, max-influence is i-independent and only the
//    middle node need be searched (Lemma C.4's argument).
#ifndef PUFFERFISH_PUFFERFISH_MQM_EXACT_H_
#define PUFFERFISH_PUFFERFISH_MQM_EXACT_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "common/memory_stats.h"
#include "common/random.h"
#include "common/status.h"
#include "graphical/markov_chain.h"
#include "graphical/markov_quilt.h"
#include "pufferfish/markov_quilt_mechanism.h"

namespace pf {

/// Options for the chain-specialized quilt searches. Fixed per analysis:
/// a resumable ChainMqmAnalysis carries its options across ExtendTo calls
/// (the growing length is the only thing that changes), and the cache
/// layer keys analysis chains by (options, model, epsilon) minus length.
struct ChainMqmOptions {
  /// Privacy parameter epsilon.
  double epsilon = 1.0;
  /// Cap ell on card(X_N) of searched quilts. Quilts with larger nearby
  /// sets are skipped (except the trivial quilt, always included).
  std::size_t max_nearby = 64;
  /// Permit the stationary-initial shortcut (used only when the initial
  /// distribution matches the stationary distribution within tolerance).
  bool allow_stationary_shortcut = true;
  /// \brief Score one representative node per dedup class instead of every
  /// node. Nodes are keyed by (their marginal vector — or P^i in
  /// free-initial mode — and the boundary-clipped distances min(i, ell),
  /// min(T-1-i, ell)); nodes with equal keys provably share sigma_i, the
  /// active-quilt offsets, and the influence, so the O(T) node scan
  /// collapses to O(marginal mixing time + ell) scored nodes. Class
  /// membership is verified by exact value comparison (never by hash
  /// alone), so results are bit-identical to the exhaustive scan. Off =
  /// the exhaustive reference scan, kept for verification and benchmarks.
  bool dedup_nodes = true;
  /// Worker threads for the per-class sigma_i scan and the matrix-power /
  /// maximization-table precomputation; 0 = hardware concurrency (the
  /// library-wide convention, see common/parallel.h). Results are
  /// bit-identical for every value: tables are built up front, classes
  /// score independently, and the sigma_max reduction is sequential.
  std::size_t num_threads = 0;
};

/// Outcome of a chain quilt search.
struct ChainMqmResult {
  /// sigma_max: the Laplace scale multiplier (per unit Lipschitz constant).
  double sigma_max = 0.0;
  /// Node (0-based) attaining sigma_max. Under the stationary shortcut this
  /// is the middle node, which provably attains the maximum.
  int worst_node = 0;
  /// The active quilt at the worst node.
  MarkovQuilt active_quilt;
  /// Max-influence of the active quilt.
  double influence = 0.0;
  /// True if the stationary shortcut was used.
  bool used_stationary_shortcut = false;

  // ---- Analysis-cost diagnostics (summed / maxed over Theta) ----
  /// Chain nodes the analysis covered (T per theta in the class).
  std::size_t total_nodes = 0;
  /// sigma_i evaluations actually performed: one per dedup class (plus the
  /// single middle node under the stationary shortcut).
  std::size_t scored_nodes = 0;
  /// Memory accounting of the analysis pass (merged over Theta:
  /// peak/retained maxed, mallocs summed).
  ///
  /// `peak_bytes`: peak bytes resident in the streamed power ladder, the
  /// per-distance maximization tables, and the dedup class store. In
  /// free-initial mode this is O(k^2 * max(256, max_nearby)) — the class
  /// store caps at max(256, 4 * max_nearby) entries — and in particular
  /// length-independent, where the pre-optimization path materialized
  /// O(T * k^2). (The scan's per-node class-index array, 4 bytes per
  /// node, is not counted here.)
  ///
  /// `arena_retained_bytes`: the subset retained across ExtendTo calls by
  /// the resumable analysis (evaluator tables, stream cursor, class-store
  /// values) — the reuse pool behind the zero-allocation append path.
  ///
  /// `mallocs`: tracked heap-acquisition events during the pass (class
  /// creations, table builds, cursor-buffer growths, node-index growth).
  /// Exactly 0 on a steady-state ExtendTo append — the hot loop reuses
  /// retained buffers only; a positive count on cold/fallback passes is an
  /// event count, not a precise malloc tally.
  MemoryStats memory;
  /// Work saved by the dedup scan: total_nodes / scored_nodes (1.0 when
  /// every node was scored).
  double dedup_ratio() const {
    return scored_nodes == 0
               ? 1.0
               : static_cast<double>(total_nodes) / static_cast<double>(scored_nodes);
  }
};

/// \brief A resumable MQMExact analysis for growing chains (the streaming /
/// continual-release workload).
///
/// The sigma analysis is data-independent, and when a chain grows from T to
/// T' = T + delta almost every per-node score is provably unchanged: only
/// the O(max_nearby) right-boundary nodes whose clipped distance
/// min(T-1-i, ell) changed need re-keying, plus the delta appended nodes.
/// ChainMqmAnalysis therefore retains the analysis state between lengths —
/// the power/table evaluator (extend-only), the dedup class store with its
/// boundary-clipped distance keys, the streaming value cursor, and (under
/// the stationary shortcut) the middle-node cursor — and ExtendTo(T')
/// reuses every interior class verbatim.
///
/// Guarantees:
///  - ExtendTo(T') is BIT-identical to a cold analysis at T' — sigma_max,
///    worst node, active quilt, influence, shortcut flag, and the dedup
///    diagnostics (scored_nodes, memory.peak_bytes) — for every chain
///    variant (stationary / non-stationary / free-initial), shortcut
///    setting, and thread count. Chained extensions (T -> T+1 -> ... ->
///    T+delta) equal the one-shot analysis at T+delta.
///  - ExtendTo only grows: new_length < length() is InvalidArgument (build
///    a fresh analysis to shrink); new_length == length() is a no-op.
///  - Cost: O(max_nearby) rescored classes + O(delta) streamed nodes +
///    an O(T') reduce of stored per-class scores — no per-node sigma_i
///    work on the interior. Paths that keep no per-node state (the
///    exhaustive reference scan, or a dedup scan whose class store
///    overflowed) transparently fall back to a cold re-analysis, which is
///    always correct, just not incremental.
///
/// Not thread-safe: callers serialize ExtendTo (the AnalysisCache does).
class ChainMqmAnalysis {
 public:
  /// Algorithm 3 over an explicit class of chains, resumably.
  static Result<ChainMqmAnalysis> Analyze(std::vector<MarkovChain> thetas,
                                          std::size_t length,
                                          const ChainMqmOptions& options);
  /// Algorithm 3 with the Appendix C.4 free-initial class, resumably.
  static Result<ChainMqmAnalysis> AnalyzeFreeInitial(
      std::vector<Matrix> transitions, std::size_t length,
      const ChainMqmOptions& options);

  ChainMqmAnalysis(ChainMqmAnalysis&&) noexcept;
  ChainMqmAnalysis& operator=(ChainMqmAnalysis&&) noexcept;
  ~ChainMqmAnalysis();

  /// Chain length the analysis currently covers.
  std::size_t length() const;
  /// The analysis result at length() — identical to what MqmExactAnalyze
  /// (or the free-initial variant) returns for the same model and length.
  const ChainMqmResult& result() const;
  /// Re-analyzes at new_length >= length(), incrementally where possible.
  Status ExtendTo(std::size_t new_length);

 private:
  struct Impl;
  explicit ChainMqmAnalysis(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

/// \brief Exact max-influence e_{theta}(X_Q | X_i) of a chain quilt
/// (Eq. (5)); exposed for tests and the worked examples. The quilt must be
/// a chain quilt for a chain of length `length`.
Result<double> ChainQuiltInfluenceExact(const MarkovChain& theta,
                                        std::size_t length,
                                        const MarkovQuilt& quilt);

/// \brief Algorithm 3 (MQMExact) over an explicit class of chains. All
/// chains share the state space; `length` is T. Runs per-theta and takes
/// the worst sigma over Theta.
Result<ChainMqmResult> MqmExactAnalyze(const std::vector<MarkovChain>& thetas,
                                       std::size_t length,
                                       const ChainMqmOptions& options);

/// \brief Algorithm 3 with the Appendix C.4 class Theta = Delta_k x P:
/// every transition matrix in `transitions` paired with *every* initial
/// distribution. The max over initial distributions is computed in closed
/// form (max over rows of matrix powers) rather than by gridding the
/// simplex.
Result<ChainMqmResult> MqmExactAnalyzeFreeInitial(
    const std::vector<Matrix>& transitions, std::size_t length,
    const ChainMqmOptions& options);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_MQM_EXACT_H_
