#include "pufferfish/analysis_cache.h"

#include <cstring>

namespace pf {

namespace {
std::uint64_t DoubleBits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}
}  // namespace

Result<std::shared_ptr<const MechanismPlan>> AnalysisCache::GetOrAnalyze(
    const Mechanism& mechanism, double epsilon) {
  const Key key{mechanism.Fingerprint(), DoubleBits(epsilon),
                mechanism.kind()};
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find(key);
    // Key equality already implies bit-identical epsilon (epsilon_bits is
    // a key field).
    if (it != plans_.end()) {
      ++stats_.hits;
      if (it->second->cache_hits != nullptr) {
        it->second->cache_hits->fetch_add(1);
      }
      return it->second;
    }
    ++stats_.misses;
  }
  // Analyze outside the lock: analyses of different keys overlap, and a
  // duplicated analysis of the same key is merely wasted work, not an error.
  Result<MechanismPlan> plan = mechanism.Analyze(epsilon);
  if (!plan.ok()) return plan.status();
  auto shared = std::make_shared<const MechanismPlan>(std::move(plan).value());
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = plans_.emplace(key, shared);
  if (!inserted) {
    // Another thread won the race; serve its plan (and count the hit).
    ++stats_.hits;
    --stats_.misses;
    if (it->second->cache_hits != nullptr) it->second->cache_hits->fetch_add(1);
    return it->second;
  }
  insertion_order_.push_back(key);
  EvictIfFull();
  return shared;
}

void AnalysisCache::EvictIfFull() {
  if (max_entries_ == 0) return;
  while (plans_.size() > max_entries_ && !insertion_order_.empty()) {
    plans_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

AnalysisCache::Stats AnalysisCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

void AnalysisCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  insertion_order_.clear();
  stats_ = Stats{};
}

}  // namespace pf
