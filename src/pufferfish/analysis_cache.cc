#include "pufferfish/analysis_cache.h"

#include "common/fingerprint.h"

namespace pf {

namespace {
void BumpPlanHitCounter(const MechanismPlan& plan) {
  // Relaxed: the counter is a monotone diagnostic, not a synchronization
  // point; callers only ever read a snapshot.
  if (plan.cache_hits != nullptr) {
    plan.cache_hits->fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

Result<std::shared_ptr<const MechanismPlan>> AnalysisCache::GetOrAnalyze(
    const Mechanism& mechanism, double epsilon) {
  const Key key{mechanism.Fingerprint(), DoubleBits(epsilon),
                mechanism.kind()};
  std::shared_ptr<const MechanismPlan> found;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = plans_.find(key);
    // Key equality already implies bit-identical epsilon (epsilon_bits is
    // a key field).
    if (it != plans_.end()) found = it->second;
  }
  if (found != nullptr) {
    // Counters are bumped after the lock is released so the critical
    // section stays a pure lookup (no contention on the shared counter
    // under the lock). The shared_ptr copy keeps the plan alive past any
    // concurrent eviction.
    hits_.fetch_add(1, std::memory_order_relaxed);
    BumpPlanHitCounter(*found);
    return found;
  }
  // Analyze outside the lock: analyses of different keys overlap, and a
  // duplicated analysis of the same key is merely wasted work, not an error.
  Result<MechanismPlan> plan = mechanism.Analyze(epsilon);
  if (!plan.ok()) return plan.status();
  auto shared = std::make_shared<const MechanismPlan>(std::move(plan).value());
  std::shared_ptr<const MechanismPlan> winner;
  bool raced = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto [it, inserted] = plans_.emplace(key, shared);
    winner = it->second;
    raced = !inserted;
    if (inserted) {
      insertion_order_.push_back(key);
      EvictIfFull();
    }
  }
  if (raced) {
    // Another thread won the duplicate-key race; serve its plan and count
    // this call as a hit (no new analysis was stored).
    hits_.fetch_add(1, std::memory_order_relaxed);
    BumpPlanHitCounter(*winner);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return winner;
}

void AnalysisCache::EvictIfFull() {
  if (max_entries_ == 0) return;
  while (plans_.size() > max_entries_ && !insertion_order_.empty()) {
    plans_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

AnalysisCache::Stats AnalysisCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t AnalysisCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return plans_.size();
}

void AnalysisCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  plans_.clear();
  insertion_order_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace pf
