#include "pufferfish/analysis_cache.h"

#include "common/failpoint.h"
#include "common/fingerprint.h"

namespace pf {

namespace {
void BumpPlanHitCounter(const MechanismPlan& plan) {
  // Relaxed: the counter is a monotone diagnostic, not a synchronization
  // point; callers only ever read a snapshot.
  if (plan.cache_hits != nullptr) {
    plan.cache_hits->fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

std::shared_ptr<const MechanismPlan> AnalysisCache::TryGetPlan(
    const Key& key) {
  std::shared_ptr<const MechanismPlan> found;
  {
    MutexLock lock(mutex_);
    auto it = plans_.find(key);
    // Key equality already implies bit-identical epsilon (epsilon_bits is
    // a key field).
    if (it != plans_.end()) found = it->second;
  }
  if (found != nullptr) {
    // Counters are bumped after the lock is released so the critical
    // section stays a pure lookup (no contention on the shared counter
    // under the lock). The shared_ptr copy keeps the plan alive past any
    // concurrent eviction.
    hits_.fetch_add(1, std::memory_order_relaxed);
    BumpPlanHitCounter(*found);
  }
  return found;
}

bool AnalysisCache::Contains(const Mechanism& mechanism,
                             double epsilon) const {
  const Key key{mechanism.Fingerprint(), DoubleBits(epsilon),
                mechanism.kind()};
  MutexLock lock(mutex_);
  return plans_.find(key) != plans_.end();
}

Result<std::shared_ptr<const MechanismPlan>> AnalysisCache::GetOrAnalyze(
    const Mechanism& mechanism, double epsilon) {
  const Key key{mechanism.Fingerprint(), DoubleBits(epsilon),
                mechanism.kind()};
  if (auto found = TryGetPlan(key)) return found;
  PF_FAILPOINT("analysis_cache.analyze");
  // Analyze outside the lock: analyses of different keys overlap, and a
  // duplicated analysis of the same key is merely wasted work, not an error.
  Result<MechanismPlan> plan = mechanism.Analyze(epsilon);
  if (!plan.ok()) return plan.status().WithContext("cold analysis");
  return StorePlan(key,
                   std::make_shared<const MechanismPlan>(std::move(plan).value()));
}

std::shared_ptr<const MechanismPlan> AnalysisCache::StorePlan(
    const Key& key, std::shared_ptr<const MechanismPlan> plan) {
  std::shared_ptr<const MechanismPlan> winner;
  bool raced = false;
  {
    MutexLock lock(mutex_);
    auto [it, inserted] = plans_.emplace(key, std::move(plan));
    winner = it->second;
    raced = !inserted;
    if (inserted) {
      insertion_order_.push_back(key);
      EvictIfFull();
    }
  }
  if (raced) {
    // Another thread won the duplicate-key race; serve its plan and count
    // this call as a hit (no new analysis was stored).
    hits_.fetch_add(1, std::memory_order_relaxed);
    BumpPlanHitCounter(*winner);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
  }
  return winner;
}

Result<std::shared_ptr<const MechanismPlan>> AnalysisCache::GetOrExtend(
    const Mechanism& mechanism, double epsilon) {
  const std::uint64_t prefix = mechanism.PrefixFingerprint();
  const std::size_t target_length = mechanism.ExtendableLength();
  if (prefix == 0 || target_length == 0) {
    return GetOrAnalyze(mechanism, epsilon);
  }
  // Exact-key fast path first: a plan for this very length is already the
  // cheapest answer.
  const Key key{mechanism.Fingerprint(), DoubleBits(epsilon),
                mechanism.kind()};
  if (auto found = TryGetPlan(key)) return found;
  // Exact miss: find (or create) the chain entry for the length-free model
  // at this epsilon. The map lock only covers the lookup; the per-entry
  // lock serializes extensions of one chain without blocking others.
  const Key chain_key{prefix, DoubleBits(epsilon), mechanism.kind()};
  std::shared_ptr<ChainEntry> entry;
  {
    MutexLock lock(chains_mutex_);
    auto it = chains_.find(chain_key);
    if (it != chains_.end()) {
      entry = it->second;
    } else {
      entry = std::make_shared<ChainEntry>();
      chains_.emplace(chain_key, entry);
      chains_order_.push_back(chain_key);
      // Chain entries hold O(T) scan state; bound them like plans. An
      // evicted entry only forfeits future extension reuse — in-flight
      // users hold the shared_ptr.
      if (max_entries_ != 0) {
        while (chains_.size() > max_entries_ && !chains_order_.empty()) {
          chains_.erase(chains_order_.front());
          chains_order_.pop_front();
        }
      }
    }
  }
  MutexLock entry_lock(entry->mutex);
  const bool can_extend = entry->analysis != nullptr &&
                          entry->analysis->length() <= target_length;
  if (!can_extend) {
    // No retained analysis (or it is already past the target — records
    // only grow, so a longer entry means a different serving timeline):
    // seed the chain cold so future appends extend from here.
    PF_FAILPOINT("analysis_cache.analyze");
    Result<std::unique_ptr<ResumableAnalysis>> fresh =
        mechanism.AnalyzeResumable(epsilon);
    if (!fresh.ok()) return fresh.status().WithContext("cold resumable analysis");
    entry->analysis = std::move(fresh).value();
  }
  const bool extended = entry->analysis->length() < target_length;
  Status injected = Status::OK();
#ifdef PF_FAILPOINTS
  injected = FailpointRegistry::Instance().Evaluate("analysis_cache.extend");
#endif
  Result<MechanismPlan> plan =
      injected.ok() ? entry->analysis->ExtendTo(target_length)
                    : Result<MechanismPlan>(injected);
  if (!plan.ok()) {
    // A failed (or deadline-cancelled) extension may leave the retained
    // scan state mid-stride; discard it so the NEXT caller re-seeds the
    // chain cold instead of extending from a half-advanced analysis.
    entry->analysis.reset();
    return plan.status().WithContext("chain extension");
  }
  if (extended) extensions_.fetch_add(1, std::memory_order_relaxed);
  return StorePlan(
      key, std::make_shared<const MechanismPlan>(std::move(plan).value()));
}

std::vector<CachedPlan> AnalysisCache::ExportPlans() const {
  std::vector<CachedPlan> out;
  MutexLock lock(mutex_);
  out.reserve(plans_.size());
  // Walk the FIFO queue, not the map: insertion order round-trips through
  // a snapshot, so a restored cache evicts in the same order the original
  // would have.
  for (const Key& key : insertion_order_) {
    auto it = plans_.find(key);
    if (it == plans_.end()) continue;  // Evicted after enqueue; stale entry.
    CachedPlan entry;
    entry.fingerprint = key.fingerprint;
    entry.epsilon_bits = key.epsilon_bits;
    entry.kind = key.kind;
    entry.plan = it->second;
    out.push_back(std::move(entry));
  }
  return out;
}

std::size_t AnalysisCache::ImportPlans(const std::vector<CachedPlan>& entries) {
  std::size_t inserted = 0;
  MutexLock lock(mutex_);
  for (const CachedPlan& entry : entries) {
    if (entry.plan == nullptr) continue;
    const Key key{entry.fingerprint, entry.epsilon_bits, entry.kind};
    auto [it, fresh] = plans_.emplace(key, entry.plan);
    (void)it;
    if (!fresh) continue;
    insertion_order_.push_back(key);
    EvictIfFull();
    ++inserted;
  }
  return inserted;
}

void AnalysisCache::EvictIfFull() {
  if (max_entries_ == 0) return;
  while (plans_.size() > max_entries_ && !insertion_order_.empty()) {
    plans_.erase(insertion_order_.front());
    insertion_order_.pop_front();
  }
}

AnalysisCache::Stats AnalysisCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.extensions = extensions_.load(std::memory_order_relaxed);
  return stats;
}

std::size_t AnalysisCache::size() const {
  MutexLock lock(mutex_);
  return plans_.size();
}

void AnalysisCache::Clear() {
  {
    MutexLock lock(chains_mutex_);
    chains_.clear();
    chains_order_.clear();
  }
  MutexLock lock(mutex_);
  plans_.clear();
  insertion_order_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  extensions_.store(0, std::memory_order_relaxed);
}

}  // namespace pf
