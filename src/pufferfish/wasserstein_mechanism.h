// The Wasserstein Mechanism (Algorithm 1): the first mechanism that applies
// to *any* Pufferfish instantiation. For a scalar query F it computes
//   W = sup_{(s_i, s_j) in Q, theta in Theta}
//         W_inf( P(F(X)|s_i, theta), P(F(X)|s_j, theta) )
// and releases F(D) + Lap(W / epsilon). Theorem 3.2 shows this is
// epsilon-Pufferfish private; when Pufferfish reduces to differential
// privacy, W reduces to the global sensitivity and the mechanism to the
// Laplace mechanism.
#ifndef PUFFERFISH_PUFFERFISH_WASSERSTEIN_MECHANISM_H_
#define PUFFERFISH_PUFFERFISH_WASSERSTEIN_MECHANISM_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "dist/discrete_distribution.h"
#include "dist/wasserstein.h"
#include "graphical/bayesian_network.h"
#include "pufferfish/framework.h"

namespace pf {

/// \brief One secret pair under one theta, reduced to the pair of
/// conditional output distributions the mechanism must make
/// indistinguishable: mu_i = P(F(X)|s_i, theta), mu_j = P(F(X)|s_j, theta).
struct ConditionalOutputPair {
  DiscreteDistribution mu_i;
  DiscreteDistribution mu_j;
};

/// \brief The generic Wasserstein Mechanism over explicitly supplied
/// conditional output distributions.
///
/// This is the fully general entry point: *any* Pufferfish instantiation can
/// be used by enumerating its secret pairs and thetas and supplying the
/// conditional distributions of F(X). Helpers below do this enumeration for
/// Bayesian-network instantiations.
class WassersteinMechanism {
 public:
  /// Computes W = max over pairs of W_inf(mu_i, mu_j) and prepares the
  /// mechanism. Fails if `pairs` is empty or epsilon invalid.
  static Result<WassersteinMechanism> Make(
      const std::vector<ConditionalOutputPair>& pairs, double epsilon,
      WassersteinBackend backend = WassersteinBackend::kQuantile);

  /// The sensitivity parameter W of Algorithm 1.
  double wasserstein_sensitivity() const { return w_; }
  /// Laplace scale W / epsilon.
  double noise_scale() const { return w_ / epsilon_; }

  /// Releases F(D) + Lap(W/epsilon).
  double Release(double true_value, Rng* rng) const;

 private:
  WassersteinMechanism(double w, double epsilon) : w_(w), epsilon_(epsilon) {}
  double w_;
  double epsilon_;
};

/// \brief Enumerates the Section 4.1 instantiation over a Bayesian-network
/// class: for every variable i, every value pair (a, b) with positive
/// probability, and every theta, computes P(F(X)|X_i=a, theta) and
/// P(F(X)|X_i=b, theta) by exact enumeration.
///
/// `query` maps a complete assignment to the scalar F(X). All networks in
/// `thetas` must have identical shape (node count and arities).
Result<std::vector<ConditionalOutputPair>> EnumerateBayesNetOutputPairs(
    const std::vector<BayesianNetwork>& thetas,
    const std::function<double(const Assignment&)>& query,
    std::size_t enumeration_limit = 1u << 22);

/// \brief Convenience: conditional output distribution P(F(X) | X_i = a)
/// for a single network (exposed for tests and examples).
Result<DiscreteDistribution> ConditionalOutputDistribution(
    const BayesianNetwork& bn,
    const std::function<double(const Assignment&)>& query, int variable,
    int value, std::size_t enumeration_limit = 1u << 22);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_WASSERSTEIN_MECHANISM_H_
