#include "pufferfish/mqm_exact.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <utility>

#include "common/fingerprint.h"
#include "common/parallel.h"
#include "pufferfish/framework.h"

namespace pf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Evaluates the Eq. (5) terms for one transition matrix. Two-phase use:
// PrepareDistances() builds the matrix powers P^0..P^max_distance and the
// per-distance maximization tables (optionally in parallel), after which
// all queries are read-only and safe to issue from many threads at once.
// Supports two modes:
//  - explicit initial distribution: the caller streams the marginal vector
//    of each node into ContextFromMarginal;
//  - free initial distribution (Appendix C.4): the caller streams P^i into
//    ContextFromPower, and the marginal log-ratio terms become maxima over
//    matrix-power rows.
//
// Unlike the pre-optimization evaluator, nothing here scales with the
// chain length T: the node-dependent inputs (marginals / powers) are
// streamed in by the scan, so resident memory is O(max_distance * k^2).
class ExactEvaluator {
 public:
  ExactEvaluator(const Matrix& transition, bool free_initial)
      : p_(transition), k_(transition.rows()), free_initial_(free_initial) {
    powers_.push_back(Matrix::Identity(k_));
  }

  // Builds powers P^0..P^max_distance and the left/right maximization
  // tables for distances 1..max_distance. Must be called before any query;
  // after it returns the evaluator is immutable and thread-safe.
  void Prepare(std::size_t max_distance, ThreadPool* pool) {
    std::vector<std::size_t> distances;
    distances.reserve(max_distance);
    for (std::size_t t = 1; t <= max_distance; ++t) distances.push_back(t);
    PrepareDistances(distances, pool);
  }

  // As Prepare, but builds maximization tables only for the listed
  // distances — the single-quilt entry point needs just two of them.
  void PrepareDistances(const std::vector<std::size_t>& distances,
                        ThreadPool* pool) {
    std::size_t max_distance = 0;
    for (std::size_t t : distances) max_distance = std::max(max_distance, t);
    // The power chain is sequential in n; each multiply is row-parallel.
    while (powers_.size() <= max_distance) {
      powers_.push_back(ParallelMultiply(powers_.back(), p_, pool));
    }
    // Per-distance tables are independent once the powers exist.
    left_tables_.assign(max_distance + 1, Matrix());
    right_tables_.assign(max_distance + 1, Matrix());
    const auto build = [&](std::size_t idx) {
      const std::size_t t = distances[idx];
      if (t == 0) return;
      left_tables_[t] = BuildLeftTable(t);
      right_tables_[t] = BuildRightTable(t);
    };
    if (pool != nullptr) {
      pool->ParallelFor(distances.size(), build);
    } else {
      for (std::size_t idx = 0; idx < distances.size(); ++idx) build(idx);
    }
    max_distance_ = max_distance;
  }

  std::size_t max_distance() const { return max_distance_; }
  std::size_t num_states() const { return k_; }
  bool free_initial() const { return free_initial_; }
  const Matrix& transition() const { return p_; }

  // Doubles resident in the prepared powers and tables (ladder accounting).
  std::size_t StoredDoubles() const {
    std::size_t n = 0;
    for (const Matrix& m : powers_) n += m.rows() * m.cols();
    for (const Matrix& m : left_tables_) n += m.rows() * m.cols();
    for (const Matrix& m : right_tables_) n += m.rows() * m.cols();
    return n;
  }

  // Per-node state reused across a node's whole quilt family: the Term1
  // marginal table and the feasibility mask. Building it once per scored
  // node (not per quilt) keeps the family scan at O(k^2) per quilt with no
  // shared mutable cache, so concurrent scans stay lock-free.
  struct NodeContext {
    std::size_t node = 0;
    Matrix term1;
    std::vector<char> feasible;
  };

  // Context for an explicit-initial node with marginal vector m = P(X_i).
  NodeContext ContextFromMarginal(std::size_t i, const Vector& m) const {
    NodeContext ctx;
    ctx.node = i;
    ctx.term1 = Matrix(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        if (m[x] > 0.0 && m[xp] > 0.0) {
          ctx.term1(x, xp) = std::log(m[xp] / m[x]);
        } else {
          ctx.term1(x, xp) = -kInf;  // Pair filtered by feasibility anyway.
        }
      }
    }
    ctx.feasible.assign(k_, 0);
    for (std::size_t x = 0; x < k_; ++x) ctx.feasible[x] = m[x] > 0.0 ? 1 : 0;
    return ctx;
  }

  // Context for a free-initial node with power matrix pi = P^i: the sup
  // over initial distributions of the marginal log-ratio term equals the
  // max over rows z of log P^i(z, x') / P^i(z, x) (Appendix C.4), +inf on
  // support mismatch; a state is feasible iff some row reaches it.
  NodeContext ContextFromPower(std::size_t i, const Matrix& pi) const {
    NodeContext ctx;
    ctx.node = i;
    ctx.term1 = Matrix(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t z = 0; z < k_; ++z) {
          const double num = pi(z, xp);
          const double den = pi(z, x);
          if (num <= 0.0) continue;
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        ctx.term1(x, xp) = best;
      }
    }
    ctx.feasible.assign(k_, 0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t z = 0; z < k_; ++z) {
        if (pi(z, x) > 0.0) {
          ctx.feasible[x] = 1;
          break;
        }
      }
    }
    return ctx;
  }

  // Max-influence of the two-sided quilt {X_{i-a}, X_{i+b}} at node i.
  double TwoSided(const NodeContext& ctx, int a, int b) const {
    return MaxOverPairs(ctx, &right_tables_[static_cast<std::size_t>(b)],
                        &left_tables_[static_cast<std::size_t>(a)]);
  }

  // Max-influence of {X_{i-a}} (left-only quilt).
  double LeftOnly(const NodeContext& ctx, int a) const {
    return MaxOverPairs(ctx, nullptr,
                        &left_tables_[static_cast<std::size_t>(a)]);
  }

  // Max-influence of {X_{i+b}} (right-only quilt; no marginal term).
  double RightOnly(const NodeContext& ctx, int b) const {
    const Matrix& right = right_tables_[static_cast<std::size_t>(b)];
    double best = 0.0;
    for (std::size_t x = 0; x < k_; ++x) {
      if (!ctx.feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !ctx.feasible[xp]) continue;
        best = std::max(best, right(x, xp));
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

 private:
  const Matrix& Pow(std::size_t n) const { return powers_[n]; }

  // right(x, x') = max over y with P^b(x,y) > 0 of log P^b(x,y)/P^b(x',y);
  // +inf when the support of row x is not contained in the support of x'.
  Matrix BuildRightTable(std::size_t b) const {
    const Matrix& pb = Pow(b);
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t y = 0; y < k_; ++y) {
          const double num = pb(x, y);
          if (num <= 0.0) continue;
          const double den = pb(xp, y);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return table;
  }

  // left(x, x') = max over z in X with P^a(z,x) > 0 of
  // log P^a(z,x)/P^a(z,x'); +inf on support mismatch; -inf if no z reaches
  // x (x infeasible, filtered by the caller's feasibility mask). Following
  // Eq. (5) literally, the max ranges over *all* states z regardless of
  // whether P(X_{i-a} = z) > 0 — a conservative (privacy-safe) bound that
  // matches the paper's reported numbers.
  Matrix BuildLeftTable(std::size_t a) const {
    const Matrix& pa = Pow(a);
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t z = 0; z < k_; ++z) {
          const double num = pa(z, x);
          if (num <= 0.0) continue;
          const double den = pa(z, xp);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return table;
  }

  // max over feasible ordered pairs (x, x') of t1 + right + left (either
  // table may be null when the quilt lacks that side).
  double MaxOverPairs(const NodeContext& ctx, const Matrix* right,
                      const Matrix* left) const {
    const Matrix& t1 = ctx.term1;
    const std::vector<char>& feasible = ctx.feasible;
    double best = 0.0;
    for (std::size_t x = 0; x < k_; ++x) {
      if (!feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !feasible[xp]) continue;
        double v = t1(x, xp);
        if (right != nullptr) v += (*right)(x, xp);
        if (left != nullptr) v += (*left)(x, xp);
        if (std::isnan(v)) continue;  // -inf + inf: infeasible combination.
        best = std::max(best, v);
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

  const Matrix& p_;
  const std::size_t k_;
  const bool free_initial_;
  std::size_t max_distance_ = 0;
  std::vector<Matrix> powers_;
  // Indexed by distance; slot 0 unused.
  std::vector<Matrix> left_tables_;
  std::vector<Matrix> right_tables_;
};

// Streams the node-dependent input of the scan — the marginal vector
// P(X_i) in explicit mode, the power P^i in free-initial mode — one node
// at a time, with bitwise cycle detection: once one step leaves the value
// unchanged (period 1, the generic ergodic case) or returns the value of
// two steps ago (period 2, near-periodic chains whose values ulp-oscillate
// around the limit), every later value is determined by induction on the
// deterministic recurrence and the per-step work (an O(k^2) ApplyLeft or
// an O(k^3) multiply) stops. The recurrences are the exact ones the
// pre-optimization path used to materialize its O(T)-sized tables, so
// streamed values are bit-identical to the stored ones.
class NodeValueStream {
 public:
  // Explicit mode: marginal recurrence m_0 = initial, m_{t+1} = m_t P.
  NodeValueStream(const Matrix& transition, const Vector& initial)
      : p_(transition), marginal_(initial), free_initial_(false) {}

  // Free-initial mode: power recurrence P^0 = I, P^{t+1} = P^t P.
  NodeValueStream(const Matrix& transition, ThreadPool* pool)
      : p_(transition),
        power_(Matrix::Identity(transition.rows())),
        free_initial_(true),
        pool_(pool) {}

  bool free_initial() const { return free_initial_; }
  // 0 while the value is still changing; 1 once fixed; 2 on a two-cycle.
  std::size_t period() const { return period_; }
  const Vector& marginal() const { return marginal_; }
  const Matrix& power() const { return power_; }

  // Doubles resident in the streaming cursor (current + previous value).
  std::size_t StoredDoubles() const {
    return free_initial_
               ? power_.rows() * power_.cols() +
                     prev_power_.rows() * prev_power_.cols()
               : marginal_.size() + prev_marginal_.size();
  }

  // Steps to the next node's value.
  void Advance() {
    if (period_ == 1) return;
    if (period_ == 2) {
      if (free_initial_) {
        std::swap(power_, prev_power_);
      } else {
        std::swap(marginal_, prev_marginal_);
      }
      return;
    }
    if (free_initial_) {
      Matrix next = ParallelMultiply(power_, p_, pool_);
      if (next == power_) {
        period_ = 1;
        return;
      }
      if (next == prev_power_) period_ = 2;
      prev_power_ = std::move(power_);
      power_ = std::move(next);
    } else {
      Vector next = p_.ApplyLeft(marginal_);
      if (next == marginal_) {
        period_ = 1;
        return;
      }
      if (next == prev_marginal_) period_ = 2;
      prev_marginal_ = std::move(marginal_);
      marginal_ = std::move(next);
    }
  }

 private:
  const Matrix& p_;
  Vector marginal_, prev_marginal_;
  Matrix power_, prev_power_;
  bool free_initial_;
  std::size_t period_ = 0;
  ThreadPool* pool_ = nullptr;
};

// Largest endpoint distance any quilt in the Lemma 4.6 family (capped at
// max_nearby, over a chain of `length` nodes) can reach: two-sided quilts
// have a + b - 1 <= max_nearby with a, b >= 1, and one-sided quilts whose
// nearby set fits the cap also keep their endpoint within max_nearby of
// the target.
std::size_t FamilyMaxDistance(std::size_t length, std::size_t max_nearby) {
  return std::min(length > 0 ? length - 1 : 0, max_nearby);
}

// Computes the influence of one chain quilt with a prepared evaluator and
// the quilt's node context.
double EvaluateQuilt(const ExactEvaluator& eval,
                     const ExactEvaluator::NodeContext& ctx,
                     const MarkovQuilt& quilt) {
  if (quilt.quilt.empty()) return 0.0;
  const auto [a, b] = ChainQuiltOffsets(quilt);
  if (a > 0 && b > 0) return eval.TwoSided(ctx, a, b);
  if (a > 0) return eval.LeftOnly(ctx, a);
  return eval.RightOnly(ctx, b);
}

struct NodeScore {
  QuiltScore best;
};

// sigma_i = min over the Lemma 4.6 family (capped at max_nearby) of the
// quilt score for node i, given the node's prepared context. Read-only on
// the evaluator.
//
// Enumerates the family inline, in exactly ChainQuiltFamily's order and
// with its skip rules (two-sided a asc then b asc, left-only, right-only,
// trivial), but materializes only the winning quilt: the full family is
// ~max_nearby^2/2 heap-backed quilt objects per scored node, which used to
// dominate the scan's profile.
NodeScore ScoreNode(const ExactEvaluator& eval, std::size_t length,
                    const ExactEvaluator::NodeContext& ctx, double epsilon,
                    std::size_t max_nearby) {
  const int node = static_cast<int>(ctx.node);
  const int n = static_cast<int>(length);
  NodeScore out;
  out.best.score = kInf;
  int best_a = 0, best_b = 0;  // (0, 0) encodes the trivial quilt.
  bool have_best = false;
  const auto consider = [&](int a, int b, std::size_t nearby_count,
                            double influence) {
    const double score =
        QuiltScoreFromInfluence(nearby_count, epsilon, influence);
    if (score < out.best.score) {
      best_a = a;
      best_b = b;
      have_best = true;
      out.best.influence = influence;
      out.best.score = score;
    }
  };
  // Two-sided quilts {X_{i-a}, X_{i+b}}: nearby count a + b - 1.
  for (int a = 1; a <= node; ++a) {
    if (static_cast<std::size_t>(a) > max_nearby) break;
    for (int b = 1; node + b < n; ++b) {
      if (static_cast<std::size_t>(a + b - 1) > max_nearby) break;
      consider(a, b, static_cast<std::size_t>(a + b - 1),
               eval.TwoSided(ctx, a, b));
    }
  }
  // Left-only quilts {X_{i-a}}: nearby count (n-1) - (i-a), strictly
  // increasing in a, so the first overflow ends the loop (same quilt set
  // and order as ChainQuiltFamily's skip).
  for (int a = 1; a <= node; ++a) {
    const std::size_t near_count = static_cast<std::size_t>(n - 1 - (node - a));
    if (near_count > max_nearby) break;
    consider(a, 0, near_count, eval.LeftOnly(ctx, a));
  }
  // Right-only quilts {X_{i+b}}: nearby count i + b.
  for (int b = 1; node + b < n; ++b) {
    const std::size_t near_count = static_cast<std::size_t>(node + b);
    if (near_count > max_nearby) break;
    consider(0, b, near_count, eval.RightOnly(ctx, b));
  }
  // The trivial quilt (always searched, as Theorem 4.3 requires).
  consider(0, 0, length, 0.0);
  out.best.quilt = have_best && (best_a > 0 || best_b > 0)
                       ? ChainQuilt(length, node, best_a, best_b).ValueOrDie()
                       : TrivialQuilt(node, length);
  return out;
}

// The node context for node i given the current stream value.
ExactEvaluator::NodeContext ContextFromStream(const ExactEvaluator& eval,
                                              const NodeValueStream& stream,
                                              std::size_t i) {
  return stream.free_initial() ? eval.ContextFromPower(i, stream.power())
                               : eval.ContextFromMarginal(i, stream.marginal());
}

// Scores n nodes as one block, fanning out over the pool when present.
// make_ctx(j) supplies the j-th node's context (by reference or value);
// deterministic for any thread count (per-index slots, no shared state).
template <typename MakeCtx>
std::vector<NodeScore> ScoreBlock(const ExactEvaluator& eval,
                                  std::size_t length, std::size_t n,
                                  double epsilon, std::size_t max_nearby,
                                  ThreadPool* pool, MakeCtx make_ctx) {
  std::vector<NodeScore> scores(n);
  const auto score_one = [&](std::size_t j) {
    scores[j] = ScoreNode(eval, length, make_ctx(j), epsilon, max_nearby);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, score_one);
  } else {
    for (std::size_t j = 0; j < n; ++j) score_one(j);
  }
  return scores;
}

// True iff the quilt is two-sided with both endpoints strictly inside the
// chain (the precondition for the Lemma C.4 middle-node shortcut).
bool IsInteriorTwoSided(const MarkovQuilt& quilt, std::size_t length) {
  if (quilt.quilt.size() != 2) return false;
  return quilt.quilt.front() >= 0 &&
         quilt.quilt.back() <= static_cast<int>(length) - 1;
}

// Re-targets a scored quilt from its representative node to `node`. Valid
// because nodes in one dedup class have identical quilt families up to
// translation: the offsets (a, b) exist at `node` with the same
// nearby_count (see the class-key invariant below).
MarkovQuilt TranslateQuilt(const MarkovQuilt& quilt, int node,
                           std::size_t length) {
  if (quilt.IsTrivial()) return TrivialQuilt(node, length);
  if (quilt.target == node) return quilt;
  const auto [a, b] = ChainQuiltOffsets(quilt);
  return ChainQuilt(length, node, a, b).ValueOrDie();
}

// One dedup class: nodes sharing (stream value, boundary-clip distances).
//
// Invariant (why members provably share sigma_i): ChainQuiltFamily(T, i,
// ell) depends on i only through dl = min(i, ell) and dr = min(T-1-i,
// ell) — two-sided quilts range over a <= dl, b <= min(dr, ell-a+1);
// left-only quilts exist only when dr < ell (then their count dr + a is
// exact in dr); right-only only when dl < ell (count dl + b) — and the
// Eq. (5) terms depend on i only through the marginal (or P^i) and the
// shared distance tables. Equal key ==> identical family (same offsets,
// same order, same nearby counts) and identical influences ==> identical
// sigma_i, argmin offsets, and influence, bit for bit.
struct NodeClass {
  std::size_t representative = 0;  // Lowest node index in the class.
  std::size_t dl = 0, dr = 0;
  Vector marginal;  // Explicit-mode value.
  Matrix power;     // Free-initial-mode value.
  NodeScore score;  // Filled by the scoring phase.
};

// Caps the class store so slowly-converging value streams cannot grow
// memory past O(max(256, 4 * max_nearby) * k^2): overflow nodes are
// scored in bounded blocks and folded into a running best-candidate, so
// even the fully-degraded path holds O(block) transient state.
std::size_t MaxClasses(std::size_t max_nearby) {
  return std::max<std::size_t>(256, 4 * max_nearby);
}

constexpr std::uint32_t kNoClass = std::numeric_limits<std::uint32_t>::max();

std::uint64_t ClassKeyHash(const NodeValueStream& stream, std::size_t dl,
                           std::size_t dr) {
  Fingerprint fp;
  if (stream.free_initial()) {
    fp.Add(stream.power());
  } else {
    fp.Add(stream.marginal());
  }
  fp.Add(dl).Add(dr);
  return fp.hash();
}

bool ClassMatches(const NodeClass& cls, const NodeValueStream& stream,
                  std::size_t dl, std::size_t dr) {
  if (cls.dl != dl || cls.dr != dr) return false;
  return stream.free_initial() ? cls.power == stream.power()
                               : cls.marginal == stream.marginal();
}

// The deduplicated scan. Phase 1 walks the chain once, streaming the
// node value and assigning every node to a class (hash lookup verified by
// exact value comparison); phase 2 scores one representative per class in
// parallel; phase 3 reduces sequentially over nodes in index order —
// bit-identical to the exhaustive scan, including worst-node tie-breaks
// and the active quilt's absolute indices.
ChainMqmResult ScanDedup(const ExactEvaluator& eval, NodeValueStream* stream,
                         std::size_t length, const ChainMqmOptions& options,
                         ThreadPool* pool) {
  const std::size_t ell = options.max_nearby;
  const std::size_t tail = length - 1;
  const std::size_t max_classes = MaxClasses(ell);

  std::vector<std::uint32_t> node_class(length, kNoClass);
  std::vector<NodeClass> classes;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
  // Once the stream value cycles (period 1 or 2) and both clip distances
  // are saturated, the key sequence repeats with the cycle until the right
  // boundary region — reuse the classes of one period without hashing.
  std::uint32_t steady_class[2] = {kNoClass, kNoClass};
  std::size_t class_value_doubles = 0;

  // Overflow nodes (class store at capacity) buffer their contexts and
  // score in parallel blocks, so a pathological non-cycling stream
  // degrades to the exhaustive scan's speed, not to a serial one. Scores
  // are folded into one running candidate instead of an O(T) store:
  // flushes happen in ascending node order with a strictly-greater
  // update, so the fold keeps exactly the lowest overflow node attaining
  // the overflow maximum — the same tie-break the exhaustive walk uses.
  struct PendingNode {
    std::size_t node;
    ExactEvaluator::NodeContext ctx;
  };
  std::vector<PendingNode> pending;
  const std::size_t pending_block = std::max<std::size_t>(
      64, 4 * (pool != nullptr ? pool->num_threads() : 1));
  std::size_t pending_peak_doubles = 0;
  std::size_t overflow_count = 0;
  double overflow_best_score = -kInf;
  std::size_t overflow_best_node = 0;
  NodeScore overflow_best;
  const auto flush_pending = [&] {
    if (pending.empty()) return;
    std::size_t doubles = 0;
    for (const PendingNode& p : pending) {
      doubles += p.ctx.term1.rows() * p.ctx.term1.cols();
    }
    pending_peak_doubles = std::max(pending_peak_doubles, doubles);
    std::vector<NodeScore> scores = ScoreBlock(
        eval, length, pending.size(), options.epsilon, ell, pool,
        [&](std::size_t j) -> const ExactEvaluator::NodeContext& {
          return pending[j].ctx;
        });
    for (std::size_t j = 0; j < pending.size(); ++j) {
      if (scores[j].best.score > overflow_best_score) {
        overflow_best_score = scores[j].best.score;
        overflow_best_node = pending[j].node;
        overflow_best = std::move(scores[j]);
      }
    }
    overflow_count += pending.size();
    pending.clear();
  };

  for (std::size_t i = 0; i < length; ++i) {
    const std::size_t dl = std::min(i, ell);
    const std::size_t dr = std::min(tail - i, ell);
    const std::size_t period = stream->period();
    const std::size_t phase = period == 2 ? (i & 1) : 0;
    if (period != 0 && dl == ell && dr == ell &&
        steady_class[phase] != kNoClass) {
      node_class[i] = steady_class[phase];
      stream->Advance();
      continue;
    }
    const std::uint64_t h = ClassKeyHash(*stream, dl, dr);
    std::uint32_t found = kNoClass;
    // find() rather than operator[]: overflow nodes must not leave O(T)
    // empty buckets behind in the degraded path.
    const auto it = index.find(h);
    if (it != index.end()) {
      for (std::uint32_t id : it->second) {
        if (ClassMatches(classes[id], *stream, dl, dr)) {
          found = id;
          break;
        }
      }
    }
    if (found == kNoClass) {
      // Period-detected values always get a slot, even past the cap: a
      // slow-mixing chain can exhaust the store with bit-distinct
      // transients before the marginal fixes, and without a stored class
      // the steady-state fast path could never engage — every remaining
      // node would fall to overflow scoring. Post-period keys are bounded
      // by O(max_nearby) (two phases x the clipped-distance combinations),
      // so the memory bound is unchanged.
      if (classes.size() < max_classes || stream->period() != 0) {
        NodeClass cls;
        cls.representative = i;
        cls.dl = dl;
        cls.dr = dr;
        if (stream->free_initial()) {
          cls.power = stream->power();
        } else {
          cls.marginal = stream->marginal();
        }
        class_value_doubles += cls.power.rows() * cls.power.cols() +
                               cls.marginal.size();
        found = static_cast<std::uint32_t>(classes.size());
        classes.push_back(std::move(cls));
        index[h].push_back(found);
      } else {
        // Class store full: buffer for blocked parallel scoring.
        pending.push_back(
            PendingNode{i, ContextFromStream(eval, *stream, i)});
        if (pending.size() >= pending_block) flush_pending();
      }
    }
    node_class[i] = found;
    if (found != kNoClass && period != 0 && dl == ell && dr == ell) {
      steady_class[phase] = found;
    }
    stream->Advance();
  }
  flush_pending();

  // Score one representative per class; classes are independent (each
  // worker builds its representative's context from the stored value).
  std::vector<NodeScore> class_scores = ScoreBlock(
      eval, length, classes.size(), options.epsilon, ell, pool,
      [&](std::size_t c) {
        const NodeClass& cls = classes[c];
        return stream->free_initial()
                   ? eval.ContextFromPower(cls.representative, cls.power)
                   : eval.ContextFromMarginal(cls.representative,
                                              cls.marginal);
      });
  for (std::size_t c = 0; c < classes.size(); ++c) {
    classes[c].score = std::move(class_scores[c]);
  }

  // Reduce over classed nodes in index order (the lowest node attaining
  // the maximum wins, exactly like the exhaustive walk), then merge the
  // overflow candidate: on a score tie the lower node index prevails.
  ChainMqmResult result;
  result.sigma_max = -kInf;
  bool have_classed = false;
  for (std::size_t i = 0; i < length; ++i) {
    if (node_class[i] == kNoClass) continue;
    const NodeScore& s = classes[node_class[i]].score;
    if (s.best.score > result.sigma_max) {
      result.sigma_max = s.best.score;
      result.worst_node = static_cast<int>(i);
      result.active_quilt =
          TranslateQuilt(s.best.quilt, static_cast<int>(i), length);
      result.influence = s.best.influence;
      have_classed = true;
    }
  }
  if (overflow_count > 0 &&
      (!have_classed || overflow_best_score > result.sigma_max ||
       (overflow_best_score == result.sigma_max &&
        overflow_best_node < static_cast<std::size_t>(result.worst_node)))) {
    result.sigma_max = overflow_best_score;
    result.worst_node = static_cast<int>(overflow_best_node);
    result.active_quilt = overflow_best.best.quilt;
    result.influence = overflow_best.best.influence;
  }
  result.total_nodes = length;
  result.scored_nodes = classes.size() + overflow_count;
  result.ladder_peak_bytes =
      sizeof(double) * (eval.StoredDoubles() + stream->StoredDoubles() +
                        class_value_doubles + pending_peak_doubles);
  return result;
}

// The exhaustive reference scan (dedup_nodes = false): every node scored,
// in streamed blocks of bounded memory. Kept for verification and the
// long-chain benchmark's pre-optimization baseline.
ChainMqmResult ScanExhaustive(const ExactEvaluator& eval,
                              NodeValueStream* stream, std::size_t length,
                              const ChainMqmOptions& options,
                              ThreadPool* pool) {
  const std::size_t threads = pool != nullptr ? pool->num_threads() : 1;
  const std::size_t block = std::max<std::size_t>(64, 4 * threads);
  std::vector<ExactEvaluator::NodeContext> contexts(
      std::min(block, length));
  ChainMqmResult result;
  result.sigma_max = -kInf;
  std::size_t peak_context_doubles = 0;
  for (std::size_t start = 0; start < length; start += block) {
    const std::size_t n = std::min(block, length - start);
    std::size_t context_doubles = 0;
    for (std::size_t j = 0; j < n; ++j) {
      contexts[j] = ContextFromStream(eval, *stream, start + j);
      context_doubles += contexts[j].term1.rows() * contexts[j].term1.cols();
      stream->Advance();
    }
    peak_context_doubles = std::max(peak_context_doubles, context_doubles);
    const std::vector<NodeScore> scores = ScoreBlock(
        eval, length, n, options.epsilon, options.max_nearby, pool,
        [&](std::size_t j) -> const ExactEvaluator::NodeContext& {
          return contexts[j];
        });
    for (std::size_t j = 0; j < n; ++j) {
      if (scores[j].best.score > result.sigma_max) {
        result.sigma_max = scores[j].best.score;
        result.worst_node = static_cast<int>(start + j);
        result.active_quilt = scores[j].best.quilt;
        result.influence = scores[j].best.influence;
      }
    }
  }
  result.total_nodes = length;
  result.scored_nodes = length;
  result.ladder_peak_bytes =
      sizeof(double) *
      (eval.StoredDoubles() + stream->StoredDoubles() + peak_context_doubles);
  return result;
}

ChainMqmResult ScanAllNodes(const ExactEvaluator& eval,
                            NodeValueStream* stream, std::size_t length,
                            const ChainMqmOptions& options, ThreadPool* pool) {
  return options.dedup_nodes
             ? ScanDedup(eval, stream, length, options, pool)
             : ScanExhaustive(eval, stream, length, options, pool);
}

Result<ChainMqmResult> AnalyzeOneTheta(const MarkovChain& theta,
                                       std::size_t length,
                                       const ChainMqmOptions& options,
                                       ThreadPool* pool) {
  ChainMqmResult result;
  // Stationary shortcut: if q == pi (and pi > 0), the max-influence of every
  // interior quilt is independent of i and the middle node attains
  // sigma_max (Lemma C.4's argument applies verbatim to exact influences:
  // each Eq. (5) term is nonnegative after adding the marginal term).
  bool shortcut = false;
  if (options.allow_stationary_shortcut && length >= 3) {
    Result<Vector> pi = theta.StationaryDistribution();
    if (pi.ok() && DistanceL1(pi.value(), theta.initial()) < 1e-9 &&
        *std::min_element(pi.value().begin(), pi.value().end()) > 0.0) {
      shortcut = true;
    }
  }
  ExactEvaluator eval(theta.transition(), /*free_initial=*/false);
  eval.Prepare(FamilyMaxDistance(length, options.max_nearby), pool);
  if (shortcut) {
    const std::size_t mid = length / 2;
    // The marginal at the middle node, by the same recurrence the full
    // scan streams (bit-identical to the exhaustive path's value).
    NodeValueStream stream(theta.transition(), theta.initial());
    for (std::size_t t = 0; t < mid; ++t) stream.Advance();
    NodeScore mid_score =
        ScoreNode(eval, length, ContextFromStream(eval, stream, mid),
                  options.epsilon, options.max_nearby);
    if (IsInteriorTwoSided(mid_score.best.quilt, length) ||
        mid_score.best.quilt.quilt.empty()) {
      result.sigma_max = mid_score.best.score;
      result.worst_node = static_cast<int>(mid);
      result.active_quilt = mid_score.best.quilt;
      result.influence = mid_score.best.influence;
      result.used_stationary_shortcut = true;
      result.total_nodes = length;
      result.scored_nodes = 1;
      result.ladder_peak_bytes =
          sizeof(double) * (eval.StoredDoubles() + stream.StoredDoubles());
      return result;
    }
    // One-sided optimum at the middle: fall through to the full scan.
  }
  NodeValueStream stream(theta.transition(), theta.initial());
  return ScanAllNodes(eval, &stream, length, options, pool);
}

}  // namespace

Result<double> ChainQuiltInfluenceExact(const MarkovChain& theta,
                                        std::size_t length,
                                        const MarkovQuilt& quilt) {
  if (theta.num_states() > 64) {
    return Status::NotSupported("exact influence supports at most 64 states");
  }
  if (quilt.target < 0 || quilt.target >= static_cast<int>(length)) {
    return Status::InvalidArgument("quilt target outside chain");
  }
  for (int q : quilt.quilt) {
    if (q < 0 || q >= static_cast<int>(length)) {
      return Status::InvalidArgument("quilt node outside chain");
    }
    if (q == quilt.target) {
      return Status::InvalidArgument("quilt must not contain its target");
    }
  }
  ExactEvaluator eval(theta.transition(), /*free_initial=*/false);
  // One quilt only needs the tables at its own endpoint distances — not the
  // full sweep the analysis entry points prepare.
  const auto [a, b] = ChainQuiltOffsets(quilt);
  std::vector<std::size_t> distances;
  if (a > 0) distances.push_back(static_cast<std::size_t>(a));
  if (b > 0 && b != a) distances.push_back(static_cast<std::size_t>(b));
  eval.PrepareDistances(distances, nullptr);
  NodeValueStream stream(theta.transition(), theta.initial());
  for (int t = 0; t < quilt.target; ++t) stream.Advance();
  return EvaluateQuilt(
      eval,
      ContextFromStream(eval, stream, static_cast<std::size_t>(quilt.target)),
      quilt);
}

Result<ChainMqmResult> MqmExactAnalyze(const std::vector<MarkovChain>& thetas,
                                       std::size_t length,
                                       const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (thetas.empty()) return Status::InvalidArgument("empty chain class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  for (const MarkovChain& theta : thetas) {
    if (theta.num_states() > 64) {
      return Status::NotSupported("exact influence supports at most 64 states");
    }
    if (theta.num_states() != thetas.front().num_states()) {
      return Status::InvalidArgument("state-space mismatch in Theta");
    }
  }
  ThreadPool pool(options.num_threads);
  ThreadPool* pool_ptr = pool.num_threads() > 1 ? &pool : nullptr;
  ChainMqmResult worst;
  worst.sigma_max = -kInf;
  std::size_t total_nodes = 0, scored_nodes = 0, ladder_peak = 0;
  for (const MarkovChain& theta : thetas) {
    PF_ASSIGN_OR_RETURN(ChainMqmResult r,
                        AnalyzeOneTheta(theta, length, options, pool_ptr));
    total_nodes += r.total_nodes;
    scored_nodes += r.scored_nodes;
    ladder_peak = std::max(ladder_peak, r.ladder_peak_bytes);
    if (r.sigma_max > worst.sigma_max) worst = r;
  }
  worst.total_nodes = total_nodes;
  worst.scored_nodes = scored_nodes;
  worst.ladder_peak_bytes = ladder_peak;
  return worst;
}

Result<ChainMqmResult> MqmExactAnalyzeFreeInitial(
    const std::vector<Matrix>& transitions, std::size_t length,
    const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (transitions.empty()) return Status::InvalidArgument("empty class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  ThreadPool pool(options.num_threads);
  ThreadPool* pool_ptr = pool.num_threads() > 1 ? &pool : nullptr;
  ChainMqmResult worst;
  worst.sigma_max = -kInf;
  std::size_t total_nodes = 0, scored_nodes = 0, ladder_peak = 0;
  for (const Matrix& p : transitions) {
    if (p.rows() != p.cols() || p.rows() > 64 || !p.IsRowStochastic(1e-8)) {
      return Status::InvalidArgument(
          "transition matrices must be row-stochastic with <= 64 states");
    }
    ExactEvaluator eval(p, /*free_initial=*/true);
    eval.Prepare(FamilyMaxDistance(length, options.max_nearby), pool_ptr);
    NodeValueStream stream(p, pool_ptr);
    const ChainMqmResult r =
        ScanAllNodes(eval, &stream, length, options, pool_ptr);
    total_nodes += r.total_nodes;
    scored_nodes += r.scored_nodes;
    ladder_peak = std::max(ladder_peak, r.ladder_peak_bytes);
    if (r.sigma_max > worst.sigma_max) worst = r;
  }
  worst.total_nodes = total_nodes;
  worst.scored_nodes = scored_nodes;
  worst.ladder_peak_bytes = ladder_peak;
  return worst;
}

}  // namespace pf
