#include "pufferfish/mqm_exact.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "pufferfish/framework.h"

namespace pf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Row-parallel matrix product out = lhs * rhs: each output row depends only
// on one row of lhs, so rows fan out across the pool with bit-identical
// results for any thread count.
Matrix ParallelMultiply(const Matrix& lhs, const Matrix& rhs,
                        ThreadPool* pool) {
  Matrix out(lhs.rows(), rhs.cols(), 0.0);
  const auto row_product = [&](std::size_t r) {
    for (std::size_t inner = 0; inner < lhs.cols(); ++inner) {
      const double l = lhs(r, inner);
      if (l == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols(); ++c) {
        out(r, c) += l * rhs(inner, c);
      }
    }
  };
  // Fan out only when a row is worth a pool wake-up: small state spaces
  // (e.g. the binary Figure 4 chains) run the whole multiply inline.
  constexpr std::size_t kMinFlopsForPool = 1u << 15;
  if (pool != nullptr && lhs.rows() > 1 &&
      lhs.rows() * lhs.cols() * rhs.cols() >= kMinFlopsForPool) {
    pool->ParallelFor(lhs.rows(), row_product);
  } else {
    for (std::size_t r = 0; r < lhs.rows(); ++r) row_product(r);
  }
  return out;
}

// Evaluates the Eq. (5) terms for one transition matrix. Two-phase use:
// Prepare() builds every matrix power and per-distance maximization table
// (optionally in parallel), after which all queries are read-only and safe
// to issue from many threads at once. Supports two modes:
//  - explicit initial distribution (marginals precomputed for every node);
//  - free initial distribution (Appendix C.4): the marginal log-ratio terms
//    become maxima over rows of matrix powers.
class ExactEvaluator {
 public:
  // Explicit-q mode.
  ExactEvaluator(const Matrix& transition, const Vector& initial,
                 std::size_t length)
      : p_(transition),
        k_(transition.rows()),
        length_(length),
        free_initial_(false) {
    powers_.push_back(Matrix::Identity(k_));
    marginals_.reserve(length);
    Vector m = initial;
    marginals_.push_back(m);
    for (std::size_t t = 1; t < length; ++t) {
      m = p_.ApplyLeft(m);
      marginals_.push_back(m);
    }
  }

  // Free-initial (C.4) mode.
  ExactEvaluator(const Matrix& transition, std::size_t length)
      : p_(transition), k_(transition.rows()), length_(length),
        free_initial_(true) {
    powers_.push_back(Matrix::Identity(k_));
  }

  // Builds powers P^0..P^max_power and the left/right maximization tables
  // for distances 1..max_distance. Must be called before any query; after
  // it returns the evaluator is immutable and thread-safe.
  void Prepare(std::size_t max_distance, ThreadPool* pool) {
    std::vector<std::size_t> distances;
    distances.reserve(max_distance);
    for (std::size_t t = 1; t <= max_distance; ++t) distances.push_back(t);
    PrepareDistances(distances, pool);
  }

  // As Prepare, but builds maximization tables only for the listed
  // distances — the single-quilt entry point needs just two of them.
  void PrepareDistances(const std::vector<std::size_t>& distances,
                        ThreadPool* pool) {
    std::size_t max_distance = 0;
    for (std::size_t t : distances) max_distance = std::max(max_distance, t);
    // Free-initial mode reads P^i for every node index in Term1/feasibility.
    const std::size_t max_power =
        free_initial_ ? std::max(length_ - 1, max_distance) : max_distance;
    // The power chain is sequential in n; each multiply is row-parallel.
    while (powers_.size() <= max_power) {
      powers_.push_back(ParallelMultiply(powers_.back(), p_, pool));
    }
    // Per-distance tables are independent once the powers exist.
    left_tables_.assign(max_distance + 1, Matrix());
    right_tables_.assign(max_distance + 1, Matrix());
    const auto build = [&](std::size_t idx) {
      const std::size_t t = distances[idx];
      if (t == 0) return;
      left_tables_[t] = BuildLeftTable(t);
      right_tables_[t] = BuildRightTable(t);
    };
    if (pool != nullptr) {
      pool->ParallelFor(distances.size(), build);
    } else {
      for (std::size_t idx = 0; idx < distances.size(); ++idx) build(idx);
    }
    max_distance_ = max_distance;
  }

  std::size_t max_distance() const { return max_distance_; }

  // Per-node state reused across a node's whole quilt family: the Term1
  // marginal table and the feasibility mask. Building it once per node (not
  // per quilt) keeps the family scan at O(k^2) per quilt with no shared
  // mutable cache, so concurrent node scans stay lock-free.
  struct NodeContext {
    std::size_t node = 0;
    Matrix term1;
    std::vector<char> feasible;
  };

  NodeContext MakeNodeContext(std::size_t i) const {
    return NodeContext{i, Term1(i), FeasibleStates(i)};
  }

  // Max-influence of the two-sided quilt {X_{i-a}, X_{i+b}} at node i.
  double TwoSided(const NodeContext& ctx, int a, int b) const {
    return MaxOverPairs(ctx, &right_tables_[static_cast<std::size_t>(b)],
                        &left_tables_[static_cast<std::size_t>(a)]);
  }

  // Max-influence of {X_{i-a}} (left-only quilt).
  double LeftOnly(const NodeContext& ctx, int a) const {
    return MaxOverPairs(ctx, nullptr,
                        &left_tables_[static_cast<std::size_t>(a)]);
  }

  // Max-influence of {X_{i+b}} (right-only quilt; no marginal term).
  double RightOnly(const NodeContext& ctx, int b) const {
    const Matrix& right = right_tables_[static_cast<std::size_t>(b)];
    double best = 0.0;
    for (std::size_t x = 0; x < k_; ++x) {
      if (!ctx.feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !ctx.feasible[xp]) continue;
        best = std::max(best, right(x, xp));
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

 private:
  const Matrix& Pow(std::size_t n) const { return powers_[n]; }

  // States x with P(X_i = x) > 0 (under any allowed initial distribution in
  // free mode).
  std::vector<char> FeasibleStates(std::size_t i) const {
    std::vector<char> f(k_, 0);
    if (free_initial_) {
      if (i == 0) {
        std::fill(f.begin(), f.end(), 1);
        return f;
      }
      const Matrix& pi = Pow(i);
      for (std::size_t x = 0; x < k_; ++x) {
        for (std::size_t z = 0; z < k_; ++z) {
          if (pi(z, x) > 0.0) {
            f[x] = 1;
            break;
          }
        }
      }
      return f;
    }
    for (std::size_t x = 0; x < k_; ++x) f[x] = marginals_[i][x] > 0.0 ? 1 : 0;
    return f;
  }

  // right(x, x') = max over y with P^b(x,y) > 0 of log P^b(x,y)/P^b(x',y);
  // +inf when the support of row x is not contained in the support of x'.
  Matrix BuildRightTable(std::size_t b) const {
    const Matrix& pb = Pow(b);
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t y = 0; y < k_; ++y) {
          const double num = pb(x, y);
          if (num <= 0.0) continue;
          const double den = pb(xp, y);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return table;
  }

  // left(x, x') = max over z in X with P^a(z,x) > 0 of
  // log P^a(z,x)/P^a(z,x'); +inf on support mismatch; -inf if no z reaches
  // x (x infeasible, filtered by the caller's feasibility mask). Following
  // Eq. (5) literally, the max ranges over *all* states z regardless of
  // whether P(X_{i-a} = z) > 0 — a conservative (privacy-safe) bound that
  // matches the paper's reported numbers.
  Matrix BuildLeftTable(std::size_t a) const {
    const Matrix& pa = Pow(a);
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t z = 0; z < k_; ++z) {
          const double num = pa(z, x);
          if (num <= 0.0) continue;
          const double den = pa(z, xp);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return table;
  }

  // Marginal log-ratio term t1(x, x') = log P(X_i=x') / P(X_i=x); in free
  // mode, sup over initial distributions = max over rows z of
  // log P^i(z,x') / P^i(z,x) (Appendix C.4), +inf on support mismatch.
  // Pure in the prepared powers; cached per node in NodeContext.
  Matrix Term1(std::size_t i) const {
    Matrix table(k_, k_, 0.0);
    if (!free_initial_) {
      const Vector& m = marginals_[i];
      for (std::size_t x = 0; x < k_; ++x) {
        for (std::size_t xp = 0; xp < k_; ++xp) {
          if (x == xp) continue;
          if (m[x] > 0.0 && m[xp] > 0.0) {
            table(x, xp) = std::log(m[xp] / m[x]);
          } else {
            table(x, xp) = -kInf;  // Pair filtered by feasibility anyway.
          }
        }
      }
    } else {
      const Matrix& pi = Pow(i);
      for (std::size_t x = 0; x < k_; ++x) {
        for (std::size_t xp = 0; xp < k_; ++xp) {
          if (x == xp) continue;
          double best = -kInf;
          for (std::size_t z = 0; z < k_; ++z) {
            const double num = pi(z, xp);
            const double den = pi(z, x);
            if (num <= 0.0) continue;
            if (den <= 0.0) {
              best = kInf;
              break;
            }
            best = std::max(best, std::log(num / den));
          }
          table(x, xp) = best;
        }
      }
    }
    return table;
  }

  // max over feasible ordered pairs (x, x') of t1 + right + left (either
  // table may be null when the quilt lacks that side).
  double MaxOverPairs(const NodeContext& ctx, const Matrix* right,
                      const Matrix* left) const {
    const Matrix& t1 = ctx.term1;
    const std::vector<char>& feasible = ctx.feasible;
    double best = 0.0;
    for (std::size_t x = 0; x < k_; ++x) {
      if (!feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !feasible[xp]) continue;
        double v = t1(x, xp);
        if (right != nullptr) v += (*right)(x, xp);
        if (left != nullptr) v += (*left)(x, xp);
        if (std::isnan(v)) continue;  // -inf + inf: infeasible combination.
        best = std::max(best, v);
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

  const Matrix& p_;
  const std::size_t k_;
  const std::size_t length_;
  const bool free_initial_;
  std::size_t max_distance_ = 0;
  std::vector<Matrix> powers_;
  std::vector<Vector> marginals_;
  // Indexed by distance; slot 0 unused.
  std::vector<Matrix> left_tables_;
  std::vector<Matrix> right_tables_;
};

// Largest endpoint distance any quilt in the Lemma 4.6 family (capped at
// max_nearby, over a chain of `length` nodes) can reach: two-sided quilts
// have a + b - 1 <= max_nearby with a, b >= 1, and one-sided quilts whose
// nearby set fits the cap also keep their endpoint within max_nearby of
// the target.
std::size_t FamilyMaxDistance(std::size_t length, std::size_t max_nearby) {
  return std::min(length > 0 ? length - 1 : 0, max_nearby);
}

// Computes the influence of one chain quilt with a prepared evaluator and
// the quilt's node context.
double EvaluateQuilt(const ExactEvaluator& eval,
                     const ExactEvaluator::NodeContext& ctx,
                     const MarkovQuilt& quilt) {
  if (quilt.quilt.empty()) return 0.0;
  const auto [a, b] = ChainQuiltOffsets(quilt);
  if (a > 0 && b > 0) return eval.TwoSided(ctx, a, b);
  if (a > 0) return eval.LeftOnly(ctx, a);
  return eval.RightOnly(ctx, b);
}

struct NodeScore {
  QuiltScore best;
};

// sigma_i = min over the Lemma 4.6 family (capped at max_nearby) of the
// quilt score for node i. Read-only on the prepared evaluator.
NodeScore ScoreNode(const ExactEvaluator& eval, std::size_t length, int node,
                    double epsilon, std::size_t max_nearby) {
  NodeScore out;
  out.best.score = kInf;
  const std::vector<MarkovQuilt> family =
      ChainQuiltFamily(length, node, max_nearby);
  const ExactEvaluator::NodeContext ctx =
      eval.MakeNodeContext(static_cast<std::size_t>(node));
  for (const MarkovQuilt& quilt : family) {
    const double e = EvaluateQuilt(eval, ctx, quilt);
    const double score = QuiltScoreFromInfluence(quilt.NearbyCount(), epsilon, e);
    if (score < out.best.score) {
      out.best.quilt = quilt;
      out.best.influence = e;
      out.best.score = score;
    }
  }
  return out;
}

// True iff the quilt is two-sided with both endpoints strictly inside the
// chain (the precondition for the Lemma C.4 middle-node shortcut).
bool IsInteriorTwoSided(const MarkovQuilt& quilt, std::size_t length) {
  if (quilt.quilt.size() != 2) return false;
  return quilt.quilt.front() >= 0 &&
         quilt.quilt.back() <= static_cast<int>(length) - 1;
}

// Scans every node (in parallel when a pool is supplied) and keeps the
// worst sigma_i; the reduction runs sequentially over the per-node slots so
// ties always resolve to the lowest node index.
ChainMqmResult ScanAllNodes(const ExactEvaluator& eval, std::size_t length,
                            const ChainMqmOptions& options, ThreadPool* pool) {
  std::vector<NodeScore> scores(length);
  const auto score_one = [&](std::size_t i) {
    scores[i] = ScoreNode(eval, length, static_cast<int>(i), options.epsilon,
                          options.max_nearby);
  };
  if (pool != nullptr) {
    pool->ParallelFor(length, score_one);
  } else {
    for (std::size_t i = 0; i < length; ++i) score_one(i);
  }
  ChainMqmResult result;
  result.sigma_max = -kInf;
  for (std::size_t i = 0; i < length; ++i) {
    if (scores[i].best.score > result.sigma_max) {
      result.sigma_max = scores[i].best.score;
      result.worst_node = static_cast<int>(i);
      result.active_quilt = scores[i].best.quilt;
      result.influence = scores[i].best.influence;
    }
  }
  return result;
}

Result<ChainMqmResult> AnalyzeOneTheta(const MarkovChain& theta,
                                       std::size_t length,
                                       const ChainMqmOptions& options,
                                       ThreadPool* pool) {
  ChainMqmResult result;
  // Stationary shortcut: if q == pi (and pi > 0), the max-influence of every
  // interior quilt is independent of i and the middle node attains
  // sigma_max (Lemma C.4's argument applies verbatim to exact influences:
  // each Eq. (5) term is nonnegative after adding the marginal term).
  bool shortcut = false;
  if (options.allow_stationary_shortcut && length >= 3) {
    Result<Vector> pi = theta.StationaryDistribution();
    if (pi.ok() && DistanceL1(pi.value(), theta.initial()) < 1e-9 &&
        *std::min_element(pi.value().begin(), pi.value().end()) > 0.0) {
      shortcut = true;
    }
  }
  ExactEvaluator eval(theta.transition(), theta.initial(), length);
  eval.Prepare(FamilyMaxDistance(length, options.max_nearby), pool);
  if (shortcut) {
    const int mid = static_cast<int>(length / 2);
    NodeScore mid_score =
        ScoreNode(eval, length, mid, options.epsilon, options.max_nearby);
    if (IsInteriorTwoSided(mid_score.best.quilt, length) ||
        mid_score.best.quilt.quilt.empty()) {
      result.sigma_max = mid_score.best.score;
      result.worst_node = mid;
      result.active_quilt = mid_score.best.quilt;
      result.influence = mid_score.best.influence;
      result.used_stationary_shortcut = true;
      return result;
    }
    // One-sided optimum at the middle: fall through to the full scan.
  }
  return ScanAllNodes(eval, length, options, pool);
}

}  // namespace

Result<double> ChainQuiltInfluenceExact(const MarkovChain& theta,
                                        std::size_t length,
                                        const MarkovQuilt& quilt) {
  if (theta.num_states() > 64) {
    return Status::NotSupported("exact influence supports at most 64 states");
  }
  if (quilt.target < 0 || quilt.target >= static_cast<int>(length)) {
    return Status::InvalidArgument("quilt target outside chain");
  }
  for (int q : quilt.quilt) {
    if (q < 0 || q >= static_cast<int>(length)) {
      return Status::InvalidArgument("quilt node outside chain");
    }
    if (q == quilt.target) {
      return Status::InvalidArgument("quilt must not contain its target");
    }
  }
  ExactEvaluator eval(theta.transition(), theta.initial(), length);
  // One quilt only needs the tables at its own endpoint distances — not the
  // full sweep the analysis entry points prepare.
  const auto [a, b] = ChainQuiltOffsets(quilt);
  std::vector<std::size_t> distances;
  if (a > 0) distances.push_back(static_cast<std::size_t>(a));
  if (b > 0 && b != a) distances.push_back(static_cast<std::size_t>(b));
  eval.PrepareDistances(distances, nullptr);
  return EvaluateQuilt(
      eval, eval.MakeNodeContext(static_cast<std::size_t>(quilt.target)),
      quilt);
}

Result<ChainMqmResult> MqmExactAnalyze(const std::vector<MarkovChain>& thetas,
                                       std::size_t length,
                                       const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (thetas.empty()) return Status::InvalidArgument("empty chain class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  for (const MarkovChain& theta : thetas) {
    if (theta.num_states() > 64) {
      return Status::NotSupported("exact influence supports at most 64 states");
    }
    if (theta.num_states() != thetas.front().num_states()) {
      return Status::InvalidArgument("state-space mismatch in Theta");
    }
  }
  ThreadPool pool(options.num_threads);
  ThreadPool* pool_ptr = options.num_threads > 1 ? &pool : nullptr;
  ChainMqmResult worst;
  worst.sigma_max = -kInf;
  for (const MarkovChain& theta : thetas) {
    PF_ASSIGN_OR_RETURN(ChainMqmResult r,
                        AnalyzeOneTheta(theta, length, options, pool_ptr));
    if (r.sigma_max > worst.sigma_max) worst = r;
  }
  return worst;
}

Result<ChainMqmResult> MqmExactAnalyzeFreeInitial(
    const std::vector<Matrix>& transitions, std::size_t length,
    const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (transitions.empty()) return Status::InvalidArgument("empty class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  ThreadPool pool(options.num_threads);
  ThreadPool* pool_ptr = options.num_threads > 1 ? &pool : nullptr;
  ChainMqmResult worst;
  worst.sigma_max = -kInf;
  for (const Matrix& p : transitions) {
    if (p.rows() != p.cols() || p.rows() > 64 || !p.IsRowStochastic(1e-8)) {
      return Status::InvalidArgument(
          "transition matrices must be row-stochastic with <= 64 states");
    }
    ExactEvaluator eval(p, length);
    eval.Prepare(FamilyMaxDistance(length, options.max_nearby), pool_ptr);
    const ChainMqmResult r = ScanAllNodes(eval, length, options, pool_ptr);
    if (r.sigma_max > worst.sigma_max) worst = r;
  }
  return worst;
}

}  // namespace pf
