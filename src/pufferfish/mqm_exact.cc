#include "pufferfish/mqm_exact.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "common/deadline.h"
#include "common/fingerprint.h"
#include "common/parallel.h"
#include "pufferfish/framework.h"

namespace pf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Evaluates the Eq. (5) terms for one transition matrix. Two-phase use:
// PrepareDistances() builds the matrix powers P^0..P^max_distance and the
// per-distance maximization tables (optionally in parallel), after which
// all queries are read-only and safe to issue from many threads at once.
// Supports two modes:
//  - explicit initial distribution: the caller streams the marginal vector
//    of each node into ContextFromMarginal;
//  - free initial distribution (Appendix C.4): the caller streams P^i into
//    ContextFromPower, and the marginal log-ratio terms become maxima over
//    matrix-power rows.
//
// Unlike the pre-optimization evaluator, nothing here scales with the
// chain length T: the node-dependent inputs (marginals / powers) are
// streamed in by the scan, so resident memory is O(max_distance * k^2).
//
// Preparation is EXTEND-ONLY: asking for a larger max distance builds just
// the missing powers (the same sequential recurrence) and the missing
// tables, reusing every existing entry verbatim — which is what makes a
// retained evaluator bit-identical to one built cold at the longer length.
class ExactEvaluator {
 public:
  ExactEvaluator(const Matrix& transition, bool free_initial)
      : p_(transition), k_(transition.rows()), free_initial_(free_initial) {
    powers_.push_back(Matrix::Identity(k_));
  }

  // Builds powers P^0..P^max_distance and the left/right maximization
  // tables for distances 1..max_distance. Must be called before any query;
  // between calls the evaluator is immutable and thread-safe. May be called
  // again with a larger distance to extend. On DeadlineExceeded the
  // evaluator stays valid (extend-only state: completed powers/tables are
  // kept, max_distance_ is not advanced) — a retry simply resumes.
  Status Prepare(std::size_t max_distance, ThreadPool* pool) {
    // Steady-state fast path: Prepare always builds a contiguous prefix of
    // distances, so once 1..max_distance exist the request is a no-op — in
    // particular it builds no distance/todo vectors, which keeps a
    // delta-append ExtendTo allocation-free.
    if (max_distance <= contiguous_prepared_) return Status::OK();
    std::vector<std::size_t> distances;
    distances.reserve(max_distance);
    for (std::size_t t = 1; t <= max_distance; ++t) distances.push_back(t);
    PF_RETURN_NOT_OK(PrepareDistances(distances, pool));
    contiguous_prepared_ = max_distance;
    return Status::OK();
  }

  // As Prepare, but builds maximization tables only for the listed
  // distances — the single-quilt entry point needs just two of them.
  Status PrepareDistances(const std::vector<std::size_t>& distances,
                          ThreadPool* pool) {
    std::size_t max_distance = max_distance_;
    for (std::size_t t : distances) max_distance = std::max(max_distance, t);
    // The power chain is sequential in n; each multiply is row-parallel.
    // This is the O(T k^3) loop a cold long-chain analysis spends its time
    // in, so it carries a cooperative cancellation checkpoint per power.
    while (powers_.size() <= max_distance) {
      PF_RETURN_NOT_OK(CheckDeadline("power ladder"));
      powers_.push_back(ParallelMultiply(powers_.back(), p_, pool));
      ++growth_events_;
    }
    if (left_tables_.size() <= max_distance) {
      left_tables_.resize(max_distance + 1);
      right_tables_.resize(max_distance + 1);
    }
    // Per-distance tables are independent once the powers exist; only the
    // missing ones are built, so extension reuses existing tables.
    std::vector<std::size_t> todo;
    for (std::size_t t : distances) {
      if (t != 0 && left_tables_[t].rows() == 0) todo.push_back(t);
    }
    const auto build = [&](std::size_t idx) {
      const std::size_t t = todo[idx];
      left_tables_[t] = BuildLeftTable(t);
      right_tables_[t] = BuildRightTable(t);
    };
    if (pool != nullptr) {
      pool->ParallelFor(todo.size(), build);
    } else {
      for (std::size_t idx = 0; idx < todo.size(); ++idx) build(idx);
    }
    growth_events_ += 2 * todo.size();
    max_distance_ = max_distance;
    return Status::OK();
  }

  std::size_t max_distance() const { return max_distance_; }
  std::size_t num_states() const { return k_; }
  bool free_initial() const { return free_initial_; }
  const Matrix& transition() const { return p_; }
  // Monotone count of power/table matrices materialized so far; callers
  // diff it around a pass to attribute growth (MemoryStats::mallocs).
  std::size_t growth_events() const { return growth_events_; }

  // Doubles resident in the prepared powers and tables (ladder accounting).
  std::size_t StoredDoubles() const {
    std::size_t n = 0;
    for (const Matrix& m : powers_) n += m.rows() * m.cols();
    for (const Matrix& m : left_tables_) n += m.rows() * m.cols();
    for (const Matrix& m : right_tables_) n += m.rows() * m.cols();
    return n;
  }

  // Per-node state reused across a node's whole quilt family: the Term1
  // marginal table and the feasibility mask. Building it once per scored
  // node (not per quilt) keeps the family scan at O(k^2) per quilt with no
  // shared mutable cache, so concurrent scans stay lock-free.
  struct NodeContext {
    std::size_t node = 0;
    Matrix term1;
    std::vector<char> feasible;
  };

  // Context for an explicit-initial node with marginal vector m = P(X_i),
  // written into caller-retained storage (capacity reused: a warm ctx is
  // rebuilt with zero allocations).
  void ContextFromMarginalInto(std::size_t i, const Vector& m,
                               NodeContext* ctx) const {
    ctx->node = i;
    ctx->term1.ResizeUninitialized(k_, k_);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) {
          ctx->term1(x, xp) = 0.0;
        } else if (m[x] > 0.0 && m[xp] > 0.0) {
          ctx->term1(x, xp) = std::log(m[xp] / m[x]);
        } else {
          ctx->term1(x, xp) = -kInf;  // Pair filtered by feasibility anyway.
        }
      }
    }
    ctx->feasible.assign(k_, 0);
    for (std::size_t x = 0; x < k_; ++x) ctx->feasible[x] = m[x] > 0.0 ? 1 : 0;
  }

  NodeContext ContextFromMarginal(std::size_t i, const Vector& m) const {
    NodeContext ctx;
    ContextFromMarginalInto(i, m, &ctx);
    return ctx;
  }

  // Context for a free-initial node with power matrix pi = P^i: the sup
  // over initial distributions of the marginal log-ratio term equals the
  // max over rows z of log P^i(z, x') / P^i(z, x) (Appendix C.4), +inf on
  // support mismatch; a state is feasible iff some row reaches it.
  void ContextFromPowerInto(std::size_t i, const Matrix& pi,
                            NodeContext* ctx) const {
    ctx->node = i;
    ctx->term1.ResizeUninitialized(k_, k_);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) {
          ctx->term1(x, xp) = 0.0;
          continue;
        }
        double best = -kInf;
        for (std::size_t z = 0; z < k_; ++z) {
          const double num = pi(z, xp);
          const double den = pi(z, x);
          if (num <= 0.0) continue;
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        ctx->term1(x, xp) = best;
      }
    }
    ctx->feasible.assign(k_, 0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t z = 0; z < k_; ++z) {
        if (pi(z, x) > 0.0) {
          ctx->feasible[x] = 1;
          break;
        }
      }
    }
  }

  NodeContext ContextFromPower(std::size_t i, const Matrix& pi) const {
    NodeContext ctx;
    ContextFromPowerInto(i, pi, &ctx);
    return ctx;
  }

  // Max-influence of the two-sided quilt {X_{i-a}, X_{i+b}} at node i.
  double TwoSided(const NodeContext& ctx, int a, int b) const {
    return MaxOverPairs(ctx, &right_tables_[static_cast<std::size_t>(b)],
                        &left_tables_[static_cast<std::size_t>(a)]);
  }

  // Max-influence of {X_{i-a}} (left-only quilt).
  double LeftOnly(const NodeContext& ctx, int a) const {
    return MaxOverPairs(ctx, nullptr,
                        &left_tables_[static_cast<std::size_t>(a)]);
  }

  // Max-influence of {X_{i+b}} (right-only quilt; no marginal term).
  double RightOnly(const NodeContext& ctx, int b) const {
    const Matrix& right = right_tables_[static_cast<std::size_t>(b)];
    double best = 0.0;
    for (std::size_t x = 0; x < k_; ++x) {
      if (!ctx.feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !ctx.feasible[xp]) continue;
        best = std::max(best, right(x, xp));
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

 private:
  const Matrix& Pow(std::size_t n) const { return powers_[n]; }

  // right(x, x') = max over y with P^b(x,y) > 0 of log P^b(x,y)/P^b(x',y);
  // +inf when the support of row x is not contained in the support of x'.
  Matrix BuildRightTable(std::size_t b) const {
    const Matrix& pb = Pow(b);
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t y = 0; y < k_; ++y) {
          const double num = pb(x, y);
          if (num <= 0.0) continue;
          const double den = pb(xp, y);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return table;
  }

  // left(x, x') = max over z in X with P^a(z,x) > 0 of
  // log P^a(z,x)/P^a(z,x'); +inf on support mismatch; -inf if no z reaches
  // x (x infeasible, filtered by the caller's feasibility mask). Following
  // Eq. (5) literally, the max ranges over *all* states z regardless of
  // whether P(X_{i-a} = z) > 0 — a conservative (privacy-safe) bound that
  // matches the paper's reported numbers.
  Matrix BuildLeftTable(std::size_t a) const {
    const Matrix& pa = Pow(a);
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t z = 0; z < k_; ++z) {
          const double num = pa(z, x);
          if (num <= 0.0) continue;
          const double den = pa(z, xp);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return table;
  }

  // max over feasible ordered pairs (x, x') of t1 + right + left (either
  // table may be null when the quilt lacks that side).
  double MaxOverPairs(const NodeContext& ctx, const Matrix* right,
                      const Matrix* left) const {
    const Matrix& t1 = ctx.term1;
    const std::vector<char>& feasible = ctx.feasible;
    double best = 0.0;
    for (std::size_t x = 0; x < k_; ++x) {
      if (!feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !feasible[xp]) continue;
        double v = t1(x, xp);
        if (right != nullptr) v += (*right)(x, xp);
        if (left != nullptr) v += (*left)(x, xp);
        if (std::isnan(v)) continue;  // -inf + inf: infeasible combination.
        best = std::max(best, v);
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

  const Matrix& p_;
  const std::size_t k_;
  const bool free_initial_;
  std::size_t max_distance_ = 0;
  // Largest d such that Prepare built the full prefix 1..d (the fast-path
  // guard); PrepareDistances alone leaves gaps and does not advance it.
  std::size_t contiguous_prepared_ = 0;
  std::size_t growth_events_ = 0;
  std::vector<Matrix> powers_;
  // Indexed by distance; slot 0 unused.
  std::vector<Matrix> left_tables_;
  std::vector<Matrix> right_tables_;
};

struct FreeInitialTag {};

// Streams the node-dependent input of the scan — the marginal vector
// P(X_i) in explicit mode, the power P^i in free-initial mode — one node
// at a time, with bitwise cycle detection: once one step leaves the value
// unchanged (period 1, the generic ergodic case) or returns the value of
// two steps ago (period 2, near-periodic chains whose values ulp-oscillate
// around the limit), every later value is determined by induction on the
// deterministic recurrence and the per-step work (an O(k^2) ApplyLeft or
// an O(k^3) multiply) stops. The recurrences are the exact ones the
// pre-optimization path used to materialize its O(T)-sized tables, so
// streamed values are bit-identical to the stored ones — and a cursor
// retained across ExtendTo calls produces the same value sequence as a
// fresh cursor advanced the same total number of steps.
class NodeValueStream {
 public:
  // Explicit mode: marginal recurrence m_0 = initial, m_{t+1} = m_t P.
  NodeValueStream(const Matrix& transition, const Vector& initial)
      : p_(transition), marginal_(initial), free_initial_(false) {}

  // Free-initial mode: power recurrence P^0 = I, P^{t+1} = P^t P.
  NodeValueStream(const Matrix& transition, FreeInitialTag)
      : p_(transition),
        power_(Matrix::Identity(transition.rows())),
        free_initial_(true) {}

  bool free_initial() const { return free_initial_; }
  // 0 while the value is still changing; 1 once fixed; 2 on a two-cycle.
  std::size_t period() const { return period_; }
  const Vector& marginal() const { return marginal_; }
  const Matrix& power() const { return power_; }

  // Doubles resident in the streaming cursor (current + previous value +
  // the rotation scratch). Deterministic in the total advance count, so
  // extended and cold cursors at the same position report the same figure.
  std::size_t StoredDoubles() const {
    return free_initial_
               ? power_.rows() * power_.cols() +
                     prev_power_.rows() * prev_power_.cols() +
                     scratch_power_.rows() * scratch_power_.cols()
               : marginal_.size() + prev_marginal_.size() +
                     scratch_marginal_.size();
  }

  // Monotone count of buffer-growth events (MemoryStats::mallocs input):
  // after the first two advances every buffer exists and rotation makes
  // further advances allocation-free.
  std::size_t growth_events() const { return growth_events_; }

  // Steps to the next node's value. The pool (used only by the free-initial
  // matrix multiply, which is thread-count invariant) is passed per call so
  // a retained cursor never outlives the pool it was created under.
  //
  // The next value is computed into a retained scratch buffer, then the
  // three buffers rotate (prev <- current <- next, retired prev becomes the
  // scratch): after two advances the cursor holds all the storage it will
  // ever need and stepping allocates nothing, in any period state.
  void Advance(ThreadPool* pool = nullptr) {
    if (period_ == 1) return;
    if (period_ == 2) {
      if (free_initial_) {
        std::swap(power_, prev_power_);
      } else {
        std::swap(marginal_, prev_marginal_);
      }
      return;
    }
    if (free_initial_) {
      if (scratch_power_.rows() == 0) ++growth_events_;
      ParallelMultiplyInto(power_, p_, pool, &scratch_power_);
      if (scratch_power_ == power_) {
        period_ = 1;
        return;
      }
      if (scratch_power_ == prev_power_) period_ = 2;
      std::swap(prev_power_, power_);
      std::swap(power_, scratch_power_);
    } else {
      if (scratch_marginal_.empty()) ++growth_events_;
      p_.ApplyLeftInto(marginal_, &scratch_marginal_);
      if (scratch_marginal_ == marginal_) {
        period_ = 1;
        return;
      }
      if (scratch_marginal_ == prev_marginal_) period_ = 2;
      std::swap(prev_marginal_, marginal_);
      std::swap(marginal_, scratch_marginal_);
    }
  }

 private:
  const Matrix& p_;
  Vector marginal_, prev_marginal_, scratch_marginal_;
  Matrix power_, prev_power_, scratch_power_;
  bool free_initial_;
  std::size_t period_ = 0;
  std::size_t growth_events_ = 0;
};

// Largest endpoint distance any quilt in the Lemma 4.6 family (capped at
// max_nearby, over a chain of `length` nodes) can reach: two-sided quilts
// have a + b - 1 <= max_nearby with a, b >= 1, and one-sided quilts whose
// nearby set fits the cap also keep their endpoint within max_nearby of
// the target.
std::size_t FamilyMaxDistance(std::size_t length, std::size_t max_nearby) {
  return std::min(length > 0 ? length - 1 : 0, max_nearby);
}

// Computes the influence of one chain quilt with a prepared evaluator and
// the quilt's node context.
double EvaluateQuilt(const ExactEvaluator& eval,
                     const ExactEvaluator::NodeContext& ctx,
                     const MarkovQuilt& quilt) {
  if (quilt.quilt.empty()) return 0.0;
  const auto [a, b] = ChainQuiltOffsets(quilt);
  if (a > 0 && b > 0) return eval.TwoSided(ctx, a, b);
  if (a > 0) return eval.LeftOnly(ctx, a);
  return eval.RightOnly(ctx, b);
}

// A scored quilt candidate in offset form. (a, b) with a, b > 0 is the
// two-sided quilt {X_{i-a}, X_{i+b}}; b == 0 the left-only {X_{i-a}};
// a == 0 the right-only {X_{i+b}}; (0, 0) the trivial quilt. Offsets (not
// materialized quilts) are what the resumable analysis stores: they are
// valid at any node of a dedup class and any chain length consistent with
// the class key, so extension re-materializes instead of re-scoring.
struct QuiltCand {
  double score = kInf;
  double influence = 0.0;
  int a = 0;
  int b = 0;
};

// A node's scored quilt family, decomposed for resumability: the best
// NON-trivial candidate only. The trivial quilt's score (length / epsilon)
// is the one quilt score that depends on the chain length directly, so it
// is folded in at reduce time (NodeWinner) — this is what lets an
// interior dedup class keep its score verbatim when the chain grows.
struct NodeScore {
  bool has_nontrivial = false;
  QuiltCand nontrivial;
};

// The node's winning candidate at a given chain length: the stored best
// non-trivial quilt versus the trivial quilt, with the exhaustive scan's
// tie rule (the trivial quilt is considered last, with strict <).
QuiltCand NodeWinner(const NodeScore& s, std::size_t length, double epsilon) {
  const double trivial_score = QuiltScoreFromInfluence(length, epsilon, 0.0);
  if (s.has_nontrivial && !(trivial_score < s.nontrivial.score)) {
    return s.nontrivial;
  }
  QuiltCand trivial;
  trivial.score = trivial_score;
  trivial.influence = 0.0;
  return trivial;
}

// Materializes a candidate's quilt at a concrete node and length into
// caller-retained storage (vector capacity reused — the reduce hot path
// re-materializes every pass without allocating). Field-for-field what
// TrivialQuilt / ChainQuilt produce; candidates come from in-range family
// loops, so the ChainQuilt validation is vacuous here.
void MaterializeQuiltInto(const QuiltCand& cand, int node, std::size_t length,
                          MarkovQuilt* out) {
  out->target = node;
  out->quilt.clear();
  out->nearby.clear();
  out->remote.clear();
  if (cand.a == 0 && cand.b == 0) {
    out->nearby_count = length;  // TrivialQuilt: X_N = everything.
    return;
  }
  if (cand.a > 0) out->quilt.push_back(node - cand.a);
  if (cand.b > 0) out->quilt.push_back(node + cand.b);
  const int near_lo = cand.a > 0 ? node - cand.a + 1 : 0;
  const int near_hi =
      cand.b > 0 ? node + cand.b - 1 : static_cast<int>(length) - 1;
  out->nearby_count = static_cast<std::size_t>(near_hi - near_lo + 1);
}

MarkovQuilt MaterializeQuilt(const QuiltCand& cand, int node,
                             std::size_t length) {
  MarkovQuilt out;
  MaterializeQuiltInto(cand, node, length, &out);
  return out;
}

// sigma_i = min over the Lemma 4.6 family (capped at max_nearby) of the
// quilt score for node i, given the node's prepared context. Read-only on
// the evaluator.
//
// Enumerates the family inline, in exactly ChainQuiltFamily's order and
// with its skip rules (two-sided a asc then b asc, left-only, right-only),
// tracking only the winning candidate. The trivial quilt — always part of
// the family per Theorem 4.3 — is deliberately NOT folded in here: its
// score depends on the length, so NodeWinner adds it at reduce time.
//
// The output depends on i and length only through the class key
// (node value, dl = min(i, ell), dr = min(length-1-i, ell)): every loop
// bound below reduces to dl/dr arithmetic, which is the invariant the
// dedup classes and the append path both rely on.
NodeScore ScoreNode(const ExactEvaluator& eval, std::size_t length,
                    const ExactEvaluator::NodeContext& ctx, double epsilon,
                    std::size_t max_nearby) {
  const int node = static_cast<int>(ctx.node);
  const int n = static_cast<int>(length);
  NodeScore out;
  const auto consider = [&](int a, int b, std::size_t nearby_count,
                            double influence) {
    const double score =
        QuiltScoreFromInfluence(nearby_count, epsilon, influence);
    if (score < out.nontrivial.score) {
      out.has_nontrivial = true;
      out.nontrivial.a = a;
      out.nontrivial.b = b;
      out.nontrivial.influence = influence;
      out.nontrivial.score = score;
    }
  };
  // Two-sided quilts {X_{i-a}, X_{i+b}}: nearby count a + b - 1.
  for (int a = 1; a <= node; ++a) {
    if (static_cast<std::size_t>(a) > max_nearby) break;
    for (int b = 1; node + b < n; ++b) {
      if (static_cast<std::size_t>(a + b - 1) > max_nearby) break;
      consider(a, b, static_cast<std::size_t>(a + b - 1),
               eval.TwoSided(ctx, a, b));
    }
  }
  // Left-only quilts {X_{i-a}}: nearby count (n-1) - (i-a), strictly
  // increasing in a, so the first overflow ends the loop (same quilt set
  // and order as ChainQuiltFamily's skip).
  for (int a = 1; a <= node; ++a) {
    const std::size_t near_count = static_cast<std::size_t>(n - 1 - (node - a));
    if (near_count > max_nearby) break;
    consider(a, 0, near_count, eval.LeftOnly(ctx, a));
  }
  // Right-only quilts {X_{i+b}}: nearby count i + b.
  for (int b = 1; node + b < n; ++b) {
    const std::size_t near_count = static_cast<std::size_t>(node + b);
    if (near_count > max_nearby) break;
    consider(0, b, near_count, eval.RightOnly(ctx, b));
  }
  return out;
}

// The node context for node i given the current stream value.
ExactEvaluator::NodeContext ContextFromStream(const ExactEvaluator& eval,
                                              const NodeValueStream& stream,
                                              std::size_t i) {
  return stream.free_initial() ? eval.ContextFromPower(i, stream.power())
                               : eval.ContextFromMarginal(i, stream.marginal());
}

// Scores n nodes as one block, fanning out over the pool when present.
// make_ctx(j) supplies the j-th node's context (by reference or value);
// deterministic for any thread count (per-index slots, no shared state).
template <typename MakeCtx>
std::vector<NodeScore> ScoreBlock(const ExactEvaluator& eval,
                                  std::size_t length, std::size_t n,
                                  double epsilon, std::size_t max_nearby,
                                  ThreadPool* pool, MakeCtx make_ctx) {
  std::vector<NodeScore> scores(n);
  const auto score_one = [&](std::size_t j) {
    scores[j] = ScoreNode(eval, length, make_ctx(j), epsilon, max_nearby);
  };
  if (pool != nullptr) {
    pool->ParallelFor(n, score_one);
  } else {
    for (std::size_t j = 0; j < n; ++j) score_one(j);
  }
  return scores;
}

// One dedup class: nodes sharing (stream value, boundary-clip distances).
//
// Invariant (why members provably share sigma_i): ChainQuiltFamily(T, i,
// ell) depends on i only through dl = min(i, ell) and dr = min(T-1-i,
// ell) — two-sided quilts range over a <= dl, b <= min(dr, ell-a+1);
// left-only quilts exist only when dr < ell (then their count dr + a is
// exact in dr); right-only only when dl < ell (count dl + b) — and the
// Eq. (5) terms depend on i only through the marginal (or P^i) and the
// shared distance tables. Equal key ==> identical family (same offsets,
// same order, same nearby counts) and identical influences ==> identical
// sigma_i, argmin offsets, and influence, bit for bit. The same invariant
// is what makes the class score valid at ANY (node, length) consistent
// with the key — the append path's license to reuse interior classes.
struct NodeClass {
  /// Lowest node index currently in the class — the invariant the
  /// class-level reduce's tie-break rests on. Maintained by construction:
  /// nodes join in ascending order, members only leave when the append
  /// path re-keys the right boundary, and a class re-joined after emptying
  /// resets its representative to the joining node.
  std::size_t representative = 0;
  std::size_t dl = 0, dr = 0;
  std::uint32_t member_count = 0;
  bool scored = false;
  Vector marginal;  // Explicit-mode value.
  Matrix power;     // Free-initial-mode value.
  NodeScore score;  // Filled by the scoring phase.

  std::size_t value_doubles() const {
    return power.rows() * power.cols() + marginal.size();
  }
};

// Caps the class store so slowly-converging value streams cannot grow
// memory past O(max(256, 4 * max_nearby) * k^2): overflow nodes are
// scored in bounded blocks and folded into a running best-candidate, so
// even the fully-degraded path holds O(block) transient state.
std::size_t MaxClasses(std::size_t max_nearby) {
  return std::max<std::size_t>(256, 4 * max_nearby);
}

constexpr std::uint32_t kNoClass = std::numeric_limits<std::uint32_t>::max();

std::uint64_t ClassKeyHash(const NodeValueStream& stream, std::size_t dl,
                           std::size_t dr) {
  Fingerprint fp;
  if (stream.free_initial()) {
    fp.Add(stream.power());
  } else {
    fp.Add(stream.marginal());
  }
  fp.Add(dl).Add(dr);
  return fp.hash();
}

// Key hash recomputed from a stored class (append path re-keying).
std::uint64_t ClassKeyHash(const NodeClass& cls, bool free_initial,
                           std::size_t dl, std::size_t dr) {
  Fingerprint fp;
  if (free_initial) {
    fp.Add(cls.power);
  } else {
    fp.Add(cls.marginal);
  }
  fp.Add(dl).Add(dr);
  return fp.hash();
}

bool ClassMatches(const NodeClass& cls, const NodeValueStream& stream,
                  std::size_t dl, std::size_t dr) {
  if (cls.dl != dl || cls.dr != dr) return false;
  return stream.free_initial() ? cls.power == stream.power()
                               : cls.marginal == stream.marginal();
}

// Exact-value match between a stored class and a (value-donor class, new
// clip distances) key — the append path's re-keying lookup.
bool ClassMatches(const NodeClass& cls, const NodeClass& donor,
                  bool free_initial, std::size_t dl, std::size_t dr) {
  if (cls.dl != dl || cls.dr != dr) return false;
  return free_initial ? cls.power == donor.power
                      : cls.marginal == donor.marginal;
}

// Folded best-candidate over overflow-scored nodes (class store at
// capacity). Flushes happen in ascending node order with a
// strictly-greater update, so the fold keeps exactly the lowest overflow
// node attaining the overflow maximum — the same tie-break the exhaustive
// walk uses. An analysis that ever overflowed is NOT resumable (overflow
// nodes have no stored per-node state); ExtendTo then falls back to a
// cold scan.
struct OverflowFold {
  std::size_t count = 0;
  double best_score = -kInf;
  std::size_t best_node = 0;
  QuiltCand best;
  std::size_t pending_peak_doubles = 0;
};

// Persistent state of one theta's deduplicated scan — everything the
// append path needs to continue where the scan stopped: the class store
// with exact values and scores, the per-node class assignment, the
// steady-state shortcut cache, and the stream cursor (positioned at node
// `length`, i.e. holding the value the next appended node will use).
struct DedupScanState {
  std::size_t length = 0;
  std::unique_ptr<NodeValueStream> stream;
  std::vector<std::uint32_t> node_class;
  std::vector<NodeClass> classes;
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
  // Once the stream value cycles (period 1 or 2) and both clip distances
  // are saturated, the key sequence repeats with the cycle until the right
  // boundary region — reuse the classes of one period without hashing.
  std::uint32_t steady_class[2] = {kNoClass, kNoClass};
  std::size_t class_value_doubles = 0;
  // False once any node went to overflow scoring: per-node state was
  // folded away, so the scan can only be redone cold.
  bool resumable = true;
  // Overflow fold of the (non-resumable) cold scan that produced this
  // state; participates in the reduce.
  OverflowFold fold;
  // Heap-acquisition events of the CURRENT pass (reset by AnalyzeThetaAt):
  // class creations, node-index growth, compactions, score-block scratch.
  // Zero on a steady-state append — the invariant the hot path maintains.
  std::size_t pass_mallocs = 0;
  ChainMqmResult result;
};

// Classifies nodes [begin, length) into dedup classes, streaming values
// through the retained cursor. The initial scan calls with begin = 0 and
// overflow allowed; the append path calls with begin = old length and
// overflow forbidden (returns false so the caller falls back to a cold
// scan — a bailed append leaves the state partially advanced, which is
// fine because the fallback rebuilds it from scratch). An error Result
// (DeadlineExceeded from the bounded checkpoint below) likewise leaves the
// state mid-stride; callers must discard it.
Result<bool> ClassifyNodes(DedupScanState& st, const ExactEvaluator& eval,
                           std::size_t begin, std::size_t length,
                           const ChainMqmOptions& options, ThreadPool* pool,
                           bool allow_overflow) {
  const std::size_t ell = options.max_nearby;
  const std::size_t tail = length - 1;
  const std::size_t max_classes = MaxClasses(ell);
  NodeValueStream& stream = *st.stream;
  if (length > st.node_class.capacity()) ++st.pass_mallocs;
  st.node_class.resize(length, kNoClass);

  // Overflow nodes (class store at capacity) buffer their contexts and
  // score in parallel blocks, so a pathological non-cycling stream
  // degrades to the exhaustive scan's speed, not to a serial one.
  struct PendingNode {
    std::size_t node;
    ExactEvaluator::NodeContext ctx;
  };
  std::vector<PendingNode> pending;
  const std::size_t pending_block = std::max<std::size_t>(
      64, 4 * (pool != nullptr ? pool->num_threads() : 1));
  const auto flush_pending = [&] {
    if (pending.empty()) return;
    std::size_t doubles = 0;
    for (const PendingNode& p : pending) {
      doubles += p.ctx.term1.rows() * p.ctx.term1.cols();
    }
    st.fold.pending_peak_doubles =
        std::max(st.fold.pending_peak_doubles, doubles);
    std::vector<NodeScore> scores = ScoreBlock(
        eval, length, pending.size(), options.epsilon, ell, pool,
        [&](std::size_t j) -> const ExactEvaluator::NodeContext& {
          return pending[j].ctx;
        });
    for (std::size_t j = 0; j < pending.size(); ++j) {
      const QuiltCand w = NodeWinner(scores[j], length, options.epsilon);
      if (w.score > st.fold.best_score) {
        st.fold.best_score = w.score;
        st.fold.best_node = pending[j].node;
        st.fold.best = w;
      }
    }
    st.fold.count += pending.size();
    pending.clear();
  };

  // Checkpoint cadence for the O(T) streaming loop: frequent enough that a
  // deadline overrun is bounded by ~4096 O(k^2) steps, rare enough that the
  // clock read never shows up in the scan profile.
  constexpr std::size_t kDeadlineStride = 4096;
  for (std::size_t i = begin; i < length; ++i) {
    if ((i - begin) % kDeadlineStride == 0) {
      PF_RETURN_NOT_OK(CheckDeadline("dedup node scan"));
    }
    const std::size_t dl = std::min(i, ell);
    const std::size_t dr = std::min(tail - i, ell);
    const std::size_t period = stream.period();
    const std::size_t phase = period == 2 ? (i & 1) : 0;
    if (period != 0 && dl == ell && dr == ell &&
        st.steady_class[phase] != kNoClass) {
      st.node_class[i] = st.steady_class[phase];
      ++st.classes[st.steady_class[phase]].member_count;  // Never empty here.
      stream.Advance(pool);
      continue;
    }
    const std::uint64_t h = ClassKeyHash(stream, dl, dr);
    std::uint32_t found = kNoClass;
    // find() rather than operator[]: overflow nodes must not leave O(T)
    // empty buckets behind in the degraded path.
    const auto it = st.index.find(h);
    if (it != st.index.end()) {
      for (std::uint32_t id : it->second) {
        if (ClassMatches(st.classes[id], stream, dl, dr)) {
          found = id;
          break;
        }
      }
    }
    if (found == kNoClass) {
      // Period-detected values always get a slot, even past the cap: a
      // slow-mixing chain can exhaust the store with bit-distinct
      // transients before the marginal fixes, and without a stored class
      // the steady-state fast path could never engage — every remaining
      // node would fall to overflow scoring. Post-period keys are bounded
      // by O(max_nearby) (two phases x the clipped-distance combinations),
      // so the memory bound is unchanged.
      if (st.classes.size() < max_classes || stream.period() != 0) {
        NodeClass cls;
        cls.representative = i;
        cls.dl = dl;
        cls.dr = dr;
        cls.member_count = 1;
        if (stream.free_initial()) {
          cls.power = stream.power();
        } else {
          cls.marginal = stream.marginal();
        }
        st.class_value_doubles += cls.value_doubles();
        found = static_cast<std::uint32_t>(st.classes.size());
        st.classes.push_back(std::move(cls));
        st.index[h].push_back(found);
        ++st.pass_mallocs;
      } else if (allow_overflow) {
        // Class store full: buffer for blocked parallel scoring.
        st.resumable = false;
        pending.push_back(PendingNode{i, ContextFromStream(eval, stream, i)});
        ++st.pass_mallocs;
        if (pending.size() >= pending_block) flush_pending();
      } else {
        return false;  // Append path: fall back to a cold scan.
      }
    } else {
      NodeClass& cls = st.classes[found];
      if (cls.member_count == 0) cls.representative = i;  // Re-joined stale.
      ++cls.member_count;
    }
    st.node_class[i] = found;
    if (found != kNoClass && period != 0 && dl == ell && dr == ell) {
      st.steady_class[phase] = found;
    }
    stream.Advance(pool);
  }
  flush_pending();
  return true;
}

// Scores every class that does not have a stored score yet (all of them
// after a cold classification; only the re-keyed/appended ones after an
// append). Classes are independent; each worker builds its
// representative's context from the stored value.
void ScoreUnscoredClasses(DedupScanState& st, const ExactEvaluator& eval,
                          std::size_t length, const ChainMqmOptions& options,
                          ThreadPool* pool) {
  std::vector<std::uint32_t> todo;
  for (std::uint32_t c = 0; c < st.classes.size(); ++c) {
    if (!st.classes[c].scored) todo.push_back(c);
  }
  // An all-scored store (the steady-state append) allocates nothing here:
  // the empty todo/scores vectors never touch the heap.
  if (!todo.empty()) st.pass_mallocs += 1 + todo.size();
  std::vector<NodeScore> scores = ScoreBlock(
      eval, length, todo.size(), options.epsilon, options.max_nearby, pool,
      [&](std::size_t j) {
        const NodeClass& cls = st.classes[todo[j]];
        return st.stream->free_initial()
                   ? eval.ContextFromPower(cls.representative, cls.power)
                   : eval.ContextFromMarginal(cls.representative,
                                              cls.marginal);
      });
  for (std::size_t j = 0; j < todo.size(); ++j) {
    st.classes[todo[j]].score = scores[j];
    st.classes[todo[j]].scored = true;
  }
}

// Reduces over CLASSES (O(mixing + max_nearby), not O(T) — this is what
// keeps a delta = 1 append sublinear in T). Equivalent to the exhaustive
// walk's per-node reduce: every node scores exactly its class's winner,
// and a class's representative is its lowest member, so "lowest node
// attaining the maximum" is "lowest representative among classes attaining
// it". The overflow candidate merges after with the same tie rule. The
// trivial-quilt score is folded in per class at the CURRENT length
// (NodeWinner), which is the one place length-dependence re-enters after
// an append.
void ReduceDedup(DedupScanState& st, const ExactEvaluator& eval,
                 std::size_t length, const ChainMqmOptions& options) {
  // Built directly in st.result (every field overwritten; the quilt's
  // vector capacity is reused) so the per-append re-reduce allocates
  // nothing. memory.mallocs is attributed by AnalyzeThetaAt, which sees
  // the whole pass.
  ChainMqmResult& result = st.result;
  result.sigma_max = -kInf;
  result.worst_node = 0;
  result.influence = 0.0;
  result.used_stationary_shortcut = false;
  bool have_classed = false;
  QuiltCand best_cand;
  for (const NodeClass& cls : st.classes) {
    const QuiltCand w = NodeWinner(cls.score, length, options.epsilon);
    if (w.score > result.sigma_max ||
        (w.score == result.sigma_max && have_classed &&
         cls.representative < static_cast<std::size_t>(result.worst_node))) {
      result.sigma_max = w.score;
      result.worst_node = static_cast<int>(cls.representative);
      result.influence = w.influence;
      best_cand = w;
      have_classed = true;
    }
  }
  if (st.fold.count > 0 &&
      (!have_classed || st.fold.best_score > result.sigma_max ||
       (st.fold.best_score == result.sigma_max &&
        st.fold.best_node < static_cast<std::size_t>(result.worst_node)))) {
    result.sigma_max = st.fold.best_score;
    result.worst_node = static_cast<int>(st.fold.best_node);
    result.influence = st.fold.best.influence;
    best_cand = st.fold.best;
  }
  MaterializeQuiltInto(best_cand, result.worst_node, length,
                       &result.active_quilt);
  result.total_nodes = length;
  result.scored_nodes = st.classes.size() + st.fold.count;
  result.memory.peak_bytes =
      sizeof(double) *
      (eval.StoredDoubles() + st.stream->StoredDoubles() +
       st.class_value_doubles + st.fold.pending_peak_doubles);
  result.memory.arena_retained_bytes =
      sizeof(double) * (eval.StoredDoubles() + st.stream->StoredDoubles() +
                        st.class_value_doubles);
  result.memory.mallocs = 0;
}

}  // namespace

// The remainder of the scan machinery (cold scans, the append path, the
// resumable analysis object, and the public entry points) continues below;
// split so each piece stays reviewable.

namespace {

// A cold deduplicated scan at `length`: fresh stream, fresh class store.
// make_stream() builds the mode-appropriate cursor. On error (deadline)
// the state is mid-stride; the caller discards it.
template <typename MakeStream>
Status ColdDedupScan(DedupScanState& st, const ExactEvaluator& eval,
                     std::size_t length, const ChainMqmOptions& options,
                     ThreadPool* pool, MakeStream make_stream) {
  st = DedupScanState{};
  st.stream = make_stream();
  // With overflow allowed, classification only stops early on error.
  PF_ASSIGN_OR_RETURN(const bool classified,
                      ClassifyNodes(st, eval, 0, length, options, pool,
                                    /*allow_overflow=*/true));
  (void)classified;
  ScoreUnscoredClasses(st, eval, length, options, pool);
  ReduceDedup(st, eval, length, options);
  st.length = length;
  return Status::OK();
}

// The append path: re-keys the O(max_nearby) right-boundary nodes whose
// clipped distance dr = min(T-1-i, ell) changed, classifies the appended
// nodes with the retained stream cursor, drops classes that lost all
// members, scores only the new classes, and re-reduces. Returns false when
// the incremental invariants cannot be maintained (class store at
// capacity) — the caller then falls back to a cold scan, which is always
// correct.
//
// Bit-identity argument: after the re-key + compaction, the class store
// holds exactly the classes a cold scan at new_length builds (same keys,
// same partition — values are compared exactly, never by hash alone), and
// every retained class score is valid at the new length because scores
// depend on (value, dl, dr) only (see the NodeClass invariant). The
// reduce then re-applies the only length-dependent term (the trivial
// quilt) per node, in the same order with the same tie rules as cold.
Result<bool> AppendDedupScan(DedupScanState& st, const ExactEvaluator& eval,
                             std::size_t new_length,
                             const ChainMqmOptions& options,
                             ThreadPool* pool) {
  const std::size_t ell = options.max_nearby;
  const std::size_t old_length = st.length;
  const std::size_t max_classes = MaxClasses(ell);
  const bool free_initial = st.stream->free_initial();

  // Phase A: re-key boundary nodes i in [old_length - ell, old_length) —
  // exactly those with old dr < ell — in ascending order (the order a cold
  // scan first meets their new keys).
  const std::size_t first =
      old_length > ell ? old_length - ell : 0;
  for (std::size_t i = first; i < old_length; ++i) {
    const std::uint32_t old_id = st.node_class[i];
    if (old_id == kNoClass) return false;  // Only on non-resumable state.
    const std::size_t dl = std::min(i, ell);
    const std::size_t dr = std::min(new_length - 1 - i, ell);
    const std::uint64_t h = ClassKeyHash(st.classes[old_id], free_initial,
                                         dl, dr);
    std::uint32_t found = kNoClass;
    const auto it = st.index.find(h);
    if (it != st.index.end()) {
      for (std::uint32_t id : it->second) {
        if (ClassMatches(st.classes[id], st.classes[old_id], free_initial, dl,
                         dr)) {
          found = id;
          break;
        }
      }
    }
    if (found == kNoClass) {
      if (st.classes.size() >= max_classes) return false;
      NodeClass cls;
      cls.representative = i;
      cls.dl = dl;
      cls.dr = dr;
      cls.member_count = 0;  // Incremented below.
      // Copy the value before push_back: the donor reference would dangle
      // across a reallocation.
      if (free_initial) {
        cls.power = st.classes[old_id].power;
      } else {
        cls.marginal = st.classes[old_id].marginal;
      }
      st.class_value_doubles += cls.value_doubles();
      found = static_cast<std::uint32_t>(st.classes.size());
      st.classes.push_back(std::move(cls));
      st.index[h].push_back(found);
      ++st.pass_mallocs;
    }
    --st.classes[old_id].member_count;
    // Re-joining a class that emptied makes this node its lowest member
    // (any original members with this boundary key sat at lower indices
    // and re-keyed away earlier in this ascending pass).
    if (st.classes[found].member_count == 0) {
      st.classes[found].representative = i;
    }
    ++st.classes[found].member_count;
    st.node_class[i] = found;
  }

  // Phase B: classify the appended nodes with the retained cursor (which
  // holds exactly the value a cold scan would stream at node old_length).
  // Runs BEFORE compaction on purpose: in the steady state the appended
  // boundary nodes re-join the very classes the re-key just emptied (the
  // key set is shift-invariant once the marginal has mixed), so compaction
  // — an O(T) node_class remap — almost never fires on the hot
  // delta-append path.
  PF_ASSIGN_OR_RETURN(const bool classified,
                      ClassifyNodes(st, eval, old_length, new_length, options,
                                    pool, /*allow_overflow=*/false));
  if (!classified) return false;

  // Phase C: compact away classes that lost their last member (stale
  // boundary keys a cold scan at new_length would never create), so the
  // class store — and scored_nodes — matches the cold scan exactly.
  bool any_empty = false;
  for (const NodeClass& cls : st.classes) {
    if (cls.member_count == 0) {
      any_empty = true;
      break;
    }
  }
  if (any_empty) {
    st.pass_mallocs += 2;  // remap + kept (plus the index rebuild below).
    std::vector<std::uint32_t> remap(st.classes.size(), kNoClass);
    std::vector<NodeClass> kept;
    kept.reserve(st.classes.size());
    for (std::uint32_t c = 0; c < st.classes.size(); ++c) {
      if (st.classes[c].member_count == 0) {
        st.class_value_doubles -= st.classes[c].value_doubles();
        continue;
      }
      remap[c] = static_cast<std::uint32_t>(kept.size());
      kept.push_back(std::move(st.classes[c]));
    }
    st.classes = std::move(kept);
    st.index.clear();
    for (std::uint32_t c = 0; c < st.classes.size(); ++c) {
      const NodeClass& cls = st.classes[c];
      st.index[ClassKeyHash(cls, free_initial, cls.dl, cls.dr)].push_back(c);
    }
    for (std::uint32_t& id : st.node_class) {
      if (id != kNoClass) id = remap[id];
    }
    for (std::uint32_t& id : st.steady_class) {
      // Steady classes are interior (dl == dr == ell) and keep all their
      // members, so they always survive compaction.
      if (id != kNoClass) id = remap[id];
    }
  }

  // Phase D + E: score the classes created above, re-reduce at the new
  // length.
  ScoreUnscoredClasses(st, eval, new_length, options, pool);
  ReduceDedup(st, eval, new_length, options);
  st.length = new_length;
  return true;
}

// The exhaustive reference scan (dedup_nodes = false): every node scored,
// in streamed blocks of bounded memory. Kept for verification and the
// long-chain benchmark's pre-optimization baseline. Not resumable — each
// call streams from node 0 (the retained evaluator still amortizes the
// table construction across extensions).
Result<ChainMqmResult> ScanExhaustive(const ExactEvaluator& eval,
                                      NodeValueStream* stream,
                                      std::size_t length,
                                      const ChainMqmOptions& options,
                                      ThreadPool* pool) {
  const std::size_t threads = pool != nullptr ? pool->num_threads() : 1;
  const std::size_t block = std::max<std::size_t>(64, 4 * threads);
  std::vector<ExactEvaluator::NodeContext> contexts(
      std::min(block, length));
  ChainMqmResult result;
  result.sigma_max = -kInf;
  QuiltCand best_cand;
  std::size_t peak_context_doubles = 0;
  for (std::size_t start = 0; start < length; start += block) {
    // Per-block checkpoint: a deadline overrun costs at most one scored
    // block of O(block * k^2) work.
    PF_RETURN_NOT_OK(CheckDeadline("exhaustive node scan"));
    const std::size_t n = std::min(block, length - start);
    std::size_t context_doubles = 0;
    for (std::size_t j = 0; j < n; ++j) {
      contexts[j] = ContextFromStream(eval, *stream, start + j);
      context_doubles += contexts[j].term1.rows() * contexts[j].term1.cols();
      stream->Advance(pool);
    }
    peak_context_doubles = std::max(peak_context_doubles, context_doubles);
    const std::vector<NodeScore> scores = ScoreBlock(
        eval, length, n, options.epsilon, options.max_nearby, pool,
        [&](std::size_t j) -> const ExactEvaluator::NodeContext& {
          return contexts[j];
        });
    for (std::size_t j = 0; j < n; ++j) {
      const QuiltCand w = NodeWinner(scores[j], length, options.epsilon);
      if (w.score > result.sigma_max) {
        result.sigma_max = w.score;
        result.worst_node = static_cast<int>(start + j);
        result.influence = w.influence;
        best_cand = w;
      }
    }
  }
  result.active_quilt = MaterializeQuilt(best_cand, result.worst_node, length);
  result.total_nodes = length;
  result.scored_nodes = length;
  result.memory.peak_bytes =
      sizeof(double) *
      (eval.StoredDoubles() + stream->StoredDoubles() + peak_context_doubles);
  // Only the evaluator outlives the exhaustive pass; the stream and the
  // context blocks are per-call. One malloc event per node context, plus
  // the cursor's growth (an event count, not a precise tally — this path
  // is the non-incremental reference).
  result.memory.arena_retained_bytes = sizeof(double) * eval.StoredDoubles();
  result.memory.mallocs = length + stream->growth_events();
  return result;
}

// Constructs the worker pool on first request only. Results are
// bit-identical for every thread count, so the scan paths are free to
// skip the pool entirely — which matters for the streaming append: a
// delta = 1 ExtendTo does ~O(max_nearby * k^2) work, and spawning (then
// joining) hardware-concurrency OS threads around it would dominate the
// serving tick this path exists to make cheap. Cold scans and bulk
// appends request the pool; small appends never do.
class LazyPool {
 public:
  explicit LazyPool(std::size_t num_threads) : num_threads_(num_threads) {}

  // The pool, spawning it on first call; nullptr when one thread resolves
  // (the same convention the one-shot entry points used).
  ThreadPool* get() {
    if (!pool_.has_value()) pool_.emplace(num_threads_);
    return pool_->num_threads() > 1 ? &*pool_ : nullptr;
  }

 private:
  std::size_t num_threads_;
  std::optional<ThreadPool> pool_;
};

// Persistent per-theta analysis state: the evaluator (extend-only), the
// stationary-shortcut cursor, and the dedup scan state. One ThetaState per
// element of the class Theta.
struct ThetaState {
  // Exactly one of these is set: the chain (explicit mode) or the bare
  // transition (free-initial mode). Both point into the owning
  // ChainMqmAnalysis::Impl, whose vectors never reallocate after creation.
  const MarkovChain* theta = nullptr;
  const Matrix* transition = nullptr;

  ExactEvaluator eval;
  // True iff the initial distribution matches the stationary distribution
  // (the Section 4.4.1 shortcut precondition; length-independent, so it is
  // computed once). Always false in free-initial mode.
  bool stationary_initial = false;
  // Shortcut cursor: the marginal stream advanced to mid_pos (<= the
  // current middle node; middles are monotone in length).
  std::unique_ptr<NodeValueStream> mid_stream;
  std::size_t mid_pos = 0;
  // Retained scratch for the shortcut's per-pass middle-node context
  // (capacity reused — a warm shortcut pass builds it without allocating).
  ExactEvaluator::NodeContext ctx_scratch;

  std::unique_ptr<DedupScanState> scan;
  ChainMqmResult result;

  ThetaState(const MarkovChain* chain, const Matrix& p, bool free_initial)
      : theta(chain), transition(&p), eval(p, free_initial) {}

  std::unique_ptr<NodeValueStream> MakeStream() const {
    return theta != nullptr
               ? std::make_unique<NodeValueStream>(*transition,
                                                   theta->initial())
               : std::make_unique<NodeValueStream>(*transition,
                                                   FreeInitialTag{});
  }
};

// Analyzes (or re-analyzes after an extension) one theta at `length`,
// reusing whatever retained state applies. Mirrors the cold control flow
// exactly — shortcut attempt first, full scan on fall-through — so the
// mode decisions (and hence every result bit, including
// used_stationary_shortcut) match a cold analysis at `length`.
//
// On error (deadline checkpoint fired) the retained state is left safe to
// retry from: the extend-only evaluator keeps its completed prefix, and
// any mid-stride dedup scan is discarded so the next call rebuilds cold.
Status AnalyzeThetaAt(ThetaState& st, std::size_t length,
                      const ChainMqmOptions& options, LazyPool* lazy) {
  // Growth attribution for MemoryStats::mallocs: diff the retained
  // components' monotone counters around the pass. A steady-state append
  // leaves every counter unchanged — the zero the hot path guarantees.
  const std::size_t eval_growth_before = st.eval.growth_events();
  const NodeValueStream* scan_stream_before =
      st.scan != nullptr ? st.scan->stream.get() : nullptr;
  const std::size_t scan_stream_growth_before =
      scan_stream_before != nullptr ? scan_stream_before->growth_events() : 0;
  const std::size_t family_distance =
      FamilyMaxDistance(length, options.max_nearby);
  // The table build is the one O(ell * k^3) step; request the pool only
  // when there is actually something to build.
  PF_RETURN_NOT_OK(
      st.eval.Prepare(family_distance,
                      st.eval.max_distance() < family_distance ? lazy->get()
                                                               : nullptr));
  if (options.allow_stationary_shortcut && st.stationary_initial &&
      length >= 3) {
    // Stationary shortcut: the max-influence of every interior quilt is
    // independent of i and the middle node attains sigma_max (Lemma C.4's
    // argument applies verbatim to exact influences: each Eq. (5) term is
    // nonnegative after adding the marginal term).
    const std::size_t mid = length / 2;
    std::size_t pass_mallocs = st.eval.growth_events() - eval_growth_before;
    if (st.mid_stream == nullptr) {
      st.mid_stream = st.MakeStream();
      st.mid_pos = 0;
      ++pass_mallocs;
    }
    const std::size_t mid_growth_before = st.mid_stream->growth_events();
    while (st.mid_pos < mid) {
      st.mid_stream->Advance();
      ++st.mid_pos;
    }
    pass_mallocs += st.mid_stream->growth_events() - mid_growth_before;
    if (st.ctx_scratch.feasible.empty()) ++pass_mallocs;
    if (st.mid_stream->free_initial()) {
      st.eval.ContextFromPowerInto(mid, st.mid_stream->power(),
                                   &st.ctx_scratch);
    } else {
      st.eval.ContextFromMarginalInto(mid, st.mid_stream->marginal(),
                                      &st.ctx_scratch);
    }
    const NodeScore mid_score = ScoreNode(st.eval, length, st.ctx_scratch,
                                          options.epsilon, options.max_nearby);
    const QuiltCand w = NodeWinner(mid_score, length, options.epsilon);
    // Materialize into the retained result slot; decide interior-ness from
    // the offsets directly (what IsInteriorTwoSided read off the vector).
    const bool two_sided_interior =
        w.a > 0 && w.b > 0 && static_cast<int>(mid) - w.a >= 0 &&
        static_cast<int>(mid) + w.b <= static_cast<int>(length) - 1;
    const bool trivial = w.a == 0 && w.b == 0;
    if (two_sided_interior || trivial) {
      ChainMqmResult& result = st.result;
      result.sigma_max = w.score;
      result.worst_node = static_cast<int>(mid);
      MaterializeQuiltInto(w, static_cast<int>(mid), length,
                           &result.active_quilt);
      result.influence = w.influence;
      result.used_stationary_shortcut = true;
      result.total_nodes = length;
      result.scored_nodes = 1;
      result.memory.peak_bytes =
          sizeof(double) *
          (st.eval.StoredDoubles() + st.mid_stream->StoredDoubles());
      result.memory.arena_retained_bytes = result.memory.peak_bytes;
      result.memory.mallocs = pass_mallocs;
      return Status::OK();
    }
    // One-sided optimum at the middle: fall through to the full scan.
  }
  if (!options.dedup_nodes) {
    auto stream = st.MakeStream();
    PF_ASSIGN_OR_RETURN(
        st.result,
        ScanExhaustive(st.eval, stream.get(), length, options, lazy->get()));
    st.result.memory.mallocs +=
        st.eval.growth_events() - eval_growth_before;
    return Status::OK();
  }
  // Deadline-safety of the scan-state mutations below: every early error
  // return resets st.scan, so a cancelled analysis can never leave a
  // half-advanced scan to be extended by the next caller.
  if (st.scan == nullptr || !st.scan->resumable ||
      st.scan->length > length) {
    st.scan = std::make_unique<DedupScanState>();
    Status cold = ColdDedupScan(*st.scan, st.eval, length, options,
                                lazy->get(), [&] { return st.MakeStream(); });
    if (!cold.ok()) {
      st.scan = nullptr;
      return cold;
    }
  } else if (st.scan->length < length) {
    st.scan->pass_mallocs = 0;
    // Small appends run poolless (the work is O(max_nearby + delta), far
    // below thread-spawn cost); bulk appends fan out like a cold scan.
    constexpr std::size_t kParallelAppendThreshold = 1024;
    ThreadPool* pool = length - st.scan->length >= kParallelAppendThreshold
                           ? lazy->get()
                           : nullptr;
    Result<bool> appended =
        AppendDedupScan(*st.scan, st.eval, length, options, pool);
    if (!appended.ok()) {
      st.scan = nullptr;
      return appended.status();
    }
    if (!appended.value()) {
      st.scan = std::make_unique<DedupScanState>();
      Status cold =
          ColdDedupScan(*st.scan, st.eval, length, options, lazy->get(),
                        [&] { return st.MakeStream(); });
      if (!cold.ok()) {
        st.scan = nullptr;
        return cold;
      }
    }
  } else {
    // st.scan->length == length: the stored result is already current.
    st.scan->pass_mallocs = 0;
  }
  // Attribute the pass's growth: scan-local events plus the evaluator and
  // stream deltas (a cold rebuild replaced the stream — count its whole
  // history, it grew from nothing this pass).
  const NodeValueStream* scan_stream_after = st.scan->stream.get();
  st.scan->result.memory.mallocs =
      st.scan->pass_mallocs +
      (st.eval.growth_events() - eval_growth_before) +
      (scan_stream_after->growth_events() -
       (scan_stream_after == scan_stream_before ? scan_stream_growth_before
                                                : 0));
  st.result = st.scan->result;
  return Status::OK();
}

}  // namespace

// ------------------------------------------------------ ChainMqmAnalysis --

struct ChainMqmAnalysis::Impl {
  ChainMqmOptions options;
  std::size_t length = 0;
  bool free_initial = false;
  // Owned model; ThetaStates hold pointers into these vectors (stable: the
  // vectors are filled once and never resized afterwards).
  std::vector<MarkovChain> thetas;
  std::vector<Matrix> transitions;
  std::vector<std::unique_ptr<ThetaState>> states;
  ChainMqmResult result;

  // Runs every theta at `new_length` and reduces across the class (worst
  // sigma wins; the first theta attaining it, like the one-shot scan).
  // On error (deadline) the retained result and length are unchanged —
  // per-theta state is retry-safe (see AnalyzeThetaAt).
  Status RunAt(std::size_t new_length) {
    // Lazy: a steady-state small append never pays thread spawn/join.
    LazyPool lazy(options.num_threads);
    // Reduce via a pointer, then copy once into the retained result slot —
    // vector capacity is reused, so a warm RunAt allocates nothing.
    const ChainMqmResult* worst = nullptr;
    std::size_t total_nodes = 0, scored_nodes = 0;
    MemoryStats memory;
    for (auto& st : states) {
      PF_RETURN_NOT_OK(AnalyzeThetaAt(*st, new_length, options, &lazy));
      total_nodes += st->result.total_nodes;
      scored_nodes += st->result.scored_nodes;
      memory.MergeMax(st->result.memory);
      if (worst == nullptr || st->result.sigma_max > worst->sigma_max) {
        worst = &st->result;
      }
    }
    result = *worst;
    result.total_nodes = total_nodes;
    result.scored_nodes = scored_nodes;
    result.memory = memory;
    length = new_length;
    return Status::OK();
  }
};

ChainMqmAnalysis::ChainMqmAnalysis(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ChainMqmAnalysis::ChainMqmAnalysis(ChainMqmAnalysis&&) noexcept = default;
ChainMqmAnalysis& ChainMqmAnalysis::operator=(ChainMqmAnalysis&&) noexcept =
    default;
ChainMqmAnalysis::~ChainMqmAnalysis() = default;

std::size_t ChainMqmAnalysis::length() const { return impl_->length; }
const ChainMqmResult& ChainMqmAnalysis::result() const {
  return impl_->result;
}

Result<ChainMqmAnalysis> ChainMqmAnalysis::Analyze(
    std::vector<MarkovChain> thetas, std::size_t length,
    const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (thetas.empty()) return Status::InvalidArgument("empty chain class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  for (const MarkovChain& theta : thetas) {
    if (theta.num_states() > 64) {
      return Status::NotSupported("exact influence supports at most 64 states");
    }
    if (theta.num_states() != thetas.front().num_states()) {
      return Status::InvalidArgument("state-space mismatch in Theta");
    }
  }
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->free_initial = false;
  impl->thetas = std::move(thetas);
  impl->states.reserve(impl->thetas.size());
  for (const MarkovChain& theta : impl->thetas) {
    auto st = std::make_unique<ThetaState>(&theta, theta.transition(),
                                           /*free_initial=*/false);
    // The shortcut precondition q == pi (and pi > 0) is length-independent;
    // decide it once so every later extension makes the same mode choice a
    // cold analysis would.
    Result<Vector> pi = theta.StationaryDistribution();
    if (pi.ok() && DistanceL1(pi.value(), theta.initial()) < 1e-9 &&
        *std::min_element(pi.value().begin(), pi.value().end()) > 0.0) {
      st->stationary_initial = true;
    }
    impl->states.push_back(std::move(st));
  }
  PF_RETURN_NOT_OK(impl->RunAt(length));
  return ChainMqmAnalysis(std::move(impl));
}

Result<ChainMqmAnalysis> ChainMqmAnalysis::AnalyzeFreeInitial(
    std::vector<Matrix> transitions, std::size_t length,
    const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (transitions.empty()) return Status::InvalidArgument("empty class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  for (const Matrix& p : transitions) {
    if (p.rows() != p.cols() || p.rows() > 64 || !p.IsRowStochastic(1e-8)) {
      return Status::InvalidArgument(
          "transition matrices must be row-stochastic with <= 64 states");
    }
  }
  auto impl = std::make_unique<Impl>();
  impl->options = options;
  impl->free_initial = true;
  impl->transitions = std::move(transitions);
  impl->states.reserve(impl->transitions.size());
  for (const Matrix& p : impl->transitions) {
    impl->states.push_back(
        std::make_unique<ThetaState>(nullptr, p, /*free_initial=*/true));
  }
  PF_RETURN_NOT_OK(impl->RunAt(length));
  return ChainMqmAnalysis(std::move(impl));
}

Status ChainMqmAnalysis::ExtendTo(std::size_t new_length) {
  if (new_length < impl_->length) {
    return Status::InvalidArgument(
        "ExtendTo can only grow the chain: analysis is at length " +
        std::to_string(impl_->length) + ", requested " +
        std::to_string(new_length) + "; create a new analysis to shrink");
  }
  if (new_length == impl_->length) return Status::OK();
  return impl_->RunAt(new_length);
}

// ---------------------------------------------------- one-shot entry points

Result<double> ChainQuiltInfluenceExact(const MarkovChain& theta,
                                        std::size_t length,
                                        const MarkovQuilt& quilt) {
  if (theta.num_states() > 64) {
    return Status::NotSupported("exact influence supports at most 64 states");
  }
  if (quilt.target < 0 || quilt.target >= static_cast<int>(length)) {
    return Status::InvalidArgument("quilt target outside chain");
  }
  for (int q : quilt.quilt) {
    if (q < 0 || q >= static_cast<int>(length)) {
      return Status::InvalidArgument("quilt node outside chain");
    }
    if (q == quilt.target) {
      return Status::InvalidArgument("quilt must not contain its target");
    }
  }
  ExactEvaluator eval(theta.transition(), /*free_initial=*/false);
  // One quilt only needs the tables at its own endpoint distances — not the
  // full sweep the analysis entry points prepare.
  const auto [a, b] = ChainQuiltOffsets(quilt);
  std::vector<std::size_t> distances;
  if (a > 0) distances.push_back(static_cast<std::size_t>(a));
  if (b > 0 && b != a) distances.push_back(static_cast<std::size_t>(b));
  PF_RETURN_NOT_OK(eval.PrepareDistances(distances, nullptr));
  NodeValueStream stream(theta.transition(), theta.initial());
  for (int t = 0; t < quilt.target; ++t) stream.Advance();
  return EvaluateQuilt(
      eval,
      ContextFromStream(eval, stream, static_cast<std::size_t>(quilt.target)),
      quilt);
}

Result<ChainMqmResult> MqmExactAnalyze(const std::vector<MarkovChain>& thetas,
                                       std::size_t length,
                                       const ChainMqmOptions& options) {
  PF_ASSIGN_OR_RETURN(ChainMqmAnalysis analysis,
                      ChainMqmAnalysis::Analyze(thetas, length, options));
  return analysis.result();
}

Result<ChainMqmResult> MqmExactAnalyzeFreeInitial(
    const std::vector<Matrix>& transitions, std::size_t length,
    const ChainMqmOptions& options) {
  PF_ASSIGN_OR_RETURN(
      ChainMqmAnalysis analysis,
      ChainMqmAnalysis::AnalyzeFreeInitial(transitions, length, options));
  return analysis.result();
}

}  // namespace pf
