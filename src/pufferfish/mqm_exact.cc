#include "pufferfish/mqm_exact.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "pufferfish/framework.h"

namespace pf {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Evaluates the Eq. (5) terms for one transition matrix, with caching of
// matrix powers and per-(a, b) maximization tables. Supports two modes:
//  - explicit initial distribution (marginals precomputed for every node);
//  - free initial distribution (Appendix C.4): the marginal log-ratio terms
//    become maxima over rows of matrix powers.
class ExactEvaluator {
 public:
  // Explicit-q mode.
  ExactEvaluator(const Matrix& transition, const Vector& initial,
                 std::size_t length)
      : p_(transition),
        k_(transition.rows()),
        length_(length),
        free_initial_(false) {
    powers_.push_back(Matrix::Identity(k_));
    marginals_.reserve(length);
    Vector m = initial;
    marginals_.push_back(m);
    for (std::size_t t = 1; t < length; ++t) {
      m = p_.ApplyLeft(m);
      marginals_.push_back(m);
    }
  }

  // Free-initial (C.4) mode.
  ExactEvaluator(const Matrix& transition, std::size_t length)
      : p_(transition), k_(transition.rows()), length_(length), free_initial_(true) {
    powers_.push_back(Matrix::Identity(k_));
  }

  // Max-influence of the two-sided quilt {X_{i-a}, X_{i+b}} at node i.
  double TwoSided(std::size_t i, int a, int b) {
    const Matrix& right = RightTable(b);
    const Matrix& left = LeftTable(static_cast<std::size_t>(a));
    return MaxOverPairs(i, &right, &left);
  }

  // Max-influence of {X_{i-a}} (left-only quilt).
  double LeftOnly(std::size_t i, int a) {
    const Matrix& left = LeftTable(static_cast<std::size_t>(a));
    return MaxOverPairs(i, nullptr, &left);
  }

  // Max-influence of {X_{i+b}} (right-only quilt; no marginal term).
  double RightOnly(std::size_t i, int b) {
    const Matrix& right = RightTable(b);
    double best = 0.0;
    const std::vector<char> feasible = FeasibleStates(i);
    for (std::size_t x = 0; x < k_; ++x) {
      if (!feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !feasible[xp]) continue;
        best = std::max(best, right(x, xp));
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

 private:
  const Matrix& Pow(std::size_t n) {
    while (powers_.size() <= n) powers_.push_back(powers_.back() * p_);
    return powers_[n];
  }

  // States x with P(X_i = x) > 0 (under any allowed initial distribution in
  // free mode).
  std::vector<char> FeasibleStates(std::size_t i) {
    std::vector<char> f(k_, 0);
    if (free_initial_) {
      if (i == 0) {
        std::fill(f.begin(), f.end(), 1);
        return f;
      }
      const Matrix& pi = Pow(i);
      for (std::size_t x = 0; x < k_; ++x) {
        for (std::size_t z = 0; z < k_; ++z) {
          if (pi(z, x) > 0.0) {
            f[x] = 1;
            break;
          }
        }
      }
      return f;
    }
    for (std::size_t x = 0; x < k_; ++x) f[x] = marginals_[i][x] > 0.0 ? 1 : 0;
    return f;
  }

  // right(x, x') = max over y with P^b(x,y) > 0 of log P^b(x,y)/P^b(x',y);
  // +inf when the support of row x is not contained in the support of x'.
  const Matrix& RightTable(int b) {
    auto it = right_cache_.find(b);
    if (it != right_cache_.end()) return it->second;
    const Matrix& pb = Pow(static_cast<std::size_t>(b));
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t y = 0; y < k_; ++y) {
          const double num = pb(x, y);
          if (num <= 0.0) continue;
          const double den = pb(xp, y);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return right_cache_.emplace(b, std::move(table)).first->second;
  }

  // left(x, x') = max over z in X with P^a(z,x) > 0 of
  // log P^a(z,x)/P^a(z,x'); +inf on support mismatch; -inf if no z reaches
  // x (x infeasible, filtered by the caller's feasibility mask). Following
  // Eq. (5) literally, the max ranges over *all* states z regardless of
  // whether P(X_{i-a} = z) > 0 — a conservative (privacy-safe) bound that
  // matches the paper's reported numbers.
  const Matrix& LeftTable(std::size_t a) {
    auto it = left_cache_.find(a);
    if (it != left_cache_.end()) return it->second;
    const Matrix& pa = Pow(a);
    Matrix table(k_, k_, 0.0);
    for (std::size_t x = 0; x < k_; ++x) {
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp) continue;
        double best = -kInf;
        for (std::size_t z = 0; z < k_; ++z) {
          const double num = pa(z, x);
          if (num <= 0.0) continue;
          const double den = pa(z, xp);
          if (den <= 0.0) {
            best = kInf;
            break;
          }
          best = std::max(best, std::log(num / den));
        }
        table(x, xp) = best;
      }
    }
    return left_cache_.emplace(a, std::move(table)).first->second;
  }

  // Marginal log-ratio term t1(x, x') = log P(X_i=x') / P(X_i=x); in free
  // mode, sup over initial distributions = max over rows z of
  // log P^i(z,x') / P^i(z,x) (Appendix C.4), +inf on support mismatch.
  const Matrix& Term1(std::size_t i) {
    auto it = term1_cache_.find(i);
    if (it != term1_cache_.end()) return it->second;
    Matrix table(k_, k_, 0.0);
    if (!free_initial_) {
      const Vector& m = marginals_[i];
      for (std::size_t x = 0; x < k_; ++x) {
        for (std::size_t xp = 0; xp < k_; ++xp) {
          if (x == xp) continue;
          if (m[x] > 0.0 && m[xp] > 0.0) {
            table(x, xp) = std::log(m[xp] / m[x]);
          } else {
            table(x, xp) = -kInf;  // Pair filtered by feasibility anyway.
          }
        }
      }
    } else {
      const Matrix& pi = Pow(i);
      for (std::size_t x = 0; x < k_; ++x) {
        for (std::size_t xp = 0; xp < k_; ++xp) {
          if (x == xp) continue;
          double best = -kInf;
          for (std::size_t z = 0; z < k_; ++z) {
            const double num = pi(z, xp);
            const double den = pi(z, x);
            if (num <= 0.0) continue;
            if (den <= 0.0) {
              best = kInf;
              break;
            }
            best = std::max(best, std::log(num / den));
          }
          table(x, xp) = best;
        }
      }
    }
    return term1_cache_.emplace(i, std::move(table)).first->second;
  }

  // max over feasible ordered pairs (x, x') of t1 + right + left (either
  // table may be null when the quilt lacks that side).
  double MaxOverPairs(std::size_t i, const Matrix* right, const Matrix* left) {
    const Matrix& t1 = Term1(i);
    const std::vector<char> feasible = FeasibleStates(i);
    double best = 0.0;
    for (std::size_t x = 0; x < k_; ++x) {
      if (!feasible[x]) continue;
      for (std::size_t xp = 0; xp < k_; ++xp) {
        if (x == xp || !feasible[xp]) continue;
        double v = t1(x, xp);
        if (right != nullptr) v += (*right)(x, xp);
        if (left != nullptr) v += (*left)(x, xp);
        if (std::isnan(v)) continue;  // -inf + inf: infeasible combination.
        best = std::max(best, v);
        if (best == kInf) return kInf;
      }
    }
    return best;
  }

  const Matrix& p_;
  const std::size_t k_;
  const std::size_t length_;
  const bool free_initial_;
  std::vector<Matrix> powers_;
  std::vector<Vector> marginals_;
  std::map<int, Matrix> right_cache_;
  std::map<std::size_t, Matrix> left_cache_;
  std::map<std::size_t, Matrix> term1_cache_;
};

// Computes the influence of one chain quilt with a prepared evaluator.
double EvaluateQuilt(ExactEvaluator* eval, const MarkovQuilt& quilt) {
  if (quilt.quilt.empty()) return 0.0;
  const int i = quilt.target;
  int a = 0, b = 0;
  for (int q : quilt.quilt) {
    if (q < i) a = i - q;
    if (q > i) b = q - i;
  }
  if (a > 0 && b > 0) return eval->TwoSided(static_cast<std::size_t>(i), a, b);
  if (a > 0) return eval->LeftOnly(static_cast<std::size_t>(i), a);
  return eval->RightOnly(static_cast<std::size_t>(i), b);
}

struct NodeScore {
  QuiltScore best;
};

// sigma_i = min over the Lemma 4.6 family (capped at max_nearby) of the
// quilt score for node i.
NodeScore ScoreNode(ExactEvaluator* eval, std::size_t length, int node,
                    double epsilon, std::size_t max_nearby) {
  NodeScore out;
  out.best.score = kInf;
  const std::vector<MarkovQuilt> family =
      ChainQuiltFamily(length, node, max_nearby);
  for (const MarkovQuilt& quilt : family) {
    const double e = EvaluateQuilt(eval, quilt);
    const double score =
        (e < epsilon)
            ? static_cast<double>(quilt.NearbyCount()) / (epsilon - e)
            : kInf;
    if (score < out.best.score) {
      out.best.quilt = quilt;
      out.best.influence = e;
      out.best.score = score;
    }
  }
  return out;
}

// True iff the quilt is two-sided with both endpoints strictly inside the
// chain (the precondition for the Lemma C.4 middle-node shortcut).
bool IsInteriorTwoSided(const MarkovQuilt& quilt, std::size_t length) {
  if (quilt.quilt.size() != 2) return false;
  return quilt.quilt.front() >= 0 &&
         quilt.quilt.back() <= static_cast<int>(length) - 1;
}

Result<ChainMqmResult> AnalyzeOneTheta(const MarkovChain& theta,
                                       std::size_t length,
                                       const ChainMqmOptions& options) {
  ChainMqmResult result;
  // Stationary shortcut: if q == pi (and pi > 0), the max-influence of every
  // interior quilt is independent of i and the middle node attains
  // sigma_max (Lemma C.4's argument applies verbatim to exact influences:
  // each Eq. (5) term is nonnegative after adding the marginal term).
  bool shortcut = false;
  if (options.allow_stationary_shortcut && length >= 3) {
    Result<Vector> pi = theta.StationaryDistribution();
    if (pi.ok() && DistanceL1(pi.value(), theta.initial()) < 1e-9 &&
        *std::min_element(pi.value().begin(), pi.value().end()) > 0.0) {
      shortcut = true;
    }
  }
  ExactEvaluator eval(theta.transition(), theta.initial(), length);
  if (shortcut) {
    const int mid = static_cast<int>(length / 2);
    NodeScore mid_score =
        ScoreNode(&eval, length, mid, options.epsilon, options.max_nearby);
    if (IsInteriorTwoSided(mid_score.best.quilt, length) ||
        mid_score.best.quilt.quilt.empty()) {
      result.sigma_max = mid_score.best.score;
      result.worst_node = mid;
      result.active_quilt = mid_score.best.quilt;
      result.influence = mid_score.best.influence;
      result.used_stationary_shortcut = true;
      return result;
    }
    // One-sided optimum at the middle: fall through to the full scan.
  }
  result.sigma_max = -kInf;
  for (std::size_t i = 0; i < length; ++i) {
    NodeScore ns = ScoreNode(&eval, length, static_cast<int>(i),
                             options.epsilon, options.max_nearby);
    if (ns.best.score > result.sigma_max) {
      result.sigma_max = ns.best.score;
      result.worst_node = static_cast<int>(i);
      result.active_quilt = ns.best.quilt;
      result.influence = ns.best.influence;
    }
  }
  return result;
}

}  // namespace

Result<double> ChainQuiltInfluenceExact(const MarkovChain& theta,
                                        std::size_t length,
                                        const MarkovQuilt& quilt) {
  if (theta.num_states() > 64) {
    return Status::NotSupported("exact influence supports at most 64 states");
  }
  if (quilt.target < 0 || quilt.target >= static_cast<int>(length)) {
    return Status::InvalidArgument("quilt target outside chain");
  }
  ExactEvaluator eval(theta.transition(), theta.initial(), length);
  return EvaluateQuilt(&eval, quilt);
}

Result<ChainMqmResult> MqmExactAnalyze(const std::vector<MarkovChain>& thetas,
                                       std::size_t length,
                                       const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (thetas.empty()) return Status::InvalidArgument("empty chain class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  for (const MarkovChain& theta : thetas) {
    if (theta.num_states() > 64) {
      return Status::NotSupported("exact influence supports at most 64 states");
    }
    if (theta.num_states() != thetas.front().num_states()) {
      return Status::InvalidArgument("state-space mismatch in Theta");
    }
  }
  ChainMqmResult worst;
  worst.sigma_max = -kInf;
  for (const MarkovChain& theta : thetas) {
    PF_ASSIGN_OR_RETURN(ChainMqmResult r, AnalyzeOneTheta(theta, length, options));
    if (r.sigma_max > worst.sigma_max) worst = r;
  }
  return worst;
}

Result<ChainMqmResult> MqmExactAnalyzeFreeInitial(
    const std::vector<Matrix>& transitions, std::size_t length,
    const ChainMqmOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({options.epsilon}));
  if (transitions.empty()) return Status::InvalidArgument("empty class");
  if (length == 0) return Status::InvalidArgument("length must be positive");
  ChainMqmResult worst;
  worst.sigma_max = -kInf;
  for (const Matrix& p : transitions) {
    if (p.rows() != p.cols() || p.rows() > 64 || !p.IsRowStochastic(1e-8)) {
      return Status::InvalidArgument(
          "transition matrices must be row-stochastic with <= 64 states");
    }
    ExactEvaluator eval(p, length);
    ChainMqmResult r;
    r.sigma_max = -kInf;
    for (std::size_t i = 0; i < length; ++i) {
      NodeScore ns = ScoreNode(&eval, length, static_cast<int>(i),
                               options.epsilon, options.max_nearby);
      if (ns.best.score > r.sigma_max) {
        r.sigma_max = ns.best.score;
        r.worst_node = static_cast<int>(i);
        r.active_quilt = ns.best.quilt;
        r.influence = ns.best.influence;
      }
    }
    if (r.sigma_max > worst.sigma_max) worst = r;
  }
  return worst;
}

}  // namespace pf
