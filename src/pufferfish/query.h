// Lipschitz queries (Definition 2.5). A query F : X^n -> R^k is L-Lipschitz
// in L1 if changing one record changes ||F||_1 by at most L. The mechanisms
// calibrate Laplace noise to L times a framework-dependent factor.
#ifndef PUFFERFISH_PUFFERFISH_QUERY_H_
#define PUFFERFISH_PUFFERFISH_QUERY_H_

#include <functional>
#include <string>

#include "common/histogram.h"
#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// \brief A scalar L-Lipschitz query over discrete state sequences.
struct ScalarQuery {
  std::string name;
  /// The query function.
  std::function<double(const StateSequence&)> fn;
  /// Lipschitz constant L (Definition 2.5).
  double lipschitz = 1.0;
};

/// \brief A vector-valued L-Lipschitz (in L1) query over state sequences.
struct VectorQuery {
  std::string name;
  std::function<Vector(const StateSequence&)> fn;
  double lipschitz = 1.0;
  /// Output dimension k.
  std::size_t dim = 1;
};

/// Sum of states sum_t X_t; Lipschitz constant (k-1) for states in [0, k).
ScalarQuery SumQuery(std::size_t k);

/// Mean of states (1/T) sum_t X_t for fixed length T; the Section 5.2 query
/// (Lipschitz (k-1)/T; 1/T for binary chains).
ScalarQuery MeanStateQuery(std::size_t k, std::size_t length);

/// Fraction of time in state `state` for fixed length T (1/T-Lipschitz).
ScalarQuery StateFrequencyQuery(int state, std::size_t length);

/// Count histogram over k states (2-Lipschitz: one change moves two bins).
VectorQuery CountHistogramQuery(std::size_t k);

/// Relative frequency histogram for fixed length T — the query of every
/// experiment in Section 5 (2/T-Lipschitz).
VectorQuery RelativeFrequencyQuery(std::size_t k, std::size_t length);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_QUERY_H_
