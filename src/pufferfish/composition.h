// Sequential composition accounting for the Markov Quilt Mechanism
// (Theorem 4.4). Pufferfish does not compose in general, but MQM releases
// that share the same quilt sets S_{Q,i} — and hence the same *active*
// quilts (Definition 4.5) — compose linearly: K releases at epsilon each
// give K * epsilon Pufferfish privacy (K * max_k epsilon_k when levels
// differ, provided the same S_{Q,i} is used throughout).
#ifndef PUFFERFISH_PUFFERFISH_COMPOSITION_H_
#define PUFFERFISH_PUFFERFISH_COMPOSITION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "graphical/markov_quilt.h"

namespace pf {

/// \brief Tracks repeated MQM releases over the same database and reports
/// the composed privacy guarantee of Theorem 4.4.
class CompositionAccountant {
 public:
  CompositionAccountant() = default;

  /// \brief Records one release made at privacy level `epsilon` whose
  /// per-node active quilt at the worst node is `active_quilt` (used to
  /// verify the Theorem 4.4 precondition that all releases share active
  /// quilts). Non-positive or non-finite epsilon is rejected with
  /// InvalidArgument and leaves the ledger untouched — silently accounting
  /// it would corrupt TotalEpsilon for every later release.
  Status RecordRelease(double epsilon, const MarkovQuilt& active_quilt);

  /// Number of releases recorded so far (K).
  std::size_t num_releases() const { return epsilons_.size(); }

  /// \brief Composed privacy parameter: K * max_k epsilon_k (Theorem 4.4).
  /// Zero when no release has been recorded.
  double TotalEpsilon() const;

  /// Largest single-release epsilon recorded so far (0 when empty); with
  /// num_releases() this lets callers price a prospective release as
  /// (K+1) * max(MaxEpsilon(), epsilon) before committing it.
  double MaxEpsilon() const { return max_epsilon_; }

  /// \brief True when `quilt` matches the active quilt of every recorded
  /// release (vacuously true for an empty ledger). Lets a budget ledger
  /// *refuse* a Theorem 4.4 violation up front instead of detecting it
  /// after the fact via ActiveQuiltsConsistent().
  bool MatchesActiveQuilt(const MarkovQuilt& quilt) const;

  /// \brief RecordRelease that *refuses* an active-quilt mismatch with
  /// FailedPrecondition (ledger untouched) instead of recording it as
  /// inconsistent — the serving-ledger variant, computing the quilt
  /// signature once for check and record.
  Status RecordReleaseStrict(double epsilon, const MarkovQuilt& active_quilt);

  /// Forgets all recorded releases.
  void Reset();

  /// True iff every recorded release used the same active quilt — the
  /// condition under which Theorem 4.4's linear composition is proved.
  /// (Identical epsilon and S_{Q,i} across releases guarantee this.)
  bool ActiveQuiltsConsistent() const { return consistent_; }

 private:
  static std::string QuiltSignature(const MarkovQuilt& q);

  std::vector<double> epsilons_;
  double max_epsilon_ = 0.0;
  std::string first_signature_;
  bool consistent_ = true;
};

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_COMPOSITION_H_
