// Sequential composition accounting for the Markov Quilt Mechanism
// (Theorem 4.4). Pufferfish does not compose in general, but MQM releases
// that share the same quilt sets S_{Q,i} — and hence the same *active*
// quilts (Definition 4.5) — compose linearly: K releases at epsilon each
// give K * epsilon Pufferfish privacy (K * max_k epsilon_k when levels
// differ, provided the same S_{Q,i} is used throughout).
#ifndef PUFFERFISH_PUFFERFISH_COMPOSITION_H_
#define PUFFERFISH_PUFFERFISH_COMPOSITION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "graphical/markov_quilt.h"

namespace pf {

/// \brief Deterministic budget-admission predicate shared by every ledger:
/// true iff `num_releases` releases at a worst per-release level of
/// `max_epsilon` fit a budget of `budget` under Theorem 4.4 pricing
/// (composed level K * max_epsilon).
///
/// The comparison forgives only floating-point dust: the product
/// K * max_epsilon is admitted when it exceeds the budget by at most
/// kBudgetTieUlps relative units (~3.6e-15 relative — decimal epsilons and
/// budgets carry ~1 ulp of representation error each and the product one
/// more rounding, so a true tie like B = 0.3, eps = 0.1, K = 3 lands
/// within 2 ulps). A genuine overrun is off by a whole epsilon — at least
/// 1/K relative — so the documented "exactly floor(B / eps) equal-epsilon
/// releases" guarantee holds on every platform for any K below ~1e13,
/// and no release that truly exceeds the budget is ever admitted. The rule
/// is a pure function of its arguments: the same ledger history admits the
/// same release everywhere, deterministically.
///
/// [[nodiscard]]: an admission check whose answer is dropped is a budget
/// bug by construction — callers must branch on it before releasing.
[[nodiscard]] bool ComposedBudgetAdmits(std::size_t num_releases,
                                        double max_epsilon, double budget);

/// \brief Tracks repeated MQM releases over the same database and reports
/// the composed privacy guarantee of Theorem 4.4.
class CompositionAccountant {
 public:
  CompositionAccountant() = default;

  /// \brief Records one release made at privacy level `epsilon` whose
  /// per-node active quilt at the worst node is `active_quilt` (used to
  /// verify the Theorem 4.4 precondition that all releases share active
  /// quilts). Non-positive or non-finite epsilon is rejected with
  /// InvalidArgument and leaves the ledger untouched — silently accounting
  /// it would corrupt TotalEpsilon for every later release.
  Status RecordRelease(double epsilon, const MarkovQuilt& active_quilt);

  /// Number of releases recorded so far (K).
  std::size_t num_releases() const { return epsilons_.size(); }

  /// \brief Composed privacy parameter: K * max_k epsilon_k (Theorem 4.4).
  /// Zero when no release has been recorded.
  double TotalEpsilon() const;

  /// Largest single-release epsilon recorded so far (0 when empty); with
  /// num_releases() this lets callers price a prospective release as
  /// (K+1) * max(MaxEpsilon(), epsilon) before committing it.
  double MaxEpsilon() const { return max_epsilon_; }

  /// \brief True when `quilt` matches the active quilt of every recorded
  /// release (vacuously true for an empty ledger). Lets a budget ledger
  /// *refuse* a Theorem 4.4 violation up front instead of detecting it
  /// after the fact via ActiveQuiltsConsistent().
  [[nodiscard]] bool MatchesActiveQuilt(const MarkovQuilt& quilt) const;

  /// \brief RecordRelease that *refuses* an active-quilt mismatch with
  /// FailedPrecondition (ledger untouched) instead of recording it as
  /// inconsistent — the serving-ledger variant, computing the quilt
  /// signature once for check and record.
  Status RecordReleaseStrict(double epsilon, const MarkovQuilt& active_quilt);

  /// \brief Atomic batch variant of RecordReleaseStrict: records every
  /// release in `epsilons` (all sharing `active_quilt` — the caller
  /// verifies that, Theorem 4.4's precondition) or none of them. Any
  /// invalid epsilon (InvalidArgument) or a quilt mismatch with the
  /// ledger's earlier releases (FailedPrecondition) refuses the whole
  /// batch with the ledger untouched — the columnar serving path relies on
  /// this so a refused batch never debits partial epsilon.
  Status RecordBatchStrict(const std::vector<double>& epsilons,
                           const MarkovQuilt& active_quilt);

  /// Forgets all recorded releases.
  void Reset();

  /// True iff every recorded release used the same active quilt — the
  /// condition under which Theorem 4.4's linear composition is proved.
  /// (Identical epsilon and S_{Q,i} across releases guarantee this.)
  bool ActiveQuiltsConsistent() const { return consistent_; }

 private:
  static std::string QuiltSignature(const MarkovQuilt& q);

  std::vector<double> epsilons_;
  double max_epsilon_ = 0.0;
  std::string first_signature_;
  bool consistent_ = true;
};

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_COMPOSITION_H_
