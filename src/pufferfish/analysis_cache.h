// Caching for the expensive half of the mechanism lifecycle. An analysis is
// data-independent, so its result is a pure function of (model fingerprint,
// configuration, epsilon) — the cache key. Repeated releases, vector/batch
// queries, and benchmark sweeps that revisit an epsilon then amortize the
// O(T k^2)-to-O(k^Q) quilt search down to one computation.
#ifndef PUFFERFISH_PUFFERFISH_ANALYSIS_CACHE_H_
#define PUFFERFISH_PUFFERFISH_ANALYSIS_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "pufferfish/mechanism.h"

namespace pf {

/// \brief One cache entry in exportable form: the full cache key plus the
/// shared plan. Produced by AnalysisCache::ExportPlans and consumed by
/// ImportPlans; pufferfish/plan_store.h serializes vectors of these to a
/// warm-restart snapshot.
struct CachedPlan {
  std::uint64_t fingerprint = 0;
  /// Raw bit pattern of the analysis epsilon (DoubleBits).
  std::uint64_t epsilon_bits = 0;
  MechanismKind kind = MechanismKind::kLaplaceDp;
  std::shared_ptr<const MechanismPlan> plan;
};

/// \brief Thread-safe cache of MechanismPlans keyed by
/// (Mechanism::Fingerprint(), epsilon).
///
/// Plans are shared immutable objects; a hit bumps the plan's
/// cache_hit_count() so callers (and the acceptance tests) can verify that
/// re-analysis was skipped. Failed analyses are not cached.
class AnalysisCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Plans produced by extending a cached resumable analysis to a longer
    /// record length instead of a cold Analyze (GetOrExtend's fast path).
    std::uint64_t extensions = 0;
  };

  /// `max_entries` bounds resident plans (plans can hold O(nodes) quilt
  /// diagnostics, so an unbounded map would grow until OOM on a long-lived
  /// server sweeping epsilons/models). When full, the oldest inserted entry
  /// is evicted first. 0 means unbounded.
  explicit AnalysisCache(std::size_t max_entries = 1024)
      : max_entries_(max_entries) {}
  AnalysisCache(const AnalysisCache&) = delete;
  AnalysisCache& operator=(const AnalysisCache&) = delete;

  /// \brief Returns the cached plan for (mechanism, epsilon) or runs
  /// mechanism.Analyze(epsilon), stores, and returns it. The analysis runs
  /// outside the cache lock, so slow analyses of *different* keys proceed
  /// concurrently (the loser of a duplicate-key race discards its result).
  /// Safe to call from any number of threads; the per-plan hit counter and
  /// the hit/miss stats are bumped outside the lock (relaxed atomics), so
  /// concurrent hits on one hot plan never serialize on the cache mutex.
  Result<std::shared_ptr<const MechanismPlan>> GetOrAnalyze(
      const Mechanism& mechanism, double epsilon);

  /// \brief GetOrAnalyze with prefix-fingerprint chaining for growing
  /// records: on an exact-key miss, if the mechanism has a resumable
  /// analysis (Mechanism::PrefixFingerprint() != 0) the cache looks up the
  /// retained analysis for (length-free model, epsilon) and ExtendTo()s it
  /// to the mechanism's current length — bit-identical to a cold Analyze,
  /// but O(max_nearby + delta) instead of O(T) (stats().extensions counts
  /// these). A missing or longer-than-target chain entry falls back to a
  /// cold resumable analysis, which seeds the chain for future appends;
  /// mechanisms without resumable support behave exactly like GetOrAnalyze.
  Result<std::shared_ptr<const MechanismPlan>> GetOrExtend(
      const Mechanism& mechanism, double epsilon);

  /// \brief True iff a plan for exactly (mechanism.Fingerprint(), epsilon)
  /// is resident. A pure probe: no counters move, no analysis runs. The
  /// engine's shed-cold policy uses this to distinguish warm requests
  /// (always served) from cold ones (shed under overload).
  bool Contains(const Mechanism& mechanism, double epsilon) const;

  /// \brief Snapshot of every resident plan in insertion (eviction) order,
  /// with its full cache key. The shared_ptrs alias the cached plans, so
  /// the export is cheap and consistent even while other threads keep
  /// hitting the cache. Resumable chain state is NOT exported — it is
  /// O(T) mutable scan state; a restored cache re-seeds chains cold on the
  /// first append (see GetOrExtend).
  std::vector<CachedPlan> ExportPlans() const;

  /// \brief Inserts entries that are not already resident (existing keys
  /// keep their incumbent plan — a live cache is fresher than a snapshot),
  /// respecting max_entries_ with the usual FIFO eviction. Entries with a
  /// null plan are skipped. Returns the number of plans actually inserted.
  /// Neither hit nor miss counters move: an import is neither.
  std::size_t ImportPlans(const std::vector<CachedPlan>& entries);

  Stats stats() const;
  std::size_t size() const;
  void Clear();

 private:
  // The kind rides alongside the fingerprint so a 64-bit hash collision
  // across mechanism kinds can never serve the wrong plan. Within one kind
  // the fingerprint covers the full model bit-for-bit (plus a per-family
  // tag where two classes share a kind, e.g. the free-initial MQMExact
  // variant); collisions there require adversarially chosen models.
  struct Key {
    std::uint64_t fingerprint;
    std::uint64_t epsilon_bits;
    MechanismKind kind;
    bool operator==(const Key& other) const {
      return fingerprint == other.fingerprint &&
             epsilon_bits == other.epsilon_bits && kind == other.kind;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // Splitmix-style scramble of the words.
      std::uint64_t h = k.fingerprint + 0x9E3779B97F4A7C15u * k.epsilon_bits;
      h += static_cast<std::uint64_t>(k.kind);
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9u;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };

  /// Evicts the oldest entries until size < max_entries_.
  void EvictIfFull() PF_REQUIRES(mutex_);

  /// One retained resumable analysis, chained by prefix fingerprint. The
  /// per-entry mutex serializes extensions (ExtendTo mutates) without
  /// blocking the plan map or other chains.
  struct ChainEntry {
    Mutex mutex;
    std::unique_ptr<ResumableAnalysis> analysis PF_GUARDED_BY(mutex);
  };

  /// The exact-key hit path shared by GetOrAnalyze and GetOrExtend:
  /// returns the cached plan (bumping hit counters) or nullptr.
  std::shared_ptr<const MechanismPlan> TryGetPlan(const Key& key);

  /// Stores `plan` under the exact key (duplicate-insert race keeps the
  /// incumbent) and returns the stored plan, bumping hit/miss stats.
  std::shared_ptr<const MechanismPlan> StorePlan(
      const Key& key, std::shared_ptr<const MechanismPlan> plan);

  const std::size_t max_entries_;
  mutable Mutex mutex_;
  std::unordered_map<Key, std::shared_ptr<const MechanismPlan>, KeyHash> plans_
      PF_GUARDED_BY(mutex_);
  /// FIFO eviction queue.
  std::deque<Key> insertion_order_ PF_GUARDED_BY(mutex_);

  /// Resumable analyses keyed like plans but by PREFIX fingerprint (length
  /// removed). Entries hold O(T) scan state, so the store is bounded by
  /// max_entries_ with the same FIFO rule.
  mutable Mutex chains_mutex_;
  std::unordered_map<Key, std::shared_ptr<ChainEntry>, KeyHash> chains_
      PF_GUARDED_BY(chains_mutex_);
  std::deque<Key> chains_order_ PF_GUARDED_BY(chains_mutex_);

  // Lock-free counters: stats() and the hot hit path never contend on
  // mutex_ beyond the map lookup itself.
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> extensions_{0};
};

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_ANALYSIS_CACHE_H_
