// The Markov Quilt Mechanism (Algorithm 2) for general Bayesian networks.
// For each protected node X_i it searches a set of Markov quilts, scores
// each quilt X_Q (with nearby set X_N) as
//    sigma(X_Q) = card(X_N) / (epsilon - e_Theta(X_Q | X_i))
// when the max-influence e_Theta(X_Q|X_i) < epsilon (infinite otherwise),
// takes sigma_i = min over quilts and sigma_max = max_i sigma_i, and
// releases F(D) + L * sigma_max * Lap(1). Theorem 4.3 proves
// epsilon-Pufferfish privacy provided the trivial quilt is always searched.
//
// Scaling (this layer's job): max-influence inference runs on variable
// elimination by default — cost exponential in the moral graph's induced
// treewidth, not its node count — quilt candidates come from a separator
// search that stays O(radius) per node on large networks, and the per-node
// sigma_i loop deduplicates nodes by canonical rooted form (see
// pufferfish/node_classes.h), all bit-identical to the exhaustive
// reference paths they replace. Trees, stars, and grids of hundreds of
// nodes analyze in milliseconds where the enumeration reference caps out
// near 20 binary nodes. The Markov-chain specializations (MqmExact,
// MqmApprox) remain the right tool for chains, scaling to T ~ 10^6.
#ifndef PUFFERFISH_PUFFERFISH_MARKOV_QUILT_MECHANISM_H_
#define PUFFERFISH_PUFFERFISH_MARKOV_QUILT_MECHANISM_H_

#include <vector>

#include "common/memory_stats.h"
#include "common/random.h"
#include "common/status.h"
#include "graphical/bayesian_network.h"
#include "graphical/elimination.h"
#include "graphical/markov_quilt.h"

namespace pf {

/// A quilt together with its computed max-influence and score.
struct QuiltScore {
  MarkovQuilt quilt;
  /// e_Theta(X_Q | X_i) (Definition 4.1); +infinity if unbounded.
  double influence = 0.0;
  /// card(X_N) / (epsilon - influence); +infinity when influence >= epsilon.
  double score = 0.0;
};

/// Result of the quilt search: the noise multiplier, per-node choices, and
/// analysis-cost diagnostics.
struct MqmAnalysis {
  /// sigma_max = max_i min_quilt score. Laplace scale is L * sigma_max.
  double sigma_max = 0.0;
  /// Per node: the active quilt (Definition 4.5) achieving sigma_i.
  std::vector<QuiltScore> active;
  /// Node attaining sigma_max.
  int worst_node = 0;

  // ---- Analysis-cost diagnostics ----
  /// Nodes the sigma_i loop covered (the network's node count).
  std::size_t total_nodes = 0;
  /// sigma_i searches actually executed: one per canonical node class
  /// (== total_nodes when dedup is off or every node is structurally
  /// unique).
  std::size_t scored_nodes = 0;
  /// Largest elimination clique (minus one) observed across all influence
  /// inferences — the induced width actually paid. 0 under the
  /// enumeration backend.
  std::size_t induced_width = 0;
  /// Min-fill induced width of the (union) moral graph — the treewidth
  /// upper bound the mechanism-selection policy screens against.
  std::size_t treewidth_bound = 0;
  /// Memory accounting of the analysis. `peak_bytes`: peak bytes of
  /// simultaneously live factor tables in any single influence inference
  /// (0 under the enumeration backend). `arena_retained_bytes`: bytes held
  /// by the per-thread elimination workspace arenas for reuse.
  /// `mallocs`: arena block allocations during the analysis — 0 once the
  /// workspaces are warm. The latter two are read from process-wide arena
  /// counters, so concurrent unrelated analyses can inflate them; the
  /// steady-state zero of `mallocs` is exact when this analysis runs
  /// alone.
  MemoryStats memory;
  /// Work saved by the node-class dedup: total_nodes / scored_nodes.
  double dedup_ratio() const {
    return scored_nodes == 0
               ? 1.0
               : static_cast<double>(total_nodes) /
                     static_cast<double>(scored_nodes);
  }
};

/// How per-node quilt candidates are generated.
enum class QuiltSearchMode {
  /// Exhaustive up to MqmAnalyzeOptions::exhaustive_node_limit nodes,
  /// separator-driven beyond.
  kAuto,
  /// All separators of size <= max_quilt_size (EnumerateQuilts) — the
  /// reference search; exponential in max_quilt_size.
  kExhaustive,
  /// BFS-radius-bounded vertex cuts around the target (SeparatorQuilts) —
  /// O(max_radius) candidates per node. The trivial quilt is always
  /// included (Theorem 4.3), so this narrows the search, never the
  /// guarantee.
  kSeparator,
};

/// Tuning knobs for the Algorithm 2 search.
struct MqmAnalyzeOptions {
  /// Largest separator size searched when quilts are enumerated
  /// exhaustively. (The sphere search carries its own radius and size
  /// caps in `separator`.)
  std::size_t max_quilt_size = 2;
  /// Guard on the inference cost measure: the joint-assignment space for
  /// the enumeration backend (the historical meaning), the largest
  /// elimination clique table for the variable-elimination backend.
  /// Exceeding it fails the analysis with InvalidArgument.
  std::size_t enumeration_limit = 1u << 22;
  /// Worker threads for the per-class sigma_i loop and the canonical-form
  /// construction; 0 = hardware concurrency (the library-wide convention,
  /// see common/parallel.h). Results are bit-identical for every value
  /// (classes are formed sequentially, score independently, and the
  /// sigma_max reduction is sequential).
  std::size_t num_threads = 0;
  /// Inference backend for max-influence conditionals. kAuto resolves to
  /// variable elimination (the scalable default); kEnumeration is the
  /// exponential-in-node-count reference ground truth.
  InferenceBackend backend = InferenceBackend::kAuto;
  /// Quilt candidate generation (see QuiltSearchMode).
  QuiltSearchMode quilt_search = QuiltSearchMode::kAuto;
  /// kAuto search threshold: networks with more nodes than this switch
  /// from the exhaustive subset search to the separator search.
  std::size_t exhaustive_node_limit = 16;
  /// Knobs for the separator search (radius and sphere-size caps).
  SeparatorSearchOptions separator;
  /// \brief Score one representative node per canonical class instead of
  /// every node. Nodes are keyed by their canonical rooted form (local
  /// topology + CPT content + boundary-distance layering, see
  /// pufferfish/node_classes.h); membership is verified by exact
  /// byte comparison of the full form — never by hash alone — and every
  /// node's score is computed as a pure function of that form, so results
  /// are bit-identical to the exhaustive scan. Off = score every node
  /// (the reference, kept for verification and benchmarks).
  bool dedup_nodes = true;
};

/// \brief The Algorithm 2 quilt score: card(X_N) / (epsilon - influence)
/// when influence < epsilon, +infinity otherwise. Shared by the general,
/// exact-chain, and approx-chain searches.
double QuiltScoreFromInfluence(std::size_t nearby_count, double epsilon,
                               double influence);

/// \brief Max-influence e_Theta(X_Q|X_i) of a quilt under a class of
/// networks (Definition 4.1): the largest log-ratio
/// log P(X_Q = x_Q | X_i = a, theta) / P(X_Q = x_Q | X_i = b, theta)
/// over values a, b with positive probability, quilt assignments x_Q, and
/// theta in Theta. Returns +infinity when the supports differ, and
/// InvalidArgument when the backend's guarded cost measure exceeds `limit`
/// (the joint-assignment space for the default enumeration backend — the
/// historical behavior — or the largest elimination clique table for
/// kVariableElimination / kAuto).
Result<double> QuiltMaxInfluence(const std::vector<BayesianNetwork>& thetas,
                                 const MarkovQuilt& quilt,
                                 std::size_t limit = 1u << 22,
                                 InferenceBackend backend =
                                     InferenceBackend::kEnumeration,
                                 EliminationStats* stats = nullptr);

/// \brief Max-influence over prebuilt factor systems (one factor list per
/// theta, shared arity table) — the inner loop of the sigma_i search,
/// exposed so callers scoring many quilts against one class avoid
/// rebuilding factors per quilt. Semantics match QuiltMaxInfluence.
Result<double> QuiltMaxInfluenceFactors(
    const std::vector<std::vector<Factor>>& theta_factors,
    const std::vector<int>& arities, const MarkovQuilt& quilt,
    std::size_t limit, InferenceBackend backend,
    EliminationStats* stats = nullptr);

/// \brief Runs the Algorithm 2 search with quilts generated per
/// options.quilt_search (always including the trivial quilt, as Theorem
/// 4.3 requires) over the UNION moral graph of the class — a separator of
/// the union graph separates in every theta, which is what Definition 4.2
/// demands of the whole class. All networks must share node count and
/// arities. The per-node sigma_i searches run on options.num_threads
/// threads and deduplicate by canonical node class unless
/// options.dedup_nodes is off.
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const MqmAnalyzeOptions& options);

/// Back-compat convenience overload (single-threaded).
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    std::size_t max_quilt_size = 2, std::size_t enumeration_limit = 1u << 22);

/// \brief As above but with caller-supplied quilt sets S_{Q,i} (one vector
/// per node). Each set must contain the trivial quilt; validated. Scores
/// every node against its own set in the caller's labeling (no node-class
/// dedup — arbitrary sets defeat the canonical-form argument).
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    const MqmAnalyzeOptions& options);

/// Back-compat convenience overload (single-threaded).
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    std::size_t enumeration_limit = 1u << 22);

/// Releases a scalar L-Lipschitz query value: F(D) + L * sigma_max * Lap(1).
double MqmReleaseScalar(double value, double lipschitz, double sigma_max, Rng* rng);

/// Releases an L1 L-Lipschitz vector query: i.i.d. L * sigma_max * Lap(1)
/// noise per coordinate (the vector-valued extension of Section 4.2).
Vector MqmReleaseVector(const Vector& value, double lipschitz, double sigma_max,
                        Rng* rng);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_MARKOV_QUILT_MECHANISM_H_
