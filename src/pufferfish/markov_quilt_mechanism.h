// The Markov Quilt Mechanism (Algorithm 2) for general Bayesian networks.
// For each protected node X_i it searches a set of Markov quilts, scores
// each quilt X_Q (with nearby set X_N) as
//    sigma(X_Q) = card(X_N) / (epsilon - e_Theta(X_Q | X_i))
// when the max-influence e_Theta(X_Q|X_i) < epsilon (infinite otherwise),
// takes sigma_i = min over quilts and sigma_max = max_i sigma_i, and
// releases F(D) + L * sigma_max * Lap(1). Theorem 4.3 proves
// epsilon-Pufferfish privacy provided the trivial quilt is always searched.
//
// Exact max-influence is computed by enumeration inference, so this class
// targets small networks; the Markov-chain specializations (MqmExact,
// MqmApprox) scale to T ~ 10^6.
#ifndef PUFFERFISH_PUFFERFISH_MARKOV_QUILT_MECHANISM_H_
#define PUFFERFISH_PUFFERFISH_MARKOV_QUILT_MECHANISM_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "graphical/bayesian_network.h"
#include "graphical/markov_quilt.h"

namespace pf {

/// A quilt together with its computed max-influence and score.
struct QuiltScore {
  MarkovQuilt quilt;
  /// e_Theta(X_Q | X_i) (Definition 4.1); +infinity if unbounded.
  double influence = 0.0;
  /// card(X_N) / (epsilon - influence); +infinity when influence >= epsilon.
  double score = 0.0;
};

/// Result of the quilt search: the noise multiplier and per-node choices.
struct MqmAnalysis {
  /// sigma_max = max_i min_quilt score. Laplace scale is L * sigma_max.
  double sigma_max = 0.0;
  /// Per node: the active quilt (Definition 4.5) achieving sigma_i.
  std::vector<QuiltScore> active;
  /// Node attaining sigma_max.
  int worst_node = 0;
};

/// Tuning knobs for the Algorithm 2 search.
struct MqmAnalyzeOptions {
  /// Largest separator size searched when quilts are auto-enumerated.
  std::size_t max_quilt_size = 2;
  /// Guard on the joint-assignment space of the enumeration inference:
  /// networks whose product of arities exceeds it fail the analysis with
  /// InvalidArgument instead of enumerating.
  std::size_t enumeration_limit = 1u << 22;
  /// Worker threads for the per-node sigma_i loop; 0 = hardware
  /// concurrency (the library-wide convention, see common/parallel.h).
  /// Results are identical for every value (each node computes
  /// independently; the sigma_max reduction is sequential).
  std::size_t num_threads = 0;
};

/// \brief The Algorithm 2 quilt score: card(X_N) / (epsilon - influence)
/// when influence < epsilon, +infinity otherwise. Shared by the general,
/// exact-chain, and approx-chain searches.
double QuiltScoreFromInfluence(std::size_t nearby_count, double epsilon,
                               double influence);

/// \brief Max-influence e_Theta(X_Q|X_i) of a quilt under a class of
/// networks (Definition 4.1): the largest log-ratio
/// log P(X_Q = x_Q | X_i = a, theta) / P(X_Q = x_Q | X_i = b, theta)
/// over values a, b with positive probability, quilt assignments x_Q, and
/// theta in Theta. Returns +infinity when the supports differ, and
/// InvalidArgument when a network's joint-assignment space exceeds
/// `enumeration_limit`.
Result<double> QuiltMaxInfluence(const std::vector<BayesianNetwork>& thetas,
                                 const MarkovQuilt& quilt,
                                 std::size_t enumeration_limit = 1u << 22);

/// \brief Runs the Algorithm 2 search over quilts generated from moral-graph
/// separators of size <= options.max_quilt_size (plus the trivial quilt, as
/// Theorem 4.3 requires). All networks must share node count and arities.
/// The per-node sigma_i searches run on options.num_threads threads.
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const MqmAnalyzeOptions& options);

/// Back-compat convenience overload (single-threaded).
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    std::size_t max_quilt_size = 2, std::size_t enumeration_limit = 1u << 22);

/// \brief As above but with caller-supplied quilt sets S_{Q,i} (one vector
/// per node). Each set must contain the trivial quilt; validated.
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    const MqmAnalyzeOptions& options);

/// Back-compat convenience overload (single-threaded).
Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    std::size_t enumeration_limit = 1u << 22);

/// Releases a scalar L-Lipschitz query value: F(D) + L * sigma_max * Lap(1).
double MqmReleaseScalar(double value, double lipschitz, double sigma_max, Rng* rng);

/// Releases an L1 L-Lipschitz vector query: i.i.d. L * sigma_max * Lap(1)
/// noise per coordinate (the vector-valued extension of Section 4.2).
Vector MqmReleaseVector(const Vector& value, double lipschitz, double sigma_max,
                        Rng* rng);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_MARKOV_QUILT_MECHANISM_H_
