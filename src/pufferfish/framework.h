// Core Pufferfish framework types (Section 2.1): secrets, secret pairs, and
// distribution classes Theta. This library targets the "attribute" setting
// of Section 4.1 — data X = (X_1, ..., X_n), secrets s_i^a = "X_i = a",
// secret pairs all (s_i^a, s_i^b) with a != b — which subsumes both worked
// applications (activity monitoring, flu status).
#ifndef PUFFERFISH_PUFFERFISH_FRAMEWORK_H_
#define PUFFERFISH_PUFFERFISH_FRAMEWORK_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "graphical/markov_chain.h"

namespace pf {

/// The event X_{variable} = value (a secret s_i^a of Section 4.1).
struct AttributeSecret {
  int variable;
  int value;
};

/// A secret pair (s_i^a, s_i^b), a != b: the adversary must not distinguish
/// "X_i = value_a" from "X_i = value_b".
struct AttributeSecretPair {
  int variable;
  int value_a;
  int value_b;
};

/// All secret pairs for n variables over a k-valued domain — the Q of the
/// Section 4.1 instantiation (ordered pairs are redundant; unordered listed).
std::vector<AttributeSecretPair> AllAttributeSecretPairs(std::size_t n, int arity);

/// \brief Privacy parameter holder with validation.
struct PrivacyParams {
  double epsilon;
};

/// Validates epsilon > 0.
Status ValidatePrivacyParams(const PrivacyParams& params);

/// \brief Mixing summary (pi_min, g) of a class of Markov chains — the two
/// quantities MQMApprox needs (Eqs. (6), (7)/(14)).
struct ChainClassSummary {
  /// pi_min_Theta: least stationary probability of any state, any theta.
  double pi_min = 0.0;
  /// g_Theta: least eigengap, with the reversible doubling of Eq. (14)
  /// applied iff *all* chains in the class are reversible.
  double eigengap = 0.0;
  /// True iff every chain in the class is reversible.
  bool all_reversible = false;
};

/// Computes the (pi_min, g) summary of an explicit list of chains. Fails if
/// any chain is reducible, periodic, or has a zero stationary probability
/// (the Lemma 4.8 preconditions).
Result<ChainClassSummary> SummarizeChainClass(const std::vector<MarkovChain>& thetas);

/// \brief The Section 5.2 synthetic distribution class: binary chains with
/// p0 = P(X_{t+1}=0 | X_t=0) and p1 = P(X_{t+1}=1 | X_t=1) ranging over
/// [alpha, beta], and all initial distributions on the 2-simplex.
class BinaryChainIntervalClass {
 public:
  /// Requires 0 < alpha <= beta < 1.
  static Result<BinaryChainIntervalClass> Make(double alpha, double beta);

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  /// Transition matrix for given (p0, p1).
  static Matrix TransitionFor(double p0, double p1);

  /// True iff (p0, p1) is inside [alpha, beta]^2.
  bool Contains(double p0, double p1) const;

  /// Grid of transition matrices covering [alpha, beta]^2 with the given
  /// step (both endpoints included). Used by MQMExact's search over Theta.
  std::vector<Matrix> TransitionGrid(double step) const;

  /// \brief Closed-form class summary. For a binary chain the stationary
  /// distribution is ((1-p1)/(2-p0-p1), (1-p0)/(2-p0-p1)) and the second
  /// eigenvalue is p0 + p1 - 1 (always reversible), so
  ///   pi_min = (1-beta)/(2-alpha-beta),
  ///   g      = 2 * (1 - max(|2beta-1|, |2alpha-1|)).
  ChainClassSummary Summary() const;

 private:
  BinaryChainIntervalClass(double alpha, double beta) : alpha_(alpha), beta_(beta) {}
  double alpha_, beta_;
};

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_FRAMEWORK_H_
