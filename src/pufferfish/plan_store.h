// Warm-restart persistence for analyzed mechanism plans. A serving process
// that restarts (deploy, crash, migration) loses its AnalysisCache and
// would re-pay the O(T k^2) / O(k^Q) analysis cost for every (model,
// epsilon) it serves; a snapshot saved before shutdown and loaded at boot
// turns that cold start into a file read. The snapshot holds exactly what
// AnalysisCache::ExportPlans exports: (fingerprint, epsilon_bits, kind)
// keys plus the full MechanismPlan — sigma, applicability, and every
// diagnostic — so a restored plan is bit-identical to the one analyzed.
//
// Format "PFPLAN01" (version-tagged, checksummed, fixed-width):
//
//   bytes 0..7    magic + version tag "PFPLAN01" (ASCII)
//   u64           entry count
//   per entry     fingerprint, epsilon_bits, kind, serialized plan
//   u64           FNV-1a checksum of every preceding byte
//
// All integers are little-endian u64; doubles are stored as their raw bit
// patterns, so round-trips are bit-exact (including signed zeros, NaNs,
// and the +infinity sigmas of inapplicable plans). Loads are rejected —
// never partially applied — on a bad magic/version tag, a truncated or
// overlong payload, or a checksum mismatch (bit rot, torn write).
//
// Deliberately NOT serialized:
//  - cache_hit_count: a process-lifetime diagnostic; restored plans start
//    at zero with a fresh counter.
//  - resumable chain scan state: O(T) mutable buffers. A restored cache
//    serves exact-length hits immediately; the first *append* past a
//    snapshot length re-seeds the chain with one cold resumable analysis
//    (correct, just not incremental) and is O(delta) from then on.
#ifndef PUFFERFISH_PUFFERFISH_PLAN_STORE_H_
#define PUFFERFISH_PUFFERFISH_PLAN_STORE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "pufferfish/analysis_cache.h"

namespace pf {

/// Serializes `entries` to the PFPLAN01 wire format (in memory).
std::string EncodePlanSnapshot(const std::vector<CachedPlan>& entries);

/// \brief Parses a PFPLAN01 snapshot. Rejects (InvalidArgument) bad
/// magic/version tags, truncation, trailing garbage, and checksum
/// mismatches; on success every plan carries a fresh zeroed hit counter.
Result<std::vector<CachedPlan>> DecodePlanSnapshot(const std::string& bytes);

/// \brief Writes `entries` to `path` atomically: the snapshot is encoded,
/// written to a sibling temp file, flushed, and renamed over `path`, so a
/// crash mid-save leaves either the old snapshot or the new one — never a
/// torn file. Returns Internal on I/O failure.
Status SavePlanSnapshot(const std::string& path,
                        const std::vector<CachedPlan>& entries);

/// \brief Reads and parses the snapshot at `path`. NotFound when the file
/// cannot be opened; InvalidArgument when it fails validation (see
/// DecodePlanSnapshot) — callers treat both as "start cold".
Result<std::vector<CachedPlan>> LoadPlanSnapshot(const std::string& path);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_PLAN_STORE_H_
