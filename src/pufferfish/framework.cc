#include "pufferfish/framework.h"

#include <algorithm>
#include <cmath>

namespace pf {

std::vector<AttributeSecretPair> AllAttributeSecretPairs(std::size_t n, int arity) {
  std::vector<AttributeSecretPair> pairs;
  pairs.reserve(n * static_cast<std::size_t>(arity) * static_cast<std::size_t>(arity) / 2);
  for (std::size_t i = 0; i < n; ++i) {
    for (int a = 0; a < arity; ++a) {
      for (int b = a + 1; b < arity; ++b) {
        pairs.push_back({static_cast<int>(i), a, b});
      }
    }
  }
  return pairs;
}

Status ValidatePrivacyParams(const PrivacyParams& params) {
  if (!(params.epsilon > 0.0) || !std::isfinite(params.epsilon)) {
    return Status::InvalidArgument("epsilon must be positive and finite");
  }
  return Status::OK();
}

Result<ChainClassSummary> SummarizeChainClass(
    const std::vector<MarkovChain>& thetas) {
  if (thetas.empty()) return Status::InvalidArgument("empty chain class");
  ChainClassSummary s;
  s.pi_min = 1.0;
  s.eigengap = 2.0;
  s.all_reversible = true;
  // First pass: reversibility of the whole class decides which eigengap
  // definition applies (Eq. (14)).
  for (const MarkovChain& theta : thetas) {
    if (!theta.IsIrreducible()) {
      return Status::FailedPrecondition("chain class contains a reducible chain");
    }
    if (!theta.IsAperiodic()) {
      return Status::FailedPrecondition("chain class contains a periodic chain");
    }
    PF_ASSIGN_OR_RETURN(bool rev, theta.IsReversible());
    s.all_reversible = s.all_reversible && rev;
  }
  for (const MarkovChain& theta : thetas) {
    PF_ASSIGN_OR_RETURN(double pi_min, theta.MinStationaryProbability());
    if (pi_min <= 0.0) {
      return Status::FailedPrecondition("zero stationary probability in class");
    }
    s.pi_min = std::min(s.pi_min, pi_min);
    // MarkovChain::Eigengap applies the reversible doubling per chain; when
    // the class mixes reversible and non-reversible chains we must use the
    // conservative PP* definition for every member.
    PF_ASSIGN_OR_RETURN(bool rev, theta.IsReversible());
    PF_ASSIGN_OR_RETURN(double gap, theta.Eigengap());
    if (!s.all_reversible && rev) {
      // Eigengap() returned the doubled reversible value; recover the PP*
      // value. For reversible P, spec(PP*) = spec(P^2) so
      // 1 - lambda_2(PP*) = 1 - lambda_2(P)^2 >= gap/2; recompute directly.
      const double lambda = 1.0 - gap / 2.0;  // |second eigenvalue| of P.
      gap = 1.0 - lambda * lambda;
    }
    s.eigengap = std::min(s.eigengap, gap);
  }
  return s;
}

Result<BinaryChainIntervalClass> BinaryChainIntervalClass::Make(double alpha,
                                                                double beta) {
  if (!(alpha > 0.0) || !(beta < 1.0) || alpha > beta) {
    return Status::InvalidArgument("need 0 < alpha <= beta < 1");
  }
  return BinaryChainIntervalClass(alpha, beta);
}

Matrix BinaryChainIntervalClass::TransitionFor(double p0, double p1) {
  return Matrix{{p0, 1.0 - p0}, {1.0 - p1, p1}};
}

bool BinaryChainIntervalClass::Contains(double p0, double p1) const {
  return p0 >= alpha_ - 1e-12 && p0 <= beta_ + 1e-12 && p1 >= alpha_ - 1e-12 &&
         p1 <= beta_ + 1e-12;
}

std::vector<Matrix> BinaryChainIntervalClass::TransitionGrid(double step) const {
  std::vector<Matrix> grid;
  for (double p0 = alpha_; p0 <= beta_ + 1e-9; p0 += step) {
    for (double p1 = alpha_; p1 <= beta_ + 1e-9; p1 += step) {
      grid.push_back(TransitionFor(std::min(p0, beta_), std::min(p1, beta_)));
    }
  }
  return grid;
}

ChainClassSummary BinaryChainIntervalClass::Summary() const {
  ChainClassSummary s;
  s.pi_min = (1.0 - beta_) / (2.0 - alpha_ - beta_);
  const double worst_lambda =
      std::max(std::fabs(2.0 * beta_ - 1.0), std::fabs(2.0 * alpha_ - 1.0));
  s.eigengap = 2.0 * (1.0 - worst_lambda);
  s.all_reversible = true;  // Every 2-state chain is reversible.
  return s;
}

}  // namespace pf
