#include "pufferfish/node_classes.h"

#include <algorithm>
#include <set>

#include "common/fingerprint.h"

namespace pf {

namespace {

// Label-independent node attributes that seed the refinement: arity,
// moral degree, and the raw CPT content under every theta. Root-independent
// by construction, so corresponding nodes of isomorphic rooted views start
// with equal colors.
std::vector<std::uint64_t> InitialColors(
    const std::vector<BayesianNetwork>& thetas, const MoralGraph& graph) {
  const std::size_t n = graph.num_nodes();
  std::vector<std::uint64_t> colors(n);
  for (std::size_t v = 0; v < n; ++v) {
    Fingerprint fp;
    fp.Add(thetas.front().node(v).arity);
    fp.Add(graph.neighbors(static_cast<int>(v)).size());
    for (const BayesianNetwork& bn : thetas) {
      const BayesianNetwork::Node& node = bn.node(v);
      fp.Add(node.parents.size());
      fp.Add(node.cpt);
    }
    colors[v] = fp.hash();
  }
  return colors;
}

// Dense ranks of a color vector (sorted-unique position). Iso-invariant:
// equal colors share a rank, and ranks only depend on the color multiset.
std::vector<std::uint64_t> DenseRanks(const std::vector<std::uint64_t>& colors,
                                      std::size_t* num_classes) {
  std::vector<std::uint64_t> sorted = colors;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::vector<std::uint64_t> ranks(colors.size());
  for (std::size_t v = 0; v < colors.size(); ++v) {
    ranks[v] = static_cast<std::uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), colors[v]) -
        sorted.begin());
  }
  *num_classes = sorted.size();
  return ranks;
}

// Permutes a factor's scope to positions `perm` (perm[i] = old position of
// the new i-th scope variable), moving the value table to match. Pure data
// movement — every output cell is a copy of an input cell.
Factor PermuteFactor(const Factor& f, const std::vector<std::size_t>& perm) {
  Factor out;
  const std::size_t dims = f.scope.size();
  out.scope.resize(dims);
  out.arity.resize(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    out.scope[d] = f.scope[perm[d]];
    out.arity[d] = f.arity[perm[d]];
  }
  // Stride of each OLD position, then walk the new table in row-major
  // order reading through the permutation.
  std::vector<std::size_t> old_stride(dims, 1);
  for (std::size_t d = dims; d-- > 1;) {
    old_stride[d - 1] =
        old_stride[d] * static_cast<std::size_t>(f.arity[d]);
  }
  out.values.assign(f.size(), 0.0);
  std::vector<int> digits(dims, 0);
  for (std::size_t cell = 0; cell < out.values.size(); ++cell) {
    std::size_t src = 0;
    for (std::size_t d = 0; d < dims; ++d) {
      src += old_stride[perm[d]] * static_cast<std::size_t>(digits[d]);
    }
    out.values[cell] = f.values[src];
    for (std::size_t d = dims; d-- > 0;) {
      if (++digits[d] < out.arity[d]) break;
      digits[d] = 0;
    }
  }
  return out;
}

}  // namespace

std::vector<int> CanonicalNodeOrder(const std::vector<BayesianNetwork>& thetas,
                                    const MoralGraph& graph, int target) {
  const std::size_t n = graph.num_nodes();
  std::vector<int> dist = graph.Distances(target);
  for (int& d : dist) {
    if (d < 0) d = static_cast<int>(n);  // Other components sort last.
  }
  // Weisfeiler-Leman refinement of (distance, attributes): iterate until
  // the partition stops splitting (refinement is monotone, so an unchanged
  // class count means a stable partition), capped at n rounds.
  std::size_t num_classes = 0;
  std::vector<std::uint64_t> colors =
      DenseRanks(InitialColors(thetas, graph), &num_classes);
  for (std::size_t round = 0; round < n; ++round) {
    std::vector<std::uint64_t> next(n);
    for (std::size_t v = 0; v < n; ++v) {
      Fingerprint fp;
      fp.Add(static_cast<std::uint64_t>(static_cast<std::int64_t>(dist[v])));
      fp.Add(colors[v]);
      std::vector<std::uint64_t> around;
      for (int w : graph.neighbors(static_cast<int>(v))) {
        around.push_back(colors[static_cast<std::size_t>(w)]);
      }
      std::sort(around.begin(), around.end());
      fp.Add(around.size());
      for (std::uint64_t c : around) fp.Add(c);
      next[v] = fp.hash();
    }
    std::size_t refined = 0;
    next = DenseRanks(next, &refined);
    if (refined == num_classes) break;
    num_classes = refined;
    colors = std::move(next);
  }
  std::vector<int> order(n);
  for (std::size_t v = 0; v < n; ++v) order[v] = static_cast<int>(v);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const std::size_t ua = static_cast<std::size_t>(a);
    const std::size_t ub = static_cast<std::size_t>(b);
    if (dist[ua] != dist[ub]) return dist[ua] < dist[ub];
    if (colors[ua] != colors[ub]) return colors[ua] < colors[ub];
    return a < b;  // Ties here are (believed) automorphic; any order works.
  });
  return order;
}

NodeCanonicalForm CanonicalizeNode(const std::vector<BayesianNetwork>& thetas,
                                   const MoralGraph& graph, int target) {
  NodeCanonicalForm form;
  form.order = CanonicalNodeOrder(thetas, graph, target);
  const std::size_t n = form.order.size();
  std::vector<int> inv(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    inv[static_cast<std::size_t>(form.order[v])] = static_cast<int>(v);
  }
  form.arities.resize(n);
  form.adjacency.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    const std::size_t old_v = static_cast<std::size_t>(form.order[v]);
    form.arities[v] = thetas.front().node(old_v).arity;
    for (int w : graph.neighbors(static_cast<int>(old_v))) {
      form.adjacency[v].push_back(inv[static_cast<std::size_t>(w)]);
    }
    std::sort(form.adjacency[v].begin(), form.adjacency[v].end());
  }
  form.factors.reserve(thetas.size());
  for (const BayesianNetwork& bn : thetas) {
    std::vector<Factor> relabeled = bn.Factors();
    for (Factor& f : relabeled) {
      for (int& v : f.scope) v = inv[static_cast<std::size_t>(v)];
      // Normalize the scope to ascending canonical ids so factors that
      // merely list the same variables in a different stored-parent order
      // compare (and hash) equal.
      std::vector<std::size_t> perm(f.scope.size());
      for (std::size_t d = 0; d < perm.size(); ++d) perm[d] = d;
      std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t b) {
        return f.scope[a] < f.scope[b];
      });
      bool identity = true;
      for (std::size_t d = 0; d < perm.size(); ++d) identity &= perm[d] == d;
      if (!identity) f = PermuteFactor(f, perm);
    }
    // CPT scopes are distinct as sets (equal sets would imply a parent
    // cycle), so sorting by scope is a strict, canonical order.
    std::sort(relabeled.begin(), relabeled.end(),
              [](const Factor& a, const Factor& b) { return a.scope < b.scope; });
    form.factors.push_back(std::move(relabeled));
  }
  Fingerprint fp;
  fp.Add(n);
  for (int a : form.arities) fp.Add(a);
  for (const std::vector<int>& adj : form.adjacency) {
    fp.Add(adj.size());
    for (int w : adj) fp.Add(w);
  }
  fp.Add(form.factors.size());
  for (const std::vector<Factor>& theta : form.factors) {
    fp.Add(theta.size());
    for (const Factor& f : theta) {
      fp.Add(f.scope.size());
      for (int v : f.scope) fp.Add(v);
      for (int a : f.arity) fp.Add(a);
      for (double x : f.values) fp.Add(x);
    }
  }
  form.key = fp.hash();
  return form;
}

bool NodeCanonicalForm::SameProblem(const NodeCanonicalForm& other) const {
  if (arities != other.arities || adjacency != other.adjacency) return false;
  if (factors.size() != other.factors.size()) return false;
  for (std::size_t t = 0; t < factors.size(); ++t) {
    if (factors[t].size() != other.factors[t].size()) return false;
    for (std::size_t i = 0; i < factors[t].size(); ++i) {
      const Factor& a = factors[t][i];
      const Factor& b = other.factors[t][i];
      if (a.scope != b.scope || a.arity != b.arity) return false;
      if (a.values.size() != b.values.size()) return false;
      // Bitwise value equality: the dedup contract is byte-identical
      // problems, so -0.0 vs 0.0 (different bits, equal under ==) must
      // NOT merge.
      for (std::size_t c = 0; c < a.values.size(); ++c) {
        if (DoubleBits(a.values[c]) != DoubleBits(b.values[c])) return false;
      }
    }
  }
  return true;
}

MoralGraph UnionMoralGraph(const std::vector<BayesianNetwork>& thetas) {
  const std::size_t n = thetas.front().num_nodes();
  std::vector<std::set<int>> adj(n);
  for (const BayesianNetwork& bn : thetas) {
    const MoralGraph g(bn);
    for (std::size_t v = 0; v < n; ++v) {
      for (int w : g.neighbors(static_cast<int>(v))) adj[v].insert(w);
    }
  }
  std::vector<std::vector<int>> lists(n);
  for (std::size_t v = 0; v < n; ++v) {
    lists[v].assign(adj[v].begin(), adj[v].end());
  }
  return MoralGraph(lists);
}

}  // namespace pf
