#include "pufferfish/markov_quilt_mechanism.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graphical/moral_graph.h"
#include "pufferfish/framework.h"

namespace pf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

Status CheckSameShape(const std::vector<BayesianNetwork>& thetas) {
  if (thetas.empty()) return Status::InvalidArgument("empty distribution class");
  const BayesianNetwork& ref = thetas.front();
  for (const BayesianNetwork& bn : thetas) {
    if (bn.num_nodes() != ref.num_nodes()) {
      return Status::InvalidArgument("networks in Theta differ in node count");
    }
    for (std::size_t i = 0; i < bn.num_nodes(); ++i) {
      if (bn.node(i).arity != ref.node(i).arity) {
        return Status::InvalidArgument("networks in Theta differ in arity");
      }
    }
  }
  return Status::OK();
}
}  // namespace

Result<double> QuiltMaxInfluence(const std::vector<BayesianNetwork>& thetas,
                                 const MarkovQuilt& quilt,
                                 std::size_t enumeration_limit) {
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  if (quilt.quilt.empty()) return 0.0;  // Trivial quilt.
  const int i = quilt.target;
  double influence = 0.0;
  for (const BayesianNetwork& bn : thetas) {
    const int arity = bn.node(static_cast<std::size_t>(i)).arity;
    // Conditional distribution of the quilt variables for each value of X_i.
    std::vector<Vector> cond;
    std::vector<bool> feasible;
    for (int a = 0; a < arity; ++a) {
      Result<Vector> c =
          bn.ConditionalJoint(quilt.quilt, {{i, a}});
      if (!c.ok()) {
        if (c.status().code() == StatusCode::kFailedPrecondition) {
          cond.emplace_back();
          feasible.push_back(false);  // P(X_i = a) = 0: not a live secret.
          continue;
        }
        return c.status();
      }
      cond.push_back(std::move(c).value());
      feasible.push_back(true);
    }
    for (int a = 0; a < arity; ++a) {
      if (!feasible[static_cast<std::size_t>(a)]) continue;
      for (int b = 0; b < arity; ++b) {
        if (a == b || !feasible[static_cast<std::size_t>(b)]) continue;
        const Vector& pa = cond[static_cast<std::size_t>(a)];
        const Vector& pb = cond[static_cast<std::size_t>(b)];
        for (std::size_t cell = 0; cell < pa.size(); ++cell) {
          if (pa[cell] <= 0.0) continue;
          if (pb[cell] <= 0.0) return kInf;
          influence = std::max(influence, std::log(pa[cell] / pb[cell]));
        }
      }
    }
  }
  (void)enumeration_limit;
  return influence;
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    std::size_t enumeration_limit) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  const std::size_t n = thetas.front().num_nodes();
  if (quilt_sets.size() != n) {
    return Status::InvalidArgument("need one quilt set per node");
  }
  MqmAnalysis analysis;
  analysis.active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Theorem 4.3 requires the trivial quilt in every search set.
    const bool has_trivial = std::any_of(
        quilt_sets[i].begin(), quilt_sets[i].end(),
        [](const MarkovQuilt& q) { return q.quilt.empty(); });
    if (!has_trivial) {
      return Status::FailedPrecondition(
          "quilt set for node " + std::to_string(i) + " lacks the trivial quilt");
    }
    QuiltScore best;
    best.score = kInf;
    for (const MarkovQuilt& quilt : quilt_sets[i]) {
      if (quilt.target != static_cast<int>(i)) {
        return Status::InvalidArgument("quilt target does not match node");
      }
      PF_ASSIGN_OR_RETURN(double e,
                          QuiltMaxInfluence(thetas, quilt, enumeration_limit));
      QuiltScore qs;
      qs.quilt = quilt;
      qs.influence = e;
      qs.score = (e < epsilon)
                     ? static_cast<double>(quilt.NearbyCount()) / (epsilon - e)
                     : kInf;
      if (qs.score < best.score) best = qs;
    }
    analysis.active.push_back(best);
    if (best.score > analysis.sigma_max) {
      analysis.sigma_max = best.score;
      analysis.worst_node = static_cast<int>(i);
    }
  }
  return analysis;
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    std::size_t max_quilt_size, std::size_t enumeration_limit) {
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  const MoralGraph graph(thetas.front());
  const std::size_t n = thetas.front().num_nodes();
  std::vector<std::vector<MarkovQuilt>> quilt_sets;
  quilt_sets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    quilt_sets.push_back(
        EnumerateQuilts(graph, static_cast<int>(i), max_quilt_size));
  }
  return AnalyzeMarkovQuiltMechanismWithQuilts(thetas, epsilon, quilt_sets,
                                               enumeration_limit);
}

double MqmReleaseScalar(double value, double lipschitz, double sigma_max,
                        Rng* rng) {
  return value + rng->Laplace(lipschitz * sigma_max);
}

Vector MqmReleaseVector(const Vector& value, double lipschitz, double sigma_max,
                        Rng* rng) {
  Vector out = value;
  const double scale = lipschitz * sigma_max;
  for (double& v : out) v += rng->Laplace(scale);
  return out;
}

}  // namespace pf
