#include "pufferfish/markov_quilt_mechanism.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/arena.h"
#include "common/deadline.h"
#include "common/parallel.h"
#include "graphical/moral_graph.h"
#include "pufferfish/framework.h"
#include "pufferfish/node_classes.h"

namespace pf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

Status CheckSameShape(const std::vector<BayesianNetwork>& thetas) {
  if (thetas.empty()) return Status::InvalidArgument("empty distribution class");
  const BayesianNetwork& ref = thetas.front();
  for (const BayesianNetwork& bn : thetas) {
    if (bn.num_nodes() != ref.num_nodes()) {
      return Status::InvalidArgument("networks in Theta differ in node count");
    }
    for (std::size_t i = 0; i < bn.num_nodes(); ++i) {
      if (bn.node(i).arity != ref.node(i).arity) {
        return Status::InvalidArgument("networks in Theta differ in arity");
      }
    }
  }
  return Status::OK();
}

// Cheap structural validation of a node's search set, run before the
// expensive fan-out so malformed inputs fail fast.
Status CheckQuiltSet(const std::vector<MarkovQuilt>& quilt_set,
                     std::size_t node) {
  // Theorem 4.3 requires the trivial quilt in every search set.
  const bool has_trivial =
      std::any_of(quilt_set.begin(), quilt_set.end(),
                  [](const MarkovQuilt& q) { return q.quilt.empty(); });
  if (!has_trivial) {
    return Status::FailedPrecondition(
        "quilt set for node " + std::to_string(node) +
        " lacks the trivial quilt");
  }
  for (const MarkovQuilt& quilt : quilt_set) {
    if (quilt.target != static_cast<int>(node)) {
      return Status::InvalidArgument("quilt target does not match node");
    }
  }
  return Status::OK();
}

InferenceBackend ResolveBackend(InferenceBackend backend) {
  return backend == InferenceBackend::kAuto
             ? InferenceBackend::kVariableElimination
             : backend;
}

QuiltSearchMode ResolveSearch(const MqmAnalyzeOptions& options,
                              std::size_t num_nodes) {
  if (options.quilt_search != QuiltSearchMode::kAuto) {
    return options.quilt_search;
  }
  return num_nodes <= options.exhaustive_node_limit
             ? QuiltSearchMode::kExhaustive
             : QuiltSearchMode::kSeparator;
}

// The guard message of the historical enumeration path, kept verbatim in
// spirit: it names the knob to raise and the specializations to reach for.
Status EnumerationGuardError(std::size_t limit) {
  return Status::InvalidArgument(
      "joint-assignment space exceeds enumeration_limit (" +
      std::to_string(limit) +
      "); raise MqmAnalyzeOptions::enumeration_limit, switch to the "
      "variable-elimination backend, or use the chain specializations "
      "(MqmExact / MqmApprox)");
}

// sigma_i for one node: the min-score quilt over its (validated) search
// set, against prebuilt per-theta factor systems. Pure in its inputs, so
// the per-node loop can fan out across threads.
Result<QuiltScore> ScoreNodeFactors(
    const std::vector<std::vector<Factor>>& theta_factors,
    const std::vector<int>& arities, double epsilon,
    const std::vector<MarkovQuilt>& quilt_set, std::size_t limit,
    InferenceBackend backend, EliminationStats* stats) {
  QuiltScore best;
  best.score = kInf;
  // Per-quilt cancellation checkpoint: each influence evaluation can cost
  // O(k^width), and ParallelFor re-installs the submitting request's
  // deadline in the workers, so this fires inside the parallel node scan.
  PF_RETURN_NOT_OK(CheckDeadline("quilt scoring"));
  for (const MarkovQuilt& quilt : quilt_set) {
    PF_ASSIGN_OR_RETURN(
        double e,
        QuiltMaxInfluenceFactors(theta_factors, arities, quilt, limit,
                                 backend, stats));
    QuiltScore qs;
    qs.quilt = quilt;
    qs.influence = e;
    qs.score = QuiltScoreFromInfluence(quilt.NearbyCount(), epsilon, e);
    if (qs.score < best.score) best = qs;
  }
  return best;
}

// One canonical class's search: candidates generated on the canonical
// graph, scored against the canonical factors. A pure function of the
// canonical form (plus the shared options), which is exactly why equal
// forms may share the result bit-for-bit.
struct CanonicalScore {
  QuiltScore best;
  EliminationStats stats;
};

Result<CanonicalScore> ScoreCanonical(const NodeCanonicalForm& form,
                                      double epsilon,
                                      const MqmAnalyzeOptions& options,
                                      QuiltSearchMode search,
                                      InferenceBackend backend) {
  const MoralGraph graph(form.adjacency);
  const std::vector<MarkovQuilt> candidates =
      search == QuiltSearchMode::kExhaustive
          ? EnumerateQuilts(graph, /*target=*/0, options.max_quilt_size)
          : SeparatorQuilts(graph, /*target=*/0, options.separator);
  CanonicalScore out;
  PF_ASSIGN_OR_RETURN(
      out.best,
      ScoreNodeFactors(form.factors, form.arities, epsilon, candidates,
                       options.enumeration_limit, backend, &out.stats));
  return out;
}

// Maps a canonical-label QuiltScore back to the caller's node ids through
// one node's own relabeling (each class member uses its OWN order — the
// class share the canonical problem, not the concrete labels).
QuiltScore MapBack(const QuiltScore& canonical, const NodeCanonicalForm& form,
                   int target) {
  QuiltScore out = canonical;
  out.quilt.target = target;
  for (std::vector<int>* ids :
       {&out.quilt.quilt, &out.quilt.nearby, &out.quilt.remote}) {
    for (int& v : *ids) v = form.order[static_cast<std::size_t>(v)];
    std::sort(ids->begin(), ids->end());
  }
  return out;
}

// Deterministic error reduction shared by both analyze paths: surface a
// real per-slot error (lowest index) before any "not computed" sentinel
// left behind by the early-out.
template <typename T>
Status FirstRealError(const std::vector<Result<T>>& slots) {
  for (const Result<T>& slot : slots) {
    if (!slot.ok() && slot.status().code() != StatusCode::kInternal) {
      return slot.status();
    }
  }
  for (const Result<T>& slot : slots) {
    if (!slot.ok()) return slot.status();
  }
  return Status::OK();
}

}  // namespace

double QuiltScoreFromInfluence(std::size_t nearby_count, double epsilon,
                               double influence) {
  return (influence < epsilon)
             ? static_cast<double>(nearby_count) / (epsilon - influence)
             : kInf;
}

Result<double> QuiltMaxInfluenceFactors(
    const std::vector<std::vector<Factor>>& theta_factors,
    const std::vector<int>& arities, const MarkovQuilt& quilt,
    std::size_t limit, InferenceBackend backend, EliminationStats* stats) {
  if (quilt.quilt.empty()) return 0.0;  // Trivial / pure-component quilt.
  const int i = quilt.target;
  const int arity = arities[static_cast<std::size_t>(i)];
  double influence = 0.0;
  // Conditional distribution of the quilt variables for each value of X_i.
  // The slots (and the evidence pair) are hoisted and the conditionals are
  // computed in place, so the per-theta inner loop issues its elimination
  // queries without heap allocations beyond the warm thread workspace.
  std::vector<Vector> cond(static_cast<std::size_t>(arity));
  std::vector<char> feasible(static_cast<std::size_t>(arity), 0);
  std::vector<std::pair<int, int>> evidence{{i, 0}};
  for (const std::vector<Factor>& factors : theta_factors) {
    for (int a = 0; a < arity; ++a) {
      evidence[0].second = a;
      const Status c = FactorConditionalJointInto(
          factors, arities, quilt.quilt, evidence, limit, backend, stats,
          &cond[static_cast<std::size_t>(a)]);
      if (!c.ok()) {
        if (c.code() == StatusCode::kFailedPrecondition) {
          feasible[static_cast<std::size_t>(a)] = 0;  // P(X_i=a) = 0.
          continue;
        }
        return c;
      }
      feasible[static_cast<std::size_t>(a)] = 1;
    }
    for (int a = 0; a < arity; ++a) {
      if (!feasible[static_cast<std::size_t>(a)]) continue;
      for (int b = 0; b < arity; ++b) {
        if (a == b || !feasible[static_cast<std::size_t>(b)]) continue;
        const Vector& pa = cond[static_cast<std::size_t>(a)];
        const Vector& pb = cond[static_cast<std::size_t>(b)];
        for (std::size_t cell = 0; cell < pa.size(); ++cell) {
          if (pa[cell] <= 0.0) continue;
          if (pb[cell] <= 0.0) return kInf;
          influence = std::max(influence, std::log(pa[cell] / pb[cell]));
        }
      }
    }
  }
  return influence;
}

Result<double> QuiltMaxInfluence(const std::vector<BayesianNetwork>& thetas,
                                 const MarkovQuilt& quilt, std::size_t limit,
                                 InferenceBackend backend,
                                 EliminationStats* stats) {
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  if (quilt.quilt.empty()) return 0.0;  // Trivial quilt.
  // The enumeration backend walks the full joint-assignment space; honor
  // the caller's guard before fanning out, with the historical message.
  // CheckSameShape guarantees every theta shares node count and arities,
  // so one check covers all.
  if (backend == InferenceBackend::kEnumeration &&
      !thetas.front().NumAssignments(limit).ok()) {
    return EnumerationGuardError(limit);
  }
  std::vector<std::vector<Factor>> theta_factors;
  theta_factors.reserve(thetas.size());
  for (const BayesianNetwork& bn : thetas) theta_factors.push_back(bn.Factors());
  return QuiltMaxInfluenceFactors(theta_factors, thetas.front().Arities(),
                                  quilt, limit, backend, stats);
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    const MqmAnalyzeOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  const std::size_t n = thetas.front().num_nodes();
  if (quilt_sets.size() != n) {
    return Status::InvalidArgument("need one quilt set per node");
  }
  for (std::size_t i = 0; i < n; ++i) {
    PF_RETURN_NOT_OK(CheckQuiltSet(quilt_sets[i], i));
  }
  const InferenceBackend backend = ResolveBackend(options.backend);
  if (backend == InferenceBackend::kEnumeration &&
      !thetas.front().NumAssignments(options.enumeration_limit).ok()) {
    return EnumerationGuardError(options.enumeration_limit);
  }
  std::vector<std::vector<Factor>> theta_factors;
  theta_factors.reserve(thetas.size());
  for (const BayesianNetwork& bn : thetas) theta_factors.push_back(bn.Factors());
  const std::vector<int> arities = thetas.front().Arities();
  // Per-node searches are independent; fan out and reduce sequentially so
  // the result is identical for every thread count. The failed flag only
  // short-circuits wasted work on the error path; the reduction below
  // still reports the lowest-index error deterministically.
  std::vector<Result<QuiltScore>> scores(n, Status::Internal("not computed"));
  std::vector<EliminationStats> stats(n);
  const std::size_t arena_blocks_before = Arena::TotalBlockAllocations();
  std::atomic<bool> failed{false};
  ParallelFor(options.num_threads, n, [&](std::size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    scores[i] =
        ScoreNodeFactors(theta_factors, arities, epsilon, quilt_sets[i],
                         options.enumeration_limit, backend, &stats[i]);
    if (!scores[i].ok()) failed.store(true, std::memory_order_relaxed);
  });
  PF_RETURN_NOT_OK(FirstRealError(scores));
  MqmAnalysis analysis;
  analysis.active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const QuiltScore& best = scores[i].value();
    analysis.active.push_back(best);
    if (best.score > analysis.sigma_max) {
      analysis.sigma_max = best.score;
      analysis.worst_node = static_cast<int>(i);
    }
  }
  EliminationStats merged;
  for (const EliminationStats& s : stats) merged.MergeMax(s);
  analysis.total_nodes = n;
  analysis.scored_nodes = n;
  analysis.induced_width = merged.induced_width;
  analysis.memory.peak_bytes = merged.peak_factor_bytes;
  analysis.memory.arena_retained_bytes = Arena::TotalRetainedBytes();
  analysis.memory.mallocs =
      Arena::TotalBlockAllocations() - arena_blocks_before;
  analysis.treewidth_bound =
      MinFillWidth(UnionMoralGraph(thetas).adjacency());
  return analysis;
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    std::size_t enumeration_limit) {
  MqmAnalyzeOptions options;
  options.enumeration_limit = enumeration_limit;
  return AnalyzeMarkovQuiltMechanismWithQuilts(thetas, epsilon, quilt_sets,
                                               options);
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const MqmAnalyzeOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  const MoralGraph graph = UnionMoralGraph(thetas);
  const std::size_t n = thetas.front().num_nodes();
  const InferenceBackend backend = ResolveBackend(options.backend);
  const QuiltSearchMode search = ResolveSearch(options, n);
  if (backend == InferenceBackend::kEnumeration &&
      !thetas.front().NumAssignments(options.enumeration_limit).ok()) {
    return EnumerationGuardError(options.enumeration_limit);
  }
  // Phase 1: every node's canonical rooted form — pure per node, so the
  // construction fans out.
  std::vector<NodeCanonicalForm> forms(n);
  ParallelFor(options.num_threads, n, [&](std::size_t i) {
    forms[i] = CanonicalizeNode(thetas, graph, static_cast<int>(i));
  });
  // Phase 2: group nodes into classes, sequentially (deterministic class
  // ids and representatives for every thread count). The hash only routes
  // to a bucket; membership is decided by the exact form comparison.
  std::vector<std::size_t> class_of(n, 0);
  std::vector<std::size_t> representative;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t cls = representative.size();
    if (options.dedup_nodes) {
      // Bucket members are representative node ids; the exact compare is
      // against the representative's full form.
      for (std::size_t candidate : buckets[forms[i].key]) {
        if (forms[i].SameProblem(forms[candidate])) {
          cls = class_of[candidate];
          break;
        }
      }
    }
    if (cls == representative.size()) {
      representative.push_back(i);
      buckets[forms[i].key].push_back(i);
    }
    class_of[i] = cls;
  }
  // Phase 3: score one representative per class, in parallel.
  const std::size_t arena_blocks_before = Arena::TotalBlockAllocations();
  const std::size_t num_classes = representative.size();
  std::vector<Result<CanonicalScore>> scored(
      num_classes, Status::Internal("not computed"));
  std::atomic<bool> failed{false};
  ParallelFor(options.num_threads, num_classes, [&](std::size_t c) {
    if (failed.load(std::memory_order_relaxed)) return;
    scored[c] = ScoreCanonical(forms[representative[c]], epsilon, options,
                               search, backend);
    if (!scored[c].ok()) failed.store(true, std::memory_order_relaxed);
  });
  PF_RETURN_NOT_OK(FirstRealError(scored));
  // Phase 4: sequential reduction — each node maps its class's canonical
  // result back through its OWN relabeling.
  MqmAnalysis analysis;
  analysis.active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const QuiltScore best = MapBack(scored[class_of[i]].value().best,
                                    forms[i], static_cast<int>(i));
    analysis.active.push_back(best);
    if (best.score > analysis.sigma_max) {
      analysis.sigma_max = best.score;
      analysis.worst_node = static_cast<int>(i);
    }
  }
  EliminationStats merged;
  for (const Result<CanonicalScore>& s : scored) merged.MergeMax(s.value().stats);
  analysis.total_nodes = n;
  analysis.scored_nodes = num_classes;
  analysis.induced_width = merged.induced_width;
  analysis.memory.peak_bytes = merged.peak_factor_bytes;
  analysis.memory.arena_retained_bytes = Arena::TotalRetainedBytes();
  analysis.memory.mallocs =
      Arena::TotalBlockAllocations() - arena_blocks_before;
  analysis.treewidth_bound = MinFillWidth(graph.adjacency());
  return analysis;
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    std::size_t max_quilt_size, std::size_t enumeration_limit) {
  MqmAnalyzeOptions options;
  options.max_quilt_size = max_quilt_size;
  options.enumeration_limit = enumeration_limit;
  return AnalyzeMarkovQuiltMechanism(thetas, epsilon, options);
}

double MqmReleaseScalar(double value, double lipschitz, double sigma_max,
                        Rng* rng) {
  return AddLaplaceNoise(value, lipschitz * sigma_max, rng);
}

Vector MqmReleaseVector(const Vector& value, double lipschitz, double sigma_max,
                        Rng* rng) {
  return AddLaplaceNoise(value, lipschitz * sigma_max, rng);
}

}  // namespace pf
