#include "pufferfish/markov_quilt_mechanism.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/parallel.h"
#include "graphical/moral_graph.h"
#include "pufferfish/framework.h"

namespace pf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

Status CheckSameShape(const std::vector<BayesianNetwork>& thetas) {
  if (thetas.empty()) return Status::InvalidArgument("empty distribution class");
  const BayesianNetwork& ref = thetas.front();
  for (const BayesianNetwork& bn : thetas) {
    if (bn.num_nodes() != ref.num_nodes()) {
      return Status::InvalidArgument("networks in Theta differ in node count");
    }
    for (std::size_t i = 0; i < bn.num_nodes(); ++i) {
      if (bn.node(i).arity != ref.node(i).arity) {
        return Status::InvalidArgument("networks in Theta differ in arity");
      }
    }
  }
  return Status::OK();
}

// Cheap structural validation of a node's search set, run before the
// expensive fan-out so malformed inputs fail fast.
Status CheckQuiltSet(const std::vector<MarkovQuilt>& quilt_set,
                     std::size_t node) {
  // Theorem 4.3 requires the trivial quilt in every search set.
  const bool has_trivial =
      std::any_of(quilt_set.begin(), quilt_set.end(),
                  [](const MarkovQuilt& q) { return q.quilt.empty(); });
  if (!has_trivial) {
    return Status::FailedPrecondition(
        "quilt set for node " + std::to_string(node) +
        " lacks the trivial quilt");
  }
  for (const MarkovQuilt& quilt : quilt_set) {
    if (quilt.target != static_cast<int>(node)) {
      return Status::InvalidArgument("quilt target does not match node");
    }
  }
  return Status::OK();
}

// sigma_i for one node: the min-score quilt over its (validated) search
// set. Pure in its inputs, so the per-node loop can fan out across threads.
Result<QuiltScore> ScoreNode(const std::vector<BayesianNetwork>& thetas,
                             double epsilon,
                             const std::vector<MarkovQuilt>& quilt_set,
                             std::size_t enumeration_limit) {
  QuiltScore best;
  best.score = kInf;
  for (const MarkovQuilt& quilt : quilt_set) {
    PF_ASSIGN_OR_RETURN(double e,
                        QuiltMaxInfluence(thetas, quilt, enumeration_limit));
    QuiltScore qs;
    qs.quilt = quilt;
    qs.influence = e;
    qs.score = QuiltScoreFromInfluence(quilt.NearbyCount(), epsilon, e);
    if (qs.score < best.score) best = qs;
  }
  return best;
}
}  // namespace

double QuiltScoreFromInfluence(std::size_t nearby_count, double epsilon,
                               double influence) {
  return (influence < epsilon)
             ? static_cast<double>(nearby_count) / (epsilon - influence)
             : kInf;
}

Result<double> QuiltMaxInfluence(const std::vector<BayesianNetwork>& thetas,
                                 const MarkovQuilt& quilt,
                                 std::size_t enumeration_limit) {
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  if (quilt.quilt.empty()) return 0.0;  // Trivial quilt.
  // The enumeration inference below walks the full joint-assignment space;
  // honor the caller's guard before fanning out. CheckSameShape guarantees
  // every theta shares node count and arities, so one check covers all.
  if (!thetas.front().NumAssignments(enumeration_limit).ok()) {
    return Status::InvalidArgument(
        "joint-assignment space exceeds enumeration_limit (" +
        std::to_string(enumeration_limit) +
        "); raise MqmAnalyzeOptions::enumeration_limit or use the chain "
        "specializations (MqmExact / MqmApprox)");
  }
  const int i = quilt.target;
  double influence = 0.0;
  for (const BayesianNetwork& bn : thetas) {
    const int arity = bn.node(static_cast<std::size_t>(i)).arity;
    // Conditional distribution of the quilt variables for each value of X_i.
    std::vector<Vector> cond;
    std::vector<bool> feasible;
    for (int a = 0; a < arity; ++a) {
      Result<Vector> c =
          bn.ConditionalJoint(quilt.quilt, {{i, a}}, enumeration_limit);
      if (!c.ok()) {
        if (c.status().code() == StatusCode::kFailedPrecondition) {
          cond.emplace_back();
          feasible.push_back(false);  // P(X_i = a) = 0: not a live secret.
          continue;
        }
        return c.status();
      }
      cond.push_back(std::move(c).value());
      feasible.push_back(true);
    }
    for (int a = 0; a < arity; ++a) {
      if (!feasible[static_cast<std::size_t>(a)]) continue;
      for (int b = 0; b < arity; ++b) {
        if (a == b || !feasible[static_cast<std::size_t>(b)]) continue;
        const Vector& pa = cond[static_cast<std::size_t>(a)];
        const Vector& pb = cond[static_cast<std::size_t>(b)];
        for (std::size_t cell = 0; cell < pa.size(); ++cell) {
          if (pa[cell] <= 0.0) continue;
          if (pb[cell] <= 0.0) return kInf;
          influence = std::max(influence, std::log(pa[cell] / pb[cell]));
        }
      }
    }
  }
  return influence;
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    const MqmAnalyzeOptions& options) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  const std::size_t n = thetas.front().num_nodes();
  if (quilt_sets.size() != n) {
    return Status::InvalidArgument("need one quilt set per node");
  }
  for (std::size_t i = 0; i < n; ++i) {
    PF_RETURN_NOT_OK(CheckQuiltSet(quilt_sets[i], i));
  }
  // Per-node searches are independent; fan out and reduce sequentially so
  // the result is identical for every thread count. The failed flag only
  // short-circuits wasted work on the error path; the reduction below still
  // reports the lowest-index error deterministically.
  std::vector<Result<QuiltScore>> scores(n, Status::Internal("not computed"));
  std::atomic<bool> failed{false};
  ParallelFor(options.num_threads, n, [&](std::size_t i) {
    if (failed.load(std::memory_order_relaxed)) return;
    scores[i] = ScoreNode(thetas, epsilon, quilt_sets[i],
                          options.enumeration_limit);
    if (!scores[i].ok()) failed.store(true, std::memory_order_relaxed);
  });
  // Surface a real per-node error before any "not computed" sentinel left
  // behind by the early-out (the sentinel only exists when a real error
  // does too).
  for (std::size_t i = 0; i < n; ++i) {
    if (!scores[i].ok() && scores[i].status().code() != StatusCode::kInternal) {
      return scores[i].status();
    }
  }
  MqmAnalysis analysis;
  analysis.active.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!scores[i].ok()) return scores[i].status();
    const QuiltScore& best = scores[i].value();
    analysis.active.push_back(best);
    if (best.score > analysis.sigma_max) {
      analysis.sigma_max = best.score;
      analysis.worst_node = static_cast<int>(i);
    }
  }
  return analysis;
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanismWithQuilts(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const std::vector<std::vector<MarkovQuilt>>& quilt_sets,
    std::size_t enumeration_limit) {
  MqmAnalyzeOptions options;
  options.enumeration_limit = enumeration_limit;
  return AnalyzeMarkovQuiltMechanismWithQuilts(thetas, epsilon, quilt_sets,
                                               options);
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    const MqmAnalyzeOptions& options) {
  PF_RETURN_NOT_OK(CheckSameShape(thetas));
  const MoralGraph graph(thetas.front());
  const std::size_t n = thetas.front().num_nodes();
  std::vector<std::vector<MarkovQuilt>> quilt_sets;
  quilt_sets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    quilt_sets.push_back(
        EnumerateQuilts(graph, static_cast<int>(i), options.max_quilt_size));
  }
  return AnalyzeMarkovQuiltMechanismWithQuilts(thetas, epsilon, quilt_sets,
                                               options);
}

Result<MqmAnalysis> AnalyzeMarkovQuiltMechanism(
    const std::vector<BayesianNetwork>& thetas, double epsilon,
    std::size_t max_quilt_size, std::size_t enumeration_limit) {
  MqmAnalyzeOptions options;
  options.max_quilt_size = max_quilt_size;
  options.enumeration_limit = enumeration_limit;
  return AnalyzeMarkovQuiltMechanism(thetas, epsilon, options);
}

double MqmReleaseScalar(double value, double lipschitz, double sigma_max,
                        Rng* rng) {
  return AddLaplaceNoise(value, lipschitz * sigma_max, rng);
}

Vector MqmReleaseVector(const Vector& value, double lipschitz, double sigma_max,
                        Rng* rng) {
  return AddLaplaceNoise(value, lipschitz * sigma_max, rng);
}

}  // namespace pf
