// Robustness against close adversaries (Theorem 2.4): if a mechanism is
// epsilon-Pufferfish private w.r.t. (S, Q, Theta) but the adversary's belief
// theta~ lies outside Theta, the guarantee degrades to epsilon + 2*Delta
// where
//   Delta = inf_{theta in Theta} max_{s_i in S}
//             max( D_inf(theta~|s_i || theta|s_i),
//                  D_inf(theta|s_i || theta~|s_i) ).
//
// Distributions here are over a finite, explicitly enumerated space of
// database configurations; each secret is the subset of configurations
// consistent with it, and conditioning restricts and renormalizes.
#ifndef PUFFERFISH_PUFFERFISH_ROBUSTNESS_H_
#define PUFFERFISH_PUFFERFISH_ROBUSTNESS_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// Conditional distribution of `joint` given the event "configuration index
/// is in `support`": restricted and renormalized mass vector over `support`
/// (in the order given). Fails if the event has probability zero.
Result<Vector> ConditionOnSecret(const Vector& joint,
                                 const std::vector<int>& support);

/// \brief Theorem 2.4's Delta for adversary belief `theta_tilde` against the
/// class `theta_class`, with secrets given as configuration-index subsets.
///
/// Secrets with zero probability under both the class member and the
/// adversary belief are skipped (they generate no constraint); a secret with
/// zero probability under exactly one of the two distributions makes that
/// class member's divergence infinite.
Result<double> CloseAdversaryDelta(const std::vector<Vector>& theta_class,
                                   const Vector& theta_tilde,
                                   const std::vector<std::vector<int>>& secrets);

/// The degraded guarantee epsilon + 2*Delta of Theorem 2.4.
inline double EffectiveEpsilon(double epsilon, double delta) {
  return epsilon + 2.0 * delta;
}

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_ROBUSTNESS_H_
