#include "pufferfish/robustness.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dist/divergences.h"

namespace pf {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

Result<Vector> ConditionOnSecret(const Vector& joint,
                                 const std::vector<int>& support) {
  if (support.empty()) return Status::InvalidArgument("empty secret support");
  Vector out;
  out.reserve(support.size());
  double total = 0.0;
  for (int idx : support) {
    if (idx < 0 || static_cast<std::size_t>(idx) >= joint.size()) {
      return Status::OutOfRange("secret support index out of range");
    }
    out.push_back(joint[static_cast<std::size_t>(idx)]);
    total += out.back();
  }
  if (total <= 0.0) {
    return Status::FailedPrecondition("secret has probability zero");
  }
  for (double& v : out) v /= total;
  return out;
}

Result<double> CloseAdversaryDelta(const std::vector<Vector>& theta_class,
                                   const Vector& theta_tilde,
                                   const std::vector<std::vector<int>>& secrets) {
  if (theta_class.empty()) return Status::InvalidArgument("empty Theta");
  if (secrets.empty()) return Status::InvalidArgument("no secrets given");
  if (!IsProbabilityVector(theta_tilde, 1e-6)) {
    return Status::InvalidArgument("theta_tilde is not a probability vector");
  }
  double delta = kInf;
  for (const Vector& theta : theta_class) {
    if (theta.size() != theta_tilde.size()) {
      return Status::InvalidArgument("distribution size mismatch");
    }
    double worst = 0.0;
    for (const std::vector<int>& secret : secrets) {
      Result<Vector> cond_theta = ConditionOnSecret(theta, secret);
      Result<Vector> cond_tilde = ConditionOnSecret(theta_tilde, secret);
      const bool theta_zero = !cond_theta.ok();
      const bool tilde_zero = !cond_tilde.ok();
      if (theta_zero && tilde_zero) continue;  // Dead secret: no constraint.
      if (theta_zero || tilde_zero) {
        worst = kInf;  // One-sided zero: divergence unbounded for this theta.
        break;
      }
      Result<double> div =
          SymmetricMaxDivergence(cond_tilde.value(), cond_theta.value());
      if (!div.ok()) {
        // Support mismatch inside the secret: infinite divergence.
        worst = kInf;
        break;
      }
      worst = std::max(worst, div.value());
    }
    delta = std::min(delta, worst);
  }
  return delta;
}

}  // namespace pf
