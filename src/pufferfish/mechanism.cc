#include "pufferfish/mechanism.h"

#include <cmath>

#include "common/fingerprint.h"
#include "engine/batch_kernels.h"

namespace pf {

const char* MechanismKindName(MechanismKind kind) {
  switch (kind) {
    case MechanismKind::kLaplaceDp: return "LaplaceDP";
    case MechanismKind::kGroupDp: return "GroupDP";
    case MechanismKind::kGk16: return "GK16";
    case MechanismKind::kWasserstein: return "Wasserstein";
    case MechanismKind::kMqmGeneral: return "MQM";
    case MechanismKind::kMqmExact: return "MQMExact";
    case MechanismKind::kMqmApprox: return "MQMApprox";
  }
  return "Unknown";
}

MechanismPlan Mechanism::NewPlan(double epsilon, double sigma) const {
  MechanismPlan plan;
  plan.kind = kind();
  plan.epsilon = epsilon;
  plan.sigma = sigma;
  plan.cache_hits = std::make_shared<std::atomic<std::uint64_t>>(0);
  return plan;
}

Result<std::unique_ptr<ResumableAnalysis>> Mechanism::AnalyzeResumable(
    double /*epsilon*/) const {
  return Status::NotSupported(name() +
                              " has no resumable (append-aware) analysis");
}

namespace {
Status CheckReleasable(const MechanismPlan& plan, double lipschitz) {
  if (!plan.applicable) {
    return Status::FailedPrecondition(
        std::string(MechanismKindName(plan.kind)) +
        " inapplicable for this class (no finite noise scale)");
  }
  if (!(lipschitz >= 0.0) || !std::isfinite(lipschitz)) {
    return Status::InvalidArgument("Lipschitz constant must be nonnegative");
  }
  if (!std::isfinite(plan.sigma) || plan.sigma < 0.0) {
    return Status::FailedPrecondition("plan has no finite noise scale");
  }
  return Status::OK();
}
}  // namespace

Result<double> Release(const MechanismPlan& plan, double value,
                       double lipschitz, Rng* rng) {
  PF_RETURN_NOT_OK(CheckReleasable(plan, lipschitz));
  return AddLaplaceNoise(value, lipschitz * plan.sigma, rng);
}

Result<Vector> ReleaseVector(const MechanismPlan& plan, const Vector& value,
                             double lipschitz, Rng* rng) {
  PF_RETURN_NOT_OK(CheckReleasable(plan, lipschitz));
  return AddLaplaceNoise(value, lipschitz * plan.sigma, rng);
}

Result<Vector> ReleaseBatch(const MechanismPlan& plan,
                            const std::vector<double>& values,
                            double lipschitz, Rng* rng) {
  PF_RETURN_NOT_OK(CheckReleasable(plan, lipschitz));
  return AddLaplaceNoise(values, lipschitz * plan.sigma, rng);
}

Result<std::vector<Vector>> ReleaseBatch(const MechanismPlan& plan,
                                         const std::vector<Vector>& values,
                                         double lipschitz, Rng* rng) {
  PF_RETURN_NOT_OK(CheckReleasable(plan, lipschitz));
  std::vector<Vector> out;
  out.reserve(values.size());
  const double scale = lipschitz * plan.sigma;
  for (const Vector& v : values) out.push_back(AddLaplaceNoise(v, scale, rng));
  return out;
}

Status ReleaseBatchColumnar(
    const std::vector<std::shared_ptr<const MechanismPlan>>& plans,
    std::uint64_t seed, RecordBatch* batch) {
  // All validation before any noise: a refused batch must leave the truth
  // values untouched so the caller can surface the error without having
  // half-released anything.
  for (const auto& plan : plans) {
    if (plan == nullptr) return Status::InvalidArgument("null plan in batch");
    PF_RETURN_NOT_OK(CheckReleasable(*plan, /*lipschitz=*/0.0));
  }
  const std::size_t rows = batch->num_rows();
  const double* scales = batch->noise_scales();
  for (std::size_t r = 0; r < rows; ++r) {
    if (!std::isfinite(scales[r]) || scales[r] < 0.0) {
      return Status::FailedPrecondition(
          "row " + std::to_string(r) + " has no finite noise scale");
    }
  }
  // One interleaved noise pass (engine/batch_kernels): bit-identical to
  // seeding a per-row Rng(TicketNoiseSeed(seed, ticket)) and calling
  // AddLaplaceNoise row by row, but with the generator setup pipelined
  // across rows — the per-ticket mt19937_64 init is the scalar serving
  // path's dominant cost.
  const std::uint64_t* tickets = batch->tickets();
  std::vector<std::uint64_t> seeds(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    seeds[r] = TicketNoiseSeed(seed, tickets[r]);
  }
  BatchLaplaceNoise(batch->values(), batch->offsets(), scales, seeds.data(),
                    rows);
  return Status::OK();
}

// -------------------------------------------------------------- LaplaceDP --

Result<MechanismPlan> LaplaceDpUnified::Analyze(double epsilon) const {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  if (!(sensitivity_ >= 0.0) || !std::isfinite(sensitivity_)) {
    return Status::InvalidArgument("sensitivity must be nonnegative and finite");
  }
  return NewPlan(epsilon, sensitivity_ / epsilon);
}

std::uint64_t LaplaceDpUnified::Fingerprint() const {
  return pf::Fingerprint{}.Add(static_cast<int>(kind())).Add(sensitivity_).hash();
}

// ---------------------------------------------------------------- GroupDP --

Result<MechanismPlan> GroupDpUnified::Analyze(double epsilon) const {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  if (!(group_sensitivity_ >= 0.0) || !std::isfinite(group_sensitivity_)) {
    return Status::InvalidArgument("group sensitivity must be nonnegative");
  }
  return NewPlan(epsilon, group_sensitivity_ / epsilon);
}

std::uint64_t GroupDpUnified::Fingerprint() const {
  return pf::Fingerprint{}
      .Add(static_cast<int>(kind()))
      .Add(group_sensitivity_)
      .hash();
}

// ------------------------------------------------------------------- GK16 --

Result<MechanismPlan> Gk16Unified::Analyze(double epsilon) const {
  PF_ASSIGN_OR_RETURN(Gk16Analysis analysis,
                      Gk16Analyze(transitions_, length_, epsilon));
  MechanismPlan plan = NewPlan(epsilon, analysis.sigma);
  plan.applicable = analysis.applicable;
  plan.gk16 = analysis;
  return plan;
}

std::uint64_t Gk16Unified::Fingerprint() const {
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind())).Add(length_).Add(transitions_.size());
  for (const Matrix& p : transitions_) fp.Add(p);
  return fp.hash();
}

// ------------------------------------------------------------ Wasserstein --

Result<MechanismPlan> WassersteinUnified::Analyze(double epsilon) const {
  PF_ASSIGN_OR_RETURN(WassersteinMechanism mech,
                      WassersteinMechanism::Make(pairs_, epsilon, backend_));
  MechanismPlan plan = NewPlan(epsilon, mech.noise_scale());
  plan.wasserstein_w = mech.wasserstein_sensitivity();
  return plan;
}

std::uint64_t WassersteinUnified::Fingerprint() const {
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind()))
      .Add(static_cast<int>(backend_))
      .Add(pairs_.size());
  for (const ConditionalOutputPair& pair : pairs_) {
    for (const DiscreteDistribution* d : {&pair.mu_i, &pair.mu_j}) {
      fp.Add(d->size());
      for (const DiscreteDistribution::Atom& atom : d->atoms()) {
        fp.Add(atom.x).Add(atom.p);
      }
    }
  }
  return fp.hash();
}

// ------------------------------------------------------------- MQMGeneral --

Result<MechanismPlan> MqmGeneralUnified::Analyze(double epsilon) const {
  PF_ASSIGN_OR_RETURN(MqmAnalysis analysis,
                      AnalyzeMarkovQuiltMechanism(thetas_, epsilon, options_));
  MechanismPlan plan = NewPlan(epsilon, analysis.sigma_max);
  plan.applicable = std::isfinite(analysis.sigma_max);
  plan.mqm = std::move(analysis);
  return plan;
}

std::uint64_t MqmGeneralUnified::Fingerprint() const {
  // dedup_nodes and num_threads deliberately excluded (the library-wide
  // convention, see AddChainOptions): the noise calibration and active
  // quilts are bit-identical for every value of both, so cached plans are
  // interchangeable. Only the analysis-COST diagnostics (scored_nodes,
  // dedup_ratio) reflect whichever scan filled the cache first — callers
  // comparing scan costs must use separate caches. Everything that can
  // change the released noise — search mode, separator caps, backend
  // (ulp-level), guards — is keyed.
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind()))
      .Add(options_.max_quilt_size)  // The quilt-width cap changes the plan.
      .Add(options_.enumeration_limit)
      .Add(static_cast<int>(options_.backend))
      .Add(static_cast<int>(options_.quilt_search))
      .Add(options_.exhaustive_node_limit)
      .Add(options_.separator.max_radius)
      .Add(options_.separator.max_quilt_size)
      .Add(thetas_.size());
  for (const BayesianNetwork& bn : thetas_) {
    fp.Add(bn.num_nodes());
    for (std::size_t i = 0; i < bn.num_nodes(); ++i) {
      const BayesianNetwork::Node& node = bn.node(i);
      fp.Add(node.arity).Add(node.parents.size());
      for (int p : node.parents) fp.Add(p);
      fp.Add(node.cpt);
    }
  }
  return fp.hash();
}

// --------------------------------------------------------------- MQMExact --

namespace {
ChainMqmOptions ToChainOptions(const ChainUnifiedOptions& options,
                               double epsilon) {
  ChainMqmOptions chain;
  chain.epsilon = epsilon;
  chain.max_nearby = options.max_nearby;
  chain.allow_stationary_shortcut = options.allow_stationary_shortcut;
  chain.dedup_nodes = options.dedup_nodes;
  chain.num_threads = options.num_threads;
  return chain;
}

void AddChainOptions(pf::Fingerprint* fp, const ChainUnifiedOptions& options) {
  // num_threads and dedup_nodes deliberately excluded: results are
  // invariant to both, so plans from different pool sizes or scan
  // strategies are interchangeable.
  fp->Add(options.max_nearby).Add(options.allow_stationary_shortcut);
}

// Adapter wrapping a ChainMqmAnalysis as a ResumableAnalysis: every
// ExtendTo emits a plan exactly as the owning mechanism's Analyze would
// build it at that length (ExtendTo itself guarantees the analysis bits
// match a cold run).
class ChainResumableAnalysis : public ResumableAnalysis {
 public:
  explicit ChainResumableAnalysis(ChainMqmAnalysis analysis)
      : analysis_(std::move(analysis)) {}

  std::size_t length() const override { return analysis_.length(); }

  Result<MechanismPlan> ExtendTo(std::size_t new_length) override {
    PF_RETURN_NOT_OK(analysis_.ExtendTo(new_length));
    return CurrentPlan();
  }

  Result<MechanismPlan> CurrentPlan() const {
    const ChainMqmResult& analysis = analysis_.result();
    MechanismPlan plan;
    plan.kind = MechanismKind::kMqmExact;
    plan.epsilon = epsilon_;
    plan.sigma = analysis.sigma_max;
    plan.applicable = std::isfinite(analysis.sigma_max);
    plan.chain = analysis;
    plan.cache_hits = std::make_shared<std::atomic<std::uint64_t>>(0);
    return plan;
  }

  void set_epsilon(double epsilon) { epsilon_ = epsilon; }

 private:
  ChainMqmAnalysis analysis_;
  double epsilon_ = 0.0;
};

Result<std::unique_ptr<ResumableAnalysis>> WrapChainAnalysis(
    Result<ChainMqmAnalysis> analysis, double epsilon) {
  if (!analysis.ok()) return analysis.status();
  auto wrapped = std::make_unique<ChainResumableAnalysis>(
      std::move(analysis).value());
  wrapped->set_epsilon(epsilon);
  return std::unique_ptr<ResumableAnalysis>(std::move(wrapped));
}
}  // namespace

Result<MechanismPlan> MqmExactUnified::Analyze(double epsilon) const {
  PF_ASSIGN_OR_RETURN(
      ChainMqmResult analysis,
      MqmExactAnalyze(thetas_, length_, ToChainOptions(options_, epsilon)));
  MechanismPlan plan = NewPlan(epsilon, analysis.sigma_max);
  plan.applicable = std::isfinite(analysis.sigma_max);
  plan.chain = analysis;
  return plan;
}

std::uint64_t MqmExactUnified::Fingerprint() const {
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind())).Add(length_);
  AddChainOptions(&fp, options_);
  fp.Add(thetas_.size());
  for (const MarkovChain& theta : thetas_) {
    fp.Add(theta.initial()).Add(theta.transition());
  }
  return fp.hash();
}

std::uint64_t MqmExactUnified::PrefixFingerprint() const {
  // Fingerprint() minus the length term: equal across chain lengths of the
  // same class/config, so cached resumable analyses chain length-to-length.
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind())).Add(kPrefixTag);
  AddChainOptions(&fp, options_);
  fp.Add(thetas_.size());
  for (const MarkovChain& theta : thetas_) {
    fp.Add(theta.initial()).Add(theta.transition());
  }
  return EnsureNonZeroFingerprint(fp.hash());
}

Result<std::unique_ptr<ResumableAnalysis>> MqmExactUnified::AnalyzeResumable(
    double epsilon) const {
  return WrapChainAnalysis(
      ChainMqmAnalysis::Analyze(thetas_, length_,
                                ToChainOptions(options_, epsilon)),
      epsilon);
}

Result<MechanismPlan> MqmExactFreeInitialUnified::Analyze(double epsilon) const {
  PF_ASSIGN_OR_RETURN(ChainMqmResult analysis,
                      MqmExactAnalyzeFreeInitial(
                          transitions_, length_,
                          ToChainOptions(options_, epsilon)));
  MechanismPlan plan = NewPlan(epsilon, analysis.sigma_max);
  plan.applicable = std::isfinite(analysis.sigma_max);
  plan.chain = analysis;
  return plan;
}

std::uint64_t MqmExactFreeInitialUnified::Fingerprint() const {
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind()))
      .Add(std::uint64_t{0xF1EE});  // Distinguish the free-initial class.
  fp.Add(length_);
  AddChainOptions(&fp, options_);
  fp.Add(transitions_.size());
  for (const Matrix& p : transitions_) fp.Add(p);
  return fp.hash();
}

std::uint64_t MqmExactFreeInitialUnified::PrefixFingerprint() const {
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind()))
      .Add(std::uint64_t{0xF1EE})  // Distinguish the free-initial class.
      .Add(kPrefixTag);
  AddChainOptions(&fp, options_);
  fp.Add(transitions_.size());
  for (const Matrix& p : transitions_) fp.Add(p);
  return EnsureNonZeroFingerprint(fp.hash());
}

Result<std::unique_ptr<ResumableAnalysis>>
MqmExactFreeInitialUnified::AnalyzeResumable(double epsilon) const {
  return WrapChainAnalysis(
      ChainMqmAnalysis::AnalyzeFreeInitial(transitions_, length_,
                                           ToChainOptions(options_, epsilon)),
      epsilon);
}

// -------------------------------------------------------------- MQMApprox --

MqmApproxUnified::MqmApproxUnified(const std::vector<MarkovChain>& thetas,
                                   std::size_t length,
                                   ChainUnifiedOptions options)
    : length_(length), options_(options) {
  Result<ChainClassSummary> summary = SummarizeChainClass(thetas);
  if (summary.ok()) {
    summary_ = summary.value();
  } else {
    summary_status_ = summary.status();
  }
}

Result<MechanismPlan> MqmApproxUnified::Analyze(double epsilon) const {
  PF_RETURN_NOT_OK(summary_status_);
  PF_ASSIGN_OR_RETURN(
      ChainMqmResult analysis,
      MqmApproxAnalyze(summary_, length_, ToChainOptions(options_, epsilon)));
  MechanismPlan plan = NewPlan(epsilon, analysis.sigma_max);
  plan.applicable = std::isfinite(analysis.sigma_max);
  plan.chain = analysis;
  return plan;
}

std::uint64_t MqmApproxUnified::Fingerprint() const {
  pf::Fingerprint fp;
  fp.Add(static_cast<int>(kind())).Add(length_);
  AddChainOptions(&fp, options_);
  fp.Add(summary_.pi_min).Add(summary_.eigengap).Add(summary_.all_reversible);
  return fp.hash();
}

}  // namespace pf
