// MQMApprox (Algorithm 4): the Markov Quilt Mechanism with max-influence
// replaced by the closed-form *upper bound* of Lemma 4.8 (general chains)
// and Lemma C.1 (reversible chains), driven only by the class parameters
// pi_min_Theta and eigengap g_Theta:
//
//   Delta_t = exp(-g t / 2) / pi_min
//   e({X_{i-a}, X_{i+b}} | X_i) <= log((1+Delta_b)/(1-Delta_b))
//                                + 2 log((1+Delta_a)/(1-Delta_a))
//
// (one-sided quilts keep only the matching term). Because an upper bound on
// the score is used, the mechanism remains epsilon-Pufferfish private; the
// price is extra noise relative to MQMExact. The bound is independent of
// the node index, so Lemma 4.9 applies: for chains of length
// T >= 8 a*, only the middle node with quilt width <= 4 a* need be scored,
// giving an O((a*)^2) search independent of T.
#ifndef PUFFERFISH_PUFFERFISH_MQM_APPROX_H_
#define PUFFERFISH_PUFFERFISH_MQM_APPROX_H_

#include <cstddef>

#include "common/status.h"
#include "graphical/markov_quilt.h"
#include "pufferfish/framework.h"
#include "pufferfish/mqm_exact.h"

namespace pf {

/// \brief Lemma 4.8 / C.1 upper bound on the max-influence of a chain quilt
/// under a class with the given (pi_min, g) summary. Returns +infinity when
/// the quilt endpoints are too close for the bound to apply
/// (Delta_t >= 1, i.e. t < 2 log(1/pi_min)/g).
Result<double> ChainQuiltInfluenceBound(const ChainClassSummary& summary,
                                        const MarkovQuilt& quilt);

/// \brief Lemma 4.9's critical width
///   a* = 2 * ceil( log( (e^{eps/6}+1)/(e^{eps/6}-1) * 1/pi_min ) / g ).
/// For T >= 8 a*, the optimal quilt for the middle node has width <= 4 a*
/// and the middle node attains sigma_max.
Result<std::size_t> LemmaFourNineAStar(const ChainClassSummary& summary,
                                       double epsilon);

/// \brief Algorithm 4 (MQMApprox). `options.max_nearby == 0` selects the
/// Lemma 4.9 automatic width (4 a*). The influence bound is node-index
/// independent, so when T >= 8 a* only the middle node is scored
/// (Lemma 4.9); otherwise every node is scanned.
Result<ChainMqmResult> MqmApproxAnalyze(const ChainClassSummary& summary,
                                        std::size_t length,
                                        const ChainMqmOptions& options);

/// Convenience overload computing the summary from an explicit chain class.
Result<ChainMqmResult> MqmApproxAnalyze(const std::vector<MarkovChain>& thetas,
                                        std::size_t length,
                                        const ChainMqmOptions& options);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_MQM_APPROX_H_
