// Per-node-class deduplication for Algorithm 2 on general Bayesian
// networks — the PR-3 convention (key cheaply, verify exactly, never trust
// a hash alone) applied to arbitrary topologies.
//
// The invariant that makes general-network dedup sound: sigma_i is a pure
// function of the network AS SEEN FROM node i — the isomorphism class of
// the network rooted at i, with CPTs attached. We therefore compute each
// node's score on its CANONICAL FORM: the factor system relabeled by a
// deterministic BFS-refinement order rooted at the target (which becomes
// variable 0), with factor scopes normalized to ascending canonical ids.
// Two nodes with byte-identical canonical forms pose byte-identical
// scoring problems, so they share sigma_i, the active-quilt shape, and the
// influence BIT-identically — the dedup path just caches the function.
//
// Key = 64-bit fingerprint of the form (local-topology signature + CPT
// content + the target-rooted distance layering); membership is verified
// by exact comparison of the full canonical form (SameProblem), so a hash
// collision can only cost a wasted compare, never a wrong score. Nodes in
// symmetric positions (leaves of a star, same-depth nodes of a uniform
// tree, quadrant images of a grid) collapse into one class; nodes that
// merely look alike locally but differ anywhere in their rooted view do
// not — exactness over hit rate.
#ifndef PUFFERFISH_PUFFERFISH_NODE_CLASSES_H_
#define PUFFERFISH_PUFFERFISH_NODE_CLASSES_H_

#include <cstdint>
#include <vector>

#include "graphical/bayesian_network.h"
#include "graphical/factor.h"
#include "graphical/moral_graph.h"

namespace pf {

/// \brief One protected node's scoring problem, canonically relabeled so
/// the target is variable 0 and everything else follows the rooted
/// canonical order. Self-contained: quilt generation runs on `adjacency`,
/// influence inference on `factors`/`arities`.
struct NodeCanonicalForm {
  /// order[new_id] = original node id (the inverse relabeling, used to map
  /// the chosen active quilt back to the caller's node ids).
  std::vector<int> order;
  /// Per-variable arity, canonical ids.
  std::vector<int> arities;
  /// Moral adjacency (undirected, sorted), canonical ids.
  std::vector<std::vector<int>> adjacency;
  /// Per theta: the network's CPT factors with scopes renumbered and
  /// normalized to ascending canonical ids (table permuted to match — pure
  /// data movement, no arithmetic), the list sorted by scope.
  std::vector<std::vector<Factor>> factors;
  /// Cheap class key: fingerprint of everything above except `order`.
  std::uint64_t key = 0;

  /// Exact class-membership check: byte equality of arities, adjacency,
  /// and every factor (scope, arity, and value BITS) — the relabelings
  /// (`order`) may differ, that is the point.
  bool SameProblem(const NodeCanonicalForm& other) const;
};

/// \brief The canonical order rooted at `target`: nodes sorted by
/// (BFS distance from target, refined color, original id). The color is an
/// iterated Weisfeiler-Leman refinement seeded with label-independent node
/// attributes (arity, degree, CPT bytes per theta), so structurally
/// interchangeable nodes tie — and ties between genuinely automorphic
/// nodes are harmless, any resolution yields the same canonical bytes.
/// Nodes in other components sort after the target's component (distance
/// treated as num_nodes).
std::vector<int> CanonicalNodeOrder(const std::vector<BayesianNetwork>& thetas,
                                    const MoralGraph& graph, int target);

/// \brief Builds the canonical form of `target`'s scoring problem. `graph`
/// must be the (union) moral graph of `thetas`.
NodeCanonicalForm CanonicalizeNode(const std::vector<BayesianNetwork>& thetas,
                                   const MoralGraph& graph, int target);

/// \brief The union moral graph of a network class: an edge wherever ANY
/// theta's moralization has one. Quilts generated from separators of the
/// union graph separate in every theta, which is what Definition 4.2
/// requires of the whole class (structurally identical thetas — the common
/// case — make this the ordinary moral graph).
MoralGraph UnionMoralGraph(const std::vector<BayesianNetwork>& thetas);

}  // namespace pf

#endif  // PUFFERFISH_PUFFERFISH_NODE_CLASSES_H_
