#include "pufferfish/composition.h"

#include <cmath>
#include <limits>

#include "pufferfish/framework.h"

namespace pf {

namespace {
/// Relative tie slack of ComposedBudgetAdmits, in units of machine
/// epsilon: covers the representation error of decimal epsilon/budget
/// literals (<= 1 ulp each) plus the single product rounding, with room to
/// spare, while staying ~13 orders of magnitude below the smallest genuine
/// overrun (one whole epsilon = 1/K relative).
constexpr double kBudgetTieUlps = 16.0;
}  // namespace

bool ComposedBudgetAdmits(std::size_t num_releases, double max_epsilon,
                          double budget) {
  if (std::isinf(budget) && budget > 0.0) return true;  // Unmetered.
  const double composed = static_cast<double>(num_releases) * max_epsilon;
  if (!std::isfinite(composed)) return false;
  const double slack = kBudgetTieUlps *
                       std::numeric_limits<double>::epsilon() *
                       std::max(std::fabs(budget), std::fabs(composed));
  return composed <= budget + slack;
}

std::string CompositionAccountant::QuiltSignature(const MarkovQuilt& q) {
  std::string sig = std::to_string(q.target) + ":";
  for (int v : q.quilt) sig += std::to_string(v) + ",";
  sig += "|" + std::to_string(q.nearby_count);
  return sig;
}

Status CompositionAccountant::RecordRelease(double epsilon,
                                            const MarkovQuilt& active_quilt) {
  // Shared with every mechanism's Analyze: the ledger and the mechanisms
  // must agree on what a valid epsilon is. Rejecting (InvalidArgument)
  // instead of silently accounting keeps TotalEpsilon meaningful.
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  const std::string sig = QuiltSignature(active_quilt);
  if (epsilons_.empty()) {
    first_signature_ = sig;
  } else if (sig != first_signature_) {
    consistent_ = false;
  }
  epsilons_.push_back(epsilon);
  if (epsilon > max_epsilon_) max_epsilon_ = epsilon;
  return Status::OK();
}

Status CompositionAccountant::RecordReleaseStrict(
    double epsilon, const MarkovQuilt& active_quilt) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  const std::string sig = QuiltSignature(active_quilt);
  if (!epsilons_.empty() && sig != first_signature_) {
    return Status::FailedPrecondition(
        "release refused: its active quilt differs from the ledger's "
        "earlier releases, so Theorem 4.4 composition does not apply; "
        "serve it from a separate session");
  }
  if (epsilons_.empty()) first_signature_ = sig;
  epsilons_.push_back(epsilon);
  if (epsilon > max_epsilon_) max_epsilon_ = epsilon;
  return Status::OK();
}

Status CompositionAccountant::RecordBatchStrict(
    const std::vector<double>& epsilons, const MarkovQuilt& active_quilt) {
  // Validate everything BEFORE mutating: all-or-nothing is the contract.
  for (double epsilon : epsilons) {
    PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  }
  if (epsilons.empty()) return Status::OK();
  const std::string sig = QuiltSignature(active_quilt);
  if (!epsilons_.empty() && sig != first_signature_) {
    return Status::FailedPrecondition(
        "batch refused: its active quilt differs from the ledger's earlier "
        "releases, so Theorem 4.4 composition does not apply; serve it from "
        "a separate session");
  }
  if (epsilons_.empty()) first_signature_ = sig;
  epsilons_.insert(epsilons_.end(), epsilons.begin(), epsilons.end());
  for (double epsilon : epsilons) {
    if (epsilon > max_epsilon_) max_epsilon_ = epsilon;
  }
  return Status::OK();
}

double CompositionAccountant::TotalEpsilon() const {
  return static_cast<double>(epsilons_.size()) * max_epsilon_;
}

bool CompositionAccountant::MatchesActiveQuilt(const MarkovQuilt& quilt) const {
  return epsilons_.empty() || QuiltSignature(quilt) == first_signature_;
}

void CompositionAccountant::Reset() {
  epsilons_.clear();
  max_epsilon_ = 0.0;
  first_signature_.clear();
  consistent_ = true;
}

}  // namespace pf
