#include "pufferfish/composition.h"

#include <algorithm>

#include "pufferfish/framework.h"

namespace pf {

std::string CompositionAccountant::QuiltSignature(const MarkovQuilt& q) {
  std::string sig = std::to_string(q.target) + ":";
  for (int v : q.quilt) sig += std::to_string(v) + ",";
  sig += "|" + std::to_string(q.nearby_count);
  return sig;
}

Status CompositionAccountant::RecordRelease(double epsilon,
                                            const MarkovQuilt& active_quilt) {
  PF_RETURN_NOT_OK(ValidatePrivacyParams({epsilon}));
  const std::string sig = QuiltSignature(active_quilt);
  if (epsilons_.empty()) {
    first_signature_ = sig;
  } else if (sig != first_signature_) {
    consistent_ = false;
  }
  epsilons_.push_back(epsilon);
  return Status::OK();
}

double CompositionAccountant::TotalEpsilon() const {
  if (epsilons_.empty()) return 0.0;
  const double max_eps = *std::max_element(epsilons_.begin(), epsilons_.end());
  return static_cast<double>(epsilons_.size()) * max_eps;
}

}  // namespace pf
