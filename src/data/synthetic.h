// Synthetic workloads of Section 5.2: binary Markov chains with transition
// parameters drawn from an interval class Theta = [alpha, beta] and initial
// distributions drawn uniformly from the simplex.
#ifndef PUFFERFISH_DATA_SYNTHETIC_H_
#define PUFFERFISH_DATA_SYNTHETIC_H_

#include <cstddef>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "graphical/markov_chain.h"
#include "pufferfish/framework.h"

namespace pf {

/// One sampled synthetic dataset and the parameters that generated it.
struct SyntheticChainSample {
  /// Generating parameters: p0, p1 uniform in [alpha, beta], q0 uniform.
  double p0 = 0.0;
  double p1 = 0.0;
  Vector initial;
  /// The sampled state sequence X_1..X_T.
  StateSequence sequence;
};

/// \brief Draws one dataset per the Section 5.2 protocol: p0, p1 ~
/// U[alpha, beta], initial distribution uniform on the simplex, then a
/// length-T trajectory.
Result<SyntheticChainSample> SampleBinaryChainDataset(
    const BinaryChainIntervalClass& theta_class, std::size_t length, Rng* rng);

}  // namespace pf

#endif  // PUFFERFISH_DATA_SYNTHETIC_H_
