// The flu-status-over-social-network application (Example 2 and the worked
// example of Section 3.1): people interact in cliques; within a clique the
// infection count N is exchangeable with a known distribution p_N, and the
// goal is to release the number of infected people while hiding each
// individual's status.
//
// Exchangeability gives the conditional count distributions in closed form:
//   P(N = j | X_i = 1) = p_N(j) * (j/n)       / P(X_i = 1)
//   P(N = j | X_i = 0) = p_N(j) * ((n-j)/n)   / P(X_i = 0)
// which reproduce the Section 3.1 table exactly and feed the Wasserstein
// Mechanism.
#ifndef PUFFERFISH_DATA_FLU_H_
#define PUFFERFISH_DATA_FLU_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "dist/discrete_distribution.h"
#include "graphical/bayesian_network.h"
#include "pufferfish/wasserstein_mechanism.h"

namespace pf {

/// \brief One clique: n exchangeable individuals with infection-count
/// distribution p_N over {0, ..., n}.
class FluCliqueModel {
 public:
  /// `count_distribution` must have n+1 entries summing to 1.
  static Result<FluCliqueModel> Make(std::size_t clique_size,
                                     Vector count_distribution);

  /// The Section 3.1 worked example: n = 4,
  /// p_N = (0.1, 0.15, 0.5, 0.15, 0.1).
  static FluCliqueModel PaperExample();

  /// The Example 2 contagion model: p_N(j) proportional to exp(c * j)
  /// ("flu is contagious": more infections are likelier, up to saturation).
  static Result<FluCliqueModel> Contagion(std::size_t clique_size, double c);

  std::size_t clique_size() const { return n_; }
  const Vector& count_distribution() const { return p_n_; }

  /// Marginal infection probability P(X_i = 1) (same for all i).
  double InfectionProbability() const;

  /// Conditional distribution of N given X_i = status (0 or 1), as a
  /// distribution over {0..n}. Fails if the conditioning event has
  /// probability zero.
  Result<DiscreteDistribution> ConditionalCount(int status) const;

  /// The (mu_0, mu_1) pair for the count query F(X) = N — by symmetry, the
  /// single pair the Wasserstein Mechanism must consider per clique.
  Result<ConditionalOutputPair> CountQueryOutputPair() const;

  /// Group sensitivity of the count query under group DP (the whole clique
  /// is one group): n.
  double GroupSensitivity() const { return static_cast<double>(n_); }

  /// Samples a status vector: N ~ p_N, then a uniformly random infected set.
  std::vector<int> Sample(Rng* rng) const;

 private:
  FluCliqueModel(std::size_t n, Vector p_n) : n_(n), p_n_(std::move(p_n)) {}
  std::size_t n_;
  Vector p_n_;
};

/// \brief A social network that is a disjoint union of cliques; the query of
/// interest is the total number of infected people. The Wasserstein
/// sensitivity of the union is the max over cliques (Theorem 3.3's mixture
/// argument: independent cliques only mix the conditionals).
class FluNetwork {
 public:
  explicit FluNetwork(std::vector<FluCliqueModel> cliques)
      : cliques_(std::move(cliques)) {}

  const std::vector<FluCliqueModel>& cliques() const { return cliques_; }

  /// Total population size.
  std::size_t population() const;

  /// Wasserstein-mechanism sensitivity W for the total-count query: max over
  /// cliques of W_inf of the per-clique conditional pair.
  Result<double> CountQuerySensitivity() const;

  /// Group-DP sensitivity: size of the largest clique.
  double GroupSensitivity() const;

  /// Samples everyone's status (clique by clique, independently).
  std::vector<int> Sample(Rng* rng) const;

 private:
  std::vector<FluCliqueModel> cliques_;
};

/// \brief Flu propagation over a household contact network, as a Bayesian
/// network for the general Markov Quilt Mechanism (Algorithm 2) — the
/// structured-inference companion of the clique/Wasserstein flu model
/// above, and a workload that only became servable once max-influence
/// inference moved to variable elimination (a network of `households *
/// (1 + household_size)` binary nodes is far past any enumeration guard).
///
/// Each household has one commuter (hub) and `household_size` members
/// (spokes). Commuters form a community backbone chain: commuter h
/// catches flu from the community at `community_rate`, plus from commuter
/// h-1 with probability `transmission`; members catch it from their
/// commuter with probability `transmission` on top of half the community
/// rate. All nodes are binary (0 healthy, 1 infected); the moral graph is
/// a tree, so the engine's treewidth screen admits it at any size.
Result<BayesianNetwork> FluContactNetwork(std::size_t households,
                                          std::size_t household_size,
                                          double community_rate,
                                          double transmission);

}  // namespace pf

#endif  // PUFFERFISH_DATA_FLU_H_
