#include "data/flu.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "data/topologies.h"
#include "dist/wasserstein.h"

namespace pf {

Result<FluCliqueModel> FluCliqueModel::Make(std::size_t clique_size,
                                            Vector count_distribution) {
  if (clique_size == 0) return Status::InvalidArgument("empty clique");
  if (count_distribution.size() != clique_size + 1) {
    return Status::InvalidArgument("count distribution must have n+1 entries");
  }
  if (!IsProbabilityVector(count_distribution, 1e-8)) {
    return Status::InvalidArgument("count distribution must sum to 1");
  }
  return FluCliqueModel(clique_size, std::move(count_distribution));
}

FluCliqueModel FluCliqueModel::PaperExample() {
  return FluCliqueModel(4, {0.1, 0.15, 0.5, 0.15, 0.1});
}

Result<FluCliqueModel> FluCliqueModel::Contagion(std::size_t clique_size,
                                                 double c) {
  Vector p(clique_size + 1);
  double sum = 0.0;
  for (std::size_t j = 0; j <= clique_size; ++j) {
    p[j] = std::exp(c * static_cast<double>(j));
    sum += p[j];
  }
  for (double& v : p) v /= sum;
  return Make(clique_size, std::move(p));
}

double FluCliqueModel::InfectionProbability() const {
  // P(X_i = 1) = sum_j p_N(j) * j / n by exchangeability.
  double prob = 0.0;
  for (std::size_t j = 0; j <= n_; ++j) {
    prob += p_n_[j] * static_cast<double>(j) / static_cast<double>(n_);
  }
  return prob;
}

Result<DiscreteDistribution> FluCliqueModel::ConditionalCount(int status) const {
  if (status != 0 && status != 1) {
    return Status::InvalidArgument("status must be 0 or 1");
  }
  std::vector<DiscreteDistribution::Atom> atoms;
  double total = 0.0;
  for (std::size_t j = 0; j <= n_; ++j) {
    const double frac = static_cast<double>(j) / static_cast<double>(n_);
    const double weight = (status == 1) ? frac : (1.0 - frac);
    const double mass = p_n_[j] * weight;
    if (mass > 0.0) {
      atoms.push_back({static_cast<double>(j), mass});
      total += mass;
    }
  }
  if (total <= 0.0) {
    return Status::FailedPrecondition("conditioning event has probability zero");
  }
  for (auto& atom : atoms) atom.p /= total;
  return DiscreteDistribution::Make(std::move(atoms), 1e-8);
}

Result<ConditionalOutputPair> FluCliqueModel::CountQueryOutputPair() const {
  PF_ASSIGN_OR_RETURN(DiscreteDistribution mu0, ConditionalCount(0));
  PF_ASSIGN_OR_RETURN(DiscreteDistribution mu1, ConditionalCount(1));
  return ConditionalOutputPair{std::move(mu0), std::move(mu1)};
}

std::vector<int> FluCliqueModel::Sample(Rng* rng) const {
  const std::size_t count = rng->Categorical(p_n_);
  std::vector<int> status(n_, 0);
  std::fill(status.begin(), status.begin() + static_cast<long>(count), 1);
  std::shuffle(status.begin(), status.end(), rng->engine());
  return status;
}

std::size_t FluNetwork::population() const {
  std::size_t total = 0;
  for (const FluCliqueModel& c : cliques_) total += c.clique_size();
  return total;
}

Result<double> FluNetwork::CountQuerySensitivity() const {
  if (cliques_.empty()) return Status::InvalidArgument("empty network");
  double w = 0.0;
  for (const FluCliqueModel& clique : cliques_) {
    PF_ASSIGN_OR_RETURN(ConditionalOutputPair pair, clique.CountQueryOutputPair());
    PF_ASSIGN_OR_RETURN(double wc, WassersteinInf(pair.mu_i, pair.mu_j));
    w = std::max(w, wc);
  }
  return w;
}

double FluNetwork::GroupSensitivity() const {
  std::size_t largest = 0;
  for (const FluCliqueModel& c : cliques_) {
    largest = std::max(largest, c.clique_size());
  }
  return static_cast<double>(largest);
}

std::vector<int> FluNetwork::Sample(Rng* rng) const {
  std::vector<int> all;
  all.reserve(population());
  for (const FluCliqueModel& c : cliques_) {
    const std::vector<int> s = c.Sample(rng);
    all.insert(all.end(), s.begin(), s.end());
  }
  return all;
}

Result<BayesianNetwork> FluContactNetwork(std::size_t households,
                                          std::size_t household_size,
                                          double community_rate,
                                          double transmission) {
  if (!(community_rate >= 0.0) || community_rate > 1.0 ||
      !(transmission >= 0.0) || transmission > 1.0) {
    return Status::InvalidArgument("rates must lie in [0, 1]");
  }
  // Infection probability given an infected contact: the contact's
  // transmission on top of the ambient rate.
  const auto exposed = [&](double ambient) {
    return ambient + (1.0 - ambient) * transmission;
  };
  const double member_ambient = community_rate / 2.0;
  const Matrix hub_cpt{{1.0 - community_rate, community_rate},
                       {1.0 - exposed(community_rate), exposed(community_rate)}};
  const Matrix spoke_cpt{
      {1.0 - member_ambient, member_ambient},
      {1.0 - exposed(member_ambient), exposed(member_ambient)}};
  return HubSpokeNetwork(households, household_size,
                         {1.0 - community_rate, community_rate}, hub_cpt,
                         spoke_cpt);
}

}  // namespace pf
