#include "data/activity.h"

#include <algorithm>
#include <cmath>

namespace pf {

const char* ActivityStateName(int state) {
  switch (state) {
    case kActive: return "Active";
    case kStandStill: return "Stand Still";
    case kStandMoving: return "Stand Moving";
    case kSedentary: return "Sedentary";
    default: return "Unknown";
  }
}

const char* ActivityGroupName(ActivityGroup group) {
  switch (group) {
    case ActivityGroup::kCyclist: return "cyclist";
    case ActivityGroup::kOlderWoman: return "older woman";
    case ActivityGroup::kOverweightWoman: return "overweight woman";
  }
  return "unknown";
}

Matrix ActivityGroupTransition(ActivityGroup group) {
  // 12-second epochs: strong diagonals (activities persist for minutes).
  // Rows/cols ordered [Active, StandStill, StandMoving, Sedentary]; the
  // groups differ in how sticky the active and sedentary states are and in
  // the inflow to each, which drives the Figure 4(d-f) stationary shapes.
  switch (group) {
    case ActivityGroup::kCyclist:
      return Matrix{{0.9780, 0.0060, 0.0110, 0.0050},
                    {0.0150, 0.9600, 0.0200, 0.0050},
                    {0.0200, 0.0150, 0.9550, 0.0100},
                    {0.0040, 0.0030, 0.0030, 0.9900}};
    case ActivityGroup::kOlderWoman:
      return Matrix{{0.9500, 0.0200, 0.0200, 0.0100},
                    {0.0100, 0.9650, 0.0150, 0.0100},
                    {0.0150, 0.0200, 0.9500, 0.0150},
                    {0.0020, 0.0040, 0.0040, 0.9900}};
    case ActivityGroup::kOverweightWoman:
      return Matrix{{0.9400, 0.0200, 0.0200, 0.0200},
                    {0.0080, 0.9600, 0.0170, 0.0150},
                    {0.0100, 0.0200, 0.9500, 0.0200},
                    {0.0010, 0.0030, 0.0030, 0.9930}};
  }
  return Matrix::Identity(kNumActivityStates);
}

std::size_t ActivityGroupSize(ActivityGroup group) {
  switch (group) {
    case ActivityGroup::kCyclist: return 40;
    case ActivityGroup::kOlderWoman: return 16;
    case ActivityGroup::kOverweightWoman: return 36;
  }
  return 0;
}

std::size_t ActivityPerson::TotalObservations() const {
  std::size_t total = 0;
  for (const StateSequence& c : chains) total += c.size();
  return total;
}

std::size_t ActivityPerson::LongestChain() const {
  std::size_t longest = 0;
  for (const StateSequence& c : chains) longest = std::max(longest, c.size());
  return longest;
}

std::vector<StateSequence> ActivityGroupData::AllChains() const {
  std::vector<StateSequence> all;
  for (const ActivityPerson& p : people) {
    all.insert(all.end(), p.chains.begin(), p.chains.end());
  }
  return all;
}

std::size_t ActivityGroupData::TotalObservations() const {
  std::size_t total = 0;
  for (const ActivityPerson& p : people) total += p.TotalObservations();
  return total;
}

std::size_t ActivityGroupData::LongestChain() const {
  std::size_t longest = 0;
  for (const ActivityPerson& p : people) {
    longest = std::max(longest, p.LongestChain());
  }
  return longest;
}

namespace {
// Per-person transition matrix: off-diagonals multiplied by a log-uniform
// factor and the diagonal adjusted to keep rows stochastic.
Matrix PerturbTransition(const Matrix& base, double variation, Rng* rng) {
  const std::size_t k = base.rows();
  Matrix p = base;
  for (std::size_t i = 0; i < k; ++i) {
    double off_sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      if (i == j) continue;
      const double factor = std::exp(rng->Uniform(-variation, variation));
      p(i, j) = base(i, j) * factor;
      off_sum += p(i, j);
    }
    // Keep the row stochastic; cap off-diagonal mass to preserve dominance.
    if (off_sum > 0.5) {
      for (std::size_t j = 0; j < k; ++j) {
        if (i != j) p(i, j) *= 0.5 / off_sum;
      }
      off_sum = 0.5;
    }
    p(i, i) = 1.0 - off_sum;
  }
  return p;
}
}  // namespace

Result<ActivityGroupData> SimulateActivityGroup(ActivityGroup group,
                                                const ActivitySimOptions& options,
                                                Rng* rng) {
  if (options.mean_observations_per_person == 0 ||
      options.mean_segment_length == 0) {
    return Status::InvalidArgument("activity simulation sizes must be positive");
  }
  ActivityGroupData data;
  data.group = group;
  const Matrix base = ActivityGroupTransition(group);
  const std::size_t num_people = ActivityGroupSize(group);
  for (std::size_t person = 0; person < num_people; ++person) {
    const Matrix p = PerturbTransition(base, options.person_variation, rng);
    PF_ASSIGN_OR_RETURN(
        MarkovChain probe,
        MarkovChain::Make(Vector(kNumActivityStates, 1.0 / kNumActivityStates), p));
    Result<Vector> pi = probe.StationaryDistribution();
    const Vector start = pi.ok() ? pi.value()
                                 : Vector(kNumActivityStates,
                                          1.0 / kNumActivityStates);
    PF_ASSIGN_OR_RETURN(MarkovChain chain, MarkovChain::Make(start, p));
    // Total observations ~ Uniform around the mean (+-25%).
    const double jitter = rng->Uniform(0.75, 1.25);
    std::size_t remaining = static_cast<std::size_t>(
        jitter * static_cast<double>(options.mean_observations_per_person));
    ActivityPerson subject;
    while (remaining > 0) {
      // Segment length ~ geometric-ish via uniform around the mean; gaps of
      // > 10 minutes start a new independent chain (the paper's rule).
      const double seg_jitter = rng->Uniform(0.4, 1.6);
      std::size_t seg = static_cast<std::size_t>(
          seg_jitter * static_cast<double>(options.mean_segment_length));
      seg = std::clamp<std::size_t>(seg, 50, remaining);
      subject.chains.push_back(chain.Sample(seg, rng));
      remaining -= seg;
      if (remaining < 50) break;  // Drop sub-minute tails.
    }
    data.people.push_back(std::move(subject));
  }
  return data;
}

}  // namespace pf
