#include "data/topologies.h"

#include <string>

namespace pf {

namespace {

Status CheckDistribution(const Vector& root) {
  if (root.empty()) return Status::InvalidArgument("empty root distribution");
  double sum = 0.0;
  for (double p : root) {
    if (!(p >= 0.0)) {
      return Status::InvalidArgument("root probabilities must be nonnegative");
    }
    sum += p;
  }
  if (sum <= 0.0) return Status::InvalidArgument("root distribution sums to 0");
  return Status::OK();
}

Matrix RowMatrix(const Vector& row) {
  Matrix m(1, row.size());
  for (std::size_t j = 0; j < row.size(); ++j) m(0, j) = row[j];
  return m;
}

}  // namespace

Vector BinaryRoot(double p1) { return {1.0 - p1, p1}; }

Matrix BinaryNoisyCopyCpt(double flip) {
  return Matrix{{1.0 - flip, flip}, {flip, 1.0 - flip}};
}

Matrix BinaryNoisyOrCpt(double flip) {
  // Rows: parent assignment 00, 01, 10, 11; OR = 0 only for 00.
  return Matrix{{1.0 - flip, flip},
                {flip, 1.0 - flip},
                {flip, 1.0 - flip},
                {flip, 1.0 - flip}};
}

Result<BayesianNetwork> TreeNetwork(std::size_t num_nodes,
                                    std::size_t branching, const Vector& root,
                                    const Matrix& edge_cpt) {
  if (num_nodes == 0) return Status::InvalidArgument("tree needs >= 1 node");
  if (branching == 0) return Status::InvalidArgument("branching must be >= 1");
  PF_RETURN_NOT_OK(CheckDistribution(root));
  const int k = static_cast<int>(root.size());
  BayesianNetwork bn;
  PF_RETURN_NOT_OK(bn.AddNode("T0", k, {}, RowMatrix(root)));
  for (std::size_t i = 1; i < num_nodes; ++i) {
    const int parent = static_cast<int>((i - 1) / branching);
    PF_RETURN_NOT_OK(
        bn.AddNode("T" + std::to_string(i), k, {parent}, edge_cpt));
  }
  return bn;
}

Result<BayesianNetwork> GridNetwork(std::size_t rows, std::size_t cols,
                                    const Vector& root, const Matrix& edge_cpt,
                                    const Matrix& merge_cpt) {
  if (rows == 0 || cols == 0) {
    return Status::InvalidArgument("grid needs positive dimensions");
  }
  PF_RETURN_NOT_OK(CheckDistribution(root));
  const int k = static_cast<int>(root.size());
  BayesianNetwork bn;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string name =
          "G" + std::to_string(r) + "_" + std::to_string(c);
      const int up = static_cast<int>((r - 1) * cols + c);
      const int left = static_cast<int>(r * cols + c - 1);
      if (r == 0 && c == 0) {
        PF_RETURN_NOT_OK(bn.AddNode(name, k, {}, RowMatrix(root)));
      } else if (r == 0) {
        PF_RETURN_NOT_OK(bn.AddNode(name, k, {left}, edge_cpt));
      } else if (c == 0) {
        PF_RETURN_NOT_OK(bn.AddNode(name, k, {up}, edge_cpt));
      } else {
        PF_RETURN_NOT_OK(bn.AddNode(name, k, {up, left}, merge_cpt));
      }
    }
  }
  return bn;
}

Result<BayesianNetwork> HubSpokeNetwork(std::size_t num_hubs,
                                        std::size_t spokes_per_hub,
                                        const Vector& root,
                                        const Matrix& hub_cpt,
                                        const Matrix& spoke_cpt) {
  if (num_hubs == 0) return Status::InvalidArgument("need >= 1 hub");
  PF_RETURN_NOT_OK(CheckDistribution(root));
  const int k = static_cast<int>(root.size());
  BayesianNetwork bn;
  int prev_hub = -1;
  for (std::size_t h = 0; h < num_hubs; ++h) {
    const int hub = static_cast<int>(bn.num_nodes());
    const std::string hub_name = "H" + std::to_string(h);
    if (prev_hub < 0) {
      PF_RETURN_NOT_OK(bn.AddNode(hub_name, k, {}, RowMatrix(root)));
    } else {
      PF_RETURN_NOT_OK(bn.AddNode(hub_name, k, {prev_hub}, hub_cpt));
    }
    for (std::size_t s = 0; s < spokes_per_hub; ++s) {
      PF_RETURN_NOT_OK(bn.AddNode(hub_name + "S" + std::to_string(s), k,
                                  {hub}, spoke_cpt));
    }
    prev_hub = hub;
  }
  return bn;
}

}  // namespace pf
