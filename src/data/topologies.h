// Structured Bayesian-network topology generators — the general-network
// (Algorithm 2) counterpart of the synthetic chain workloads: trees,
// grids, and hub-and-spoke networks of arbitrary size with shared CPTs.
// Their moral graphs have small induced treewidth (1 for trees and stars,
// min(rows, cols) for grids), so variable-elimination inference — and with
// it the Markov Quilt Mechanism — scales to hundreds of nodes where
// enumeration caps out near 20. Uniform CPTs also make many nodes
// structurally interchangeable, which is exactly what the canonical
// node-class dedup (pufferfish/node_classes.h) collapses.
#ifndef PUFFERFISH_DATA_TOPOLOGIES_H_
#define PUFFERFISH_DATA_TOPOLOGIES_H_

#include <cstddef>

#include "common/matrix.h"
#include "common/status.h"
#include "graphical/bayesian_network.h"

namespace pf {

/// \brief Binary root distribution (p1 = P(X = 1)).
Vector BinaryRoot(double p1);

/// \brief Binary symmetric-channel CPT: the child copies its parent and
/// flips with probability `flip`. Rows {1-flip, flip}, {flip, 1-flip}.
/// flip = 0.25 (and other dyadic rationals) keeps every conditional
/// exactly representable — handy for bit-exact backend comparisons.
Matrix BinaryNoisyCopyCpt(double flip);

/// \brief Binary two-parent CPT: the child copies the OR of its parents
/// and flips with probability `flip` (rows ordered 00, 01, 10, 11).
Matrix BinaryNoisyOrCpt(double flip);

/// \brief Complete-ish rooted tree: node 0 is the root with distribution
/// `root`; node i > 0 hangs off parent (i-1)/branching with CPT
/// `edge_cpt`. branching = 1 degenerates to a chain. The moral graph is
/// the undirected tree (treewidth 1).
Result<BayesianNetwork> TreeNetwork(std::size_t num_nodes,
                                    std::size_t branching, const Vector& root,
                                    const Matrix& edge_cpt);

/// \brief rows x cols lattice in row-major order: node (r, c) has parents
/// (r-1, c) and (r, c-1) where they exist — `root` at the origin,
/// `edge_cpt` for one parent, `merge_cpt` (k^2 rows: first parent most
/// significant) for two. Moralization marries the two parents, giving
/// induced width min(rows, cols).
Result<BayesianNetwork> GridNetwork(std::size_t rows, std::size_t cols,
                                    const Vector& root, const Matrix& edge_cpt,
                                    const Matrix& merge_cpt);

/// \brief Hub-and-spoke: `num_hubs` hubs form a backbone chain (hub 0 from
/// `root`, hub h from hub h-1 via `hub_cpt`); each hub carries
/// `spokes_per_hub` leaf children via `spoke_cpt`. Interleaved layout: a
/// hub precedes its spokes. Treewidth 1; spokes of one hub are
/// structurally interchangeable.
Result<BayesianNetwork> HubSpokeNetwork(std::size_t num_hubs,
                                        std::size_t spokes_per_hub,
                                        const Vector& root,
                                        const Matrix& hub_cpt,
                                        const Matrix& spoke_cpt);

}  // namespace pf

#endif  // PUFFERFISH_DATA_TOPOLOGIES_H_
