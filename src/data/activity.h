// Simulated physical-activity measurement data standing in for the
// free-living activity dataset of Ellis et al. used in Section 5.3.1 (not
// redistributable; see DESIGN.md §4 for the substitution rationale).
//
// Faithful to the paper's preprocessing and statistics:
//  - four activities (active, standing still, standing moving, sedentary),
//    one observation every ~12 seconds;
//  - three participant groups — 40 cyclists, 16 older women, 36 overweight
//    women — with group-characteristic transition dynamics (cyclists most
//    active, overweight women most sedentary);
//  - about 9,000 observations per person over 7 days of waking hours;
//  - recording gaps of > 10 minutes split each person's data into several
//    independent chains, exactly as the paper treats missing values.
#ifndef PUFFERFISH_DATA_ACTIVITY_H_
#define PUFFERFISH_DATA_ACTIVITY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "graphical/markov_chain.h"

namespace pf {

/// The four activity states.
enum ActivityState : int {
  kActive = 0,
  kStandStill = 1,
  kStandMoving = 2,
  kSedentary = 3,
};
inline constexpr std::size_t kNumActivityStates = 4;

/// Display names for the four states (Figure 4 axis labels).
const char* ActivityStateName(int state);

/// Participant groups of the study.
enum class ActivityGroup {
  kCyclist,
  kOlderWoman,
  kOverweightWoman,
};
const char* ActivityGroupName(ActivityGroup group);

/// Group-level base transition matrix (12 s epochs; diagonally dominant —
/// activities persist for minutes).
Matrix ActivityGroupTransition(ActivityGroup group);

/// Number of participants per group in the study (40 / 16 / 36).
std::size_t ActivityGroupSize(ActivityGroup group);

/// One participant's recording: several >10-minute-gap-separated chains.
struct ActivityPerson {
  std::vector<StateSequence> chains;
  /// Total number of observations across chains.
  std::size_t TotalObservations() const;
  /// Length of the longest chain (drives the GroupDP noise).
  std::size_t LongestChain() const;
};

/// A full group's dataset.
struct ActivityGroupData {
  ActivityGroup group;
  std::vector<ActivityPerson> people;

  /// All chains of all people, flattened (the aggregate-task input).
  std::vector<StateSequence> AllChains() const;
  std::size_t TotalObservations() const;
  std::size_t LongestChain() const;
};

/// Generation knobs; defaults match the study's shape.
struct ActivitySimOptions {
  /// Mean observations per person (paper: > 9,000 on average).
  std::size_t mean_observations_per_person = 9500;
  /// Mean chain segment length between >10-minute gaps.
  std::size_t mean_segment_length = 1200;
  /// Scale of per-person perturbation of the group transition matrix.
  double person_variation = 0.25;
};

/// \brief Simulates one group's dataset.
Result<ActivityGroupData> SimulateActivityGroup(ActivityGroup group,
                                                const ActivitySimOptions& options,
                                                Rng* rng);

}  // namespace pf

#endif  // PUFFERFISH_DATA_ACTIVITY_H_
