#include "data/electricity.h"

#include <cmath>

namespace pf {

Matrix ElectricityTransition(const ElectricitySimOptions& options) {
  const std::size_t k = kNumPowerLevels;
  // Base-load (reset) profile: geometric decay over levels.
  Vector base(k);
  double base_sum = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    base[j] = std::pow(options.base_load_decay, static_cast<double>(j));
    base_sum += base[j];
  }
  for (double& v : base) v /= base_sum;

  Matrix p(k, k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    // Local move kernel: discretized Laplace around the current level with a
    // slight downward tilt (loads decay toward base).
    Vector local(k, 0.0);
    double local_sum = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const double d = static_cast<double>(j) - static_cast<double>(i);
      const double tilt = (d > 0) ? 1.15 : 1.0;  // Upward moves are rarer.
      local[j] = std::exp(-std::fabs(d) * tilt / options.local_spread);
      local_sum += local[j];
    }
    for (double& v : local) v /= local_sum;
    for (std::size_t j = 0; j < k; ++j) {
      p(i, j) = (1.0 - options.reset_probability) * local[j] +
                options.reset_probability * base[j];
    }
  }
  return p;
}

Result<StateSequence> SimulateElectricity(const ElectricitySimOptions& options,
                                          Rng* rng) {
  if (options.length == 0) return Status::InvalidArgument("length must be positive");
  const Matrix p = ElectricityTransition(options);
  PF_ASSIGN_OR_RETURN(
      MarkovChain probe,
      MarkovChain::Make(Vector(kNumPowerLevels, 1.0 / kNumPowerLevels), p));
  PF_ASSIGN_OR_RETURN(Vector pi, probe.StationaryDistribution());
  PF_ASSIGN_OR_RETURN(MarkovChain chain, MarkovChain::Make(pi, p));
  return chain.Sample(options.length, rng);
}

}  // namespace pf
