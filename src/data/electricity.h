// Simulated household electricity consumption standing in for the Makonin
// et al. dataset of Section 5.3.2 (per-minute power of one household over
// ~2 years; see DESIGN.md §4 for the substitution rationale). Matches the
// paper's preprocessing: power discretized into 51 intervals of 200 W,
// yielding a 51-state Markov chain of length T ~ 10^6.
//
// The synthetic load process is a mean-reverting local random walk over
// power levels (appliances switch gradually) mixed with a small "regime
// reset" component toward the low-power base load (overnight/idle periods).
// The reset component guarantees irreducibility and a healthy spectral gap
// while keeping high-power states rare — the qualitative features that
// drive the Table 3 comparison.
#ifndef PUFFERFISH_DATA_ELECTRICITY_H_
#define PUFFERFISH_DATA_ELECTRICITY_H_

#include <cstddef>

#include "common/histogram.h"
#include "common/matrix.h"
#include "common/random.h"
#include "common/status.h"
#include "graphical/markov_chain.h"

namespace pf {

/// Number of 200 W power levels (0..50), as in the paper.
inline constexpr std::size_t kNumPowerLevels = 51;

/// Simulation knobs.
struct ElectricitySimOptions {
  /// Chain length (paper: T ~ 1,000,000 one-minute readings).
  std::size_t length = 1000000;
  /// Probability of a regime reset toward base load per step.
  double reset_probability = 0.08;
  /// Local random-walk spread (how far one minute can move the level).
  double local_spread = 1.5;
  /// Geometric decay of the reset (base-load) profile over levels.
  double base_load_decay = 0.88;
};

/// The ground-truth generating transition matrix of the simulator.
Matrix ElectricityTransition(const ElectricitySimOptions& options);

/// \brief Simulates the discretized per-minute power level sequence.
Result<StateSequence> SimulateElectricity(const ElectricitySimOptions& options,
                                          Rng* rng);

}  // namespace pf

#endif  // PUFFERFISH_DATA_ELECTRICITY_H_
