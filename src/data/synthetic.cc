#include "data/synthetic.h"

namespace pf {

Result<SyntheticChainSample> SampleBinaryChainDataset(
    const BinaryChainIntervalClass& theta_class, std::size_t length, Rng* rng) {
  if (length == 0) return Status::InvalidArgument("length must be positive");
  SyntheticChainSample sample;
  sample.p0 = rng->Uniform(theta_class.alpha(), theta_class.beta());
  sample.p1 = rng->Uniform(theta_class.alpha(), theta_class.beta());
  sample.initial = rng->UniformSimplex(2);
  PF_ASSIGN_OR_RETURN(
      MarkovChain chain,
      MarkovChain::Make(sample.initial,
                        BinaryChainIntervalClass::TransitionFor(sample.p0,
                                                                sample.p1)));
  sample.sequence = chain.Sample(length, rng);
  return sample;
}

}  // namespace pf
