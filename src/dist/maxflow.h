// Dinic max-flow on small dense-ish graphs with real capacities. Used as the
// combinatorial backend of the infinity-Wasserstein computation: a coupling
// within distance t exists iff the bipartite transport network admits a flow
// of value 1.
#ifndef PUFFERFISH_DIST_MAXFLOW_H_
#define PUFFERFISH_DIST_MAXFLOW_H_

#include <cstddef>
#include <vector>

namespace pf {

/// \brief Max-flow solver (Dinic's algorithm) over double capacities.
///
/// Capacities are reals; augmentation stops when the residual level graph
/// admits no path with bottleneck above a small epsilon, which is exact for
/// the well-conditioned transport instances this library builds.
class MaxFlow {
 public:
  /// A flow network on `num_nodes` nodes (0-based).
  explicit MaxFlow(std::size_t num_nodes);

  /// Adds a directed edge u -> v with the given capacity (>= 0).
  void AddEdge(std::size_t u, std::size_t v, double capacity);

  /// \brief Computes the max-flow value from `source` to `sink`. May be
  /// called repeatedly; each call resets the flow state first.
  double Compute(std::size_t source, std::size_t sink);

 private:
  struct Edge {
    std::size_t to;
    double capacity;  // Residual capacity.
    std::size_t rev;  // Index of the reverse edge in graph_[to].
    double initial_capacity;  // For Compute() resets.
  };

  bool BuildLevels(std::size_t source, std::size_t sink);
  double Augment(std::size_t node, std::size_t sink, double limit);

  std::vector<std::vector<Edge>> graph_;
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace pf

#endif  // PUFFERFISH_DIST_MAXFLOW_H_
