// Divergences between finite distributions (Section 2.3): the max-divergence
// D_inf that defines Pufferfish guarantees, its symmetrization, and the KL /
// total-variation distances used by the robustness analysis and tests.
#ifndef PUFFERFISH_DIST_DIVERGENCES_H_
#define PUFFERFISH_DIST_DIVERGENCES_H_

#include <vector>

#include "common/matrix.h"
#include "common/status.h"
#include "dist/discrete_distribution.h"

namespace pf {

/// \brief Max-divergence D_inf(p || q) = max_{i : p_i > 0} log(p_i / q_i)
/// (Definition 2.3). Fails with FailedPrecondition when some p_i > 0 has
/// q_i = 0 (the divergence is infinite — callers treat the error as +inf).
Result<double> MaxDivergence(const Vector& p, const Vector& q);

/// max(D_inf(p || q), D_inf(q || p)) — the symmetric quantity bounding both
/// directions of an epsilon guarantee.
Result<double> SymmetricMaxDivergence(const Vector& p, const Vector& q);

/// Kullback-Leibler divergence sum_i p_i log(p_i / q_i); infinite-support
/// mismatches fail like MaxDivergence.
Result<double> KlDivergence(const Vector& p, const Vector& q);

/// Total variation distance (1/2) sum_i |p_i - q_i|.
Result<double> TotalVariation(const Vector& p, const Vector& q);

/// \brief Max-divergence between DiscreteDistributions, matching atoms by
/// location: any location carrying p-mass but no q-mass (or vice versa for
/// the symmetric version) makes the divergence infinite (error).
Result<double> MaxDivergence(const DiscreteDistribution& p,
                             const DiscreteDistribution& q);
Result<double> SymmetricMaxDivergence(const DiscreteDistribution& p,
                                      const DiscreteDistribution& q);

}  // namespace pf

#endif  // PUFFERFISH_DIST_DIVERGENCES_H_
