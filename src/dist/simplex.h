// A small dense two-phase primal simplex solver for standard-form LPs
//   min c'x  s.t.  A x = b, x >= 0.
// Used as the LP backend of the infinity-Wasserstein computation (transport
// polytope feasibility) and validated against max-flow and brute-force
// vertex enumeration by the property tests.
#ifndef PUFFERFISH_DIST_SIMPLEX_H_
#define PUFFERFISH_DIST_SIMPLEX_H_

#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// An optimal LP solution: the primal point and its objective value.
struct LpSolution {
  Vector x;
  double objective = 0.0;
};

/// \brief Solves min c'x s.t. A x = b, x >= 0 by two-phase simplex (Bland's
/// rule, so cycling cannot occur). Errors:
///  - InvalidArgument on dimension mismatches;
///  - FailedPrecondition when the constraints are infeasible;
///  - NumericalError when the objective is unbounded below.
Result<LpSolution> SolveStandardFormLp(const Matrix& a, const Vector& b,
                                       const Vector& c);

/// \brief Phase-1 only: returns some x >= 0 with A x = b, or
/// FailedPrecondition when none exists.
Result<Vector> FindFeasiblePoint(const Matrix& a, const Vector& b);

}  // namespace pf

#endif  // PUFFERFISH_DIST_SIMPLEX_H_
