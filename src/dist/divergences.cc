#include "dist/divergences.h"

#include <algorithm>
#include <cmath>

namespace pf {

namespace {
Status CheckPair(const Vector& p, const Vector& q) {
  if (p.empty() || q.empty()) {
    return Status::InvalidArgument("empty distribution");
  }
  if (p.size() != q.size()) {
    return Status::InvalidArgument("distribution size mismatch");
  }
  return Status::OK();
}
}  // namespace

Result<double> MaxDivergence(const Vector& p, const Vector& q) {
  PF_RETURN_NOT_OK(CheckPair(p, q));
  double best = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) {
      return Status::FailedPrecondition(
          "support mismatch: max-divergence is infinite");
    }
    best = std::max(best, std::log(p[i] / q[i]));
  }
  return best;
}

Result<double> SymmetricMaxDivergence(const Vector& p, const Vector& q) {
  PF_ASSIGN_OR_RETURN(double fwd, MaxDivergence(p, q));
  PF_ASSIGN_OR_RETURN(double bwd, MaxDivergence(q, p));
  return std::max(fwd, bwd);
}

Result<double> KlDivergence(const Vector& p, const Vector& q) {
  PF_RETURN_NOT_OK(CheckPair(p, q));
  double kl = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) {
      return Status::FailedPrecondition(
          "support mismatch: KL divergence is infinite");
    }
    kl += p[i] * std::log(p[i] / q[i]);
  }
  return kl;
}

Result<double> TotalVariation(const Vector& p, const Vector& q) {
  PF_RETURN_NOT_OK(CheckPair(p, q));
  double total = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) total += std::abs(p[i] - q[i]);
  return 0.5 * total;
}

Result<double> MaxDivergence(const DiscreteDistribution& p,
                             const DiscreteDistribution& q) {
  if (p.empty() || q.empty()) {
    return Status::InvalidArgument("empty distribution");
  }
  double best = 0.0;
  for (const DiscreteDistribution::Atom& a : p.atoms()) {
    const double qm = q.MassAt(a.x);
    if (qm <= 0.0) {
      return Status::FailedPrecondition(
          "support mismatch: max-divergence is infinite");
    }
    best = std::max(best, std::log(a.p / qm));
  }
  return best;
}

Result<double> SymmetricMaxDivergence(const DiscreteDistribution& p,
                                      const DiscreteDistribution& q) {
  PF_ASSIGN_OR_RETURN(double fwd, MaxDivergence(p, q));
  PF_ASSIGN_OR_RETURN(double bwd, MaxDivergence(q, p));
  return std::max(fwd, bwd);
}

}  // namespace pf
