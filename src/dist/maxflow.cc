#include "dist/maxflow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace pf {

namespace {
constexpr double kFlowEps = 1e-12;
}

MaxFlow::MaxFlow(std::size_t num_nodes) : graph_(num_nodes) {}

void MaxFlow::AddEdge(std::size_t u, std::size_t v, double capacity) {
  graph_[u].push_back({v, capacity, graph_[v].size(), capacity});
  graph_[v].push_back({u, 0.0, graph_[u].size() - 1, 0.0});
}

bool MaxFlow::BuildLevels(std::size_t source, std::size_t sink) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> queue;
  level_[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop();
    for (const Edge& e : graph_[u]) {
      if (e.capacity > kFlowEps && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

double MaxFlow::Augment(std::size_t node, std::size_t sink, double limit) {
  if (node == sink) return limit;
  for (std::size_t& i = iter_[node]; i < graph_[node].size(); ++i) {
    Edge& e = graph_[node][i];
    if (e.capacity <= kFlowEps || level_[e.to] != level_[node] + 1) continue;
    const double pushed = Augment(e.to, sink, std::min(limit, e.capacity));
    if (pushed > 0.0) {
      e.capacity -= pushed;
      graph_[e.to][e.rev].capacity += pushed;
      return pushed;
    }
  }
  return 0.0;
}

double MaxFlow::Compute(std::size_t source, std::size_t sink) {
  // Reset residual capacities so Compute() is idempotent.
  for (std::vector<Edge>& edges : graph_) {
    for (Edge& e : edges) e.capacity = e.initial_capacity;
  }
  double total = 0.0;
  while (BuildLevels(source, sink)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const double pushed =
          Augment(source, sink, std::numeric_limits<double>::infinity());
      if (pushed <= 0.0) break;
      total += pushed;
    }
  }
  return total;
}

}  // namespace pf
