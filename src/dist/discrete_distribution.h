// Finitely supported distributions on the real line: the output objects the
// Wasserstein Mechanism (Algorithm 1) manipulates. Atoms are kept sorted by
// location; construction validates that masses form a probability vector.
#ifndef PUFFERFISH_DIST_DISCRETE_DISTRIBUTION_H_
#define PUFFERFISH_DIST_DISCRETE_DISTRIBUTION_H_

#include <cstddef>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// \brief A probability distribution with finite support on R.
///
/// Invariants: atoms sorted strictly ascending by location, every mass
/// positive, masses sum to 1 (within the construction tolerance, then
/// renormalized exactly).
class DiscreteDistribution {
 public:
  /// One support point: location x with probability mass p.
  struct Atom {
    double x = 0.0;
    double p = 0.0;
  };

  /// An empty (invalid) distribution; most operations reject it.
  DiscreteDistribution() = default;

  /// \brief Validates and constructs: sorts by location, merges atoms at
  /// equal locations, drops zero-mass atoms. Fails if any mass is negative
  /// or the total differs from 1 by more than `tol`.
  static Result<DiscreteDistribution> Make(std::vector<Atom> atoms,
                                           double tol = 1e-9);

  /// Distribution on {0, 1, ..., k-1} with the given masses.
  static Result<DiscreteDistribution> FromMasses(const Vector& masses,
                                                 double tol = 1e-9);

  /// The unit mass at `x`.
  static DiscreteDistribution PointMass(double x);

  /// \brief Mixture sum_i weights[i] * components[i]. Weights must form a
  /// probability vector matching `components` in size.
  static Result<DiscreteDistribution> Mixture(
      const std::vector<DiscreteDistribution>& components,
      const Vector& weights, double tol = 1e-9);

  std::size_t size() const { return atoms_.size(); }
  bool empty() const { return atoms_.empty(); }
  const std::vector<Atom>& atoms() const { return atoms_; }

  /// Mass at exactly `x` (0 if not a support point).
  double MassAt(double x) const;

  /// P(X <= x).
  double Cdf(double x) const;

  /// \brief Generalized inverse CDF: the smallest support point q with
  /// P(X <= q) >= u, for u in (0, 1].
  double Quantile(double u) const;

  double Mean() const;
  /// Smallest support point; requires non-empty.
  double Min() const;
  /// Largest support point; requires non-empty.
  double Max() const;

  /// The distribution of X + delta.
  DiscreteDistribution Shift(double delta) const;

 private:
  explicit DiscreteDistribution(std::vector<Atom> atoms)
      : atoms_(std::move(atoms)) {}
  std::vector<Atom> atoms_;
};

}  // namespace pf

#endif  // PUFFERFISH_DIST_DISCRETE_DISTRIBUTION_H_
