#include "dist/wasserstein.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "dist/maxflow.h"
#include "dist/simplex.h"

namespace pf {

namespace {

constexpr double kMassEps = 1e-12;
constexpr double kDistanceTol = 1e-9;

Status CheckPair(const DiscreteDistribution& mu,
                 const DiscreteDistribution& nu) {
  if (mu.empty() || nu.empty()) {
    return Status::InvalidArgument("empty distribution");
  }
  return Status::OK();
}

// W_inf of the monotone (quantile) coupling: walk both atom lists in
// parallel, pairing mass greedily in location order, and record the largest
// distance any mass travels. On the line this coupling minimizes the
// maximum displacement, so the result is exact.
double QuantileWinf(const DiscreteDistribution& mu,
                    const DiscreteDistribution& nu) {
  const auto& a = mu.atoms();
  const auto& b = nu.atoms();
  std::size_t i = 0, j = 0;
  double rem_a = a[0].p, rem_b = b[0].p;
  double worst = 0.0;
  while (i < a.size() && j < b.size()) {
    worst = std::max(worst, std::abs(a[i].x - b[j].x));
    const double moved = std::min(rem_a, rem_b);
    rem_a -= moved;
    rem_b -= moved;
    if (rem_a <= kMassEps) {
      ++i;
      if (i < a.size()) rem_a = a[i].p;
    }
    if (rem_b <= kMassEps) {
      ++j;
      if (j < b.size()) rem_b = b[j].p;
    }
  }
  return worst;
}

// Coupling feasibility within distance t, decided by Dinic max-flow on the
// bipartite transport network (edges only between atoms within distance t).
bool FlowFeasible(const DiscreteDistribution& mu, const DiscreteDistribution& nu,
                  double t) {
  const auto& a = mu.atoms();
  const auto& b = nu.atoms();
  MaxFlow flow(a.size() + b.size() + 2);
  const std::size_t source = 0;
  const std::size_t sink = a.size() + b.size() + 1;
  for (std::size_t i = 0; i < a.size(); ++i) {
    flow.AddEdge(source, 1 + i, a[i].p);
  }
  for (std::size_t j = 0; j < b.size(); ++j) {
    flow.AddEdge(1 + a.size() + j, sink, b[j].p);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (std::abs(a[i].x - b[j].x) <= t + kDistanceTol) {
        flow.AddEdge(1 + i, 1 + a.size() + j, 2.0);
      }
    }
  }
  return flow.Compute(source, sink) >= 1.0 - 1e-7;
}

// The same feasibility question as a transport-polytope LP (row sums mu,
// column sums nu, variables only for allowed cells).
bool LpFeasible(const DiscreteDistribution& mu, const DiscreteDistribution& nu,
                double t) {
  const auto& a = mu.atoms();
  const auto& b = nu.atoms();
  std::vector<std::pair<std::size_t, std::size_t>> cells;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (std::abs(a[i].x - b[j].x) <= t + kDistanceTol) cells.emplace_back(i, j);
    }
  }
  if (cells.empty()) return false;
  Matrix constraints(a.size() + b.size(), cells.size(), 0.0);
  Vector rhs(a.size() + b.size(), 0.0);
  for (std::size_t v = 0; v < cells.size(); ++v) {
    constraints(cells[v].first, v) = 1.0;
    constraints(a.size() + cells[v].second, v) = 1.0;
  }
  for (std::size_t i = 0; i < a.size(); ++i) rhs[i] = a[i].p;
  for (std::size_t j = 0; j < b.size(); ++j) rhs[a.size() + j] = b[j].p;
  return FindFeasiblePoint(constraints, rhs).ok();
}

bool FeasibleWithin(const DiscreteDistribution& mu,
                    const DiscreteDistribution& nu, double t,
                    WassersteinBackend backend) {
  switch (backend) {
    case WassersteinBackend::kQuantile:
      return QuantileWinf(mu, nu) <= t + kDistanceTol;
    case WassersteinBackend::kMaxFlow:
      return FlowFeasible(mu, nu, t);
    case WassersteinBackend::kLp:
      return LpFeasible(mu, nu, t);
  }
  return false;
}

// Smallest feasible candidate distance via bisection over the sorted set of
// pairwise atom distances (W_inf always equals one of them).
double BisectWinf(const DiscreteDistribution& mu, const DiscreteDistribution& nu,
                  WassersteinBackend backend) {
  const auto& a = mu.atoms();
  const auto& b = nu.atoms();
  std::vector<double> candidates;
  candidates.reserve(a.size() * b.size());
  for (const auto& atom_a : a) {
    for (const auto& atom_b : b) {
      candidates.push_back(std::abs(atom_a.x - atom_b.x));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  std::size_t lo = 0, hi = candidates.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (FeasibleWithin(mu, nu, candidates[mid], backend)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return candidates[lo];
}

}  // namespace

Result<double> WassersteinInf(const DiscreteDistribution& mu,
                              const DiscreteDistribution& nu,
                              WassersteinBackend backend) {
  PF_RETURN_NOT_OK(CheckPair(mu, nu));
  if (backend == WassersteinBackend::kQuantile) return QuantileWinf(mu, nu);
  return BisectWinf(mu, nu, backend);
}

Result<double> Wasserstein1(const DiscreteDistribution& mu,
                            const DiscreteDistribution& nu) {
  PF_RETURN_NOT_OK(CheckPair(mu, nu));
  // W_1 on the line is the area between the CDFs.
  std::vector<double> points;
  points.reserve(mu.size() + nu.size());
  for (const auto& atom : mu.atoms()) points.push_back(atom.x);
  for (const auto& atom : nu.atoms()) points.push_back(atom.x);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  double total = 0.0;
  for (std::size_t k = 0; k + 1 < points.size(); ++k) {
    const double gap = points[k + 1] - points[k];
    total += gap * std::abs(mu.Cdf(points[k]) - nu.Cdf(points[k]));
  }
  return total;
}

Result<bool> CouplingFeasibleWithin(const DiscreteDistribution& mu,
                                    const DiscreteDistribution& nu,
                                    double threshold,
                                    WassersteinBackend backend) {
  PF_RETURN_NOT_OK(CheckPair(mu, nu));
  if (threshold < 0.0) return Status::InvalidArgument("negative threshold");
  return FeasibleWithin(mu, nu, threshold, backend);
}

}  // namespace pf
