#include "dist/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace pf {

namespace {

constexpr double kPivotEps = 1e-9;
constexpr double kFeasibilityTol = 1e-7;

// Dense simplex tableau over the columns [original | artificial]. The cost
// row holds reduced costs and is updated jointly with every pivot, so the
// entering rule can read it directly.
struct Tableau {
  std::size_t m, n;               // Constraints, original variables.
  Matrix t;                       // m x (n + m).
  Vector rhs;                     // Length m, kept >= 0.
  Vector cost;                    // Reduced-cost row, length n + m.
  double objective = 0.0;         // Negated accumulated objective shift.
  std::vector<std::size_t> basis;  // basis[r] = column basic in row r.

  void Pivot(std::size_t row, std::size_t col) {
    const double pivot = t(row, col);
    for (std::size_t j = 0; j < t.cols(); ++j) t(row, j) /= pivot;
    rhs[row] /= pivot;
    for (std::size_t r = 0; r < m; ++r) {
      if (r == row) continue;
      const double factor = t(r, col);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < t.cols(); ++j) t(r, j) -= factor * t(row, j);
      rhs[r] -= factor * rhs[row];
      if (rhs[r] < 0.0 && rhs[r] > -kPivotEps) rhs[r] = 0.0;
    }
    const double cfactor = cost[col];
    if (cfactor != 0.0) {
      for (std::size_t j = 0; j < t.cols(); ++j) cost[j] -= cfactor * t(row, j);
      objective -= cfactor * rhs[row];
    }
    basis[row] = col;
  }

  // Runs simplex over entering candidates [0, limit) with Bland's rule.
  // Returns false when the objective is unbounded below.
  bool Iterate(std::size_t limit) {
    while (true) {
      std::size_t entering = limit;
      for (std::size_t j = 0; j < limit; ++j) {
        if (cost[j] < -kPivotEps) {
          entering = j;
          break;  // Bland: smallest eligible index.
        }
      }
      if (entering == limit) return true;  // Optimal.
      std::size_t leaving = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        if (t(r, entering) <= kPivotEps) continue;
        const double ratio = rhs[r] / t(r, entering);
        if (ratio < best_ratio - kPivotEps ||
            (ratio < best_ratio + kPivotEps &&
             (leaving == m || basis[r] < basis[leaving]))) {
          best_ratio = ratio;
          leaving = r;
        }
      }
      if (leaving == m) return false;  // Unbounded direction.
      Pivot(leaving, entering);
    }
  }
};

Status CheckDimensions(const Matrix& a, const Vector& b, const Vector& c,
                       bool with_cost) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("empty constraint matrix");
  }
  if (b.size() != a.rows()) {
    return Status::InvalidArgument("rhs size must match constraint rows");
  }
  if (with_cost && c.size() != a.cols()) {
    return Status::InvalidArgument("cost size must match variable count");
  }
  return Status::OK();
}

// Builds the phase-1 tableau (artificial basis) and minimizes the sum of
// artificials. On success the tableau holds a feasible basis.
Result<Tableau> Phase1(const Matrix& a, const Vector& b) {
  Tableau tab;
  tab.m = a.rows();
  tab.n = a.cols();
  tab.t = Matrix(tab.m, tab.n + tab.m, 0.0);
  tab.rhs = Vector(tab.m, 0.0);
  tab.basis.resize(tab.m);
  for (std::size_t r = 0; r < tab.m; ++r) {
    const double sign = (b[r] < 0.0) ? -1.0 : 1.0;
    for (std::size_t j = 0; j < tab.n; ++j) tab.t(r, j) = sign * a(r, j);
    tab.rhs[r] = sign * b[r];
    tab.t(r, tab.n + r) = 1.0;
    tab.basis[r] = tab.n + r;
  }
  // Phase-1 reduced costs: artificials cost 1 and are basic, so the reduced
  // cost row is the negated column sum of the original columns.
  tab.cost = Vector(tab.n + tab.m, 0.0);
  tab.objective = 0.0;
  for (std::size_t r = 0; r < tab.m; ++r) {
    for (std::size_t j = 0; j < tab.n; ++j) tab.cost[j] -= tab.t(r, j);
    tab.objective -= tab.rhs[r];
  }
  // Phase 1 is bounded below by 0, so Iterate cannot report unbounded.
  tab.Iterate(tab.n);
  if (-tab.objective > kFeasibilityTol) {
    return Status::FailedPrecondition("LP constraints are infeasible");
  }
  // Drive any residual artificial out of the basis; rows where no original
  // column can pivot are redundant constraints and stay harmlessly at zero
  // (their artificial remains basic at value 0 and never re-enters because
  // phase 2 restricts entering columns to the originals).
  for (std::size_t r = 0; r < tab.m; ++r) {
    if (tab.basis[r] < tab.n) continue;
    for (std::size_t j = 0; j < tab.n; ++j) {
      if (std::abs(tab.t(r, j)) > kPivotEps) {
        tab.Pivot(r, j);
        break;
      }
    }
  }
  return tab;
}

Vector ExtractSolution(const Tableau& tab) {
  Vector x(tab.n, 0.0);
  for (std::size_t r = 0; r < tab.m; ++r) {
    if (tab.basis[r] < tab.n) x[tab.basis[r]] = std::max(0.0, tab.rhs[r]);
  }
  return x;
}

}  // namespace

Result<LpSolution> SolveStandardFormLp(const Matrix& a, const Vector& b,
                                       const Vector& c) {
  PF_RETURN_NOT_OK(CheckDimensions(a, b, c, /*with_cost=*/true));
  PF_ASSIGN_OR_RETURN(Tableau tab, Phase1(a, b));
  // Phase 2: install the real objective as a reduced-cost row.
  tab.cost.assign(tab.n + tab.m, 0.0);
  tab.objective = 0.0;
  for (std::size_t j = 0; j < tab.n; ++j) tab.cost[j] = c[j];
  for (std::size_t r = 0; r < tab.m; ++r) {
    if (tab.basis[r] >= tab.n) continue;  // Artificial stuck at zero.
    const double cb = c[tab.basis[r]];
    if (cb == 0.0) continue;
    for (std::size_t j = 0; j < tab.t.cols(); ++j) {
      tab.cost[j] -= cb * tab.t(r, j);
    }
    tab.objective -= cb * tab.rhs[r];
  }
  if (!tab.Iterate(tab.n)) {
    return Status::NumericalError("LP objective is unbounded below");
  }
  LpSolution solution;
  solution.x = ExtractSolution(tab);
  solution.objective = Dot(c, solution.x);
  return solution;
}

Result<Vector> FindFeasiblePoint(const Matrix& a, const Vector& b) {
  PF_RETURN_NOT_OK(CheckDimensions(a, b, {}, /*with_cost=*/false));
  PF_ASSIGN_OR_RETURN(Tableau tab, Phase1(a, b));
  return ExtractSolution(tab);
}

}  // namespace pf
