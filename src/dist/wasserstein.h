// The infinity-Wasserstein distance W_inf (Definition 3.1) between finitely
// supported distributions on R: the smallest t such that some coupling moves
// every unit of mass a distance at most t. Three interchangeable backends:
//
//  - kQuantile: the closed-form 1-D solution sup_u |F_mu^{-1}(u) -
//    F_nu^{-1}(u)| (the monotone coupling is W_inf-optimal on the line);
//  - kMaxFlow: bisection over the candidate distances with Dinic max-flow
//    deciding coupling feasibility;
//  - kLp: the same bisection with the simplex solver deciding feasibility of
//    the transport polytope.
//
// The flow/LP backends exist to validate the closed form (property tests)
// and to generalize to non-metric ground costs later.
#ifndef PUFFERFISH_DIST_WASSERSTEIN_H_
#define PUFFERFISH_DIST_WASSERSTEIN_H_

#include "common/status.h"
#include "dist/discrete_distribution.h"

namespace pf {

/// Algorithm used to compute W_inf / decide coupling feasibility.
enum class WassersteinBackend {
  kQuantile = 0,
  kMaxFlow = 1,
  kLp = 2,
};

/// \brief W_inf(mu, nu). Fails on empty distributions.
Result<double> WassersteinInf(
    const DiscreteDistribution& mu, const DiscreteDistribution& nu,
    WassersteinBackend backend = WassersteinBackend::kQuantile);

/// \brief W_1(mu, nu) = integral |F_mu - F_nu| (earth-mover distance).
Result<double> Wasserstein1(const DiscreteDistribution& mu,
                            const DiscreteDistribution& nu);

/// \brief True iff a coupling of (mu, nu) exists moving every unit of mass a
/// distance <= `threshold` (within a small tolerance).
Result<bool> CouplingFeasibleWithin(
    const DiscreteDistribution& mu, const DiscreteDistribution& nu,
    double threshold,
    WassersteinBackend backend = WassersteinBackend::kQuantile);

}  // namespace pf

#endif  // PUFFERFISH_DIST_WASSERSTEIN_H_
