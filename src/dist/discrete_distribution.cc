#include "dist/discrete_distribution.h"

#include <algorithm>
#include <cmath>

namespace pf {

Result<DiscreteDistribution> DiscreteDistribution::Make(std::vector<Atom> atoms,
                                                        double tol) {
  double total = 0.0;
  for (const Atom& a : atoms) {
    if (!std::isfinite(a.x) || !std::isfinite(a.p)) {
      return Status::InvalidArgument("atom with non-finite location or mass");
    }
    if (a.p < -tol) {
      return Status::InvalidArgument("negative probability mass");
    }
    total += a.p;
  }
  if (std::abs(total - 1.0) > tol) {
    return Status::InvalidArgument("masses must sum to 1");
  }
  std::sort(atoms.begin(), atoms.end(),
            [](const Atom& a, const Atom& b) { return a.x < b.x; });
  std::vector<Atom> merged;
  merged.reserve(atoms.size());
  for (const Atom& a : atoms) {
    if (a.p <= 0.0) continue;
    if (!merged.empty() && merged.back().x == a.x) {
      merged.back().p += a.p;
    } else {
      merged.push_back(a);
    }
  }
  if (merged.empty()) return Status::InvalidArgument("no positive-mass atoms");
  // Renormalize exactly so downstream comparisons see a unit total.
  for (Atom& a : merged) a.p /= total;
  return DiscreteDistribution(std::move(merged));
}

Result<DiscreteDistribution> DiscreteDistribution::FromMasses(
    const Vector& masses, double tol) {
  std::vector<Atom> atoms;
  atoms.reserve(masses.size());
  for (std::size_t i = 0; i < masses.size(); ++i) {
    atoms.push_back({static_cast<double>(i), masses[i]});
  }
  return Make(std::move(atoms), tol);
}

DiscreteDistribution DiscreteDistribution::PointMass(double x) {
  return DiscreteDistribution({{x, 1.0}});
}

Result<DiscreteDistribution> DiscreteDistribution::Mixture(
    const std::vector<DiscreteDistribution>& components, const Vector& weights,
    double tol) {
  if (components.size() != weights.size()) {
    return Status::InvalidArgument("one weight per mixture component required");
  }
  if (components.empty()) return Status::InvalidArgument("empty mixture");
  std::vector<Atom> atoms;
  for (std::size_t i = 0; i < components.size(); ++i) {
    if (weights[i] < -tol) {
      return Status::InvalidArgument("negative mixture weight");
    }
    if (components[i].empty()) {
      return Status::InvalidArgument("empty mixture component");
    }
    for (const Atom& a : components[i].atoms_) {
      atoms.push_back({a.x, weights[i] * a.p});
    }
  }
  return Make(std::move(atoms), tol);
}

double DiscreteDistribution::MassAt(double x) const {
  const auto it = std::lower_bound(
      atoms_.begin(), atoms_.end(), x,
      [](const Atom& a, double v) { return a.x < v; });
  return (it != atoms_.end() && it->x == x) ? it->p : 0.0;
}

double DiscreteDistribution::Cdf(double x) const {
  double total = 0.0;
  for (const Atom& a : atoms_) {
    if (a.x > x) break;
    total += a.p;
  }
  return total;
}

double DiscreteDistribution::Quantile(double u) const {
  double total = 0.0;
  for (const Atom& a : atoms_) {
    total += a.p;
    if (total >= u - 1e-15) return a.x;
  }
  return atoms_.back().x;
}

double DiscreteDistribution::Mean() const {
  double m = 0.0;
  for (const Atom& a : atoms_) m += a.x * a.p;
  return m;
}

double DiscreteDistribution::Min() const { return atoms_.front().x; }

double DiscreteDistribution::Max() const { return atoms_.back().x; }

DiscreteDistribution DiscreteDistribution::Shift(double delta) const {
  std::vector<Atom> atoms = atoms_;
  for (Atom& a : atoms) a.x += delta;
  return DiscreteDistribution(std::move(atoms));
}

}  // namespace pf
