// Clang Thread Safety Analysis for the library's locking discipline.
//
// Two layers live here:
//
//  1. The PF_* annotation macros, thin wrappers over clang's
//     -Wthread-safety attributes (no-ops on every other compiler). They
//     let a header DECLARE which mutex guards which field and which
//     capability a function requires, and let the clang CI leg prove the
//     declarations hold on every path — the thread-count-invariance
//     contract stops being folklore and becomes a compile error.
//
//  2. Capability-annotated wrappers over the std primitives: pf::Mutex,
//     pf::MutexLock, and pf::CondVar. std::mutex itself carries no
//     capability attribute, so fields cannot be PF_GUARDED_BY it; all
//     locking in the library goes through these wrappers instead
//     (tools/lint_invariants.py enforces this greppably).
//
// Annotation style, used across engine/, pufferfish/, and common/:
//  - every mutable field shared between threads is PF_GUARDED_BY(mu_);
//  - private helpers that assume the lock are PF_REQUIRES(mu_) and named
//    *Locked;
//  - public entry points that take the lock themselves are PF_EXCLUDES(mu_)
//    where re-entry would deadlock;
//  - condition waits are explicit `while (!cond) cv.Wait(mu);` loops, not
//    predicate lambdas: the analysis cannot see through std::function, but
//    it fully checks the loop body in the enclosing scope.
#ifndef PUFFERFISH_COMMON_THREAD_ANNOTATIONS_H_
#define PUFFERFISH_COMMON_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define PF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define PF_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Marks a class as a capability (lockable) type.
#define PF_CAPABILITY(x) PF_THREAD_ANNOTATION_(capability(x))
/// Marks a RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define PF_SCOPED_CAPABILITY PF_THREAD_ANNOTATION_(scoped_lockable)

/// Field is protected by the given capability (read AND write require it).
#define PF_GUARDED_BY(x) PF_THREAD_ANNOTATION_(guarded_by(x))
/// Pointed-to data is protected by the given capability.
#define PF_PT_GUARDED_BY(x) PF_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function requires the capability held on entry (and does not release it).
#define PF_REQUIRES(...) \
  PF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define PF_EXCLUDES(...) PF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define PF_ACQUIRE(...) \
  PF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
/// Function releases the capability.
#define PF_RELEASE(...) \
  PF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns `ret`.
#define PF_TRY_ACQUIRE(ret, ...) \
  PF_THREAD_ANNOTATION_(try_acquire_capability(ret, __VA_ARGS__))
/// Runtime assertion that the calling thread holds the capability.
#define PF_ASSERT_CAPABILITY(x) \
  PF_THREAD_ANNOTATION_(assert_capability(x))
/// Function returns a reference to the given capability.
#define PF_RETURN_CAPABILITY(x) PF_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch for code the analysis cannot model; every use carries a
/// comment justifying why it is sound.
#define PF_NO_THREAD_SAFETY_ANALYSIS \
  PF_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace pf {

/// \brief std::mutex with a thread-safety capability attached, so fields
/// can be declared PF_GUARDED_BY it. Same cost as std::mutex; prefer the
/// RAII MutexLock over manual Lock/Unlock pairs.
class PF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PF_ACQUIRE() { mu_.lock(); }
  void Unlock() PF_RELEASE() { mu_.unlock(); }
  bool TryLock() PF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII lock over a pf::Mutex — the library's replacement for
/// std::lock_guard / std::unique_lock (both of which are invisible to the
/// analysis when used on a wrapped mutex).
class PF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PF_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PF_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// \brief Condition variable paired with pf::Mutex. Wait atomically
/// releases the mutex and reacquires it before returning, exactly like
/// std::condition_variable::wait; spurious wakeups are possible, so every
/// wait site is a `while (!condition) cv.Wait(mu);` loop — which is also
/// the shape the thread-safety analysis can check (the condition reads its
/// guarded fields in the enclosing, capability-holding scope).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; may wake spuriously.
  void Wait(Mutex& mu) PF_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // Ownership stays with the caller's MutexLock.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pf

#endif  // PUFFERFISH_COMMON_THREAD_ANNOTATIONS_H_
