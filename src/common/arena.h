// Bump/pool allocator for analysis scratch. The hot analysis paths
// (factor products, elimination tables, power-ladder scratch) allocate
// short-lived buffers in bursts with identical lifetimes; an arena turns
// each burst into pointer bumps over a few retained blocks, so a warm
// thread performs ZERO heap allocations per Analyze/ExtendTo.
//
// Lifetime rules (pinned by tests/arena_test.cc and the ASan stress test):
//  - Allocate() results live until the next Reset()/Rewind past them or
//    Release(); the arena never runs destructors (POD buffers only).
//  - Reset() rewinds to empty but RETAINS the blocks — the steady-state
//    entry point, called once per top-level analysis.
//  - Checkpoint/Rewind bracket nested scratch (per elimination step) so
//    in-use bytes stay bounded within one analysis.
//  - One arena serves one thread; cross-thread use requires external
//    serialization (the library keeps one thread_local arena per hot
//    subsystem instead).
#ifndef PUFFERFISH_COMMON_ARENA_H_
#define PUFFERFISH_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace pf {

/// \brief Growable bump allocator with retained blocks.
class Arena {
 public:
  /// `min_block_bytes` sizes the first block; later blocks double (and a
  /// single oversized request gets a block of its own size), so any
  /// steady-state working set is reached after O(log(size)) mallocs.
  explicit Arena(std::size_t min_block_bytes = 1u << 16);
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  ~Arena();

  /// 16-byte-aligned uninitialized storage; valid until Reset/Release or a
  /// Rewind past the current cursor.
  void* Allocate(std::size_t bytes);

  /// `n` uninitialized doubles.
  double* AllocDoubles(std::size_t n) {
    return static_cast<double*>(Allocate(n * sizeof(double)));
  }

  /// Cursor position for nested scratch (see Rewind).
  struct Checkpoint {
    std::size_t block = 0;
    std::size_t offset = 0;
    std::size_t in_use = 0;
  };
  Checkpoint Save() const { return {block_, offset_, in_use_}; }
  /// Frees (logically) everything allocated after `cp`. The blocks stay.
  void Rewind(const Checkpoint& cp);

  /// Rewinds to empty, retaining every block for reuse.
  void Reset();
  /// Frees the blocks themselves (retained bytes drop to zero).
  void Release();

  /// Bytes currently handed out (since construction or the last Reset).
  std::size_t in_use_bytes() const { return in_use_; }
  /// High-water mark of in_use_bytes() over the arena's lifetime.
  std::size_t peak_bytes() const { return peak_; }
  /// Capacity held by retained blocks (what Reset keeps around).
  std::size_t retained_bytes() const { return retained_; }
  /// Heap-block acquisitions over the arena's lifetime. Stops increasing
  /// once the working set is warm — the zero-steady-state-malloc witness.
  std::size_t block_allocations() const { return block_allocations_; }

  /// Process-wide totals over every Arena (atomic, relaxed): lets stats
  /// reporting aggregate the thread_local subsystem arenas without a
  /// registry walk.
  static std::uint64_t TotalBlockAllocations();
  static std::uint64_t TotalRetainedBytes();

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  /// Moves the cursor to a block that fits `bytes`, allocating if needed.
  void* AllocateSlow(std::size_t bytes);

  const std::size_t min_block_bytes_;
  std::vector<Block> blocks_;
  std::size_t block_ = 0;   // Cursor block index (== blocks_.size() when empty).
  std::size_t offset_ = 0;  // Bump offset within blocks_[block_].
  std::size_t in_use_ = 0;
  std::size_t peak_ = 0;
  std::size_t retained_ = 0;
  std::size_t block_allocations_ = 0;
};

}  // namespace pf

#endif  // PUFFERFISH_COMMON_ARENA_H_
