// A small fixed-size thread pool for the embarrassingly parallel loops in
// the mechanism analyses (per-node sigma_i searches, matrix-power table
// construction). Design constraints, in order:
//
//  1. Determinism: ParallelFor guarantees fn(i) runs exactly once for every
//     index, and callers write only to per-index slots, so results are
//     bit-identical for any thread count (reductions happen sequentially
//     after the join).
//  2. No exceptions cross the pool boundary (Status/Result style): worker
//     bodies must not throw; per-index Result slots carry errors instead.
//  3. Zero dependencies beyond <thread>.
//
// The locking discipline is machine-checked: every shared field is
// PF_GUARDED_BY(mutex_) and the clang CI leg compiles with
// -Wthread-safety -Werror (see common/thread_annotations.h).
#ifndef PUFFERFISH_COMMON_PARALLEL_H_
#define PUFFERFISH_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/deadline.h"
#include "common/thread_annotations.h"

namespace pf {

/// \brief num_threads knob resolution, shared library-wide: 0 means
/// hardware concurrency (>= 1), anything else is taken literally.
inline std::size_t ResolveThreadCount(std::size_t num_threads) {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// \brief Fixed pool of worker threads executing indexed loops.
///
/// One loop runs at a time (ParallelFor serializes itself). Each loop is an
/// immutable Job object shared by the participating threads; indices are
/// handed out through an atomic counter, so load imbalance self-levels and
/// a straggler from a finished job can never touch the next one.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 means hardware concurrency (the
  /// convention every `num_threads` knob in the library follows). A pool of
  /// size 1 runs every loop inline on the calling thread — the serial
  /// baseline.
  explicit ThreadPool(std::size_t num_threads)
      : num_threads_(ResolveThreadCount(num_threads)) {
    for (std::size_t t = 1; t < num_threads_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mutex_);
      shutdown_ = true;
    }
    wake_workers_.NotifyAll();
    for (std::thread& w : workers_) w.join();
  }

  std::size_t num_threads() const { return num_threads_; }

  /// \brief Runs fn(i) for every i in [0, n), distributing indices over the
  /// pool (the calling thread participates). Blocks until all n indices
  /// complete. fn must not recursively call ParallelFor on the same pool.
  ///
  /// The calling thread's current deadline (common/deadline.h) is
  /// re-installed inside the workers for the duration of fn, so cooperative
  /// CheckDeadline checkpoints deep in parallel kernels observe the
  /// submitting request's deadline.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn)
      PF_EXCLUDES(mutex_) {
    if (n == 0) return;
    if (num_threads_ == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    MutexLock loop_lock(loop_mutex_);  // One loop at a time.
    auto job = std::make_shared<Job>();
    const Deadline caller_deadline = CurrentDeadline();
    if (caller_deadline.infinite()) {
      job->fn = fn;
    } else {
      job->fn = [fn, caller_deadline](std::size_t i) {
        DeadlineScope scope(caller_deadline);
        fn(i);
      };
    }
    job->end = n;
    job->pending.store(n, std::memory_order_relaxed);
    {
      MutexLock lock(mutex_);
      current_job_ = job;
      ++job_serial_;
    }
    wake_workers_.NotifyAll();
    RunJob(*job);
    {
      // Wait for stragglers still inside fn on worker threads.
      MutexLock lock(mutex_);
      while (job->pending.load(std::memory_order_acquire) != 0) {
        job->done.Wait(mutex_);
      }
      current_job_.reset();
    }
  }

 private:
  struct Job {
    std::function<void(std::size_t)> fn;
    std::size_t end = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> pending{0};
    CondVar done;
  };

  void RunJob(Job& job) PF_EXCLUDES(mutex_) {
    while (true) {
      const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.end) break;
      job.fn(i);
      if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        // Lock-then-notify so the waiter cannot miss the wakeup between
        // its predicate check and its Wait.
        MutexLock lock(mutex_);
        job.done.NotifyAll();
      }
    }
  }

  void WorkerLoop() PF_EXCLUDES(mutex_) {
    std::uint64_t seen_serial = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        MutexLock lock(mutex_);
        while (!shutdown_ &&
               (current_job_ == nullptr || job_serial_ == seen_serial)) {
          wake_workers_.Wait(mutex_);
        }
        if (shutdown_) return;
        seen_serial = job_serial_;
        job = current_job_;
      }
      RunJob(*job);
    }
  }

  const std::size_t num_threads_;
  std::vector<std::thread> workers_;

  /// Serializes whole ParallelFor calls. Nests OUTSIDE mutex_: ParallelFor
  /// holds loop_mutex_ across the job's publish/drain critical sections, so
  /// the global order is loop_mutex_ before mutex_ (see docs/LOCK_ORDER.md;
  /// the lock-order pass of tools/pf_analyzer derives and checks this).
  Mutex loop_mutex_;
  /// Guards the job hand-off state below.
  Mutex mutex_;
  CondVar wake_workers_;
  std::shared_ptr<Job> current_job_ PF_GUARDED_BY(mutex_);
  std::uint64_t job_serial_ PF_GUARDED_BY(mutex_) = 0;
  bool shutdown_ PF_GUARDED_BY(mutex_) = false;
};

/// \brief One-shot helper: runs fn(i) for i in [0, n) on `num_threads`
/// threads (0 = hardware concurrency; inline when that resolves to 1).
/// Deterministic under the same contract as ThreadPool::ParallelFor.
inline void ParallelFor(std::size_t num_threads, std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  ThreadPool pool(num_threads);
  pool.ParallelFor(n, fn);
}

}  // namespace pf

#endif  // PUFFERFISH_COMMON_PARALLEL_H_
