// Seeded random number generation: uniform, categorical and Laplace draws.
// Every randomized component in the library takes an explicit Rng so that
// experiments are reproducible bit-for-bit from a seed.
#ifndef PUFFERFISH_COMMON_RANDOM_H_
#define PUFFERFISH_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/matrix.h"
#include "common/status.h"

namespace pf {

/// \brief Reproducible random source wrapping std::mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0xC0FFEE) : gen_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [0, n).
  std::size_t UniformInt(std::size_t n);

  /// \brief A draw from Laplace(0, scale): density (1/2b) exp(-|x|/b).
  ///
  /// This is the noise distribution of every mechanism in the paper
  /// (Algorithms 1-4 all end with "return F(D) + Lap(sigma) noise").
  double Laplace(double scale);

  /// \brief Index drawn from a categorical distribution given by `probs`
  /// (need not be exactly normalized; sampled proportionally).
  ///
  /// Degenerate weight vectors — empty, containing a negative or
  /// non-finite entry, or summing to zero — are rejected: TryCategorical
  /// returns InvalidArgument, and Categorical (the assert-like convenience
  /// used by the samplers, whose inputs are validated distributions)
  /// aborts with a message. The pre-fix behavior silently returned index 0
  /// for an all-zero vector and the last index for a NaN-poisoned one,
  /// which turned modeling bugs into quietly skewed samples.
  Result<std::size_t> TryCategorical(const Vector& probs);
  std::size_t Categorical(const Vector& probs);

  /// A point drawn uniformly from the probability simplex of dimension k
  /// (used for random initial distributions in the Figure 4 experiments).
  Vector UniformSimplex(std::size_t k);

  /// Underlying engine (for std::shuffle etc.).
  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

/// Expected absolute value of Laplace(0, b) noise, i.e. b.
/// Provided for readability when predicting L1 errors in tests/benches.
inline double LaplaceExpectedAbs(double scale) { return scale; }

/// \brief Inverse-CDF map from a uniform draw u in [0, 1) to
/// Laplace(0, scale). Finite for EVERY input: the boundary region
/// (u so close to 0 that 1 - 2|u - 1/2| underflows to 0, where the naive
/// formula returns -infinity) is clamped to the distribution's finite
/// extreme. Rng::Laplace additionally redraws the exact boundary u = 0, so
/// generator streams never even reach the clamp. Exposed so the boundary
/// behavior is testable without steering the generator onto the
/// measure-zero draw.
double LaplaceInverseCdf(double u, double scale);

/// \brief value + Lap(scale): the release primitive shared by every
/// mechanism in the library (Algorithms 1-4 all end with this line).
double AddLaplaceNoise(double value, double scale, Rng* rng);

/// Independent Laplace(scale) noise per coordinate (correct for queries
/// that are Lipschitz in L1 over the whole vector).
Vector AddLaplaceNoise(const Vector& value, double scale, Rng* rng);

/// In-place variant over a raw buffer (the columnar serving path's noise
/// primitive): values[i] += Lap(scale) for i in [0, n), drawing exactly the
/// sequence the Vector overload would — a row noised here is bit-identical
/// to AddLaplaceNoise(row_as_vector, scale, rng).
void AddLaplaceNoise(double* values, std::size_t n, double scale, Rng* rng);

/// \brief The per-ticket noise-stream seed shared by the scalar and
/// columnar serving paths: SplitMix64 over (session seed, ticket). Each
/// ticket gets an independent, reproducible stream regardless of which
/// executor thread — or which serving path — draws from it, which is the
/// whole bit-identity story: a query released columnar under ticket t adds
/// exactly the noise the scalar path would have added under ticket t.
std::uint64_t TicketNoiseSeed(std::uint64_t seed, std::uint64_t ticket);

}  // namespace pf

#endif  // PUFFERFISH_COMMON_RANDOM_H_
